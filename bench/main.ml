(* Benchmark harness: regenerates every figure of the paper and the derived
   experiment tables, plus Bechamel micro-benchmarks of the framework
   itself.

   Usage:
     dune exec bench/main.exe            # everything (default)
     dune exec bench/main.exe -- fig1    # one experiment
     dune exec bench/main.exe -- micro   # Bechamel micro-benchmarks only
     dune exec bench/main.exe -- list

   Absolute numbers are simulation numbers, not the paper's testbed numbers;
   the shapes (who wins, by what factor, where the crossovers are) are the
   reproduction targets — see EXPERIMENTS.md. *)

open Detmt

let say fmt = Format.printf fmt

let heading title =
  say "@.==[ %s ]=====================================================@.@."
    title

let print_table t = say "%a@." Table.pp t

(* --json: besides printing, dump each experiment's table (plus
   per-column medians — the columns are schedulers) to
   BENCH_<experiment>.json, for dashboards and regression diffing. *)

let json_mode = ref false

let median_of_column cells =
  match List.sort compare (List.filter_map float_of_string_opt cells) with
  | [] -> None
  | vals -> Some (List.nth vals (List.length vals / 2))

let table_json t =
  let cols = Table.columns t in
  let rows = Table.rows t in
  let medians =
    List.filteri (fun i _ -> i > 0) cols
    |> List.filter_map (fun c ->
           let i = ref (-1) in
           let idx =
             List.find_map
               (fun c' -> incr i; if c' = c then Some !i else None)
               cols
           in
           Option.bind idx (fun idx ->
               median_of_column
                 (List.filter_map (fun r -> List.nth_opt r idx) rows))
           |> Option.map (fun m -> (c, Json.Float m)))
  in
  Json.Obj
    [ ("title", Json.String (Table.title t));
      ("columns", Json.List (List.map (fun c -> Json.String c) cols));
      ("rows",
       Json.List
         (List.map
            (fun r -> Json.List (List.map (fun c -> Json.String c) r))
            rows));
      ("median_by_column", Json.Obj medians) ]

(* Every BENCH_*.json carries a schema version at the top level; bump it
   whenever the field set changes so dashboards fail loudly instead of
   reading stale columns.  v2 added wall_ms / minor_words / major_words /
   series_points / peak_pending cost columns; v3 added the engine core
   suite's events_per_s / words_per_event columns. *)
let schema_version = 3

let emit_json name json =
  if !json_mode then begin
    let json =
      match json with
      | Json.Obj fields when not (List.mem_assoc "schema_version" fields) ->
        Json.Obj (("schema_version", Json.Int schema_version) :: fields)
      | j -> j
    in
    let path = Printf.sprintf "BENCH_%s.json" name in
    let oc = open_out path in
    output_string oc (Json.to_string json);
    output_char oc '\n';
    close_out oc;
    say "wrote %s@." path
  end

let report name t =
  print_table t;
  emit_json name (table_json t)

(* Key per-scheduler metrics from one recorded canonical run of the
   Figure 1 workload: scheduler activity next to the response-time medians.
   LSA splits its grants between leader broadcasts and follower
   enforcement, so the grant counter sums the three names.  The adaptive
   meta-scheduler books its activity under its children's names, so its
   grant counters read zero here. *)
let scheduler_metrics ?(clients = 8) scheduler =
  let wl = Figure1.default in
  let cls = Figure1.cls wl and gen = Figure1.gen wl in
  let obs = Recorder.create () in
  let r, wall_ms, minor_words, major_words =
    Experiment.costed (fun () ->
        Experiment.run_workload ~obs ~scheduler ~clients ~cls ~gen ())
  in
  let ts = Recorder.timeseries obs in
  let peak_pending =
    let v = Timeseries.peak ts "engine.pending" in
    if Float.is_nan v then 0.0 else v
  in
  let m = Recorder.metrics obs in
  let c suffix = Metrics.counter_value m ("sched." ^ scheduler ^ "." ^ suffix) in
  let grants =
    c "grants" + c "grant_broadcasts" + c "follower_grants"
    + c "independent_grants"
  in
  ( scheduler,
    Json.Obj
      [ ("mean_response_ms", Json.Float r.Experiment.mean_response_ms);
        ("p95_response_ms", Json.Float r.Experiment.p95_response_ms);
        ("throughput_per_s", Json.Float r.Experiment.throughput_per_s);
        ("broadcasts", Json.Int r.Experiment.broadcasts);
        ("grants", Json.Int grants);
        ("deferrals", Json.Int (c "deferrals"));
        ("totem_deliveries",
         Json.Int (Metrics.counter_value m "totem.deliveries"));
        ("wall_ms", Json.Float wall_ms);
        ("minor_words", Json.Float minor_words);
        ("major_words", Json.Float major_words);
        ("series_points", Json.Int (Timeseries.point_count ts));
        ("peak_pending", Json.Float peak_pending) ] )

(* Every registered decision module must produce a metrics row — the CI
   bench smoke step asserts exactly that against `detmt-cli sched`. *)
let all_scheduler_names = List.map (fun s -> s.Registry.name) Registry.all

(* The ≥64-concurrent-requests scaling column: one canonical high-fan-in
   point per scheduler, recording how the indexed grant paths hold up when
   the candidate sets are an order of magnitude larger than Figure 1's. *)
let scaling_clients = 64

let scaling_json () =
  let rows =
    List.map
      (fun scheduler ->
        let (_, json) = scheduler_metrics ~clients:scaling_clients scheduler in
        (scheduler, json))
      all_scheduler_names
  in
  Json.Obj
    [ ("clients", Json.Int scaling_clients);
      ("schedulers", Json.Obj rows) ]

(* ------------------------- figure experiments ---------------------- *)

let fig1 () =
  heading "E1 / Figure 1 — response time vs #clients (paper's benchmark)";
  let table, series = Experiment.figure1 () in
  print_table table;
  (* E19 rider: the conflict-graph grid on the low-conflict workload.  The
     1024-client column needs the serial pMAT baseline at 1024 resident
     candidates — its per-grant rescans make that a multi-hour run — so,
     like E18's macro grid, the full client range only runs with
     DETMT_PARALLEL_GRID=1; the CI smoke asserts the 64/256 rows. *)
  let parallel_rows =
    let grid = Sys.getenv_opt "DETMT_PARALLEL_GRID" = Some "1" in
    Experiment.parallel_pool
      ~clients_list:(if grid then [ 64; 256; 1024 ] else [ 64; 256 ])
      ()
  in
  print_table (Experiment.parallel_table parallel_rows);
  (* E20 rider: the workspace grids.  E20a (misprediction safety net) rides
     inside the [parallel] JSON section as [opaque]; E20b (early-release
     tail gap) gets its own [tail_release] section. *)
  let workspace_rows = Experiment.workspace_pool () in
  print_table (Experiment.workspace_table workspace_rows);
  let tail_rows = Experiment.tail_release_pool () in
  print_table (Experiment.tail_release_table tail_rows);
  if !json_mode then begin
    let metrics =
      List.map (fun s -> scheduler_metrics s) all_scheduler_names
    in
    let parallel_section =
      match Experiment.parallel_json parallel_rows with
      | Json.Obj fields ->
        Json.Obj
          (fields @ [ ("opaque", Experiment.workspace_json workspace_rows) ])
      | j -> j
    in
    match table_json table with
    | Json.Obj fields ->
      emit_json "fig1"
        (Json.Obj
           (fields
           @ [ ("scheduler_metrics", Json.Obj metrics);
               ("scaling", scaling_json ());
               ("parallel", parallel_section);
               ("tail_release",
                Experiment.tail_release_json tail_rows) ]))
    | _ -> ()
  end;
  Series.chart Format.std_formatter series;
  say "@.Expected shape: SEQ worst and degrading linearly; LSA best; MAT \
       ahead of SAT/PDS.@.E19 shape: cgs scales near-linearly with the pool \
       on the 4096-mutex workload@.(conflict-free classes) and passes pMAT \
       at 4 workers; pcgs matches cgs (no@.nested calls to release early \
       around).@."

let fig1b () =
  heading "E1b — compute-heavy ablation (front computation per request)";
  report "fig1b" (Experiment.figure1b ());
  say "Expected shape: with lock-free front work, MAT clearly beats SAT and \
       PDS@.(\"threads that issue computations before changing the object \
       state\").@."

let show_timeline scheduler workload =
  say "@.schedule under %s:@." scheduler;
  Timeline.render Format.std_formatter
    (Experiment.timeline ~scheduler ~workload ())

let fig2 () =
  heading "E2 / Figure 2 — primary hand-off after the last lock";
  report "fig2" (Experiment.figure2 ());
  show_timeline "mat" `Tail;
  show_timeline "mat-ll" `Tail;
  say "@.Expected shape: MAT+LL and PMAT hand the primary role over right \
       after the@.last unlock and run the 20 ms tails concurrently; MAT \
       serialises them.@."

let fig3 () =
  heading "E3 / Figure 3 — non-conflicting mutexes";
  report "fig3" (Experiment.figure3 ());
  show_timeline "mat" `Disjoint;
  show_timeline "pmat" `Disjoint;
  say "@.Expected shape: MAT degenerates to SEQ although the locks are \
       disjoint; PMAT@.grants them concurrently (the figure's 'ideal').@."

let fig4 () =
  heading "E4 / Figure 4 — code transformation and injection";
  say "%s@." (Experiment.figure4 ())

let wan () =
  heading "E5 — WAN sweep: LSA's broadcast dependence";
  report "wan" (Experiment.wan ());
  say "Expected shape: LSA's advantage shrinks with latency (it broadcasts \
       every@.grant); MAT's messages are per-request only.@."

let failover () =
  heading "E6 — leader failover take-over time";
  report "failover" (Experiment.failover ());
  say "Expected shape: LSA pays roughly the failure-detection timeout; the \
       symmetric@.algorithms pay nothing.@."

let pds () =
  heading "E7 — PDS batch size and dummy-message overhead";
  report "pds" (Experiment.pds_batch ());
  say "Expected shape: small batches serialise; large batches need dummy \
       traffic@.whenever the offered concurrency is below the batch size.@."

let overhead () =
  heading "E8 — bookkeeping overhead vs prediction gain (section 5)";
  report "overhead" (Experiment.overhead ());
  say "Expected shape: on the Figure-1 workload (10 announcements per \
       request) the@.PMAT advantage erodes and crosses over around 5 ms per \
       injected call.@."

let prodcons () =
  heading "E9 — condition variables: producer/consumer";
  report "prodcons" (Experiment.prodcons ())

let determinism () =
  heading "E10 — determinism matrix";
  report "determinism" (Experiment.determinism ());
  say "LSA agrees on states and per-mutex acquisition order but not on full \
       traces@.(followers replay the leader's decisions); freefall shows \
       what the checker@.catches without deterministic scheduling.@."

let saturation () =
  heading "E13 — open-loop saturation: throughput limits per scheduler";
  report "saturation" (Experiment.saturation ());
  say "Expected shape: SEQ saturates first (~1/solo-time), SAT and MAT at \
       the@.single-active-thread bound, LSA and predicted MAT at the CPU \
       pool's capacity.@."

let model () =
  heading "E11 — the section-5 analytic model vs the simulator";
  report "model" (Experiment.model ());
  say "Expected shape: within ~10%% at scale for seq/sat/mat/lsa; the model \
       captures@.SEQ's slope, the single-active-thread bound, MAT's \
       pre-lock overlap and LSA's@.core-bound plateau.@."

let shard () =
  heading "E14 — sharded multi-group replication: throughput scaling";
  let rows = Experiment.shard_sweep () in
  print_table (Experiment.shard_table rows);
  emit_json "shard" (Experiment.shard_json rows);
  say "Expected shape: near-linear scaling at 0%% cross (disjoint closures \
       never@.coordinate across groups); the two-phase path erodes the gain \
       as the@.transfer ratio grows.@."

let elastic () =
  heading "E16 — elastic reconfiguration: autoscaling vs static shard counts";
  let rows = Experiment.elastic_sweep () in
  print_table (Experiment.elastic_table rows);
  emit_json "elastic" (Experiment.elastic_json rows);
  say "Expected shape: every static count leaves the drifting hotspot's \
       p95 near the@.single-group figure (the hot group is the tail); the \
       autoscaler splits past the@.static ceiling and lands above 1.00x \
       against the best static at every client@.count — the split drains \
       are a one-time cost the run length amortises.@."

let workspace () =
  heading "E20 — deterministic workspaces: safety net and early release";
  let rows = Experiment.workspace_pool () in
  print_table (Experiment.workspace_table rows);
  let trows = Experiment.tail_release_pool () in
  print_table (Experiment.tail_release_table trows);
  emit_json "workspace"
    (Json.Obj
       [ ("opaque", Experiment.workspace_json rows);
         ("tail_release", Experiment.tail_release_json trows) ]);
  say "Expected shape: cgs+ws at 4 workers beats plain cgs at 4 (the \
       workspace runs@.Top-class requests off the critical path instead of \
       draining the pool); pcgs@.beats cgs on the tail workload (early \
       release overlaps the 20 ms tails).@."

let interference () =
  heading "E12 — static interference analysis (section 5)";
  Interference.pp_report Format.std_formatter (Experiment.interference ());
  say "@.Methods over fixed, distinct monitors are provably independent; a \
       request-@.supplied lock interferes with everything.@."

(* ------------------------- engine core suite ----------------------- *)

(* E18 gate: raw typed-event throughput plus macro points through the full
   replication stack.  The two derived columns — events_per_s and
   words_per_event (minor words allocated per executed event) — are what
   the CI smoke step asserts; the regression targets live in
   EXPERIMENTS.md E18. *)

let engine_raw_budget = 200_000

(* A self-sustaining chain of typed events: 64 staggered seeds, each
   handler re-posts itself while the budget lasts.  Nothing but the engine
   core runs, so this is the ceiling the macro rows are measured against. *)
let engine_raw () =
  let engine = Engine.create () in
  let budget = ref engine_raw_budget in
  let h = ref 0 in
  h :=
    Engine.register_handler engine (fun x ->
        if !budget > 0 then begin
          decr budget;
          Engine.post engine ~delay:0.01 !h (x + 1)
        end);
  for i = 0 to 63 do
    Engine.post engine ~delay:(0.01 *. float_of_int i) !h i
  done;
  let (), wall_ms, minor_words, _major =
    Experiment.costed (fun () -> Engine.run engine)
  in
  (Engine.events_executed engine, wall_ms, minor_words)

(* One full-stack run: clients through Active through Totem through the
   scheduler, the workload the ISSUE's >=3x / >=5x gates are stated on. *)
let engine_macro ~scheduler ~clients () =
  let wl = Figure1.default in
  let cls = Figure1.cls wl and gen = Figure1.gen wl in
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls
      ~params:{ Active.default_params with scheduler }
      ()
  in
  let (), wall_ms, minor_words, _major =
    Experiment.costed (fun () ->
        Client.run_clients ~engine ~system ~clients ~requests_per_client:4
          ~gen ())
  in
  (Engine.events_executed engine, wall_ms, minor_words)

let engine_bench () =
  heading "E18 — engine core: typed events, timing wheel, fused delivery";
  (* pMAT is deliberately absent: its decision module's per-grant rescans
     are quadratic in the candidate set and would swamp the engine signal
     at 256+ clients.  The E18 macro grid (8192/16384, several minutes of
     wall time) only runs with DETMT_ENGINE_GRID=1; the CI smoke asserts
     the columns on the sub-second rows. *)
  let grid = Sys.getenv_opt "DETMT_ENGINE_GRID" = Some "1" in
  let runs =
    [ ("raw-chain", engine_raw);
      ("seq/figure1@256", engine_macro ~scheduler:"seq" ~clients:256);
      ("mat/figure1@256", engine_macro ~scheduler:"mat" ~clients:256);
      ("lsa/figure1@256", engine_macro ~scheduler:"lsa" ~clients:256) ]
    @
    if grid then
      [ ("mat/figure1@8192", engine_macro ~scheduler:"mat" ~clients:8192);
        ("mat/figure1@16384", engine_macro ~scheduler:"mat" ~clients:16384) ]
    else []
  in
  let rows =
    List.map
      (fun (name, f) ->
        let events, wall_ms, minor_words = f () in
        let events_per_s =
          if wall_ms > 0.0 then float_of_int events /. (wall_ms /. 1000.0)
          else 0.0
        in
        let words_per_event =
          if events > 0 then minor_words /. float_of_int events else 0.0
        in
        (name, events, wall_ms, events_per_s, minor_words, words_per_event))
      runs
  in
  let table =
    Table.create ~title:"E18: engine core throughput"
      ~columns:
        [ "run"; "events"; "wall_ms"; "events/s"; "minor_words";
          "words/event" ]
  in
  List.iter
    (fun (name, events, wall_ms, events_per_s, minor_words, words_per_event) ->
      Table.add_row table
        [ name; string_of_int events; Printf.sprintf "%.1f" wall_ms;
          Printf.sprintf "%.0f" events_per_s;
          Printf.sprintf "%.0f" minor_words;
          Printf.sprintf "%.1f" words_per_event ])
    rows;
  print_table table;
  emit_json "engine"
    (Json.Obj
       [ ("rows",
          Json.List
            (List.map
               (fun (name, events, wall_ms, events_per_s, minor_words,
                     words_per_event) ->
                 Json.Obj
                   [ ("name", Json.String name);
                     ("events", Json.Int events);
                     ("wall_ms", Json.Float wall_ms);
                     ("events_per_s", Json.Float events_per_s);
                     ("minor_words", Json.Float minor_words);
                     ("words_per_event", Json.Float words_per_event) ])
               rows)) ]);
  say "Expected shape: the raw chain costs a few words/event (boxed float \
       timestamps@.only); the macro rows sit well under the pre-wheel \
       baseline recorded in@.EXPERIMENTS.md E18.@."

(* -------------------------- micro-benchmarks ----------------------- *)

let micro () =
  heading "B1-B4 — Bechamel micro-benchmarks of the framework";
  let open Bechamel in
  let fig1_cls = Figure1.cls Figure1.default in
  let small_system scheduler =
    Staged.stage (fun () ->
        let engine = Engine.create () in
        let system =
          Active.create ~engine ~cls:fig1_cls
            ~params:{ Active.default_params with scheduler }
            ()
        in
        let gen = Figure1.gen Figure1.default in
        Client.run_clients ~engine ~system ~clients:2 ~requests_per_client:2
          ~gen ())
  in
  let tests =
    [ Test.make ~name:"transform:basic(figure1)"
        (Staged.stage (fun () -> ignore (Transform.basic fig1_cls)));
      Test.make ~name:"transform:predictive(figure1)"
        (Staged.stage (fun () -> ignore (Transform.predictive fig1_cls)));
      Test.make ~name:"analysis:paths(figure1/4iter)"
        (let small =
           Figure1.cls { Figure1.default with Figure1.iterations = 4 }
         in
         let m = Class_def.find_method_exn (Transform.basic small) "work" in
         Staged.stage (fun () -> ignore (Paths.enumerate m.body)));
      Test.make ~name:"sim:figure1-run(seq)" (small_system "seq");
      Test.make ~name:"sim:figure1-run(mat)" (small_system "mat");
      Test.make ~name:"sim:figure1-run(pmat)" (small_system "pmat");
      Test.make ~name:"rng:int64"
        (let rng = Rng.create 1L in
         Staged.stage (fun () -> ignore (Rng.int64 rng)));
      (* The indexed grant path against the scan it replaced: 256 resident
         candidates, one add + min + remove per run.  The ordered set pays
         O(log n); the reference pays a full fold + sort on every [min]. *)
      Test.make ~name:"index:candidate(add+min+remove,n=256)"
        (let idx = Candidate_index.create () in
         List.iter (fun k -> Candidate_index.add idx ~key:k k) (List.init 256 Fun.id);
         let k = ref 0 in
         Staged.stage (fun () ->
             incr k;
             let key = 256 + (!k land 255) in
             Candidate_index.add idx ~key key;
             ignore (Candidate_index.min idx);
             Candidate_index.remove idx key));
      Test.make ~name:"index:reference-scan(add+min+remove,n=256)"
        (let idx = Candidate_index.Reference.create () in
         List.iter
           (fun k -> Candidate_index.Reference.add idx ~key:k k)
           (List.init 256 Fun.id);
         let k = ref 0 in
         Staged.stage (fun () ->
             incr k;
             let key = 256 + (!k land 255) in
             Candidate_index.Reference.add idx ~key key;
             ignore (Candidate_index.Reference.min idx);
             Candidate_index.Reference.remove idx key));
      (* The timing wheel against the binary heap it replaced. *)
      Test.make ~name:"pqueue:wheel(push+pop)"
        (let q = Pqueue.create () in
         Staged.stage (fun () ->
             Pqueue.push q ~time:1.0 ~seq:0 0;
             ignore (Pqueue.pop_raw q)));
      Test.make ~name:"pqueue:reference-heap(push+pop)"
        (let q = Pqueue.Reference.create () in
         Staged.stage (fun () ->
             Pqueue.Reference.push q ~time:1.0 ~seq:0 0;
             ignore (Pqueue.Reference.pop q)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let results =
    List.map (fun t -> analyze (benchmark (Test.make_grouped ~name:"" [ t ])))
      tests
  in
  List.iter2
    (fun test result ->
      Hashtbl.iter
        (fun _name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> Printf.sprintf "%12.1f ns/run" e
            | Some _ | None -> "(no estimate)"
          in
          say "%-36s %s@."
            (String.concat "/" (List.map Test.Elt.name (Test.elements test)))
            estimate)
        result)
    tests results

(* ------------------------------ driver ----------------------------- *)

let experiments =
  [ ("fig1", fig1); ("fig1b", fig1b); ("fig2", fig2); ("fig3", fig3);
    ("fig4", fig4); ("wan", wan); ("failover", failover); ("pds", pds);
    ("overhead", overhead); ("prodcons", prodcons);
    ("determinism", determinism); ("saturation", saturation);
    ("model", model); ("shard", shard); ("elastic", elastic);
    ("workspace", workspace); ("interference", interference);
    ("engine", engine_bench);
    ("micro", micro) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json, args = List.partition (( = ) "--json") args in
  json_mode := json <> [];
  match args with
  | [] | "all" :: _ -> List.iter (fun (_, f) -> f ()) experiments
  | "list" :: _ ->
    List.iter (fun (name, _) -> say "%s@." name) experiments
  | name :: _ -> (
    match List.assoc_opt name experiments with
    | Some f -> f ()
    | None ->
      Format.eprintf "unknown experiment %S; try 'list'@." name;
      exit 2)
