(* Tests for sharded multi-group replication: the deterministic router, the
   1-shard ≡ unsharded contract, N-shard seed-reproducibility, the
   cross-shard two-phase path, batching, and the sharded chaos harness. *)

open Detmt_sim
open Detmt_replication

let b = Alcotest.bool

let wl cross_ratio =
  { Detmt_workload.Sharded.default with
    Detmt_workload.Sharded.cross_ratio }

let make ?(scheduler = "mat") ?batching ~shards ~cross () =
  let workload = wl cross in
  let engine = Engine.create () in
  let base = { Active.default_params with scheduler; batching } in
  let system =
    Shard.create ~engine
      ~cls:(Detmt_workload.Sharded.cls workload)
      ~params:{ Shard.shards; base } ()
  in
  (engine, system, Detmt_workload.Sharded.gen workload)

let drive ?(clients = 8) ?(requests = 4) ?(seed = 7L) system gen =
  Shard.run_clients system ~clients ~requests_per_client:requests ~gen ~seed
    ()

(* ------------------------------ router ------------------------------ *)

let test_route_stable_and_in_range () =
  List.iter
    (fun shards ->
      let hit = Array.make shards false in
      for m = 0 to 999 do
        let s = Shard.route ~shards m in
        Alcotest.check b "in range" true (s >= 0 && s < shards);
        Alcotest.(check int) "pure function of id" s (Shard.route ~shards m);
        hit.(s) <- true
      done;
      Alcotest.check b
        (Printf.sprintf "all %d shards used over 1000 ids" shards)
        true
        (Array.for_all Fun.id hit))
    [ 1; 2; 4; 8 ]

let test_shard_set_routing () =
  let _, system, _ = make ~shards:4 ~cross:0.5 () in
  (* update locks exactly arg 0's object *)
  let s =
    Shard.shard_set system ~meth:"update"
      ~args:[| Detmt_lang.Ast.Vmutex 17 |]
  in
  Alcotest.(check (list int)) "update routes to its object's shard"
    [ Shard.route ~shards:4 17 ] s;
  (* transfer's closure is both arguments, ascending and deduplicated *)
  let a, bb =
    (* find two objects on different shards *)
    let rec go i =
      if Shard.route ~shards:4 0 <> Shard.route ~shards:4 i then (0, i)
      else go (i + 1)
    in
    go 1
  in
  let set =
    Shard.shard_set system ~meth:"transfer"
      ~args:[| Detmt_lang.Ast.Vmutex a; Detmt_lang.Ast.Vmutex bb |]
  in
  Alcotest.(check (list int)) "transfer routes to both shards"
    (List.sort_uniq compare
       [ Shard.route ~shards:4 a; Shard.route ~shards:4 bb ])
    set;
  (* same object twice: a single shard, once *)
  let set1 =
    Shard.shard_set system ~meth:"transfer"
      ~args:[| Detmt_lang.Ast.Vmutex a; Detmt_lang.Ast.Vmutex a |]
  in
  Alcotest.(check (list int)) "duplicate objects deduplicate"
    [ Shard.route ~shards:4 a ] set1

(* --------------------- 1 shard ≡ unsharded -------------------------- *)

let unsharded_table ~scheduler ~cross ~seed =
  let workload = wl cross in
  let engine = Engine.create () in
  let system =
    Active.create ~engine
      ~cls:(Detmt_workload.Sharded.cls workload)
      ~params:{ Active.default_params with scheduler }
      ()
  in
  Client.run_clients ~engine ~system ~clients:8 ~requests_per_client:4
    ~gen:(Detmt_workload.Sharded.gen workload) ~seed ();
  ( Active.replies_received system,
    Active.reply_times system,
    List.map
      (fun r ->
        ( Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r),
          Detmt_runtime.Replica.state_fingerprint r ))
      (Active.live_replicas system) )

let sharded_table ~scheduler ~cross ~seed =
  let _, system, gen = make ~scheduler ~shards:1 ~cross () in
  drive ~seed system gen;
  ( Shard.replies_received system,
    Shard.reply_times system,
    List.map
      (fun r ->
        ( Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r),
          Detmt_runtime.Replica.state_fingerprint r ))
      (Active.live_replicas (Shard.groups system).(0)) )

let test_one_shard_equals_unsharded scheduler () =
  List.iter
    (fun cross ->
      Alcotest.check b
        (Printf.sprintf "%s, %.0f%% transfers" scheduler (100.0 *. cross))
        true
        (unsharded_table ~scheduler ~cross ~seed:7L
        = sharded_table ~scheduler ~cross ~seed:7L))
    [ 0.0; 0.3 ]

(* ------------------- N shards: reproducible, correct ----------------- *)

let run_fingerprint ?batching ~shards ~cross ~seed () =
  let _, system, gen = make ?batching ~shards ~cross () in
  drive ~seed system gen;
  ( Shard.fingerprint system,
    Shard.replies_received system,
    Shard.reply_times system,
    Shard.cross_shard_requests system,
    Shard.consistent system )

let test_n_shard_reproducible () =
  let a = run_fingerprint ~shards:4 ~cross:0.3 ~seed:11L () in
  let a' = run_fingerprint ~shards:4 ~cross:0.3 ~seed:11L () in
  Alcotest.check b "same seed, bit-identical sharded run" true (a = a');
  let fp, replies, _, cross, consistent = a in
  Alcotest.(check int) "exactly-once replies" (8 * 4) replies;
  Alcotest.check b "some requests crossed shards" true (cross > 0);
  Alcotest.check b "every group internally consistent" true consistent;
  let fp2, _, _, _, _ = run_fingerprint ~shards:4 ~cross:0.3 ~seed:12L () in
  Alcotest.check b "different seed, different run" true (fp <> fp2)

let test_cross_shard_forced () =
  (* A workload of nothing but transfers across distinct objects: with 2
     shards roughly half the closures span both.  All must be answered
     exactly once, and the reply arrives only after every involved group
     executed (response >= the single-shard round trip). *)
  let engine, system, _ = make ~shards:2 ~cross:1.0 () in
  let a, bb =
    let rec go i =
      if Shard.route ~shards:2 0 <> Shard.route ~shards:2 i then (0, i)
      else go (i + 1)
    in
    go 1
  in
  let gen ~client:_ ~seq:_ _rng =
    ("transfer", [| Detmt_lang.Ast.Vmutex a; Detmt_lang.Ast.Vmutex bb |])
  in
  Shard.run_clients system ~clients:4 ~requests_per_client:3 ~gen ~seed:5L ();
  ignore engine;
  Alcotest.(check int) "all replies" 12 (Shard.replies_received system);
  Alcotest.(check int) "every request crossed" 12
    (Shard.cross_shard_requests system);
  Alcotest.(check int) "no fast path" 0 (Shard.fast_path_requests system);
  Alcotest.check b "consistent" true (Shard.consistent system)

let test_self_transfer_fast_path () =
  (* Degenerate endpoints (the [objects = 1]-per-shard case): a transfer
     whose two endpoints are the same object has a single-shard lock
     closure — the router must collapse it onto the fast path, never open
     a two-phase cross-shard delivery that would wait forever for a
     second shard that was never involved. *)
  let engine, system, _ = make ~shards:2 ~cross:1.0 () in
  let gen ~client:_ ~seq:_ _rng =
    ("transfer", [| Detmt_lang.Ast.Vmutex 3; Detmt_lang.Ast.Vmutex 3 |])
  in
  Shard.run_clients system ~clients:4 ~requests_per_client:3 ~gen ~seed:5L ();
  ignore engine;
  Alcotest.(check int) "all replies" 12 (Shard.replies_received system);
  Alcotest.(check int) "no cross-shard deliveries" 0
    (Shard.cross_shard_requests system);
  Alcotest.(check int) "every request on the fast path" 12
    (Shard.fast_path_requests system);
  Alcotest.check b "consistent" true (Shard.consistent system)

(* ----------------------------- batching ----------------------------- *)

let test_batching_deterministic () =
  let batching = { Detmt_gcs.Totem.max_batch = 8; delay_ms = 0.2 } in
  let a = run_fingerprint ~batching ~shards:2 ~cross:0.2 ~seed:3L () in
  let a' = run_fingerprint ~batching ~shards:2 ~cross:0.2 ~seed:3L () in
  Alcotest.check b "batched run reproducible" true (a = a');
  let _, system, gen = make ~batching ~shards:2 ~cross:0.2 () in
  drive ~seed:3L system gen;
  let batches = Shard.wire_batches system in
  let broadcasts = Shard.broadcasts system in
  Alcotest.check b "batches coalesce broadcasts" true
    (batches > 0 && batches < broadcasts)

let test_batch_of_one_equals_disabled () =
  let one = { Detmt_gcs.Totem.max_batch = 1; delay_ms = 0.5 } in
  Alcotest.check b "max_batch = 1 is batching off" true
    (run_fingerprint ~batching:one ~shards:2 ~cross:0.2 ~seed:3L ()
    = run_fingerprint ~shards:2 ~cross:0.2 ~seed:3L ())

(* --------------------------- sharded chaos --------------------------- *)

let chaos_run ~shards ~scenario_name ~seed =
  match Chaos.find_scenario scenario_name with
  | None -> Alcotest.fail ("no scenario " ^ scenario_name)
  | Some scenario ->
    let workload = wl 0.3 in
    Chaos.run ~seed ~shards ~scenario ~scheduler:"mat"
      ~cls:(Detmt_workload.Sharded.cls workload)
      ~gen:(Detmt_workload.Sharded.gen workload)
      ()

let test_chaos_sharded_invariants () =
  List.iter
    (fun scenario_name ->
      let o = chaos_run ~shards:2 ~scenario_name ~seed:42L in
      Alcotest.check b (scenario_name ^ " ok under 2 shards") true
        (Chaos.ok o);
      Alcotest.(check int) "outcome records the shard count" 2
        o.Chaos.o_shards)
    [ "baseline"; "lossy"; "crash-recover" ]

let test_chaos_sharded_reproducible () =
  let o = chaos_run ~shards:2 ~scenario_name:"lossy" ~seed:42L in
  let o' = chaos_run ~shards:2 ~scenario_name:"lossy" ~seed:42L in
  Alcotest.check b "same seed, same fingerprint" true
    (o.Chaos.o_fingerprint = o'.Chaos.o_fingerprint);
  Alcotest.check b "losses actually injected" true (o.Chaos.o_losses > 0)

let test_chaos_sharded_recovery_per_group () =
  let o = chaos_run ~shards:2 ~scenario_name:"crash-recover" ~seed:42L in
  Alcotest.(check int) "every group recovers its killed replica" 2
    o.Chaos.o_recoveries;
  Alcotest.(check int) "wanted scales with shards" 2 o.Chaos.o_recoveries_wanted

(* ------------------------------ params ------------------------------ *)

let test_create_validation () =
  let workload = wl 0.0 in
  let engine = Engine.create () in
  let cls = Detmt_workload.Sharded.cls workload in
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Shard.create: shards < 1") (fun () ->
      ignore
        (Shard.create ~engine ~cls
           ~params:{ Shard.shards = 0; base = Active.default_params }
           ()));
  Alcotest.check_raises "replica_base must be 0"
    (Invalid_argument "Shard.create: base.replica_base must be 0") (fun () ->
      ignore
        (Shard.create ~engine ~cls
           ~params:
             { Shard.shards = 2;
               base = { Active.default_params with replica_base = 3 } }
           ()))

let suite =
  [ ("router stable and in range", `Quick, test_route_stable_and_in_range);
    ("shard_set routing", `Quick, test_shard_set_routing);
    ("1 shard = unsharded (mat)", `Quick,
     test_one_shard_equals_unsharded "mat");
    ("1 shard = unsharded (pmat)", `Quick,
     test_one_shard_equals_unsharded "pmat");
    ("1 shard = unsharded (lsa)", `Quick,
     test_one_shard_equals_unsharded "lsa");
    ("n-shard run reproducible", `Quick, test_n_shard_reproducible);
    ("cross-shard path exactly-once", `Quick, test_cross_shard_forced);
    ("self-transfer takes the fast path", `Quick,
     test_self_transfer_fast_path);
    ("batching deterministic", `Quick, test_batching_deterministic);
    ("batch of one = disabled", `Quick, test_batch_of_one_equals_disabled);
    ("chaos invariants under 2 shards", `Quick,
     test_chaos_sharded_invariants);
    ("chaos sharded reproducible", `Quick, test_chaos_sharded_reproducible);
    ("chaos recovery per group", `Quick,
     test_chaos_sharded_recovery_per_group);
    ("create validation", `Quick, test_create_validation);
  ]

let () = Alcotest.run "shard" [ ("shard", suite) ]
