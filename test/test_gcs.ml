(* Unit tests for the group communication substrate: total-order broadcast,
   duplicate suppression and membership. *)

open Detmt_sim
open Detmt_gcs

let b = Alcotest.bool

let setup ?latency () =
  let engine = Engine.create () in
  let bus = Totem.create ?latency engine in
  (engine, bus)

let collector bus ~id =
  let received = ref [] in
  Totem.subscribe bus ~id (fun m -> received := m :: !received);
  fun () -> List.rev !received

let payloads msgs = List.map (fun m -> m.Message.payload) msgs

let seqs msgs = List.map (fun m -> m.Message.seq) msgs

let test_total_order () =
  let engine, bus = setup () in
  let got0 = collector bus ~id:0 in
  let got1 = collector bus ~id:1 in
  List.iter (fun p -> ignore (Totem.broadcast bus ~sender:9 p))
    [ "a"; "b"; "c" ];
  Engine.run engine;
  Alcotest.(check (list string)) "subscriber 0 order" [ "a"; "b"; "c" ]
    (payloads (got0 ()));
  Alcotest.(check (list string)) "subscriber 1 order" [ "a"; "b"; "c" ]
    (payloads (got1 ()));
  Alcotest.(check (list int)) "sequence numbers" [ 0; 1; 2 ] (seqs (got0 ()))

let test_latency_applied () =
  let engine, bus = setup ~latency:(fun ~sender:_ ~dest:_ -> 7.0) () in
  let arrival = ref 0.0 in
  Totem.subscribe bus ~id:0 (fun _ -> arrival := Engine.now engine);
  ignore (Totem.broadcast bus ~sender:1 "x");
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "one-way latency" 7.0 !arrival

let test_per_destination_latency () =
  let latency ~sender:_ ~dest = if dest = 0 then 1.0 else 10.0 in
  let engine, bus = setup ~latency () in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  Totem.subscribe bus ~id:0 (fun _ -> t0 := Engine.now engine);
  Totem.subscribe bus ~id:1 (fun _ -> t1 := Engine.now engine);
  ignore (Totem.broadcast bus ~sender:9 "x");
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "near destination" 1.0 !t0;
  Alcotest.(check (float 1e-9)) "far destination" 10.0 !t1

let test_fifo_even_with_shrinking_latency () =
  (* Second message has lower latency but must not overtake the first. *)
  let count = ref 0 in
  let latency ~sender:_ ~dest:_ =
    incr count;
    if !count = 1 then 10.0 else 1.0
  in
  let engine, bus = setup ~latency () in
  let got = collector bus ~id:0 in
  ignore (Totem.broadcast bus ~sender:1 "slow");
  ignore (Totem.broadcast bus ~sender:1 "fast");
  Engine.run engine;
  Alcotest.(check (list string)) "sequence order preserved"
    [ "slow"; "fast" ]
    (payloads (got ()))

let test_dead_subscriber_drops () =
  let engine, bus = setup () in
  let got = collector bus ~id:0 in
  ignore (Totem.broadcast bus ~sender:1 "before");
  Engine.run engine;
  Totem.set_alive bus 0 false;
  ignore (Totem.broadcast bus ~sender:1 "while-dead");
  Engine.run engine;
  Totem.set_alive bus 0 true;
  ignore (Totem.broadcast bus ~sender:1 "after");
  Engine.run engine;
  Alcotest.(check (list string)) "dead period dropped" [ "before"; "after" ]
    (payloads (got ()))

let test_kill_drops_in_flight () =
  (* A message already on the wire is not delivered to a replica that died
     before its arrival. *)
  let engine, bus = setup ~latency:(fun ~sender:_ ~dest:_ -> 5.0) () in
  let got = collector bus ~id:0 in
  ignore (Totem.broadcast bus ~sender:1 "in-flight");
  Engine.schedule engine ~delay:1.0 (fun () -> Totem.set_alive bus 0 false);
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length (got ()))

let test_counters_and_kinds () =
  let engine, bus = setup () in
  let (_ : unit -> string Message.t list) = collector bus ~id:0 in
  let (_ : unit -> string Message.t list) = collector bus ~id:1 in
  Totem.count_kind bus "request";
  ignore (Totem.broadcast bus ~sender:1 "x");
  Totem.count_kind bus "request";
  ignore (Totem.broadcast bus ~sender:1 "y");
  Engine.run engine;
  Alcotest.(check int) "broadcasts" 2 (Totem.broadcasts bus);
  Alcotest.(check int) "deliveries" 4 (Totem.deliveries bus);
  Alcotest.(check (list (pair string int))) "kinds" [ ("request", 2) ]
    (Totem.kind_counts bus)

let test_duplicate_subscriber_rejected () =
  let _, bus = setup () in
  Totem.subscribe bus ~id:0 (fun _ -> ());
  Alcotest.check b "duplicate id rejected" true
    (try
       Totem.subscribe bus ~id:0 (fun _ -> ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------ Dedup ------------------------------ *)

let test_dedup () =
  let d = Dedup.create () in
  Alcotest.check b "first is new" false (Dedup.mark d ~client:1 ~request:1);
  Alcotest.check b "second is duplicate" true
    (Dedup.mark d ~client:1 ~request:1);
  Alcotest.check b "other client distinct" false
    (Dedup.mark d ~client:2 ~request:1);
  Alcotest.(check int) "distinct count" 2 (Dedup.count d);
  Alcotest.(check int) "duplicates suppressed" 1 (Dedup.duplicates d);
  Alcotest.check b "seen query" true (Dedup.seen d ~client:1 ~request:1)

(* ------------------------------ Group ------------------------------ *)

let test_group_initial_view () =
  let engine = Engine.create () in
  let g = Group.create engine ~members:[ 2; 0; 1 ] ~detection_timeout_ms:10.0 in
  let v = Group.current_view g in
  Alcotest.(check int) "view number" 0 v.Group.number;
  Alcotest.(check (list int)) "sorted members" [ 0; 1; 2 ] v.Group.members;
  Alcotest.(check int) "leader is lowest id" 0 (Group.leader g)

let test_group_failure_detection_delay () =
  let engine = Engine.create () in
  let g = Group.create engine ~members:[ 0; 1; 2 ] ~detection_timeout_ms:10.0 in
  let changed_at = ref (-1.0) in
  Group.on_view_change g (fun _ -> changed_at := Engine.now engine);
  Engine.schedule engine ~delay:5.0 (fun () -> Group.kill g 0);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "view change after timeout" 15.0 !changed_at;
  Alcotest.(check int) "new leader" 1 (Group.leader g);
  Alcotest.check b "dead not alive" false (Group.alive g 0);
  Alcotest.(check (list int)) "survivors" [ 1; 2 ]
    (Group.current_view g).Group.members

let test_group_double_failure () =
  let engine = Engine.create () in
  let g = Group.create engine ~members:[ 0; 1; 2 ] ~detection_timeout_ms:10.0 in
  let views = ref [] in
  Group.on_view_change g (fun v -> views := v.Group.members :: !views);
  Engine.schedule engine ~delay:1.0 (fun () -> Group.kill g 0);
  Engine.schedule engine ~delay:2.0 (fun () -> Group.kill g 1);
  Engine.run engine;
  Alcotest.(check int) "final leader" 2 (Group.leader g);
  Alcotest.check b "last view is the singleton" true
    (match !views with [ 2 ] :: _ -> true | _ -> false)

let test_group_kill_idempotent () =
  let engine = Engine.create () in
  let g = Group.create engine ~members:[ 0; 1 ] ~detection_timeout_ms:5.0 in
  let changes = ref 0 in
  Group.on_view_change g (fun _ -> incr changes);
  Group.kill g 0;
  Group.kill g 0;
  Engine.run engine;
  Alcotest.(check int) "one view change" 1 !changes

(* ---------------------------- batching ------------------------------ *)

let test_batch_size_flush () =
  (* Three same-instant broadcasts with max_batch = 3: one wire batch, all
     deliveries in sequence order, nothing left pending. *)
  let engine = Engine.create () in
  let bus =
    Totem.create ~batching:{ Totem.max_batch = 3; delay_ms = 50.0 } engine
  in
  let got = collector bus ~id:0 in
  List.iter (fun p -> ignore (Totem.broadcast bus ~sender:9 p))
    [ "a"; "b"; "c" ];
  Alcotest.(check int) "size flush drained the batch" 0
    (Totem.pending_batched bus);
  Engine.run engine;
  Alcotest.(check int) "one wire batch" 1 (Totem.wire_batches bus);
  Alcotest.(check (list string)) "order preserved" [ "a"; "b"; "c" ]
    (payloads (got ()));
  Alcotest.(check (list int)) "seqs assigned at broadcast" [ 0; 1; 2 ]
    (seqs (got ()))

let test_batch_delay_flush () =
  (* An under-filled batch flushes delay_ms after it opened; arrival is the
     flush instant plus the per-hop latency. *)
  let engine = Engine.create () in
  let bus =
    Totem.create
      ~latency:(fun ~sender:_ ~dest:_ -> 1.0)
      ~batching:{ Totem.max_batch = 8; delay_ms = 5.0 }
      engine
  in
  let arrival = ref 0.0 in
  Totem.subscribe bus ~id:0 (fun _ -> arrival := Engine.now engine);
  ignore (Totem.broadcast bus ~sender:9 "x");
  Alcotest.(check int) "held" 1 (Totem.pending_batched bus);
  Engine.run engine;
  Alcotest.(check int) "one wire batch" 1 (Totem.wire_batches bus);
  Alcotest.(check (float 1e-9)) "arrival = delay + latency" 6.0 !arrival

let test_batch_of_one_identical () =
  (* max_batch = 1 is behaviourally identical to batching disabled. *)
  let run batching =
    let engine = Engine.create () in
    let bus = Totem.create ?batching engine in
    let got = collector bus ~id:0 in
    let arrivals = ref [] in
    Totem.subscribe bus ~id:1 (fun _ ->
        arrivals := Engine.now engine :: !arrivals);
    List.iter (fun p -> ignore (Totem.broadcast bus ~sender:9 p))
      [ "a"; "b" ];
    Engine.run engine;
    (payloads (got ()), !arrivals)
  in
  Alcotest.check b "same payloads and arrival times" true
    (run None = run (Some { Totem.max_batch = 1; delay_ms = 3.0 }))

let test_suppression_counters_split () =
  (* Stale copies covered by advance_watermark are counted separately from
     true transport duplicates. *)
  let engine, bus = setup ~latency:(fun ~sender:_ ~dest:_ -> 5.0) () in
  let got = collector bus ~id:0 in
  ignore (Totem.broadcast bus ~sender:9 "a");
  ignore (Totem.broadcast bus ~sender:9 "b");
  (* State transfer covers both while they are still on the wire. *)
  Totem.advance_watermark bus ~id:0 ~seq:1;
  Engine.run engine;
  Alcotest.(check int) "replay-covered copies suppressed" 0
    (List.length (got ()));
  Alcotest.(check int) "watermark-suppressed" 2
    (Totem.watermark_suppressed bus);
  Alcotest.(check int) "no transport duplicates" 0
    (Totem.suppressed_duplicates bus)

let test_transport_duplicates_not_watermark () =
  (* A fault-injected duplicate packet is a transport duplicate, never a
     watermark suppression. *)
  let engine = Engine.create () in
  let faults =
    Faults.create
      { Faults.none with seed = 42L; dup_prob = 0.99; dup_extra_ms = 1.0 }
  in
  let bus = Totem.create ~faults engine in
  let got = collector bus ~id:0 in
  List.iter (fun p -> ignore (Totem.broadcast bus ~sender:9 p))
    [ "a"; "b"; "c"; "d" ];
  Engine.run engine;
  Alcotest.(check int) "exactly-once delivery" 4 (List.length (got ()));
  Alcotest.(check int) "dedup counts the injected duplicates"
    (Faults.duplicates_injected faults)
    (Totem.suppressed_duplicates bus);
  Alcotest.check b "at least one duplicate was injected" true
    (Faults.duplicates_injected faults > 0);
  Alcotest.(check int) "no watermark suppressions" 0
    (Totem.watermark_suppressed bus)

let test_dead_sender_batch_still_flushes () =
  (* A message in the open batch when its sender dies owns a total-order
     slot and must still deliver to live subscribers (see totem.mli,
     "Dead-sender batch semantics"). *)
  let engine = Engine.create () in
  let bus =
    Totem.create
      ~latency:(fun ~sender:_ ~dest:_ -> 1.0)
      ~batching:{ Totem.max_batch = 8; delay_ms = 5.0 }
      engine
  in
  let got0 = collector bus ~id:0 in
  let got1 = collector bus ~id:1 in
  ignore (Totem.broadcast bus ~sender:1 "doomed-sender");
  Alcotest.(check int) "held in the open batch" 1 (Totem.pending_batched bus);
  (* Sender dies before the delay flush. *)
  Totem.set_alive bus 1 false;
  Engine.run engine;
  Alcotest.(check int) "batch flushed" 1 (Totem.wire_batches bus);
  Alcotest.(check (list string)) "live subscriber got the message"
    [ "doomed-sender" ] (payloads (got0 ()));
  Alcotest.(check (list string)) "dead sender got nothing" []
    (payloads (got1 ()))

let test_batch_flush_timer_on_until_boundary () =
  (* A flush timer landing exactly on the run ~until boundary must fire
     (the boundary is inclusive); the deliveries it schedules lie after the
     boundary and stay queued for the next run. *)
  let engine = Engine.create () in
  let bus =
    Totem.create
      ~latency:(fun ~sender:_ ~dest:_ -> 1.0)
      ~batching:{ Totem.max_batch = 8; delay_ms = 5.0 }
      engine
  in
  let got = collector bus ~id:0 in
  ignore (Totem.broadcast bus ~sender:9 "x");
  Engine.run ~until:5.0 engine;
  Alcotest.(check int) "timer on the boundary flushed" 1
    (Totem.wire_batches bus);
  Alcotest.(check int) "nothing held back" 0 (Totem.pending_batched bus);
  Alcotest.(check int) "delivery still in flight" 0 (List.length (got ()));
  Engine.run engine;
  Alcotest.(check (list string)) "delivered after the boundary" [ "x" ]
    (payloads (got ()))

let test_batch_validation () =
  let engine = Engine.create () in
  Alcotest.check_raises "max_batch < 1"
    (Invalid_argument "Totem.create: max_batch < 1") (fun () ->
      ignore
        (Totem.create ~batching:{ Totem.max_batch = 0; delay_ms = 1.0 }
           engine : unit Totem.t))

let suite =
  [ ("total order", `Quick, test_total_order);
    ("latency applied", `Quick, test_latency_applied);
    ("per-destination latency", `Quick, test_per_destination_latency);
    ("fifo under shrinking latency", `Quick,
     test_fifo_even_with_shrinking_latency);
    ("dead subscriber drops", `Quick, test_dead_subscriber_drops);
    ("kill drops in-flight", `Quick, test_kill_drops_in_flight);
    ("counters and kinds", `Quick, test_counters_and_kinds);
    ("duplicate subscriber rejected", `Quick,
     test_duplicate_subscriber_rejected);
    ("dedup", `Quick, test_dedup);
    ("group initial view", `Quick, test_group_initial_view);
    ("group failure detection delay", `Quick,
     test_group_failure_detection_delay);
    ("group double failure", `Quick, test_group_double_failure);
    ("group kill idempotent", `Quick, test_group_kill_idempotent);
    ("batch flush on size", `Quick, test_batch_size_flush);
    ("batch flush on delay", `Quick, test_batch_delay_flush);
    ("batch of one identical", `Quick, test_batch_of_one_identical);
    ("suppression counters split", `Quick, test_suppression_counters_split);
    ("transport duplicates not watermark", `Quick,
     test_transport_duplicates_not_watermark);
    ("dead-sender batch still flushes", `Quick,
     test_dead_sender_batch_still_flushes);
    ("batch flush timer on until boundary", `Quick,
     test_batch_flush_timer_on_until_boundary);
    ("batch validation", `Quick, test_batch_validation);
  ]

let () = Alcotest.run "gcs" [ ("gcs", suite) ]
