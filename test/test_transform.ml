(* Tests for the code transformation and injection process (section 4,
   Figure 4). *)

open Detmt_lang
open Detmt_analysis
open Detmt_transform

let b = Alcotest.bool

(* The paper's Figure 4 example:

     private Object myo;
     public void foo(Object o) {
       if (myo.equals(o)) synchronized (o) { ... }
       else synchronized (myo) { ... }
     } *)
let figure4_class =
  let open Builder in
  cls ~cname:"Figure4" ~mutex_fields:[ ("myo", 7) ]
    ~state_fields:[ "st" ]
    [ meth "foo" ~params:1
        [ if_
            (field_eq_arg "myo" 0)
            [ sync (arg 0) [ state_incr "st" 1 ] ]
            [ sync (field "myo") [ state_incr "st" 1 ] ];
        ];
    ]

let stmts_of cls name = (Class_def.find_method_exn cls name).body

let rec flatten stmts =
  List.concat_map
    (function
      | Ast.If (_, a, b) -> flatten a @ flatten b
      | Ast.Loop { body; _ } -> flatten body
      | s -> [ s ])
    stmts

let test_figure4_structure () =
  let transformed, summary = Transform.predictive figure4_class in
  let body = stmts_of transformed "foo" in
  (* lockInfo(1, o) is announced at method entry because arg0 is a method
     parameter that is never reassigned. *)
  (match body with
  | Ast.Lockinfo (1, Ast.Sp_arg 0) :: _ -> ()
  | s :: _ ->
    Alcotest.failf "expected lockInfo(1, arg0) first, got %s" (Ast.show_stmt s)
  | [] -> Alcotest.fail "empty body");
  let flat = flatten body in
  let has s = List.exists (Ast.equal_stmt s) flat in
  Alcotest.check b "lock(1, o)" true (has (Ast.Sched_lock (1, Ast.Sp_arg 0)));
  Alcotest.check b "unlock(1, o)" true
    (has (Ast.Sched_unlock (1, Ast.Sp_arg 0)));
  Alcotest.check b "lock(2, myo)" true
    (has (Ast.Sched_lock (2, Ast.Sp_field "myo")));
  Alcotest.check b "ignore(1) on the else path" true (has (Ast.Ignore_sync 1));
  Alcotest.check b "ignore(2) on the then path" true (has (Ast.Ignore_sync 2));
  (* myo is an instance variable: spontaneous, so no lockInfo(2, ...). *)
  Alcotest.check b "no lockInfo for the spontaneous parameter" false
    (List.exists
       (function Ast.Lockinfo (2, _) -> true | _ -> false)
       flat);
  (* Summary classification. *)
  let ms = Option.get (Predict.find_method summary "foo") in
  Alcotest.check b "foo is predicted (no fallback)" false ms.fallback;
  Alcotest.(check (list int)) "announceable sids" [ 1 ]
    (Predict.announceable_sids ms);
  Alcotest.(check (list int)) "spontaneous sids" [ 2 ]
    (Predict.spontaneous_sids ms)

let test_figure4_branch_placement () =
  (* ignore(2) must be inside the then branch, ignore(1) inside the else. *)
  let transformed, _ = Transform.predictive figure4_class in
  match stmts_of transformed "foo" with
  | [ Ast.Lockinfo _; Ast.If (_, then_b, else_b) ] ->
    Alcotest.check b "then starts with ignore(2)" true
      (match then_b with Ast.Ignore_sync 2 :: _ -> true | _ -> false);
    Alcotest.check b "else starts with ignore(1)" true
      (match else_b with Ast.Ignore_sync 1 :: _ -> true | _ -> false)
  | body ->
    Alcotest.failf "unexpected shape: %s" (Ast.show_block body)

let test_figure4_verifies () =
  let transformed, summary = Transform.predictive figure4_class in
  Alcotest.(check (list string)) "no soundness issues" []
    (Verify.check_class ~summary transformed)

let test_figure4_pretty () =
  (* The rendered transformation is the Figure 4 artefact; pin the key lines
     so the bench output stays faithful. *)
  let transformed, _ = Transform.predictive figure4_class in
  let text =
    Pretty.method_to_string (Class_def.find_method_exn transformed "foo")
  in
  let has needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.check b (Printf.sprintf "output contains %S" needle) true
        (has needle))
    [ "scheduler.lockInfo(1, arg0);";
      "scheduler.lock(1, arg0);";
      "scheduler.unlock(1, arg0);";
      "scheduler.lock(2, this.myo);";
      "scheduler.ignore(1);";
      "scheduler.ignore(2);";
      "if (this.myo.equals(arg0))" ]

let test_basic_no_injection () =
  let transformed = Transform.basic figure4_class in
  let flat = flatten (stmts_of transformed "foo") in
  Alcotest.check b "basic has lock calls" true
    (List.exists (function Ast.Sched_lock _ -> true | _ -> false) flat);
  Alcotest.check b "basic has no lockInfo" false
    (List.exists (function Ast.Lockinfo _ -> true | _ -> false) flat);
  Alcotest.check b "basic has no ignore" false
    (List.exists (function Ast.Ignore_sync _ -> true | _ -> false) flat)

(* Loops (section 4.4): a fixed-mutex loop keeps the announcement; a
   changing-mutex loop makes the method unpredictable until loop exit. *)
let loop_class ~fixed =
  let open Builder in
  let body =
    if fixed then
      [ assign "m" (marg 0);
        for_ 5 [ sync (local "m") [ state_incr "st" 1 ] ] ]
    else [ for_ 5 [ sync (field "f") [ state_incr "st" 1 ] ] ]
  in
  cls ~cname:"Loopy" ~mutex_fields:[ ("f", 3) ] ~state_fields:[ "st" ]
    [ meth "go" ~params:1 body ]

let test_loop_fixed () =
  let transformed, summary = Transform.predictive (loop_class ~fixed:true) in
  let ms = Option.get (Predict.find_method summary "go") in
  let l = List.hd ms.loops in
  Alcotest.check b "fixed loop is not 'changing'" false l.changing;
  Alcotest.(check (list int)) "loop contains sid 1" [ 1 ] l.sids;
  let flat = flatten (stmts_of transformed "go") in
  Alcotest.check b "loop markers present" true
    (List.exists (function Ast.Loop_enter _ -> true | _ -> false) flat);
  (* lockInfo after the assignment to m. *)
  let body = stmts_of transformed "go" in
  (match body with
  | Ast.Assign ("m", _) :: Ast.Lockinfo (1, Ast.Sp_local "m") :: _ -> ()
  | _ -> Alcotest.failf "lockInfo not after assignment: %s"
           (Ast.show_block body));
  Alcotest.(check (list string)) "verifies" []
    (Verify.check_class ~summary transformed)

let test_loop_changing () =
  let _, summary = Transform.predictive (loop_class ~fixed:false) in
  let ms = Option.get (Predict.find_method summary "go") in
  let l = List.hd ms.loops in
  Alcotest.check b "field-locked loop is 'changing'" true l.changing

(* Calls: final calls are inlined (distinct sids per call site); non-final
   calls become opaque regions unless the repository is enabled. *)
let call_class ~final =
  let open Builder in
  cls ~cname:"Calls" ~state_fields:[ "st" ]
    [ helper ~final "h" ~params:1 [ sync (arg 0) [ state_incr "st" 1 ] ];
      meth "go" ~params:1 [ call "h"; call "h" ];
    ]

let test_final_inlined () =
  let transformed, summary = Transform.predictive (call_class ~final:true) in
  let ms = Option.get (Predict.find_method summary "go") in
  Alcotest.(check int) "two call sites, two sids" 2 (List.length ms.sids);
  let flat = flatten (stmts_of transformed "go") in
  Alcotest.check b "no dynamic call remains" false
    (List.exists (function Ast.Call _ -> true | _ -> false) flat)

let test_nonfinal_opaque () =
  let transformed, summary = Transform.predictive (call_class ~final:false) in
  let ms = Option.get (Predict.find_method summary "go") in
  Alcotest.(check int) "no sids predicted" 0 (List.length ms.sids);
  Alcotest.(check int) "two opaque regions" 2 (List.length ms.loops);
  List.iter
    (fun (l : Predict.loop_info) ->
      Alcotest.check b "opaque" true l.opaque;
      Alcotest.check b "changing" true l.changing)
    ms.loops;
  let flat = flatten (stmts_of transformed "go") in
  Alcotest.check b "dynamic calls remain" true
    (List.exists (function Ast.Call _ -> true | _ -> false) flat)

let test_nonfinal_repository () =
  let _, summary =
    Transform.predictive ~repository:true (call_class ~final:false)
  in
  let ms = Option.get (Predict.find_method summary "go") in
  Alcotest.(check int) "repository inlines non-final calls" 2
    (List.length ms.sids)

let test_recursion_fallback () =
  let open Builder in
  let recursive =
    cls ~cname:"Rec" ~state_fields:[ "st" ]
      [ meth "go" [ call "go" ] ]
  in
  let _, summary = Transform.predictive recursive in
  let ms = Option.get (Predict.find_method summary "go") in
  Alcotest.check b "recursion falls back" true ms.fallback

let test_virtual_repository_chain () =
  let open Builder in
  let virt =
    cls ~cname:"Virt" ~state_fields:[ "st" ]
      [ helper "a" ~params:2 [ sync (arg 1) [ state_incr "st" 1 ] ];
        helper "b" ~params:2 [ compute 1.0 ];
        meth "go" ~params:2 [ virtual_call ~selector:0 [ "a"; "b" ] ];
      ]
  in
  let transformed, summary = Transform.predictive ~repository:true virt in
  let ms = Option.get (Predict.find_method summary "go") in
  Alcotest.(check int) "one sid from candidate a" 1 (List.length ms.sids);
  let body = stmts_of transformed "go" in
  Alcotest.check b "if-chain on the selector" true
    (List.exists
       (function
         | Ast.If (Ast.Carg_int_eq (0, 0), _, _) -> true
         | _ -> false)
       body);
  Alcotest.(check (list string)) "verifies" []
    (Verify.check_class ~summary transformed)

let test_verify_catches_missing_ignore () =
  (* Hand-build a broken instrumentation: a sid locked on one branch with no
     ignore on the other. *)
  let open Builder in
  let broken_body =
    [ Ast.If
        ( Ast.Carg_bool 0,
          [ Ast.Sched_lock (1, Ast.Sp_arg 1);
            Ast.Sched_unlock (1, Ast.Sp_arg 1) ],
          [] );
    ]
  in
  ignore (meth "x" []);
  let cls =
    Class_def.make ~cname:"Broken"
      [ { Class_def.name = "go"; final = true; exported = true; params = 2;
          body = broken_body } ]
  in
  let summary =
    { Detmt_analysis.Predict.mname = "go"; fallback = false;
      fallback_reason = None;
      sids =
        [ { Detmt_analysis.Predict.sid = 1; param = Ast.Sp_arg 1;
            classification = Detmt_analysis.Param_class.Announce_at_entry;
            in_loops = [] } ];
      loops = []; uses_condvars = false }
  in
  let issues = Verify.check_method ~summary cls ~meth:"go" in
  Alcotest.check b "missing ignore detected" true (issues <> [])

let suite =
  [ ("figure4 structure", `Quick, test_figure4_structure);
    ("figure4 branch placement", `Quick, test_figure4_branch_placement);
    ("figure4 verifies", `Quick, test_figure4_verifies);
    ("figure4 pretty output", `Quick, test_figure4_pretty);
    ("basic transform has no injection", `Quick, test_basic_no_injection);
    ("fixed-mutex loop", `Quick, test_loop_fixed);
    ("changing-mutex loop", `Quick, test_loop_changing);
    ("final calls inlined per site", `Quick, test_final_inlined);
    ("non-final calls become opaque", `Quick, test_nonfinal_opaque);
    ("repository inlines non-final", `Quick, test_nonfinal_repository);
    ("recursion falls back", `Quick, test_recursion_fallback);
    ("virtual dispatch via repository", `Quick, test_virtual_repository_chain);
    ("verifier catches missing ignore", `Quick,
     test_verify_catches_missing_ignore);
  ]

let () = Alcotest.run "transform" [ ("transform", suite) ]
