(* Flight-recorder tests.

   The load-bearing property is the determinism contract: observability is
   strictly read-only, so running with the recorder on must leave the reply
   table and every replica's trace fingerprint bit-identical to a run with
   recording off.  The rest checks the exporters: per-request latency
   breakdowns sum exactly to the measured response time, the Chrome
   trace-event JSON parses and follows the schema (golden file), and the
   metrics registry covers every scheduler, Totem and the chaos layer. *)

open Detmt_sim
open Detmt_replication
module Recorder = Detmt_obs.Recorder
module Metrics = Detmt_obs.Metrics
module Json = Detmt_obs.Json
module Chrome = Detmt_obs.Chrome
module Hdr = Detmt_obs.Hdr
module Timeseries = Detmt_obs.Timeseries
module Profile = Detmt_obs.Profile
module Critical_path = Detmt_obs.Critical_path
module Openmetrics = Detmt_obs.Openmetrics

let figure1_cls = Detmt_workload.Figure1.cls Detmt_workload.Figure1.default

let figure1_gen = Detmt_workload.Figure1.gen Detmt_workload.Figure1.default

let prodcons_cls = Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default

let prodcons_gen = Detmt_workload.Prodcons.gen

let run ?(scheduler = "mat") ?(clients = 4) ?(requests = 3)
    ?(cls = figure1_cls) ?(gen = figure1_gen) ?(obs = Recorder.disabled) () =
  let engine = Engine.create () in
  let params = { Active.default_params with Active.scheduler } in
  let system = Active.create ~obs ~engine ~cls ~params () in
  Client.run_clients ~engine ~system ~clients ~requests_per_client:requests
    ~gen ();
  system

type witness = {
  w_replies : int;
  w_reply_times : float list;
  w_mean : float;
  w_traces : (int * int64) list; (* per-replica trace fingerprints *)
  w_states : (int * int64) list;
}

let witness system =
  { w_replies = Active.replies_received system;
    w_reply_times = Active.reply_times system;
    w_mean = Detmt_stats.Summary.mean (Active.response_times system);
    w_traces =
      List.map
        (fun r ->
          ( Detmt_runtime.Replica.id r,
            Trace.fingerprint (Detmt_runtime.Replica.trace r) ))
        (Active.live_replicas system);
    w_states =
      List.map
        (fun r ->
          ( Detmt_runtime.Replica.id r,
            Detmt_runtime.Replica.state_fingerprint r ))
        (Active.live_replicas system) }

let fp = Alcotest.testable (Fmt.fmt "%Lx") Int64.equal

(* All schedulers; seq deadlocks on prodcons (a consumer that waits blocks
   the whole one-at-a-time pipeline), so the prodcons matrix skips it. *)
let all_schedulers =
  [ "seq"; "sat"; "psat"; "lsa"; "pds"; "ppds"; "mat"; "mat-ll"; "pmat";
    "freefall" ]

let test_on_off_identical ~scheduler ~cls ~gen () =
  let off = witness (run ~scheduler ~cls ~gen ()) in
  (* Full telemetry stack: metrics, windowed series (the clock installs in
     [Active.create]) and the hot-path profiler — the strongest on-side. *)
  let obs = Recorder.create ~profile:(Profile.create ()) () in
  let on = witness (run ~scheduler ~cls ~gen ~obs ()) in
  Alcotest.(check int) "replies" off.w_replies on.w_replies;
  Alcotest.(check (list (float 0.0))) "reply times" off.w_reply_times
    on.w_reply_times;
  Alcotest.(check (float 0.0)) "mean response" off.w_mean on.w_mean;
  Alcotest.(check (list (pair int fp))) "trace fingerprints" off.w_traces
    on.w_traces;
  Alcotest.(check (list (pair int fp))) "state fingerprints" off.w_states
    on.w_states;
  (* The recorder did record: spans, metrics, windowed series and the
     profiler's phase timers are all non-empty. *)
  Alcotest.(check bool) "recorded spans" true (Recorder.spans obs <> []);
  Alcotest.(check bool) "recorded metrics" true
    (Metrics.names (Recorder.metrics obs) <> []);
  Alcotest.(check bool) "recorded series windows" true
    (Timeseries.point_count (Recorder.timeseries obs) > 0);
  (match Recorder.profiler obs with
  | None -> Alcotest.fail "profiler not attached"
  | Some p ->
    let dispatch =
      List.find
        (fun r -> r.Profile.p_phase = "dispatch")
        (Profile.phase_rows p)
    in
    Alcotest.(check bool) "profiler timed dispatches" true
      (dispatch.Profile.p_calls > 0))

let determinism_tests =
  List.map
    (fun s ->
      Alcotest.test_case (Printf.sprintf "obs on/off identical: %s/figure1" s)
        `Quick
        (test_on_off_identical ~scheduler:s ~cls:figure1_cls ~gen:figure1_gen))
    all_schedulers
  @ List.map
      (fun s ->
        Alcotest.test_case
          (Printf.sprintf "obs on/off identical: %s/prodcons" s)
          `Quick
          (test_on_off_identical ~scheduler:s ~cls:prodcons_cls
             ~gen:prodcons_gen))
      (List.filter (fun s -> s <> "seq") all_schedulers)

(* ------------------------- latency breakdowns ----------------------- *)

let sum_columns (b : Recorder.breakdown) =
  b.client_queue +. b.broadcast +. b.sched_start +. b.lock_wait
  +. b.policy_wait +. b.reacquire_wait +. b.condvar_wait +. b.nested_idle
  +. b.resume_hold +. b.exec +. b.reply_net

let test_breakdown_sums scheduler () =
  let obs = Recorder.create () in
  let system = run ~scheduler ~obs () in
  let bs = Recorder.breakdowns obs in
  Alcotest.(check int)
    "one breakdown per answered request"
    (Active.replies_received system)
    (List.length bs);
  List.iter
    (fun (b : Recorder.breakdown) ->
      if Float.abs (sum_columns b -. b.total) > 1e-6 then
        Alcotest.failf "req %d: columns sum to %.9f, total %.9f" b.uid
          (sum_columns b) b.total;
      List.iter
        (fun (what, v) ->
          if v < -.1e-9 then
            Alcotest.failf "req %d: negative %s (%.9f)" b.uid what v)
        [ ("client_queue", b.client_queue); ("broadcast", b.broadcast);
          ("sched_start", b.sched_start); ("lock_wait", b.lock_wait);
          ("policy_wait", b.policy_wait);
          ("reacquire_wait", b.reacquire_wait);
          ("condvar_wait", b.condvar_wait); ("nested_idle", b.nested_idle);
          ("resume_hold", b.resume_hold); ("exec", b.exec);
          ("reply_net", b.reply_net) ])
    bs

let breakdown_tests =
  List.map
    (fun s ->
      Alcotest.test_case (Printf.sprintf "breakdowns sum to total: %s" s)
        `Quick (test_breakdown_sums s))
    [ "seq"; "sat"; "lsa"; "pds"; "mat"; "mat-ll"; "pmat" ]

(* --------------------------- Chrome export -------------------------- *)

let export_json () =
  let obs = Recorder.create () in
  let _system = run ~scheduler:"mat" ~clients:2 ~requests:2 ~obs () in
  match Json.parse (Chrome.to_string obs) with
  | Error msg -> Alcotest.failf "chrome export does not parse: %s" msg
  | Ok json -> json

let test_chrome_schema () =
  let json = export_json () in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let phases = ref [] in
  List.iter
    (fun ev ->
      let str name =
        match Json.member name ev with
        | Some (Json.String s) -> s
        | _ -> Alcotest.failf "event without string %S" name
      in
      let num name =
        match Json.member name ev with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.failf "event without int %S" name
      in
      let ph = str "ph" in
      if not (List.mem ph !phases) then phases := ph :: !phases;
      ignore (str "name");
      match ph with
      | "M" -> ignore (Json.member "args" ev)
      | "X" ->
        ignore (num "ts");
        ignore (num "dur");
        ignore (num "pid");
        ignore (num "tid")
      | "i" | "C" -> ignore (num "ts")
      | other -> Alcotest.failf "unexpected phase %S" other)
    events;
  (* Request spans ("X") and per-process metadata ("M") are always there. *)
  Alcotest.(check bool) "has X events" true (List.mem "X" !phases);
  Alcotest.(check bool) "has M events" true (List.mem "M" !phases)

let test_chrome_golden () =
  (* Chrome exporter output for a fixed small run, compared byte for byte
     against the committed golden file.  Regenerate after an intentional
     schema change with:
       dune exec bin/detmt_cli.exe -- trace -s mat -w figure1 -c 2 -n 1 \
         --format chrome -o test/chrome_golden.json *)
  let obs = Recorder.create () in
  let _system = run ~scheduler:"mat" ~clients:2 ~requests:1 ~obs () in
  let got = Chrome.to_string obs in
  let ic = open_in "chrome_golden.json" in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "golden chrome trace" (String.trim want)
    (String.trim got)

(* ---------------------------- metrics ------------------------------- *)

let test_metrics_coverage () =
  let names_for scheduler =
    let obs = Recorder.create () in
    ignore (run ~scheduler ~clients:2 ~requests:2 ~obs ());
    Metrics.names (Recorder.metrics obs)
  in
  let expect scheduler needles =
    let names = names_for scheduler in
    List.iter
      (fun n ->
        if not (List.mem n names) then
          Alcotest.failf "%s: metric %S missing (have: %s)" scheduler n
            (String.concat ", " names))
      needles
  in
  expect "seq" [ "sched.seq.grants"; "sched.seq.starts"; "totem.broadcasts";
                 "totem.deliveries"; "replica.requests_completed" ];
  expect "sat" [ "sched.sat.grants"; "sched.sat.activations" ];
  expect "lsa" [ "sched.lsa.grant_broadcasts"; "sched.lsa.follower_grants" ];
  expect "pds" [ "sched.pds.grants"; "sched.pds.rounds" ];
  expect "mat" [ "sched.mat.grants"; "sched.mat.promotions" ];
  expect "mat-ll" [ "sched.mat-ll.grants"; "sched.mat-ll.handoffs" ];
  expect "pmat" [ "sched.pmat.grants" ]

let test_metrics_render () =
  let obs = Recorder.create () in
  ignore (run ~scheduler:"mat" ~clients:2 ~requests:2 ~obs ());
  let table = Metrics.to_table (Recorder.metrics obs) in
  let csv = Detmt_stats.Table.to_csv table in
  Alcotest.(check bool) "csv has header" true
    (String.length csv > 0
    && String.sub csv 0 6 = "metric");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "csv mentions totem" true
    (contains csv "totem.broadcasts")

let test_chaos_metrics () =
  (* The chaos layer folds the transport's fault counters into the recorder
     after a degraded run. *)
  let scenario =
    match Chaos.find_scenario "lossy" with
    | Some s -> s
    | None -> Alcotest.fail "no lossy scenario"
  in
  let obs = Recorder.create () in
  let o =
    Chaos.run ~clients:2 ~requests_per_client:2 ~obs ~scenario
      ~scheduler:"mat" ~cls:figure1_cls ~gen:figure1_gen ()
  in
  Alcotest.(check bool) "run ok" true (Chaos.ok o);
  let m = Recorder.metrics obs in
  let names = Metrics.names m in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "metric %S missing" n)
    [ "faults.transmissions"; "faults.losses"; "chaos.client_retries";
      "totem.retransmits" ];
  Alcotest.(check bool) "losses counted" true
    (Metrics.counter_value m "faults.losses" > 0)

(* ----------------------- audit + forensics window ------------------- *)

let test_audit_window () =
  let obs = Recorder.create () in
  let decide ~at ~tid =
    Recorder.decision obs ~at ~replica:0 ~scheduler:"mat" ~tid
      ~action:Detmt_obs.Audit.Grant_lock ~mutex:7
      ~rule:Detmt_obs.Audit.Primary_continue ()
  in
  decide ~at:1.0 ~tid:0;
  decide ~at:10.0 ~tid:1;
  decide ~at:11.0 ~tid:2;
  decide ~at:30.0 ~tid:3;
  Recorder.checkpoint obs ~replica:0 ~seq:5 ~at:10.5;
  (match Recorder.checkpoint_time obs ~replica:0 ~seq:5 with
  | Some at ->
    let window = Recorder.audit_window obs ~around:at ~margin:2.0 in
    Alcotest.(check (list int)) "window tids" [ 1; 2 ]
      (List.map (fun e -> e.Detmt_obs.Audit.tid) window)
  | None -> Alcotest.fail "checkpoint time not recorded");
  Alcotest.(check int) "audit count" 4 (Recorder.audit_count obs)

(* ------------------------ windowed time series ----------------------- *)

(* Virtual-time windows are part of the deterministic surface: two runs
   with the same seed must produce byte-identical window stores. *)
let test_series_seed_reproducible () =
  let series_json () =
    let obs = Recorder.create () in
    ignore (run ~scheduler:"mat" ~obs ());
    Json.to_string (Timeseries.to_json (Recorder.timeseries obs))
  in
  let a = series_json () and b = series_json () in
  Alcotest.(check string) "windows reproduce" a b;
  Alcotest.(check bool) "windows non-trivial" true (String.length a > 64)

let test_series_windowing () =
  let ts = Timeseries.create ~width_ms:10.0 ~retain:4 () in
  (* a counter folds into per-window sums... *)
  Timeseries.bump ts ~name:"c" ~at:1.0 ~by:1.0;
  Timeseries.bump ts ~name:"c" ~at:9.0 ~by:2.0;
  Timeseries.bump ts ~name:"c" ~at:12.0 ~by:5.0;
  (* ...a gauge keeps n/min/max/last per window... *)
  Timeseries.sample ts ~name:"g" ~at:3.0 ~value:7.0;
  Timeseries.sample ts ~name:"g" ~at:4.0 ~value:3.0;
  let sums name =
    List.map
      (fun w -> w.Timeseries.w_sum)
      (Timeseries.windows ts name)
  in
  Alcotest.(check (list (float 0.0))) "counter window sums" [ 3.0; 5.0 ]
    (sums "c");
  (match Timeseries.windows ts "g" with
  | [ w ] ->
    Alcotest.(check int) "gauge samples" 2 w.Timeseries.w_n;
    Alcotest.(check (float 0.0)) "gauge min" 3.0 w.Timeseries.w_min;
    Alcotest.(check (float 0.0)) "gauge max" 7.0 w.Timeseries.w_max;
    Alcotest.(check (float 0.0)) "gauge last" 3.0 w.Timeseries.w_last
  | ws -> Alcotest.failf "expected one gauge window, got %d" (List.length ws));
  (* ...and the ring keeps only the newest [retain] windows. *)
  List.iter
    (fun at -> Timeseries.bump ts ~name:"c" ~at ~by:1.0)
    [ 25.0; 35.0; 45.0; 55.0 ];
  Alcotest.(check int) "ring truncates" 4
    (List.length (Timeseries.windows ts "c"));
  (* peak is over the retained ring only: the early 3.0/5.0 windows fell off *)
  Alcotest.(check (float 0.0)) "peak over retained windows" 1.0
    (Timeseries.peak ts "c")

(* ----------------------------- Hdr ----------------------------------- *)

let test_hdr_exact_moments () =
  let h = Hdr.create () in
  for i = 1 to 1000 do
    Hdr.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Hdr.count h);
  Alcotest.(check (float 0.0)) "sum" 500500.0 (Hdr.total h);
  Alcotest.(check (float 0.0)) "min" 1.0 (Hdr.min h);
  Alcotest.(check (float 0.0)) "max" 1000.0 (Hdr.max h);
  (* log-linear buckets: 16 per octave, so any quantile lands within one
     bucket — a few percent — of the exact answer. *)
  let p50 = Hdr.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.1f near 500" p50)
    true
    (Float.abs (p50 -. 500.0) /. 500.0 < 0.10);
  let p99 = Hdr.quantile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 %.1f near 990" p99)
    true
    (Float.abs (p99 -. 990.0) /. 990.0 < 0.10);
  (* memory stays O(buckets), not O(values) *)
  Alcotest.(check bool) "bounded buckets" true (Hdr.bucket_count h < 200);
  (* cumulative counts are monotone and end at the total *)
  let cum = Hdr.cumulative h in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative monotone" true (monotone cum);
  (match List.rev cum with
  | (_, last) :: _ -> Alcotest.(check int) "cumulative total" 1000 last
  | [] -> Alcotest.fail "empty cumulative")

let test_hdr_edge_values () =
  let h = Hdr.create () in
  List.iter (Hdr.add h) [ 0.0; -3.0; Float.nan; 42.0 ];
  (* non-positive and non-finite values land in the zero bucket; quantiles
     that fall inside it answer the observed minimum *)
  Alcotest.(check int) "count" 4 (Hdr.count h);
  Alcotest.(check (float 0.0)) "p25 is the observed min" (Hdr.min h)
    (Hdr.quantile h 0.25);
  Alcotest.(check (float 0.0)) "min tracks negatives" (-3.0) (Hdr.min h);
  Alcotest.(check (float 0.0)) "max" 42.0 (Hdr.max h)

(* --------------------------- profiler -------------------------------- *)

let test_profile_phases () =
  let p = Profile.create () in
  let obs = Recorder.profile_only p in
  ignore (run ~scheduler:"mat" ~obs ());
  let row phase =
    List.find (fun r -> r.Profile.p_phase = phase) (Profile.phase_rows p)
  in
  Alcotest.(check bool) "pops timed" true ((row "pop").Profile.p_calls > 0);
  Alcotest.(check bool) "dispatches timed" true
    ((row "dispatch").Profile.p_calls > 0);
  Alcotest.(check bool) "grants timed" true
    ((row "grant").Profile.p_calls > 0);
  (match Profile.decision_rows p with
  | [ d ] ->
    Alcotest.(check string) "decision module" "mat" d.Profile.d_module;
    Alcotest.(check bool) "decision calls" true (d.Profile.d_calls > 0)
  | rows -> Alcotest.failf "expected one decision row, got %d"
              (List.length rows));
  let a = Profile.alloc p in
  if not (a.Profile.minor_words > 0.0) then
    Alcotest.failf "alloc: minor=%f major=%f promoted=%f wall=%f"
      a.Profile.minor_words a.major_words a.promoted_words
      (Profile.wall_seconds p);
  (* profile-only mode keeps the metric/span sites off *)
  Alcotest.(check bool) "no spans in profile-only mode" true
    (Recorder.spans obs = []);
  (* reset clears every cell *)
  Profile.reset p;
  Alcotest.(check int) "reset clears calls" 0 (row "dispatch").Profile.p_calls

(* ------------------------- critical path ----------------------------- *)

let test_critical_path () =
  let obs = Recorder.create () in
  let system = run ~scheduler:"mat" ~obs () in
  let report = Critical_path.analyse obs in
  Alcotest.(check int) "one item per answered request"
    (Active.replies_received system)
    (List.length report.Critical_path.items);
  List.iter
    (fun it ->
      Alcotest.(check bool)
        (Printf.sprintf "dominant %S is a known component"
           it.Critical_path.cp_dominant)
        true
        (List.mem it.Critical_path.cp_dominant Critical_path.components);
      Alcotest.(check bool) "dominant <= total" true
        (it.Critical_path.cp_dominant_ms <= it.Critical_path.cp_total_ms +. 1e-9))
    report.Critical_path.items;
  let by_component_count =
    List.fold_left
      (fun acc (_, s) -> acc + s.Critical_path.s_count)
      0 report.Critical_path.by_component
  in
  Alcotest.(check int) "component slices partition the requests"
    (List.length report.Critical_path.items)
    by_component_count

(* --------------------------- OpenMetrics ----------------------------- *)

let test_openmetrics_golden () =
  (* Fixed small run against the committed exposition.  Regenerate after an
     intentional schema change with:
       dune exec bin/detmt_cli.exe -- metrics -s mat -w figure1 -c 2 -n 1 \
         -f openmetrics -o test/openmetrics_golden.txt *)
  let obs = Recorder.create () in
  ignore (run ~scheduler:"mat" ~clients:2 ~requests:1 ~obs ());
  let got = Openmetrics.export (Recorder.metrics obs) in
  let ic = open_in "openmetrics_golden.txt" in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "golden openmetrics exposition" (String.trim want)
    (String.trim got)

let test_openmetrics_roundtrip () =
  let obs = Recorder.create () in
  ignore (run ~scheduler:"mat" ~obs ());
  let text = Openmetrics.export (Recorder.metrics obs) in
  match Openmetrics.parse text with
  | Error msg -> Alcotest.failf "exposition does not parse back: %s" msg
  | Ok doc ->
    (* the parse is an Obs.Json value: it must survive a print/parse cycle *)
    (match Json.parse (Json.to_string doc) with
    | Error msg -> Alcotest.failf "parsed doc not valid Json: %s" msg
    | Ok doc' ->
      Alcotest.(check string) "json round-trip" (Json.to_string doc)
        (Json.to_string doc'));
    let family name =
      match Json.member name doc with
      | Some (Json.Obj _ as f) -> f
      | _ -> Alcotest.failf "family %S missing" name
    in
    let fam = family "detmt_active_replies" in
    (match Json.member "type" fam with
    | Some (Json.String "counter") -> ()
    | _ -> Alcotest.fail "reply family is not a counter");
    (match Json.member "samples" fam with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "reply family has no samples")

let () =
  Alcotest.run "obs"
    [ ("determinism", determinism_tests);
      ("breakdowns", breakdown_tests);
      ( "chrome",
        [ Alcotest.test_case "schema" `Quick test_chrome_schema;
          Alcotest.test_case "golden" `Quick test_chrome_golden ] );
      ( "metrics",
        [ Alcotest.test_case "coverage" `Quick test_metrics_coverage;
          Alcotest.test_case "render" `Quick test_metrics_render;
          Alcotest.test_case "chaos counters" `Quick test_chaos_metrics ] );
      ( "series",
        [ Alcotest.test_case "seed-reproducible" `Quick
            test_series_seed_reproducible;
          Alcotest.test_case "windowing" `Quick test_series_windowing ] );
      ( "hdr",
        [ Alcotest.test_case "exact moments, bounded buckets" `Quick
            test_hdr_exact_moments;
          Alcotest.test_case "edge values" `Quick test_hdr_edge_values ] );
      ( "profile",
        [ Alcotest.test_case "phases + decisions + alloc" `Quick
            test_profile_phases ] );
      ( "critical-path",
        [ Alcotest.test_case "dominant components" `Quick
            test_critical_path ] );
      ( "openmetrics",
        [ Alcotest.test_case "golden" `Quick test_openmetrics_golden;
          Alcotest.test_case "parse round-trip" `Quick
            test_openmetrics_roundtrip ] );
      ( "audit",
        [ Alcotest.test_case "window" `Quick test_audit_window ] ) ]
