(* Flight-recorder tests.

   The load-bearing property is the determinism contract: observability is
   strictly read-only, so running with the recorder on must leave the reply
   table and every replica's trace fingerprint bit-identical to a run with
   recording off.  The rest checks the exporters: per-request latency
   breakdowns sum exactly to the measured response time, the Chrome
   trace-event JSON parses and follows the schema (golden file), and the
   metrics registry covers every scheduler, Totem and the chaos layer. *)

open Detmt_sim
open Detmt_replication
module Recorder = Detmt_obs.Recorder
module Metrics = Detmt_obs.Metrics
module Json = Detmt_obs.Json
module Chrome = Detmt_obs.Chrome

let figure1_cls = Detmt_workload.Figure1.cls Detmt_workload.Figure1.default

let figure1_gen = Detmt_workload.Figure1.gen Detmt_workload.Figure1.default

let prodcons_cls = Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default

let prodcons_gen = Detmt_workload.Prodcons.gen

let run ?(scheduler = "mat") ?(clients = 4) ?(requests = 3)
    ?(cls = figure1_cls) ?(gen = figure1_gen) ?(obs = Recorder.disabled) () =
  let engine = Engine.create () in
  let params = { Active.default_params with Active.scheduler } in
  let system = Active.create ~obs ~engine ~cls ~params () in
  Client.run_clients ~engine ~system ~clients ~requests_per_client:requests
    ~gen ();
  system

type witness = {
  w_replies : int;
  w_reply_times : float list;
  w_mean : float;
  w_traces : (int * int64) list; (* per-replica trace fingerprints *)
  w_states : (int * int64) list;
}

let witness system =
  { w_replies = Active.replies_received system;
    w_reply_times = Active.reply_times system;
    w_mean = Detmt_stats.Summary.mean (Active.response_times system);
    w_traces =
      List.map
        (fun r ->
          ( Detmt_runtime.Replica.id r,
            Trace.fingerprint (Detmt_runtime.Replica.trace r) ))
        (Active.live_replicas system);
    w_states =
      List.map
        (fun r ->
          ( Detmt_runtime.Replica.id r,
            Detmt_runtime.Replica.state_fingerprint r ))
        (Active.live_replicas system) }

let fp = Alcotest.testable (Fmt.fmt "%Lx") Int64.equal

(* All schedulers; seq deadlocks on prodcons (a consumer that waits blocks
   the whole one-at-a-time pipeline), so the prodcons matrix skips it. *)
let all_schedulers =
  [ "seq"; "sat"; "psat"; "lsa"; "pds"; "ppds"; "mat"; "mat-ll"; "pmat";
    "freefall" ]

let test_on_off_identical ~scheduler ~cls ~gen () =
  let off = witness (run ~scheduler ~cls ~gen ()) in
  let obs = Recorder.create () in
  let on = witness (run ~scheduler ~cls ~gen ~obs ()) in
  Alcotest.(check int) "replies" off.w_replies on.w_replies;
  Alcotest.(check (list (float 0.0))) "reply times" off.w_reply_times
    on.w_reply_times;
  Alcotest.(check (float 0.0)) "mean response" off.w_mean on.w_mean;
  Alcotest.(check (list (pair int fp))) "trace fingerprints" off.w_traces
    on.w_traces;
  Alcotest.(check (list (pair int fp))) "state fingerprints" off.w_states
    on.w_states;
  (* The recorder did record: spans and metrics are non-empty. *)
  Alcotest.(check bool) "recorded spans" true (Recorder.spans obs <> []);
  Alcotest.(check bool) "recorded metrics" true
    (Metrics.names (Recorder.metrics obs) <> [])

let determinism_tests =
  List.map
    (fun s ->
      Alcotest.test_case (Printf.sprintf "obs on/off identical: %s/figure1" s)
        `Quick
        (test_on_off_identical ~scheduler:s ~cls:figure1_cls ~gen:figure1_gen))
    all_schedulers
  @ List.map
      (fun s ->
        Alcotest.test_case
          (Printf.sprintf "obs on/off identical: %s/prodcons" s)
          `Quick
          (test_on_off_identical ~scheduler:s ~cls:prodcons_cls
             ~gen:prodcons_gen))
      (List.filter (fun s -> s <> "seq") all_schedulers)

(* ------------------------- latency breakdowns ----------------------- *)

let sum_columns (b : Recorder.breakdown) =
  b.client_queue +. b.broadcast +. b.sched_start +. b.lock_wait
  +. b.policy_wait +. b.reacquire_wait +. b.condvar_wait +. b.nested_idle
  +. b.resume_hold +. b.exec +. b.reply_net

let test_breakdown_sums scheduler () =
  let obs = Recorder.create () in
  let system = run ~scheduler ~obs () in
  let bs = Recorder.breakdowns obs in
  Alcotest.(check int)
    "one breakdown per answered request"
    (Active.replies_received system)
    (List.length bs);
  List.iter
    (fun (b : Recorder.breakdown) ->
      if Float.abs (sum_columns b -. b.total) > 1e-6 then
        Alcotest.failf "req %d: columns sum to %.9f, total %.9f" b.uid
          (sum_columns b) b.total;
      List.iter
        (fun (what, v) ->
          if v < -.1e-9 then
            Alcotest.failf "req %d: negative %s (%.9f)" b.uid what v)
        [ ("client_queue", b.client_queue); ("broadcast", b.broadcast);
          ("sched_start", b.sched_start); ("lock_wait", b.lock_wait);
          ("policy_wait", b.policy_wait);
          ("reacquire_wait", b.reacquire_wait);
          ("condvar_wait", b.condvar_wait); ("nested_idle", b.nested_idle);
          ("resume_hold", b.resume_hold); ("exec", b.exec);
          ("reply_net", b.reply_net) ])
    bs

let breakdown_tests =
  List.map
    (fun s ->
      Alcotest.test_case (Printf.sprintf "breakdowns sum to total: %s" s)
        `Quick (test_breakdown_sums s))
    [ "seq"; "sat"; "lsa"; "pds"; "mat"; "mat-ll"; "pmat" ]

(* --------------------------- Chrome export -------------------------- *)

let export_json () =
  let obs = Recorder.create () in
  let _system = run ~scheduler:"mat" ~clients:2 ~requests:2 ~obs () in
  match Json.parse (Chrome.to_string obs) with
  | Error msg -> Alcotest.failf "chrome export does not parse: %s" msg
  | Ok json -> json

let test_chrome_schema () =
  let json = export_json () in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let phases = ref [] in
  List.iter
    (fun ev ->
      let str name =
        match Json.member name ev with
        | Some (Json.String s) -> s
        | _ -> Alcotest.failf "event without string %S" name
      in
      let num name =
        match Json.member name ev with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.failf "event without int %S" name
      in
      let ph = str "ph" in
      if not (List.mem ph !phases) then phases := ph :: !phases;
      ignore (str "name");
      match ph with
      | "M" -> ignore (Json.member "args" ev)
      | "X" ->
        ignore (num "ts");
        ignore (num "dur");
        ignore (num "pid");
        ignore (num "tid")
      | "i" | "C" -> ignore (num "ts")
      | other -> Alcotest.failf "unexpected phase %S" other)
    events;
  (* Request spans ("X") and per-process metadata ("M") are always there. *)
  Alcotest.(check bool) "has X events" true (List.mem "X" !phases);
  Alcotest.(check bool) "has M events" true (List.mem "M" !phases)

let test_chrome_golden () =
  (* Chrome exporter output for a fixed small run, compared byte for byte
     against the committed golden file.  Regenerate after an intentional
     schema change with:
       dune exec bin/detmt_cli.exe -- trace -s mat -w figure1 -c 2 -n 1 \
         --format chrome -o test/chrome_golden.json *)
  let obs = Recorder.create () in
  let _system = run ~scheduler:"mat" ~clients:2 ~requests:1 ~obs () in
  let got = Chrome.to_string obs in
  let ic = open_in "chrome_golden.json" in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "golden chrome trace" (String.trim want)
    (String.trim got)

(* ---------------------------- metrics ------------------------------- *)

let test_metrics_coverage () =
  let names_for scheduler =
    let obs = Recorder.create () in
    ignore (run ~scheduler ~clients:2 ~requests:2 ~obs ());
    Metrics.names (Recorder.metrics obs)
  in
  let expect scheduler needles =
    let names = names_for scheduler in
    List.iter
      (fun n ->
        if not (List.mem n names) then
          Alcotest.failf "%s: metric %S missing (have: %s)" scheduler n
            (String.concat ", " names))
      needles
  in
  expect "seq" [ "sched.seq.grants"; "sched.seq.starts"; "totem.broadcasts";
                 "totem.deliveries"; "replica.requests_completed" ];
  expect "sat" [ "sched.sat.grants"; "sched.sat.activations" ];
  expect "lsa" [ "sched.lsa.grant_broadcasts"; "sched.lsa.follower_grants" ];
  expect "pds" [ "sched.pds.grants"; "sched.pds.rounds" ];
  expect "mat" [ "sched.mat.grants"; "sched.mat.promotions" ];
  expect "mat-ll" [ "sched.mat-ll.grants"; "sched.mat-ll.handoffs" ];
  expect "pmat" [ "sched.pmat.grants" ]

let test_metrics_render () =
  let obs = Recorder.create () in
  ignore (run ~scheduler:"mat" ~clients:2 ~requests:2 ~obs ());
  let table = Metrics.to_table (Recorder.metrics obs) in
  let csv = Detmt_stats.Table.to_csv table in
  Alcotest.(check bool) "csv has header" true
    (String.length csv > 0
    && String.sub csv 0 6 = "metric");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "csv mentions totem" true
    (contains csv "totem.broadcasts")

let test_chaos_metrics () =
  (* The chaos layer folds the transport's fault counters into the recorder
     after a degraded run. *)
  let scenario =
    match Chaos.find_scenario "lossy" with
    | Some s -> s
    | None -> Alcotest.fail "no lossy scenario"
  in
  let obs = Recorder.create () in
  let o =
    Chaos.run ~clients:2 ~requests_per_client:2 ~obs ~scenario
      ~scheduler:"mat" ~cls:figure1_cls ~gen:figure1_gen ()
  in
  Alcotest.(check bool) "run ok" true (Chaos.ok o);
  let m = Recorder.metrics obs in
  let names = Metrics.names m in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "metric %S missing" n)
    [ "faults.transmissions"; "faults.losses"; "chaos.client_retries";
      "totem.retransmits" ];
  Alcotest.(check bool) "losses counted" true
    (Metrics.counter_value m "faults.losses" > 0)

(* ----------------------- audit + forensics window ------------------- *)

let test_audit_window () =
  let obs = Recorder.create () in
  let decide ~at ~tid =
    Recorder.decision obs ~at ~replica:0 ~scheduler:"mat" ~tid
      ~action:Detmt_obs.Audit.Grant_lock ~mutex:7
      ~rule:Detmt_obs.Audit.Primary_continue ()
  in
  decide ~at:1.0 ~tid:0;
  decide ~at:10.0 ~tid:1;
  decide ~at:11.0 ~tid:2;
  decide ~at:30.0 ~tid:3;
  Recorder.checkpoint obs ~replica:0 ~seq:5 ~at:10.5;
  (match Recorder.checkpoint_time obs ~replica:0 ~seq:5 with
  | Some at ->
    let window = Recorder.audit_window obs ~around:at ~margin:2.0 in
    Alcotest.(check (list int)) "window tids" [ 1; 2 ]
      (List.map (fun e -> e.Detmt_obs.Audit.tid) window)
  | None -> Alcotest.fail "checkpoint time not recorded");
  Alcotest.(check int) "audit count" 4 (Recorder.audit_count obs)

let () =
  Alcotest.run "obs"
    [ ("determinism", determinism_tests);
      ("breakdowns", breakdown_tests);
      ( "chrome",
        [ Alcotest.test_case "schema" `Quick test_chrome_schema;
          Alcotest.test_case "golden" `Quick test_chrome_golden ] );
      ( "metrics",
        [ Alcotest.test_case "coverage" `Quick test_metrics_coverage;
          Alcotest.test_case "render" `Quick test_metrics_render;
          Alcotest.test_case "chaos counters" `Quick test_chaos_metrics ] );
      ( "audit",
        [ Alcotest.test_case "window" `Quick test_audit_window ] ) ]
