(* Unit and differential tests for the ordered candidate index — the
   O(log n) grant-path structure that replaced the decision modules'
   [Hashtbl.fold … |> List.sort] scans.  The [Reference] submodule is the
   replaced implementation behind the same signature; every operation
   sequence must be observationally identical on both. *)

module Ci = Detmt_sched.Candidate_index

let b = Alcotest.bool

let il = Alcotest.(list int)

let pl = Alcotest.(list (pair int string))

let test_empty () =
  let t : string Ci.t = Ci.create () in
  Alcotest.check b "is_empty" true (Ci.is_empty t);
  Alcotest.(check int) "cardinal" 0 (Ci.cardinal t);
  Alcotest.check b "min" true (Ci.min t = None);
  Alcotest.check il "keys" [] (Ci.keys t)

let test_insert_order () =
  let t = Ci.create () in
  List.iter (fun k -> Ci.add t ~key:k (string_of_int k)) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check int) "cardinal" 5 (Ci.cardinal t);
  Alcotest.check pl "ascending"
    [ (1, "1"); (3, "3"); (5, "5"); (7, "7"); (9, "9") ]
    (Ci.to_list t);
  Alcotest.check b "min is least key" true (Ci.min t = Some (1, "1"))

let test_replace_does_not_double_count () =
  let t = Ci.create () in
  Ci.add t ~key:4 "a";
  Ci.add t ~key:4 "b";
  Alcotest.(check int) "cardinal" 1 (Ci.cardinal t);
  Alcotest.check b "replaced" true (Ci.find t 4 = Some "b")

let test_remove () =
  let t = Ci.create () in
  List.iter (fun k -> Ci.add t ~key:k k) [ 2; 4; 6 ];
  Ci.remove t 4;
  Ci.remove t 4 (* absent: no-op, no count underflow *);
  Ci.remove t 99;
  Alcotest.(check int) "cardinal" 2 (Ci.cardinal t);
  Alcotest.check il "keys" [ 2; 6 ] (Ci.keys t);
  Ci.remove t 2;
  Ci.remove t 6;
  Alcotest.check b "empty again" true (Ci.is_empty t)

let test_find_first () =
  let t = Ci.create () in
  List.iter (fun k -> Ci.add t ~key:k (k * 10)) [ 1; 2; 3; 4; 5 ];
  Alcotest.check b "first even payload > 20" true
    (Ci.find_first t ~f:(fun _ v -> v > 20) = Some (3, 30));
  Alcotest.check b "no match" true
    (Ci.find_first t ~f:(fun _ v -> v > 500) = None);
  Alcotest.check b "least key wins" true
    (Ci.find_first t ~f:(fun _ _ -> true) = Some (1, 10))

let test_clear () =
  let t = Ci.create () in
  List.iter (fun k -> Ci.add t ~key:k k) [ 1; 2; 3 ];
  Ci.clear t;
  Alcotest.check b "cleared" true (Ci.is_empty t && Ci.cardinal t = 0)

(* Differential fuzz: random op sequences, the index and the replaced
   scan-based implementation must agree on every observation. *)
let test_differential_vs_reference () =
  let rng = Detmt_sim.Rng.create 0x1dL in
  let t = Ci.create () in
  let r = Ci.Reference.create () in
  for step = 1 to 2000 do
    let key = Detmt_sim.Rng.int rng 50 in
    (match Detmt_sim.Rng.int rng 4 with
    | 0 | 1 ->
      Ci.add t ~key step;
      Ci.Reference.add r ~key step
    | 2 ->
      Ci.remove t key;
      Ci.Reference.remove r key
    | _ ->
      Alcotest.check b "mem agrees" true (Ci.mem t key = Ci.Reference.mem r key));
    Alcotest.check b "min agrees" true (Ci.min t = Ci.Reference.min r);
    Alcotest.(check int)
      "cardinal agrees" (Ci.Reference.cardinal r) (Ci.cardinal t)
  done;
  Alcotest.check pl "final contents agree"
    (List.map (fun (k, v) -> (k, string_of_int v)) (Ci.Reference.to_list r))
    (List.map (fun (k, v) -> (k, string_of_int v)) (Ci.to_list t));
  Alcotest.check b "find_first agrees" true
    (Ci.find_first t ~f:(fun k _ -> k mod 3 = 0)
    = Ci.Reference.find_first r ~f:(fun k _ -> k mod 3 = 0))

let test_fold_iter_consistent () =
  let t = Ci.create () in
  List.iter (fun k -> Ci.add t ~key:k k) [ 8; 3; 5 ];
  let via_fold = Ci.fold t ~init:[] ~f:(fun k _ acc -> k :: acc) in
  let via_iter = ref [] in
  Ci.iter t ~f:(fun k _ -> via_iter := k :: !via_iter);
  Alcotest.check il "fold = iter" (List.rev via_fold) (List.rev !via_iter);
  Alcotest.check il "both ascending" [ 3; 5; 8 ] (List.rev via_fold)

let suite =
  [ ("empty", `Quick, test_empty);
    ("insert yields ascending order", `Quick, test_insert_order);
    ("replace does not double count", `Quick,
     test_replace_does_not_double_count);
    ("remove", `Quick, test_remove);
    ("find_first", `Quick, test_find_first);
    ("clear", `Quick, test_clear);
    ("differential vs reference scan", `Quick,
     test_differential_vs_reference);
    ("fold/iter consistent", `Quick, test_fold_iter_consistent);
  ]

let () = Alcotest.run "candidate_index" [ ("candidate_index", suite) ]
