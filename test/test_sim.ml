(* Unit tests for the deterministic simulation substrate. *)

open Detmt_sim

let b = Alcotest.bool

(* ------------------------------- Rng ------------------------------- *)

let test_rng_reproducible () =
  let a = Rng.create 1234L and b' = Rng.create 1234L in
  let xs = List.init 100 (fun _ -> Rng.int64 a) in
  let ys = List.init 100 (fun _ -> Rng.int64 b') in
  Alcotest.check b "same seed, same stream" true (xs = ys)

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b' = Rng.create 2L in
  Alcotest.check b "different seeds differ" false
    (Rng.int64 a = Rng.int64 b')

let test_rng_int_bounds () =
  let rng = Rng.create 99L in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "Rng.int out of bounds: %d" x
  done

let test_rng_int_covers_range () =
  let rng = Rng.create 5L in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    seen.(Rng.int rng 7) <- true
  done;
  Alcotest.check b "all residues reachable" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let rng = Rng.create 77L in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 3.5 in
    if x < 0.0 || x >= 3.5 then Alcotest.failf "Rng.float out of bounds: %g" x
  done

let test_rng_bool_probability () =
  let rng = Rng.create 13L in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng 0.2 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if abs_float (p -. 0.2) > 0.02 then
    Alcotest.failf "Rng.bool 0.2 measured %.3f" p

let test_rng_split_independent () =
  let parent = Rng.create 42L in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.int64 parent) in
  let ys = List.init 50 (fun _ -> Rng.int64 child) in
  Alcotest.check b "split streams differ" false (xs = ys)

let test_rng_copy () =
  let a = Rng.create 3L in
  ignore (Rng.int64 a);
  let c = Rng.copy a in
  Alcotest.check b "copy continues identically" true
    (Rng.int64 a = Rng.int64 c)

let test_rng_exponential_mean () =
  let rng = Rng.create 21L in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 5.0
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 5.0) > 0.2 then
    Alcotest.failf "exponential mean %.3f, expected 5.0" mean

let test_rng_shuffle_permutation () =
  let rng = Rng.create 31L in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.check b "shuffle is a permutation" true
    (Array.to_list sorted = List.init 20 Fun.id)

(* ------------------------------ Pqueue ----------------------------- *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:3.0 ~seq:0 "c";
  Pqueue.push q ~time:1.0 ~seq:1 "a";
  Pqueue.push q ~time:2.0 ~seq:2 "b";
  let pop () =
    match Pqueue.pop q with Some (_, _, v) -> v | None -> "?"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_pqueue_stable_ties () =
  let q = Pqueue.create () in
  for i = 0 to 9 do
    Pqueue.push q ~time:5.0 ~seq:i i
  done;
  let order =
    List.init 10 (fun _ ->
        match Pqueue.pop q with Some (_, _, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "ties pop in seq order" (List.init 10 Fun.id)
    order

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Alcotest.check b "peek empty" true (Pqueue.peek q = None);
  Pqueue.push q ~time:1.0 ~seq:0 42;
  (match Pqueue.peek q with
  | Some (_, _, 42) -> ()
  | _ -> Alcotest.fail "peek returns min");
  Alcotest.(check int) "peek does not remove" 1 (Pqueue.length q)

let test_pqueue_random_drain_sorted () =
  let rng = Rng.create 17L in
  let q = Pqueue.create () in
  for i = 0 to 999 do
    Pqueue.push q ~time:(Rng.float rng 100.0) ~seq:i i
  done;
  let rec drain last n =
    match Pqueue.pop q with
    | None -> n
    | Some (t, _, _) ->
      if t < last then Alcotest.failf "heap violated: %g after %g" t last;
      drain t (n + 1)
  in
  Alcotest.(check int) "all popped" 1000 (drain neg_infinity 0)

(* ------------------------------ Engine ----------------------------- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "execution order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "events executed" 3 (Engine.events_executed e)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  Engine.schedule e ~delay:5.5 (fun () -> seen := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "clock at event time" 5.5 !seen

let test_engine_zero_delay_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:0.0 (fun () ->
      log := "first" :: !log;
      Engine.schedule e ~delay:0.0 (fun () -> log := "nested" :: !log));
  Engine.schedule e ~delay:0.0 (fun () -> log := "second" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "same-time events keep schedule order"
    [ "first"; "second"; "nested" ]
    (List.rev !log)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:10.0 (fun () ->
      Alcotest.check_raises "past time rejected"
        (Invalid_argument "Engine.schedule_at: time 1 is before now 10")
        (fun () -> Engine.schedule_at e ~time:1.0 (fun () -> ())));
  Engine.run e

let test_engine_until () =
  let e = Engine.create () in
  let ran = ref [] in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> ran := d :: !ran))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 1e-9))) "only events <= until" [ 1.0; 2.0 ]
    (List.rev !ran);
  Alcotest.(check int) "rest still pending" 2 (Engine.pending e)

(* Boundary regression: an event scheduled exactly at [until] runs, and so
   does a same-instant cascade it triggers at the boundary; only events
   strictly after [until] stay queued.  The clock rests on the last executed
   event and a later [run] resumes the remainder. *)
let test_engine_until_boundary_inclusive () =
  let e = Engine.create () in
  let ran = ref [] in
  Engine.schedule e ~delay:1.0 (fun () -> ran := "early" :: !ran);
  Engine.schedule e ~delay:2.0 (fun () ->
      ran := "at" :: !ran;
      Engine.schedule e ~delay:0.0 (fun () -> ran := "cascade" :: !ran);
      Engine.schedule e ~delay:0.5 (fun () -> ran := "after" :: !ran));
  Engine.run ~until:2.0 e;
  Alcotest.(check (list string)) "boundary event and its cascade run"
    [ "early"; "at"; "cascade" ]
    (List.rev !ran);
  Alcotest.(check int) "strictly-later event stays queued" 1
    (Engine.pending e);
  Alcotest.(check (float 1e-9)) "clock rests on the last executed event" 2.0
    (Engine.now e);
  Engine.run e;
  Alcotest.(check (list string)) "resuming drains the remainder"
    [ "early"; "at"; "cascade"; "after" ]
    (List.rev !ran)

(* The explorer's schedule-injection hook: the oracle permutes same-instant
   events; pick 0 (or out-of-range) is the canonical order, and re-queued
   losers keep their original tie-break seq. *)
let test_engine_order_oracle () =
  let canonical oracle =
    let e = Engine.create () in
    let ran = ref [] in
    Engine.set_order_oracle e oracle;
    List.iteri
      (fun i d ->
        Engine.schedule e ~delay:d (fun () -> ran := (i, d) :: !ran))
      [ 1.0; 2.0; 2.0; 2.0; 3.0 ];
    Engine.run e;
    List.rev !ran
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "always-0 oracle is the canonical order" (canonical None)
    (canonical (Some (fun ~count:_ -> 0)));
  Alcotest.(check (list (pair int (float 1e-9))))
    "out-of-range pick falls back to canonical" (canonical None)
    (canonical (Some (fun ~count -> count)));
  (* Pick the last eligible event at the first 3-way tie, canonical after. *)
  let first = ref true in
  let flipped =
    canonical
      (Some
         (fun ~count ->
           if count = 3 && !first then begin
             first := false;
             2
           end
           else 0))
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "oracle reorders the tied instant only"
    [ (0, 1.0); (3, 2.0); (1, 2.0); (2, 2.0); (4, 3.0) ]
    flipped

let test_engine_journal () =
  let e = Engine.create () in
  Engine.set_journaling e true;
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> ()))
    [ 2.0; 1.0; 2.0 ];
  Engine.run e;
  Alcotest.(check (array (float 1e-9)))
    "journal records executed times in order" [| 1.0; 2.0; 2.0 |]
    (Engine.journal e);
  Engine.set_journaling e false;
  Alcotest.(check int) "switching off clears the journal" 0
    (Array.length (Engine.journal e))

let test_engine_until_empty_queue () =
  let e = Engine.create () in
  Engine.run ~until:10.0 e;
  Alcotest.(check (float 1e-9)) "clock untouched on an empty queue" 0.0
    (Engine.now e);
  Engine.schedule e ~delay:3.0 (fun () -> ());
  Engine.run ~until:1.0 e;
  Alcotest.(check int) "future event untouched below the bound" 1
    (Engine.pending e);
  Alcotest.(check (float 1e-9)) "clock still untouched" 0.0 (Engine.now e)

(* ------------------------------- Cpu ------------------------------- *)

let test_cpu_parallel_cores () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:2 in
  let done_at = ref [] in
  for _ = 1 to 2 do
    Cpu.exec cpu ~duration:10.0 (fun () ->
        done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "two cores run in parallel"
    [ 10.0; 10.0 ] !done_at

let test_cpu_queueing () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Cpu.exec cpu ~duration:10.0 (fun () ->
        done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "single core serialises"
    [ 10.0; 20.0; 30.0 ]
    (List.rev !done_at);
  Alcotest.(check (float 1e-9)) "busy time accumulates" 30.0
    (Cpu.busy_time cpu)

let test_cpu_fifo () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  let order = ref [] in
  List.iter
    (fun name ->
      Cpu.exec cpu ~duration:1.0 (fun () -> order := name :: !order))
    [ "a"; "b"; "c" ];
  Engine.run e;
  Alcotest.(check (list string)) "FIFO" [ "a"; "b"; "c" ] (List.rev !order)

(* ------------------------------ Trace ------------------------------ *)

let test_trace_fingerprint_order_sensitive () =
  let t1 = Trace.create () and t2 = Trace.create () in
  Trace.record t1 (Trace.Lock_granted { tid = 1; syncid = 1; mutex = 5 });
  Trace.record t1 (Trace.Unlocked { tid = 1; syncid = 1; mutex = 5 });
  Trace.record t2 (Trace.Unlocked { tid = 1; syncid = 1; mutex = 5 });
  Trace.record t2 (Trace.Lock_granted { tid = 1; syncid = 1; mutex = 5 });
  Alcotest.check b "order matters" false
    (Trace.fingerprint t1 = Trace.fingerprint t2)

let test_trace_fingerprint_equal_for_equal () =
  let mk () =
    let t = Trace.create () in
    Trace.record t (Trace.Thread_start { tid = 3; method_name = "m" });
    Trace.record t (Trace.Wait_begin { tid = 3; mutex = 9 });
    Trace.record t (Trace.Thread_end { tid = 3 });
    Trace.fingerprint t
  in
  Alcotest.check b "equal traces, equal fingerprints" true (mk () = mk ())

let test_trace_disabled () =
  let t = Trace.create () in
  Trace.set_enabled t false;
  Trace.record t (Trace.Thread_end { tid = 1 });
  Alcotest.(check int) "nothing recorded when disabled" 0 (Trace.length t)

(* ---------------------------- properties --------------------------- *)

let prop_pqueue_drains_sorted =
  QCheck.Test.make ~count:200 ~name:"pqueue drains in nondecreasing order"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun times ->
      let q = Pqueue.create () in
      List.iteri (fun i t -> Pqueue.push q ~time:t ~seq:i i) times;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (t, _, _) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~count:500 ~name:"Rng.int stays in bounds"
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let suite =
  [ ("rng reproducible", `Quick, test_rng_reproducible);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int covers range", `Quick, test_rng_int_covers_range);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng bool probability", `Quick, test_rng_bool_probability);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("pqueue ordering", `Quick, test_pqueue_ordering);
    ("pqueue stable ties", `Quick, test_pqueue_stable_ties);
    ("pqueue peek", `Quick, test_pqueue_peek);
    ("pqueue random drain", `Quick, test_pqueue_random_drain_sorted);
    ("engine order", `Quick, test_engine_runs_in_order);
    ("engine clock", `Quick, test_engine_clock_advances);
    ("engine zero-delay fifo", `Quick, test_engine_zero_delay_fifo);
    ("engine rejects past", `Quick, test_engine_rejects_past);
    ("engine until", `Quick, test_engine_until);
    ( "engine until boundary inclusive",
      `Quick,
      test_engine_until_boundary_inclusive );
    ("engine until empty queue", `Quick, test_engine_until_empty_queue);
    ("engine order oracle", `Quick, test_engine_order_oracle);
    ("engine journal", `Quick, test_engine_journal);
    ("cpu parallel cores", `Quick, test_cpu_parallel_cores);
    ("cpu queueing", `Quick, test_cpu_queueing);
    ("cpu fifo", `Quick, test_cpu_fifo);
    ("trace order-sensitive", `Quick, test_trace_fingerprint_order_sensitive);
    ("trace equal fingerprints", `Quick,
     test_trace_fingerprint_equal_for_equal);
    ("trace disabled", `Quick, test_trace_disabled);
    QCheck_alcotest.to_alcotest prop_pqueue_drains_sorted;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
  ]

let () = Alcotest.run "sim" [ ("sim", suite) ]
