(* Unit tests for the deterministic simulation substrate. *)

open Detmt_sim

let b = Alcotest.bool

(* ------------------------------- Rng ------------------------------- *)

let test_rng_reproducible () =
  let a = Rng.create 1234L and b' = Rng.create 1234L in
  let xs = List.init 100 (fun _ -> Rng.int64 a) in
  let ys = List.init 100 (fun _ -> Rng.int64 b') in
  Alcotest.check b "same seed, same stream" true (xs = ys)

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b' = Rng.create 2L in
  Alcotest.check b "different seeds differ" false
    (Rng.int64 a = Rng.int64 b')

let test_rng_int_bounds () =
  let rng = Rng.create 99L in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "Rng.int out of bounds: %d" x
  done

let test_rng_int_covers_range () =
  let rng = Rng.create 5L in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    seen.(Rng.int rng 7) <- true
  done;
  Alcotest.check b "all residues reachable" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let rng = Rng.create 77L in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 3.5 in
    if x < 0.0 || x >= 3.5 then Alcotest.failf "Rng.float out of bounds: %g" x
  done

let test_rng_bool_probability () =
  let rng = Rng.create 13L in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng 0.2 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if abs_float (p -. 0.2) > 0.02 then
    Alcotest.failf "Rng.bool 0.2 measured %.3f" p

let test_rng_split_independent () =
  let parent = Rng.create 42L in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.int64 parent) in
  let ys = List.init 50 (fun _ -> Rng.int64 child) in
  Alcotest.check b "split streams differ" false (xs = ys)

let test_rng_copy () =
  let a = Rng.create 3L in
  ignore (Rng.int64 a);
  let c = Rng.copy a in
  Alcotest.check b "copy continues identically" true
    (Rng.int64 a = Rng.int64 c)

let test_rng_exponential_mean () =
  let rng = Rng.create 21L in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 5.0
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 5.0) > 0.2 then
    Alcotest.failf "exponential mean %.3f, expected 5.0" mean

let test_rng_shuffle_permutation () =
  let rng = Rng.create 31L in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.check b "shuffle is a permutation" true
    (Array.to_list sorted = List.init 20 Fun.id)

(* ------------------------------ Pqueue ----------------------------- *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:3.0 ~seq:0 2;
  Pqueue.push q ~time:1.0 ~seq:1 0;
  Pqueue.push q ~time:2.0 ~seq:2 1;
  let pop () = match Pqueue.pop q with Some (_, _, v) -> v | None -> -1 in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list int)) "time order" [ 0; 1; 2 ]
    [ first; second; third ]

let test_pqueue_stable_ties () =
  let q = Pqueue.create () in
  for i = 0 to 9 do
    Pqueue.push q ~time:5.0 ~seq:i i
  done;
  let order =
    List.init 10 (fun _ ->
        match Pqueue.pop q with Some (_, _, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "ties pop in seq order" (List.init 10 Fun.id)
    order

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Alcotest.check b "peek empty" true (Pqueue.peek q = None);
  Pqueue.push q ~time:1.0 ~seq:0 42;
  (match Pqueue.peek q with
  | Some (_, _, 42) -> ()
  | _ -> Alcotest.fail "peek returns min");
  Alcotest.(check int) "peek does not remove" 1 (Pqueue.length q)

let test_pqueue_random_drain_sorted () =
  let rng = Rng.create 17L in
  let q = Pqueue.create () in
  for i = 0 to 999 do
    Pqueue.push q ~time:(Rng.float rng 100.0) ~seq:i i
  done;
  let rec drain last n =
    match Pqueue.pop q with
    | None -> n
    | Some (t, _, _) ->
      if t < last then Alcotest.failf "heap violated: %g after %g" t last;
      drain t (n + 1)
  in
  Alcotest.(check int) "all popped" 1000 (drain neg_infinity 0)

let test_pqueue_push_contract () =
  let q = Pqueue.create () in
  Alcotest.check_raises "negative payload rejected"
    (Invalid_argument "Pqueue.push: payload must be >= 0") (fun () ->
      Pqueue.push q ~time:1.0 ~seq:0 (-1));
  Alcotest.check_raises "negative time rejected"
    (Invalid_argument "Pqueue.push: time must be non-negative") (fun () ->
      Pqueue.push q ~time:(-1.0) ~seq:0 0)

let test_pqueue_reference_ordering () =
  (* The old polymorphic heap survives as the differential-fuzz oracle. *)
  let q = Pqueue.Reference.create () in
  Pqueue.Reference.push q ~time:3.0 ~seq:0 "c";
  Pqueue.Reference.push q ~time:1.0 ~seq:1 "a";
  Pqueue.Reference.push q ~time:2.0 ~seq:2 "b";
  let pop () =
    match Pqueue.Reference.pop q with Some (_, _, v) -> v | None -> "?"
  in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] [ p1; p2; p3 ];
  Alcotest.check b "drained" true (Pqueue.Reference.is_empty q);
  Pqueue.Reference.push q ~time:5.0 ~seq:3 "d";
  Pqueue.Reference.clear q;
  Alcotest.(check int) "clear empties" 0 (Pqueue.Reference.length q)

(* Differential fuzz: the timing wheel must produce a pop/peek stream
   bit-identical to the reference binary heap under random interleavings of
   push / pop / peek — including same-instant seq ties, pushes landing at
   the instant being drained, and far-future times that overflow every wheel
   level into the heap.  Repeated across granularities, which move bucket
   boundaries but must never change ordering. *)
let test_pqueue_differential_fuzz () =
  List.iter
    (fun g ->
      let rng = Rng.create 424242L in
      let q = Pqueue.create ~granularity_ms:g () in
      let r = Pqueue.Reference.create () in
      let seq = ref 0 in
      let last_pop = ref 0.0 in
      for _ = 1 to 5000 do
        let op = Rng.int rng 10 in
        if op < 6 then begin
          let t =
            match Rng.int rng 5 with
            | 0 -> !last_pop (* exact tie with the pop floor *)
            | 1 -> !last_pop +. (float_of_int (Rng.int rng 4) *. g)
            | 2 -> !last_pop +. Rng.float rng 50.0
            | 3 -> !last_pop +. Rng.float rng 10_000.0
            | _ -> !last_pop +. 100_000.0 +. Rng.float rng 1e6 (* overflow *)
          in
          Pqueue.push q ~time:t ~seq:!seq !seq;
          Pqueue.Reference.push r ~time:t ~seq:!seq !seq;
          incr seq
        end
        else if op < 9 then begin
          match (Pqueue.pop q, Pqueue.Reference.pop r) with
          | None, None -> ()
          | Some (t1, s1, v1), Some (t2, s2, v2) ->
            if not (t1 = t2 && s1 = s2 && v1 = v2) then
              Alcotest.failf "pop mismatch (g=%g): (%g,%d,%d) vs (%g,%d,%d)"
                g t1 s1 v1 t2 s2 v2;
            last_pop := t1
          | Some _, None | None, Some _ ->
            Alcotest.fail "pop emptiness mismatch"
        end
        else begin
          match (Pqueue.peek q, Pqueue.Reference.peek r) with
          | None, None -> ()
          | Some (t1, s1, v1), Some (t2, s2, v2) ->
            if not (t1 = t2 && s1 = s2 && v1 = v2) then
              Alcotest.failf "peek mismatch (g=%g)" g
          | Some _, None | None, Some _ ->
            Alcotest.fail "peek emptiness mismatch"
        end
      done;
      let rec drain () =
        match (Pqueue.pop q, Pqueue.Reference.pop r) with
        | None, None -> ()
        | Some a, Some b' when a = b' -> drain ()
        | _ -> Alcotest.failf "drain mismatch (g=%g)" g
      in
      drain ();
      Alcotest.check b "both empty" true
        (Pqueue.is_empty q && Pqueue.Reference.is_empty r))
    [ 0.5; 0.05; 7.3 ]

(* ------------------------------ Engine ----------------------------- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "execution order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "events executed" 3 (Engine.events_executed e)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  Engine.schedule e ~delay:5.5 (fun () -> seen := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "clock at event time" 5.5 !seen

let test_engine_zero_delay_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:0.0 (fun () ->
      log := "first" :: !log;
      Engine.schedule e ~delay:0.0 (fun () -> log := "nested" :: !log));
  Engine.schedule e ~delay:0.0 (fun () -> log := "second" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "same-time events keep schedule order"
    [ "first"; "second"; "nested" ]
    (List.rev !log)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:10.0 (fun () ->
      Alcotest.check_raises "past time rejected"
        (Invalid_argument "Engine.schedule_at: time 1 is before now 10")
        (fun () -> Engine.schedule_at e ~time:1.0 (fun () -> ())));
  Engine.run e

let test_engine_until () =
  let e = Engine.create () in
  let ran = ref [] in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> ran := d :: !ran))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 1e-9))) "only events <= until" [ 1.0; 2.0 ]
    (List.rev !ran);
  Alcotest.(check int) "rest still pending" 2 (Engine.pending e)

(* Boundary regression: an event scheduled exactly at [until] runs, and so
   does a same-instant cascade it triggers at the boundary; only events
   strictly after [until] stay queued.  The clock rests on the last executed
   event and a later [run] resumes the remainder. *)
let test_engine_until_boundary_inclusive () =
  let e = Engine.create () in
  let ran = ref [] in
  Engine.schedule e ~delay:1.0 (fun () -> ran := "early" :: !ran);
  Engine.schedule e ~delay:2.0 (fun () ->
      ran := "at" :: !ran;
      Engine.schedule e ~delay:0.0 (fun () -> ran := "cascade" :: !ran);
      Engine.schedule e ~delay:0.5 (fun () -> ran := "after" :: !ran));
  Engine.run ~until:2.0 e;
  Alcotest.(check (list string)) "boundary event and its cascade run"
    [ "early"; "at"; "cascade" ]
    (List.rev !ran);
  Alcotest.(check int) "strictly-later event stays queued" 1
    (Engine.pending e);
  Alcotest.(check (float 1e-9)) "clock rests on the last executed event" 2.0
    (Engine.now e);
  Engine.run e;
  Alcotest.(check (list string)) "resuming drains the remainder"
    [ "early"; "at"; "cascade"; "after" ]
    (List.rev !ran)

(* The explorer's schedule-injection hook: the oracle permutes same-instant
   events; pick 0 (or out-of-range) is the canonical order, and re-queued
   losers keep their original tie-break seq. *)
let test_engine_order_oracle () =
  let canonical oracle =
    let e = Engine.create () in
    let ran = ref [] in
    Engine.set_order_oracle e oracle;
    List.iteri
      (fun i d ->
        Engine.schedule e ~delay:d (fun () -> ran := (i, d) :: !ran))
      [ 1.0; 2.0; 2.0; 2.0; 3.0 ];
    Engine.run e;
    List.rev !ran
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "always-0 oracle is the canonical order" (canonical None)
    (canonical (Some (fun ~count:_ -> 0)));
  Alcotest.(check (list (pair int (float 1e-9))))
    "out-of-range pick falls back to canonical" (canonical None)
    (canonical (Some (fun ~count -> count)));
  (* Pick the last eligible event at the first 3-way tie, canonical after. *)
  let first = ref true in
  let flipped =
    canonical
      (Some
         (fun ~count ->
           if count = 3 && !first then begin
             first := false;
             2
           end
           else 0))
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "oracle reorders the tied instant only"
    [ (0, 1.0); (3, 2.0); (1, 2.0); (2, 2.0); (4, 3.0) ]
    flipped

let test_engine_journal () =
  let e = Engine.create () in
  Engine.set_journaling e true;
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> ()))
    [ 2.0; 1.0; 2.0 ];
  Engine.run e;
  Alcotest.(check (array (float 1e-9)))
    "journal records executed times in order" [| 1.0; 2.0; 2.0 |]
    (Engine.journal e);
  Engine.set_journaling e false;
  Alcotest.(check int) "switching off clears the journal" 0
    (Array.length (Engine.journal e))

(* Typed events interleave with thunk events in one (time, seq) order, and
   handler arguments arrive unchanged. *)
let test_engine_typed_events () =
  let e = Engine.create () in
  let log = ref [] in
  let h = Engine.register_handler e (fun x -> log := x :: !log) in
  Engine.post e ~delay:2.0 h 20;
  Engine.schedule e ~delay:1.0 (fun () -> log := 10 :: !log);
  Engine.post e ~delay:1.0 h 11;
  Engine.post_at e ~time:3.0 h 30;
  Engine.run e;
  Alcotest.(check (list int)) "typed and thunk events share one order"
    [ 10; 11; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "events executed" 4 (Engine.events_executed e);
  Engine.invoke e h 99;
  Alcotest.(check (list int)) "invoke dispatches synchronously"
    [ 10; 11; 20; 30; 99 ] (List.rev !log);
  Alcotest.(check int) "invoke is not an event" 4 (Engine.events_executed e)

let test_engine_post_rejects_bad_handler () =
  let e = Engine.create () in
  Alcotest.check_raises "unregistered handler rejected"
    (Invalid_argument "Engine.post_at: unknown handler 7") (fun () ->
      Engine.post_at e ~time:1.0 7 0)

let test_engine_until_empty_queue () =
  let e = Engine.create () in
  Engine.run ~until:10.0 e;
  Alcotest.(check (float 1e-9)) "clock untouched on an empty queue" 0.0
    (Engine.now e);
  Engine.schedule e ~delay:3.0 (fun () -> ());
  Engine.run ~until:1.0 e;
  Alcotest.(check int) "future event untouched below the bound" 1
    (Engine.pending e);
  Alcotest.(check (float 1e-9)) "clock still untouched" 0.0 (Engine.now e);
  (* [~until:infinity] means "run to drain" and must terminate on an empty
     queue (the explorer passes infinity for every unbounded run). *)
  Engine.run ~until:Float.infinity e;
  Alcotest.(check int) "infinity bound drains" 0 (Engine.pending e);
  Engine.run ~until:Float.infinity e;
  Alcotest.(check (float 1e-9)) "and terminates when already empty" 3.0
    (Engine.now e)

(* ------------------------------- Cpu ------------------------------- *)

let test_cpu_parallel_cores () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:2 in
  let done_at = ref [] in
  for _ = 1 to 2 do
    Cpu.exec cpu ~duration:10.0 (fun () ->
        done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "two cores run in parallel"
    [ 10.0; 10.0 ] !done_at

let test_cpu_queueing () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Cpu.exec cpu ~duration:10.0 (fun () ->
        done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "single core serialises"
    [ 10.0; 20.0; 30.0 ]
    (List.rev !done_at);
  Alcotest.(check (float 1e-9)) "busy time accumulates" 30.0
    (Cpu.busy_time cpu)

let test_cpu_fifo () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  let order = ref [] in
  List.iter
    (fun name ->
      Cpu.exec cpu ~duration:1.0 (fun () -> order := name :: !order))
    [ "a"; "b"; "c" ];
  Engine.run e;
  Alcotest.(check (list string)) "FIFO" [ "a"; "b"; "c" ] (List.rev !order)

(* Typed and thunk segments share one FIFO and one core pool. *)
let test_cpu_exec_h () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  let order = ref [] in
  let h = Engine.register_handler e (fun x -> order := x :: !order) in
  Cpu.exec_h cpu ~duration:1.0 h 1;
  Cpu.exec cpu ~duration:1.0 (fun () -> order := 2 :: !order);
  Cpu.exec_h cpu ~duration:1.0 h 3;
  Engine.run e;
  Alcotest.(check (list int)) "typed segments keep FIFO order" [ 1; 2; 3 ]
    (List.rev !order);
  Alcotest.(check (float 1e-9)) "durations charged" 3.0 (Cpu.busy_time cpu)

(* ------------------------------ Trace ------------------------------ *)

let test_trace_fingerprint_order_sensitive () =
  let t1 = Trace.create () and t2 = Trace.create () in
  Trace.record t1 (Trace.Lock_granted { tid = 1; syncid = 1; mutex = 5 });
  Trace.record t1 (Trace.Unlocked { tid = 1; syncid = 1; mutex = 5 });
  Trace.record t2 (Trace.Unlocked { tid = 1; syncid = 1; mutex = 5 });
  Trace.record t2 (Trace.Lock_granted { tid = 1; syncid = 1; mutex = 5 });
  Alcotest.check b "order matters" false
    (Trace.fingerprint t1 = Trace.fingerprint t2)

let test_trace_fingerprint_equal_for_equal () =
  let mk () =
    let t = Trace.create () in
    Trace.record t (Trace.Thread_start { tid = 3; method_name = "m" });
    Trace.record t (Trace.Wait_begin { tid = 3; mutex = 9 });
    Trace.record t (Trace.Thread_end { tid = 3 });
    Trace.fingerprint t
  in
  Alcotest.check b "equal traces, equal fingerprints" true (mk () = mk ())

let test_trace_disabled () =
  let t = Trace.create () in
  Trace.set_enabled t false;
  Trace.record t (Trace.Thread_end { tid = 1 });
  Alcotest.(check int) "nothing recorded when disabled" 0 (Trace.length t)

(* ---------------------------- properties --------------------------- *)

let prop_pqueue_drains_sorted =
  QCheck.Test.make ~count:200 ~name:"pqueue drains in nondecreasing order"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun times ->
      let q = Pqueue.create () in
      List.iteri (fun i t -> Pqueue.push q ~time:t ~seq:i i) times;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (t, _, _) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~count:500 ~name:"Rng.int stays in bounds"
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let suite =
  [ ("rng reproducible", `Quick, test_rng_reproducible);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int covers range", `Quick, test_rng_int_covers_range);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng bool probability", `Quick, test_rng_bool_probability);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("pqueue ordering", `Quick, test_pqueue_ordering);
    ("pqueue stable ties", `Quick, test_pqueue_stable_ties);
    ("pqueue peek", `Quick, test_pqueue_peek);
    ("pqueue random drain", `Quick, test_pqueue_random_drain_sorted);
    ("pqueue push contract", `Quick, test_pqueue_push_contract);
    ("pqueue reference ordering", `Quick, test_pqueue_reference_ordering);
    ("pqueue differential fuzz", `Quick, test_pqueue_differential_fuzz);
    ("engine order", `Quick, test_engine_runs_in_order);
    ("engine typed events", `Quick, test_engine_typed_events);
    ("engine post rejects bad handler", `Quick,
     test_engine_post_rejects_bad_handler);
    ("engine clock", `Quick, test_engine_clock_advances);
    ("engine zero-delay fifo", `Quick, test_engine_zero_delay_fifo);
    ("engine rejects past", `Quick, test_engine_rejects_past);
    ("engine until", `Quick, test_engine_until);
    ( "engine until boundary inclusive",
      `Quick,
      test_engine_until_boundary_inclusive );
    ("engine until empty queue", `Quick, test_engine_until_empty_queue);
    ("engine order oracle", `Quick, test_engine_order_oracle);
    ("engine journal", `Quick, test_engine_journal);
    ("cpu parallel cores", `Quick, test_cpu_parallel_cores);
    ("cpu queueing", `Quick, test_cpu_queueing);
    ("cpu fifo", `Quick, test_cpu_fifo);
    ("cpu exec_h", `Quick, test_cpu_exec_h);
    ("trace order-sensitive", `Quick, test_trace_fingerprint_order_sensitive);
    ("trace equal fingerprints", `Quick,
     test_trace_fingerprint_equal_for_equal);
    ("trace disabled", `Quick, test_trace_disabled);
    QCheck_alcotest.to_alcotest prop_pqueue_drains_sorted;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
  ]

let () = Alcotest.run "sim" [ ("sim", suite) ]
