(* Shared random-program generator for the property-based test suites.

   Generated classes are well-formed by construction: arguments 0/1 carry
   mutexes, argument 2 carries a boolean, state updates happen under a lock
   and the one local is assigned before use.  Waits are excluded (a random
   wait has no matching notify). *)

open Detmt_lang

let gen_param : Ast.sync_param QCheck.Gen.t =
  QCheck.Gen.oneofl
    [ Ast.Sp_this; Ast.Sp_arg 0; Ast.Sp_arg 1; Ast.Sp_field "f0";
      Ast.Sp_local "v0"; Ast.Sp_call "opaque" ]

let gen_cond : Ast.cond QCheck.Gen.t =
  QCheck.Gen.oneofl
    [ Ast.Carg_bool 2; Ast.Cconst true; Ast.Cconst false;
      Ast.Cnot (Ast.Carg_bool 2) ]

let gen_duration : float QCheck.Gen.t =
  QCheck.Gen.map
    (fun n -> 0.1 *. float_of_int (1 + n))
    (QCheck.Gen.int_bound 9)

let rec gen_stmt depth : Ast.stmt QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    [ map (fun d -> Ast.Compute (Ast.Fixed d)) gen_duration;
      map (fun d -> Ast.Nested { service = 0; duration = Ast.Fixed d })
        gen_duration;
      return (Ast.Assign ("v0", Ast.Marg 1));
    ]
  in
  let compound =
    if depth = 0 then []
    else
      [ (let* p = gen_param in
         let* d = gen_duration in
         return
           (Ast.Sync
              (p, [ Ast.Compute (Ast.Fixed d); Ast.State_update ("st", 1) ])));
        (* a balanced explicit-lock episode (java.util.concurrent):
           acquire; work; release — emitted as a statement triple folded
           into one compound so every path stays balanced *)
        (let* p = QCheck.Gen.oneofl
             [ Ast.Sp_this; Ast.Sp_arg 0; Ast.Sp_arg 1; Ast.Sp_field "f0" ]
         in
         let* d = gen_duration in
         return
           (Ast.If
              ( Ast.Cconst true,
                [ Ast.Lock_acquire p;
                  Ast.Compute (Ast.Fixed d);
                  Ast.State_update ("st", 1);
                  Ast.Lock_release p ],
                [] )));
        (let* c = gen_cond in
         let* a = gen_block (depth - 1) in
         let* b = gen_block (depth - 1) in
         return (Ast.If (c, a, b)));
        (let* n = int_bound 3 in
         let* body = gen_block (depth - 1) in
         return (Ast.Loop { kind = Ast.For; count = Ast.Cfixed n; body }));
      ]
  in
  oneof (leaf @ compound)

and gen_block depth : Ast.block QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 0 4 in
  list_repeat n (gen_stmt depth)

let gen_class : Class_def.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* body = gen_block 2 in
  (* Prelude assigns the local every program may lock on. *)
  let body = Ast.Assign ("v0", Ast.Marg 0) :: body in
  return
    (Class_def.make ~cname:"Rand" ~mutex_fields:[ ("f0", 3) ]
       ~state_fields:[ "st" ]
       [ { Class_def.name = "m"; final = true; exported = true; params = 3;
           body } ])

let arbitrary_class = QCheck.make ~print:Class_def.show gen_class

let gen_args : Ast.value array QCheck.Gen.t =
  let open QCheck.Gen in
  let* m0 = int_bound 3 in
  let* m1 = int_bound 3 in
  let* b = bool in
  return [| Ast.Vmutex m0; Ast.Vmutex m1; Ast.Vbool b |]

(* A seeded workload: a random class plus the client-stream seed that
   drives request arguments and think times.  Input to the cross-scheduler
   determinism fuzz. *)
let gen_workload : (Class_def.t * int64) QCheck.Gen.t =
  QCheck.Gen.(pair gen_class (map Int64.of_int (int_bound 0xffff)))

let arbitrary_workload =
  QCheck.make
    ~print:(fun (c, seed) ->
      Printf.sprintf "seed %Ld:\n%s" seed (Class_def.show c))
    gen_workload
