(* Robustness and stress tests: configuration validation, deep programs,
   large request volumes and misuse errors. *)

open Detmt_lang
open Detmt_replication

let b = Alcotest.bool

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let test_config_validation () =
  let base = Detmt_runtime.Config.default in
  List.iter
    (fun (what, cfg) ->
      Alcotest.check b what true
        (raises_invalid (fun () -> Detmt_runtime.Config.validate cfg)))
    [ ("zero cores", { base with cores = 0 });
      ("negative lock overhead", { base with lock_overhead_ms = -1.0 });
      ("negative bookkeeping",
       { base with bookkeeping_overhead_ms = -0.1 });
      ("negative reply build", { base with reply_build_ms = -0.1 });
      ("zero batch", { base with pds_batch = 0 });
      ("zero dummy timeout", { base with pds_dummy_timeout_ms = 0.0 });
    ];
  Detmt_runtime.Config.validate base

let test_unknown_scheduler_rejected () =
  let cls = Detmt_workload.Disjoint.cls Detmt_workload.Disjoint.default in
  Alcotest.check b "unknown scheduler raises" true
    (raises_invalid (fun () ->
         ignore
           (Active.create
              ~engine:(Detmt_sim.Engine.create ())
              ~cls
              ~params:{ Active.default_params with scheduler = "nope" }
              ())))

let test_deep_program_no_stack_overflow () =
  (* 2000 zero-cost statements advance synchronously through the CPS
     interpreter: must not blow the stack. *)
  let open Builder in
  let body =
    List.concat
      (List.init 1000 (fun _ ->
           [ sync this [ state_incr "st" 1 ]; assign "v" (marg 0) ]))
  in
  let cls =
    Builder.cls ~cname:"Deep" ~state_fields:[ "st" ]
      [ meth "m" ~params:1 body ]
  in
  let engine = Detmt_sim.Engine.create () in
  let config =
    { Detmt_runtime.Config.default with
      lock_overhead_ms = 0.0; bookkeeping_overhead_ms = 0.0;
      reply_build_ms = 0.0 }
  in
  let system =
    Active.create ~engine ~cls
      ~params:
        { Active.default_params with replicas = 1; scheduler = "mat"; config }
      ()
  in
  Active.submit system ~client:0 ~client_req:0 ~meth:"m"
    ~args:[| Ast.Vmutex 1 |] ~on_reply:(fun ~response_ms:_ -> ());
  Detmt_sim.Engine.run engine;
  match Active.replicas system with
  | [ r ] ->
    Alcotest.(check int) "1000 updates" 1000
      (List.assoc "st" (Detmt_runtime.Replica.state_snapshot r))
  | _ -> Alcotest.fail "one replica expected"

let test_large_volume () =
  (* 50 clients x 20 requests through three replicas under pmat. *)
  let wl = Detmt_workload.Disjoint.default in
  let engine = Detmt_sim.Engine.create () in
  let system =
    Active.create ~engine
      ~cls:(Detmt_workload.Disjoint.cls wl)
      ~params:{ Active.default_params with scheduler = "pmat" }
      ()
  in
  Client.run_clients ~engine ~system ~clients:50 ~requests_per_client:20
    ~gen:Detmt_workload.Disjoint.gen ();
  Alcotest.(check int) "1000 replies" 1000 (Active.replies_received system);
  let report = Consistency.check (Active.live_replicas system) in
  Alcotest.check b "consistent at volume" true (Consistency.consistent report)

let test_duplicate_request_uid_rejected () =
  let cls = Detmt_workload.Disjoint.cls Detmt_workload.Disjoint.default in
  let instrumented = Detmt_transform.Transform.basic cls in
  let engine = Detmt_sim.Engine.create () in
  let callbacks =
    { Detmt_runtime.Replica.send_reply = (fun _ -> ());
      do_nested = (fun ~tid:_ ~call_index:_ ~service:_ ~duration:_ -> ());
      broadcast_control = (fun _ -> ());
      inject_dummy = (fun () -> ());
      is_leader = (fun () -> true) }
  in
  let replica =
    Detmt_runtime.Replica.create ~engine ~id:0 ~cls:instrumented
      ~config:Detmt_runtime.Config.default ~callbacks
      ~make_sched:
        (Detmt_sched.Registry.instantiate (Detmt_sched.Sched_config.make "seq"))
      ()
  in
  let req =
    Detmt_runtime.Request.make ~uid:1 ~client:0 ~client_req:0
      ~meth:Detmt_workload.Disjoint.method_name ~args:[| Ast.Vmutex 0 |]
      ~sent_at:0.0
  in
  Detmt_runtime.Replica.deliver_request replica req;
  Alcotest.check b "same uid twice raises" true
    (raises_invalid (fun () ->
         Detmt_runtime.Replica.deliver_request replica req))

let test_cpu_invalid_args () =
  let engine = Detmt_sim.Engine.create () in
  Alcotest.check b "zero cores rejected" true
    (raises_invalid (fun () -> ignore (Detmt_sim.Cpu.create engine ~cores:0)));
  let cpu = Detmt_sim.Cpu.create engine ~cores:1 in
  Alcotest.check b "negative duration rejected" true
    (raises_invalid (fun () ->
         Detmt_sim.Cpu.exec cpu ~duration:(-1.0) (fun () -> ())))

let test_many_waiters_stress () =
  (* 30 consumers block before a burst of 30 producers arrives. *)
  let cls = Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default in
  let engine = Detmt_sim.Engine.create () in
  let system =
    Active.create ~engine ~cls
      ~params:{ Active.default_params with scheduler = "mat" }
      ()
  in
  for i = 0 to 29 do
    Active.submit system ~client:1 ~client_req:i
      ~meth:Detmt_workload.Prodcons.consume_method ~args:[||]
      ~on_reply:(fun ~response_ms:_ -> ())
  done;
  Detmt_sim.Engine.schedule engine ~delay:50.0 (fun () ->
      for i = 0 to 29 do
        Active.submit system ~client:2 ~client_req:i
          ~meth:Detmt_workload.Prodcons.produce_method ~args:[||]
          ~on_reply:(fun ~response_ms:_ -> ())
      done);
  Detmt_sim.Engine.run engine;
  Alcotest.(check int) "all 60 answered" 60 (Active.replies_received system);
  List.iter
    (fun r ->
      Alcotest.(check int) "buffer drained" 0
        (List.assoc "items" (Detmt_runtime.Replica.state_snapshot r)))
    (Active.replicas system)

let suite =
  [ ("config validation", `Quick, test_config_validation);
    ("unknown scheduler rejected", `Quick, test_unknown_scheduler_rejected);
    ("deep program, no stack overflow", `Quick,
     test_deep_program_no_stack_overflow);
    ("large volume", `Quick, test_large_volume);
    ("duplicate request uid rejected", `Quick,
     test_duplicate_request_uid_rejected);
    ("cpu invalid arguments", `Quick, test_cpu_invalid_args);
    ("many waiters stress", `Quick, test_many_waiters_stress);
  ]

let () = Alcotest.run "robustness" [ ("robustness", suite) ]
