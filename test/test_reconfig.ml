(* Tests for deterministic elastic reconfiguration: the epoch-versioned
   router, the 1-group epoch-0 ≡ Shard/Active contract, split / merge / hot
   swap at drained barriers, retry re-routing across epochs, the
   autoscaling controller, and the determinism oracles. *)

open Detmt_sim
open Detmt_replication

let b = Alcotest.bool
let i = Alcotest.int

let wl cross_ratio =
  { Detmt_workload.Sharded.default with Detmt_workload.Sharded.cross_ratio }

let make ?(scheduler = "mat") ?(initial_groups = 1) ?(slots = 64)
    ?(cross = 0.0) ?(drain_timeout_ms = 2000.0) ?obs ?on_group () =
  let workload = wl cross in
  let engine = Engine.create () in
  let base = { Active.default_params with Active.scheduler } in
  let system =
    Reconfig.create ?obs ?on_group ~engine
      ~cls:(Detmt_workload.Sharded.cls workload)
      ~params:
        { Reconfig.default_params with
          Reconfig.initial_groups; slots; drain_timeout_ms; base }
      ()
  in
  (engine, system, Detmt_workload.Sharded.gen workload)

let drive ?(clients = 8) ?(requests = 6) ?(seed = 7L) ?timeout_ms
    ?max_retries system gen =
  Reconfig.run_clients_stats system ~clients ~requests_per_client:requests
    ~gen ~seed ?timeout_ms ?max_retries ()

let total ~clients ~requests = clients * requests

let aggregate system = List.assoc "state" (Reconfig.aggregate_state system)

(* -------------------- 1-group epoch-0 equivalence -------------------- *)

(* A Reconfig with one group and no commands must be byte-for-byte the
   1-shard Shard system (itself byte-for-byte the unsharded Active path):
   same total order, same replica states, same client-visible replies. *)
let test_one_group_equals_one_shard () =
  let workload = wl 0.3 in
  let gen = Detmt_workload.Sharded.gen workload in
  let run_shard () =
    let engine = Engine.create () in
    let system =
      Shard.create ~engine
        ~cls:(Detmt_workload.Sharded.cls workload)
        ~params:{ Shard.shards = 1; base = Active.default_params } ()
    in
    Shard.run_clients system ~clients:8 ~requests_per_client:5 ~gen ~seed:3L ();
    ( Shard.replies_received system,
      Shard.reply_times system,
      Active.order_fingerprint (Shard.groups system).(0) )
  in
  let run_elastic () =
    let _, system, _ = make ~cross:0.3 () in
    Reconfig.run_clients system ~clients:8 ~requests_per_client:5 ~gen
      ~seed:3L ();
    ( Reconfig.replies_received system,
      Reconfig.reply_times system,
      Active.order_fingerprint (List.hd (Reconfig.live_systems system)) )
  in
  let sr, st, sf = run_shard () in
  let rr, rt, rf = run_elastic () in
  Alcotest.check i "same replies" sr rr;
  Alcotest.(check (list (float 1e-9))) "same reply times" st rt;
  Alcotest.check b "same total order" true (Int64.equal sf rf)

(* ------------------------------ routing ------------------------------ *)

let test_routing_follows_owner_table () =
  let _, system, _ = make ~initial_groups:2 ~cross:0.0 () in
  for m = 0 to 99 do
    let gs =
      Reconfig.group_set system ~meth:"update"
        ~args:[| Detmt_lang.Ast.Vmutex m |]
    in
    Alcotest.(check (list int)) "update routes to its slot's owner"
      [ Reconfig.route_of system m ] gs
  done

let test_validation () =
  let _, system, _ = make ~initial_groups:2 () in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.check b "merge into itself rejected" true
    (raises (fun () ->
         Reconfig.request system (Reconfig.Merge { from_g = 0; into = 0 })));
  Alcotest.check b "unknown scheduler rejected" true
    (raises (fun () ->
         Reconfig.request system
           (Reconfig.Hot_swap { group = 0; scheduler = "nope" })));
  Alcotest.check b "out-of-range group rejected" true
    (raises (fun () -> Reconfig.request system (Reconfig.Split 7)))

(* --------------------------- split / merge --------------------------- *)

let test_split_mid_run () =
  let _, system, gen = make () in
  Reconfig.request_at system ~at:8.0 (Reconfig.Split 0);
  let stats = drive ~clients:8 ~requests:8 system gen in
  Alcotest.check i "all replies" (total ~clients:8 ~requests:8)
    stats.Client.run_completed;
  Alcotest.check i "epoch advanced" 1 (Reconfig.epoch system);
  Alcotest.check i "two live groups" 2 (Reconfig.group_count system);
  Alcotest.check i "one split" 1 (Reconfig.splits system);
  Alcotest.check b "both groups saw traffic" true
    (List.for_all
       (fun sys -> Active.replies_received sys > 0)
       (Reconfig.live_systems system));
  Alcotest.check b "replicas agree everywhere" true
    (Reconfig.consistent system);
  Alcotest.check b "barrier fingerprints agree" true
    (Reconfig.epochs_agree system);
  Alcotest.check i "aggregate state = executed requests"
    (total ~clients:8 ~requests:8)
    (aggregate system)

(* Split then merge back into the donor restores the static routing table,
   and — update-only workload, commutative counters — the aggregate state
   lands exactly where a static run puts it. *)
let test_split_then_merge_restores_static () =
  let clients = 8 and requests = 10 in
  let static () =
    let _, system, gen = make () in
    let stats = drive ~clients ~requests system gen in
    (stats.Client.run_completed, aggregate system,
     List.init 64 (Reconfig.route_of system))
  in
  let elastic () =
    let _, system, gen = make () in
    Reconfig.request_at system ~at:6.0 (Reconfig.Split 0);
    Reconfig.request_at system ~at:20.0
      (Reconfig.Merge { from_g = 1; into = 0 });
    let stats = drive ~clients ~requests system gen in
    Alcotest.check i "two transitions" 2 (Reconfig.epoch system);
    Alcotest.check i "one live group again" 1 (Reconfig.group_count system);
    Alcotest.check b "whole history consistent" true
      (Reconfig.consistent system);
    Alcotest.check b "epochs observed bit-identically" true
      (Reconfig.epochs_agree system);
    (stats.Client.run_completed, aggregate system,
     List.init 64 (Reconfig.route_of system))
  in
  let sr, ss, sroute = static () in
  let er, es, eroute = elastic () in
  Alcotest.check i "same replies" sr er;
  Alcotest.check i "same aggregate state" ss es;
  Alcotest.(check (list int)) "routing table restored" sroute eroute

let test_merge_carries_dedup_and_state () =
  let _, system, gen = make ~initial_groups:2 () in
  Reconfig.request_at system ~at:10.0
    (Reconfig.Merge { from_g = 1; into = 0 });
  let stats = drive ~clients:8 ~requests:8 system gen in
  Alcotest.check i "all replies" (total ~clients:8 ~requests:8)
    stats.Client.run_completed;
  Alcotest.check i "one live group" 1 (Reconfig.group_count system);
  Alcotest.check i "aggregate preserved across the merge"
    (total ~clients:8 ~requests:8)
    (aggregate system);
  Alcotest.check i "no duplicate replies" 0
    (Reconfig.duplicate_client_replies system);
  Alcotest.check b "retired group still consistent" true
    (Reconfig.consistent system)

(* ------------------------------ hot swap ----------------------------- *)

let test_hot_swap_mid_run () =
  let _, system, gen = make ~scheduler:"sat" () in
  Reconfig.request_at system ~at:8.0
    (Reconfig.Hot_swap { group = 0; scheduler = "pds" });
  let stats = drive ~clients:8 ~requests:8 system gen in
  Alcotest.check i "all replies" (total ~clients:8 ~requests:8)
    stats.Client.run_completed;
  Alcotest.check i "one swap" 1 (Reconfig.swaps system);
  Alcotest.(check string)
    "group now runs the new scheduler" "pds"
    (Active.scheduler_name (List.hd (Reconfig.live_systems system)));
  Alcotest.check i "state carried across the swap"
    (total ~clients:8 ~requests:8)
    (aggregate system);
  Alcotest.check b "old and new incarnations consistent" true
    (Reconfig.consistent system)

(* Regression: reincarnating under a serial scheduler clamps the pool to 1
   worker; swapping back onto a conflict-graph scheduler must restore the
   originally configured width, not inherit the clamp. *)
let test_hot_swap_restores_pool_width () =
  let workload = wl 0.0 in
  let engine = Engine.create () in
  let base =
    { Active.default_params with Active.scheduler = "cgs"; workers = 4 }
  in
  let system =
    Reconfig.create ~engine
      ~cls:(Detmt_workload.Sharded.cls workload)
      ~params:{ Reconfig.default_params with Reconfig.base }
      ()
  in
  let gen = Detmt_workload.Sharded.gen workload in
  Reconfig.request_at system ~at:8.0
    (Reconfig.Hot_swap { group = 0; scheduler = "seq" });
  Reconfig.request_at system ~at:60.0
    (Reconfig.Hot_swap { group = 0; scheduler = "cgs" });
  let stats = drive ~clients:8 ~requests:8 system gen in
  Alcotest.check i "all replies" (total ~clients:8 ~requests:8)
    stats.Client.run_completed;
  Alcotest.check i "two swaps" 2 (Reconfig.swaps system);
  let sys = List.hd (Reconfig.live_systems system) in
  Alcotest.(check string) "back on cgs" "cgs" (Active.scheduler_name sys);
  Alcotest.check i "configured pool width restored" 4
    (Active.params sys).Active.workers;
  Alcotest.check b "all incarnations consistent" true
    (Reconfig.consistent system)

let test_hot_swap_same_scheduler_is_noop () =
  let _, system, gen = make ~scheduler:"mat" () in
  Reconfig.request_at system ~at:8.0
    (Reconfig.Hot_swap { group = 0; scheduler = "mat" });
  ignore (drive system gen);
  Alcotest.check i "no swap applied" 0 (Reconfig.swaps system);
  Alcotest.check i "transition aborted instead" 1
    (Reconfig.aborted_transitions system);
  Alcotest.check i "epoch unchanged" 0 (Reconfig.epoch system)

(* A hot swap racing a crash and a scheduled recovery: the swap must not
   resurrect the dead replica, and the recovery lands on the group's
   current incarnation when it fires. *)
let test_hot_swap_races_recovery () =
  let _, system, gen = make ~scheduler:"mat" () in
  Engine.schedule_at (Reconfig.engine system) ~time:5.0 (fun () ->
      Reconfig.kill_replica system ~group:0 ~offset:2);
  Reconfig.request_at system ~at:10.0
    (Reconfig.Hot_swap { group = 0; scheduler = "lsa" });
  Reconfig.recover_replica system ~group:0 ~offset:2 ~at:60.0;
  let stats = drive ~clients:8 ~requests:10 system gen in
  Alcotest.check i "all replies" (total ~clients:8 ~requests:10)
    stats.Client.run_completed;
  Alcotest.check i "swap applied" 1 (Reconfig.swaps system);
  Alcotest.check i "recovery completed in the new incarnation" 1
    (Reconfig.recoveries system);
  let sys = List.hd (Reconfig.live_systems system) in
  Alcotest.check i "all replicas live again" 3
    (List.length (Active.live_replicas sys));
  (* a recovered replica's trace covers only its suffix; state agreement is
     the post-recovery contract, as in the chaos harness *)
  Alcotest.check b "states agree after the race" true
    (Reconfig.states_agree system)

(* -------------------- retries across the barrier --------------------- *)

(* Client retries with a timeout short enough to fire during the drain
   window: the retry is held, re-routed under the new epoch, and the dedup
   ledger the split group inherited keeps execution exactly-once. *)
let test_retry_straddles_split () =
  let _, system, gen = make () in
  Reconfig.request_at system ~at:6.0 (Reconfig.Split 0);
  Reconfig.request_at system ~at:30.0 (Reconfig.Split 1);
  let stats =
    drive ~clients:12 ~requests:8 ~timeout_ms:3.0 ~max_retries:40 system gen
  in
  Alcotest.check i "all replies exactly once" (total ~clients:12 ~requests:8)
    stats.Client.run_completed;
  Alcotest.check b "timeouts actually fired" true
    (stats.Client.run_retries > 0);
  Alcotest.check b "some submissions queued behind a barrier" true
    (Reconfig.held_requests system > 0);
  Alcotest.check i "no duplicate replies" 0
    (Reconfig.duplicate_client_replies system);
  Alcotest.check i "every request executed exactly once"
    (total ~clients:12 ~requests:8)
    (aggregate system);
  Alcotest.check i "three live groups" 3 (Reconfig.group_count system)

(* ------------------------- drain timeout ----------------------------- *)

let test_drain_timeout_aborts () =
  let _, system, gen = make ~drain_timeout_ms:0.0 () in
  (* with a zero budget, any in-flight traffic at the barrier aborts *)
  Reconfig.request_at system ~at:5.0 (Reconfig.Split 0);
  let stats = drive ~clients:8 ~requests:8 system gen in
  Alcotest.check i "all replies" (total ~clients:8 ~requests:8)
    stats.Client.run_completed;
  Alcotest.check i "command aborted" 1 (Reconfig.aborted_transitions system);
  Alcotest.check i "epoch unchanged" 0 (Reconfig.epoch system);
  Alcotest.check i "still one group" 1 (Reconfig.group_count system)

(* --------------------------- autoscaling ----------------------------- *)

let hotspot_make ?(scheduler = "mat") () =
  (* update-only so the aggregate counter counts executions exactly once
     per request (a transfer bumps it twice on every involved group) *)
  let workload =
    { Detmt_workload.Hotspot.default with
      Detmt_workload.Hotspot.cross_ratio = 0.0 }
  in
  let engine = Engine.create () in
  let base = { Active.default_params with Active.scheduler } in
  let system =
    Reconfig.create ~engine
      ~cls:(Detmt_workload.Hotspot.cls workload)
      ~params:{ Reconfig.default_params with Reconfig.base }
      ()
  in
  (engine, system, Detmt_workload.Hotspot.gen workload)

let autoscaled_run () =
  let _, system, gen = hotspot_make () in
  Reconfig.set_autoscale system
    { Reconfig.default_policy with Reconfig.split_above = 8; max_live = 4 };
  let stats =
    Reconfig.run_clients_stats system ~clients:48 ~requests_per_client:6 ~gen
      ~seed:11L ()
  in
  (system, stats)

let test_autoscaler_splits_under_load () =
  let system, stats = autoscaled_run () in
  Alcotest.check i "all replies" (48 * 6) stats.Client.run_completed;
  Alcotest.check b "controller split at least once" true
    (Reconfig.splits system >= 1);
  Alcotest.check b "never above the policy ceiling" true
    (Reconfig.group_count system <= 4);
  Alcotest.check b "consistent" true (Reconfig.consistent system);
  Alcotest.check b "epochs agree" true (Reconfig.epochs_agree system);
  Alcotest.check i "exactly-once under elasticity" (48 * 6)
    (aggregate system)

let test_autoscaled_run_is_reproducible () =
  let s1, _ = autoscaled_run () in
  let s2, _ = autoscaled_run () in
  Alcotest.check b "same fingerprint" true
    (Int64.equal (Reconfig.fingerprint s1) (Reconfig.fingerprint s2));
  Alcotest.(check (list Alcotest.(pair int int)))
    "same transition schedule"
    (List.map
       (fun tr -> (tr.Reconfig.tr_epoch, tr.Reconfig.tr_barrier_seq))
       (Reconfig.transitions s1))
    (List.map
       (fun tr -> (tr.Reconfig.tr_epoch, tr.Reconfig.tr_barrier_seq))
       (Reconfig.transitions s2))

(* Elastic runs stay deterministic under every registered deterministic
   scheduler: same seed, same command schedule → same fingerprint. *)
let test_deterministic_across_schedulers () =
  List.iter
    (fun scheduler ->
      let run () =
        let _, system, gen = make ~scheduler () in
        Reconfig.request_at system ~at:6.0 (Reconfig.Split 0);
        Reconfig.request_at system ~at:20.0
          (Reconfig.Merge { from_g = 1; into = 0 });
        ignore (drive system gen);
        system
      in
      let s1 = run () and s2 = run () in
      Alcotest.check b
        (scheduler ^ ": equal-seed elastic runs identical")
        true
        (Int64.equal (Reconfig.fingerprint s1) (Reconfig.fingerprint s2));
      Alcotest.check b
        (scheduler ^ ": epochs agree")
        true (Reconfig.epochs_agree s1))
    Chaos.default_schedulers

let () =
  Alcotest.run "reconfig"
    [ ( "equivalence",
        [ Alcotest.test_case "one group epoch 0 = one shard" `Quick
            test_one_group_equals_one_shard ] );
      ( "routing",
        [ Alcotest.test_case "owner table drives routing" `Quick
            test_routing_follows_owner_table;
          Alcotest.test_case "command validation" `Quick test_validation ] );
      ( "split-merge",
        [ Alcotest.test_case "split mid-run" `Quick test_split_mid_run;
          Alcotest.test_case "split then merge = static" `Quick
            test_split_then_merge_restores_static;
          Alcotest.test_case "merge carries dedup and state" `Quick
            test_merge_carries_dedup_and_state ] );
      ( "hot-swap",
        [ Alcotest.test_case "swap mid-run" `Quick test_hot_swap_mid_run;
          Alcotest.test_case "swap back restores pool width" `Quick
            test_hot_swap_restores_pool_width;
          Alcotest.test_case "same scheduler is a no-op" `Quick
            test_hot_swap_same_scheduler_is_noop;
          Alcotest.test_case "swap races recovery" `Quick
            test_hot_swap_races_recovery ] );
      ( "retries",
        [ Alcotest.test_case "retry straddles a split" `Quick
            test_retry_straddles_split ] );
      ( "drain",
        [ Alcotest.test_case "timeout aborts the command" `Quick
            test_drain_timeout_aborts ] );
      ( "autoscale",
        [ Alcotest.test_case "splits under load" `Quick
            test_autoscaler_splits_under_load;
          Alcotest.test_case "reproducible" `Quick
            test_autoscaled_run_is_reproducible;
          Alcotest.test_case "deterministic across schedulers" `Quick
            test_deterministic_across_schedulers ] );
    ]
