(* Tests for the workload generators: well-formedness of the generated
   classes and the deterministic client-side randomness contract. *)

open Detmt_lang

let b = Alcotest.bool

let test_all_classes_wellformed () =
  let classes =
    [ Detmt_workload.Figure1.cls Detmt_workload.Figure1.default;
      Detmt_workload.Figure1.cls Detmt_workload.Figure1.compute_heavy;
      Detmt_workload.Disjoint.cls Detmt_workload.Disjoint.default;
      Detmt_workload.Tail_compute.cls Detmt_workload.Tail_compute.default;
      Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default;
    ]
  in
  List.iter
    (fun cls ->
      Alcotest.(check (list string))
        (cls.Class_def.cname ^ " wellformed")
        [] (Wellformed.errors cls))
    classes

let test_all_classes_transform () =
  (* Every workload must survive both transformations and verify.  Figure 1
     is checked with 4 iterations: path enumeration is exponential in the
     iteration count and 4 already covers every structural case. *)
  let small_figure1 =
    { Detmt_workload.Figure1.default with Detmt_workload.Figure1.iterations = 4 }
  in
  let classes =
    [ Detmt_workload.Figure1.cls small_figure1;
      Detmt_workload.Disjoint.cls Detmt_workload.Disjoint.default;
      Detmt_workload.Tail_compute.cls Detmt_workload.Tail_compute.default;
      Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default;
    ]
  in
  List.iter
    (fun cls ->
      ignore (Detmt_transform.Transform.basic cls);
      let instrumented, summary = Detmt_transform.Transform.predictive cls in
      Alcotest.(check (list string))
        (cls.Class_def.cname ^ " verifies")
        []
        (Detmt_transform.Verify.check_class ~summary instrumented))
    classes

let test_figure1_arg_shape () =
  let p = Detmt_workload.Figure1.default in
  let rng = Detmt_sim.Rng.create 1L in
  let meth, args = Detmt_workload.Figure1.gen p ~client:0 ~seq:0 rng in
  Alcotest.(check string) "method" "work" meth;
  Alcotest.(check int) "three args per iteration" 30 (Array.length args);
  Array.iteri
    (fun j v ->
      match (j mod 3, v) with
      | 0, Ast.Vbool _ | 1, Ast.Vbool _ -> ()
      | 2, Ast.Vmutex m ->
        if m < 0 || m >= p.n_mutexes then
          Alcotest.failf "mutex %d out of range" m
      | _ -> Alcotest.failf "wrong arg kind at %d" j)
    args

let test_figure1_gen_deterministic () =
  let p = Detmt_workload.Figure1.default in
  let draw () =
    let rng = Detmt_sim.Rng.create 7L in
    snd (Detmt_workload.Figure1.gen p ~client:0 ~seq:0 rng)
  in
  Alcotest.check b "same seed, same decisions" true (draw () = draw ())

let test_figure1_probabilities () =
  let p = Detmt_workload.Figure1.default in
  let rng = Detmt_sim.Rng.create 11L in
  let nested = ref 0 and total = ref 0 in
  for seq = 0 to 999 do
    let _, args = Detmt_workload.Figure1.gen p ~client:0 ~seq rng in
    Array.iteri
      (fun j v ->
        if j mod 3 = 0 then begin
          incr total;
          match v with Ast.Vbool true -> incr nested | _ -> ()
        end)
      args
  done;
  let rate = float_of_int !nested /. float_of_int !total in
  if abs_float (rate -. p.p_nested) > 0.02 then
    Alcotest.failf "nested rate %.3f, expected %.2f" rate p.p_nested

let test_disjoint_private_mutexes () =
  let m client =
    match Detmt_workload.Disjoint.gen ~client ~seq:0 (Detmt_sim.Rng.create 1L)
    with
    | _, [| Ast.Vmutex m |] -> m
    | _ -> Alcotest.fail "one mutex arg expected"
  in
  Alcotest.check b "clients use distinct mutexes" true (m 0 <> m 1)

let test_tail_compute_shared_switch () =
  let gen p client =
    match
      Detmt_workload.Tail_compute.gen p ~client ~seq:0
        (Detmt_sim.Rng.create 1L)
    with
    | _, [| Ast.Vmutex m |] -> m
    | _ -> Alcotest.fail "one mutex arg expected"
  in
  let shared = Detmt_workload.Tail_compute.default in
  let private_ = { shared with Detmt_workload.Tail_compute.shared_mutex = false } in
  Alcotest.check b "shared: same mutex" true (gen shared 0 = gen shared 5);
  Alcotest.check b "private: distinct" true (gen private_ 0 <> gen private_ 5)

let test_prodcons_roles () =
  let meth client =
    fst (Detmt_workload.Prodcons.gen ~client ~seq:0 (Detmt_sim.Rng.create 1L))
  in
  Alcotest.(check string) "even clients produce" "produce" (meth 0);
  Alcotest.(check string) "odd clients consume" "consume" (meth 1)

let test_sharded_degenerate_self_transfer () =
  (* objects = 1 makes distinct transfer endpoints impossible: the draw
     degenerates to transfer(0,0), whose duplicate endpoints the shard
     router collapses onto the single-shard fast path — the request must
     stay wellformed and generable, not deadlock a two-phase delivery. *)
  let p =
    { Detmt_workload.Sharded.default with
      Detmt_workload.Sharded.objects = 1; cross_ratio = 1.0 }
  in
  Alcotest.(check (list string))
    "degenerate class wellformed" []
    (Wellformed.errors (Detmt_workload.Sharded.cls p));
  let rng = Detmt_sim.Rng.create 11L in
  for seq = 0 to 49 do
    match Detmt_workload.Sharded.gen p ~client:0 ~seq rng with
    | meth, [| Ast.Vmutex a; Ast.Vmutex bb |] ->
      Alcotest.(check string) "all transfers" "transfer" meth;
      Alcotest.(check int) "endpoint a is the only object" 0 a;
      Alcotest.(check int) "endpoint b collapses onto it" 0 bb
    | _ -> Alcotest.fail "transfer arg shape expected"
  done

let test_sharded_opaque_gating () =
  (* opaque_ratio = 0 must add neither the method nor any RNG draw, so
     existing request streams stay bit-identical; > 0 materialises
     [opaque_method] in the class and in the generated stream. *)
  let dflt = Detmt_workload.Sharded.default in
  let stream p seed n =
    let rng = Detmt_sim.Rng.create seed in
    List.init n (fun seq -> Detmt_workload.Sharded.gen p ~client:0 ~seq rng)
  in
  let has_opaque p =
    Option.is_some
      (Class_def.find_method (Detmt_workload.Sharded.cls p)
         Detmt_workload.Sharded.opaque_method)
  in
  Alcotest.check b "default has no opaque method" false (has_opaque dflt);
  Alcotest.check b "zero ratio leaves the stream bit-identical" true
    (stream dflt 3L 64
    = stream { dflt with Detmt_workload.Sharded.opaque_ratio = 0.0 } 3L 64);
  let inj = { dflt with Detmt_workload.Sharded.opaque_ratio = 0.5 } in
  Alcotest.check b "injector adds the opaque method" true (has_opaque inj);
  Alcotest.(check (list string))
    "injector class wellformed" []
    (Wellformed.errors (Detmt_workload.Sharded.cls inj));
  let opaques =
    List.filter
      (fun (m, _) -> m = Detmt_workload.Sharded.opaque_method)
      (stream inj 3L 64)
  in
  Alcotest.check b "injector emits opaque requests" true
    (List.length opaques > 0);
  List.iter
    (fun (_, args) ->
      match args with
      | [| Ast.Vmutex m |] ->
        Alcotest.check b "opaque arg in the object space" true
          (m >= 0 && m < dflt.Detmt_workload.Sharded.objects)
      | _ -> Alcotest.fail "opaque arg shape expected")
    opaques

let test_sharded_opaque_prediction_class () =
  (* The injector's whole point: the method is statically analysable (no
     fallback, no condvars) yet its sync target reaches the lock through a
     local, so dispatch-time class resolution — which can only see [this]
     and request arguments — cannot name the mutex and must classify the
     request as [Top]. *)
  let p = { Detmt_workload.Sharded.default with
            Detmt_workload.Sharded.opaque_ratio = 0.5 } in
  let _, summary =
    Detmt_transform.Transform.predictive (Detmt_workload.Sharded.cls p)
  in
  let ms =
    Option.get
      (Detmt_analysis.Predict.find_method summary
         Detmt_workload.Sharded.opaque_method)
  in
  Alcotest.check b "not fallback" false ms.Detmt_analysis.Predict.fallback;
  Alcotest.check b "no condvars" false ms.Detmt_analysis.Predict.uses_condvars;
  Alcotest.check b "some lock is invisible to dispatch-time resolution" true
    (List.exists
       (fun (si : Detmt_analysis.Predict.sid_info) ->
         match si.Detmt_analysis.Predict.param with
         | Ast.Sp_this | Ast.Sp_arg _ -> false
         | _ -> true)
       ms.Detmt_analysis.Predict.sids)

let test_figure1_prediction_quality () =
  (* All mutexes travel as request arguments, so the whole method must be
     announceable: prediction needs no fallback and no spontaneous sids. *)
  let cls = Detmt_workload.Figure1.cls Detmt_workload.Figure1.default in
  let _, summary = Detmt_transform.Transform.predictive cls in
  let ms =
    Option.get (Detmt_analysis.Predict.find_method summary "work")
  in
  Alcotest.check b "no fallback" false ms.Detmt_analysis.Predict.fallback;
  Alcotest.(check int) "ten announceable locks" 10
    (List.length (Detmt_analysis.Predict.announceable_sids ms));
  Alcotest.(check (list int)) "no spontaneous locks" []
    (Detmt_analysis.Predict.spontaneous_sids ms)

let suite =
  [ ("classes wellformed", `Quick, test_all_classes_wellformed);
    ("classes transform and verify", `Quick, test_all_classes_transform);
    ("figure1 arg shape", `Quick, test_figure1_arg_shape);
    ("figure1 gen deterministic", `Quick, test_figure1_gen_deterministic);
    ("figure1 probabilities", `Quick, test_figure1_probabilities);
    ("disjoint private mutexes", `Quick, test_disjoint_private_mutexes);
    ("tail compute shared switch", `Quick, test_tail_compute_shared_switch);
    ("prodcons roles", `Quick, test_prodcons_roles);
    ("sharded degenerate self transfer", `Quick,
      test_sharded_degenerate_self_transfer);
    ("sharded opaque gating", `Quick, test_sharded_opaque_gating);
    ("sharded opaque is Top-class", `Quick,
      test_sharded_opaque_prediction_class);
    ("figure1 fully announceable", `Quick, test_figure1_prediction_quality);
  ]

let () = Alcotest.run "workload" [ ("workload", suite) ]
