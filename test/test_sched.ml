(* Fine-grained semantic tests for each decision module, driven through a
   small (1- or 3-replica) system with hand-submitted requests. *)

open Detmt_sim
open Detmt_lang
open Detmt_replication

let b = Alcotest.bool

(* A class with three start methods used by most scenarios:
   - "locked":    lock(arg0) { compute 10 }            — work under a lock
   - "pure":      compute 10                           — no locks at all
   - "remote":    nested call, 10 ms                   — idle time only
   - "tail":      lock(arg0) { compute 1 }; compute 10 — Figure 2 shape *)
let scenario_cls =
  let open Builder in
  Builder.cls ~cname:"S" ~state_fields:[ "st" ]
    [ meth "locked" ~params:1
        [ sync (arg 0) [ compute 10.0; state_incr "st" 1 ] ];
      meth "pure" [ compute 10.0 ];
      meth "remote" [ nested ~service:0 10.0 ];
      meth "tail" ~params:1
        [ sync (arg 0) [ compute 1.0; state_incr "st" 1 ]; compute 10.0 ];
    ]

(* Build a system, submit the given requests at t=0, run to completion and
   return (makespan, system).  Zero scheduling overheads keep the arithmetic
   of the assertions exact. *)
let run_requests ?(replicas = 1) ~scheduler reqs =
  let engine = Engine.create () in
  let config =
    { Detmt_runtime.Config.default with
      lock_overhead_ms = 0.0; bookkeeping_overhead_ms = 0.0;
      reply_build_ms = 0.0 }
  in
  let params =
    { Active.default_params with
      replicas; scheduler; config; net_latency_ms = 0.0;
      client_latency_ms = 0.0 }
  in
  let system = Active.create ~engine ~cls:scenario_cls ~params () in
  let last_reply = ref 0.0 in
  List.iteri
    (fun i (meth, args) ->
      Active.submit system ~client:0 ~client_req:i ~meth ~args
        ~on_reply:(fun ~response_ms ->
          last_reply := Float.max !last_reply response_ms))
    reqs;
  Engine.run engine;
  (!last_reply, system)

let locked m = ("locked", [| Ast.Vmutex m |])

let tail m = ("tail", [| Ast.Vmutex m |])

let feq = Alcotest.(check (float 1e-6))

(* ------------------------------- SEQ -------------------------------- *)

let test_seq_serialises_everything () =
  let makespan, _ = run_requests ~scheduler:"seq" [ locked 1; locked 2 ] in
  feq "two disjoint requests run back to back" 20.0 makespan

let test_seq_wastes_nested_idle () =
  let makespan, _ =
    run_requests ~scheduler:"seq" [ ("remote", [||]); ("remote", [||]) ]
  in
  feq "idle time not reused" 20.0 makespan

(* ------------------------------- SAT -------------------------------- *)

let test_sat_single_active_thread () =
  let makespan, _ =
    run_requests ~scheduler:"sat" [ ("pure", [||]); ("pure", [||]) ]
  in
  feq "pure computations serialise under SAT" 20.0 makespan

let test_sat_uses_nested_idle () =
  let makespan, _ =
    run_requests ~scheduler:"sat" [ ("remote", [||]); ("remote", [||]) ]
  in
  feq "nested idle time reused" 10.0 makespan

(* ------------------------------- MAT -------------------------------- *)

let test_mat_parallel_pure_computations () =
  let makespan, _ =
    run_requests ~scheduler:"mat" [ ("pure", [||]); ("pure", [||]) ]
  in
  feq "secondaries compute in parallel" 10.0 makespan

let test_mat_pessimism_on_disjoint_locks () =
  (* The paper's criticism: the secondary blocks although the mutexes do not
     conflict. *)
  let makespan, _ = run_requests ~scheduler:"mat" [ locked 1; locked 2 ] in
  feq "disjoint locks still serialise" 20.0 makespan

let test_mat_holds_primacy_through_tail () =
  (* Figure 2(a): primacy is only handed over at termination. *)
  let makespan, _ = run_requests ~scheduler:"mat" [ tail 1; tail 2 ] in
  feq "second request waits for the first one's tail" 22.0 makespan

(* ----------------------------- MAT-LL ------------------------------- *)

let test_mat_ll_hands_over_after_last_lock () =
  (* Figure 2(b): primacy moves right after the last unlock; the 10 ms
     tails overlap. *)
  let makespan, _ = run_requests ~scheduler:"mat-ll" [ tail 1; tail 2 ] in
  feq "tails overlap" 12.0 makespan

let test_mat_ll_no_worse_when_shared () =
  let makespan, _ = run_requests ~scheduler:"mat-ll" [ tail 1; tail 1 ] in
  feq "shared mutex still serialises the critical sections" 12.0 makespan

(* ------------------------------ PMAT -------------------------------- *)

let test_pmat_parallel_disjoint_locks () =
  (* Figure 3(b): announced, non-conflicting locks are granted
     concurrently. *)
  let makespan, _ = run_requests ~scheduler:"pmat" [ locked 1; locked 2 ] in
  feq "disjoint locks run in parallel" 10.0 makespan

let test_pmat_serialises_conflicts () =
  let makespan, _ = run_requests ~scheduler:"pmat" [ locked 1; locked 1 ] in
  feq "conflicting locks serialise" 20.0 makespan

let test_pmat_conflict_order_is_queue_order () =
  let _, system = run_requests ~scheduler:"pmat" [ locked 5; locked 5 ] in
  match Active.replicas system with
  | [ r ] ->
    let locks =
      List.filter_map
        (function
          | Trace.Lock_granted { tid; _ } -> Some tid
          | _ -> None)
        (Trace.events (Detmt_runtime.Replica.trace r))
    in
    Alcotest.(check (list int)) "queue (arrival) order" [ 0; 1 ] locks
  | _ -> Alcotest.fail "one replica expected"

(* ------------------------------- PDS -------------------------------- *)

let test_pds_round_opens_when_batch_arrives () =
  let engine = Engine.create () in
  let config =
    { Detmt_runtime.Config.default with
      lock_overhead_ms = 0.0; bookkeeping_overhead_ms = 0.0;
      reply_build_ms = 0.0; pds_batch = 2; pds_dummy_timeout_ms = 100.0 }
  in
  let params =
    { Active.default_params with
      replicas = 1; scheduler = "pds"; config; net_latency_ms = 0.0;
      client_latency_ms = 0.0 }
  in
  let system = Active.create ~engine ~cls:scenario_cls ~params () in
  let replies = ref [] in
  List.iteri
    (fun i req ->
      Active.submit system ~client:0 ~client_req:i ~meth:(fst req)
        ~args:(snd req) ~on_reply:(fun ~response_ms ->
          replies := response_ms :: !replies))
    [ locked 1; locked 2 ];
  Engine.run engine;
  (* Both arrive instantly; the round grants both (no conflict) in
     parallel: makespan 10, no dummies. *)
  feq "batch of two decides immediately" 10.0
    (List.fold_left Float.max 0.0 !replies);
  Alcotest.check b "no dummies needed" true
    (List.assoc_opt "pds-dummy" (Active.message_stats system) = None)

let test_pds_dummy_fills_partial_batch () =
  let engine = Engine.create () in
  let config =
    { Detmt_runtime.Config.default with
      pds_batch = 4; pds_dummy_timeout_ms = 5.0 }
  in
  let params =
    { Active.default_params with replicas = 1; scheduler = "pds"; config;
      net_latency_ms = 0.0; client_latency_ms = 0.0 }
  in
  let system = Active.create ~engine ~cls:scenario_cls ~params () in
  let done_ = ref false in
  Active.submit system ~client:0 ~client_req:0 ~meth:"locked"
    ~args:[| Ast.Vmutex 1 |]
    ~on_reply:(fun ~response_ms:_ -> done_ := true);
  Engine.run engine;
  Alcotest.check b "request eventually processed" true !done_;
  Alcotest.check b "dummies were broadcast" true
    (match List.assoc_opt "pds-dummy" (Active.message_stats system) with
    | Some n -> n > 0
    | None -> false)

(* ------------------------------- LSA -------------------------------- *)

let test_lsa_leader_broadcasts_grants () =
  let _, system =
    run_requests ~replicas:3 ~scheduler:"lsa" [ locked 1; locked 1 ]
  in
  match List.assoc_opt "control" (Active.message_stats system) with
  | Some n -> Alcotest.(check int) "one grant message per acquisition" 2 n
  | None -> Alcotest.fail "no control messages broadcast"

let test_lsa_followers_apply_leader_order () =
  let _, system =
    run_requests ~replicas:3 ~scheduler:"lsa"
      [ locked 7; locked 7; locked 7 ]
  in
  let owners r =
    List.filter_map
      (function
        | Trace.Lock_granted { tid; mutex = 7; _ } -> Some tid
        | _ -> None)
      (Trace.events (Detmt_runtime.Replica.trace r))
  in
  match Active.replicas system with
  | [ leader; f1; f2 ] ->
    Alcotest.(check (list int)) "follower 1 matches leader" (owners leader)
      (owners f1);
    Alcotest.(check (list int)) "follower 2 matches leader" (owners leader)
      (owners f2)
  | _ -> Alcotest.fail "three replicas expected"

let test_lsa_greedy_beats_mat_on_disjoint () =
  let lsa, _ = run_requests ~replicas:3 ~scheduler:"lsa" [ locked 1; locked 2 ] in
  let mat, _ = run_requests ~replicas:3 ~scheduler:"mat" [ locked 1; locked 2 ] in
  Alcotest.check b "leader schedules without restrictions" true (lsa < mat)

(* ------------------------------ Freefall ---------------------------- *)

let test_freefall_completes () =
  let makespan, _ =
    run_requests ~scheduler:"freefall" [ locked 1; locked 1; locked 1 ]
  in
  feq "contended locks serialise" 30.0 makespan

(* ------------------------------ Registry ---------------------------- *)

let test_registry () =
  Alcotest.(check int) "fifteen schedulers" 15
    (List.length Detmt_sched.Registry.all);
  Alcotest.(check (list string)) "figure 1 set"
    [ "seq"; "sat"; "lsa"; "pds"; "mat" ]
    Detmt_sched.Registry.paper_figure1;
  Alcotest.check b "predictive flags" true
    (let spec name = Detmt_sched.Registry.find_exn name in
     (spec "pmat").needs_prediction
     && (spec "mat-ll").needs_prediction
     && (spec "psat").needs_prediction
     && (spec "ppds").needs_prediction
     && (spec "cgs").needs_prediction
     && (spec "pcgs").needs_prediction
     && (spec "wss").needs_prediction
     && (spec "cgs+ws").needs_prediction
     && (not (spec "mat").needs_prediction)
     && (not (spec "sat").needs_prediction)
     && not (spec "pds").needs_prediction);
  Alcotest.(check (list string)) "parallel decision modules"
    [ "cgs"; "pcgs"; "wss"; "cgs+ws" ]
    Detmt_sched.Registry.parallel_decisions;
  Alcotest.check b "predicted variants are deterministic" true
    ((Detmt_sched.Registry.find_exn "psat").deterministic
    && (Detmt_sched.Registry.find_exn "ppds").deterministic);
  Alcotest.check b "freefall flagged nondeterministic" false
    (Detmt_sched.Registry.find_exn "freefall").deterministic;
  Alcotest.check b "unknown name raises" true
    (try
       ignore (Detmt_sched.Registry.find_exn "nope");
       false
     with Invalid_argument _ -> true)

(* The unified construction API: Sched_config.make defaults and validation,
   the deterministic_decisions set, and Registry.instantiate's up-front
   checks (unknown name; predictive scheduler without a summary). *)
let test_config_api () =
  let cfg = Detmt_sched.Sched_config.make "mat" in
  Alcotest.(check string) "name carried" "mat"
    cfg.Detmt_sched.Sched_config.scheduler;
  Alcotest.(check int) "default shard" 0 cfg.Detmt_sched.Sched_config.shard;
  Alcotest.check b "default summary empty" true
    (cfg.Detmt_sched.Sched_config.summary = None);
  Alcotest.(check string) "with_scheduler swaps the policy" "pds"
    (Detmt_sched.Sched_config.with_scheduler cfg "pds")
      .Detmt_sched.Sched_config.scheduler;
  Alcotest.check_raises "negative shard rejected"
    (Invalid_argument "Sched_config.make: shard < 0") (fun () ->
      ignore (Detmt_sched.Sched_config.make ~shard:(-1) "mat"));
  Alcotest.(check (list string)) "deterministic decision modules"
    [ "seq"; "sat"; "psat"; "lsa"; "pds"; "ppds"; "mat"; "mat-ll"; "pmat";
      "cgs"; "pcgs"; "wss"; "cgs+ws" ]
    Detmt_sched.Registry.deterministic_decisions;
  let raises_invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  (* instantiate validates before touching the actions, so inert stubs do *)
  let dummy_actions =
    { Detmt_runtime.Sched_iface.replica_id = 0;
      start_thread = ignore; grant_lock = ignore; grant_reacquire = ignore;
      resume_nested = ignore;
      ws_begin = (fun ~tid:_ ~record_acquisitions:_ -> ());
      ws_commit = (fun ~tid:_ -> true);
      mutex_owner = (fun _ -> None);
      mutex_free_for = (fun ~tid:_ ~mutex:_ -> true);
      holds_any_mutex = (fun _ -> false);
      request_method = (fun _ -> "m");
      request_arg = (fun ~tid:_ _ -> None);
      self_mutex = (fun () -> 1_000_000);
      pool_dispatch = (fun ~worker:_ ~tid:_ -> ());
      pool_complete = (fun ~worker:_ ~tid:_ -> ());
      broadcast_control = ignore;
      inject_dummy = (fun () -> ());
      schedule = (fun ~delay:_ _ -> ());
      now = (fun () -> 0.0);
      is_leader = (fun () -> true);
      obs = Detmt_obs.Recorder.disabled }
  in
  Alcotest.check b "instantiate rejects unknown names" true
    (raises_invalid (fun () ->
         Detmt_sched.Registry.instantiate
           (Detmt_sched.Sched_config.make "nope")
           dummy_actions));
  Alcotest.check b "predictive scheduler without summary rejected" true
    (raises_invalid (fun () ->
         Detmt_sched.Registry.instantiate
           (Detmt_sched.Sched_config.make "pmat")
           dummy_actions));
  Alcotest.check b "workers > 1 on a serial scheduler rejected" true
    (raises_invalid (fun () ->
         Detmt_sched.Registry.instantiate
           (Detmt_sched.Sched_config.make ~workers:4 "mat")
           dummy_actions));
  Alcotest.check_raises "workers < 1 rejected by the config"
    (Invalid_argument "Sched_config.make: workers < 1") (fun () ->
      ignore (Detmt_sched.Sched_config.make ~workers:0 "cgs"));
  Alcotest.(check int) "default workers" 1
    (Detmt_sched.Sched_config.make "cgs").Detmt_sched.Sched_config.workers

let suite =
  [ ("seq serialises everything", `Quick, test_seq_serialises_everything);
    ("seq wastes nested idle", `Quick, test_seq_wastes_nested_idle);
    ("sat single active thread", `Quick, test_sat_single_active_thread);
    ("sat uses nested idle", `Quick, test_sat_uses_nested_idle);
    ("mat parallel pure computations", `Quick,
     test_mat_parallel_pure_computations);
    ("mat pessimism on disjoint locks", `Quick,
     test_mat_pessimism_on_disjoint_locks);
    ("mat holds primacy through tail", `Quick,
     test_mat_holds_primacy_through_tail);
    ("mat-ll hands over after last lock", `Quick,
     test_mat_ll_hands_over_after_last_lock);
    ("mat-ll shared mutex", `Quick, test_mat_ll_no_worse_when_shared);
    ("pmat parallel disjoint locks", `Quick,
     test_pmat_parallel_disjoint_locks);
    ("pmat serialises conflicts", `Quick, test_pmat_serialises_conflicts);
    ("pmat conflict order", `Quick, test_pmat_conflict_order_is_queue_order);
    ("pds round opens on full batch", `Quick,
     test_pds_round_opens_when_batch_arrives);
    ("pds dummies fill partial batch", `Quick,
     test_pds_dummy_fills_partial_batch);
    ("lsa leader broadcasts grants", `Quick,
     test_lsa_leader_broadcasts_grants);
    ("lsa followers apply leader order", `Quick,
     test_lsa_followers_apply_leader_order);
    ("lsa greedy beats mat on disjoint", `Quick,
     test_lsa_greedy_beats_mat_on_disjoint);
    ("freefall completes", `Quick, test_freefall_completes);
    ("registry", `Quick, test_registry);
    ("config api", `Quick, test_config_api);
  ]

let () = Alcotest.run "sched" [ ("sched", suite) ]
