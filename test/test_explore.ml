(* Tests for the schedule-space explorer: the witness format round-trip,
   canonical-run baselines, verdict classification, search (certification on
   a deterministic scheduler, divergence-finding on freefall), ddmin
   shrinking, and replay of every checked-in witness under test/witnesses. *)

open Detmt_explore

let b = Alcotest.bool
let i = Alcotest.int

(* ---------------------------- schedule format ---------------------------- *)

let test_schedule_roundtrip () =
  let s =
    Schedule.make ~seed:7 ~clients:3 ~requests:2
      ~batching:{ Detmt_gcs.Totem.max_batch = 4; delay_ms = 2.5 }
      ~scheduler:"mat" ~workload:"prodcons"
      [ Schedule.Delay { seq = 14; dest = 2; extra_ms = 4.5 };
        Schedule.Reorder { at_index = 9; pick = 1 };
        Schedule.Flush { after_seq = 3 };
        Schedule.Crash { replica = 1; at_ms = 10.0; recover_at_ms = 25.0 } ]
  in
  let s' = Schedule.of_string (Schedule.to_string s) in
  Alcotest.check b "round-trip" true (s = s');
  Alcotest.check i "size" 4 (Schedule.size s')

let test_schedule_parse_errors () =
  let bad header =
    match Schedule.of_string header with
    | exception Failure _ -> true
    | _ -> false
  in
  Alcotest.check b "wrong magic" true (bad "# not a schedule\nscheduler mat\n");
  Alcotest.check b "junk entry" true
    (bad "# detmt explore schedule v1\nscheduler mat\nworkload figure1\nwarp 9\n");
  Alcotest.check b "missing scheduler" true
    (bad "# detmt explore schedule v1\nworkload figure1\n")

let test_schedule_comments_ignored () =
  let s =
    Schedule.of_string
      "# detmt explore schedule v1\n# a comment\nscheduler seq\n\nworkload \
       figure1\ndelay seq=3 dest=1 extra_ms=0.5\n# trailing comment\n"
  in
  Alcotest.check i "one entry" 1 (Schedule.size s);
  Alcotest.check b "defaults kept" true (s.Schedule.seed = 42)

let test_schedule_elastic_roundtrip () =
  let s =
    Schedule.make ~elastic:true ~scheduler:"pds" ~workload:"hotspot"
      [ Schedule.Crash { replica = 1; at_ms = 13.0; recover_at_ms = 40.0 } ]
  in
  let s' = Schedule.of_string (Schedule.to_string s) in
  Alcotest.check b "round-trip" true (s = s');
  Alcotest.check b "elastic survives" true s'.Schedule.elastic;
  (* A pre-elastic witness (no [elastic] header line) parses as static. *)
  let legacy =
    Schedule.of_string
      "# detmt explore schedule v1\nscheduler mat\nworkload figure1\n"
  in
  Alcotest.check b "legacy static" false legacy.Schedule.elastic

(* ----------------------------- canonical runs ----------------------------- *)

let base scheduler =
  Schedule.make ~clients:3 ~requests:3 ~scheduler ~workload:"figure1" []

let test_canonical_baseline () =
  let s = base "seq" in
  let cls, gen = Explore.resolve_workload s.Schedule.workload in
  let outcome, obs = Explore.run_one ~observe:true ~cls ~gen s in
  Alcotest.check i "all replies" outcome.Explore.o_expected
    outcome.Explore.o_replies;
  Alcotest.check i "no outstanding" 0 outcome.Explore.o_outstanding;
  Alcotest.check b "no divergence" true (outcome.Explore.o_divergence = None);
  Alcotest.check b "states agree" true outcome.Explore.o_states_agree;
  Alcotest.check b "deliveries observed" true (obs.Explore.obs_deliveries <> []);
  Alcotest.check b "journal populated" true
    (Array.length obs.Explore.obs_journal > 0)

let test_classify_tiers () =
  let s = base "seq" in
  let cls, gen = Explore.resolve_workload s.Schedule.workload in
  let canonical, _ = Explore.run_one ~cls ~gen s in
  Alcotest.check b "self-equivalent" true
    (Explore.classify ~canonical canonical = Explore.Equivalent);
  (* A different total order with consistent internals is Order_shifted, not
     Divergent. *)
  let shifted = { canonical with Explore.o_order_fp = 1L } in
  Alcotest.check b "order shift admissible" true
    (Explore.classify ~canonical shifted = Explore.Order_shifted);
  (* Internal disagreement is Divergent no matter the order. *)
  let diverged = { shifted with Explore.o_acquisitions_agree = false } in
  (match Explore.classify ~canonical diverged with
  | Explore.Divergent _ -> ()
  | v -> Alcotest.failf "expected Divergent, got %s" (Explore.verdict_to_string v));
  (* Same order but different replies: the scheduler dropped or duplicated
     work — Divergent. *)
  let missing =
    { canonical with Explore.o_replies = canonical.Explore.o_replies - 1 }
  in
  match Explore.classify ~canonical missing with
  | Explore.Divergent _ -> ()
  | v -> Alcotest.failf "expected Divergent, got %s" (Explore.verdict_to_string v)

let elastic_base scheduler =
  Schedule.make ~clients:3 ~requests:3 ~elastic:true ~scheduler
    ~workload:"hotspot" []

let test_elastic_canonical_baseline () =
  let s = elastic_base "mat" in
  let cls, gen = Explore.resolve_workload s.Schedule.workload in
  let outcome, _ = Explore.run_one ~cls ~gen s in
  Alcotest.check i "all replies" outcome.Explore.o_expected
    outcome.Explore.o_replies;
  Alcotest.check i "split and merge applied" 2 outcome.Explore.o_transitions;
  Alcotest.check b "epochs agree" true outcome.Explore.o_epochs_agree;
  Alcotest.check b "states agree" true outcome.Explore.o_states_agree;
  Alcotest.check b "no divergence" true (outcome.Explore.o_divergence = None)

(* -------------------------------- search -------------------------------- *)

let test_explore_certifies_seq () =
  let r = Explore.explore ~budget:30 (base "seq") in
  Alcotest.check b "no divergence" true (r.Explore.divergent = []);
  Alcotest.check b "spent the budget" true (r.Explore.stats.Explore.explored > 1);
  Alcotest.check b "within budget" true (r.Explore.stats.Explore.explored <= 30)

let freefall_base =
  (* the full 4x5 matrix: freefall grants at raw local arrival order, and
     this workload exhibits a divergence within a couple dozen runs *)
  Schedule.make ~scheduler:"freefall" ~workload:"figure1" []

let test_explore_certifies_elastic () =
  let r = Explore.explore ~budget:25 (elastic_base "mat") in
  Alcotest.check b "no divergence" true (r.Explore.divergent = []);
  Alcotest.check b "spent the budget" true
    (r.Explore.stats.Explore.explored > 1)

let test_explore_finds_freefall_divergence () =
  let r = Explore.explore ~budget:40 freefall_base in
  Alcotest.check b "found a divergence" true (r.Explore.divergent <> [])

let test_shrink_freefall_witness () =
  let r = Explore.explore ~budget:40 freefall_base in
  match r.Explore.divergent with
  | [] -> Alcotest.fail "no divergence to shrink"
  | (sched, _) :: _ ->
    let minimal, probes, reproduced = Explore.shrink sched in
    Alcotest.check b "reproduced" true reproduced;
    Alcotest.check b "no larger" true
      (Schedule.size minimal <= Schedule.size sched);
    Alcotest.check b "probed" true (probes >= 1);
    (* the minimal schedule still diverges on a fresh replay *)
    (match Explore.replay minimal with
    | Explore.Divergent _, _, _ -> ()
    | v, _, _ ->
      Alcotest.failf "minimal witness replayed %s" (Explore.verdict_to_string v))

(* --------------------------- checked-in witnesses --------------------------- *)

(* dune runtest runs with cwd _build/default/test (where the dune deps are
   materialized); dune exec from the project root sees the source copy. *)
let witness_path file =
  if Sys.file_exists "witnesses" then Filename.concat "witnesses" file
  else Filename.concat "test/witnesses" file

let replay_witness file =
  let v, _, _ = Explore.replay (Schedule.load (witness_path file)) in
  v

let test_mat_witness_diverges () =
  match replay_witness "mat_promotion_race.sched" with
  | Explore.Divergent _ -> ()
  | v -> Alcotest.failf "MAT witness replayed %s" (Explore.verdict_to_string v)

let test_sat_witness_diverges () =
  match replay_witness "sat_queue_skew.sched" with
  | Explore.Divergent _ -> ()
  | v -> Alcotest.failf "SAT witness replayed %s" (Explore.verdict_to_string v)

let test_pds_regressions_clean () =
  List.iter
    (fun file ->
      match replay_witness file with
      | Explore.Divergent d -> Alcotest.failf "%s diverged: %s" file d
      | _ -> ())
    [ "pds_batch_skew_regression.sched";
      "pds_round_reply_race_regression.sched" ]

let test_elastic_crash_witness_clean () =
  (* crash inside the reconfiguration window, recovery after the merge:
     order may shift (recovery traffic), but no divergence is admissible *)
  match replay_witness "elastic_crash_in_window.sched" with
  | Explore.Divergent d ->
    Alcotest.failf "elastic crash witness diverged: %s" d
  | _ -> ()

let test_witness_sizes_bounded () =
  (* The ISSUE bounds the promotion-race witness at 25 events; ours are
     1-minimal. *)
  List.iter
    (fun file ->
      let s = Schedule.load (witness_path file) in
      Alcotest.check b (file ^ " minimal") true (Schedule.size s <= 25))
    [ "mat_promotion_race.sched"; "sat_queue_skew.sched";
      "pds_batch_skew_regression.sched";
      "pds_round_reply_race_regression.sched" ]

let () =
  Alcotest.run "explore"
    [ ( "schedule",
        [ Alcotest.test_case "round-trip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "elastic round-trip" `Quick
            test_schedule_elastic_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_schedule_parse_errors;
          Alcotest.test_case "comments ignored" `Quick
            test_schedule_comments_ignored ] );
      ( "runs",
        [ Alcotest.test_case "canonical baseline" `Quick test_canonical_baseline;
          Alcotest.test_case "elastic canonical baseline" `Quick
            test_elastic_canonical_baseline;
          Alcotest.test_case "verdict tiers" `Quick test_classify_tiers ] );
      ( "search",
        [ Alcotest.test_case "certifies seq" `Quick test_explore_certifies_seq;
          Alcotest.test_case "certifies elastic mat" `Quick
            test_explore_certifies_elastic;
          Alcotest.test_case "finds freefall divergence" `Quick
            test_explore_finds_freefall_divergence;
          Alcotest.test_case "shrinks witness" `Quick
            test_shrink_freefall_witness ] );
      ( "witnesses",
        [ Alcotest.test_case "MAT promotion race diverges" `Quick
            test_mat_witness_diverges;
          Alcotest.test_case "SAT queue skew diverges" `Quick
            test_sat_witness_diverges;
          Alcotest.test_case "PDS regressions clean" `Quick
            test_pds_regressions_clean;
          Alcotest.test_case "elastic crash-in-window clean" `Quick
            test_elastic_crash_witness_clean;
          Alcotest.test_case "witnesses bounded" `Quick
            test_witness_sizes_bounded ] ) ]
