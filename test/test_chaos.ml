(* Chaos layer tests: seeded fault injection, crash-recovery with state
   transfer, the runtime divergence detector, client retries and the
   deadlock diagnostics. *)

open Detmt_lang
open Detmt_gcs
open Detmt_replication

let b = Alcotest.bool

let cls = Detmt_workload.Figure1.cls Detmt_workload.Figure1.default
let gen = Detmt_workload.Figure1.gen Detmt_workload.Figure1.default

let run ?seed ?clients ?requests_per_client ?timeout_ms ~scenario ~scheduler
    () =
  match Chaos.find_scenario scenario with
  | None -> Alcotest.failf "unknown scenario %s" scenario
  | Some scenario ->
    Chaos.run ?seed ?clients ?requests_per_client ?timeout_ms ~scenario
      ~scheduler ~cls ~gen ()

(* Faults are a pure function of (seed, seq, sender, dest): planning the
   same transmission twice gives the same fate, whatever happened between
   the calls. *)
let test_fault_plan_replays () =
  let spec =
    { Faults.none with seed = 7L; jitter_ms = 0.5; loss_prob = 0.3;
      rto_ms = 2.0; max_retransmits = 3; dup_prob = 0.4; dup_extra_ms = 1.0 }
  in
  let f = Faults.create spec in
  for seq = 1 to 50 do
    let plan () =
      Faults.plan f ~seq ~sender:(seq mod 3) ~dest:((seq + 1) mod 3)
        ~sent_at:(float_of_int seq) ~base_latency_ms:0.5
    in
    let a = plan () and b' = plan () in
    Alcotest.check b "same transmission, same fate" true (a = b')
  done

(* The GCS contract survives a duplicating, jittery transport: every
   subscriber sees the sequence numbers in order, exactly once. *)
let test_totem_order_under_faults () =
  let engine = Detmt_sim.Engine.create () in
  let faults =
    Faults.create
      { Faults.none with seed = 11L; jitter_ms = 0.4; dup_prob = 0.6;
        dup_extra_ms = 1.0 }
  in
  let bus = Totem.create ~faults engine in
  let seen = Array.make 2 [] in
  for id = 0 to 1 do
    Totem.subscribe bus ~id (fun m ->
        seen.(id) <- m.Message.seq :: seen.(id))
  done;
  for _ = 1 to 40 do
    ignore (Totem.broadcast bus ~sender:0 "m")
  done;
  Detmt_sim.Engine.run engine;
  let expect = List.init 40 (fun i -> i) in
  for id = 0 to 1 do
    Alcotest.(check (list int))
      "in sequence order, exactly once" expect
      (List.rev seen.(id))
  done;
  Alcotest.check b "duplicates were injected and suppressed" true
    (Totem.suppressed_duplicates bus > 0)

(* A rejoining member never steals leadership from a survivor. *)
let test_group_rejoin_seniority () =
  let engine = Detmt_sim.Engine.create () in
  let grp = Group.create engine ~members:[ 0; 1; 2 ] ~detection_timeout_ms:5.0 in
  Group.kill grp 0;
  Detmt_sim.Engine.run engine;
  Alcotest.(check int) "leadership moved" 1 (Group.leader grp);
  Group.join grp 0;
  let view = Group.current_view grp in
  Alcotest.check b "join view installed" true (view.Group.cause = Group.Join 0);
  Alcotest.(check (list int)) "rejoiner back in the view" [ 0; 1; 2 ]
    view.Group.members;
  (* Seniority, not id order, decides leadership: the rejoiner re-enters at
     the back and must not reclaim the lead. *)
  Alcotest.(check int) "leadership kept by the survivor" 1 (Group.leader grp)

(* The divergence monitor pins the first mismatching checkpoint and names
   the differing fields. *)
let test_divergence_monitor () =
  let monitor = Consistency.create_monitor () in
  let fired = ref 0 in
  Consistency.set_on_divergence monitor (fun _ -> incr fired);
  Consistency.observe monitor ~replica:0 ~seq:1 ~hash:10L
    ~state:[ ("acc", 3) ];
  Consistency.observe monitor ~replica:1 ~seq:1 ~hash:10L
    ~state:[ ("acc", 3) ];
  Alcotest.(check (option reject)) "consistent checkpoints" None
    (Consistency.first_divergence monitor);
  Consistency.observe monitor ~replica:0 ~seq:2 ~hash:20L
    ~state:[ ("acc", 5) ];
  Consistency.observe monitor ~replica:2 ~seq:2 ~hash:21L
    ~state:[ ("acc", 6) ];
  (match Consistency.first_divergence monitor with
  | None -> Alcotest.fail "divergence not detected"
  | Some d ->
    Alcotest.(check int) "pinned to the first bad seq" 2 d.Consistency.seq;
    Alcotest.check b "differing field named" true
      (List.mem ("acc", 5, 6) d.Consistency.differing_fields));
  Alcotest.(check int) "hook fired once" 1 !fired;
  Alcotest.check b "comparisons counted" true
    (Consistency.checkpoints_compared monitor >= 2)

(* Aggressive client timeouts cause resubmissions; the dedup layer keeps the
   end-to-end exactly-once contract anyway. *)
let test_retries_stay_exactly_once () =
  let o =
    run ~clients:2 ~requests_per_client:3 ~timeout_ms:5.0 ~scenario:"lossy"
      ~scheduler:"sat" ()
  in
  Alcotest.check b "timeouts forced retries" true (o.Chaos.o_retries > 0);
  Alcotest.(check int) "every request answered" o.Chaos.o_expected
    o.Chaos.o_replies;
  Alcotest.(check int) "no request answered twice" 0
    o.Chaos.o_duplicate_replies;
  Alcotest.check b "all invariants hold" true (Chaos.ok o)

(* A killed replica rejoins via state transfer and converges with the
   survivors. *)
let test_recovery_converges () =
  List.iter
    (fun scheduler ->
      let o =
        run ~clients:2 ~requests_per_client:3 ~scenario:"crash-recover"
          ~scheduler ()
      in
      Alcotest.(check int)
        (scheduler ^ ": recovery completed")
        1 o.Chaos.o_recoveries;
      Alcotest.check b
        (scheduler ^ ": recovered state agrees")
        true o.Chaos.o_states_agree;
      Alcotest.check b (scheduler ^ ": invariants hold") true (Chaos.ok o))
    [ "seq"; "lsa"; "pds" ]

(* The full quick sweep: every scenario crossed with every deterministic
   scheduler upholds the robustness invariants. *)
let test_sweep_invariants () =
  let outcomes =
    Chaos.sweep ~clients:2 ~requests_per_client:3 ~cls ~gen ()
  in
  Alcotest.(check int) "full cross product"
    (List.length Chaos.scenarios * List.length Chaos.default_schedulers)
    (List.length outcomes);
  List.iter
    (fun o ->
      Alcotest.check b
        (Printf.sprintf "%s/%s ok" o.Chaos.o_scenario o.Chaos.o_scheduler)
        true (Chaos.ok o))
    outcomes

(* Same seed, same run — the fingerprint folds every replica's state and
   acquisition trace with the run shape, so equality means the whole run
   replayed bit for bit. *)
let test_seeded_determinism () =
  List.iter
    (fun (scenario, scheduler) ->
      let once () =
        run ~seed:99L ~clients:2 ~requests_per_client:3 ~scenario ~scheduler ()
      in
      let a = once () and b' = once () in
      Alcotest.check b
        (Printf.sprintf "%s/%s replays bit-identically" scenario scheduler)
        true
        (Int64.equal a.Chaos.o_fingerprint b'.Chaos.o_fingerprint
        && a.Chaos.o_retries = b'.Chaos.o_retries
        && a.Chaos.o_losses = b'.Chaos.o_losses
        && a.Chaos.o_duration_ms = b'.Chaos.o_duration_ms))
    [ ("lossy", "pds"); ("dup-storm", "lsa"); ("lossy-crash-recover", "mat") ]

(* A request that parks on a condvar nobody notifies must surface as a
   deadlock report naming the stuck client, the unanswered request and the
   blocked thread — not as a silent hang. *)
let test_deadlock_diagnostics () =
  let open Builder in
  let cls =
    Builder.cls ~cname:"Stuck" ~state_fields:[ "f" ]
      [ meth "stall" ~params:1 [ sync this [ wait this ] ] ]
  in
  let engine = Detmt_sim.Engine.create () in
  let system = Active.create ~engine ~cls ~params:Active.default_params () in
  let gen ~client:_ ~seq:_ _rng = ("stall", [| Ast.Vint 0 |]) in
  match
    Client.run_clients_stats ~engine ~system ~clients:1
      ~requests_per_client:1 ~gen ()
  with
  | _ -> Alcotest.fail "deadlock not reported"
  | exception Failure msg ->
    let has needle =
      let n = String.length needle and m = String.length msg in
      let rec at i = i + n <= m && (String.sub msg i n = needle || at (i + 1)) in
      at 0
    in
    List.iter
      (fun needle ->
        Alcotest.check b (Printf.sprintf "mentions %S" needle) true
          (has needle))
      [ "still waiting"; "stuck clients: client 0"; "client 0 req 0";
        "replica 0"; "waiting(mutex" ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chaos"
    [ ( "chaos",
        [ tc "fault plans replay" `Quick test_fault_plan_replays;
          tc "totem order survives faults" `Quick
            test_totem_order_under_faults;
          tc "rejoin keeps seniority" `Quick test_group_rejoin_seniority;
          tc "divergence monitor" `Quick test_divergence_monitor;
          tc "retries stay exactly-once" `Quick
            test_retries_stay_exactly_once;
          tc "recovery converges" `Quick test_recovery_converges;
          tc "sweep invariants" `Slow test_sweep_invariants;
          tc "seeded determinism" `Quick test_seeded_determinism;
          tc "deadlock diagnostics" `Quick test_deadlock_diagnostics ] ) ]
