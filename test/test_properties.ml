(* Property-based tests over randomly generated programs.

   The generator produces well-formed classes by construction: argument 0/1
   carry mutexes, argument 2 carries a boolean decision, state updates only
   happen under a lock, and local variables are assigned before use.  Waits
   are excluded (a random wait has no matching notify and would deadlock —
   the condition-variable protocols are tested deterministically in
   test_replication). *)

open Detmt_lang

(* ----------------------------- properties --------------------------- *)

let prop_wellformed =
  QCheck.Test.make ~count:200 ~name:"generated classes are well-formed"
    Testgen.arbitrary_class
    (fun cls -> Wellformed.errors cls = [])

let prop_predictive_transform_verifies =
  QCheck.Test.make ~count:200
    ~name:"predictive transformation passes the soundness checker"
    Testgen.arbitrary_class
    (fun cls ->
      let instrumented, summary = Detmt_transform.Transform.predictive cls in
      Detmt_transform.Verify.check_class ~summary instrumented = [])

let prop_basic_transform_balanced =
  QCheck.Test.make ~count:200
    ~name:"basic transformation has balanced lock/unlock on every path"
    Testgen.arbitrary_class
    (fun cls ->
      let instrumented = Detmt_transform.Transform.basic cls in
      Detmt_transform.Verify.check_method instrumented ~meth:"m" = [])

(* Drive the interpreter over random request arguments and check the op
   stream discipline: every unlock matches the innermost lock, nothing is
   left locked, and state updates only happen under a lock. *)
let arbitrary_class_and_args =
  QCheck.make
    ~print:(fun (c, _) -> Class_def.show c)
    QCheck.Gen.(pair Testgen.gen_class Testgen.gen_args)

let op_stream cls args =
  let instrumented = Detmt_transform.Transform.basic cls in
  let obj = Detmt_runtime.Object_state.create instrumented in
  let req =
    Detmt_runtime.Request.make ~uid:0 ~client:0 ~client_req:0 ~meth:"m" ~args
      ~sent_at:0.0
  in
  let rec collect acc = function
    | Detmt_runtime.Interp.Done -> List.rev acc
    | Detmt_runtime.Interp.Yield (op, k) -> collect (op :: acc) (k ())
  in
  collect []
    (Detmt_runtime.Interp.start ~cls:instrumented ~obj ~req ())

let prop_interp_lock_discipline =
  QCheck.Test.make ~count:200 ~name:"interpreter op stream is lock-balanced"
    arbitrary_class_and_args
    (fun (cls, args) ->
      let ops = op_stream cls args in
      let ok = ref true in
      let stack = ref [] in
      List.iter
        (fun op ->
          match op with
          | Detmt_runtime.Op.Lock { mutex; _ } -> stack := mutex :: !stack
          | Detmt_runtime.Op.Unlock { mutex; _ } -> (
            match !stack with
            | top :: rest when top = mutex -> stack := rest
            | _ -> ok := false)
          | Detmt_runtime.Op.State_update _ ->
            if !stack = [] then ok := false
          | _ -> ())
        ops;
      !ok && !stack = [])

(* All deterministic decision modules, derived from the registry so new
   variants (psat, ppds, ...) are covered automatically.  The adaptive
   meta-scheduler is driven separately in test_adaptive. *)
let deterministic_schedulers = Detmt_sched.Registry.deterministic_decisions

(* End-to-end property: for random programs and request streams, replicas
   stay consistent under every deterministic scheduler, and — because all
   state updates are commutative increments — every scheduler produces the
   same final object state. *)
let run_cls cls ~scheduler ~seed =
  let engine = Detmt_sim.Engine.create () in
  let params =
    { Detmt_replication.Active.default_params with scheduler; replicas = 3 }
  in
  let system =
    Detmt_replication.Active.create ~engine ~cls ~params ()
  in
  let gen ~client:_ ~seq:_ rng =
    let m () = Ast.Vmutex (Detmt_sim.Rng.int rng 4) in
    ("m", [| m (); m (); Ast.Vbool (Detmt_sim.Rng.bool rng 0.5) |])
  in
  Detmt_replication.Client.run_clients ~engine ~system ~clients:3
    ~requests_per_client:2 ~gen ~seed ();
  let replicas = Detmt_replication.Active.live_replicas system in
  let report = Detmt_replication.Consistency.check replicas in
  let state =
    Detmt_runtime.Replica.state_snapshot (List.hd replicas)
  in
  ( report.Detmt_replication.Consistency.states_agree
    && report.Detmt_replication.Consistency.acquisitions_agree,
    state )

let prop_random_programs_consistent =
  QCheck.Test.make ~count:30
    ~name:"replicas agree for random programs under every scheduler"
    Testgen.arbitrary_class
    (fun cls ->
      let reference = ref None in
      List.for_all
        (fun scheduler ->
          let consistent, state = run_cls cls ~scheduler ~seed:9L in
          let same_state =
            match !reference with
            | None ->
              reference := Some state;
              true
            | Some s -> s = state
          in
          consistent && same_state)
        deterministic_schedulers)

(* Seeded cross-scheduler determinism fuzz: for every deterministic
   scheduler, two runs of the same seeded workload must produce the same
   reply table — reply count, client-side reply times, and per-replica
   final state and trace fingerprint.  This is the refactoring contract of
   the two-module architecture applied to random programs rather than the
   fixed fingerprint matrix. *)
let fuzz_gen ~client:_ ~seq:_ rng =
  let m () = Ast.Vmutex (Detmt_sim.Rng.int rng 4) in
  ("m", [| m (); m (); Ast.Vbool (Detmt_sim.Rng.bool rng 0.5) |])

let reply_table (cls, seed) ~scheduler =
  let engine = Detmt_sim.Engine.create () in
  let params =
    { Detmt_replication.Active.default_params with scheduler; replicas = 3 }
  in
  let system = Detmt_replication.Active.create ~engine ~cls ~params () in
  Detmt_replication.Client.run_clients ~engine ~system ~clients:4
    ~requests_per_client:3 ~gen:fuzz_gen ~seed ();
  ( Detmt_replication.Active.replies_received system,
    Detmt_replication.Active.reply_times system,
    List.map
      (fun r ->
        ( Detmt_runtime.Replica.state_snapshot r,
          Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r) ))
      (Detmt_replication.Active.live_replicas system) )

let prop_cross_scheduler_fuzz =
  QCheck.Test.make ~count:15
    ~name:"seeded workload fuzz: reply tables reproducible per scheduler"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          reply_table workload ~scheduler = reply_table workload ~scheduler)
        deterministic_schedulers)

(* The sharding refactoring contract, fuzzed: a 1-shard {!Shard} system
   must produce the exact reply table — counts, client-side reply times,
   per-replica states and trace fingerprints — of the unsharded {!Active}
   path, for random programs and every deterministic scheduler. *)
let sharded_reply_table (cls, seed) ~scheduler =
  let engine = Detmt_sim.Engine.create () in
  let base =
    { Detmt_replication.Active.default_params with scheduler; replicas = 3 }
  in
  let system =
    Detmt_replication.Shard.create ~engine ~cls
      ~params:{ Detmt_replication.Shard.shards = 1; base } ()
  in
  Detmt_replication.Shard.run_clients system ~clients:4
    ~requests_per_client:3 ~gen:fuzz_gen ~seed ();
  ( Detmt_replication.Shard.replies_received system,
    Detmt_replication.Shard.reply_times system,
    List.map
      (fun r ->
        ( Detmt_runtime.Replica.state_snapshot r,
          Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r) ))
      (Detmt_replication.Active.live_replicas
         (Detmt_replication.Shard.groups system).(0)) )

let prop_one_shard_equals_unsharded =
  QCheck.Test.make ~count:10
    ~name:"1-shard sharded run is bit-identical to unsharded, per scheduler"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          reply_table workload ~scheduler
          = sharded_reply_table workload ~scheduler)
        deterministic_schedulers)

(* The elastic reconfiguration contract, fuzzed: splitting the single group
   mid-run and merging it back must leave the client-visible reply table
   (answered exactly once), the routing table and — when no request crossed
   groups during the split epoch — the aggregate state exactly where a
   static run put them, for random workloads and every deterministic
   scheduler.  Reply *times* legitimately differ: the elastic run stalls
   admission while the barriers drain. *)
let elastic_run (cls, seed) ~scheduler ~commands =
  let engine = Detmt_sim.Engine.create () in
  let base =
    { Detmt_replication.Active.default_params with scheduler; replicas = 3 }
  in
  let system =
    Detmt_replication.Reconfig.create ~engine ~cls
      ~params:{ Detmt_replication.Reconfig.default_params with base }
      ()
  in
  List.iter
    (fun (at, c) -> Detmt_replication.Reconfig.request_at system ~at c)
    commands;
  Detmt_replication.Reconfig.run_clients system ~clients:4
    ~requests_per_client:3 ~gen:fuzz_gen ~seed ();
  system

let split_merge_cycle =
  [ (6.0, Detmt_replication.Reconfig.Split 0);
    (20.0, Detmt_replication.Reconfig.Merge { from_g = 1; into = 0 }) ]

(* Replica determinism per incarnation: states and per-mutex acquisition
   orders must agree.  Trace *interleavings* are deliberately not compared:
   lsa's grant events may interleave differently with thread starts across
   replicas on some programs (a pre-existing property of that scheduler,
   visible on static runs too) without affecting any observable order. *)
let incarnations_agree system =
  List.for_all
    (fun sys ->
      let r =
        Detmt_replication.Consistency.check
          (Detmt_replication.Active.live_replicas sys)
      in
      r.Detmt_replication.Consistency.states_agree
      && r.Detmt_replication.Consistency.acquisitions_agree)
    (Detmt_replication.Reconfig.groups_ever system)

let prop_split_merge_equals_static =
  QCheck.Test.make ~count:8
    ~name:"split-then-merge restores the static run, per scheduler"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          let module R = Detmt_replication.Reconfig in
          let static = elastic_run workload ~scheduler ~commands:[] in
          let elastic =
            elastic_run workload ~scheduler ~commands:split_merge_cycle
          in
          let routes s = List.init 64 (R.route_of s) in
          R.epoch elastic = 2
          && R.replies_received elastic = R.replies_received static
          && R.duplicate_client_replies elastic = 0
          && routes elastic = routes static
          && incarnations_agree elastic && R.epochs_agree elastic
          && (R.cross_group_requests elastic > 0
             || R.aggregate_state elastic = R.aggregate_state static))
        deterministic_schedulers)

(* Seeded elastic determinism: equal seeds must reproduce the whole run bit
   for bit — the replica fingerprints and the transition log (epoch, barrier
   slot, virtual time, command), so every replica of every incarnation saw
   each epoch transition at the same total-order slot both times. *)
let prop_elastic_reproducible =
  QCheck.Test.make ~count:8
    ~name:"elastic run: same seed, bit-identical epochs and fingerprint"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          let module R = Detmt_replication.Reconfig in
          let one () =
            let s = elastic_run workload ~scheduler ~commands:split_merge_cycle in
            (R.fingerprint s, R.transitions s, R.epochs_agree s)
          in
          let fa, ta, ea = one () in
          let fb, tb, eb = one () in
          ea && eb && Int64.equal fa fb && ta = tb)
        deterministic_schedulers)

let prop_runs_reproducible =
  QCheck.Test.make ~count:20 ~name:"same seed, bit-identical run"
    Testgen.arbitrary_class
    (fun cls ->
      let fp () =
        let engine = Detmt_sim.Engine.create () in
        let system =
          Detmt_replication.Active.create ~engine ~cls
            ~params:
              { Detmt_replication.Active.default_params with
                scheduler = "pmat" }
            ()
        in
        let gen ~client:_ ~seq:_ rng =
          ("m",
           [| Ast.Vmutex (Detmt_sim.Rng.int rng 4);
              Ast.Vmutex (Detmt_sim.Rng.int rng 4);
              Ast.Vbool (Detmt_sim.Rng.bool rng 0.5) |])
        in
        Detmt_replication.Client.run_clients ~engine ~system ~clients:2
          ~requests_per_client:2 ~gen ~seed:3L ();
        List.map
          (fun r ->
            Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r))
          (Detmt_replication.Active.replicas system)
      in
      fp () = fp ())

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_wellformed;
      prop_predictive_transform_verifies;
      prop_basic_transform_balanced;
      prop_interp_lock_discipline;
      prop_random_programs_consistent;
      prop_cross_scheduler_fuzz;
      prop_one_shard_equals_unsharded;
      prop_split_merge_equals_static;
      prop_elastic_reproducible;
      prop_runs_reproducible;
    ]

let () = Alcotest.run "properties" [ ("properties", suite) ]
