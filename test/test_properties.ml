(* Property-based tests over randomly generated programs.

   The generator produces well-formed classes by construction: argument 0/1
   carry mutexes, argument 2 carries a boolean decision, state updates only
   happen under a lock, and local variables are assigned before use.  Waits
   are excluded (a random wait has no matching notify and would deadlock —
   the condition-variable protocols are tested deterministically in
   test_replication). *)

open Detmt_lang

(* ----------------------------- properties --------------------------- *)

let prop_wellformed =
  QCheck.Test.make ~count:200 ~name:"generated classes are well-formed"
    Testgen.arbitrary_class
    (fun cls -> Wellformed.errors cls = [])

let prop_predictive_transform_verifies =
  QCheck.Test.make ~count:200
    ~name:"predictive transformation passes the soundness checker"
    Testgen.arbitrary_class
    (fun cls ->
      let instrumented, summary = Detmt_transform.Transform.predictive cls in
      Detmt_transform.Verify.check_class ~summary instrumented = [])

let prop_basic_transform_balanced =
  QCheck.Test.make ~count:200
    ~name:"basic transformation has balanced lock/unlock on every path"
    Testgen.arbitrary_class
    (fun cls ->
      let instrumented = Detmt_transform.Transform.basic cls in
      Detmt_transform.Verify.check_method instrumented ~meth:"m" = [])

(* Drive the interpreter over random request arguments and check the op
   stream discipline: every unlock matches the innermost lock, nothing is
   left locked, and state updates only happen under a lock. *)
let arbitrary_class_and_args =
  QCheck.make
    ~print:(fun (c, _) -> Class_def.show c)
    QCheck.Gen.(pair Testgen.gen_class Testgen.gen_args)

let op_stream cls args =
  let instrumented = Detmt_transform.Transform.basic cls in
  let obj = Detmt_runtime.Object_state.create instrumented in
  let req =
    Detmt_runtime.Request.make ~uid:0 ~client:0 ~client_req:0 ~meth:"m" ~args
      ~sent_at:0.0
  in
  let rec collect acc = function
    | Detmt_runtime.Interp.Done -> List.rev acc
    | Detmt_runtime.Interp.Yield (op, k) -> collect (op :: acc) (k ())
  in
  collect []
    (Detmt_runtime.Interp.start ~cls:instrumented ~obj ~req ())

let prop_interp_lock_discipline =
  QCheck.Test.make ~count:200 ~name:"interpreter op stream is lock-balanced"
    arbitrary_class_and_args
    (fun (cls, args) ->
      let ops = op_stream cls args in
      let ok = ref true in
      let stack = ref [] in
      List.iter
        (fun op ->
          match op with
          | Detmt_runtime.Op.Lock { mutex; _ } -> stack := mutex :: !stack
          | Detmt_runtime.Op.Unlock { mutex; _ } -> (
            match !stack with
            | top :: rest when top = mutex -> stack := rest
            | _ -> ok := false)
          | Detmt_runtime.Op.State_update _ ->
            if !stack = [] then ok := false
          | _ -> ())
        ops;
      !ok && !stack = [])

(* All deterministic decision modules, derived from the registry so new
   variants (psat, ppds, ...) are covered automatically.  The adaptive
   meta-scheduler is driven separately in test_adaptive. *)
let deterministic_schedulers = Detmt_sched.Registry.deterministic_decisions

(* End-to-end property: for random programs and request streams, replicas
   stay consistent under every deterministic scheduler, and — because all
   state updates are commutative increments — every scheduler produces the
   same final object state. *)
let run_cls cls ~scheduler ~seed =
  let engine = Detmt_sim.Engine.create () in
  let params =
    { Detmt_replication.Active.default_params with scheduler; replicas = 3 }
  in
  let system =
    Detmt_replication.Active.create ~engine ~cls ~params ()
  in
  let gen ~client:_ ~seq:_ rng =
    let m () = Ast.Vmutex (Detmt_sim.Rng.int rng 4) in
    ("m", [| m (); m (); Ast.Vbool (Detmt_sim.Rng.bool rng 0.5) |])
  in
  Detmt_replication.Client.run_clients ~engine ~system ~clients:3
    ~requests_per_client:2 ~gen ~seed ();
  let replicas = Detmt_replication.Active.live_replicas system in
  let report = Detmt_replication.Consistency.check replicas in
  let state =
    Detmt_runtime.Replica.state_snapshot (List.hd replicas)
  in
  ( report.Detmt_replication.Consistency.states_agree
    && report.Detmt_replication.Consistency.acquisitions_agree,
    state )

let prop_random_programs_consistent =
  QCheck.Test.make ~count:30
    ~name:"replicas agree for random programs under every scheduler"
    Testgen.arbitrary_class
    (fun cls ->
      let reference = ref None in
      List.for_all
        (fun scheduler ->
          let consistent, state = run_cls cls ~scheduler ~seed:9L in
          let same_state =
            match !reference with
            | None ->
              reference := Some state;
              true
            | Some s -> s = state
          in
          consistent && same_state)
        deterministic_schedulers)

(* Seeded cross-scheduler determinism fuzz: for every deterministic
   scheduler, two runs of the same seeded workload must produce the same
   reply table — reply count, client-side reply times, and per-replica
   final state and trace fingerprint.  This is the refactoring contract of
   the two-module architecture applied to random programs rather than the
   fixed fingerprint matrix. *)
let fuzz_gen ~client:_ ~seq:_ rng =
  let m () = Ast.Vmutex (Detmt_sim.Rng.int rng 4) in
  ("m", [| m (); m (); Ast.Vbool (Detmt_sim.Rng.bool rng 0.5) |])

let reply_table (cls, seed) ~scheduler =
  let engine = Detmt_sim.Engine.create () in
  let params =
    { Detmt_replication.Active.default_params with scheduler; replicas = 3 }
  in
  let system = Detmt_replication.Active.create ~engine ~cls ~params () in
  Detmt_replication.Client.run_clients ~engine ~system ~clients:4
    ~requests_per_client:3 ~gen:fuzz_gen ~seed ();
  ( Detmt_replication.Active.replies_received system,
    Detmt_replication.Active.reply_times system,
    List.map
      (fun r ->
        ( Detmt_runtime.Replica.state_snapshot r,
          Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r) ))
      (Detmt_replication.Active.live_replicas system) )

let prop_cross_scheduler_fuzz =
  QCheck.Test.make ~count:15
    ~name:"seeded workload fuzz: reply tables reproducible per scheduler"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          reply_table workload ~scheduler = reply_table workload ~scheduler)
        deterministic_schedulers)

(* The sharding refactoring contract, fuzzed: a 1-shard {!Shard} system
   must produce the exact reply table — counts, client-side reply times,
   per-replica states and trace fingerprints — of the unsharded {!Active}
   path, for random programs and every deterministic scheduler. *)
let sharded_reply_table (cls, seed) ~scheduler =
  let engine = Detmt_sim.Engine.create () in
  let base =
    { Detmt_replication.Active.default_params with scheduler; replicas = 3 }
  in
  let system =
    Detmt_replication.Shard.create ~engine ~cls
      ~params:{ Detmt_replication.Shard.shards = 1; base } ()
  in
  Detmt_replication.Shard.run_clients system ~clients:4
    ~requests_per_client:3 ~gen:fuzz_gen ~seed ();
  ( Detmt_replication.Shard.replies_received system,
    Detmt_replication.Shard.reply_times system,
    List.map
      (fun r ->
        ( Detmt_runtime.Replica.state_snapshot r,
          Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r) ))
      (Detmt_replication.Active.live_replicas
         (Detmt_replication.Shard.groups system).(0)) )

let prop_one_shard_equals_unsharded =
  QCheck.Test.make ~count:10
    ~name:"1-shard sharded run is bit-identical to unsharded, per scheduler"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          reply_table workload ~scheduler
          = sharded_reply_table workload ~scheduler)
        deterministic_schedulers)

(* The elastic reconfiguration contract, fuzzed: splitting the single group
   mid-run and merging it back must leave the client-visible reply table
   (answered exactly once), the routing table and — when no request crossed
   groups during the split epoch — the aggregate state exactly where a
   static run put them, for random workloads and every deterministic
   scheduler.  Reply *times* legitimately differ: the elastic run stalls
   admission while the barriers drain. *)
let elastic_run (cls, seed) ~scheduler ~commands =
  let engine = Detmt_sim.Engine.create () in
  let base =
    { Detmt_replication.Active.default_params with scheduler; replicas = 3 }
  in
  let system =
    Detmt_replication.Reconfig.create ~engine ~cls
      ~params:{ Detmt_replication.Reconfig.default_params with base }
      ()
  in
  List.iter
    (fun (at, c) -> Detmt_replication.Reconfig.request_at system ~at c)
    commands;
  Detmt_replication.Reconfig.run_clients system ~clients:4
    ~requests_per_client:3 ~gen:fuzz_gen ~seed ();
  system

let split_merge_cycle =
  [ (6.0, Detmt_replication.Reconfig.Split 0);
    (20.0, Detmt_replication.Reconfig.Merge { from_g = 1; into = 0 }) ]

(* Replica determinism per incarnation: states and per-mutex acquisition
   orders must agree.  Trace *interleavings* are deliberately not compared:
   lsa's grant events may interleave differently with thread starts across
   replicas on some programs (a pre-existing property of that scheduler,
   visible on static runs too) without affecting any observable order. *)
let incarnations_agree system =
  List.for_all
    (fun sys ->
      let r =
        Detmt_replication.Consistency.check
          (Detmt_replication.Active.live_replicas sys)
      in
      r.Detmt_replication.Consistency.states_agree
      && r.Detmt_replication.Consistency.acquisitions_agree)
    (Detmt_replication.Reconfig.groups_ever system)

let prop_split_merge_equals_static =
  QCheck.Test.make ~count:8
    ~name:"split-then-merge restores the static run, per scheduler"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          let module R = Detmt_replication.Reconfig in
          let static = elastic_run workload ~scheduler ~commands:[] in
          let elastic =
            elastic_run workload ~scheduler ~commands:split_merge_cycle
          in
          let routes s = List.init 64 (R.route_of s) in
          R.epoch elastic = 2
          && R.replies_received elastic = R.replies_received static
          && R.duplicate_client_replies elastic = 0
          && routes elastic = routes static
          && incarnations_agree elastic && R.epochs_agree elastic
          && (R.cross_group_requests elastic > 0
             || R.aggregate_state elastic = R.aggregate_state static))
        deterministic_schedulers)

(* Seeded elastic determinism: equal seeds must reproduce the whole run bit
   for bit — the replica fingerprints and the transition log (epoch, barrier
   slot, virtual time, command), so every replica of every incarnation saw
   each epoch transition at the same total-order slot both times. *)
let prop_elastic_reproducible =
  QCheck.Test.make ~count:8
    ~name:"elastic run: same seed, bit-identical epochs and fingerprint"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          let module R = Detmt_replication.Reconfig in
          let one () =
            let s = elastic_run workload ~scheduler ~commands:split_merge_cycle in
            (R.fingerprint s, R.transitions s, R.epochs_agree s)
          in
          let fa, ta, ea = one () in
          let fb, tb, eb = one () in
          ea && eb && Int64.equal fa fb && ta = tb)
        deterministic_schedulers)

(* The conflict-graph differential contract: everything a client or a
   cross-replica audit can see — reply count, per-replica final state and
   per-mutex acquisition order — must be independent of the simulated
   worker-pool width once the pool stops binding.  Reply *times* and trace
   fingerprints legitimately move with the pool (more workers start threads
   earlier), so they are deliberately not part of the comparison.  Widths
   are compared at >= the client count: below that the pool can saturate,
   which delays replies, which feeds back into the closed-loop clients'
   submission times and hence the total order itself — a different *input*,
   not a scheduling divergence (each width is still reproducible on its
   own, covered by the cross-scheduler fuzz above). *)
let parallel_observables (cls, seed) ~scheduler ~workers =
  let engine = Detmt_sim.Engine.create () in
  let params =
    { Detmt_replication.Active.default_params with
      scheduler; workers; replicas = 3 }
  in
  let system = Detmt_replication.Active.create ~engine ~cls ~params () in
  Detmt_replication.Client.run_clients ~engine ~system ~clients:4
    ~requests_per_client:3 ~gen:fuzz_gen ~seed ();
  ( Detmt_replication.Active.replies_received system,
    List.map
      (fun r ->
        ( Detmt_runtime.Replica.state_snapshot r,
          Detmt_runtime.Replica.mutex_acquisition_fingerprint r ))
      (Detmt_replication.Active.live_replicas system) )

let prop_cgs_worker_count_independent =
  QCheck.Test.make ~count:10
    ~name:"cgs/pcgs observables invariant across worker counts"
    Testgen.arbitrary_workload
    (fun workload ->
      List.for_all
        (fun scheduler ->
          let at w = parallel_observables workload ~scheduler ~workers:w in
          let reference = at 4 in
          List.for_all (fun w -> at w = reference) [ 8; 16 ])
        Detmt_sched.Registry.parallel_decisions)

(* With a single worker the conflict graph degenerates to slot-order serial
   execution, so cgs must be observationally equal to the seq baseline. *)
let prop_cgs_one_worker_equals_seq =
  QCheck.Test.make ~count:10
    ~name:"cgs at one worker matches seq observables"
    Testgen.arbitrary_workload
    (fun workload ->
      parallel_observables workload ~scheduler:"cgs" ~workers:1
      = parallel_observables workload ~scheduler:"seq" ~workers:1)

(* ------------------- workspace speculation (wss, cgs+ws) ------------- *)

(* wss executes every condvar-free request against a copy-on-write
   workspace but commits — and replies — at slot-order barriers, replaying
   the virtual acquisition log into the real fingerprints.  Given the same
   total order, everything a client or a cross-replica audit can see must
   therefore match the seq baseline at EVERY pool width, including widths
   where the pool binds: commits are slot-ordered regardless of how many
   workers speculate.  Closed-loop clients would not pin the total order —
   wss replies earlier than seq by design, which feeds back into the
   submission times and hence the order itself — so this driver is
   open-loop: every request is broadcast at a fixed virtual time. *)
let open_loop_observables (cls, seed) ~scheduler ~workers =
  let engine = Detmt_sim.Engine.create () in
  let params =
    { Detmt_replication.Active.default_params with
      scheduler; workers; replicas = 3 }
  in
  let system = Detmt_replication.Active.create ~engine ~cls ~params () in
  let replies = ref 0 in
  for client = 0 to 3 do
    let rng = Detmt_sim.Rng.create (Int64.add seed (Int64.of_int client)) in
    for r = 0 to 2 do
      let meth, args = fuzz_gen ~client ~seq:r rng in
      Detmt_sim.Engine.schedule_at engine
        ~time:((float_of_int r *. 4.0) +. (float_of_int client *. 0.5))
        (fun () ->
          Detmt_replication.Active.submit system ~client ~client_req:r ~meth
            ~args
            ~on_reply:(fun ~response_ms:_ -> incr replies))
    done
  done;
  Detmt_sim.Engine.run engine;
  ( !replies,
    List.map
      (fun r ->
        ( Detmt_runtime.Replica.state_snapshot r,
          Detmt_runtime.Replica.mutex_acquisition_fingerprint r ))
      (Detmt_replication.Active.live_replicas system) )

let prop_wss_equals_seq =
  QCheck.Test.make ~count:10
    ~name:"wss observables match seq at every pool width (open loop)"
    Testgen.arbitrary_workload
    (fun workload ->
      let reference =
        open_loop_observables workload ~scheduler:"seq" ~workers:1
      in
      List.for_all
        (fun w ->
          open_loop_observables workload ~scheduler:"wss" ~workers:w
          = reference)
        [ 1; 2; 4; 8 ])

(* cgs+ws is a pure safety net: when dispatch-time class resolution covers
   every method (all sync params reachable from [this] or a mutex-carrying
   request argument), no request is [Top]-class, no workspace ever opens,
   and the scheduler must be observationally indistinguishable from plain
   cgs — including its ws counters staying at zero.  Random classes are
   made resolvable by rewriting the unresolvable sync params (fields,
   locals, call results) to argument 0. *)
let resolve_param = function
  | (Ast.Sp_this | Ast.Sp_arg _) as p -> p
  | Ast.Sp_local _ | Ast.Sp_field _ | Ast.Sp_global _ | Ast.Sp_call _ ->
    Ast.Sp_arg 0

let rec resolve_stmt = function
  | Ast.Sync (p, b) -> Ast.Sync (resolve_param p, List.map resolve_stmt b)
  | Ast.Lock_acquire p -> Ast.Lock_acquire (resolve_param p)
  | Ast.Lock_release p -> Ast.Lock_release (resolve_param p)
  | Ast.Wait p -> Ast.Wait (resolve_param p)
  | Ast.Notify n -> Ast.Notify { n with param = resolve_param n.param }
  | Ast.If (c, a, b) ->
    Ast.If (c, List.map resolve_stmt a, List.map resolve_stmt b)
  | Ast.Loop l -> Ast.Loop { l with body = List.map resolve_stmt l.body }
  | s -> s

let resolve_class (cls : Class_def.t) =
  { cls with
    Class_def.methods =
      List.map
        (fun (m : Class_def.method_def) ->
          { m with Class_def.body = List.map resolve_stmt m.body })
        cls.Class_def.methods }

let ws_observables (cls, seed) ~scheduler ~workers =
  let engine = Detmt_sim.Engine.create () in
  let params =
    { Detmt_replication.Active.default_params with
      scheduler; workers; replicas = 3 }
  in
  let system = Detmt_replication.Active.create ~engine ~cls ~params () in
  Detmt_replication.Client.run_clients ~engine ~system ~clients:4
    ~requests_per_client:3 ~gen:fuzz_gen ~seed ();
  ( Detmt_replication.Active.replies_received system,
    List.map
      (fun r ->
        ( Detmt_runtime.Replica.state_snapshot r,
          Detmt_runtime.Replica.mutex_acquisition_fingerprint r,
          Detmt_runtime.Replica.ws_commits r,
          Detmt_runtime.Replica.ws_aborts r ))
      (Detmt_replication.Active.live_replicas system) )

let prop_safety_net_transparent =
  QCheck.Test.make ~count:10
    ~name:"cgs+ws is bit-identical to cgs when every class resolves"
    Testgen.arbitrary_workload
    (fun (cls, seed) ->
      let workload = (resolve_class cls, seed) in
      List.for_all
        (fun w ->
          ws_observables workload ~scheduler:"cgs+ws" ~workers:w
          = ws_observables workload ~scheduler:"cgs" ~workers:w)
        [ 1; 4 ])

(* Abort-path determinism.  The injector class syncs through a local the
   dispatch-time resolution cannot see ([Top]-class, so cgs+ws speculates
   it) and read-modify-writes the shared mutex field [f0] inside the
   critical section, so concurrent speculations genuinely invalidate each
   other: the younger reader's commit-time validation finds [f0] moved and
   must abort and re-execute.  The aborts themselves must be deterministic
   — same seed, bit-identical observables AND abort counters — and the
   client-visible outcome must still match the serial baseline. *)
let injector_cls =
  Class_def.make ~cname:"Inject" ~mutex_fields:[ ("f0", 3) ]
    ~state_fields:[ "st" ]
    [ { Class_def.name = "m"; final = true; exported = true; params = 3;
        body =
          [ Ast.Assign ("x", Ast.Marg 0);
            Ast.Sync
              ( Ast.Sp_local "x",
                [ Ast.Assign ("y", Ast.Mfield "f0");
                  Ast.Compute (Ast.Fixed 0.5);
                  Ast.Assign_field ("f0", Ast.Marg 1);
                  Ast.State_update ("st", 1) ] ) ]
      } ]

let test_ws_abort_determinism () =
  Alcotest.(check (list string)) "injector wellformed" []
    (Wellformed.errors injector_cls);
  let totals per_replica =
    List.fold_left (fun (c, a) (_, _, wc, wa) -> (c + wc, a + wa)) (0, 0)
      per_replica
  in
  List.iter
    (fun scheduler ->
      let run () = ws_observables (injector_cls, 5L) ~scheduler ~workers:4 in
      let ((_, per_replica) as a) = run () in
      Alcotest.(check bool)
        (scheduler ^ ": same seed, bit-identical run incl. abort counters")
        true
        (a = run ());
      let commits, aborts = totals per_replica in
      Alcotest.(check bool) (scheduler ^ ": speculation engaged") true (commits > 0);
      Alcotest.(check bool) (scheduler ^ ": injector forced aborts") true
        (aborts > 0))
    [ "wss"; "cgs+ws" ];
  (* wss replays its acquisition log, so the full observable tuple matches
     seq; cgs+ws leaves fingerprints to direct executions (by design), so
     compare the client-facing subset: replies and final states. *)
  let strip (replies, per_replica) =
    (replies, List.map (fun (st, _, _, _) -> st) per_replica)
  in
  let seq = ws_observables (injector_cls, 5L) ~scheduler:"seq" ~workers:1 in
  Alcotest.(check bool) "wss aborts preserve seq observables" true
    (parallel_observables (injector_cls, 5L) ~scheduler:"wss" ~workers:4
    = parallel_observables (injector_cls, 5L) ~scheduler:"seq" ~workers:1);
  Alcotest.(check bool) "cgs+ws aborts preserve seq replies and states" true
    (strip (ws_observables (injector_cls, 5L) ~scheduler:"cgs+ws" ~workers:4)
    = strip seq)

(* The same contract on the three fixed paper workloads (figure1, prodcons
   with its condition variables, sharded transfers), across several seeds —
   the deterministic counterpart of the fuzzed property above. *)
let fixed_observables ~cls ~gen ~scheduler ~workers ~seed =
  let engine = Detmt_sim.Engine.create () in
  let params =
    { Detmt_replication.Active.default_params with scheduler; workers }
  in
  let system = Detmt_replication.Active.create ~engine ~cls ~params () in
  Detmt_replication.Client.run_clients ~engine ~system ~clients:4
    ~requests_per_client:3 ~gen ~seed ();
  ( Detmt_replication.Active.replies_received system,
    List.map
      (fun r ->
        ( Detmt_runtime.Replica.state_snapshot r,
          Detmt_runtime.Replica.mutex_acquisition_fingerprint r ))
      (Detmt_replication.Active.live_replicas system) )

let test_cgs_fixed_workloads () =
  let workloads =
    [ ( "figure1",
        Detmt_workload.Figure1.cls Detmt_workload.Figure1.default,
        Detmt_workload.Figure1.gen Detmt_workload.Figure1.default );
      ( "prodcons",
        Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default,
        Detmt_workload.Prodcons.gen );
      ( "sharded",
        Detmt_workload.Sharded.cls Detmt_workload.Sharded.default,
        Detmt_workload.Sharded.gen Detmt_workload.Sharded.default ) ]
  in
  List.iter
    (fun (wname, cls, gen) ->
      List.iter
        (fun seed ->
          (* cgs: the paper-facing claim — widths 2/4/8 all agree.  On these
             workloads the conflict graph never admits more runnable
             requests than the narrowest pool holds, so even width 2 is
             unconstrained. *)
          let at scheduler w =
            fixed_observables ~cls ~gen ~scheduler ~workers:w ~seed
          in
          let reference = at "cgs" 2 in
          List.iter
            (fun w ->
              Alcotest.(check bool)
                (Printf.sprintf "cgs %s seed=%Ld workers=%d == workers=2"
                   wname seed w)
                true
                (at "cgs" w = reference))
            [ 4; 8 ];
          (* pcgs releases prediction-exact classes early, so width 2 can
             saturate on figure1; compare only the unconstrained widths. *)
          Alcotest.(check bool)
            (Printf.sprintf "pcgs %s seed=%Ld workers=4 == workers=8" wname
               seed)
            true
            (at "pcgs" 4 = at "pcgs" 8);
          Alcotest.(check bool)
            (Printf.sprintf "cgs@1 == seq on %s seed=%Ld" wname seed)
            true
            (at "cgs" 1 = at "seq" 1))
        [ 7L; 42L ])
    workloads

let prop_runs_reproducible =
  QCheck.Test.make ~count:20 ~name:"same seed, bit-identical run"
    Testgen.arbitrary_class
    (fun cls ->
      let fp () =
        let engine = Detmt_sim.Engine.create () in
        let system =
          Detmt_replication.Active.create ~engine ~cls
            ~params:
              { Detmt_replication.Active.default_params with
                scheduler = "pmat" }
            ()
        in
        let gen ~client:_ ~seq:_ rng =
          ("m",
           [| Ast.Vmutex (Detmt_sim.Rng.int rng 4);
              Ast.Vmutex (Detmt_sim.Rng.int rng 4);
              Ast.Vbool (Detmt_sim.Rng.bool rng 0.5) |])
        in
        Detmt_replication.Client.run_clients ~engine ~system ~clients:2
          ~requests_per_client:2 ~gen ~seed:3L ();
        List.map
          (fun r ->
            Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r))
          (Detmt_replication.Active.replicas system)
      in
      fp () = fp ())

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_wellformed;
      prop_predictive_transform_verifies;
      prop_basic_transform_balanced;
      prop_interp_lock_discipline;
      prop_random_programs_consistent;
      prop_cross_scheduler_fuzz;
      prop_one_shard_equals_unsharded;
      prop_split_merge_equals_static;
      prop_elastic_reproducible;
      prop_cgs_worker_count_independent;
      prop_cgs_one_worker_equals_seq;
      prop_wss_equals_seq;
      prop_safety_net_transparent;
      prop_runs_reproducible;
    ]
  @ [ ("cgs fixed-workload differential", `Quick, test_cgs_fixed_workloads);
      ("workspace abort-path determinism", `Quick,
       test_ws_abort_determinism) ]

let () = Alcotest.run "properties" [ ("properties", suite) ]
