(* Tests for the adaptive scheduler (section 5: the runtime request
   analyser). *)

open Detmt_sim
open Detmt_replication

let b = Alcotest.bool

let test_recommend () =
  let predictable =
    Some
      { Detmt_analysis.Predict.class_name = "C";
        methods =
          [ { Detmt_analysis.Predict.mname = "m"; fallback = false;
              fallback_reason = None; sids = []; loops = [];
              uses_condvars = false } ] }
  in
  let fallback =
    Some
      { Detmt_analysis.Predict.class_name = "C";
        methods =
          [ Detmt_analysis.Predict.fallback_summary ~mname:"m"
              ~reason:"recursion" ] }
  in
  Alcotest.(check string) "sequential clients -> seq" "seq"
    (Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
       ~summary:predictable
       ~avg_concurrency:1.0);
  Alcotest.(check string) "predictable + marginal overlap -> psat" "psat"
    (Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
       ~summary:predictable
       ~avg_concurrency:1.5);
  Alcotest.(check string) "predictable + concurrent -> pmat" "pmat"
    (Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
       ~summary:predictable
       ~avg_concurrency:4.0);
  Alcotest.(check string) "predictable + heavy fan-in -> ppds" "ppds"
    (Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
       ~summary:predictable
       ~avg_concurrency:64.0);
  Alcotest.(check string) "unpredictable + marginal overlap -> mat" "mat"
    (Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
       ~summary:fallback ~avg_concurrency:1.5);
  Alcotest.(check string) "unpredictable + concurrent -> mat" "mat"
    (Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
       ~summary:fallback ~avg_concurrency:4.0);
  Alcotest.(check string) "no summary -> mat" "mat"
    (Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
       ~summary:None ~avg_concurrency:4.0);
  Alcotest.(check string) "pool + low conflict -> cgs" "cgs"
    (Detmt_sched.Adaptive.recommend ~workers:4 ~conflict_rate:0.0
       ~summary:predictable ~avg_concurrency:4.0);
  Alcotest.(check string) "no pool keeps pmat despite low conflict" "pmat"
    (Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:0.0
       ~summary:predictable ~avg_concurrency:4.0);
  Alcotest.(check string) "pool + contended locks keeps pmat" "pmat"
    (Detmt_sched.Adaptive.recommend ~workers:4 ~conflict_rate:0.5
       ~summary:predictable ~avg_concurrency:4.0);
  Alcotest.(check string) "pool + unpredictable -> mat, never cgs" "mat"
    (Detmt_sched.Adaptive.recommend ~workers:4 ~conflict_rate:0.0
       ~summary:fallback ~avg_concurrency:4.0)

let run_adaptive ~clients ~requests =
  let wl = Detmt_workload.Disjoint.default in
  let cls = Detmt_workload.Disjoint.cls wl in
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls
      ~params:{ Active.default_params with scheduler = "adaptive" }
      ()
  in
  Client.run_clients ~engine ~system ~clients ~requests_per_client:requests
    ~gen:Detmt_workload.Disjoint.gen ();
  system

let test_completes_and_consistent () =
  let system = run_adaptive ~clients:6 ~requests:10 in
  Alcotest.(check int) "all replies" 60 (Active.replies_received system);
  let r = Consistency.check (Active.live_replicas system) in
  Alcotest.check b "replicas agree" true (Consistency.consistent r)

let test_switches_deterministically () =
  let fp () =
    let system = run_adaptive ~clients:6 ~requests:10 in
    List.map
      (fun r -> Trace.fingerprint (Detmt_runtime.Replica.trace r))
      (Active.replicas system)
  in
  Alcotest.check b "same run twice" true (fp () = fp ())

let test_single_client_switches_to_seq () =
  (* One closed-loop client: observed concurrency is 1, so after the first
     window the analyser must pick SEQ. *)
  let switches = ref [] in
  let wl = Detmt_workload.Disjoint.default in
  let cls = Detmt_workload.Disjoint.cls wl in
  let instrumented, summary = Detmt_transform.Transform.predictive cls in
  ignore instrumented;
  (* Drive the decision function the way the wrapper does: 1 alive thread at
     every delivery. *)
  let name =
    Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
       ~summary:(Some summary)
      ~avg_concurrency:1.0
  in
  switches := [ name ];
  Alcotest.(check (list string)) "seq picked" [ "seq" ] !switches

let test_on_switch_fires () =
  (* End-to-end: a concurrent, fully predictable workload must converge on
     pmat after the first window. *)
  let wl = Detmt_workload.Disjoint.default in
  let cls = Detmt_workload.Disjoint.cls wl in
  let instrumented, summary = Detmt_transform.Transform.predictive cls in
  let engine = Engine.create () in
  let switches = ref [] in
  let callbacks =
    { Detmt_runtime.Replica.send_reply = (fun _ -> ());
      do_nested = (fun ~tid:_ ~call_index:_ ~service:_ ~duration:_ -> ());
      broadcast_control = (fun _ -> ());
      inject_dummy = (fun () -> ());
      is_leader = (fun () -> true) }
  in
  let make_sched actions =
    Detmt_sched.Adaptive.of_config ~window:4
      ~on_switch:(fun name -> switches := name :: !switches)
      (Detmt_sched.Sched_config.make ~summary "adaptive")
      actions
  in
  let replica =
    Detmt_runtime.Replica.create ~engine ~id:0 ~cls:instrumented
      ~config:Detmt_runtime.Config.default ~callbacks ~make_sched ()
  in
  (* Deliver requests in overlapping bursts so concurrency > 1. *)
  for i = 0 to 11 do
    let meth, args =
      Detmt_workload.Disjoint.gen ~client:(i mod 3) ~seq:i (Rng.create 1L)
    in
    Detmt_runtime.Replica.deliver_request replica
      (Detmt_runtime.Request.make ~uid:i ~client:(i mod 3) ~client_req:i
         ~meth ~args ~sent_at:0.0)
  done;
  Engine.run engine;
  Alcotest.(check int) "all processed" 12
    (Detmt_runtime.Replica.completed_requests replica);
  Alcotest.check b "initial choice was pmat (predictable class)" true
    (List.mem "pmat" !switches)

let suite =
  [ ("recommend", `Quick, test_recommend);
    ("completes and consistent", `Quick, test_completes_and_consistent);
    ("deterministic switches", `Quick, test_switches_deterministically);
    ("single client -> seq", `Quick, test_single_client_switches_to_seq);
    ("on_switch fires", `Quick, test_on_switch_fires);
  ]

let () = Alcotest.run "adaptive" [ ("adaptive", suite) ]
