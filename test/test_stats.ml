(* Unit tests for the statistics library. *)

open Detmt_stats

let b = Alcotest.bool

let feq = Alcotest.(check (float 1e-9))

let summary_of xs =
  let s = Summary.create () in
  List.iter (Summary.add s) xs;
  s

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.check b "mean is nan" true (Float.is_nan (Summary.mean s));
  Alcotest.check b "quantile is nan" true
    (Float.is_nan (Summary.quantile s 0.5))

let test_summary_mean_var () =
  let s = summary_of [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  feq "mean" 5.0 (Summary.mean s);
  feq "variance (unbiased)" (32.0 /. 7.0) (Summary.variance s);
  feq "min" 2.0 (Summary.min s);
  feq "max" 9.0 (Summary.max s);
  feq "total" 40.0 (Summary.total s)

let test_summary_quantiles () =
  let s = summary_of (List.init 100 (fun i -> float_of_int (i + 1))) in
  feq "median" 50.0 (Summary.median s);
  feq "p95" 95.0 (Summary.quantile s 0.95);
  feq "p0 = min" 1.0 (Summary.quantile s 0.0);
  feq "p100 = max" 100.0 (Summary.quantile s 1.0)

let test_summary_add_after_sort () =
  (* Quantile queries must stay correct when samples arrive afterwards. *)
  let s = summary_of [ 5.0; 1.0 ] in
  feq "median of two" 1.0 (Summary.quantile s 0.5);
  Summary.add s 0.5;
  feq "min updated" 0.5 (Summary.min s)

let test_summary_merge () =
  let a = summary_of [ 1.0; 2.0 ] and b' = summary_of [ 3.0; 4.0 ] in
  let m = Summary.merge a b' in
  Alcotest.(check int) "merged count" 4 (Summary.count m);
  feq "merged mean" 2.5 (Summary.mean m);
  Alcotest.(check int) "inputs untouched" 2 (Summary.count a)

let test_histogram_buckets () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 9.9; -1.0; 10.0; 100.0 ];
  Alcotest.(check int) "bucket 0" 2 (Histogram.bucket_count h 0);
  Alcotest.(check int) "bucket 1" 1 (Histogram.bucket_count h 1);
  Alcotest.(check int) "bucket 4" 1 (Histogram.bucket_count h 4);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "total" 7 (Histogram.count h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  let lo, hi = Histogram.bucket_bounds h 2 in
  feq "bucket 2 lo" 4.0 lo;
  feq "bucket 2 hi" 6.0 hi

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_float_row t ~label:"x" [ 3.14159 ];
  let text = Format.asprintf "%a" Table.pp t in
  Alcotest.check b "title present" true
    (String.length text > 0 && String.sub text 0 1 = "T");
  Alcotest.(check int) "two rows" 2 (List.length (Table.rows t));
  Alcotest.check b "float formatted" true
    (List.mem [ "x"; "3.14" ] (Table.rows t))

let test_table_csv () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x,y"; "z" ];
  Alcotest.(check string) "csv escaping" "a,b\n\"x,y\",z\n" (Table.to_csv t)

(* RFC 4180 corner cases: label values carrying commas (the windowed-series
   "values" cells), embedded quotes, and both line-break characters must all
   be quoted — and embedded quotes doubled. *)
let test_table_csv_quoting () =
  let t = Table.create ~title:"T" ~columns:[ "label"; "values" ] in
  Table.add_row t [ "shard=0,epoch=2"; "1,2,3" ];
  Table.add_row t [ "say \"hi\""; "a\nb" ];
  Table.add_row t [ "cr\rhere"; "plain" ];
  Alcotest.(check string) "quoted csv"
    ("label,values\n" ^ "\"shard=0,epoch=2\",\"1,2,3\"\n"
   ^ "\"say \"\"hi\"\"\",\"a\nb\"\n" ^ "\"cr\rhere\",plain\n")
    (Table.to_csv t)

let test_series () =
  let s = Series.create ~name:"s" in
  Series.add s ~x:1.0 ~y:10.0;
  Series.add s ~x:2.0 ~y:20.0;
  Alcotest.(check int) "points" 2 (List.length (Series.points s));
  Alcotest.check b "lookup" true (Series.y_at s 2.0 = Some 20.0);
  Alcotest.check b "missing" true (Series.y_at s 9.0 = None)

let test_series_chart_renders () =
  let s = Series.create ~name:"line" in
  List.iter (fun i ->
      Series.add s ~x:(float_of_int i) ~y:(float_of_int (i * i)))
    [ 1; 2; 3; 4 ];
  let text = Format.asprintf "%a" (fun ppf -> Series.chart ppf) [ s ] in
  Alcotest.check b "chart nonempty" true (String.length text > 100);
  Alcotest.check b "legend present" true
    (String.length text > 0
    && (let has needle =
          let n = String.length needle and h = String.length text in
          let rec go i =
            i + n <= h && (String.sub text i n = needle || go (i + 1))
          in
          go 0
        in
        has "A = line"))

let prop_summary_mean_bounded =
  QCheck.Test.make ~count:300 ~name:"mean lies within [min, max]"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = summary_of xs in
      Summary.mean s >= Summary.min s -. 1e-9
      && Summary.mean s <= Summary.max s +. 1e-9)

let prop_quantile_monotone =
  QCheck.Test.make ~count:300 ~name:"quantiles are monotone"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = summary_of xs in
      let qs = List.map (Summary.quantile s) [ 0.1; 0.5; 0.9 ] in
      match qs with
      | [ q1; q2; q3 ] -> q1 <= q2 && q2 <= q3
      | _ -> false)

let suite =
  [ ("summary empty", `Quick, test_summary_empty);
    ("summary mean/var", `Quick, test_summary_mean_var);
    ("summary quantiles", `Quick, test_summary_quantiles);
    ("summary add after sort", `Quick, test_summary_add_after_sort);
    ("summary merge", `Quick, test_summary_merge);
    ("histogram buckets", `Quick, test_histogram_buckets);
    ("histogram bounds", `Quick, test_histogram_bounds);
    ("table render", `Quick, test_table_render);
    ("table csv", `Quick, test_table_csv);
    ("table csv quoting", `Quick, test_table_csv_quoting);
    ("series", `Quick, test_series);
    ("series chart renders", `Quick, test_series_chart_renders);
    QCheck_alcotest.to_alcotest prop_summary_mean_bounded;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
  ]

let () = Alcotest.run "stats" [ ("stats", suite) ]
