(* Cross-cutting scenario tests: condition-variable interplay per scheduler,
   re-entrant monitors, open-loop load, adaptive phase switching and the
   loop-bound analysis. *)

open Detmt_sim
open Detmt_lang
open Detmt_replication

let b = Alcotest.bool

let zero_overhead =
  { Detmt_runtime.Config.default with
    lock_overhead_ms = 0.0; bookkeeping_overhead_ms = 0.0;
    reply_build_ms = 0.0 }

let build ?(scheduler = "mat") ?(replicas = 1) cls =
  let engine = Engine.create () in
  let params =
    { Active.default_params with
      replicas; scheduler; config = zero_overhead; net_latency_ms = 0.0;
      client_latency_ms = 0.0 }
  in
  (engine, Active.create ~engine ~cls ~params ())

(* --------------------- re-entrant monitors -------------------------- *)

let reentrant_cls =
  let open Builder in
  Builder.cls ~cname:"Reentrant" ~state_fields:[ "st" ]
    [ meth "outer" ~params:1
        [ sync (arg 0)
            [ compute 1.0;
              sync (arg 0) [ state_incr "st" 1 ];
              compute 1.0;
            ];
        ];
    ]

let test_reentrant_all_schedulers () =
  List.iter
    (fun scheduler ->
      let engine, system = build ~scheduler reentrant_cls in
      let gen ~client:_ ~seq:_ _ = ("outer", [| Ast.Vmutex 3 |]) in
      Client.run_clients ~engine ~system ~clients:3 ~requests_per_client:4
        ~gen ();
      Alcotest.(check int) (scheduler ^ ": replies") 12
        (Active.replies_received system);
      List.iter
        (fun r ->
          Alcotest.(check int)
            (scheduler ^ ": state")
            12
            (List.assoc "st" (Detmt_runtime.Replica.state_snapshot r)))
        (Active.replicas system))
    [ "seq"; "sat"; "lsa"; "pds"; "mat"; "mat-ll"; "pmat" ]

(* -------------------- notify ordering (FIFO) ------------------------ *)

(* Waiters are woken in wait order: three waiters, one notifier with
   notifyAll, trace must show the reacquisitions in wait order. *)
let notify_cls =
  let open Builder in
  Builder.cls ~cname:"Notify" ~state_fields:[ "ready"; "woken" ]
    [ meth "waiter"
        [ sync this
            [ wait_until this ~field:"ready" ~min:1; state_incr "woken" 1 ];
        ];
      meth "release_all" [ sync this [ state_incr "ready" 1; notify_all this ] ];
    ]

let test_notify_fifo_order () =
  let engine, system = build ~scheduler:"mat" notify_cls in
  List.iteri
    (fun i meth ->
      Active.submit system ~client:0 ~client_req:i ~meth ~args:[||]
        ~on_reply:(fun ~response_ms:_ -> ()))
    [ "waiter"; "waiter"; "waiter"; "release_all" ];
  Engine.run engine;
  match Active.replicas system with
  | [ r ] ->
    let wakeups =
      List.filter_map
        (function
          | Trace.Wait_end { tid; _ } -> Some tid
          | _ -> None)
        (Trace.events (Detmt_runtime.Replica.trace r))
    in
    Alcotest.(check (list int)) "woken in wait order" [ 0; 1; 2 ] wakeups;
    Alcotest.(check int) "all three woke up" 3
      (List.assoc "woken" (Detmt_runtime.Replica.state_snapshot r))
  | _ -> Alcotest.fail "one replica expected"

(* The MAT rule: a notified waiter resumes with ex-primary priority, before
   plain secondaries blocked on locks. *)
let test_mat_waiter_priority () =
  let engine, system = build ~scheduler:"mat" notify_cls in
  List.iteri
    (fun i meth ->
      Active.submit system ~client:0 ~client_req:i ~meth ~args:[||]
        ~on_reply:(fun ~response_ms:_ -> ()))
    [ "waiter"; "release_all"; "release_all" ];
  Engine.run engine;
  match Active.replicas system with
  | [ r ] ->
    (* The waiter (t0) must reacquire before the second notifier (t2) gets
       the monitor: find positions in the trace. *)
    let events = Trace.events (Detmt_runtime.Replica.trace r) in
    let pos p =
      let rec go i = function
        | [] -> max_int
        | e :: rest -> if p e then i else go (i + 1) rest
      in
      go 0 events
    in
    let wait_end_t0 =
      pos (function Trace.Wait_end { tid = 0; _ } -> true | _ -> false)
    in
    let t2_lock =
      pos (function
        | Trace.Lock_granted { tid = 2; _ } -> true
        | _ -> false)
    in
    Alcotest.check b "woken ex-primary beats younger secondary" true
      (wait_end_t0 < t2_lock)
  | _ -> Alcotest.fail "one replica expected"

(* ------------------------ open-loop clients ------------------------- *)

let test_open_loop_completes () =
  let wl = Detmt_workload.Disjoint.default in
  let engine, system = build ~scheduler:"pmat" (Detmt_workload.Disjoint.cls wl) in
  Client.run_open_loop ~engine ~system ~rate_per_s:100.0 ~requests:50
    ~gen:Detmt_workload.Disjoint.gen ();
  Alcotest.(check int) "all answered" 50 (Active.replies_received system)

let test_open_loop_deterministic () =
  let fp () =
    let wl = Detmt_workload.Disjoint.default in
    let engine, system =
      build ~scheduler:"mat" ~replicas:3 (Detmt_workload.Disjoint.cls wl)
    in
    Client.run_open_loop ~engine ~system ~rate_per_s:200.0 ~requests:30
      ~gen:Detmt_workload.Disjoint.gen ~seed:11L ();
    List.map
      (fun r -> Trace.fingerprint (Detmt_runtime.Replica.trace r))
      (Active.replicas system)
  in
  Alcotest.check b "same seed, same run" true (fp () = fp ())

let test_open_loop_backlog_grows_when_saturated () =
  (* SEQ at 10x its capacity: responses must keep growing with position. *)
  let wl = Detmt_workload.Disjoint.default in
  let engine, system = build ~scheduler:"seq" (Detmt_workload.Disjoint.cls wl) in
  let times = ref [] in
  let rng = Rng.create 3L in
  let rec arrive seq at =
    if seq < 20 then
      Engine.schedule_at engine ~time:at (fun () ->
          let meth, args = Detmt_workload.Disjoint.gen ~client:0 ~seq rng in
          Active.submit system ~client:0 ~client_req:seq ~meth ~args
            ~on_reply:(fun ~response_ms -> times := response_ms :: !times);
          arrive (seq + 1) (at +. 1.0))
  in
  (* service time ~7 ms, arrivals every 1 ms: heavy overload *)
  arrive 0 0.0;
  Engine.run engine;
  match (List.rev !times : float list) with
  | first :: rest ->
    let last = List.fold_left (fun _ x -> x) first rest in
    Alcotest.check b "waiting time accumulates" true (last > 5.0 *. first)
  | [] -> Alcotest.fail "no replies"

(* ---------------------- adaptive phase switch ----------------------- *)

let test_adaptive_phase_switch () =
  (* Phase 1: strictly sequential deliveries (drain between requests) ->
     the analyser picks SEQ.  Phase 2: a concurrent burst -> it picks PMAT
     (the class is fully predictable). *)
  let wl = Detmt_workload.Disjoint.default in
  let cls = Detmt_workload.Disjoint.cls wl in
  let instrumented, summary = Detmt_transform.Transform.predictive cls in
  let engine = Engine.create () in
  let switches = ref [] in
  let callbacks =
    { Detmt_runtime.Replica.send_reply = (fun _ -> ());
      do_nested = (fun ~tid:_ ~call_index:_ ~service:_ ~duration:_ -> ());
      broadcast_control = (fun _ -> ());
      inject_dummy = (fun () -> ());
      is_leader = (fun () -> true) }
  in
  let make_sched actions =
    Detmt_sched.Adaptive.of_config ~window:6
      ~on_switch:(fun name -> switches := name :: !switches)
      (Detmt_sched.Sched_config.make ~runtime:zero_overhead ~summary
         "adaptive")
      actions
  in
  let replica =
    Detmt_runtime.Replica.create ~engine ~id:0 ~cls:instrumented
      ~config:zero_overhead ~callbacks ~make_sched ()
  in
  let rng = Rng.create 1L in
  let uid = ref 0 in
  let deliver () =
    let meth, args = Detmt_workload.Disjoint.gen ~client:0 ~seq:!uid rng in
    Detmt_runtime.Replica.deliver_request replica
      (Detmt_runtime.Request.make ~uid:!uid ~client:0 ~client_req:!uid ~meth
         ~args ~sent_at:(Engine.now engine));
    incr uid
  in
  (* phase 1: one at a time *)
  for _ = 1 to 8 do
    deliver ();
    Engine.run engine
  done;
  (* phase 2: bursts of six *)
  for _ = 1 to 3 do
    for _ = 1 to 6 do
      deliver ()
    done;
    Engine.run engine
  done;
  let history = List.rev !switches in
  Alcotest.check b "sequential phase selected seq" true
    (List.mem "seq" history);
  Alcotest.(check string) "concurrent phase selected pmat" "pmat"
    (List.nth history (List.length history - 1));
  Alcotest.(check int) "everything processed" !uid
    (Detmt_runtime.Replica.completed_requests replica)

(* -------- wait re-entry position: MAT vs PMAT design decision -------- *)

(* A woken waiter resumes with ex-primary priority under MAT, but re-enters
   the queue at the tail under PMAT (the DESIGN.md resolution of the
   paper's open question): with a third thread already queued on the same
   monitor, the two algorithms order the post-notify acquisitions
   differently — both deterministically. *)
let reentry_cls =
  let open Builder in
  Builder.cls ~cname:"Reentry" ~state_fields:[ "go"; "touch" ]
    [ meth "waiter" [ sync this [ wait_until this ~field:"go" ~min:1 ] ];
      meth "notifier"
        [ compute 5.0; sync this [ state_incr "go" 1; notify_all this ] ];
      meth "third" [ compute 1.0; sync this [ state_incr "touch" 1 ] ];
    ]

let reentry_order scheduler =
  let engine, system = build ~scheduler reentry_cls in
  List.iteri
    (fun i meth ->
      Active.submit system ~client:0 ~client_req:i ~meth ~args:[||]
        ~on_reply:(fun ~response_ms:_ -> ()))
    [ "waiter"; "notifier"; "third" ];
  Engine.run engine;
  match Active.replicas system with
  | [ r ] ->
    let events = Trace.events (Detmt_runtime.Replica.trace r) in
    let pos p =
      let rec go i = function
        | [] -> max_int
        | e :: rest -> if p e then i else go (i + 1) rest
      in
      go 0 events
    in
    let wakeup =
      pos (function Trace.Wait_end { tid = 0; _ } -> true | _ -> false)
    in
    let third_lock =
      pos (function Trace.Lock_granted { tid = 2; _ } -> true | _ -> false)
    in
    Alcotest.(check int) (scheduler ^ ": all three done") 3
      (Detmt_runtime.Replica.completed_requests r);
    (wakeup, third_lock)
  | _ -> Alcotest.fail "one replica expected"

let test_wait_reentry_mat_priority () =
  let wakeup, third_lock = reentry_order "mat" in
  Alcotest.check b "MAT: ex-primary waiter beats the queued third" true
    (wakeup < third_lock)

let test_wait_reentry_pmat_tail () =
  let wakeup, third_lock = reentry_order "pmat" in
  Alcotest.check b "PMAT: waiter re-enters at the tail, third goes first"
    true (third_lock < wakeup)

(* ------------------------- loop bounds ------------------------------ *)

let test_loop_bounds () =
  let open Builder in
  let cls =
    Builder.cls ~cname:"Bounds" ~state_fields:[ "st" ]
      [ meth "fixed" ~params:1
          [ for_ 7 [ sync (arg 0) [ state_incr "st" 1 ] ] ];
        meth "dynamic" ~params:2
          [ for_arg 1 [ sync (arg 0) [ state_incr "st" 1 ] ] ];
      ]
  in
  let _, summary = Detmt_transform.Transform.predictive cls in
  let bound meth =
    let ms = Option.get (Detmt_analysis.Predict.find_method summary meth) in
    (List.hd ms.Detmt_analysis.Predict.loops).Detmt_analysis.Predict.bound
  in
  Alcotest.check b "constant count bounded" true (bound "fixed" = Some 7);
  Alcotest.check b "request-supplied count unbounded" true
    (bound "dynamic" = None)

let suite =
  [ ("reentrant monitors everywhere", `Quick, test_reentrant_all_schedulers);
    ("notify wakes in FIFO order", `Quick, test_notify_fifo_order);
    ("mat waiter priority", `Quick, test_mat_waiter_priority);
    ("open loop completes", `Quick, test_open_loop_completes);
    ("open loop deterministic", `Quick, test_open_loop_deterministic);
    ("open loop saturation backlog", `Quick,
     test_open_loop_backlog_grows_when_saturated);
    ("adaptive phase switch", `Quick, test_adaptive_phase_switch);
    ("wait re-entry: mat priority", `Quick, test_wait_reentry_mat_priority);
    ("wait re-entry: pmat tail", `Quick, test_wait_reentry_pmat_tail);
    ("loop bounds", `Quick, test_loop_bounds);
  ]

let () = Alcotest.run "scenarios" [ ("scenarios", suite) ]
