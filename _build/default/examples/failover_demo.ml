(* Leader failure and take-over time (section 3.5).

   Three replicas serve eight clients; at t = 150 ms replica 0 — the LSA
   leader — is killed.  Under LSA, the survivors stall until the failure
   detector fires and a new leader takes over the scheduling decisions;
   under MAT, all replicas are equal and the clients barely notice.

   Run with:  dune exec examples/failover_demo.exe *)

open Detmt

let kill_at = 150.0

let run scheduler =
  let wl = Disjoint.default in
  let cls = Disjoint.cls wl in
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls
      ~params:{ Active.default_params with scheduler }
      ()
  in
  Failover.kill_and_measure ~system ~replica:0 ~at:kill_at;
  Client.run_clients ~engine ~system ~clients:8 ~requests_per_client:30
    ~gen:Disjoint.gen ~until_ms:60_000.0 ();
  let analysis = Failover.analyze ~system ~kill_at in
  let report = Consistency.check (Active.live_replicas system) in
  Format.printf "%-7s %a  survivors consistent=%b@." scheduler Failover.pp
    analysis
    (report.Consistency.states_agree && report.Consistency.acquisitions_agree);
  (* A small reply-timeline sketch around the failure. *)
  let times = Active.reply_times system in
  let window = List.filter (fun t -> t > 100.0 && t < 260.0) times in
  let buckets = Array.make 16 0 in
  List.iter
    (fun t ->
      let i = int_of_float ((t -. 100.0) /. 10.0) in
      if i >= 0 && i < 16 then buckets.(i) <- buckets.(i) + 1)
    window;
  Format.printf "        replies/10ms around the kill (t=100..260):  ";
  Array.iter (fun n -> Format.printf "%c" (if n = 0 then '.' else
      Char.chr (Char.code '0' + min 9 n))) buckets;
  Format.printf "@."

let () =
  Format.printf
    "Leader failover: replica 0 killed at t=%.0f ms, failure detected after \
     %.0f ms.@.@."
    kill_at Active.default_params.detection_timeout_ms;
  List.iter run [ "lsa"; "mat"; "sat"; "pmat" ];
  Format.printf
    "@.LSA shows the hole in the reply stream the paper predicts (high \
     take-over@.time); the symmetric algorithms keep answering because \
     every replica makes@.the same decisions locally.@."
