(* A replicated task queue built on condition variables.

   Submitters enqueue work; workers block in a Java-style guarded wait
   ([while (tasks < 1) wait()]) until something arrives, then take a task
   and process it.  This is the coordination pattern the paper says
   sequential execution cannot support at all ("it enables the object
   programmer to use condition variables for coordination between multiple
   invocations") — a worker that arrives early would block the single
   sequential thread forever.

   Run with:  dune exec examples/task_queue.exe *)

open Detmt

let queue_class =
  let open Builder in
  cls ~cname:"TaskQueue" ~state_fields:[ "tasks"; "submitted"; "processed" ]
    [ (* submit(): enqueue a task and wake a worker. *)
      meth "submit"
        [ compute 0.3 (* parse the task *);
          sync this
            [ state_incr "tasks" 1; state_incr "submitted" 1;
              notify_all this ];
        ];
      (* take_and_process(): wait for a task, dequeue it, process outside
         the lock. *)
      meth "take_and_process"
        [ sync this
            [ wait_until this ~field:"tasks" ~min:1;
              state_incr "tasks" (-1) ];
          compute 2.0 (* process the task *);
          sync this [ state_incr "processed" 1 ];
        ];
    ]

let gen ~client ~seq:_ _rng =
  if client mod 2 = 0 then ("submit", [||]) else ("take_and_process", [||])

let run scheduler =
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls:queue_class
      ~params:{ Active.default_params with scheduler }
      ()
  in
  Client.run_clients ~engine ~system ~clients:6 ~requests_per_client:10 ~gen
    ();
  let snapshot =
    match Active.replicas system with
    | r :: _ -> Replica.state_snapshot r
    | [] -> []
  in
  let report = Consistency.check (Active.live_replicas system) in
  Format.printf
    "%-7s mean=%6.2f ms  submitted=%d processed=%d backlog=%d consistent=%b@."
    scheduler
    (Summary.mean (Active.response_times system))
    (List.assoc "submitted" snapshot)
    (List.assoc "processed" snapshot)
    (List.assoc "tasks" snapshot)
    (report.Consistency.states_agree && report.Consistency.acquisitions_agree)

let () =
  Format.printf
    "Replicated task queue: 3 submitters + 3 workers, 10 requests each.@.The \
     workers coordinate with the submitters through a condition variable@.on \
     the queue's monitor — note SEQ is absent: a worker arriving before \
     its@.task would wait forever on the only thread.@.@.";
  List.iter run [ "sat"; "pds"; "mat"; "mat-ll"; "pmat"; "lsa" ]
