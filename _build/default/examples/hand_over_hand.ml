(* Hand-over-hand (lock-coupling) traversal with explicit
   java.util.concurrent-style locks — the section 5 extension.

   A request walks a chain of segments, always holding the current
   segment's lock while acquiring the next one and releasing the previous
   one behind it.  This access pattern cannot be written with lexical
   [synchronized] blocks; with explicit locks the transformation still
   assigns each acquisition site a syncid, announces both locks at method
   entry (they arrive as request arguments) and verifies per-path balance.

   Requests over disjoint chain segments are independent; watch predicted
   MAT pipeline them while plain MAT serialises everything.

   Run with:  dune exec examples/hand_over_hand.exe *)

open Detmt

let segments = 9

(* walk(a, b): couple locks over segments a -> b. *)
let chain_class =
  let open Builder in
  cls ~cname:"Chain" ~state_fields:[ "visited" ]
    [ meth "walk" ~params:2
        [ lock_acquire (arg 0);
          compute 1.0 (* inspect segment a *);
          lock_acquire (arg 1);
          lock_release (arg 0);
          compute 1.0 (* inspect segment b *);
          state_incr "visited" 1;
          lock_release (arg 1);
          compute 0.5 (* build the reply *);
        ];
    ]

let gen ~client ~seq:_ _rng =
  (* Client k walks the segment pair (2k, 2k+1): pairs are disjoint across
     clients, but the coupling pattern makes that invisible to pessimistic
     schedulers. *)
  let a = 2 * client mod segments in
  ("walk", [| Ast.Vmutex a; Ast.Vmutex (a + 1) |])

let run scheduler =
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls:chain_class
      ~params:{ Active.default_params with scheduler }
      ()
  in
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:20 ~gen
    ();
  let report = Consistency.check (Active.live_replicas system) in
  Format.printf "%-7s mean=%6.2f ms  makespan=%7.1f ms  consistent=%b@."
    scheduler
    (Summary.mean (Active.response_times system))
    (Engine.now engine)
    (report.Consistency.states_agree && report.Consistency.acquisitions_agree)

let () =
  Format.printf
    "Hand-over-hand locking over a %d-segment chain (explicit \
     java.util.concurrent@.locks, the section 5 extension): 4 clients x 20 \
     walks over disjoint pairs.@.@."
    segments;
  (* Show the transformed method once: two acquisition sites, two
     announcements, path-balanced releases. *)
  let transformed, _ = Transform.predictive chain_class in
  Format.printf "%a@.@."
    Pretty.method_def
    (Class_def.find_method_exn transformed "walk");
  List.iter run [ "seq"; "sat"; "pds"; "mat"; "mat-ll"; "pmat"; "lsa" ]
