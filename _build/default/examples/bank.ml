(* A replicated bank with fine-grained, per-account locking — the situation
   the paper's lock prediction is made for: most transfers touch disjoint
   account pairs, so a predicting scheduler can run them concurrently while
   pessimistic MAT serialises everything through the primary token.

   The example also shows a classic hazard disarmed by deterministic
   scheduling: [transfer] locks two accounts in argument order, so two
   opposite transfers could deadlock under free-running threads; under the
   queue disciplines here, lock acquisition order is a deterministic
   function of the request order and the cycle cannot form.

   Run with:  dune exec examples/bank.exe *)

open Detmt

let accounts = 16

let balance i = Printf.sprintf "balance%d" i

(* The mini language addresses state fields statically, so we generate one
   method per account (deposits) and per account pair (transfers) — exactly
   what a stub compiler would emit.  Mutex i guards account i and arrives as
   a request argument, which makes every lock announceable at method entry
   (section 4.2). *)
let bank_class =
  let open Builder in
  let deposit i =
    meth
      (Printf.sprintf "deposit%d" i)
      ~params:1
      [ sync (arg 0) [ compute 0.4; state_incr (balance i) 1 ];
        compute 0.2;
      ]
  in
  let transfer i j =
    meth
      (Printf.sprintf "transfer%d_%d" i j)
      ~params:2
      [ sync (arg 0)
          [ compute 0.2;
            sync (arg 1)
              [ compute 0.4; state_incr (balance i) (-1);
                state_incr (balance j) 1 ];
          ];
        compute 0.2;
      ]
  in
  let deposits = List.init accounts deposit in
  let transfers =
    List.concat
      (List.init (accounts / 2) (fun k ->
           [ transfer (2 * k) ((2 * k) + 1); transfer ((2 * k) + 1) (2 * k) ]))
  in
  cls ~cname:"Bank" ~state_fields:(List.init accounts balance)
    (deposits @ transfers)

(* Clients: each owns an account pair (2k, 2k+1); a request is a deposit or
   a transfer inside the pair, with all randomness drawn client-side. *)
let gen ~client ~seq:_ rng =
  let k = client mod (accounts / 2) in
  let a = 2 * k and b = (2 * k) + 1 in
  if Rng.bool rng 0.5 then (Printf.sprintf "deposit%d" a, [| Ast.Vmutex a |])
  else if Rng.bool rng 0.5 then
    (Printf.sprintf "transfer%d_%d" a b, [| Ast.Vmutex a; Ast.Vmutex b |])
  else (Printf.sprintf "transfer%d_%d" b a, [| Ast.Vmutex b; Ast.Vmutex a |])

let run scheduler =
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls:bank_class
      ~params:{ Active.default_params with scheduler }
      ()
  in
  Client.run_clients ~engine ~system ~clients:8 ~requests_per_client:20 ~gen
    ();
  let report = Consistency.check (Active.live_replicas system) in
  let total_balance =
    match Active.replicas system with
    | r :: _ ->
      List.fold_left (fun acc (_, v) -> acc + v) 0 (Replica.state_snapshot r)
    | [] -> 0
  in
  Format.printf
    "%-7s mean=%6.2f ms  p95=%6.2f ms  makespan=%7.1f ms  total balance=%d  \
     consistent=%b@."
    scheduler
    (Summary.mean (Active.response_times system))
    (Summary.quantile (Active.response_times system) 0.95)
    (Engine.now engine) total_balance
    (report.Consistency.states_agree && report.Consistency.acquisitions_agree)

let () =
  Format.printf
    "Replicated bank: %d accounts, per-account locks, 8 clients x 20 \
     requests@.(deposits and two-account transfers)@.@."
    accounts;
  List.iter run [ "seq"; "sat"; "pds"; "mat"; "mat-ll"; "pmat"; "lsa"; "adaptive" ];
  Format.printf
    "@.Lock prediction (pmat) approaches LSA without extra network traffic: \
     every@.transfer announces both account locks at method entry, so \
     disjoint pairs are@.granted concurrently (Figure 3's ideal), while \
     plain MAT funnels every@.acquisition through the primary token.@."
