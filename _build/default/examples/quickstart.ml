(* Quickstart: replicate a counter object across three replicas and watch a
   deterministic scheduler keep them consistent.

   Run with:  dune exec examples/quickstart.exe *)

open Detmt

(* 1. Describe the remote object in the mini object language.  This is the
   Java the paper's middleware would transform: a counter whose [bump]
   method locks the object's monitor, updates shared state and does a bit of
   computation. *)
let counter_class =
  let open Builder in
  cls ~cname:"Counter" ~state_fields:[ "count" ]
    [ meth "bump"
        [ compute 1.0 (* demarshal *);
          sync this [ state_incr "count" 1 ];
          compute 0.5 (* build reply *);
        ];
    ]

let () =
  (* 2. Build a replicated deployment: three replicas running the MAT
     scheduler on a simulated network.  The constructor transforms the class
     (synchronized blocks become scheduler calls) exactly like the FTflex
     deployment step. *)
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls:counter_class
      ~params:{ Active.default_params with scheduler = "mat" }
      ()
  in

  (* 3. A few closed-loop clients hammer the object. *)
  let gen ~client:_ ~seq:_ _rng = ("bump", [||]) in
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:25 ~gen
    ();

  (* 4. Observe: all requests answered, every replica has the same state,
     and the scheduling traces are bit-identical. *)
  Format.printf "virtual time: %.1f ms@." (Engine.now engine);
  Format.printf "replies:      %d@." (Active.replies_received system);
  Format.printf "response:     %a@." Summary.pp (Active.response_times system);
  List.iter
    (fun replica ->
      Format.printf "replica %d:    count=%d trace=%Lx@." (Replica.id replica)
        (List.assoc "count" (Replica.state_snapshot replica))
        (Trace.fingerprint (Replica.trace replica)))
    (Active.replicas system);
  let report = Consistency.check (Active.live_replicas system) in
  Format.printf "consistency:  %a@." Consistency.pp report;
  if not (Consistency.consistent report) then exit 1
