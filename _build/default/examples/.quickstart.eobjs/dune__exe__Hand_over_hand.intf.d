examples/hand_over_hand.mli:
