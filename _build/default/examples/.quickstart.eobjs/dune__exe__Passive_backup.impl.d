examples/passive_backup.ml: Ast Builder Detmt Engine Format List Passive Printf Replica Rng String
