examples/quickstart.mli:
