examples/hand_over_hand.ml: Active Ast Builder Class_def Client Consistency Detmt Engine Format List Pretty Summary Transform
