examples/quickstart.ml: Active Builder Client Consistency Detmt Engine Format List Replica Summary Trace
