examples/bank.mli:
