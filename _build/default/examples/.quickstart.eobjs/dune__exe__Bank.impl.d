examples/bank.ml: Active Ast Builder Client Consistency Detmt Engine Format List Printf Replica Rng Summary
