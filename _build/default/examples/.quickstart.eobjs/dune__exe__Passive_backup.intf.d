examples/passive_backup.mli:
