examples/task_queue.ml: Active Builder Client Consistency Detmt Engine Format List Replica Summary
