examples/failover_demo.ml: Active Array Char Client Consistency Detmt Disjoint Engine Failover Format List
