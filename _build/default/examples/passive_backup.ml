(* Passive replication: primary-backup with request-log re-execution — the
   paper's second motivation for deterministic scheduling:

   "State modifications not yet propagated to the backup replicas can be
   applied to them by re-executing method invocations from a request log.
   Such re-executions are consistent to the state of a failed primary only
   if a deterministic scheduling strategy is used."

   A primary executes requests under MAT and logs them; we checkpoint, let
   it process more, then "fail" it and bring a backup up to date by
   replaying the log suffix on top of the checkpoint.  The backup's state
   fingerprint must equal the primary's.

   Run with:  dune exec examples/passive_backup.exe *)

open Detmt

let account_class =
  let open Builder in
  cls ~cname:"Account" ~state_fields:[ "balance"; "ops" ]
    [ meth "deposit" ~params:1
        [ sync (arg 0) [ state_incr "balance" 5; state_incr "ops" 1 ];
          compute 0.5;
        ];
      meth "withdraw" ~params:1
        [ sync (arg 0) [ state_incr "balance" (-2); state_incr "ops" 1 ];
          compute 0.5;
        ];
    ]

let () =
  let engine = Engine.create () in
  let passive =
    Passive.create ~engine ~cls:account_class ~scheduler:"mat" ()
  in
  let rng = Rng.create 2026L in
  let send i =
    let meth = if Rng.bool rng 0.6 then "deposit" else "withdraw" in
    Passive.submit passive ~client:0 ~client_req:i ~meth
      ~args:[| Ast.Vmutex (Rng.int rng 4) |]
      ~on_reply:(fun ~response_ms:_ -> ())
  in
  for i = 0 to 19 do send i done;
  Engine.run engine;
  let checkpoint = Passive.checkpoint passive in
  Format.printf "checkpoint taken after %d logged requests@."
    (Passive.log_length passive);

  for i = 20 to 39 do send i done;
  Engine.run engine;
  let primary = Passive.primary passive in
  Format.printf "primary:  %s (fingerprint %Lx)@."
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (Replica.state_snapshot primary)))
    (Replica.state_fingerprint primary);

  (* The primary "fails"; a cold backup restores the checkpoint and replays
     only the un-propagated suffix of the log. *)
  let backup = Passive.replay passive ~from:checkpoint () in
  Format.printf "backup:   %s (fingerprint %Lx)@."
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (Replica.state_snapshot backup)))
    (Replica.state_fingerprint backup);
  let ok =
    Replica.state_fingerprint primary = Replica.state_fingerprint backup
  in
  Format.printf "take-over %s: the re-execution reproduced the primary's \
                 state exactly.@."
    (if ok then "succeeded" else "FAILED");
  if not ok then exit 1
