open Detmt_sim

type request_gen =
  client:int -> seq:int -> Rng.t -> string * Detmt_lang.Ast.value array

type t = {
  system : Active.t;
  id : int;
  rng : Rng.t;
  gen : request_gen;
  think_time_ms : float;
  max_requests : int;
  mutable sent : int;
  mutable completed : int;
  mutable waiting : bool;
}

let create system ~id ~rng ~gen ?(think_time_ms = 0.0) ?(max_requests = 10)
    () =
  { system; id; rng; gen; think_time_ms; max_requests; sent = 0;
    completed = 0; waiting = false }

let rec send_next t =
  if t.sent < t.max_requests then begin
    let seq = t.sent in
    t.sent <- seq + 1;
    t.waiting <- true;
    let meth, args = t.gen ~client:t.id ~seq t.rng in
    Active.submit t.system ~client:t.id ~client_req:seq ~meth ~args
      ~on_reply:(fun ~response_ms:_ ->
        t.waiting <- false;
        t.completed <- t.completed + 1;
        on_reply t)
  end

and on_reply t =
  if t.sent < t.max_requests then
    if t.think_time_ms > 0.0 then
      (* Think times are drawn exponentially around the configured mean,
         from the client's own stream. *)
      let think = Rng.exponential t.rng t.think_time_ms in
      Engine.schedule (Active.engine t.system) ~delay:think (fun () ->
          send_next t)
    else send_next t

and start t = send_next t

let completed t = t.completed

let in_flight t = t.waiting

let run_open_loop ~engine ~system ~rate_per_s ~requests ~gen ?(seed = 42L)
    ?until_ms () =
  if rate_per_s <= 0.0 then invalid_arg "Client.run_open_loop: rate <= 0";
  let rng = Rng.create seed in
  let mean_gap_ms = 1000.0 /. rate_per_s in
  let completed = ref 0 in
  (* Arrival times are pre-drawn so the schedule is independent of service
     completions (open loop). *)
  let rec arrive seq at =
    if seq < requests then
      Engine.schedule_at engine ~time:at (fun () ->
          let meth, args = gen ~client:0 ~seq rng in
          Active.submit system ~client:0 ~client_req:seq ~meth ~args
            ~on_reply:(fun ~response_ms:_ -> incr completed);
          arrive (seq + 1) (at +. Rng.exponential rng mean_gap_ms))
  in
  arrive 0 (Rng.exponential rng mean_gap_ms);
  Engine.run ?until:until_ms engine;
  if !completed < requests && until_ms = None then
    failwith
      (Printf.sprintf "open-loop run drained with %d of %d requests answered"
         !completed requests)

let run_clients ~engine ~system ~clients ~requests_per_client ~gen
    ?(think_time_ms = 0.0) ?(seed = 42L) ?until_ms () =
  let master = Rng.create seed in
  let all =
    List.init clients (fun id ->
        create system ~id ~rng:(Rng.split master) ~gen ~think_time_ms
          ~max_requests:requests_per_client ())
  in
  List.iter start all;
  Engine.run ?until:until_ms engine;
  let outstanding = List.filter in_flight all in
  if outstanding <> [] && until_ms = None then
    failwith
      (Printf.sprintf
         "simulation drained with %d client(s) still waiting (deadlock?)"
         (List.length outstanding))
