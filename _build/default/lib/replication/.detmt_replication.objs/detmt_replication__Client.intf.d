lib/replication/client.mli: Active Detmt_lang Detmt_sim
