lib/replication/failover.mli: Active Format
