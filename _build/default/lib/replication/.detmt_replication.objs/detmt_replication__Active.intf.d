lib/replication/active.mli: Detmt_analysis Detmt_gcs Detmt_lang Detmt_runtime Detmt_sim Detmt_stats
