lib/replication/client.ml: Active Detmt_lang Detmt_sim Engine List Printf Rng
