lib/replication/passive.mli: Detmt_lang Detmt_runtime Detmt_sim
