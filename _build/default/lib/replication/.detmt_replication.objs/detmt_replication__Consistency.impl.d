lib/replication/consistency.ml: Detmt_runtime Detmt_sim Format Int64 List Replica String
