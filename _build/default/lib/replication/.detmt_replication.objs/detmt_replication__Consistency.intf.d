lib/replication/consistency.mli: Detmt_runtime Format
