lib/replication/passive.ml: Active Config Detmt_lang Detmt_runtime Detmt_sim Engine List Object_state Replica
