lib/replication/failover.ml: Active Detmt_sim Engine Float Format List
