open Detmt_runtime

type report = {
  replicas : int list;
  state_hashes : (int * int64) list;
  acquisition_hashes : (int * int64) list;
  trace_hashes : (int * int64) list;
  states_agree : bool;
  acquisitions_agree : bool;
  traces_agree : bool;
  completed : (int * int) list;
}

let all_equal = function
  | [] | [ _ ] -> true
  | (_, h) :: rest -> List.for_all (fun (_, h') -> Int64.equal h h') rest

let check rs =
  let state_hashes =
    List.map (fun r -> (Replica.id r, Replica.state_fingerprint r)) rs
  in
  let acquisition_hashes =
    List.map
      (fun r -> (Replica.id r, Replica.mutex_acquisition_fingerprint r))
      rs
  in
  let trace_hashes =
    List.map
      (fun r -> (Replica.id r, Detmt_sim.Trace.fingerprint (Replica.trace r)))
      rs
  in
  { replicas = List.map Replica.id rs;
    state_hashes; acquisition_hashes; trace_hashes;
    states_agree = all_equal state_hashes;
    acquisitions_agree = all_equal acquisition_hashes;
    traces_agree = all_equal trace_hashes;
    completed = List.map (fun r -> (Replica.id r, Replica.completed_requests r)) rs }

let consistent r = r.states_agree && r.acquisitions_agree && r.traces_agree

let pp ppf r =
  let verdict b = if b then "agree" else "DIVERGE" in
  Format.fprintf ppf "replicas %s: state %s, acquisitions %s, traces %s"
    (String.concat "," (List.map string_of_int r.replicas))
    (verdict r.states_agree)
    (verdict r.acquisitions_agree)
    (verdict r.traces_agree)
