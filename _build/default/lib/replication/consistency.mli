(** Replica-consistency checking.

    The whole point of deterministic multithreading: after processing the
    same request sequence, all replicas must agree.  Three fingerprints of
    increasing strictness are compared across live replicas:

    - state: the object's field values (what clients observe),
    - acquisitions: the per-mutex lock-acquisition order,
    - trace: the full scheduling event sequence.

    A deterministic scheduler must pass all three; the freefall baseline is
    expected to fail. *)

type report = {
  replicas : int list;
  state_hashes : (int * int64) list;
  acquisition_hashes : (int * int64) list;
  trace_hashes : (int * int64) list;
  states_agree : bool;
  acquisitions_agree : bool;
  traces_agree : bool;
  completed : (int * int) list;  (** completed request counts per replica *)
}

val check : Detmt_runtime.Replica.t list -> report
(** Compare the given (live) replicas.  A singleton or empty list is trivially
    consistent. *)

val consistent : report -> bool
(** All three fingerprints agree. *)

val pp : Format.formatter -> report -> unit
