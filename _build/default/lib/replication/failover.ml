open Detmt_sim

type analysis = {
  kill_at : float;
  gap_before_ms : float;
  gap_after_ms : float;
  takeover_ms : float;
  replies_after : int;
}

let kill_and_measure ~system ~replica ~at =
  Engine.schedule_at (Active.engine system) ~time:at (fun () ->
      Active.kill_replica system replica)

let max_gap times =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (Float.max acc (b -. a)) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 times

let analyze ~system ~kill_at =
  let times = Active.reply_times system in
  let before = List.filter (fun t -> t <= kill_at) times in
  let after = List.filter (fun t -> t > kill_at) times in
  (* The failure hole spans from the last pre-failure reply to the first
     post-failure one, so include the boundary in the after-gap. *)
  let boundary =
    match (List.rev before, after) with
    | last :: _, first :: _ -> first -. last
    | _ -> 0.0
  in
  let gap_before_ms = max_gap before in
  let gap_after_ms = Float.max boundary (max_gap after) in
  { kill_at; gap_before_ms; gap_after_ms;
    takeover_ms = Float.max 0.0 (gap_after_ms -. gap_before_ms);
    replies_after = List.length after }

let pp ppf a =
  Format.fprintf ppf
    "kill@%.1fms: max gap %.2fms -> %.2fms (take-over %.2fms, %d replies \
     after)"
    a.kill_at a.gap_before_ms a.gap_after_ms a.takeover_ms a.replies_after
