open Detmt_sim
open Detmt_gcs
open Detmt_runtime

type payload =
  | P_request of {
      client : int;
      client_req : int;
      meth : string;
      args : Detmt_lang.Ast.value array;
      sent_at : float;
      dummy : bool;
    }
  | P_nested_reply of { tid : int; call_index : int }
  | P_control of Sched_iface.control

type params = {
  replicas : int;
  scheduler : string;
  config : Config.t;
  net_latency_ms : float;
  client_latency_ms : float;
  detection_timeout_ms : float;
}

let default_params =
  { replicas = 3; scheduler = "mat"; config = Config.default;
    net_latency_ms = 0.5; client_latency_ms = 0.5;
    detection_timeout_ms = 50.0 }

type t = {
  engine : Engine.t;
  params : params;
  bus : payload Totem.t;
  grp : Group.t;
  mutable members : Replica.t list;
  dedups : Dedup.t array;
  summary : Detmt_analysis.Predict.class_summary option;
  scheduler : Detmt_sched.Registry.spec;
  (* client-side bookkeeping *)
  reply_waiters : (int * int, float * (response_ms:float -> unit)) Hashtbl.t;
      (* (client, client_req) -> (sent_at, callback) *)
  response_times : Detmt_stats.Summary.t;
  mutable replies : int;
  mutable reply_times : float list; (* arrival times at clients, reversed *)
  (* nested invocations outstanding: (tid, call_index) -> (service, dur) *)
  outstanding_nested : (int * int, int * float) Hashtbl.t;
  mutable dummy_seq : int;
}

let leader_id t = Group.leader t.grp

let is_leader t id = leader_id t = id

(* Every replica registers the outstanding call (so a view change can
   re-issue calls the dead invoker never completed); only the invoker
   schedules the external service. *)
let register_nested t ~tid ~call_index ~service ~duration =
  if not (Hashtbl.mem t.outstanding_nested (tid, call_index)) then
    Hashtbl.replace t.outstanding_nested (tid, call_index) (service, duration)

let perform_nested t ~by ~tid ~call_index ~service ~duration =
  register_nested t ~tid ~call_index ~service ~duration;
  Engine.schedule t.engine ~delay:duration (fun () ->
      (* Do not answer twice, and a replica that died while the external call
         was in flight cannot spread the reply (the new leader re-issues). *)
      if
        Hashtbl.mem t.outstanding_nested (tid, call_index)
        && Group.alive t.grp by
      then begin
        Totem.count_kind t.bus "nested-reply";
        ignore
          (Totem.broadcast t.bus ~sender:(-2)
             (P_nested_reply { tid; call_index }))
      end)

let inject_dummy t ~from_replica =
  (* Every replica's PDS timer fires; only the leader broadcasts so the
     group sees each filler exactly once. *)
  if is_leader t from_replica then begin
    t.dummy_seq <- t.dummy_seq + 1;
    Totem.count_kind t.bus "pds-dummy";
    ignore
      (Totem.broadcast t.bus ~sender:(-1)
         (P_request
            { client = -1; client_req = t.dummy_seq; meth = "__dummy";
              args = [||]; sent_at = Engine.now t.engine; dummy = true }))
  end

let on_first_reply t (req : Request.t) =
  let key = (req.client, req.client_req) in
  match Hashtbl.find_opt t.reply_waiters key with
  | None -> () (* later replicas' replies for an already-answered request *)
  | Some (sent_at, callback) ->
    Hashtbl.remove t.reply_waiters key;
    let response_ms =
      Engine.now t.engine +. t.params.client_latency_ms -. sent_at
    in
    Detmt_stats.Summary.add t.response_times response_ms;
    t.replies <- t.replies + 1;
    t.reply_times <-
      (Engine.now t.engine +. t.params.client_latency_ms) :: t.reply_times;
    callback ~response_ms

let make_replica t ~engine ~cls ~id =
  let callbacks =
    { Replica.send_reply =
        (fun req ->
          Engine.schedule engine ~delay:t.params.client_latency_ms (fun () ->
              on_first_reply t req));
      do_nested =
        (fun ~tid ~call_index ~service ~duration ->
          register_nested t ~tid ~call_index ~service ~duration;
          if is_leader t id then
            perform_nested t ~by:id ~tid ~call_index ~service ~duration);
      broadcast_control =
        (fun control ->
          Totem.count_kind t.bus "control";
          ignore (Totem.broadcast t.bus ~sender:id (P_control control)));
      inject_dummy = (fun () -> inject_dummy t ~from_replica:id);
      is_leader = (fun () -> is_leader t id) }
  in
  let make_sched actions =
    t.scheduler.make ~config:t.params.config ~summary:t.summary actions
  in
  Replica.create ~engine ~id ~cls ~config:t.params.config ~callbacks
    ~make_sched ()

let deliver t replica (msg : payload Message.t) =
  let id = Replica.id replica in
  match msg.payload with
  | P_request { client; client_req; meth; args; sent_at; dummy } ->
    if not (Dedup.mark t.dedups.(id) ~client ~request:client_req) then begin
      let req =
        { Request.uid = msg.seq; client; client_req; meth; args; sent_at;
          dummy }
      in
      Replica.deliver_request replica req
    end
  | P_nested_reply { tid; call_index } ->
    Hashtbl.remove t.outstanding_nested (tid, call_index);
    Replica.nested_reply replica ~tid ~call_index
  | P_control control -> Replica.deliver_control replica ~sender:msg.sender control

let create ~engine ~cls ~(params : params) () =
  let scheduler = Detmt_sched.Registry.find_exn params.scheduler in
  let cls', summary =
    if scheduler.needs_prediction then
      let c, s = Detmt_transform.Transform.predictive cls in
      (c, Some s)
    else (Detmt_transform.Transform.basic cls, None)
  in
  let latency ~sender:_ ~dest:_ = params.net_latency_ms in
  let bus = Totem.create ~latency engine in
  let members = List.init params.replicas (fun i -> i) in
  let grp =
    Group.create engine ~members
      ~detection_timeout_ms:params.detection_timeout_ms
  in
  let t =
    { engine; params; bus; grp; members = []; summary; scheduler;
      dedups = Array.init params.replicas (fun _ -> Dedup.create ());
      reply_waiters = Hashtbl.create 256;
      response_times = Detmt_stats.Summary.create (); replies = 0;
      reply_times = [];
      outstanding_nested = Hashtbl.create 64; dummy_seq = 0 }
  in
  let replicas =
    List.map (fun id -> make_replica t ~engine ~cls:cls' ~id) members
  in
  t.members <- replicas;
  List.iter
    (fun r ->
      Totem.subscribe bus ~id:(Replica.id r) (fun msg -> deliver t r msg))
    replicas;
  (* On a view change the new leader re-issues outstanding nested calls the
     dead leader may never have completed. *)
  Group.on_view_change grp (fun view ->
      (* Tell every surviving scheduler about the new view (a promoted LSA
         leader must drain the old leader's published decisions and take
         over); then re-issue nested calls the dead invoker left behind. *)
      List.iter
        (fun r ->
          if Replica.alive r then
            Replica.deliver_control r ~sender:(-1)
              (Detmt_runtime.Sched_iface.Custom "view-change"))
        t.members;
      let pending =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.outstanding_nested []
        |> List.sort compare
      in
      List.iter
        (fun ((tid, call_index), (service, duration)) ->
          perform_nested t ~by:view.Group.leader ~tid ~call_index ~service
            ~duration)
        pending);
  t

let submit t ~client ~client_req ~meth ~args ~on_reply =
  let sent_at = Engine.now t.engine in
  Hashtbl.replace t.reply_waiters (client, client_req) (sent_at, on_reply);
  (* client -> sequencer latency before the totally-ordered broadcast *)
  Engine.schedule t.engine ~delay:t.params.client_latency_ms (fun () ->
      Totem.count_kind t.bus "request";
      ignore
        (Totem.broadcast t.bus ~sender:(1000 + client)
           (P_request { client; client_req; meth; args; sent_at;
                        dummy = false })))

let engine t = t.engine

let replicas t = t.members

let live_replicas t = List.filter Replica.alive t.members

let group t = t.grp

let kill_replica t id =
  List.iter
    (fun r -> if Replica.id r = id then Replica.set_alive r false)
    t.members;
  Totem.set_alive t.bus id false;
  Group.kill t.grp id

let response_times t = t.response_times

let replies_received t = t.replies

let reply_times t = List.rev t.reply_times

let message_stats t = Totem.kind_counts t.bus

let broadcasts t = Totem.broadcasts t.bus

let summary t = t.summary

let scheduler_name t = t.scheduler.name
