(** Take-over-time analysis (section 3.5).

    "In case of a failure this [leader dependence] might lead to a high
    take-over time [for LSA] that does not exist for MAT and the other
    algorithms, as they treat all replicas equally."

    The take-over time is observed at the clients: the largest hole in the
    reply stream around the failure, compared against the typical inter-reply
    gap before the failure. *)

type analysis = {
  kill_at : float;
  gap_before_ms : float;
      (** largest inter-reply gap while the killed replica was alive *)
  gap_after_ms : float;
      (** largest inter-reply gap in the window after the failure *)
  takeover_ms : float;  (** [gap_after_ms - gap_before_ms], floored at 0 *)
  replies_after : int;
}

val kill_and_measure :
  system:Active.t -> replica:int -> at:float -> unit
(** Schedule the failure: the replica stops executing, the bus stops
    delivering to it, and the group detects the failure after its timeout. *)

val analyze : system:Active.t -> kill_at:float -> analysis
(** Run after the simulation finished. *)

val pp : Format.formatter -> analysis -> unit
