(** Active replication of one object group.

    Wires the whole system together: a total-order bus carrying client
    requests, nested-invocation replies and scheduler control messages; [n]
    replicas each running the same instrumented class under the same
    deterministic scheduler; simulated external services for nested
    invocations; and duplicate suppression.

    Nested invocations follow section 2: only one replica (the current
    leader) performs the external call, and the reply is spread to all
    replicas through the bus, so every replica resumes the thread at the same
    total-order position. *)

type t

type params = {
  replicas : int;
  scheduler : string;  (** a {!Detmt_sched.Registry} name *)
  config : Detmt_runtime.Config.t;
  net_latency_ms : float;  (** replica <-> replica one-way latency *)
  client_latency_ms : float;  (** client <-> replica one-way latency *)
  detection_timeout_ms : float;  (** failure-detection delay *)
}

val default_params : params

val create :
  engine:Detmt_sim.Engine.t ->
  cls:Detmt_lang.Class_def.t ->
  params:params ->
  unit ->
  t
(** [cls] is the {e source} class: the constructor applies the transformation
    the chosen scheduler needs (basic or predictive). *)

val submit :
  t ->
  client:int ->
  client_req:int ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  on_reply:(response_ms:float -> unit) ->
  unit
(** Broadcast one request; [on_reply] fires at the client when the first
    replica reply arrives, with the end-to-end response time. *)

val engine : t -> Detmt_sim.Engine.t

val replicas : t -> Detmt_runtime.Replica.t list

val live_replicas : t -> Detmt_runtime.Replica.t list

val group : t -> Detmt_gcs.Group.t

val kill_replica : t -> int -> unit
(** Fail a replica now: it stops executing and receiving. *)

val response_times : t -> Detmt_stats.Summary.t

val replies_received : t -> int

val reply_times : t -> float list
(** Client-side reply arrival times, in order — input to the take-over-time
    analysis. *)

val message_stats : t -> (string * int) list
(** Broadcast counts by category (requests, nested replies, control,
    dummies). *)

val broadcasts : t -> int

val summary : t -> Detmt_analysis.Predict.class_summary option
(** The prediction summary, when the scheduler required the predictive
    transformation. *)

val scheduler_name : t -> string
