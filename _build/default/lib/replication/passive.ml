open Detmt_sim
open Detmt_runtime

type entry = {
  client : int;
  client_req : int;
  meth : string;
  args : Detmt_lang.Ast.value array;
}

type checkpoint = { position : int; state : (string * int) list }

type t = {
  cls : Detmt_lang.Class_def.t;
  scheduler : string;
  config : Config.t;
  system : Active.t; (* single-replica group: the primary *)
  mutable log : entry list; (* reversed *)
  mutable log_len : int;
}

let single_replica_params scheduler config =
  { Active.default_params with replicas = 1; scheduler; config }

let create ~engine ~cls ~scheduler ?(config = Config.default) () =
  let system =
    Active.create ~engine ~cls
      ~params:(single_replica_params scheduler config) ()
  in
  { cls; scheduler; config; system; log = []; log_len = 0 }

let submit t ~client ~client_req ~meth ~args ~on_reply =
  t.log <- { client; client_req; meth; args } :: t.log;
  t.log_len <- t.log_len + 1;
  Active.submit t.system ~client ~client_req ~meth ~args ~on_reply

let primary t =
  match Active.replicas t.system with
  | [ r ] -> r
  | _ -> assert false

let log_length t = t.log_len

let checkpoint t =
  let p = primary t in
  if Replica.active_threads p > 0 then
    invalid_arg "Passive.checkpoint: primary is not quiescent";
  { position = t.log_len; state = Replica.state_snapshot p }

let replay t ?from () =
  let start_pos, state =
    match from with
    | None -> (0, [])
    | Some cp -> (cp.position, cp.state)
  in
  let entries =
    List.filteri (fun i _ -> i >= start_pos) (List.rev t.log)
  in
  (* A fresh backup with its own virtual timeline re-executes the suffix in
     log order — one request completing before the next is submitted is the
     strongest form of "same total order". *)
  let engine = Engine.create () in
  let backup_sys =
    Active.create ~engine ~cls:t.cls
      ~params:(single_replica_params t.scheduler t.config) ()
  in
  let backup =
    match Active.replicas backup_sys with [ r ] -> r | _ -> assert false
  in
  List.iter
    (fun (f, v) -> Object_state.set_state (Replica.object_state backup) f v)
    state;
  List.iter
    (fun e ->
      Active.submit backup_sys ~client:e.client ~client_req:e.client_req
        ~meth:e.meth ~args:e.args ~on_reply:(fun ~response_ms:_ -> ());
      Engine.run engine)
    entries;
  Engine.run engine;
  backup
