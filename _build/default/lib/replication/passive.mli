(** Passive replication: primary-backup with request-log re-execution.

    "State modifications not yet propagated to the backup replicas can be
    applied to them by re-executing method invocations from a request log.
    Such re-executions are consistent to the state of a failed primary only
    if a deterministic scheduling strategy is used."

    The primary executes requests under a deterministic scheduler and logs
    them; {!checkpoint} captures the object state at a quiescent point;
    {!replay} re-executes the log (optionally from a checkpoint) on a fresh
    backup and returns it, so callers can compare fingerprints. *)

type t

type checkpoint

val create :
  engine:Detmt_sim.Engine.t ->
  cls:Detmt_lang.Class_def.t ->
  scheduler:string ->
  ?config:Detmt_runtime.Config.t ->
  unit ->
  t

val submit :
  t ->
  client:int ->
  client_req:int ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  on_reply:(response_ms:float -> unit) ->
  unit

val primary : t -> Detmt_runtime.Replica.t

val log_length : t -> int

val checkpoint : t -> checkpoint
(** Capture the primary state.  Must be taken at a quiescent point (no
    active threads); raises otherwise. *)

val replay : t -> ?from:checkpoint -> unit -> Detmt_runtime.Replica.t
(** Re-execute the logged requests (all of them, or only those after [from])
    on a fresh backup replica with its own engine, run to completion, and
    return the backup. *)
