open Detmt_lang

type mutex_set = Top | Known of int list
[@@deriving show { with_path = false }, eq]

let this_mutex = -1

let union a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Known xs, Known ys -> Known (List.sort_uniq compare (xs @ ys))

let empty = Known []

let may_interfere a b =
  match (a, b) with
  | Top, _ | _, Top -> true
  | Known xs, Known ys -> List.exists (fun x -> List.mem x ys) xs

(* Abstract value of a mutex expression, given the abstract environment of
   locals and fields. *)
let abstract_mexpr ~fields ~locals = function
  | Ast.Mconst m -> Known [ m ]
  | Ast.Marg _ -> Top (* request-supplied *)
  | Ast.Mlocal v -> (
    match Hashtbl.find_opt locals v with Some s -> s | None -> Top)
  | Ast.Mfield f -> (
    match Hashtbl.find_opt fields f with Some s -> s | None -> Top)
  | Ast.Mglobal _ -> assert false (* handled via class globals below *)
  | Ast.Mcall _ -> Top

let abstract_param cls ~fields ~locals = function
  | Ast.Sp_this -> Known [ this_mutex ]
  | Ast.Sp_arg _ -> Top
  | Ast.Sp_local v -> (
    match Hashtbl.find_opt locals v with Some s -> s | None -> Top)
  | Ast.Sp_field f -> (
    match Hashtbl.find_opt fields f with Some s -> s | None -> Top)
  | Ast.Sp_global g -> (
    match List.assoc_opt g cls.Class_def.globals with
    | Some id -> Known [ id ]
    | None -> Top)
  | Ast.Sp_call _ -> Top

(* Flow-insensitive abstract values of the class's mutex fields: the initial
   value joined with every assignment anywhere in the class. *)
let field_env cls =
  let fields = Hashtbl.create 8 in
  List.iter
    (fun (f, init) -> Hashtbl.replace fields f (Known [ init ]))
    cls.Class_def.mutex_fields;
  let locals = Hashtbl.create 8 in
  let rec scan_stmt = function
    | Ast.Assign_field (f, e) ->
      let prev =
        Option.value ~default:empty (Hashtbl.find_opt fields f)
      in
      Hashtbl.replace fields f (union prev (abstract_mexpr ~fields ~locals e))
    | Ast.Sync (_, b) | Ast.Loop { body = b; _ } -> List.iter scan_stmt b
    | Ast.If (_, a, b) ->
      List.iter scan_stmt a;
      List.iter scan_stmt b
    | Ast.Compute _ | Ast.Assign _ | Ast.Lock_acquire _ | Ast.Lock_release _
    | Ast.Wait _ | Ast.Wait_until _ | Ast.Notify _ | Ast.Nested _
    | Ast.State_update _ | Ast.Call _ | Ast.Virtual_call _ | Ast.Sched_lock _
    | Ast.Sched_unlock _ | Ast.Lockinfo _ | Ast.Ignore_sync _
    | Ast.Loop_enter _ | Ast.Loop_exit _
      ->
      ()
  in
  List.iter
    (fun (m : Class_def.method_def) -> List.iter scan_stmt m.body)
    cls.Class_def.methods;
  (* A field assigned a request-dependent value is conservatively re-scanned
     once: assignments reading other fields pick up their final abstraction.
     One extra pass reaches the fixpoint because the lattice has height 2
     per field (Known -> Top). *)
  List.iter
    (fun (m : Class_def.method_def) -> List.iter scan_stmt m.body)
    cls.Class_def.methods;
  fields

(* One pass over a method body given the current per-method sets (for call
   edges); flow-insensitive local environment built on the fly. *)
let method_pass cls ~fields ~method_sets (m : Class_def.method_def) =
  let locals = Hashtbl.create 8 in
  let acc = ref empty in
  let add s = acc := union !acc s in
  let callee name =
    match Hashtbl.find_opt method_sets name with
    | Some s -> s
    | None -> Top (* undefined method: opaque *)
  in
  let rec scan_stmt = function
    | Ast.Assign (v, e) ->
      let prev = Option.value ~default:empty (Hashtbl.find_opt locals v) in
      Hashtbl.replace locals v (union prev (abstract_mexpr ~fields ~locals e))
    | Ast.Sync (p, b) ->
      add (abstract_param cls ~fields ~locals p);
      List.iter scan_stmt b
    | Ast.Sched_lock (_, p) | Ast.Lock_acquire p ->
      add (abstract_param cls ~fields ~locals p)
    | Ast.Lock_release _ -> ()
    | Ast.Loop { body = b; _ } -> List.iter scan_stmt b
    | Ast.If (_, a, b) ->
      List.iter scan_stmt a;
      List.iter scan_stmt b
    | Ast.Call name -> add (callee name)
    | Ast.Virtual_call { candidates; _ } ->
      List.iter (fun c -> add (callee c)) candidates
    | Ast.Compute _ | Ast.Assign_field _ | Ast.Wait _ | Ast.Wait_until _
    | Ast.Notify _ | Ast.Nested _ | Ast.State_update _ | Ast.Sched_unlock _
    | Ast.Lockinfo _ | Ast.Ignore_sync _ | Ast.Loop_enter _ | Ast.Loop_exit _
      ->
      ()
  in
  List.iter scan_stmt m.body;
  !acc

let all_method_sets cls =
  let fields = field_env cls in
  let method_sets = Hashtbl.create 8 in
  List.iter
    (fun (m : Class_def.method_def) ->
      Hashtbl.replace method_sets m.Class_def.name empty)
    cls.Class_def.methods;
  (* Fixpoint over the call graph: sets only grow, and the lattice height is
     bounded, so iteration terminates (recursion included). *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (m : Class_def.method_def) ->
        let s = method_pass cls ~fields ~method_sets m in
        if not (equal_mutex_set s (Hashtbl.find method_sets m.name)) then begin
          Hashtbl.replace method_sets m.name s;
          changed := true
        end)
      cls.Class_def.methods
  done;
  method_sets

let method_mutexes cls ~meth =
  match Hashtbl.find_opt (all_method_sets cls) meth with
  | Some s -> s
  | None -> invalid_arg ("Interference.method_mutexes: no method " ^ meth)

type report = {
  class_name : string;
  sets : (string * mutex_set) list;
  independent_pairs : (string * string) list;
}

let analyse cls =
  let method_sets = all_method_sets cls in
  let starts = Class_def.start_methods cls in
  let sets =
    List.map
      (fun (m : Class_def.method_def) ->
        (m.name, Hashtbl.find method_sets m.name))
      starts
  in
  let independent_pairs =
    List.concat_map
      (fun (a, sa) ->
        List.filter_map
          (fun (b, sb) ->
            if a < b && not (may_interfere sa sb) then Some (a, b) else None)
          sets)
      sets
  in
  { class_name = cls.cname; sets; independent_pairs }

let pp_report ppf r =
  Format.fprintf ppf "interference analysis of %s:@." r.class_name;
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "  %-20s %s@." name (show_mutex_set s))
    r.sets;
  match r.independent_pairs with
  | [] -> Format.fprintf ppf "  (no provably independent method pairs)@."
  | pairs ->
    List.iter
      (fun (a, b) -> Format.fprintf ppf "  %s and %s never interfere@." a b)
      pairs
