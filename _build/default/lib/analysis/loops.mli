(** Classification of locking inside loops (section 4.4, first relaxation).

    A loop is {e fixed} when every synchronized block it (transitively)
    contains locks a parameter that is non-spontaneous and not assigned within
    the loop — the set of mutexes is known before the loop starts, only the
    locking quantity is unknown.  Otherwise the loop is {e changing}: the
    thread can only be considered predicted after the loop has finished. *)

type kind = Fixed_mutexes | Changing [@@deriving show, eq]

val sync_params_in : Detmt_lang.Ast.block -> Detmt_lang.Ast.sync_param list
(** All synchronisation parameters of sync blocks in the given block,
    transitively (including nested loops), in pre-order. *)

val contains_sync : Detmt_lang.Ast.block -> bool

val classify_loop :
  Param_class.profile -> body:Detmt_lang.Ast.block -> kind
(** Classify a loop given the assignment profile of the enclosing method.
    [Param_class.classify] already demotes locals assigned inside any loop to
    spontaneous, so a loop is [Fixed_mutexes] iff every contained sync
    parameter classifies as announceable. *)

val static_bound : Detmt_lang.Ast.count -> int option
(** The statically known iteration upper bound of a loop count (section 5);
    [None] when the count travels in the request. *)
