lib/analysis/syncid.pp.mli:
