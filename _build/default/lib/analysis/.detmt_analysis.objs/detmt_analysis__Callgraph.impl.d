lib/analysis/callgraph.pp.ml: Ast Class_def Detmt_lang Hashtbl List String
