lib/analysis/interference.pp.mli: Detmt_lang Format Ppx_deriving_runtime
