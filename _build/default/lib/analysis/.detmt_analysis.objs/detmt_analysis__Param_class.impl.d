lib/analysis/param_class.pp.ml: Ast Detmt_lang Hashtbl List Ppx_deriving_runtime
