lib/analysis/param_class.pp.mli: Detmt_lang Ppx_deriving_runtime
