lib/analysis/predict.pp.ml: Detmt_lang List Param_class Ppx_deriving_runtime String
