lib/analysis/loops.pp.ml: Ast Detmt_lang List Param_class Ppx_deriving_runtime
