lib/analysis/last_lock.pp.ml: Ast Class_def Detmt_lang List Paths Ppx_deriving_runtime
