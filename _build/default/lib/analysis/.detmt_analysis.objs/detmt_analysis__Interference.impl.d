lib/analysis/interference.pp.ml: Ast Class_def Detmt_lang Format Hashtbl List Option Ppx_deriving_runtime
