lib/analysis/last_lock.pp.mli: Detmt_lang Ppx_deriving_runtime
