lib/analysis/paths.pp.mli: Ast Detmt_lang Ppx_deriving_runtime
