lib/analysis/syncid.pp.ml:
