lib/analysis/callgraph.pp.mli: Detmt_lang
