lib/analysis/predict.pp.mli: Detmt_lang Param_class Ppx_deriving_runtime
