lib/analysis/paths.pp.ml: Ast Detmt_lang List Ppx_deriving_runtime
