(** Static interference analysis (section 5 future work: "sophisticated data
    flow analysis that may help to statically determine which threads will
    never interfere at all").

    For every start method the analysis computes an over-approximation of the
    mutexes its threads can ever lock.  Two methods {e may interfere} when
    those sets can overlap; methods whose sets are provably disjoint can be
    scheduled without any mutual conflict checks, whatever their requests
    carry.

    Abstraction of a synchronisation parameter:
    - [this] — the object's own monitor (one known id per object);
    - a constant, instance field or global — the statically known initial id
      (fields are tracked only when never reassigned);
    - a method parameter, a local fed from a parameter, or a call result —
      {e any} mutex ([Top]): requests choose it at run time.

    The result is sound for the transformed program: a [Top] set interferes
    with everything, so prediction never under-approximates. *)

type mutex_set =
  | Top  (** may lock anything (a request-supplied or opaque mutex) *)
  | Known of int list  (** locks only these ids (sorted); [this] = -1 *)
[@@deriving show, eq]

val this_mutex : int
(** The abstract id used for the object's own monitor. *)

val method_mutexes : Detmt_lang.Class_def.t -> meth:string -> mutex_set
(** Over-approximate the mutexes reachable from a start method, following
    calls (virtual candidates included); recursion is handled by fixpoint. *)

val may_interfere : mutex_set -> mutex_set -> bool

type report = {
  class_name : string;
  sets : (string * mutex_set) list;  (** per start method *)
  independent_pairs : (string * string) list;
      (** start-method pairs that can never interfere *)
}

val analyse : Detmt_lang.Class_def.t -> report

val pp_report : Format.formatter -> report -> unit
