type t = { mutable next_sync : int; mutable next_loop : int }

let create () = { next_sync = 1; next_loop = 1 }

let fresh_sync t =
  let id = t.next_sync in
  t.next_sync <- id + 1;
  id

let fresh_loop t =
  let id = t.next_loop in
  t.next_loop <- id + 1;
  id

let sync_count t = t.next_sync - 1

let loop_count t = t.next_loop - 1
