open Detmt_lang

type edge_kind = Static | Virtual

type t = {
  cls : Class_def.t;
  edges : (string * string * edge_kind) list; (* caller, callee, kind *)
}

let rec stmt_callees acc = function
  | Ast.Call m -> (m, Static) :: acc
  | Ast.Virtual_call { candidates; selector = _ } ->
    List.fold_left (fun acc m -> (m, Virtual) :: acc) acc candidates
  | Ast.Sync (_, body) -> block_callees acc body
  | Ast.If (_, a, b) -> block_callees (block_callees acc a) b
  | Ast.Loop { body; _ } -> block_callees acc body
  | Ast.Compute _ | Ast.Assign _ | Ast.Assign_field _ | Ast.Lock_acquire _
  | Ast.Lock_release _ | Ast.Wait _ | Ast.Wait_until _ | Ast.Notify _
  | Ast.Nested _ | Ast.State_update _ | Ast.Sched_lock _ | Ast.Sched_unlock _
  | Ast.Lockinfo _ | Ast.Ignore_sync _ | Ast.Loop_enter _ | Ast.Loop_exit _ ->
    acc

and block_callees acc body = List.fold_left stmt_callees acc body

let build cls =
  let edges =
    List.concat_map
      (fun (m : Class_def.method_def) ->
        block_callees [] m.body
        |> List.rev_map (fun (callee, kind) -> (m.name, callee, kind)))
      cls.Class_def.methods
  in
  { cls; edges }

let callees t name =
  let direct =
    List.filter_map
      (fun (caller, callee, _) ->
        if String.equal caller name then Some callee else None)
      t.edges
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    direct

let reachable t name =
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit m =
    if not (Hashtbl.mem visited m) then begin
      Hashtbl.add visited m ();
      order := m :: !order;
      List.iter visit (callees t m)
    end
  in
  visit name;
  List.rev !order

let recursive_methods t =
  (* A method is recursive iff it can reach itself through at least one call
     edge. *)
  let can_reach_self m =
    List.exists (fun callee -> List.mem m (reachable t callee)) (callees t m)
  in
  List.filter can_reach_self (Class_def.method_names t.cls)

let in_recursion t name =
  let cyclic = recursive_methods t in
  List.exists (fun m -> List.mem m cyclic) (reachable t name)

let non_final_calls t start =
  let methods_from = reachable t start in
  List.filter_map
    (fun (caller, callee, kind) ->
      if not (List.mem caller methods_from) then None
      else
        match Class_def.find_method t.cls callee with
        | None -> Some (caller, callee) (* undefined: treat as unanalysable *)
        | Some def ->
          if (not def.final) || kind = Virtual then Some (caller, callee)
          else None)
    t.edges
