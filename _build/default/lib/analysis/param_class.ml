open Detmt_lang

type spontaneous_reason =
  | Field
  | Global
  | Call_result
  | Multi_assigned
  | Assigned_in_loop
  | Unassigned
[@@deriving show { with_path = false }, eq]

type t =
  | Announce_at_entry
  | Announce_after_assign of string
  | Spontaneous of spontaneous_reason
[@@deriving show { with_path = false }, eq]

type profile = (string, int * bool) Hashtbl.t
(* local name -> (assignment count, any assignment inside a loop) *)

let record tbl ~in_loop v =
  let count, looped =
    match Hashtbl.find_opt tbl v with Some p -> p | None -> (0, false)
  in
  Hashtbl.replace tbl v (count + 1, looped || in_loop)

let rec scan_stmt tbl ~in_loop = function
  | Ast.Assign (v, _) -> record tbl ~in_loop v
  | Ast.Sync (_, body) -> scan_block tbl ~in_loop body
  | Ast.If (_, a, b) ->
    scan_block tbl ~in_loop a;
    scan_block tbl ~in_loop b
  | Ast.Loop { body; _ } -> scan_block tbl ~in_loop:true body
  | Ast.Compute _ | Ast.Assign_field _ | Ast.Lock_acquire _
  | Ast.Lock_release _ | Ast.Wait _ | Ast.Wait_until _ | Ast.Notify _
  | Ast.Nested _ | Ast.State_update _ | Ast.Call _ | Ast.Virtual_call _
  | Ast.Sched_lock _ | Ast.Sched_unlock _ | Ast.Lockinfo _ | Ast.Ignore_sync _
  | Ast.Loop_enter _ | Ast.Loop_exit _ ->
    ()

and scan_block tbl ~in_loop body = List.iter (scan_stmt tbl ~in_loop) body

let profile body =
  let tbl = Hashtbl.create 16 in
  scan_block tbl ~in_loop:false body;
  tbl

let classify prof = function
  | Ast.Sp_this -> Announce_at_entry
  | Ast.Sp_arg _ -> Announce_at_entry
  | Ast.Sp_field _ -> Spontaneous Field
  | Ast.Sp_global _ -> Spontaneous Global
  | Ast.Sp_call _ -> Spontaneous Call_result
  | Ast.Sp_local v -> (
    match Hashtbl.find_opt prof v with
    | None -> Spontaneous Unassigned
    | Some (1, false) -> Announce_after_assign v
    | Some (1, true) -> Spontaneous Assigned_in_loop
    | Some (_, _) -> Spontaneous Multi_assigned)

let is_spontaneous = function
  | Spontaneous _ -> true
  | Announce_at_entry | Announce_after_assign _ -> false
