open Detmt_lang

type path_report = {
  locks : int list;
  last : int option;
  tail_compute_ms : float;
  tail_has_unknown : bool;
}
[@@deriving show { with_path = false }, eq]

type report = {
  mname : string;
  all_sids : int list;
  final_sids : int list;
  paths : path_report list;
  max_tail_compute_ms : float;
}
[@@deriving show { with_path = false }, eq]

let path_report path =
  let locks = Paths.locks_of_path path in
  let last = match List.rev locks with [] -> None | sid :: _ -> Some sid in
  (* Events after the final unlock form the tail computation. *)
  let tail =
    let rec strip_to_last_unlock acc = function
      | [] -> acc
      | Paths.E_unlock _ :: rest -> strip_to_last_unlock rest rest
      | _ :: rest -> strip_to_last_unlock acc rest
    in
    strip_to_last_unlock path path
  in
  let tail_compute_ms, tail_has_unknown =
    List.fold_left
      (fun (ms, unknown) ev ->
        match ev with
        | Paths.E_compute (Ast.Fixed d) -> (ms +. d, unknown)
        | Paths.E_compute (Ast.Arg_dur _) -> (ms, true)
        | _ -> (ms, unknown))
      (0.0, false) tail
  in
  let tail_compute_ms = if last = None then 0.0 else tail_compute_ms in
  { locks; last; tail_compute_ms; tail_has_unknown }

let analyse ?max_paths ?resolve cls ~meth =
  let m = Class_def.find_method_exn cls meth in
  let paths = Paths.enumerate ?max_paths ?resolve m.body in
  let reports = List.map path_report paths in
  let all_sids = Paths.sids_of paths in
  let final_sids =
    List.filter_map (fun r -> r.last) reports |> List.sort_uniq compare
  in
  let max_tail =
    List.fold_left (fun acc r -> max acc r.tail_compute_ms) 0.0 reports
  in
  { mname = meth; all_sids; final_sids; paths = reports;
    max_tail_compute_ms = max_tail }
