(** Execution-path enumeration.

    Section 4.1: "by code analysis, we can figure out all execution paths for
    all start methods and the syncids of the synchronized blocks on the
    paths."  A path is the sequence of synchronisation-relevant events along
    one resolution of every conditional.  Loops are not unrolled: each loop
    contributes a zero-iteration and a one-iteration variant, which is enough
    to check instrumentation coverage (per-iteration behaviour is handled by
    the loop markers at run time). *)

open Detmt_lang

type event =
  | E_lock of int * Ast.sync_param
  | E_unlock of int * Ast.sync_param
  | E_lockinfo of int * Ast.sync_param
  | E_ignore of int
  | E_loop_enter of int
  | E_loop_exit of int
  | E_wait of Ast.sync_param
  | E_notify of Ast.sync_param
  | E_nested of int
  | E_compute of Ast.dur
  | E_call of string  (** unresolved dynamic call *)
  | E_state of string
[@@deriving show, eq]

exception Too_many_paths of int

val enumerate :
  ?max_paths:int ->
  ?resolve:(string -> Ast.block option) ->
  Ast.block ->
  event list list
(** [enumerate body] returns every execution path.  Raw [Sync] blocks produce
    [E_lock]/[E_unlock] with syncid [-1]; instrumented programs produce the
    injected ids.  [resolve] inlines static calls (virtual calls always
    surface as [E_call]).  Raises {!Too_many_paths} beyond [max_paths]
    (default 10_000). *)

val locks_of_path : event list -> int list
(** Syncids of [E_lock] events, in order. *)

val sids_of : event list list -> int list
(** Sorted, de-duplicated syncids locked on at least one path. *)
