(** Classification of synchronisation parameters (section 4.2).

    [this], method parameters, and method-local variables whose last
    assignment is statically known are {e announceable}: the transformer can
    emit [scheduler.lockInfo] ahead of the lock.  Instance variables, globals
    and call results are {e spontaneous}: "the parameter is unknown until the
    locking happens."

    A local counts as announceable only when it has exactly one assignment in
    the (inlined) method body and that assignment is not inside a loop — then
    that assignment is provably the last one before any subsequent lock. *)

type spontaneous_reason =
  | Field  (** instance variable *)
  | Global  (** globally accessible object *)
  | Call_result  (** return value of a method call *)
  | Multi_assigned  (** local with several assignments: last one unknown *)
  | Assigned_in_loop  (** local assigned inside a loop: value may change *)
  | Unassigned  (** local never assigned (ill-formed program) *)
[@@deriving show, eq]

type t =
  | Announce_at_entry  (** [this] or a method parameter *)
  | Announce_after_assign of string
      (** after the unique assignment to this local *)
  | Spontaneous of spontaneous_reason
[@@deriving show, eq]

type profile
(** Assignment profile of one method body. *)

val profile : Detmt_lang.Ast.block -> profile
(** Scan a body for assignments to locals, recording multiplicity and whether
    any assignment occurs inside a loop. *)

val classify : profile -> Detmt_lang.Ast.sync_param -> t

val is_spontaneous : t -> bool
