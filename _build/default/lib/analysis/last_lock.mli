(** Last-lock analysis (section 4.1, Figure 2).

    "Usually, the last unlock is followed by a final computation. ...
    Providing the scheduler with information about when a thread's last lock
    has been released enables to change the primary even before thread
    termination."

    The static part of the optimisation is simply the per-start-method list of
    syncids plus [ignore] coverage of untaken paths (done by the transformer);
    the bookkeeping module then detects at run time that the list is
    exhausted.  This module reports the facts the optimisation exploits: which
    syncids can be a path's final lock and how much computation typically
    follows it. *)

type path_report = {
  locks : int list;  (** syncids locked along the path, in order *)
  last : int option;  (** final lock of the path, if any *)
  tail_compute_ms : float;
      (** fixed computation time after the path's last unlock *)
  tail_has_unknown : bool;
      (** an argument-valued duration follows the last unlock *)
}
[@@deriving show, eq]

type report = {
  mname : string;
  all_sids : int list;  (** every syncid on some path, sorted *)
  final_sids : int list;  (** syncids that are last on at least one path *)
  paths : path_report list;
  max_tail_compute_ms : float;
}
[@@deriving show, eq]

val analyse :
  ?max_paths:int ->
  ?resolve:(string -> Detmt_lang.Ast.block option) ->
  Detmt_lang.Class_def.t ->
  meth:string ->
  report
(** Analyse one (instrumented or raw) start method.
    @raise Invalid_argument when the method does not exist. *)
