(** Call graph of a class: static calls, virtual dispatch candidates,
    recursion detection and finality audit.

    Section 4 restricts prediction to programs where "all methods that are
    called are final" and "there is no recursion"; section 4.4 relaxes both.
    This module supplies the facts those decisions need. *)

type t

val build : Detmt_lang.Class_def.t -> t

val callees : t -> string -> string list
(** Direct callees (static and virtual candidates), duplicates removed,
    in first-occurrence order. *)

val reachable : t -> string -> string list
(** All methods reachable from the given method, including itself. *)

val recursive_methods : t -> string list
(** Methods that participate in a call cycle (including self-recursion). *)

val in_recursion : t -> string -> bool
(** Whether the method can reach a call cycle (so path-based prediction must
    fall back, section 4.4 third restriction). *)

val non_final_calls : t -> string -> (string * string) list
(** [(caller, callee)] pairs reachable from the given start method where the
    callee is not final — the section 4.4 second restriction.  Virtual
    dispatch candidates are always included here. *)
