(** Allocation of globally unique sync and loop identifiers.

    Section 4.1: "a list of all synchronized blocks the programme flow can
    pass is necessary.  Each of them gets a globally unique syncid."  The
    allocator hands out syncids (for synchronized blocks) and loopids (for
    loops and opaque-call regions) from independent counters, both starting at
    1 to match the paper's examples. *)

type t

val create : unit -> t

val fresh_sync : t -> int

val fresh_loop : t -> int

val sync_count : t -> int
(** Number of syncids allocated so far. *)

val loop_count : t -> int
