open Detmt_lang

type event =
  | E_lock of int * Ast.sync_param
  | E_unlock of int * Ast.sync_param
  | E_lockinfo of int * Ast.sync_param
  | E_ignore of int
  | E_loop_enter of int
  | E_loop_exit of int
  | E_wait of Ast.sync_param
  | E_notify of Ast.sync_param
  | E_nested of int
  | E_compute of Ast.dur
  | E_call of string
  | E_state of string
[@@deriving show { with_path = false }, eq]

exception Too_many_paths of int

(* Paths are built as a cross product over statements: [stmt_paths] returns
   the event-sequence alternatives of one statement, [block_paths] the
   alternatives of a sequence.  The [budget] guards combinatorial blow-up. *)

let check_budget budget n = if n > budget then raise (Too_many_paths n)

let cross budget prefixes suffixes =
  check_budget budget (List.length prefixes * List.length suffixes);
  List.concat_map (fun p -> List.map (fun s -> p @ s) suffixes) prefixes

let rec stmt_paths budget resolve stmt : event list list =
  match stmt with
  | Ast.Compute d -> [ [ E_compute d ] ]
  | Ast.Assign _ | Ast.Assign_field _ -> [ [] ]
  | Ast.Sync (p, body) ->
    let inner = block_paths budget resolve body in
    List.map (fun path -> (E_lock (-1, p) :: path) @ [ E_unlock (-1, p) ])
      inner
  | Ast.Lock_acquire p -> [ [ E_lock (-1, p) ] ]
  | Ast.Lock_release p -> [ [ E_unlock (-1, p) ] ]
  | Ast.Wait p -> [ [ E_wait p ] ]
  | Ast.Wait_until { param; field = _; min = _ } -> [ [ E_wait param ] ]
  | Ast.Notify { param; all = _ } -> [ [ E_notify param ] ]
  | Ast.Nested { service; duration = _ } -> [ [ E_nested service ] ]
  | Ast.State_update (f, _) -> [ [ E_state f ] ]
  | Ast.If (_, a, b) ->
    let pa = block_paths budget resolve a in
    let pb = block_paths budget resolve b in
    check_budget budget (List.length pa + List.length pb);
    pa @ pb
  | Ast.Loop { body; _ } ->
    (* zero iterations, or one symbolic iteration *)
    let once = block_paths budget resolve body in
    check_budget budget (List.length once + 1);
    [] :: once
  | Ast.Call m -> (
    match resolve m with
    | Some body -> block_paths budget resolve body
    | None -> [ [ E_call m ] ])
  | Ast.Virtual_call { candidates; selector = _ } ->
    List.map (fun m -> [ E_call m ]) candidates
  | Ast.Sched_lock (sid, p) -> [ [ E_lock (sid, p) ] ]
  | Ast.Sched_unlock (sid, p) -> [ [ E_unlock (sid, p) ] ]
  | Ast.Lockinfo (sid, p) -> [ [ E_lockinfo (sid, p) ] ]
  | Ast.Ignore_sync sid -> [ [ E_ignore sid ] ]
  | Ast.Loop_enter lid -> [ [ E_loop_enter lid ] ]
  | Ast.Loop_exit lid -> [ [ E_loop_exit lid ] ]

and block_paths budget resolve body =
  List.fold_left
    (fun acc stmt -> cross budget acc (stmt_paths budget resolve stmt))
    [ [] ] body

let enumerate ?(max_paths = 10_000) ?(resolve = fun _ -> None) body =
  block_paths max_paths resolve body

let locks_of_path path =
  List.filter_map (function E_lock (sid, _) -> Some sid | _ -> None) path

let sids_of paths =
  List.concat_map locks_of_path paths |> List.sort_uniq compare
