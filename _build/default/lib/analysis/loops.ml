open Detmt_lang

type kind = Fixed_mutexes | Changing
[@@deriving show { with_path = false }, eq]

let rec params_of_stmt acc = function
  | Ast.Sync (p, body) -> params_of_block (p :: acc) body
  | Ast.Sched_lock (_, p) -> p :: acc
  | Ast.Lock_acquire p -> p :: acc
  | Ast.Lock_release _ -> acc
  | Ast.If (_, a, b) -> params_of_block (params_of_block acc a) b
  | Ast.Loop { body; _ } -> params_of_block acc body
  | Ast.Compute _ | Ast.Assign _ | Ast.Assign_field _ | Ast.Wait _
  | Ast.Wait_until _ | Ast.Notify _ | Ast.Nested _ | Ast.State_update _
  | Ast.Call _ | Ast.Virtual_call _ | Ast.Sched_unlock _ | Ast.Lockinfo _
  | Ast.Ignore_sync _ | Ast.Loop_enter _ | Ast.Loop_exit _ ->
    acc

and params_of_block acc body = List.fold_left params_of_stmt acc body

let sync_params_in body = List.rev (params_of_block [] body)

let contains_sync body = sync_params_in body <> []

let classify_loop prof ~body =
  let announceable p =
    not (Param_class.is_spontaneous (Param_class.classify prof p))
  in
  if List.for_all announceable (sync_params_in body) then Fixed_mutexes
  else Changing

(* Section 5: "this can also help to determine upper bounds for loops" —
   a constant count is its own bound; request-supplied counts are unknown
   statically. *)
let static_bound = function
  | Ast.Cfixed n -> Some (max 0 n)
  | Ast.Carg _ -> None
