(** First-order analytic performance model (section 5 future work:
    "providing a mathematical model for locks, methods and client
    interaction").

    A closed system of [clients] identical request loops is summarised by
    four workload quantities and reduced to its bottleneck:

    - [solo_ms] — a request's response time alone in the system,
    - each scheduler's {e serialised demand} per request: the portion that
      must execute under the scheduler's exclusivity discipline —
      everything for SEQ, the CPU demand for SAT/PDS (one active thread),
      the CPU demand past the pre-lock prefix for MAT (secondaries may
      compute until their first lock), and [cpu / cores] for LSA and
      predicted MAT on mostly-disjoint locks (only true conflicts
      serialise).

    The interactive response-time law for zero think time then gives
    [R(N) = max(solo, N * serialised_demand)].

    The model is deliberately first-order: it ignores queueing inside
    rounds (PDS), per-mutex collisions (PMAT) and network latencies.  The
    [model] experiment tabulates its predictions against the simulator; the
    headline behaviours (SEQ's slope, LSA's core-bound plateau, the
    SAT-vs-MAT gap growing with pre-lock computation) come out within a few
    percent — see EXPERIMENTS.md. *)

type workload = {
  clients : int;
  cores : int;
  solo_ms : float;  (** response time of a lone request *)
  cpu_ms : float;  (** CPU demand per request *)
  prelock_cpu_ms : float;  (** CPU demand before the first lock *)
  idle_ms : float;  (** nested-invocation idle time per request *)
}

val of_figure1 :
  ?config:Detmt_runtime.Config.t ->
  clients:int ->
  Detmt_workload.Figure1.params ->
  workload
(** Expected-value workload summary of the paper's benchmark, including the
    scheduler-call overheads from the runtime configuration. *)

val serialised_demand_ms : workload -> scheduler:string -> float
(** The per-request demand on the scheduler's bottleneck resource.
    @raise Invalid_argument for schedulers the model does not cover. *)

val predict_response_ms : workload -> scheduler:string -> float
(** [max(solo, clients * serialised demand)]. *)

val covered_schedulers : string list
(** seq, sat, pds, mat, lsa, pmat. *)
