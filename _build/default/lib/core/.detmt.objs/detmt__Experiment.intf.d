lib/core/experiment.mli: Detmt_analysis Detmt_lang Detmt_replication Detmt_sim Detmt_stats Detmt_workload
