lib/core/model.mli: Detmt_runtime Detmt_workload
