lib/core/model.ml: Detmt_runtime Detmt_workload Float
