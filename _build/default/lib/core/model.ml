type workload = {
  clients : int;
  cores : int;
  solo_ms : float;
  cpu_ms : float;
  prelock_cpu_ms : float;
  idle_ms : float;
}

let of_figure1 ?(config = Detmt_runtime.Config.default) ~clients
    (p : Detmt_workload.Figure1.params) =
  let iters = float_of_int p.iterations in
  let compute = iters *. p.p_compute *. p.compute_ms in
  let idle = iters *. p.p_nested *. p.nested_ms in
  (* Every iteration pays one lock and one unlock interception. *)
  let lock_cost = 2.0 *. iters *. config.Detmt_runtime.Config.lock_overhead_ms in
  let cpu =
    p.front_compute_ms +. compute +. lock_cost
    +. config.Detmt_runtime.Config.reply_build_ms
  in
  (* Before its first lock a thread runs the front computation plus, in
     expectation, the first iteration's optional computation. *)
  let prelock = p.front_compute_ms +. (p.p_compute *. p.compute_ms) in
  { clients; cores = config.Detmt_runtime.Config.cores;
    solo_ms = cpu +. idle; cpu_ms = cpu; prelock_cpu_ms = prelock;
    idle_ms = idle }

let serialised_demand_ms w ~scheduler =
  match scheduler with
  | "seq" ->
    (* One request start-to-finish at a time, idle time included. *)
    w.cpu_ms +. w.idle_ms
  | "sat" | "pds" ->
    (* A single thread is active; nested idle overlaps with other requests,
       every computation serialises.  (PDS additionally pays round barriers
       the first-order model ignores.) *)
    w.cpu_ms
  | "mat" | "mat-ll" ->
    (* Secondaries compute freely until their first lock; from then on the
       primary token serialises the rest. *)
    Float.max 0.0 (w.cpu_ms -. w.prelock_cpu_ms)
  | "lsa" | "pmat" ->
    (* Only genuine conflicts serialise; with mostly-disjoint locks the
       bottleneck is the CPU pool. *)
    w.cpu_ms /. float_of_int w.cores
  | other -> invalid_arg ("Model: no formula for scheduler " ^ other)

let predict_response_ms w ~scheduler =
  let demand = serialised_demand_ms w ~scheduler in
  Float.max w.solo_ms (float_of_int w.clients *. demand)

let covered_schedulers = [ "seq"; "sat"; "pds"; "mat"; "lsa"; "pmat" ]
