lib/gcs/message.ml: Format
