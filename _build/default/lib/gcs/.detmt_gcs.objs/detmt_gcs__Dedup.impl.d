lib/gcs/dedup.ml: Hashtbl
