lib/gcs/totem.mli: Detmt_sim Message
