lib/gcs/totem.ml: Detmt_sim Engine Float Hashtbl List Message Option Printf
