lib/gcs/group.mli: Detmt_sim
