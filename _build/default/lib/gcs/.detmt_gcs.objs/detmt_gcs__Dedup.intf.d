lib/gcs/dedup.mli:
