lib/gcs/group.ml: Detmt_sim Engine List
