lib/gcs/message.mli: Format
