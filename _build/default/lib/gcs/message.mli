(** Message envelopes delivered by the total-order broadcast. *)

type 'a t = {
  seq : int;  (** global total-order sequence number *)
  sender : int;
  sent_at : float;  (** virtual send time *)
  payload : 'a;
}

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
