open Detmt_sim

type view = { number : int; members : int list; leader : int }

type t = {
  engine : Engine.t;
  detection_timeout_ms : float;
  mutable view : view;
  mutable dead : int list;
  mutable callbacks : (view -> unit) list; (* reverse registration order *)
}

let make_view number members =
  match members with
  | [] -> invalid_arg "Group: view with no members"
  | _ -> { number; members; leader = List.fold_left min max_int members }

let create engine ~members ~detection_timeout_ms =
  if members = [] then invalid_arg "Group.create: empty member list";
  { engine; detection_timeout_ms; view = make_view 0 (List.sort compare members);
    dead = []; callbacks = [] }

let current_view t = t.view

let alive t id = not (List.mem id t.dead)

let leader t = t.view.leader

let on_view_change t f = t.callbacks <- f :: t.callbacks

let install_view t members =
  t.view <- make_view (t.view.number + 1) members;
  List.iter (fun f -> f t.view) (List.rev t.callbacks)

let kill t id =
  if not (List.mem id t.dead) then begin
    t.dead <- id :: t.dead;
    Engine.schedule t.engine ~delay:t.detection_timeout_ms (fun () ->
        (* Recompute survivors at detection time: several members may have
           failed while the timeout was running. *)
        let survivors =
          List.filter (fun m -> not (List.mem m t.dead)) t.view.members
        in
        if List.mem id t.view.members && survivors <> [] then
          install_view t survivors)
  end

let kill_at t id ~time =
  Engine.schedule_at t.engine ~time (fun () -> kill t id)
