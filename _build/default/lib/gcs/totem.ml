open Detmt_sim

type 'a subscriber = {
  id : int;
  handler : 'a Message.t -> unit;
  mutable alive : bool;
  mutable last_delivery : float;
      (* FIFO floor: deliveries to one subscriber never reorder even if the
         latency function is not monotone *)
}

type 'a t = {
  engine : Engine.t;
  latency : sender:int -> dest:int -> float;
  mutable subscribers : 'a subscriber list; (* in subscription order *)
  mutable next_seq : int;
  mutable broadcasts : int;
  mutable deliveries : int;
  kinds : (string, int) Hashtbl.t;
}

let default_latency ~sender:_ ~dest:_ = 0.5

let create ?(latency = default_latency) engine =
  { engine; latency; subscribers = []; next_seq = 0; broadcasts = 0;
    deliveries = 0; kinds = Hashtbl.create 8 }

let find t id = List.find_opt (fun s -> s.id = id) t.subscribers

let subscribe t ~id handler =
  if find t id <> None then
    invalid_arg (Printf.sprintf "Totem.subscribe: duplicate id %d" id);
  t.subscribers <-
    t.subscribers @ [ { id; handler; alive = true; last_delivery = 0.0 } ]

let broadcast t ~sender payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.broadcasts <- t.broadcasts + 1;
  let now = Engine.now t.engine in
  let msg = { Message.seq; sender; sent_at = now; payload } in
  let deliver_to sub =
    if sub.alive then begin
      t.deliveries <- t.deliveries + 1;
      let arrival = now +. t.latency ~sender ~dest:sub.id in
      let time = Float.max arrival sub.last_delivery in
      sub.last_delivery <- time;
      Engine.schedule_at t.engine ~time (fun () ->
          if sub.alive then sub.handler msg)
    end
  in
  List.iter deliver_to t.subscribers;
  seq

let set_alive t id alive =
  match find t id with
  | Some s -> s.alive <- alive
  | None -> invalid_arg (Printf.sprintf "Totem.set_alive: unknown id %d" id)

let is_alive t id =
  match find t id with Some s -> s.alive | None -> false

let broadcasts t = t.broadcasts

let deliveries t = t.deliveries

let count_kind t kind =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.kinds kind) in
  Hashtbl.replace t.kinds kind (n + 1)

let kind_counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.kinds []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
