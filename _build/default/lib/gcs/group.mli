(** Group membership with failure detection and view changes.

    A killed member stops participating immediately; the surviving members
    detect the failure after [detection_timeout_ms] and install a new view.
    The leader of a view is its lowest-numbered member — the take-over-time
    experiment (section 3.5: LSA "depends on the leader replica ... in case of
    a failure this might lead to a high take-over time") is built on this. *)

type view = { number : int; members : int list; leader : int }

type t

val create :
  Detmt_sim.Engine.t -> members:int list -> detection_timeout_ms:float -> t
(** @raise Invalid_argument on an empty member list. *)

val current_view : t -> view

val alive : t -> int -> bool

val leader : t -> int

val on_view_change : t -> (view -> unit) -> unit
(** Register a callback run when a new view is installed (after failure
    detection). Callbacks run in registration order. *)

val kill : t -> int -> unit
(** Mark a member failed now; the view change fires after the detection
    timeout.  Killing a dead member is a no-op. *)

val kill_at : t -> int -> time:float -> unit
(** Schedule a failure at an absolute virtual time. *)
