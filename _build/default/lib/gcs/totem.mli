(** Total-order broadcast over the simulated network.

    Models the consensus-based group communication system the paper relies on
    ("FTflex uses a group communication system to guarantee that each replica
    receives all messages in a total order"): every broadcast is stamped with
    a global sequence number and delivered to every live subscriber in
    sequence order, after a per-destination latency.  Messages to a dead
    subscriber are dropped.

    The per-broadcast cost (number of point-to-point deliveries) is counted so
    experiments can report the network load of chatty algorithms such as
    LSA. *)

type 'a t

val create :
  ?latency:(sender:int -> dest:int -> float) -> Detmt_sim.Engine.t -> 'a t
(** Default latency: 0.5 ms for every pair. *)

val subscribe : 'a t -> id:int -> ('a Message.t -> unit) -> unit
(** Register a destination.  Ids must be unique.
    @raise Invalid_argument on duplicate id. *)

val broadcast : 'a t -> sender:int -> 'a -> int
(** Stamp and enqueue a message to all live subscribers; returns the sequence
    number.  The sender also receives its own message (self-delivery), as in
    closed-group total-order protocols. *)

val set_alive : 'a t -> int -> bool -> unit
(** Failure injection: a dead subscriber receives nothing until revived. *)

val is_alive : 'a t -> int -> bool

val broadcasts : 'a t -> int
(** Number of [broadcast] calls so far. *)

val deliveries : 'a t -> int
(** Number of point-to-point deliveries performed. *)

val count_kind : 'a t -> string -> unit
(** Attribute the current broadcast to a named category (e.g. ["lsa-order"],
    ["pds-dummy"]) for the network-load reports. *)

val kind_counts : 'a t -> (string * int) list
(** Category counts, sorted by name. *)
