type t = {
  table : (int * int, unit) Hashtbl.t;
  mutable duplicates : int;
}

let create () = { table = Hashtbl.create 64; duplicates = 0 }

let seen t ~client ~request = Hashtbl.mem t.table (client, request)

let mark t ~client ~request =
  if seen t ~client ~request then begin
    t.duplicates <- t.duplicates + 1;
    true
  end
  else begin
    Hashtbl.add t.table (client, request) ();
    false
  end

let count t = Hashtbl.length t.table

let duplicates t = t.duplicates
