type 'a t = { seq : int; sender : int; sent_at : float; payload : 'a }

let pp pp_payload ppf m =
  Format.fprintf ppf "#%d from %d at %.2f: %a" m.seq m.sender m.sent_at
    pp_payload m.payload
