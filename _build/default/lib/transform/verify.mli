(** Instrumentation soundness checker.

    Validates, by exhaustive path enumeration, that a transformed method obeys
    the contract the scheduler's bookkeeping relies on:

    - lock/unlock pairs are balanced and properly nested (LIFO) on every path;
    - no raw [synchronized] statement survived the transformation;
    - loop markers are balanced;
    - every syncid of the static summary is, on every path, either locked,
      ignored, or inside an entered loop scope ("the scheduler's bookkeeping
      does only work correctly when it gets all information available");
    - a syncid is never both locked and ignored on one path, and never locked
      twice outside a loop scope;
    - announceable locks are preceded by their [lockInfo] on every path, and
      spontaneous locks are never announced. *)

val check_method :
  ?summary:Detmt_analysis.Predict.method_summary ->
  Detmt_lang.Class_def.t ->
  meth:string ->
  string list
(** Diagnostics for one instrumented method; empty when sound. *)

val check_class :
  ?summary:Detmt_analysis.Predict.class_summary ->
  Detmt_lang.Class_def.t ->
  string list
(** Diagnostics for every start method of an instrumented class. *)
