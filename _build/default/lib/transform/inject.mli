(** Scheduler-call injection (sections 4.1–4.2, Figure 4).

    Rewrites one (already inlined) start-method body:
    - [synchronized (p) { ... }] becomes [scheduler.lock(sid, p); ...;
      scheduler.unlock(sid, p)] with a globally unique syncid;
    - each branch of a conditional starts with [scheduler.ignore(sid)] for
      every syncid of the {e other} branch, "on all paths without a lock call
      for syncid";
    - [scheduler.lockInfo(sid, p)] is emitted at method entry for [this] and
      parameter-valued locks, and right after the last assignment for
      local-valued locks; spontaneous parameters get no announcement;
    - loops containing locks are bracketed with [loopEnter]/[loopExit]
      markers; remaining dynamic calls and non-repository virtual calls are
      bracketed the same way as {e opaque} regions;
    - repository-mode virtual calls are expanded into an if-chain over the
      runtime type with per-branch ignore coverage.

    The pass simultaneously accumulates the static information
    ({!Detmt_analysis.Predict.sid_info} / [loop_info]) that initialises the
    scheduler's bookkeeping module. *)

type result = {
  body : Detmt_lang.Ast.block;
  sids : Detmt_analysis.Predict.sid_info list;
  loops : Detmt_analysis.Predict.loop_info list;
}

val release_site : int
(** The pseudo-syncid carried by the unlock of an explicit
    java.util.concurrent lock ([Lock_release]): release sites do not
    correspond to a single acquisition site. *)

val instrument_method :
  ids:Detmt_analysis.Syncid.t ->
  repository:bool ->
  cls:Detmt_lang.Class_def.t ->
  Detmt_lang.Ast.block ->
  result
(** Instrument an inlined start-method body.  The body must not already
    contain scheduler instrumentation.
    @raise Invalid_argument on already-instrumented input. *)

val basic_body :
  ids:Detmt_analysis.Syncid.t -> Detmt_lang.Ast.block -> Detmt_lang.Ast.block
(** Traditional FTflex transformation: only [Sync] -> [lock]/[unlock], no
    announcements, no ignores, no loop markers. *)
