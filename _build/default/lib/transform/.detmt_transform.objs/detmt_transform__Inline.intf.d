lib/transform/inline.pp.mli: Detmt_lang
