lib/transform/inject.pp.mli: Detmt_analysis Detmt_lang
