lib/transform/inline.pp.ml: Ast Class_def Detmt_lang List Printf
