lib/transform/verify.pp.mli: Detmt_analysis Detmt_lang
