lib/transform/transform.pp.mli: Detmt_analysis Detmt_lang
