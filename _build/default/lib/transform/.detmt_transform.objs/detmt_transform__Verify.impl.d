lib/transform/verify.pp.ml: Ast Class_def Detmt_analysis Detmt_lang Format Hashtbl Inject List Option Param_class Paths Predict Pretty Printf
