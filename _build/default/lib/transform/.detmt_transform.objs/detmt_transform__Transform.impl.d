lib/transform/transform.pp.ml: Callgraph Class_def Detmt_analysis Detmt_lang Inject Inline List Predict Syncid Wellformed
