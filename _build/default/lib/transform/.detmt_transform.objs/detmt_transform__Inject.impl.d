lib/transform/inject.pp.ml: Ast Class_def Detmt_analysis Detmt_lang Inline List Loops Param_class Predict Printf String Syncid Wellformed
