(** Whole-class transformation — the deployment step that replaces
    [synchronized] statements with scheduler calls "just before the final
    compilation" (section 4).

    {!basic} is the traditional FTflex transformation used by the
    non-predicting schedulers (SEQ, SAT, LSA, PDS, MAT).  {!predictive}
    additionally inlines calls, injects announcements/ignores/loop markers and
    returns the static prediction summary consumed by the bookkeeping module
    (MAT+last-lock and predicted MAT). *)

val basic : Detmt_lang.Class_def.t -> Detmt_lang.Class_def.t
(** Instrument every method: [Sync] -> [lock]/[unlock] only.
    @raise Invalid_argument when the class is not well-formed. *)

val predictive :
  ?repository:bool ->
  Detmt_lang.Class_def.t ->
  Detmt_lang.Class_def.t * Detmt_analysis.Predict.class_summary
(** Instrument with full lock prediction.  Start methods that can reach a
    call cycle fall back to basic instrumentation with an empty (fallback)
    summary — the paper's favoured option for recursion.  Helper methods keep
    basic instrumentation so dynamic calls still execute.  With
    [~repository:true] non-final and virtual callees are analysed through the
    class repository of section 4.4; without it they become opaque regions.
    @raise Invalid_argument when the class is not well-formed. *)
