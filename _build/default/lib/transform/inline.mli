(** Inlining of method calls prior to analysis.

    Prediction needs every synchronized block the programme flow can pass to
    be a distinct site.  Splicing callee bodies into the caller achieves that:
    two calls to the same method become two sets of syncids.  Callee locals
    are renamed apart.

    Only final methods are spliced by default ("all methods that are called
    are final", section 4); with [~repository:true] non-final callees are
    spliced as well, modelling the class repository of section 4.4 that
    guarantees static type = runtime type.  Virtual calls are never spliced
    here — the injector expands them into an if-chain (repository mode) or an
    opaque region. *)

exception Recursive of string
(** Raised when splicing encounters a call cycle. *)

val inline_block :
  ?repository:bool ->
  Detmt_lang.Class_def.t ->
  Detmt_lang.Ast.block ->
  Detmt_lang.Ast.block
(** Splice resolvable calls, recursively.  Calls left in place: virtual calls,
    calls to undefined methods, and non-final calls when [repository] is
    [false] (the default).  @raise Recursive on call cycles. *)

val rename_locals : prefix:string -> Detmt_lang.Ast.block -> Detmt_lang.Ast.block
(** Prefix every local-variable name in the block — exposed for tests. *)
