open Detmt_lang

exception Recursive of string

let rename_local prefix v = prefix ^ v

let rename_mexpr prefix = function
  | Ast.Mlocal v -> Ast.Mlocal (rename_local prefix v)
  | (Ast.Mconst _ | Ast.Marg _ | Ast.Mfield _ | Ast.Mglobal _ | Ast.Mcall _)
    as e ->
    e

let rename_sync_param prefix = function
  | Ast.Sp_local v -> Ast.Sp_local (rename_local prefix v)
  | (Ast.Sp_this | Ast.Sp_arg _ | Ast.Sp_field _ | Ast.Sp_global _
    | Ast.Sp_call _) as p ->
    p

let rec rename_stmt prefix = function
  | Ast.Assign (v, e) ->
    Ast.Assign (rename_local prefix v, rename_mexpr prefix e)
  | Ast.Assign_field (f, e) -> Ast.Assign_field (f, rename_mexpr prefix e)
  | Ast.Sync (p, body) ->
    Ast.Sync (rename_sync_param prefix p, rename_block prefix body)
  | Ast.Lock_acquire p -> Ast.Lock_acquire (rename_sync_param prefix p)
  | Ast.Lock_release p -> Ast.Lock_release (rename_sync_param prefix p)
  | Ast.Wait p -> Ast.Wait (rename_sync_param prefix p)
  | Ast.Wait_until { param; field; min } ->
    Ast.Wait_until { param = rename_sync_param prefix param; field; min }
  | Ast.Notify { param; all } ->
    Ast.Notify { param = rename_sync_param prefix param; all }
  | Ast.If (c, a, b) -> Ast.If (c, rename_block prefix a, rename_block prefix b)
  | Ast.Loop l -> Ast.Loop { l with body = rename_block prefix l.body }
  | Ast.Sched_lock (sid, p) -> Ast.Sched_lock (sid, rename_sync_param prefix p)
  | Ast.Sched_unlock (sid, p) ->
    Ast.Sched_unlock (sid, rename_sync_param prefix p)
  | Ast.Lockinfo (sid, p) -> Ast.Lockinfo (sid, rename_sync_param prefix p)
  | (Ast.Compute _ | Ast.Nested _ | Ast.State_update _ | Ast.Call _
    | Ast.Virtual_call _ | Ast.Ignore_sync _ | Ast.Loop_enter _
    | Ast.Loop_exit _) as s ->
    s

and rename_block prefix body = List.map (rename_stmt prefix) body

let rename_locals ~prefix body = rename_block prefix body

let inline_block ?(repository = false) cls body =
  let counter = ref 0 in
  let spliceable name =
    match Class_def.find_method cls name with
    | None -> None
    | Some def -> if def.final || repository then Some def else None
  in
  let rec go stack stmts = List.concat_map (go_stmt stack) stmts
  and go_stmt stack = function
    | Ast.Call m as s -> (
      match spliceable m with
      | None -> [ s ]
      | Some def ->
        if List.mem m stack then raise (Recursive m);
        incr counter;
        let prefix = Printf.sprintf "%s$%d$" m !counter in
        go (m :: stack) (rename_block prefix def.body))
    | Ast.Sync (p, b) -> [ Ast.Sync (p, go stack b) ]
    | Ast.If (c, a, b) -> [ Ast.If (c, go stack a, go stack b) ]
    | Ast.Loop l -> [ Ast.Loop { l with body = go stack l.body } ]
    | (Ast.Compute _ | Ast.Assign _ | Ast.Assign_field _
      | Ast.Lock_acquire _ | Ast.Lock_release _ | Ast.Wait _
      | Ast.Wait_until _ | Ast.Notify _ | Ast.Nested _ | Ast.State_update _
      | Ast.Virtual_call _ | Ast.Sched_lock _ | Ast.Sched_unlock _
      | Ast.Lockinfo _ | Ast.Ignore_sync _ | Ast.Loop_enter _
      | Ast.Loop_exit _) as s ->
      [ s ]
  in
  go [] body
