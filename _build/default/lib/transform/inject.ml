open Detmt_lang
open Detmt_analysis

type result = {
  body : Ast.block;
  sids : Predict.sid_info list;
  loops : Predict.loop_info list;
}

type ctx = {
  ids : Syncid.t;
  prof : Param_class.profile;
  repository : bool;
  cls : Class_def.t;
  mutable sids : Predict.sid_info list; (* reverse order *)
  mutable loops : Predict.loop_info list; (* reverse order *)
}

let reject_instrumented stmt =
  if Wellformed.is_instrumented_stmt stmt then
    invalid_arg
      ("Inject: input already contains instrumentation: " ^ Ast.show_stmt stmt)

(* Does the block contain a call the analysis cannot see through?  Such a
   call may lock unknown mutexes, so an enclosing loop must be classified as
   changing. *)
let rec contains_opaque ctx = function
  | [] -> false
  | stmt :: rest -> opaque_stmt ctx stmt || contains_opaque ctx rest

and opaque_stmt ctx = function
  | Ast.Call m -> (
    match Class_def.find_method ctx.cls m with
    | None -> true
    | Some def -> not (def.final || ctx.repository))
  | Ast.Virtual_call _ -> not ctx.repository
  | Ast.Sync (_, body) | Ast.Loop { body; _ } -> contains_opaque ctx body
  | Ast.If (_, a, b) -> contains_opaque ctx a || contains_opaque ctx b
  | Ast.Compute _ | Ast.Assign _ | Ast.Assign_field _ | Ast.Lock_acquire _
  | Ast.Lock_release _ | Ast.Wait _ | Ast.Wait_until _ | Ast.Notify _
  | Ast.Nested _ | Ast.State_update _ | Ast.Sched_lock _ | Ast.Sched_unlock _
  | Ast.Lockinfo _ | Ast.Ignore_sync _ | Ast.Loop_enter _ | Ast.Loop_exit _ ->
    false

(* The pseudo-syncid carried by the unlock of an explicit
   java.util.concurrent lock: release sites do not correspond to a single
   acquisition site, so they carry this marker instead. *)
let release_site = -2

let ignores sids = List.map (fun sid -> Ast.Ignore_sync sid) sids

(* A skipped branch must neutralise the other branch's scopes too: an
   enter/exit pair tells the bookkeeping the scope ran zero iterations,
   which is exactly what "branch not taken" means. *)
let skip_scopes lids =
  List.concat_map (fun lid -> [ Ast.Loop_enter lid; Ast.Loop_exit lid ]) lids

let branch_prefix ~other_sids ~other_lids =
  ignores other_sids @ skip_scopes other_lids

let opaque_region ctx stmt =
  let lid = Syncid.fresh_loop ctx.ids in
  ctx.loops <-
    { Predict.lid; sids = []; changing = true; opaque = true; bound = None }
    :: ctx.loops;
  ([ Ast.Loop_enter lid; stmt; Ast.Loop_exit lid ], [], [ lid ])

(* [walk] returns the rewritten statement sequence together with the syncids
   and loopids allocated within the subtree (needed for branch coverage and
   loop sets). *)
let rec walk ctx loop_stack stmt : Ast.stmt list * int list * int list =
  reject_instrumented stmt;
  match stmt with
  | Ast.Sync (p, body) ->
    let sid = Syncid.fresh_sync ctx.ids in
    let classification = Param_class.classify ctx.prof p in
    ctx.sids <-
      { Predict.sid; param = p; classification;
        in_loops = List.rev loop_stack }
      :: ctx.sids;
    let body', inner, lids = walk_block ctx loop_stack body in
    ( (Ast.Sched_lock (sid, p) :: body') @ [ Ast.Sched_unlock (sid, p) ],
      sid :: inner, lids )
  | Ast.If (c, a, b) ->
    let a', sa, la = walk_block ctx loop_stack a in
    let b', sb, lb = walk_block ctx loop_stack b in
    ( [ Ast.If
          ( c,
            branch_prefix ~other_sids:sb ~other_lids:lb @ a',
            branch_prefix ~other_sids:sa ~other_lids:la @ b' ) ],
      sa @ sb, la @ lb )
  | Ast.Loop { kind; count; body } ->
    if not (Loops.contains_sync body || contains_opaque ctx body) then begin
      let body', inner, lids = walk_block ctx loop_stack body in
      ([ Ast.Loop { kind; count; body = body' } ], inner, lids)
    end
    else begin
      let lid = Syncid.fresh_loop ctx.ids in
      let changing =
        contains_opaque ctx body
        || Loops.(equal_kind (classify_loop ctx.prof ~body) Changing)
      in
      let body', inner, inner_lids = walk_block ctx (lid :: loop_stack) body in
      ctx.loops <-
        { Predict.lid; sids = inner; changing; opaque = false;
          bound = Loops.static_bound count }
        :: ctx.loops;
      ( [ Ast.Loop_enter lid; Ast.Loop { kind; count; body = body' };
          Ast.Loop_exit lid ],
        inner, lid :: inner_lids )
    end
  | Ast.Call m as s ->
    (* Final calls were spliced by {!Inline}; anything left is opaque. *)
    if opaque_stmt ctx s then opaque_region ctx s
    else (
      match Class_def.find_method ctx.cls m with
      | None -> opaque_region ctx s
      | Some _ ->
        (* A resolvable call surviving inlining would be a bug upstream. *)
        invalid_arg ("Inject: unexpected resolvable call to " ^ m))
  | Ast.Virtual_call { candidates; selector } as s ->
    if not ctx.repository then opaque_region ctx s
    else begin
      (* Repository mode: expand dispatch into an if-chain on the runtime
         type (carried in the selector argument), inlining each candidate. *)
      let expand k name =
        match Class_def.find_method ctx.cls name with
        | None -> invalid_arg ("Inject: undefined virtual candidate " ^ name)
        | Some def ->
          let body =
            Inline.rename_locals
              ~prefix:(Printf.sprintf "%s$v%d$" name k)
              def.body
            |> Inline.inline_block ~repository:true ctx.cls
          in
          walk_block ctx loop_stack body
      in
      let branches = List.mapi expand candidates in
      let all_sids = List.concat_map (fun (_, s, _) -> s) branches in
      let all_lids = List.concat_map (fun (_, _, l) -> l) branches in
      let branch_with_prefix k (body, own_sids, own_lids) =
        let other_sids =
          List.filter (fun s -> not (List.mem s own_sids)) all_sids
        in
        let other_lids =
          List.filter (fun l -> not (List.mem l own_lids)) all_lids
        in
        (k, branch_prefix ~other_sids ~other_lids @ body)
      in
      let branches = List.mapi branch_with_prefix branches in
      let rec chain = function
        | [] -> []
        | [ (_, body) ] -> body
        | (k, body) :: rest ->
          [ Ast.If (Ast.Carg_int_eq (selector, k), body, chain rest) ]
      in
      (chain branches, all_sids, all_lids)
    end
  | Ast.Lock_acquire p ->
    (* java.util.concurrent explicit lock (section 5): one acquisition
       site, one syncid, announced like a synchronized block's. *)
    let sid = Syncid.fresh_sync ctx.ids in
    ctx.sids <-
      { Predict.sid; param = p;
        classification = Param_class.classify ctx.prof p;
        in_loops = List.rev loop_stack }
      :: ctx.sids;
    ([ Ast.Sched_lock (sid, p) ], [ sid ], [])
  | Ast.Lock_release p ->
    (* Release sites have no acquisition identity of their own; the
       bookkeeping only consumes the unlock's mutex. *)
    ([ Ast.Sched_unlock (release_site, p) ], [], [])
  | (Ast.Compute _ | Ast.Assign _ | Ast.Assign_field _ | Ast.Wait _
    | Ast.Wait_until _ | Ast.Notify _ | Ast.Nested _ | Ast.State_update _)
    as s ->
    ([ s ], [], [])
  | Ast.Sched_lock _ | Ast.Sched_unlock _ | Ast.Lockinfo _ | Ast.Ignore_sync _
  | Ast.Loop_enter _ | Ast.Loop_exit _ ->
    assert false (* rejected above *)

and walk_block ctx loop_stack body =
  List.fold_left
    (fun (stmts, sids, lids) stmt ->
      let stmts', sids', lids' = walk ctx loop_stack stmt in
      (stmts @ stmts', sids @ sids', lids @ lids'))
    ([], [], []) body

(* Insert [Lockinfo] right after the unique assignment to each local that an
   announceable sync block locks.  Classification guarantees the assignment
   is unique and outside loops, so a structural traversal suffices. *)
let insert_after_assigns inserts body =
  let rec map_block body = List.concat_map map_stmt body
  and map_stmt = function
    | Ast.Assign (v, e) ->
      let infos =
        List.filter_map
          (fun (var, sid, param) ->
            if String.equal var v then Some (Ast.Lockinfo (sid, param))
            else None)
          inserts
      in
      Ast.Assign (v, e) :: infos
    | Ast.If (c, a, b) -> [ Ast.If (c, map_block a, map_block b) ]
    | Ast.Loop l -> [ Ast.Loop { l with body = map_block l.body } ]
    | s -> [ s ]
  in
  map_block body

let instrument_method ~ids ~repository ~cls body =
  let prof = Param_class.profile body in
  let ctx = { ids; prof; repository; cls; sids = []; loops = [] } in
  let body', _, _ = walk_block ctx [] body in
  let sids = List.rev ctx.sids in
  let loops = List.rev ctx.loops in
  let at_entry =
    List.filter_map
      (fun (i : Predict.sid_info) ->
        match i.classification with
        | Param_class.Announce_at_entry -> Some (Ast.Lockinfo (i.sid, i.param))
        | Param_class.Announce_after_assign _ | Param_class.Spontaneous _ ->
          None)
      sids
  in
  let after_assign =
    List.filter_map
      (fun (i : Predict.sid_info) ->
        match i.classification with
        | Param_class.Announce_after_assign v -> Some (v, i.sid, i.param)
        | Param_class.Announce_at_entry | Param_class.Spontaneous _ -> None)
      sids
  in
  let body' = at_entry @ insert_after_assigns after_assign body' in
  { body = body'; sids; loops }

let basic_body ~ids body =
  let rec go stmt =
    match stmt with
    | Ast.Sync (p, inner) ->
      let sid = Syncid.fresh_sync ids in
      (Ast.Sched_lock (sid, p) :: List.concat_map go inner)
      @ [ Ast.Sched_unlock (sid, p) ]
    | Ast.Lock_acquire p -> [ Ast.Sched_lock (Syncid.fresh_sync ids, p) ]
    | Ast.Lock_release p -> [ Ast.Sched_unlock (release_site, p) ]
    | Ast.If (c, a, b) ->
      [ Ast.If (c, List.concat_map go a, List.concat_map go b) ]
    | Ast.Loop l -> [ Ast.Loop { l with body = List.concat_map go l.body } ]
    | s ->
      reject_instrumented s;
      [ s ]
  in
  List.concat_map go body
