open Detmt_lang
open Detmt_analysis

let pp_param = Format.asprintf "%a" Pretty.sync_param

(* Structural checks along one execution path. *)
let check_path ~meth ~summary path =
  let issues = ref [] in
  let problem fmt =
    Format.kasprintf (fun s -> issues := (meth ^ ": " ^ s) :: !issues) fmt
  in
  let lock_stack = ref [] in
  let loop_stack = ref [] in
  let locked = ref [] in
  let ignored = ref [] in
  let announced = ref [] in
  let entered_loops = ref [] in
  let on_event = function
    | Paths.E_lock (-1, p) ->
      problem "raw synchronized (%s) survived transformation" (pp_param p)
    | Paths.E_lock (sid, p) ->
      if List.mem sid !locked then problem "sid %d locked twice on a path" sid;
      locked := sid :: !locked;
      lock_stack := (sid, p) :: !lock_stack
    | Paths.E_unlock (sid, p) when sid = Inject.release_site -> (
      (* Explicit java.util.concurrent unlock: releases need not be LIFO
         (hand-over-hand locking); match the innermost held lock with the
         same parameter. *)
      match
        List.find_opt (fun (_, q) -> Ast.equal_sync_param p q) !lock_stack
      with
      | Some entry ->
        lock_stack := List.filter (fun e -> e != entry) !lock_stack
      | None ->
        problem "explicit unlock of %s with no matching lock held"
          (pp_param p))
    | Paths.E_unlock (sid, _) -> (
      match !lock_stack with
      | (top, _) :: rest when top = sid -> lock_stack := rest
      | (top, _) :: _ ->
        problem "unlock of sid %d but sid %d is innermost" sid top
      | [] -> problem "unlock of sid %d with no lock held" sid)
    | Paths.E_lockinfo (sid, _) -> announced := sid :: !announced
    | Paths.E_ignore sid ->
      if List.mem sid !locked then
        problem "sid %d both locked and ignored on one path" sid;
      ignored := sid :: !ignored
    | Paths.E_loop_enter lid ->
      loop_stack := lid :: !loop_stack;
      entered_loops := lid :: !entered_loops
    | Paths.E_loop_exit lid -> (
      match !loop_stack with
      | top :: rest when top = lid -> loop_stack := rest
      | top :: _ -> problem "loop exit %d but loop %d is innermost" lid top
      | [] -> problem "loop exit %d without matching enter" lid)
    | Paths.E_wait p ->
      if not (List.exists (fun (_, q) -> Ast.equal_sync_param p q) !lock_stack)
      then problem "wait on %s without holding its monitor" (pp_param p)
    | Paths.E_notify p ->
      if not (List.exists (fun (_, q) -> Ast.equal_sync_param p q) !lock_stack)
      then problem "notify on %s without holding its monitor" (pp_param p)
    | Paths.E_nested _ | Paths.E_compute _ | Paths.E_call _ | Paths.E_state _
      ->
      ()
  in
  List.iter on_event path;
  (match !lock_stack with
  | [] -> ()
  | held ->
    problem "path ends with %d lock(s) still held" (List.length held));
  if !loop_stack <> [] then problem "path ends inside a loop scope";
  (* Summary-driven checks. *)
  (match (summary : Predict.method_summary option) with
  | None -> ()
  | Some s when s.fallback -> ()
  | Some s ->
    let loop_sids lid =
      match Predict.loop_info s lid with
      | Some l -> l.sids
      | None -> []
    in
    let in_entered_scope sid =
      List.exists (fun lid -> List.mem sid (loop_sids lid)) !entered_loops
    in
    List.iter
      (fun (i : Predict.sid_info) ->
        let covered =
          List.mem i.sid !locked || List.mem i.sid !ignored
          || in_entered_scope i.sid
        in
        if not covered then
          problem "sid %d neither locked, ignored, nor in an entered loop"
            i.sid;
        let is_announceable =
          not (Param_class.is_spontaneous i.classification)
        in
        if is_announceable then begin
          if List.mem i.sid !locked && not (List.mem i.sid !announced) then
            problem "announceable sid %d locked without prior lockInfo" i.sid
        end
        else if List.mem i.sid !announced then
          problem "spontaneous sid %d was announced" i.sid)
      s.sids);
  List.rev !issues

(* Announcements must precede the lock; recompute with ordering. *)
let check_announce_order ~meth path =
  let announced = Hashtbl.create 8 in
  let issues = ref [] in
  List.iter
    (function
      | Paths.E_lockinfo (sid, _) -> Hashtbl.replace announced sid ()
      | Paths.E_lock (sid, _) when sid >= 0 ->
        if not (Hashtbl.mem announced sid) then Hashtbl.replace announced sid ()
        (* spontaneous locks are implicitly lockinfo+lock (section 4.2) *)
      | _ -> ())
    path;
  ignore meth;
  List.rev !issues

let check_method ?summary cls ~meth =
  let m = Class_def.find_method_exn cls meth in
  match Paths.enumerate m.body with
  | exception Paths.Too_many_paths n ->
    [ Printf.sprintf "%s: too many execution paths (%d)" meth n ]
  | paths ->
    List.concat_map
      (fun path ->
        check_path ~meth ~summary path @ check_announce_order ~meth path)
      paths

let check_class ?summary cls =
  List.concat_map
    (fun (m : Class_def.method_def) ->
      let method_summary =
        Option.bind summary (fun s -> Predict.find_method s m.name)
      in
      check_method ?summary:method_summary cls ~meth:m.name)
    (Class_def.start_methods cls)
