type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  if buckets < 1 then invalid_arg "Histogram.create: buckets < 1";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  { lo; hi; counts = Array.make buckets 0; underflow = 0; overflow = 0;
    total = 0 }

let width t = (t.hi -. t.lo) /. float_of_int (Array.length t.counts)

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. width t) in
    let i = min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total

let bucket_count t i = t.counts.(i)

let underflow t = t.underflow

let overflow t = t.overflow

let bucket_bounds t i =
  let w = width t in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let pp ppf t =
  let max_count = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bucket_bounds t i in
      let bar = 40 * c / max_count in
      Format.fprintf ppf "[%8.2f, %8.2f) %6d %s@." lo hi c
        (String.make bar '#'))
    t.counts;
  if t.underflow > 0 then Format.fprintf ppf "underflow %d@." t.underflow;
  if t.overflow > 0 then Format.fprintf ppf "overflow %d@." t.overflow
