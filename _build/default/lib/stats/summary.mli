(** Sample accumulator with exact quantiles.

    Samples are stored (the experiments in this repository collect at most a
    few hundred thousand values) so quantiles are exact, not sketched. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Mean of the samples; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float

val min : t -> float

val max : t -> float

val total : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0,1\]], nearest-rank; [nan] when empty. *)

val median : t -> float

val merge : t -> t -> t
(** Union of two accumulators (inputs unchanged). *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: [n mean stddev min p50 p95 max]. *)
