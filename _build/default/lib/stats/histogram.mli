(** Fixed-width-bucket histogram with an ASCII renderer. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] covers [\[lo, hi)] with equal buckets; samples
    outside the range land in underflow/overflow counters. *)

val add : t -> float -> unit

val count : t -> int
(** Total samples including under/overflow. *)

val bucket_count : t -> int -> int
(** Samples in bucket [i]. *)

val underflow : t -> int

val overflow : t -> int

val bucket_bounds : t -> int -> float * float

val pp : Format.formatter -> t -> unit
(** Render as bucket ranges with proportional hash bars. *)
