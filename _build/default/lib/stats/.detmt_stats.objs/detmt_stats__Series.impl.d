lib/stats/series.ml: Array Char Format List String
