(** ASCII table rendering for the benchmark harness.

    Every figure in the paper is regenerated as such a table: one row per
    x-value (e.g. number of clients), one column per algorithm. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Cells beyond the column count are dropped; missing cells render empty. *)

val add_float_row : t -> label:string -> float list -> unit
(** Convenience: first column [label], remaining cells ["%.2f"]-formatted. *)

val rows : t -> string list list

val columns : t -> string list

val title : t -> string

val pp : Format.formatter -> t -> unit

val to_csv : t -> string
(** Comma-separated rendering (header line first). *)
