type t = { name : string; mutable rev_points : (float * float) list }

let create ~name = { name; rev_points = [] }

let name t = t.name

let add t ~x ~y = t.rev_points <- (x, y) :: t.rev_points

let points t = List.rev t.rev_points

let y_at t x = List.assoc_opt x (points t)

let bounds series =
  let all = List.concat_map points series in
  match all with
  | [] -> None
  | (x0, y0) :: rest ->
    let fold (xlo, xhi, ylo, yhi) (x, y) =
      (min xlo x, max xhi x, min ylo y, max yhi y)
    in
    Some (List.fold_left fold (x0, x0, y0, y0) rest)

let chart ?(width = 60) ?(height = 16) ppf series =
  match bounds series with
  | None -> Format.fprintf ppf "(no data)@."
  | Some (xlo, xhi, ylo, yhi) ->
    let xspan = if xhi > xlo then xhi -. xlo else 1.0 in
    let yspan = if yhi > ylo then yhi -. ylo else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let plot letter s =
      let place (x, y) =
        let col =
          int_of_float ((x -. xlo) /. xspan *. float_of_int (width - 1))
        in
        let row =
          height - 1
          - int_of_float ((y -. ylo) /. yspan *. float_of_int (height - 1))
        in
        if row >= 0 && row < height && col >= 0 && col < width then
          grid.(row).(col) <- letter
      in
      List.iter place (points s)
    in
    List.iteri
      (fun i s -> plot (Char.chr (Char.code 'A' + (i mod 26))) s)
      series;
    Format.fprintf ppf "%8.2f +@." yhi;
    Array.iter
      (fun row ->
        Format.fprintf ppf "         |%s@."
          (String.init width (Array.get row)))
      grid;
    Format.fprintf ppf "%8.2f +%s@." ylo (String.make width '-');
    Format.fprintf ppf "          %-8.2f%*.2f@." xlo (width - 8) xhi;
    List.iteri
      (fun i s ->
        Format.fprintf ppf "          %c = %s@."
          (Char.chr (Char.code 'A' + (i mod 26)))
          (name s))
      series
