type t = {
  mutable samples : float array;
  mutable count : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable sorted : bool;
}

let create () =
  { samples = [||]; count = 0; sum = 0.0; sum_sq = 0.0; sorted = true }

let add t x =
  if t.count = Array.length t.samples then begin
    let cap = Stdlib.max 16 (2 * Array.length t.samples) in
    let samples = Array.make cap 0.0 in
    Array.blit t.samples 0 samples 0 t.count;
    t.samples <- samples
  end;
  t.samples.(t.count) <- x;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  t.sorted <- false

let count t = t.count

let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

let variance t =
  if t.count < 2 then nan
  else
    let n = float_of_int t.count in
    let m = t.sum /. n in
    Stdlib.max 0.0 ((t.sum_sq -. (n *. m *. m)) /. (n -. 1.0))

let stddev t = sqrt (variance t)

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.count in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.count;
    t.sorted <- true
  end

let min t =
  if t.count = 0 then nan
  else begin
    ensure_sorted t;
    t.samples.(0)
  end

let max t =
  if t.count = 0 then nan
  else begin
    ensure_sorted t;
    t.samples.(t.count - 1)
  end

let total t = t.sum

let quantile t q =
  if t.count = 0 then nan
  else begin
    if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile";
    ensure_sorted t;
    let rank = int_of_float (ceil (q *. float_of_int t.count)) - 1 in
    let rank = Stdlib.max 0 (Stdlib.min (t.count - 1) rank) in
    t.samples.(rank)
  end

let median t = quantile t 0.5

let merge a b =
  let t = create () in
  for i = 0 to a.count - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.count - 1 do
    add t b.samples.(i)
  done;
  t

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf
      "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f" t.count
      (mean t) (stddev t) (min t) (median t) (quantile t 0.95) (max t)
