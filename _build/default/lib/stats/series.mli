(** Named (x, y) series and a rough ASCII chart, used to render the
    paper-figure reproductions as both tables and plots. *)

type t

val create : name:string -> t

val name : t -> string

val add : t -> x:float -> y:float -> unit

val points : t -> (float * float) list
(** Points in insertion order. *)

val y_at : t -> float -> float option
(** Exact-x lookup. *)

val chart :
  ?width:int -> ?height:int -> Format.formatter -> t list -> unit
(** Plot several series on shared axes; each series is drawn with its own
    letter ([A], [B], ...) and a legend is printed underneath. *)
