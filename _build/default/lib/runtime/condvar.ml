type t = (int, int list ref) Hashtbl.t
(* mutex -> waiters in FIFO order (head = longest waiting) *)

let create () : t = Hashtbl.create 16

let waiters t mutex =
  match Hashtbl.find_opt t mutex with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t mutex l;
    l

let park t ~mutex ~tid =
  let l = waiters t mutex in
  if List.mem tid !l then
    invalid_arg
      (Printf.sprintf "Condvar.park: t%d already waiting on %d" tid mutex);
  l := !l @ [ tid ]

let notify_one t ~mutex =
  let l = waiters t mutex in
  match !l with
  | [] -> None
  | tid :: rest ->
    l := rest;
    Some tid

let notify_all t ~mutex =
  let l = waiters t mutex in
  let all = !l in
  l := [];
  all

let waiting t ~mutex = !(waiters t mutex)

let remove t ~mutex ~tid =
  let l = waiters t mutex in
  if List.mem tid !l then begin
    l := List.filter (fun w -> w <> tid) !l;
    true
  end
  else false
