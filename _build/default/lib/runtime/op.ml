(* Synchronisation-relevant operations surfaced by the interpreter.

   Each op corresponds to one intercepted call in the transformed source: the
   replica engine consults the scheduler, charges overhead and resumes the
   thread's continuation. *)

type t =
  | Lock of { syncid : int; mutex : int }
  | Unlock of { syncid : int; mutex : int }
  | Wait of { mutex : int }
  | Notify of { mutex : int; all : bool }
  | Nested of { service : int; duration : float }
  | Compute of { duration : float }
  | Lockinfo of { syncid : int; mutex : int }
  | Ignore of { syncid : int }
  | Loop_enter of { loopid : int }
  | Loop_exit of { loopid : int }
  | State_update of { field : string; delta : int }
[@@deriving show { with_path = false }, eq]
