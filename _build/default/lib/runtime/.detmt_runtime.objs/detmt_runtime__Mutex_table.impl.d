lib/runtime/mutex_table.pp.ml: Hashtbl List Printf
