lib/runtime/interp.pp.ml: Array Ast Class_def Detmt_lang Format Hashtbl List Object_state Op Pretty Request
