lib/runtime/config.pp.mli: Format
