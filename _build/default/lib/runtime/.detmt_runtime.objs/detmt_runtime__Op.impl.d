lib/runtime/op.pp.ml: Ppx_deriving_runtime
