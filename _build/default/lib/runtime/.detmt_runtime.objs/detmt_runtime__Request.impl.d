lib/runtime/request.pp.ml: Detmt_lang Format
