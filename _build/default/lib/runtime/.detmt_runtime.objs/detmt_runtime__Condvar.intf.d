lib/runtime/condvar.pp.mli:
