lib/runtime/sched_iface.pp.ml:
