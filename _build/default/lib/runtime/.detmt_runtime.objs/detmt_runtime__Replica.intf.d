lib/runtime/replica.pp.mli: Config Detmt_lang Detmt_sim Interp Object_state Request Sched_iface
