lib/runtime/condvar.pp.ml: Hashtbl List Printf
