lib/runtime/object_state.pp.ml: Char Detmt_lang Format Hashtbl Int64 List Printf String
