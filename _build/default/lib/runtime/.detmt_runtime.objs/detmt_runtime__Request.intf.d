lib/runtime/request.pp.mli: Detmt_lang Format
