lib/runtime/config.pp.ml: Format
