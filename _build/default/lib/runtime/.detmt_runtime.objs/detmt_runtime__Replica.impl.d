lib/runtime/replica.pp.ml: Condvar Config Cpu Detmt_lang Detmt_sim Engine Hashtbl Int64 Interp List Mutex_table Object_state Op Option Printf Request Sched_iface Trace
