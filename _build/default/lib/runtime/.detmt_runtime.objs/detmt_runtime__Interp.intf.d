lib/runtime/interp.pp.mli: Detmt_lang Object_state Op Request
