lib/runtime/object_state.pp.mli: Detmt_lang Format
