lib/runtime/mutex_table.pp.mli:
