(** Condition-variable wait sets.

    In Java (and in the system model of section 2) there is a 1:1
    relationship between mutexes and condition variables, so wait sets are
    keyed by mutex id.  Wait sets are FIFO — the notification order is a
    deterministic function of the (deterministic) wait order, which is what
    lets the schedulers keep replicas consistent. *)

type t

val create : unit -> t

val park : t -> mutex:int -> tid:int -> unit
(** Append the thread to the mutex's wait set.
    @raise Invalid_argument when the thread is already parked there. *)

val notify_one : t -> mutex:int -> int option
(** Remove and return the longest-waiting thread, if any. *)

val notify_all : t -> mutex:int -> int list
(** Remove and return all waiters in FIFO order. *)

val waiting : t -> mutex:int -> int list

val remove : t -> mutex:int -> tid:int -> bool
(** Remove a specific waiter (e.g. on failover); [true] if present. *)
