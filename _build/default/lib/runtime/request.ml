(* Client requests.

   The [uid] is the request's position in the total order established by the
   group communication system, so it is identical on every replica; one
   execution thread per request is created under the same id.  All random
   decisions of the paper's benchmark travel in [args]. *)

type t = {
  uid : int; (* total-order position; doubles as the thread id *)
  client : int;
  client_req : int; (* per-client sequence number, for duplicate detection *)
  meth : string; (* start method to invoke *)
  args : Detmt_lang.Ast.value array;
  sent_at : float; (* virtual time the client issued the request *)
  dummy : bool; (* PDS filler message: creates a no-op thread *)
}

let make ~uid ~client ~client_req ~meth ~args ~sent_at =
  { uid; client; client_req; meth; args; sent_at; dummy = false }

let dummy ~uid ~sent_at =
  { uid; client = -1; client_req = uid; meth = "__dummy"; args = [||];
    sent_at; dummy = true }

let pp ppf t =
  Format.fprintf ppf "req#%d %s from c%d%s" t.uid t.meth t.client
    (if t.dummy then " (dummy)" else "")
