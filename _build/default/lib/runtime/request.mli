(** Client requests as delivered by the total-order broadcast. *)

type t = {
  uid : int;  (** total-order position; doubles as the thread id *)
  client : int;
  client_req : int;  (** per-client sequence number *)
  meth : string;  (** start method to invoke *)
  args : Detmt_lang.Ast.value array;
  sent_at : float;  (** virtual time the client issued the request *)
  dummy : bool;  (** PDS filler message: creates a no-op thread *)
}

val make :
  uid:int ->
  client:int ->
  client_req:int ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  sent_at:float ->
  t

val dummy : uid:int -> sent_at:float -> t

val pp : Format.formatter -> t -> unit
