(* Figure 3 workload: requests with non-overlapping mutex sets.

   Each client owns a private mutex (client i locks mutex i only).
   A pessimistic scheduler (MAT) still serialises the lock acquisitions
   through primacy; predicted MAT recognises that the future lock sets are
   disjoint and grants them concurrently — Figure 3(b)'s ideal. *)

open Detmt_lang

type params = {
  hold_ms : float; (* computation inside the critical section *)
  tail_ms : float; (* computation after the unlock *)
}

let default = { hold_ms = 5.0; tail_ms = 2.0 }

let method_name = "update"

let cls p =
  let open Builder in
  cls ~cname:"Disjoint" ~state_fields:[ "state" ]
    [ meth method_name ~params:1
        [ sync (arg 0) [ compute p.hold_ms; state_incr "state" 1 ];
          compute p.tail_ms;
        ];
    ]

let gen ~client ~seq:_ _rng = (method_name, [| Ast.Vmutex client |])
