(** The Figure 1 benchmark workload.

    "The implementation of that method in the remote object does ten
    iterations of a loop.  Each iteration performs the following operations:
    with probability 0.2, simulate a nested invocation (duration approx.
    12 ms); with probability 0.2, simulate a local computation (duration
    10 ms); execute a sequence of lock, state update, unlock, using a mutex
    chosen by random from a set of 100 mutexes. ... To guarantee
    deterministic behaviour the clients were responsible for all random
    decisions and passed them as method parameters."

    The iterations are unrolled in the class body so that every iteration's
    client-drawn decisions arrive as dedicated request arguments (three per
    iteration: do-nested?, do-compute?, mutex). *)

type params = {
  iterations : int;
  p_nested : float;
  p_compute : float;
  n_mutexes : int;
  nested_ms : float;
  compute_ms : float;
  front_compute_ms : float;
      (** lock-free computation before the loop (0 in the paper's setup) *)
}

val default : params
(** The paper's parameters: 10 iterations, p=0.2 / p=0.2, 100 mutexes,
    12 ms nested calls, 10 ms computations, no front computation. *)

val compute_heavy : params
(** Ablation: 20 ms of lock-free computation before the loop — the
    "computations before changing the object state" case where MAT's
    concurrent secondaries pay off against SAT. *)

val cls : params -> Detmt_lang.Class_def.t
(** The remote object: one exported method ["work"]. *)

val gen : params -> Detmt_replication.Client.request_gen
(** Pre-draws all decisions from the client stream. *)

val method_name : string
