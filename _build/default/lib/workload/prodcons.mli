(** Producer/consumer over a condition variable (experiment E9).

    Consumers block in a Java-style guarded wait on the object's monitor;
    producers increment the item count and notify.  Even-numbered clients
    produce, odd-numbered clients consume.  SEQ cannot run this workload: a
    consumer arriving before its producer waits forever on the only thread
    — the paper's deadlock argument for multithreading. *)

type params = { produce_ms : float; consume_ms : float }

val default : params

val produce_method : string

val consume_method : string

val cls : params -> Detmt_lang.Class_def.t

val gen : Detmt_replication.Client.request_gen
