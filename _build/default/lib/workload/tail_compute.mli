(** Figure 2 workload: a short critical section followed by a long final
    computation (building the reply, section 4.1).

    Plain MAT keeps the primary role through the whole tail; MAT+last-lock
    hands it over right after the unlock (Figure 2(b)).  With
    [shared_mutex = true] every request contends on one mutex (also the
    high-contention workload of the determinism matrix). *)

type params = {
  lock_ms : float;  (** critical-section computation *)
  tail_ms : float;  (** final computation after the last unlock *)
  shared_mutex : bool;  (** all requests use the same mutex? *)
}

val default : params

val method_name : string

val cls : params -> Detmt_lang.Class_def.t

val gen : params -> Detmt_replication.Client.request_gen
