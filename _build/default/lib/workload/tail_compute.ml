(* Figure 2 workload: a short critical section followed by a long final
   computation.

   Plain MAT keeps the primary role through the whole tail, so the next
   thread's lock waits although no lock will ever be requested again;
   MAT+last-lock hands the primary role over right after the unlock
   (Figure 2(b)), and predicted MAT never blocks at all when the mutexes
   are disjoint. *)

open Detmt_lang

type params = {
  lock_ms : float; (* critical-section computation *)
  tail_ms : float; (* final computation after the last unlock *)
  shared_mutex : bool; (* all requests use the same mutex? *)
}

let default = { lock_ms = 1.0; tail_ms = 20.0; shared_mutex = true }

let method_name = "serve"

let cls p =
  let open Builder in
  cls ~cname:"TailCompute" ~state_fields:[ "state" ]
    [ meth method_name ~params:1
        [ sync (arg 0) [ compute p.lock_ms; state_incr "state" 1 ];
          compute p.tail_ms;
        ];
    ]

let gen p ~client ~seq:_ _rng =
  let mutex = if p.shared_mutex then 0 else client in
  (method_name, [| Ast.Vmutex mutex |])
