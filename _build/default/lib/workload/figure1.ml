open Detmt_lang

type params = {
  iterations : int;
  p_nested : float;
  p_compute : float;
  n_mutexes : int;
  nested_ms : float;
  compute_ms : float;
  front_compute_ms : float;
}

let default =
  { iterations = 10; p_nested = 0.2; p_compute = 0.2; n_mutexes = 100;
    nested_ms = 12.0; compute_ms = 10.0; front_compute_ms = 0.0 }

(* Ablation variant: a lock-free computation before the locking loop
   (demarshalling, validation, ...).  This is exactly the situation the
   paper names as MAT's strength — "threads that issue computations before
   changing the object state" can run as concurrent secondaries — whereas
   SAT still serialises it. *)
let compute_heavy = { default with front_compute_ms = 20.0 }

let method_name = "work"

(* Request arguments, per iteration i:
     arg (3i)     : Vbool  — simulate a nested invocation?
     arg (3i + 1) : Vbool  — simulate a local computation?
     arg (3i + 2) : Vmutex — the mutex for this iteration's update *)
let iteration p i =
  let open Builder in
  [ when_ (arg_bool (3 * i)) [ nested ~service:0 p.nested_ms ];
    when_ (arg_bool ((3 * i) + 1)) [ compute p.compute_ms ];
    sync (arg ((3 * i) + 2)) [ state_incr "state" 1 ];
  ]

let cls p =
  let open Builder in
  let front =
    if p.front_compute_ms > 0.0 then [ compute p.front_compute_ms ] else []
  in
  let body = front @ List.concat (List.init p.iterations (iteration p)) in
  cls ~cname:"Figure1" ~state_fields:[ "state" ]
    [ meth method_name ~params:(3 * p.iterations) body ]

let gen p ~client:_ ~seq:_ rng =
  let args =
    Array.init (3 * p.iterations) (fun j ->
        match j mod 3 with
        | 0 -> Ast.Vbool (Detmt_sim.Rng.bool rng p.p_nested)
        | 1 -> Ast.Vbool (Detmt_sim.Rng.bool rng p.p_compute)
        | _ -> Ast.Vmutex (Detmt_sim.Rng.int rng p.n_mutexes))
  in
  (method_name, args)
