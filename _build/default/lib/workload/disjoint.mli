(** Figure 3 workload: requests with non-overlapping mutex sets.

    Each client locks a private mutex (client [i] locks mutex [i]).  A
    pessimistic scheduler still serialises the acquisitions through the
    primary token; predicted MAT recognises the disjoint future lock sets
    and grants them concurrently — Figure 3(b)'s ideal. *)

type params = {
  hold_ms : float;  (** computation inside the critical section *)
  tail_ms : float;  (** computation after the unlock *)
}

val default : params

val method_name : string

val cls : params -> Detmt_lang.Class_def.t

val gen : Detmt_replication.Client.request_gen
