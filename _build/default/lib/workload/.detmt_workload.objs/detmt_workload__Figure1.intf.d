lib/workload/figure1.mli: Detmt_lang Detmt_replication
