lib/workload/disjoint.ml: Ast Builder Detmt_lang
