lib/workload/tail_compute.ml: Ast Builder Detmt_lang
