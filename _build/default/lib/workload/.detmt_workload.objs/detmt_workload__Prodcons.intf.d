lib/workload/prodcons.mli: Detmt_lang Detmt_replication
