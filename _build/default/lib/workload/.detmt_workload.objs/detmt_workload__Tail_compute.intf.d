lib/workload/tail_compute.mli: Detmt_lang Detmt_replication
