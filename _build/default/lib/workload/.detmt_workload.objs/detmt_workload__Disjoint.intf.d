lib/workload/disjoint.mli: Detmt_lang Detmt_replication
