lib/workload/prodcons.ml: Builder Detmt_lang
