lib/workload/figure1.ml: Array Ast Builder Detmt_lang Detmt_sim List
