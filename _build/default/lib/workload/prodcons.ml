(* Producer/consumer over a condition variable (experiment E9).

   Exercises the condition-variable support the FTflex variants added to the
   published algorithms (sections 3.1-3.4): consumers block in a guarded
   wait on the object's monitor; producers increment the item count and
   notify.  Even-numbered clients produce, odd-numbered clients consume.

   SEQ cannot run this workload: a consumer that arrives before its producer
   waits forever because no other thread is ever scheduled — the paper's
   deadlock argument for multithreading. *)

open Detmt_lang

type params = { produce_ms : float; consume_ms : float }

let default = { produce_ms = 1.0; consume_ms = 1.0 }

let produce_method = "produce"

let consume_method = "consume"

let cls p =
  let open Builder in
  cls ~cname:"ProdCons" ~state_fields:[ "items"; "produced"; "consumed" ]
    [ meth produce_method
        [ compute p.produce_ms;
          sync this
            [ state_incr "items" 1; state_incr "produced" 1;
              notify_all this ];
        ];
      meth consume_method
        [ sync this
            [ wait_until this ~field:"items" ~min:1;
              state_incr "items" (-1); state_incr "consumed" 1 ];
          compute p.consume_ms;
        ];
    ]

let gen ~client ~seq:_ _rng =
  if client mod 2 = 0 then (produce_method, [||]) else (consume_method, [||])
