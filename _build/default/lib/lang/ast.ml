(* Abstract syntax of the mini object language.

   The language models exactly the synchronisation-relevant fragment of Java
   that the paper's static analysis (section 4) inspects: synchronized blocks
   with a classified synchronisation parameter, condition-variable wait/notify
   (1:1 with mutexes, as in Java), nested invocations to external services,
   local computations, loops, conditionals, assignments to locals and fields,
   and calls to final or virtual methods.

   A program is written by a user *without* scheduler calls; the transformer
   ({!Detmt_transform.Transform}) rewrites [Sync] into explicit [Sched_lock] /
   [Sched_unlock] pairs and injects [Lockinfo] / [Ignore_sync] / loop markers,
   mirroring the paper's source-code transformation (Figure 4). *)

(* The synchronisation parameter of a synchronized block, classified by the
   syntactic categories of section 4.2.  [This], [Arg] and [Local] can be
   announced ahead of the lock by code analysis; [Field], [Global] and
   [Call_result] are "spontaneous": their value is unknown until the locking
   happens. *)
type sync_param =
  | Sp_this
  | Sp_arg of int (* method parameter, by position *)
  | Sp_local of string (* method-local variable *)
  | Sp_field of string (* instance variable -> spontaneous *)
  | Sp_global of string (* globally accessible object -> spontaneous *)
  | Sp_call of string (* return value of a method call -> spontaneous *)
[@@deriving show { with_path = false }, eq]

(* Mutex-valued expressions, used on the right-hand side of assignments. *)
type mexpr =
  | Mconst of int (* a fixed mutex id *)
  | Marg of int (* mutex id carried in a request argument *)
  | Mlocal of string
  | Mfield of string
  | Mglobal of string
  | Mcall of string (* opaque call result -> unanalysable *)
[@@deriving show { with_path = false }, eq]

(* Durations of computations and nested invocations: fixed, or taken from a
   request argument (the paper's benchmark ships all random decisions in the
   request so that replicas behave identically). *)
type dur =
  | Fixed of float (* virtual milliseconds *)
  | Arg_dur of int (* request argument, interpreted as ms *)
[@@deriving show { with_path = false }, eq]

type cond =
  | Cconst of bool
  | Carg_bool of int (* boolean request argument *)
  | Carg_int_eq of int * int (* integer request argument equals a constant;
                                emitted by the transformer when it expands a
                                virtual dispatch into an if-chain *)
  | Cfield_eq_arg of string * int (* field value equals argument value *)
  | Cnot of cond
[@@deriving show { with_path = false }, eq]

type loop_kind = For | While | Do_while
[@@deriving show { with_path = false }, eq]

type count =
  | Cfixed of int
  | Carg of int (* iteration count carried in a request argument *)
[@@deriving show { with_path = false }, eq]

type stmt =
  | Compute of dur (* a local computation *)
  | Assign of string * mexpr (* local := expr *)
  | Assign_field of string * mexpr (* this.field := expr *)
  | Sync of sync_param * stmt list (* synchronized (param) { body } *)
  | Lock_acquire of sync_param
    (* java.util.concurrent explicit lock: param.lock().  Unlike [Sync],
       acquisition and release need not nest lexically (hand-over-hand
       locking etc.); balance is checked per execution path by the
       transformer's verifier and enforced at run time. *)
  | Lock_release of sync_param (* param.unlock() *)
  | Wait of sync_param (* param.wait(); must hold the monitor *)
  | Wait_until of { param : sync_param; field : string; min : int }
    (* Java guarded-wait idiom: while (field < min) param.wait();
       must hold the monitor of [param] *)
  | Notify of { param : sync_param; all : bool } (* param.notify[All]() *)
  | Nested of { service : int; duration : dur } (* nested remote invocation *)
  | State_update of string * int (* shared integer state: field += k *)
  | If of cond * stmt list * stmt list
  | Loop of { kind : loop_kind; count : count; body : stmt list }
  | Call of string (* call to a method of the same class *)
  | Virtual_call of { candidates : string list; selector : int }
    (* dynamic dispatch: the runtime type (candidate index) is carried in
       request argument [selector] *)
  (* -- statements below are emitted by the transformer only ------------- *)
  | Sched_lock of int * sync_param (* scheduler.lock(syncid, m) *)
  | Sched_unlock of int * sync_param (* scheduler.unlock(syncid, m) *)
  | Lockinfo of int * sync_param (* scheduler.lockInfo(syncid, m) *)
  | Ignore_sync of int (* scheduler.ignore(syncid) *)
  | Loop_enter of int (* scheduler.loopEnter(loopid) *)
  | Loop_exit of int (* scheduler.loopExit(loopid) *)
[@@deriving show { with_path = false }, eq]

type block = stmt list [@@deriving show { with_path = false }, eq]

(* Request argument values.  [Vmutex] designates a mutex id; [Vint] doubles as
   duration (ms), loop count or virtual-dispatch selector; [Vbool] is a
   client-drawn decision. *)
type value = Vmutex of int | Vint of int | Vbool of bool
[@@deriving show { with_path = false }, eq]
