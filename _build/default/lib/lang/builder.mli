(** Combinators for writing programs in the mini object language.

    These read close to the Java the paper analyses:

    {[
      let open Detmt_lang.Builder in
      cls ~cname:"Counter" ~state_fields:[ "count" ]
        [ meth "bump" ~params:1
            [ sync (arg 0) [ state_incr "count" 1 ];
              compute 5.0 ] ]
    ]}

    See {!Dml} for the equivalent concrete syntax. *)

open Ast

(** {1 Synchronisation parameters} *)

val this : sync_param

val arg : int -> sync_param
(** A method parameter — announceable at method entry (section 4.2). *)

val local : string -> sync_param

val field : string -> sync_param
(** An instance variable — spontaneous. *)

val global : string -> sync_param

val call_result : string -> sync_param
(** The return value of a method call — spontaneous. *)

(** {1 Mutex expressions} *)

val mconst : int -> mexpr

val marg : int -> mexpr

val mlocal : string -> mexpr

val mfield : string -> mexpr

val mglobal : string -> mexpr

val mcall : string -> mexpr

(** {1 Statements} *)

val compute : float -> stmt
(** A local computation of the given virtual milliseconds. *)

val compute_arg : int -> stmt
(** Duration carried in a request argument. *)

val assign : string -> mexpr -> stmt

val assign_field : string -> mexpr -> stmt

val sync : sync_param -> block -> stmt
(** [synchronized (param) { body }]. *)

val lock_acquire : sync_param -> stmt
(** Explicit java.util.concurrent lock (section 5): acquisition and release
    need not nest lexically. *)

val lock_release : sync_param -> stmt

val wait : sync_param -> stmt

val wait_until : sync_param -> field:string -> min:int -> stmt
(** Java guarded-wait idiom: [while (field < min) param.wait();]. *)

val notify : sync_param -> stmt

val notify_all : sync_param -> stmt

val nested : service:int -> float -> stmt
(** A nested remote invocation of the given duration. *)

val nested_arg : service:int -> int -> stmt

val state_incr : string -> int -> stmt
(** Shared-state update; must run under a lock (section 2). *)

val if_ : cond -> block -> block -> stmt

val when_ : cond -> block -> stmt

val for_ : int -> block -> stmt

val for_arg : int -> block -> stmt
(** Iteration count carried in a request argument. *)

val while_ : int -> block -> stmt

val do_while : int -> block -> stmt

val call : string -> stmt

val virtual_call : selector:int -> string list -> stmt
(** Dynamic dispatch: the runtime type (candidate index) travels in request
    argument [selector]. *)

(** {1 Conditions} *)

val ctrue : cond

val cfalse : cond

val arg_bool : int -> cond

val field_eq_arg : string -> int -> cond

val cnot : cond -> cond

(** {1 Methods and classes} *)

val meth :
  ?final:bool -> ?exported:bool -> ?params:int -> string -> block ->
  Class_def.method_def
(** An exported, final method by default — a "start method". *)

val helper :
  ?final:bool -> ?params:int -> string -> block -> Class_def.method_def
(** A non-exported method, reachable only through calls. *)

val cls :
  ?mutex_fields:(string * int) list ->
  ?state_fields:string list ->
  ?globals:(string * int) list ->
  cname:string ->
  Class_def.method_def list ->
  Class_def.t
