(** DML — a concrete syntax for the mini object language.

    The paper's transformation operates on Java source; DML is this
    repository's textual stand-in, so replicated classes can be written in
    files and fed to the CLI instead of being built with {!Builder}.  The
    grammar mirrors the AST one-to-one:

    {v
    class Counter {
      mutexfield lock = 7;
      statefield count;

      export final bump(1) {
        compute 5.0;
        v := arg 0;
        sync local v { count += 1; }
        if argbool 0 { nested 0 12.0; } else { }
        for 3 { sync this { count += 1; } }
        wait this;            // inside a sync on this
        waituntil this count >= 1;
        notifyall this;
        acquire arg 0; release arg 0;   // java.util.concurrent
        call helper;
        virtual arg 0 [ a b ];
      }

      helper final helper(0) { compute 1.0; }
    }
    v}

    Comments run from [//] to the end of the line.  {!print} emits canonical
    DML; [parse (print c) = Ok c] holds for every class (property-tested). *)

val parse : string -> (Class_def.t, string) result
(** Parse a class.  The error message carries the line number. *)

val parse_exn : string -> Class_def.t
(** @raise Invalid_argument with the parse error. *)

val print : Class_def.t -> string
(** Canonical DML text (a full round-trip inverse of {!parse}). *)
