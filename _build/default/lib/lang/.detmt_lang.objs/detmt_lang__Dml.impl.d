lib/lang/dml.pp.ml: Ast Buffer Class_def Format List Printf Result String
