lib/lang/pretty.pp.ml: Ast Class_def Format List Printf String
