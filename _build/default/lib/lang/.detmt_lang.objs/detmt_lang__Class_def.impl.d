lib/lang/class_def.pp.ml: Ast List Ppx_deriving_runtime Printf
