lib/lang/builder.pp.ml: Ast Class_def
