lib/lang/class_def.pp.mli: Ast Ppx_deriving_runtime
