lib/lang/pretty.pp.mli: Ast Class_def Format
