lib/lang/wellformed.pp.ml: Ast Class_def Format List Pretty Printf String
