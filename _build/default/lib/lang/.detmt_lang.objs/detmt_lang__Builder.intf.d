lib/lang/builder.pp.mli: Ast Class_def
