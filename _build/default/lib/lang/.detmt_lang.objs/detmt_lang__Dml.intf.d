lib/lang/dml.pp.mli: Class_def
