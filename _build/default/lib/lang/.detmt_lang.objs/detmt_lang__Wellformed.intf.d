lib/lang/wellformed.pp.mli: Ast Class_def
