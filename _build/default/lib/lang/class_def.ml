(* Method and class definitions.

   A class bundles the methods of one replicated remote object.  Methods
   flagged [exported] are the object's public interface — the paper's "start
   methods": the only entry points a remote request can trigger. *)

type method_def = {
  name : string;
  final : bool; (* final methods can be analysed across calls (section 4) *)
  exported : bool; (* a start method, reachable by remote invocation *)
  params : int; (* number of request arguments the method consumes *)
  body : Ast.block;
}
[@@deriving show { with_path = false }, eq]

type t = {
  cname : string;
  methods : method_def list;
  mutex_fields : (string * int) list; (* instance fields holding mutex refs *)
  state_fields : string list; (* shared integer state, initialised to 0 *)
  globals : (string * int) list; (* globally accessible mutex objects *)
}
[@@deriving show { with_path = false }, eq]

let make ?(mutex_fields = []) ?(state_fields = []) ?(globals = []) ~cname
    methods =
  { cname; methods; mutex_fields; state_fields; globals }

let find_method t name = List.find_opt (fun m -> m.name = name) t.methods

let find_method_exn t name =
  match find_method t name with
  | Some m -> m
  | None ->
    invalid_arg (Printf.sprintf "Class_def: no method %S in class %S" name
                   t.cname)

let start_methods t = List.filter (fun m -> m.exported) t.methods

let method_names t = List.map (fun m -> m.name) t.methods
