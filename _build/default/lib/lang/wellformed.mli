(** Structural validity checks on user programs.

    [errors] returns human-readable diagnostics; a program with no diagnostics
    satisfies the system model of section 2: wait/notify happen under the
    monitor they target, shared state is accessed under a lock, and no
    scheduler instrumentation appears in source programs (only the transformer
    may emit it). *)

val errors : Class_def.t -> string list
(** All diagnostics for the class, empty when well-formed. *)

val check_exn : Class_def.t -> unit
(** @raise Invalid_argument listing all diagnostics when the class is not
    well-formed. *)

val is_instrumented_stmt : Ast.stmt -> bool
(** True for transformer-emitted statements ([Sched_lock], [Lockinfo], ...). *)
