(** Method and class definitions for the mini object language.

    A class bundles the methods of one replicated remote object.  Methods
    flagged [exported] are the paper's "start methods": the only entry points a
    remote request can trigger. *)

type method_def = {
  name : string;
  final : bool;  (** final methods can be analysed across calls (section 4) *)
  exported : bool;  (** a start method, reachable by remote invocation *)
  params : int;  (** number of request arguments the method consumes *)
  body : Ast.block;
}
[@@deriving show, eq]

type t = {
  cname : string;
  methods : method_def list;
  mutex_fields : (string * int) list;
      (** instance fields holding mutex references, with initial values *)
  state_fields : string list;  (** shared integer state, initialised to 0 *)
  globals : (string * int) list;  (** globally accessible mutex objects *)
}
[@@deriving show, eq]

val make :
  ?mutex_fields:(string * int) list ->
  ?state_fields:string list ->
  ?globals:(string * int) list ->
  cname:string ->
  method_def list ->
  t

val find_method : t -> string -> method_def option

val find_method_exn : t -> string -> method_def
(** @raise Invalid_argument when the method does not exist. *)

val start_methods : t -> method_def list

val method_names : t -> string list
