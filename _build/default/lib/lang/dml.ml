(* Hand-written lexer + recursive-descent parser for the DML concrete
   syntax, plus the canonical printer.  [parse (print c) = Ok c] is the
   round-trip contract (property-tested in test/test_dml.ml). *)

(* ------------------------------- lexer ------------------------------ *)

type token =
  | Tident of string
  | Tint of int
  | Tfloat of float
  | Tlbrace
  | Trbrace
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tsemi
  | Tdot
  | Tassign (* := *)
  | Tpluseq (* += *)
  | Teq (* = *)
  | Teqeq (* == *)
  | Tgeq (* >= *)
  | Tbang (* ! *)
  | Teof

exception Error of string

let fail ~line fmt =
  Format.kasprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s)))
    fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '$'

let is_digit c = c >= '0' && c <= '9'

(* Returns tokens paired with their line numbers. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let number ~negative =
    let start = !i in
    while !i < n && (is_digit src.[!i] || src.[!i] = '.') do
      incr i
    done;
    (* optional decimal exponent: e / E, optional sign, digits *)
    (if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then
       let j = if !i + 1 < n && (src.[!i + 1] = '+' || src.[!i + 1] = '-')
         then !i + 2 else !i + 1
       in
       if j < n && is_digit src.[j] then begin
         i := j;
         while !i < n && is_digit src.[!i] do incr i done
       end);
    let text = String.sub src start (!i - start) in
    let signed s = if negative then "-" ^ s else s in
    if String.contains text '.' then
      emit (Tfloat (float_of_string (signed text)))
    else emit (Tint (int_of_string (signed text)))
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if is_digit c then number ~negative:false
    else if c = '-' && (match peek 1 with Some d -> is_digit d | None -> false)
    then begin
      incr i;
      number ~negative:true
    end
    else if is_ident_char c && not (is_digit c) then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (Tident (String.sub src start (!i - start)))
    end
    else begin
      let two a b t =
        if c = a && peek 1 = Some b then begin
          emit t;
          i := !i + 2;
          true
        end
        else false
      in
      if two ':' '=' Tassign || two '+' '=' Tpluseq || two '=' '=' Teqeq
         || two '>' '=' Tgeq
      then ()
      else begin
        (match c with
        | '{' -> emit Tlbrace
        | '}' -> emit Trbrace
        | '(' -> emit Tlparen
        | ')' -> emit Trparen
        | '[' -> emit Tlbracket
        | ']' -> emit Trbracket
        | ';' -> emit Tsemi
        | '.' -> emit Tdot
        | '=' -> emit Teq
        | '!' -> emit Tbang
        | _ -> fail ~line:!line "unexpected character %C" c);
        incr i
      end
    end
  done;
  emit Teof;
  List.rev !tokens

(* ------------------------------ parser ------------------------------ *)

type stream = { mutable tokens : (token * int) list }

let current s =
  match s.tokens with (t, l) :: _ -> (t, l) | [] -> (Teof, 0)

let advance s =
  match s.tokens with _ :: rest -> s.tokens <- rest | [] -> ()

let describe = function
  | Tident id -> Printf.sprintf "identifier %S" id
  | Tint k -> Printf.sprintf "integer %d" k
  | Tfloat f -> Printf.sprintf "float %g" f
  | Tlbrace -> "'{'"
  | Trbrace -> "'}'"
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tlbracket -> "'['"
  | Trbracket -> "']'"
  | Tsemi -> "';'"
  | Tdot -> "'.'"
  | Tassign -> "':='"
  | Tpluseq -> "'+='"
  | Teq -> "'='"
  | Teqeq -> "'=='"
  | Tgeq -> "'>='"
  | Tbang -> "'!'"
  | Teof -> "end of input"

let expect s token what =
  let t, line = current s in
  if t = token then advance s
  else fail ~line "expected %s, found %s" what (describe t)

let ident s what =
  match current s with
  | Tident id, _ ->
    advance s;
    id
  | t, line -> fail ~line "expected %s, found %s" what (describe t)

let int_lit s what =
  match current s with
  | Tint k, _ ->
    advance s;
    k
  | t, line -> fail ~line "expected %s, found %s" what (describe t)

let float_lit s what =
  match current s with
  | Tfloat f, _ ->
    advance s;
    f
  | Tint k, _ ->
    advance s;
    float_of_int k
  | t, line -> fail ~line "expected %s, found %s" what (describe t)

(* sync parameters and mutex expressions share the head syntax *)
let rec parse_param s =
  match current s with
  | Tident "this", _ ->
    advance s;
    if fst (current s) = Tdot then begin
      advance s;
      Ast.Sp_field (ident s "field name")
    end
    else Ast.Sp_this
  | Tident "arg", _ ->
    advance s;
    Ast.Sp_arg (int_lit s "argument index")
  | Tident "local", _ ->
    advance s;
    Ast.Sp_local (ident s "local name")
  | Tident "global", _ ->
    advance s;
    Ast.Sp_global (ident s "global name")
  | Tident "callresult", _ ->
    advance s;
    Ast.Sp_call (ident s "call name")
  | t, line -> fail ~line "expected a sync parameter, found %s" (describe t)

and parse_mexpr s =
  match current s with
  | Tident "mutex", _ ->
    advance s;
    Ast.Mconst (int_lit s "mutex id")
  | Tident "arg", _ ->
    advance s;
    Ast.Marg (int_lit s "argument index")
  | Tident "local", _ ->
    advance s;
    Ast.Mlocal (ident s "local name")
  | Tident "this", _ ->
    advance s;
    expect s Tdot "'.'";
    Ast.Mfield (ident s "field name")
  | Tident "global", _ ->
    advance s;
    Ast.Mglobal (ident s "global name")
  | Tident "callresult", _ ->
    advance s;
    Ast.Mcall (ident s "call name")
  | t, line -> fail ~line "expected a mutex expression, found %s" (describe t)

and parse_cond s =
  match current s with
  | Tident "true", _ ->
    advance s;
    Ast.Cconst true
  | Tident "false", _ ->
    advance s;
    Ast.Cconst false
  | Tident "argbool", _ ->
    advance s;
    Ast.Carg_bool (int_lit s "argument index")
  | Tident "arg", _ ->
    advance s;
    let i = int_lit s "argument index" in
    expect s Teqeq "'=='";
    Ast.Carg_int_eq (i, int_lit s "comparison constant")
  | Tident "this", _ ->
    advance s;
    expect s Tdot "'.'";
    let f = ident s "field name" in
    expect s Teqeq "'=='";
    (match current s with
    | Tident "arg", _ ->
      advance s;
      Ast.Cfield_eq_arg (f, int_lit s "argument index")
    | t, line -> fail ~line "expected 'arg', found %s" (describe t))
  | Tbang, _ ->
    advance s;
    expect s Tlparen "'('";
    let c = parse_cond s in
    expect s Trparen "')'";
    Ast.Cnot c
  | t, line -> fail ~line "expected a condition, found %s" (describe t)

and parse_count s =
  match current s with
  | Tint n, _ ->
    advance s;
    Ast.Cfixed n
  | Tident "arg", _ ->
    advance s;
    Ast.Carg (int_lit s "argument index")
  | t, line -> fail ~line "expected a loop count, found %s" (describe t)

and parse_dur s =
  match current s with
  | Tident "arg", _ ->
    advance s;
    Ast.Arg_dur (int_lit s "argument index")
  | _ -> Ast.Fixed (float_lit s "duration")

and parse_block s =
  expect s Tlbrace "'{'";
  let rec loop acc =
    match current s with
    | Trbrace, _ ->
      advance s;
      List.rev acc
    | Teof, line -> fail ~line "unterminated block"
    | _ -> loop (parse_stmt s :: acc)
  in
  loop []

and parse_stmt s =
  match current s with
  | Tident "compute", _ ->
    advance s;
    let d = parse_dur s in
    expect s Tsemi "';'";
    Ast.Compute d
  | Tident "nested", _ ->
    advance s;
    let service = int_lit s "service id" in
    let duration = parse_dur s in
    expect s Tsemi "';'";
    Ast.Nested { service; duration }
  | Tident "sync", _ ->
    advance s;
    let p = parse_param s in
    Ast.Sync (p, parse_block s)
  | Tident "acquire", _ ->
    advance s;
    let p = parse_param s in
    expect s Tsemi "';'";
    Ast.Lock_acquire p
  | Tident "release", _ ->
    advance s;
    let p = parse_param s in
    expect s Tsemi "';'";
    Ast.Lock_release p
  | Tident "wait", _ ->
    advance s;
    let p = parse_param s in
    expect s Tsemi "';'";
    Ast.Wait p
  | Tident "waituntil", _ ->
    advance s;
    let p = parse_param s in
    let field = ident s "state field" in
    expect s Tgeq "'>='";
    let min = int_lit s "threshold" in
    expect s Tsemi "';'";
    Ast.Wait_until { param = p; field; min }
  | Tident "notify", _ ->
    advance s;
    let p = parse_param s in
    expect s Tsemi "';'";
    Ast.Notify { param = p; all = false }
  | Tident "notifyall", _ ->
    advance s;
    let p = parse_param s in
    expect s Tsemi "';'";
    Ast.Notify { param = p; all = true }
  | Tident "if", _ ->
    advance s;
    let c = parse_cond s in
    let then_b = parse_block s in
    let else_b =
      match current s with
      | Tident "else", _ ->
        advance s;
        parse_block s
      | _ -> []
    in
    Ast.If (c, then_b, else_b)
  | Tident "for", _ ->
    advance s;
    let count = parse_count s in
    Ast.Loop { kind = Ast.For; count; body = parse_block s }
  | Tident "while", _ ->
    advance s;
    let count = parse_count s in
    Ast.Loop { kind = Ast.While; count; body = parse_block s }
  | Tident "dowhile", _ ->
    advance s;
    let count = parse_count s in
    Ast.Loop { kind = Ast.Do_while; count; body = parse_block s }
  | Tident "call", _ ->
    advance s;
    let m = ident s "method name" in
    expect s Tsemi "';'";
    Ast.Call m
  | Tident "virtual", _ ->
    advance s;
    (match current s with
    | Tident "arg", _ ->
      advance s;
      let selector = int_lit s "selector argument" in
      expect s Tlbracket "'['";
      let rec names acc =
        match current s with
        | Trbracket, _ ->
          advance s;
          List.rev acc
        | Tident m, _ ->
          advance s;
          names (m :: acc)
        | t, line -> fail ~line "expected a candidate name, found %s"
                       (describe t)
      in
      let candidates = names [] in
      expect s Tsemi "';'";
      Ast.Virtual_call { candidates; selector }
    | t, line -> fail ~line "expected 'arg', found %s" (describe t))
  | Tident "this", _ ->
    (* this.<field> := <mexpr> ; *)
    advance s;
    expect s Tdot "'.'";
    let f = ident s "field name" in
    expect s Tassign "':='";
    let e = parse_mexpr s in
    expect s Tsemi "';'";
    Ast.Assign_field (f, e)
  | Tident name, line -> (
    advance s;
    match current s with
    | Tassign, _ ->
      advance s;
      let e = parse_mexpr s in
      expect s Tsemi "';'";
      Ast.Assign (name, e)
    | Tpluseq, _ ->
      advance s;
      let k = int_lit s "increment" in
      expect s Tsemi "';'";
      Ast.State_update (name, k)
    | t, _ ->
      fail ~line "expected ':=' or '+=' after %S, found %s" name (describe t))
  | t, line -> fail ~line "expected a statement, found %s" (describe t)

let parse_method s ~exported =
  advance s;
  (* consumes 'export' / 'helper' *)
  let final =
    match current s with
    | Tident "final", _ ->
      advance s;
      true
    | Tident "nonfinal", _ ->
      advance s;
      false
    | _ -> true
  in
  let name = ident s "method name" in
  expect s Tlparen "'('";
  let params = int_lit s "parameter count" in
  expect s Trparen "')'";
  let body = parse_block s in
  { Class_def.name; final; exported; params; body }

let parse_class s =
  (match current s with
  | Tident "class", _ -> advance s
  | t, line -> fail ~line "expected 'class', found %s" (describe t));
  let cname = ident s "class name" in
  expect s Tlbrace "'{'";
  let mutex_fields = ref [] in
  let state_fields = ref [] in
  let globals = ref [] in
  let methods = ref [] in
  let rec items () =
    match current s with
    | Trbrace, _ -> advance s
    | Tident "mutexfield", _ ->
      advance s;
      let f = ident s "field name" in
      expect s Teq "'='";
      let v = int_lit s "initial mutex id" in
      expect s Tsemi "';'";
      mutex_fields := (f, v) :: !mutex_fields;
      items ()
    | Tident "statefield", _ ->
      advance s;
      let f = ident s "field name" in
      expect s Tsemi "';'";
      state_fields := f :: !state_fields;
      items ()
    | Tident "global", _ ->
      advance s;
      let g = ident s "global name" in
      expect s Teq "'='";
      let v = int_lit s "mutex id" in
      expect s Tsemi "';'";
      globals := (g, v) :: !globals;
      items ()
    | Tident "export", _ ->
      methods := parse_method s ~exported:true :: !methods;
      items ()
    | Tident "helper", _ ->
      methods := parse_method s ~exported:false :: !methods;
      items ()
    | t, line -> fail ~line "expected a class item, found %s" (describe t)
  in
  items ();
  { Class_def.cname;
    methods = List.rev !methods;
    mutex_fields = List.rev !mutex_fields;
    state_fields = List.rev !state_fields;
    globals = List.rev !globals }

let parse src =
  match
    let s = { tokens = tokenize src } in
    let cls = parse_class s in
    (match current s with
    | Teof, _ -> ()
    | t, line -> fail ~line "trailing input: %s" (describe t));
    cls
  with
  | cls -> Ok cls
  | exception Error msg -> Result.error msg

let parse_exn src =
  match parse src with Ok c -> c | Error msg -> invalid_arg msg

(* ------------------------------ printer ----------------------------- *)

let print_param b = function
  | Ast.Sp_this -> Buffer.add_string b "this"
  | Ast.Sp_arg i -> Printf.bprintf b "arg %d" i
  | Ast.Sp_local v -> Printf.bprintf b "local %s" v
  | Ast.Sp_field f -> Printf.bprintf b "this.%s" f
  | Ast.Sp_global g -> Printf.bprintf b "global %s" g
  | Ast.Sp_call m -> Printf.bprintf b "callresult %s" m

let print_mexpr b = function
  | Ast.Mconst m -> Printf.bprintf b "mutex %d" m
  | Ast.Marg i -> Printf.bprintf b "arg %d" i
  | Ast.Mlocal v -> Printf.bprintf b "local %s" v
  | Ast.Mfield f -> Printf.bprintf b "this.%s" f
  | Ast.Mglobal g -> Printf.bprintf b "global %s" g
  | Ast.Mcall m -> Printf.bprintf b "callresult %s" m

let rec print_cond b = function
  | Ast.Cconst true -> Buffer.add_string b "true"
  | Ast.Cconst false -> Buffer.add_string b "false"
  | Ast.Carg_bool i -> Printf.bprintf b "argbool %d" i
  | Ast.Carg_int_eq (i, k) -> Printf.bprintf b "arg %d == %d" i k
  | Ast.Cfield_eq_arg (f, i) -> Printf.bprintf b "this.%s == arg %d" f i
  | Ast.Cnot c ->
    Buffer.add_string b "!(";
    print_cond b c;
    Buffer.add_char b ')'

let print_dur b = function
  | Ast.Fixed ms -> Printf.bprintf b "%.17g" ms
  | Ast.Arg_dur i -> Printf.bprintf b "arg %d" i

let print_count b = function
  | Ast.Cfixed n -> Printf.bprintf b "%d" n
  | Ast.Carg i -> Printf.bprintf b "arg %d" i

let rec print_stmt b indent stmt =
  let pad () = Buffer.add_string b (String.make indent ' ') in
  pad ();
  match stmt with
  | Ast.Compute d ->
    Buffer.add_string b "compute ";
    print_dur b d;
    Buffer.add_string b ";\n"
  | Ast.Nested { service; duration } ->
    Printf.bprintf b "nested %d " service;
    print_dur b duration;
    Buffer.add_string b ";\n"
  | Ast.Assign (v, e) ->
    Printf.bprintf b "%s := " v;
    print_mexpr b e;
    Buffer.add_string b ";\n"
  | Ast.Assign_field (f, e) ->
    Printf.bprintf b "this.%s := " f;
    print_mexpr b e;
    Buffer.add_string b ";\n"
  | Ast.Sync (p, body) ->
    Buffer.add_string b "sync ";
    print_param b p;
    Buffer.add_string b " {\n";
    List.iter (print_stmt b (indent + 2)) body;
    pad ();
    Buffer.add_string b "}\n"
  | Ast.Lock_acquire p ->
    Buffer.add_string b "acquire ";
    print_param b p;
    Buffer.add_string b ";\n"
  | Ast.Lock_release p ->
    Buffer.add_string b "release ";
    print_param b p;
    Buffer.add_string b ";\n"
  | Ast.Wait p ->
    Buffer.add_string b "wait ";
    print_param b p;
    Buffer.add_string b ";\n"
  | Ast.Wait_until { param; field; min } ->
    Buffer.add_string b "waituntil ";
    print_param b param;
    Printf.bprintf b " %s >= %d;\n" field min
  | Ast.Notify { param; all } ->
    Buffer.add_string b (if all then "notifyall " else "notify ");
    print_param b param;
    Buffer.add_string b ";\n"
  | Ast.State_update (f, k) -> Printf.bprintf b "%s += %d;\n" f k
  | Ast.If (c, a, e) ->
    Buffer.add_string b "if ";
    print_cond b c;
    Buffer.add_string b " {\n";
    List.iter (print_stmt b (indent + 2)) a;
    pad ();
    if e = [] then Buffer.add_string b "}\n"
    else begin
      Buffer.add_string b "} else {\n";
      List.iter (print_stmt b (indent + 2)) e;
      pad ();
      Buffer.add_string b "}\n"
    end
  | Ast.Loop { kind; count; body } ->
    Buffer.add_string b
      (match kind with
      | Ast.For -> "for "
      | Ast.While -> "while "
      | Ast.Do_while -> "dowhile ");
    print_count b count;
    Buffer.add_string b " {\n";
    List.iter (print_stmt b (indent + 2)) body;
    pad ();
    Buffer.add_string b "}\n"
  | Ast.Call m -> Printf.bprintf b "call %s;\n" m
  | Ast.Virtual_call { candidates; selector } ->
    Printf.bprintf b "virtual arg %d [ %s ];\n" selector
      (String.concat " " candidates)
  | Ast.Sched_lock _ | Ast.Sched_unlock _ | Ast.Lockinfo _ | Ast.Ignore_sync _
  | Ast.Loop_enter _ | Ast.Loop_exit _ ->
    invalid_arg "Dml.print: instrumented statements have no concrete syntax"

let print (cls : Class_def.t) =
  let b = Buffer.create 1024 in
  Printf.bprintf b "class %s {\n" cls.cname;
  List.iter
    (fun (f, v) -> Printf.bprintf b "  mutexfield %s = %d;\n" f v)
    cls.mutex_fields;
  List.iter (fun f -> Printf.bprintf b "  statefield %s;\n" f)
    cls.state_fields;
  List.iter
    (fun (g, v) -> Printf.bprintf b "  global %s = %d;\n" g v)
    cls.globals;
  List.iter
    (fun (m : Class_def.method_def) ->
      Printf.bprintf b "\n  %s %s%s(%d) {\n"
        (if m.exported then "export" else "helper")
        (if m.final then "final " else "nonfinal ")
        m.name m.params;
      List.iter (print_stmt b 4) m.body;
      Buffer.add_string b "  }\n")
    cls.methods;
  Buffer.add_string b "}\n";
  Buffer.contents b
