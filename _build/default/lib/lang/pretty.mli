(** Java-flavoured pretty-printer.

    Untransformed programs print with [synchronized (...) { ... }] blocks;
    transformed programs print with explicit [scheduler.lock(...)] calls — the
    same before/after contrast as the paper's Figure 4. *)

val sync_param : Format.formatter -> Ast.sync_param -> unit

val mexpr : Format.formatter -> Ast.mexpr -> unit

val cond : Format.formatter -> Ast.cond -> unit

val stmt : Format.formatter -> Ast.stmt -> unit

val block : Format.formatter -> Ast.block -> unit

val method_def : Format.formatter -> Class_def.method_def -> unit

val class_def : Format.formatter -> Class_def.t -> unit

val block_to_string : Ast.block -> string

val method_to_string : Class_def.method_def -> string
