open Ast

let is_instrumented_stmt = function
  | Sched_lock _ | Sched_unlock _ | Lockinfo _ | Ignore_sync _ | Loop_enter _
  | Loop_exit _ ->
    true
  | Compute _ | Assign _ | Assign_field _ | Sync _ | Lock_acquire _
  | Lock_release _ | Wait _ | Wait_until _ | Notify _ | Nested _
  | State_update _ | If _ | Loop _ | Call _ | Virtual_call _ ->
    false

type ctx = {
  cls : Class_def.t;
  meth : Class_def.method_def;
  mutable diags : string list;
}

(* Does the body use explicit (non-lexical) java.util.concurrent locks? *)
let rec uses_explicit_locks body = List.exists explicit_stmt body

and explicit_stmt = function
  | Lock_acquire _ | Lock_release _ -> true
  | Sync (_, b) | Loop { body = b; _ } -> uses_explicit_locks b
  | If (_, a, b) -> uses_explicit_locks a || uses_explicit_locks b
  | Compute _ | Assign _ | Assign_field _ | Wait _ | Wait_until _ | Notify _
  | Nested _ | State_update _ | Call _ | Virtual_call _ | Sched_lock _
  | Sched_unlock _ | Lockinfo _ | Ignore_sync _ | Loop_enter _ | Loop_exit _
    ->
    false

let report ctx fmt =
  Format.kasprintf
    (fun msg ->
      ctx.diags <-
        Printf.sprintf "%s.%s: %s" ctx.cls.cname ctx.meth.name msg
        :: ctx.diags)
    fmt

let check_arg ctx what i =
  if i < 0 || i >= ctx.meth.params then
    report ctx "%s refers to arg%d but the method has %d parameter(s)" what i
      ctx.meth.params

let check_field ctx what f =
  if not (List.mem_assoc f ctx.cls.mutex_fields) then
    report ctx "%s refers to undeclared mutex field %S" what f

let check_state_field ctx f =
  if not (List.mem f ctx.cls.state_fields) then
    report ctx "state update targets undeclared state field %S" f

let check_global ctx what g =
  if not (List.mem_assoc g ctx.cls.globals) then
    report ctx "%s refers to undeclared global %S" what g

let check_sync_param ctx assigned what = function
  | Sp_this -> ()
  | Sp_arg i -> check_arg ctx what i
  | Sp_local v ->
    if not (List.mem v assigned) then
      report ctx "%s uses local %S before any assignment on this path" what v
  | Sp_field f -> check_field ctx what f
  | Sp_global g -> check_global ctx what g
  | Sp_call _ -> ()

let check_mexpr ctx assigned what = function
  | Mconst _ -> ()
  | Marg i -> check_arg ctx what i
  | Mlocal v ->
    if not (List.mem v assigned) then
      report ctx "%s reads local %S before any assignment on this path" what v
  | Mfield f -> check_field ctx what f
  | Mglobal g -> check_global ctx what g
  | Mcall _ -> ()

let rec check_cond ctx = function
  | Cconst _ -> ()
  | Carg_bool i -> check_arg ctx "condition" i
  | Carg_int_eq (i, _) -> check_arg ctx "condition" i
  | Cfield_eq_arg (f, i) ->
    check_field ctx "condition" f;
    check_arg ctx "condition" i
  | Cnot c -> check_cond ctx c

let check_count ctx = function
  | Cfixed n -> if n < 0 then report ctx "negative loop count %d" n
  | Carg i -> check_arg ctx "loop count" i

let check_dur ctx = function
  | Fixed ms -> if ms < 0.0 then report ctx "negative duration %g" ms
  | Arg_dur i -> check_arg ctx "duration" i

(* [held] is the stack of lexically enclosing sync parameters; [assigned] the
   locals assigned on every path reaching this point. Returns the updated
   assigned set. *)
let rec check_stmt ctx ~held ~assigned stmt =
  if is_instrumented_stmt stmt then begin
    report ctx "scheduler instrumentation in source program: %s"
      (Ast.show_stmt stmt);
    assigned
  end
  else
    match stmt with
    | Compute d ->
      check_dur ctx d;
      assigned
    | Assign (v, e) ->
      check_mexpr ctx assigned "assignment" e;
      if List.mem v assigned then assigned else v :: assigned
    | Assign_field (f, e) ->
      check_field ctx "field assignment" f;
      check_mexpr ctx assigned "field assignment" e;
      assigned
    | Sync (p, body) ->
      check_sync_param ctx assigned "synchronized" p;
      ignore (check_block ctx ~held:(p :: held) ~assigned body);
      assigned
    | Lock_acquire p ->
      check_sync_param ctx assigned "explicit lock" p;
      assigned
    | Lock_release p ->
      check_sync_param ctx assigned "explicit unlock" p;
      assigned
    | Wait p ->
      check_sync_param ctx assigned "wait" p;
      if not (List.exists (Ast.equal_sync_param p) held) then
        report ctx "wait on %s outside its synchronized block"
          (Format.asprintf "%a" Pretty.sync_param p);
      assigned
    | Wait_until { param; field; min = _ } ->
      check_sync_param ctx assigned "guarded wait" param;
      check_state_field ctx field;
      if not (List.exists (Ast.equal_sync_param param) held) then
        report ctx "guarded wait on %s outside its synchronized block"
          (Format.asprintf "%a" Pretty.sync_param param);
      assigned
    | Notify { param; all = _ } ->
      check_sync_param ctx assigned "notify" param;
      if not (List.exists (Ast.equal_sync_param param) held) then
        report ctx "notify on %s outside its synchronized block"
          (Format.asprintf "%a" Pretty.sync_param param);
      assigned
    | Nested { service; duration } ->
      if service < 0 then report ctx "negative service id %d" service;
      check_dur ctx duration;
      assigned
    | State_update (f, _) ->
      check_state_field ctx f;
      (* With explicit java.util.concurrent locks the critical section is
         not lexical; the replica still enforces lock possession at run
         time. *)
      if held = [] && not (uses_explicit_locks ctx.meth.body) then
        report ctx "state update of %S outside any synchronized block" f;
      assigned
    | If (c, a, b) ->
      check_cond ctx c;
      let in_a = check_block ctx ~held ~assigned a in
      let in_b = check_block ctx ~held ~assigned b in
      (* Only locals assigned on both branches are definitely assigned. *)
      List.filter (fun v -> List.mem v in_b) in_a
    | Loop { kind = _; count; body } ->
      check_count ctx count;
      ignore (check_block ctx ~held ~assigned body);
      assigned
    | Call m ->
      (match Class_def.find_method ctx.cls m with
      | None -> report ctx "call to undefined method %S" m
      | Some callee ->
        if callee.params > ctx.meth.params then
          report ctx
            "call to %S forwards %d argument(s) but only %d are available" m
            callee.params ctx.meth.params);
      assigned
    | Virtual_call { candidates; selector } ->
      check_arg ctx "virtual dispatch selector" selector;
      if candidates = [] then report ctx "virtual call with no candidates";
      List.iter
        (fun m ->
          if Class_def.find_method ctx.cls m = None then
            report ctx "virtual candidate %S is undefined" m)
        candidates;
      assigned
    | Sched_lock _ | Sched_unlock _ | Lockinfo _ | Ignore_sync _
    | Loop_enter _ | Loop_exit _ ->
      assigned (* unreachable: filtered above *)

and check_block ctx ~held ~assigned body =
  List.fold_left
    (fun assigned stmt -> check_stmt ctx ~held ~assigned stmt)
    assigned body

let errors cls =
  let diags =
    List.concat_map
      (fun meth ->
        let ctx = { cls; meth; diags = [] } in
        ignore (check_block ctx ~held:[] ~assigned:[] meth.body);
        List.rev ctx.diags)
      cls.methods
  in
  let dups =
    let names = Class_def.method_names cls in
    List.filter
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      (List.sort_uniq compare names)
  in
  diags
  @ List.map
      (fun n -> Printf.sprintf "%s: duplicate method name %S" cls.cname n)
      dups

let check_exn cls =
  match errors cls with
  | [] -> ()
  | diags -> invalid_arg (String.concat "\n" diags)
