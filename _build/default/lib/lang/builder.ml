(* Combinators for writing programs in the mini object language.

   These read close to the Java the paper analyses:

   {[
     let open Detmt_lang.Builder in
     meth "foo" ~params:1
       [ sync (arg 0) [ state_incr "balance" 1 ];
         compute 5.0 ]
   ]} *)

open Ast

(* Synchronisation parameters. *)
let this = Sp_this

let arg i = Sp_arg i

let local v = Sp_local v

let field f = Sp_field f

let global g = Sp_global g

let call_result m = Sp_call m

(* Mutex expressions. *)
let mconst i = Mconst i

let marg i = Marg i

let mlocal v = Mlocal v

let mfield f = Mfield f

let mglobal g = Mglobal g

let mcall m = Mcall m

(* Statements. *)
let compute ms = Compute (Fixed ms)

let compute_arg i = Compute (Arg_dur i)

let assign v e = Assign (v, e)

let assign_field f e = Assign_field (f, e)

let sync p body = Sync (p, body)

(* java.util.concurrent explicit locks: acquisition and release need not
   nest lexically. *)
let lock_acquire p = Lock_acquire p

let lock_release p = Lock_release p

let wait p = Wait p

let wait_until p ~field ~min = Wait_until { param = p; field; min }

let notify p = Notify { param = p; all = false }

let notify_all p = Notify { param = p; all = true }

let nested ~service ms = Nested { service; duration = Fixed ms }

let nested_arg ~service i = Nested { service; duration = Arg_dur i }

let state_incr f k = State_update (f, k)

let if_ c a b = If (c, a, b)

let when_ c a = If (c, a, [])

let for_ n body = Loop { kind = For; count = Cfixed n; body }

let for_arg i body = Loop { kind = For; count = Carg i; body }

let while_ n body = Loop { kind = While; count = Cfixed n; body }

let do_while n body = Loop { kind = Do_while; count = Cfixed n; body }

let call m = Call m

let virtual_call ~selector candidates = Virtual_call { candidates; selector }

(* Conditions. *)
let ctrue = Cconst true

let cfalse = Cconst false

let arg_bool i = Carg_bool i

let field_eq_arg f i = Cfield_eq_arg (f, i)

let cnot c = Cnot c

(* Method and class definitions. *)
let meth ?(final = true) ?(exported = true) ?(params = 0) name body =
  { Class_def.name; final; exported; params; body }

let helper ?(final = true) ?(params = 0) name body =
  meth ~final ~exported:false ~params name body

let cls = Class_def.make
