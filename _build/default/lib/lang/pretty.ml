open Ast

let sync_param ppf = function
  | Sp_this -> Format.pp_print_string ppf "this"
  | Sp_arg i -> Format.fprintf ppf "arg%d" i
  | Sp_local v -> Format.pp_print_string ppf v
  | Sp_field f -> Format.fprintf ppf "this.%s" f
  | Sp_global g -> Format.fprintf ppf "Global.%s" g
  | Sp_call m -> Format.fprintf ppf "%s()" m

let mexpr ppf = function
  | Mconst i -> Format.fprintf ppf "mutex#%d" i
  | Marg i -> Format.fprintf ppf "arg%d" i
  | Mlocal v -> Format.pp_print_string ppf v
  | Mfield f -> Format.fprintf ppf "this.%s" f
  | Mglobal g -> Format.fprintf ppf "Global.%s" g
  | Mcall m -> Format.fprintf ppf "%s()" m

let rec cond ppf = function
  | Cconst b -> Format.pp_print_bool ppf b
  | Carg_bool i -> Format.fprintf ppf "arg%d" i
  | Carg_int_eq (i, k) -> Format.fprintf ppf "arg%d == %d" i k
  | Cfield_eq_arg (f, i) -> Format.fprintf ppf "this.%s.equals(arg%d)" f i
  | Cnot c -> Format.fprintf ppf "!(%a)" cond c

let dur ppf = function
  | Fixed ms -> Format.fprintf ppf "%gms" ms
  | Arg_dur i -> Format.fprintf ppf "arg%d ms" i

let count ppf = function
  | Cfixed n -> Format.pp_print_int ppf n
  | Carg i -> Format.fprintf ppf "arg%d" i

let loop_head ppf (kind, c) =
  match kind with
  | For -> Format.fprintf ppf "for (%a times)" count c
  | While -> Format.fprintf ppf "while (%a times)" count c
  | Do_while -> Format.fprintf ppf "do (%a times)" count c

let rec stmt ppf = function
  | Compute d -> Format.fprintf ppf "compute(%a);" dur d
  | Assign (v, e) -> Format.fprintf ppf "Object %s = %a;" v mexpr e
  | Assign_field (f, e) -> Format.fprintf ppf "this.%s = %a;" f mexpr e
  | Sync (p, body) ->
    Format.fprintf ppf "@[<v 2>synchronized (%a) {%a@]@,}" sync_param p
      block_body body
  | Lock_acquire p -> Format.fprintf ppf "%a.lock();" sync_param p
  | Lock_release p -> Format.fprintf ppf "%a.unlock();" sync_param p
  | Wait p -> Format.fprintf ppf "%a.wait();" sync_param p
  | Wait_until { param; field; min } ->
    Format.fprintf ppf "while (this.%s < %d) %a.wait();" field min sync_param
      param
  | Notify { param; all } ->
    Format.fprintf ppf "%a.notify%s();" sync_param param
      (if all then "All" else "")
  | Nested { service; duration } ->
    Format.fprintf ppf "service%d.invoke(/* %a */);" service dur duration
  | State_update (f, k) -> Format.fprintf ppf "this.%s += %d;" f k
  | If (c, a, []) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,}" cond c block_body a
  | If (c, a, b) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" cond c
      block_body a block_body b
  | Loop { kind; count = c; body } ->
    Format.fprintf ppf "@[<v 2>%a {%a@]@,}" loop_head (kind, c) block_body
      body
  | Call m -> Format.fprintf ppf "%s();" m
  | Virtual_call { candidates; selector } ->
    Format.fprintf ppf "obj.dispatch(arg%d); /* one of %s */" selector
      (String.concat ", " candidates)
  | Sched_lock (sid, p) ->
    Format.fprintf ppf "scheduler.lock(%d, %a);" sid sync_param p
  | Sched_unlock (sid, p) ->
    Format.fprintf ppf "scheduler.unlock(%d, %a);" sid sync_param p
  | Lockinfo (sid, p) ->
    Format.fprintf ppf "scheduler.lockInfo(%d, %a);" sid sync_param p
  | Ignore_sync sid -> Format.fprintf ppf "scheduler.ignore(%d);" sid
  | Loop_enter lid -> Format.fprintf ppf "scheduler.loopEnter(%d);" lid
  | Loop_exit lid -> Format.fprintf ppf "scheduler.loopExit(%d);" lid

and block_body ppf body =
  List.iter (fun s -> Format.fprintf ppf "@,%a" stmt s) body

let block ppf body =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@,";
      stmt ppf s)
    body;
  Format.fprintf ppf "@]"

let method_def ppf (m : Class_def.method_def) =
  let params =
    List.init m.params (fun i -> Printf.sprintf "Object arg%d" i)
    |> String.concat ", "
  in
  Format.fprintf ppf "@[<v 2>%s%svoid %s(%s) {%a@]@,}"
    (if m.exported then "public " else "private ")
    (if m.final then "final " else "")
    m.name params block_body m.body

let class_def ppf (c : Class_def.t) =
  Format.fprintf ppf "@[<v 2>class %s {" c.cname;
  List.iter
    (fun (f, init) ->
      Format.fprintf ppf "@,private Object %s = mutex#%d;" f init)
    c.mutex_fields;
  List.iter
    (fun f -> Format.fprintf ppf "@,private int %s = 0;" f)
    c.state_fields;
  List.iter
    (fun m -> Format.fprintf ppf "@,@,%a" method_def m)
    c.methods;
  Format.fprintf ppf "@]@,}"

let block_to_string body = Format.asprintf "%a" block body

let method_to_string m = Format.asprintf "%a" method_def m
