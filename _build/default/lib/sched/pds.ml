(* PDS — preemptive deterministic scheduling (Basile et al. [1]).

   A pool of [pds_batch] worker slots executes requests concurrently; each
   thread runs until it requests its first lock.  Locks are granted only when
   every busy slot has "arrived" (reached a lock request, terminated or
   suspended): then the round is decided — requests are granted in thread-age
   order, conflicting ones serialised within the round — and the round ends
   once every granted lock has been released.  When the batch cannot fill,
   dummy messages are injected after a timeout so that requests are
   eventually processed; the price is additional group-communication load.

   The paper's "optimised version [in which] each thread is allowed to
   request two locks" is implemented too: a round member that requests a
   second lock while still holding its round grant (nested synchronized
   blocks, hand-over-hand locking) joins the open round instead of stalling
   until the next one — without this, any nested acquisition would deadlock
   the round.

   Condition variables (the FTflex addition the paper calls "even more
   complicated"): a wait counts as a suspension for round accounting, and the
   re-acquisition after notify competes like a normal lock request in a later
   round. *)

open Detmt_runtime

type arrival =
  | A_lock of int (* mutex; includes monitor re-acquisitions *)
  | A_suspended (* waits and nested invocations count as arrived *)

type t = {
  actions : Sched_iface.actions;
  batch : int;
  dummy_timeout_ms : float;
  mutable backlog : int list; (* delivered, not yet started, FIFO *)
  mutable slots : int list; (* started, not terminated, age order *)
  mutable phantoms : int;
      (* slots whose thread already terminated (dummies, lock-free
         requests): they count as "arrived" towards the batch until the next
         round decision *)
  arrived : (int, arrival) Hashtbl.t;
  reacquire : (int, unit) Hashtbl.t; (* pending op is a re-acquisition *)
  mutable round_open : bool;
  mutable round_members : int list; (* threads whose lock this round decides *)
  round_grants : (int, int) Hashtbl.t; (* grants per member this round *)
  mutable round_waiting : (int * int) list; (* (tid, mutex), age order *)
  mutable round_unreleased : (int * int) list; (* granted, not yet released *)
  mutable timer_armed : bool;
  mutable dummies_requested : int;
}

let fill_slots t =
  while List.length t.slots < t.batch && t.backlog <> [] do
    match t.backlog with
    | [] -> ()
    | tid :: rest ->
      t.backlog <- rest;
      t.slots <- t.slots @ [ tid ];
      t.actions.start_thread tid
  done

let grant t tid =
  if Hashtbl.mem t.reacquire tid then begin
    Hashtbl.remove t.reacquire tid;
    t.actions.grant_reacquire tid
  end
  else t.actions.grant_lock tid

(* Grant every still-waiting round member whose mutex is currently free, in
   age order. *)
let grant_eligible t =
  let rec go () =
    let eligible =
      List.find_opt
        (fun (tid, mutex) -> t.actions.mutex_free_for ~tid ~mutex)
        t.round_waiting
    in
    match eligible with
    | None -> ()
    | Some (tid, mutex) ->
      t.round_waiting <- List.filter (fun (w, _) -> w <> tid) t.round_waiting;
      t.round_unreleased <- t.round_unreleased @ [ (tid, mutex) ];
      Hashtbl.replace t.round_grants tid
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.round_grants tid));
      grant t tid;
      go ()
  in
  go ()

let rec end_round_if_done t =
  if t.round_open && t.round_waiting = [] && t.round_unreleased = [] then begin
    t.round_open <- false;
    (* Member arrivals were consumed when the round was decided; records
       that appeared while the round was open (members reaching their next
       lock, threads suspending) survive into the next round. *)
    t.round_members <- [];
    fill_slots t;
    check_round t
  end

and check_round t =
  if (not t.round_open) && t.slots <> [] then begin
    let all_arrived = List.for_all (Hashtbl.mem t.arrived) t.slots in
    let batch_full = List.length t.slots + t.phantoms >= t.batch in
    if all_arrived && batch_full then begin
      (* Decision point: the batch is complete (possibly padded by dummy
         phantoms) and every member is at a deterministic stop. *)
      t.phantoms <- 0;
      Hashtbl.reset t.round_grants;
      let requests =
        List.filter_map
          (fun tid ->
            match Hashtbl.find_opt t.arrived tid with
            | Some (A_lock mutex) -> Some (tid, mutex)
            | Some A_suspended | None -> None)
          t.slots
      in
      if requests = [] then fill_slots t
      else begin
        t.round_open <- true;
        t.round_members <- List.map fst requests;
        t.round_waiting <- requests;
        List.iter (fun tid -> Hashtbl.remove t.arrived tid) t.round_members;
        grant_eligible t;
        end_round_if_done t
      end
    end
    else arm_timer t
  end

(* The batch cannot decide while slots are missing; after the timeout the
   scheduler asks for dummy messages so that all requests are eventually
   processed even if no new external messages arrive. *)
and arm_timer t =
  let missing = t.batch - List.length t.slots - t.phantoms in
  let stalled_on_arrivals =
    missing > 0 && t.backlog = [] && Hashtbl.length t.arrived > 0
  in
  if stalled_on_arrivals && not t.timer_armed then begin
    t.timer_armed <- true;
    t.actions.schedule ~delay:t.dummy_timeout_ms (fun () ->
        t.timer_armed <- false;
        let missing_now = t.batch - List.length t.slots - t.phantoms in
        if
          (not t.round_open) && missing_now > 0 && t.backlog = []
          && Hashtbl.length t.arrived > 0
        then begin
          t.dummies_requested <- t.dummies_requested + missing_now;
          for _ = 1 to missing_now do
            t.actions.inject_dummy ()
          done
        end)
  end

let on_request t tid =
  t.backlog <- t.backlog @ [ tid ];
  fill_slots t;
  check_round t

let on_lock t tid ~syncid:_ ~mutex =
  let second_in_round =
    t.round_open
    && List.exists (fun (w, _) -> w = tid) t.round_unreleased
    && Option.value ~default:0 (Hashtbl.find_opt t.round_grants tid) < 2
  in
  if second_in_round then begin
    (* The optimised variant: a member still holding its round grant may
       request one more lock within the same round (nested synchronized
       blocks would otherwise deadlock the round). *)
    t.round_waiting <-
      List.sort compare (t.round_waiting @ [ (tid, mutex) ]);
    grant_eligible t;
    end_round_if_done t
  end
  else begin
    Hashtbl.replace t.arrived tid (A_lock mutex);
    if t.round_open then
      (* Arrived after the round was decided: wait for the next one. *)
      ()
    else check_round t
  end

let on_wakeup t tid ~mutex =
  Hashtbl.replace t.reacquire tid ();
  Hashtbl.replace t.arrived tid (A_lock mutex);
  if not t.round_open then check_round t

let on_unlock t tid ~syncid:_ ~mutex ~freed =
  if freed && t.round_open then begin
    (match
       List.find_opt
         (fun (w, m) -> w = tid && m = mutex)
         t.round_unreleased
     with
    | Some entry ->
      t.round_unreleased <-
        List.filter (fun e -> e != entry) t.round_unreleased
    | None -> ());
    grant_eligible t;
    end_round_if_done t
  end

let on_wait t tid ~mutex =
  ignore mutex;
  Hashtbl.replace t.arrived tid A_suspended;
  (* The wait may have released a mutex a round member needs. *)
  if t.round_open then begin
    (* A waiting round member cannot release its round lock anymore;
       treat its grant as released if it was granted this round. *)
    t.round_unreleased <-
      List.filter (fun (w, _) -> w <> tid) t.round_unreleased;
    grant_eligible t;
    end_round_if_done t
  end
  else check_round t

let on_nested_begin t tid =
  Hashtbl.replace t.arrived tid A_suspended;
  if not t.round_open then check_round t

let on_nested_reply t tid =
  (* Resume immediately: the thread free-runs to its next lock request. *)
  Hashtbl.remove t.arrived tid;
  t.actions.resume_nested tid;
  if not t.round_open then check_round t

let on_terminate t tid =
  if List.mem tid t.slots then begin
    t.slots <- List.filter (fun s -> s <> tid) t.slots;
    (* The emptied slot counts towards the current batch until the next
       round decision — this is how dummy messages complete a batch. *)
    t.phantoms <- t.phantoms + 1
  end;
  Hashtbl.remove t.arrived tid;
  if t.round_open then begin
    t.round_unreleased <-
      List.filter (fun (w, _) -> w <> tid) t.round_unreleased;
    t.round_waiting <- List.filter (fun (w, _) -> w <> tid) t.round_waiting;
    grant_eligible t;
    end_round_if_done t
  end;
  fill_slots t;
  check_round t

let dummies_requested t = t.dummies_requested

let make_with ~batch ~dummy_timeout_ms (actions : Sched_iface.actions) :
    Sched_iface.sched * t =
  let t =
    { actions; batch; dummy_timeout_ms; backlog = []; slots = [];
      phantoms = 0;
      arrived = Hashtbl.create 64; reacquire = Hashtbl.create 16;
      round_open = false; round_members = [];
      round_grants = Hashtbl.create 16; round_waiting = [];
      round_unreleased = []; timer_armed = false; dummies_requested = 0 }
  in
  let base =
    Sched_iface.no_op_sched ~name:"pds"
      ~on_request:(on_request t)
      ~on_lock:(on_lock t)
      ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  ( { base with
      on_unlock = (fun tid ~syncid ~mutex ~freed ->
          on_unlock t tid ~syncid ~mutex ~freed);
      on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
      on_nested_begin = on_nested_begin t;
      on_terminate = on_terminate t },
    t )

let make ~config (actions : Sched_iface.actions) : Sched_iface.sched =
  fst
    (make_with ~batch:config.Config.pds_batch
       ~dummy_timeout_ms:config.Config.pds_dummy_timeout_ms actions)
