(** SAT — single active thread (Jiménez-Peris et al. [6] for transactional
    replicas, adapted by Zhao et al. [13] for object replication; the FTflex
    variant [3] adds condition variables).

    Not concurrency: a new thread may start or resume only when the
    previously active thread suspends (wait, nested invocation, or a lock
    held by a suspended thread) or terminates.  Threads whose suspension
    reason has resolved queue FIFO and are activated one at a time.  Uses
    the idle time of nested invocations but never keeps more than one CPU
    busy (section 3.1). *)

val make : Detmt_runtime.Sched_iface.actions -> Detmt_runtime.Sched_iface.sched
