lib/sched/mat.mli: Detmt_analysis Detmt_runtime
