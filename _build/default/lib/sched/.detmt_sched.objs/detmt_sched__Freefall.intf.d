lib/sched/freefall.mli: Detmt_runtime
