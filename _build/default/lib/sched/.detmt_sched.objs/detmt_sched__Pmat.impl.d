lib/sched/pmat.ml: Bookkeeping Detmt_runtime List Sched_iface
