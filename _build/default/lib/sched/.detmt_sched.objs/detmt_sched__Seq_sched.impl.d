lib/sched/seq_sched.ml: Detmt_runtime Queue Sched_iface
