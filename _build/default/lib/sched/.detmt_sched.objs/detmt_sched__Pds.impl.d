lib/sched/pds.ml: Config Detmt_runtime Hashtbl List Option Sched_iface
