lib/sched/pmat.mli: Detmt_analysis Detmt_runtime
