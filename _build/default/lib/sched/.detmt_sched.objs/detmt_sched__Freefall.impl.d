lib/sched/freefall.ml: Detmt_runtime Detmt_sim Hashtbl Int64 List Rng Sched_iface
