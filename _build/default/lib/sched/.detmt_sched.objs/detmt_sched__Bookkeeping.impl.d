lib/sched/bookkeeping.ml: Detmt_analysis Hashtbl List Predict
