lib/sched/lsa.mli: Detmt_runtime
