lib/sched/bookkeeping.mli: Detmt_analysis
