lib/sched/registry.mli: Detmt_analysis Detmt_runtime
