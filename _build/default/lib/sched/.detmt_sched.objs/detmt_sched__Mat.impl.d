lib/sched/mat.ml: Bookkeeping Detmt_runtime List Option Sched_iface
