lib/sched/registry.ml: Adaptive Config Detmt_analysis Detmt_runtime Freefall List Lsa Mat Pds Pmat Printf Sat Sched_iface Seq_sched String
