lib/sched/sat.ml: Detmt_runtime List Sched_iface
