lib/sched/adaptive.mli: Detmt_analysis Detmt_runtime
