lib/sched/lsa.ml: Detmt_runtime Hashtbl List Printf Sched_iface Waitq
