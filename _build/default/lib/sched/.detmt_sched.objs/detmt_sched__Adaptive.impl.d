lib/sched/adaptive.ml: Config Detmt_analysis Detmt_runtime List Mat Pmat Sched_iface Seq_sched String
