lib/sched/waitq.mli:
