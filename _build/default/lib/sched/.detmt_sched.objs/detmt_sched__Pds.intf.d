lib/sched/pds.mli: Detmt_runtime
