lib/sched/seq_sched.mli: Detmt_runtime
