lib/sched/waitq.ml: Hashtbl List
