lib/sched/sat.mli: Detmt_runtime
