(** Name-based construction of decision modules.

    [needs_prediction] tells the replication layer which transformation the
    scheduler requires: predictive schedulers must run code produced by
    [Transform.predictive] (announcements, ignores, loop markers), the others
    run [Transform.basic] output. *)

type spec = {
  name : string;
  needs_prediction : bool;
  deterministic : bool;  (** [false] only for the freefall baseline *)
  description : string;
  make :
    config:Detmt_runtime.Config.t ->
    summary:Detmt_analysis.Predict.class_summary option ->
    Detmt_runtime.Sched_iface.actions ->
    Detmt_runtime.Sched_iface.sched;
}

val all : spec list
(** seq, sat, lsa, pds, mat, mat-ll, pmat, freefall. *)

val paper_figure1 : string list
(** The five algorithms of Figure 1: seq, sat, lsa, pds, mat. *)

val find : string -> spec option

val find_exn : string -> spec
(** @raise Invalid_argument on unknown names, listing the valid ones. *)
