open Detmt_runtime

type spec = {
  name : string;
  needs_prediction : bool;
  deterministic : bool;
  description : string;
  make :
    config:Config.t ->
    summary:Detmt_analysis.Predict.class_summary option ->
    Sched_iface.actions ->
    Sched_iface.sched;
}

let require_summary name = function
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf
         "%s needs a prediction summary (run Transform.predictive)" name)

let all =
  [ { name = "seq"; needs_prediction = false; deterministic = true;
      description = "sequential request execution in total order";
      make = (fun ~config:_ ~summary:_ a -> Seq_sched.make a) };
    { name = "sat"; needs_prediction = false; deterministic = true;
      description = "single active thread [Jimenez-Peris et al.]";
      make = (fun ~config:_ ~summary:_ a -> Sat.make a) };
    { name = "lsa"; needs_prediction = false; deterministic = true;
      description = "loose synchronisation, leader/follower [Basile et al.]";
      make = (fun ~config:_ ~summary:_ a -> Lsa.make a) };
    { name = "pds"; needs_prediction = false; deterministic = true;
      description = "preemptive deterministic scheduling [Basile et al.]";
      make = (fun ~config ~summary:_ a -> Pds.make ~config a) };
    { name = "mat"; needs_prediction = false; deterministic = true;
      description = "multiple active threads [Reiser et al.]";
      make = (fun ~config:_ ~summary:_ a -> Mat.make a) };
    { name = "mat-ll"; needs_prediction = true; deterministic = true;
      description = "MAT + last-lock analysis (Figure 2)";
      make =
        (fun ~config:_ ~summary a ->
          Mat.make_last_lock ~summary:(require_summary "mat-ll" summary) a) };
    { name = "pmat"; needs_prediction = true; deterministic = true;
      description = "predicted MAT: lock prediction by code analysis (4.3)";
      make =
        (fun ~config:_ ~summary a ->
          Pmat.make ~summary:(require_summary "pmat" summary) a) };
    { name = "adaptive"; needs_prediction = true; deterministic = true;
      description =
        "request analyser choosing seq/mat/pmat at run time (section 5)";
      make = (fun ~config ~summary a -> Adaptive.make ~config ~summary a) };
    { name = "freefall"; needs_prediction = false; deterministic = false;
      description = "non-deterministic baseline (native JVM behaviour)";
      make = (fun ~config:_ ~summary:_ a -> Freefall.make a) };
  ]

let paper_figure1 = [ "seq"; "sat"; "lsa"; "pds"; "mat" ]

let find name = List.find_opt (fun s -> String.equal s.name name) all

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scheduler %S (valid: %s)" name
         (String.concat ", " (List.map (fun s -> s.name) all)))
