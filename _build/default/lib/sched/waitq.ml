type t = (int, int list ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let queue t mutex =
  match Hashtbl.find_opt t mutex with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.add t mutex q;
    q

let push t ~mutex tid =
  let q = queue t mutex in
  q := !q @ [ tid ]

let head t ~mutex =
  match !(queue t mutex) with [] -> None | tid :: _ -> Some tid

let pop t ~mutex =
  let q = queue t mutex in
  match !q with
  | [] -> None
  | tid :: rest ->
    q := rest;
    Some tid

let remove t ~mutex ~tid =
  let q = queue t mutex in
  if List.mem tid !q then begin
    q := List.filter (fun w -> w <> tid) !q;
    true
  end
  else false

let mem t ~mutex ~tid = List.mem tid !(queue t mutex)

let is_empty t ~mutex = !(queue t mutex) = []

let waiting t ~mutex = !(queue t mutex)
