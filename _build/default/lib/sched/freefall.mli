(** Freefall — the deliberately NON-deterministic baseline.

    Locks are granted first-come first-served with wake-ups randomised per
    replica, the way free-running JVM threads would behave.  Exists so the
    consistency checker has something to catch (experiment E10): replicas
    diverge in acquisition order, which is the paper's motivation in one
    module. *)

val make : Detmt_runtime.Sched_iface.actions -> Detmt_runtime.Sched_iface.sched
