(** PMAT — predicted MAT, the extension proposed in section 4.3.

    A queue of equal threads in arrival order; a thread's lock request is
    granted as soon as the mutex is free and every preceding thread is
    predicted with a future lock set that does not contain the mutex.
    Wake-up events are exactly the paper's: a conflicting mutex is
    released, a thread leaves the list, or a preceding thread becomes
    predicted.

    The questions the paper leaves open are resolved as documented in
    DESIGN.md: a thread suspended in [wait] leaves the queue (else its
    notifier could deadlock behind it) and re-enters at the tail on its
    notification; a thread suspended in a nested invocation keeps its
    place. *)

val make :
  summary:Detmt_analysis.Predict.class_summary ->
  Detmt_runtime.Sched_iface.actions ->
  Detmt_runtime.Sched_iface.sched
