(** SEQ — strictly sequential request execution in total order.

    The baseline most object replication systems use: one request runs from
    start to finish (nested invocations included) before the next starts.
    Trivially deterministic; never uses more than one CPU; does not reuse
    the idle time of nested invocations; deadlocks on re-entrant nested
    invocation chains and on condition-variable waits — the paper's
    motivation for everything else in this library. *)

val make : Detmt_runtime.Sched_iface.actions -> Detmt_runtime.Sched_iface.sched
