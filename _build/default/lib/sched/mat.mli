(** MAT — multiple active threads (Reiser et al. [11], section 3.4).

    One primary thread (the only one allowed to acquire locks) plus any
    number of secondary threads that may compute and issue nested
    invocations freely.  The oldest secondary becomes primary when the
    current primary suspends or terminates; resumable ex-primaries take
    priority.  [make_last_lock] is the Figure 2 variant: with a bookkeeping
    module attached, primacy is handed over as soon as the primary has
    provably released its last lock, and lock-free threads are skipped at
    promotion. *)

val make : Detmt_runtime.Sched_iface.actions -> Detmt_runtime.Sched_iface.sched
(** Plain pessimistic MAT. *)

val make_last_lock :
  summary:Detmt_analysis.Predict.class_summary ->
  Detmt_runtime.Sched_iface.actions ->
  Detmt_runtime.Sched_iface.sched
(** MAT + last-lock analysis ("mat-ll"): requires the predictive
    transformation's summary. *)
