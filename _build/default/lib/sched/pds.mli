(** PDS — preemptive deterministic scheduling (Basile et al. [1]).

    A pool of [Config.pds_batch] worker slots; threads run to their next
    lock request and locks are only granted in rounds, once every busy slot
    has arrived at a deterministic stop.  Includes the paper's optimised
    variant (up to two lock requests per round, which keeps nested
    synchronized blocks and lock coupling live) and the FTflex dummy-message
    mechanism that unblocks incomplete batches at the price of extra
    group-communication traffic (section 3.3). *)

type t
(** Scheduler state, exposed for white-box tests. *)

val dummies_requested : t -> int

val make_with :
  batch:int ->
  dummy_timeout_ms:float ->
  Detmt_runtime.Sched_iface.actions ->
  Detmt_runtime.Sched_iface.sched * t

val make :
  config:Detmt_runtime.Config.t ->
  Detmt_runtime.Sched_iface.actions ->
  Detmt_runtime.Sched_iface.sched
