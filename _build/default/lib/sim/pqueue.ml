type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let is_empty q = q.size = 0

let length q = q.size

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q =
  let cap = max 16 (2 * Array.length q.data) in
  let data = Array.make cap q.data.(0) in
  Array.blit q.data 0 data 0 q.size;
  q.data <- data

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q.data.(i) q.data.(parent) then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(parent);
      q.data.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && less q.data.(l) q.data.(!smallest) then smallest := l;
  if r < q.size && less q.data.(r) q.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.data.(i) in
    q.data.(i) <- q.data.(!smallest);
    q.data.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q ~time ~seq value =
  let entry = { time; seq; value } in
  if q.size = Array.length q.data then
    if q.size = 0 then q.data <- Array.make 16 entry else grow q;
  q.data.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.seq, top.value)
  end

let peek q =
  if q.size = 0 then None
  else
    let top = q.data.(0) in
    Some (top.time, top.seq, top.value)

let clear q = q.size <- 0
