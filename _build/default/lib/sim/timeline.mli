(** ASCII schedule timelines — the visual form of the paper's Figures 2
    and 3.

    One row per thread, sampled over virtual time:

    {v
    t0  ====####----nnnn====.
    t1     ....####====.
    v}

    [=] running, [#] holding at least one lock, [.] blocked on a lock
    grant, [w] waiting on a condition variable, [n] inside a nested
    invocation, space: not alive.  The states are reconstructed from a
    replica's timed trace. *)

type t

val of_trace : (float * Trace.event) list -> t
(** Build per-thread state intervals from {!Trace.timed_events}. *)

val threads : t -> int list

val span : t -> float * float
(** First and last event time. *)

val state_at : t -> tid:int -> time:float -> char
(** The rendered character for the thread's state at a virtual time. *)

val render :
  ?width:int -> ?threads:int list -> Format.formatter -> t -> unit
(** Draw the timelines ([width] columns, default 72), one row per thread
    (all of them, or the selected subset), plus a legend and the time
    scale. *)
