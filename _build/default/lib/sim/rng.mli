(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through this module so
    that a run is a pure function of its seeds.  The generator is the SplitMix64
    construction of Steele, Lea and Flood; it is fast, has a 64-bit state and
    supports {!split}, which derives an independent stream — used to give each
    client, replica and workload its own stream without coordination. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution. *)

val uniform_range : t -> float -> float -> float
(** [uniform_range t lo hi] is uniform in [\[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle driven by [t]. *)
