type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  (* Re-mix with a distinct constant so split streams do not overlap the
     parent stream even for adversarial seeds. *)
  { state = mix (Int64.logxor seed 0xA0761D6478BD642FL) }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits: a native int is 63 bits wide, so a 63-bit value would wrap
     negative in [Int64.to_int]. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  assert (bound > 0.);
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  let unit = Int64.to_float bits *. (1.0 /. 9007199254740992.0) in
  unit *. bound

let bool t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  -. mean *. log1p (-. u)

let uniform_range t lo hi =
  assert (hi >= lo);
  lo +. float t (hi -. lo +. epsilon_float) |> min hi

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
