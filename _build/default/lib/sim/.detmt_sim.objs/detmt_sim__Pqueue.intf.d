lib/sim/pqueue.mli:
