lib/sim/trace.ml: Bool Char Format Int64 List String
