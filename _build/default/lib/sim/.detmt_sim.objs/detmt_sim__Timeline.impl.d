lib/sim/timeline.ml: Format Hashtbl List String Trace
