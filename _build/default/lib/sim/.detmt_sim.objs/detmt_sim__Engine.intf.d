lib/sim/engine.mli:
