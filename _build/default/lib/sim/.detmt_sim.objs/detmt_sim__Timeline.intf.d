lib/sim/timeline.mli: Format Trace
