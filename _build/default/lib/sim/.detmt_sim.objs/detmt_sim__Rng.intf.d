lib/sim/rng.mli:
