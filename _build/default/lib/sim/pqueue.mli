(** Binary min-heap priority queue with stable tie-breaking.

    Keys are [(time, seq)] pairs compared lexicographically; the event engine
    allocates monotonically increasing sequence numbers, so two events scheduled
    for the same virtual time are delivered in scheduling order.  This stability
    is what makes the whole simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit
(** [push q ~time ~seq v] inserts [v] with priority [(time, seq)]. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] when empty. *)

val peek : 'a t -> (float * int * 'a) option
(** Return the minimum element without removing it. *)

val clear : 'a t -> unit
