type segment = { duration : float; k : unit -> unit }

type t = {
  engine : Engine.t;
  cores : int;
  mutable busy : int;
  waiting : segment Queue.t;
  mutable busy_time : float;
}

let create engine ~cores =
  if cores < 1 then invalid_arg "Cpu.create: cores must be >= 1";
  { engine; cores; busy = 0; waiting = Queue.create (); busy_time = 0.0 }

let cores t = t.cores

let busy t = t.busy

let queued t = Queue.length t.waiting

let rec start t seg =
  t.busy <- t.busy + 1;
  t.busy_time <- t.busy_time +. seg.duration;
  Engine.schedule t.engine ~delay:seg.duration (fun () -> finish t seg)

and finish t seg =
  t.busy <- t.busy - 1;
  (* Hand the freed core to the oldest waiter before running the
     continuation, so FIFO order is independent of what [seg.k] schedules. *)
  (match Queue.take_opt t.waiting with
  | Some next -> start t next
  | None -> ());
  seg.k ()

let exec t ~duration k =
  if duration < 0.0 then invalid_arg "Cpu.exec: negative duration";
  let seg = { duration; k } in
  if t.busy < t.cores then start t seg else Queue.add seg t.waiting

let busy_time t = t.busy_time
