(* Tests for the analytic performance model (section 5). *)

let b = Alcotest.bool

let wl = Detmt_workload.Figure1.compute_heavy

let measure ~scheduler ~clients =
  let cls = Detmt_workload.Figure1.cls wl in
  let gen = Detmt_workload.Figure1.gen wl in
  (Detmt.Experiment.run_workload ~scheduler ~clients ~cls ~gen ())
    .Detmt.Experiment.mean_response_ms

let within ~tolerance predicted measured =
  abs_float (predicted -. measured) <= tolerance *. measured

let test_against_simulation () =
  List.iter
    (fun (scheduler, tolerance) ->
      List.iter
        (fun clients ->
          let w = Detmt.Model.of_figure1 ~clients wl in
          let predicted = Detmt.Model.predict_response_ms w ~scheduler in
          let measured = measure ~scheduler ~clients in
          if not (within ~tolerance predicted measured) then
            Alcotest.failf "%s @ %d clients: model %.1f vs sim %.1f"
              scheduler clients predicted measured)
        [ 8; 16 ])
    [ ("seq", 0.25); ("sat", 0.25); ("mat", 0.25); ("lsa", 0.25) ]

let test_ordering_preserved () =
  (* The model must reproduce the Figure-1 ordering at scale. *)
  let w = Detmt.Model.of_figure1 ~clients:32 wl in
  let p s = Detmt.Model.predict_response_ms w ~scheduler:s in
  Alcotest.check b "seq > sat" true (p "seq" > p "sat");
  Alcotest.check b "sat > mat" true (p "sat" > p "mat");
  Alcotest.check b "mat > lsa" true (p "mat" > p "lsa")

let test_solo_floor () =
  (* With one client, every scheduler is bounded below by the solo time. *)
  let w = Detmt.Model.of_figure1 ~clients:1 wl in
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-6))
        (s ^ " solo") w.Detmt.Model.solo_ms
        (Detmt.Model.predict_response_ms w ~scheduler:s))
    Detmt.Model.covered_schedulers

let test_mat_benefits_from_prelock () =
  let base = Detmt.Model.of_figure1 ~clients:16 Detmt_workload.Figure1.default in
  let heavy = Detmt.Model.of_figure1 ~clients:16 wl in
  let gap w =
    Detmt.Model.predict_response_ms w ~scheduler:"sat"
    -. Detmt.Model.predict_response_ms w ~scheduler:"mat"
  in
  Alcotest.check b "front computation widens the SAT-MAT gap" true
    (gap heavy > gap base)

let test_unknown_scheduler_rejected () =
  let w = Detmt.Model.of_figure1 ~clients:4 wl in
  Alcotest.check b "raises" true
    (try
       ignore (Detmt.Model.predict_response_ms w ~scheduler:"nope");
       false
     with Invalid_argument _ -> true)

let suite =
  [ ("model vs simulation", `Slow, test_against_simulation);
    ("ordering preserved", `Quick, test_ordering_preserved);
    ("solo floor", `Quick, test_solo_floor);
    ("prelock widens SAT-MAT gap", `Quick, test_mat_benefits_from_prelock);
    ("unknown scheduler rejected", `Quick, test_unknown_scheduler_rejected);
  ]

let () = Alcotest.run "model" [ ("model", suite) ]
