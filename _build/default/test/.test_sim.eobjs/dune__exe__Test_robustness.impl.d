test/test_robustness.ml: Active Alcotest Ast Builder Client Consistency Detmt_lang Detmt_replication Detmt_runtime Detmt_sched Detmt_sim Detmt_transform Detmt_workload List
