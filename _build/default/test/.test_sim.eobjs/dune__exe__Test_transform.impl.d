test/test_transform.ml: Alcotest Ast Builder Class_def Detmt_analysis Detmt_lang Detmt_transform List Option Predict Pretty Printf String Transform Verify
