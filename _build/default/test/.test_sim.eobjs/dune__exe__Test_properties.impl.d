test/test_properties.ml: Alcotest Ast Class_def Detmt_lang Detmt_replication Detmt_runtime Detmt_sim Detmt_transform List QCheck QCheck_alcotest Testgen Wellformed
