test/test_replication.ml: Active Alcotest Client Consistency Detmt_replication Detmt_runtime Detmt_sim Detmt_stats Detmt_workload Engine Failover Format List Passive Printf Rng String Trace
