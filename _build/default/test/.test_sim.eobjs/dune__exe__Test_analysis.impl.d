test/test_analysis.ml: Alcotest Ast Builder Callgraph Class_def Detmt_analysis Detmt_lang Detmt_transform Last_lock List Loops Option Param_class Paths QCheck QCheck_alcotest Syncid
