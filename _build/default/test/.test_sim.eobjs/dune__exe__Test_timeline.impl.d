test/test_timeline.ml: Alcotest Detmt Detmt_sim Format Fun List String Timeline Trace
