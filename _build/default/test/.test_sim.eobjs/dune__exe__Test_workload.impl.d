test/test_workload.ml: Alcotest Array Ast Class_def Detmt_analysis Detmt_lang Detmt_sim Detmt_transform Detmt_workload List Option Wellformed
