test/test_lang.ml: Alcotest Ast Builder Class_def Detmt_lang Detmt_workload Format List Pretty String Wellformed
