test/test_dml.ml: Alcotest Ast Class_def Detmt_lang Detmt_replication Detmt_sim Detmt_workload Dml List QCheck QCheck_alcotest String Testgen
