test/testgen.ml: Ast Class_def Detmt_lang QCheck
