test/test_sim.ml: Alcotest Array Cpu Detmt_sim Engine Fun List Pqueue QCheck QCheck_alcotest Rng Trace
