test/test_runtime.ml: Alcotest Ast Builder Condvar Detmt_lang Detmt_runtime Detmt_transform Interp List Mutex_table Object_state Op Request String
