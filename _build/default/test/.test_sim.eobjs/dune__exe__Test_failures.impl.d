test/test_failures.ml: Active Alcotest Client Consistency Detmt_replication Detmt_runtime Detmt_sim Detmt_workload Engine Failover List Printf Rng
