test/test_scenarios.ml: Active Alcotest Ast Builder Client Detmt_analysis Detmt_lang Detmt_replication Detmt_runtime Detmt_sched Detmt_sim Detmt_transform Detmt_workload Engine List Option Rng Trace
