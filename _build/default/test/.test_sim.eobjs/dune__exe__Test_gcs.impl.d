test/test_gcs.ml: Alcotest Dedup Detmt_gcs Detmt_sim Engine Group List Message Totem
