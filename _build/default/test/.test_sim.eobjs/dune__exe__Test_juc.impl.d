test/test_juc.ml: Active Alcotest Ast Builder Client Consistency Detmt_analysis Detmt_lang Detmt_replication Detmt_sched Detmt_sim Detmt_transform List Option Wellformed
