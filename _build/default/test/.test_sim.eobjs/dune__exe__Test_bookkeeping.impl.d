test/test_bookkeeping.ml: Alcotest Bookkeeping Builder Detmt_lang Detmt_sched Detmt_transform
