test/test_sched.ml: Active Alcotest Ast Builder Detmt_lang Detmt_replication Detmt_runtime Detmt_sched Detmt_sim Engine Float List Trace
