test/test_experiment.ml: Alcotest Detmt Detmt_stats Detmt_workload List Printf String Table
