test/test_adaptive.ml: Active Alcotest Client Consistency Detmt_analysis Detmt_replication Detmt_runtime Detmt_sched Detmt_sim Detmt_transform Detmt_workload Engine List Rng Trace
