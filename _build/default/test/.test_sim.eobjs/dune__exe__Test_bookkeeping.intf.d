test/test_bookkeeping.mli:
