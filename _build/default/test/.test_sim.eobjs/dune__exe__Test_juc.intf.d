test/test_juc.mli:
