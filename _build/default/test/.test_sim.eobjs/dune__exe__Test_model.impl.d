test/test_model.ml: Alcotest Detmt Detmt_workload List
