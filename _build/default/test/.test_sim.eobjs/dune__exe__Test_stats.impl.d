test/test_stats.ml: Alcotest Detmt_stats Float Format Gen Histogram List QCheck QCheck_alcotest Series String Summary Table
