test/test_interference.ml: Alcotest Builder Class_def Detmt_analysis Detmt_lang Interference List
