(* Tests for the schedule-timeline reconstruction (the visual Figure 2/3). *)

open Detmt_sim

let b = Alcotest.bool

let ev time e = (time, e)

let simple_trace =
  [ ev 0.0 (Trace.Thread_start { tid = 0; method_name = "m" });
    ev 1.0 (Trace.Lock_requested { tid = 0; syncid = 1; mutex = 5 });
    ev 2.0 (Trace.Lock_granted { tid = 0; syncid = 1; mutex = 5 });
    ev 4.0 (Trace.Unlocked { tid = 0; syncid = 1; mutex = 5 });
    ev 6.0 (Trace.Thread_end { tid = 0 });
  ]

let test_states_over_time () =
  let tl = Timeline.of_trace simple_trace in
  let at time = Timeline.state_at tl ~tid:0 ~time in
  Alcotest.(check char) "running after start" '=' (at 0.5);
  Alcotest.(check char) "blocked after request" '.' (at 1.5);
  Alcotest.(check char) "holding after grant" '#' (at 3.0);
  Alcotest.(check char) "running after unlock" '=' (at 5.0);
  Alcotest.(check char) "absent after end" ' ' (at 7.0);
  Alcotest.(check (list int)) "threads" [ 0 ] (Timeline.threads tl);
  let lo, hi = Timeline.span tl in
  Alcotest.(check (float 1e-9)) "span lo" 0.0 lo;
  Alcotest.(check (float 1e-9)) "span hi" 6.0 hi

let test_nested_and_wait_states () =
  let tl =
    Timeline.of_trace
      [ ev 0.0 (Trace.Thread_start { tid = 1; method_name = "m" });
        ev 1.0 (Trace.Nested_begin { tid = 1; service = 0 });
        ev 3.0 (Trace.Nested_end { tid = 1; service = 0 });
        ev 4.0 (Trace.Lock_granted { tid = 1; syncid = 1; mutex = 2 });
        ev 5.0 (Trace.Wait_begin { tid = 1; mutex = 2 });
        ev 7.0 (Trace.Wait_end { tid = 1; mutex = 2 });
        ev 8.0 (Trace.Unlocked { tid = 1; syncid = 1; mutex = 2 });
      ]
  in
  let at time = Timeline.state_at tl ~tid:1 ~time in
  Alcotest.(check char) "nested" 'n' (at 2.0);
  Alcotest.(check char) "running after reply" '=' (at 3.5);
  Alcotest.(check char) "waiting releases the monitor" 'w' (at 6.0);
  Alcotest.(check char) "holding again after wake-up" '#' (at 7.5);
  Alcotest.(check char) "running after unlock" '=' (at 8.5)

let test_reentrant_depth () =
  (* Two grants, one unlock: still holding. *)
  let tl =
    Timeline.of_trace
      [ ev 0.0 (Trace.Thread_start { tid = 0; method_name = "m" });
        ev 1.0 (Trace.Lock_granted { tid = 0; syncid = 1; mutex = 2 });
        ev 2.0 (Trace.Lock_granted { tid = 0; syncid = 2; mutex = 2 });
        ev 3.0 (Trace.Unlocked { tid = 0; syncid = 2; mutex = 2 });
        ev 4.0 (Trace.Unlocked { tid = 0; syncid = 1; mutex = 2 });
      ]
  in
  let at time = Timeline.state_at tl ~tid:0 ~time in
  Alcotest.(check char) "still holding after inner unlock" '#' (at 3.5);
  Alcotest.(check char) "running after outer unlock" '=' (at 4.5)

let test_render_output () =
  let tl = Timeline.of_trace simple_trace in
  let text = Format.asprintf "%a" (fun ppf -> Timeline.render ~width:24 ppf) tl in
  Alcotest.check b "row for t0" true
    (String.length text > 0 && String.sub text 0 2 = "t0");
  Alcotest.check b "legend present" true
    (let needle = "holding lock" in
     let n = String.length needle and h = String.length text in
     let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
     go 0)

let test_experiment_timeline_shapes () =
  (* The Figure-3 contrast must be visible in the reconstruction: under MAT
     some thread is blocked while another holds a (disjoint!) lock; under
     PMAT no thread ever blocks. *)
  let has_blocked scheduler =
    let tl = Detmt.Experiment.timeline ~scheduler ~workload:`Disjoint () in
    let lo, hi = Timeline.span tl in
    List.exists
      (fun tid ->
        List.exists
          (fun i ->
            let time = lo +. ((hi -. lo) *. float_of_int i /. 400.0) in
            Timeline.state_at tl ~tid ~time = '.')
          (List.init 400 Fun.id))
      (Timeline.threads tl)
  in
  Alcotest.check b "mat blocks threads" true (has_blocked "mat");
  Alcotest.check b "pmat never blocks" false (has_blocked "pmat")

let suite =
  [ ("states over time", `Quick, test_states_over_time);
    ("nested and wait states", `Quick, test_nested_and_wait_states);
    ("reentrant depth", `Quick, test_reentrant_depth);
    ("render output", `Quick, test_render_output);
    ("figure-3 shapes", `Quick, test_experiment_timeline_shapes);
  ]

let () = Alcotest.run "timeline" [ ("timeline", suite) ]
