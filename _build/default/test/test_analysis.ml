(* Unit tests for the static analysis: call graph, parameter classification,
   loop classification, path enumeration and last-lock analysis. *)

open Detmt_lang
open Detmt_analysis

let b = Alcotest.bool

(* ---------------------------- Syncid ------------------------------- *)

let test_syncid_counters () =
  let ids = Syncid.create () in
  Alcotest.(check int) "first sync id" 1 (Syncid.fresh_sync ids);
  Alcotest.(check int) "second sync id" 2 (Syncid.fresh_sync ids);
  Alcotest.(check int) "first loop id" 1 (Syncid.fresh_loop ids);
  Alcotest.(check int) "sync count" 2 (Syncid.sync_count ids);
  Alcotest.(check int) "loop count" 1 (Syncid.loop_count ids)

(* --------------------------- Callgraph ----------------------------- *)

let diamond =
  let open Builder in
  Builder.cls ~cname:"D" ~state_fields:[ "st" ]
    [ meth "top" [ call "left"; call "right" ];
      helper "left" [ call "bottom" ];
      helper "right" [ call "bottom" ];
      helper ~final:false "bottom" [ sync this [ state_incr "st" 1 ] ];
      meth "selfrec" [ call "selfrec" ];
      meth "mutual_a" [ call "mutual_b" ];
      helper "mutual_b" [ call "mutual_a" ];
      meth "leaf" [ compute 1.0 ];
    ]

let test_callees () =
  let cg = Callgraph.build diamond in
  Alcotest.(check (list string)) "direct" [ "left"; "right" ]
    (Callgraph.callees cg "top")

let test_reachable () =
  let cg = Callgraph.build diamond in
  Alcotest.(check (list string)) "dfs order"
    [ "top"; "left"; "bottom"; "right" ]
    (Callgraph.reachable cg "top")

let test_recursion_detection () =
  let cg = Callgraph.build diamond in
  let rec_methods = Callgraph.recursive_methods cg in
  Alcotest.check b "self recursion" true (List.mem "selfrec" rec_methods);
  Alcotest.check b "mutual recursion" true (List.mem "mutual_a" rec_methods);
  Alcotest.check b "dag not recursive" false (List.mem "top" rec_methods);
  Alcotest.check b "top reaches no cycle" false
    (Callgraph.in_recursion cg "top");
  Alcotest.check b "mutual_a in recursion" true
    (Callgraph.in_recursion cg "mutual_a");
  Alcotest.check b "leaf clean" false (Callgraph.in_recursion cg "leaf")

let test_non_final_calls () =
  let cg = Callgraph.build diamond in
  let nf = Callgraph.non_final_calls cg "top" in
  Alcotest.check b "bottom flagged from both callers" true
    (List.mem ("left", "bottom") nf && List.mem ("right", "bottom") nf)

(* -------------------------- Param_class ---------------------------- *)

let classify_in body p = Param_class.classify (Param_class.profile body) p

let test_classify_this_and_arg () =
  Alcotest.check b "this at entry" true
    (classify_in [] Ast.Sp_this = Param_class.Announce_at_entry);
  Alcotest.check b "arg at entry" true
    (classify_in [] (Ast.Sp_arg 0) = Param_class.Announce_at_entry)

let test_classify_spontaneous_kinds () =
  let open Param_class in
  Alcotest.check b "field" true
    (classify_in [] (Ast.Sp_field "f") = Spontaneous Field);
  Alcotest.check b "global" true
    (classify_in [] (Ast.Sp_global "g") = Spontaneous Global);
  Alcotest.check b "call result" true
    (classify_in [] (Ast.Sp_call "m") = Spontaneous Call_result);
  Alcotest.check b "unassigned local" true
    (classify_in [] (Ast.Sp_local "v") = Spontaneous Unassigned)

let test_classify_local_single_assign () =
  let open Builder in
  let body = [ assign "v" (marg 0) ] in
  Alcotest.check b "announce after assign" true
    (classify_in body (Ast.Sp_local "v")
    = Param_class.Announce_after_assign "v")

let test_classify_local_multi_assign () =
  let open Builder in
  let body = [ assign "v" (marg 0); assign "v" (mconst 3) ] in
  Alcotest.check b "multi-assigned is spontaneous" true
    (classify_in body (Ast.Sp_local "v")
    = Param_class.Spontaneous Param_class.Multi_assigned)

let test_classify_local_assigned_in_loop () =
  let open Builder in
  let body = [ for_ 3 [ assign "v" (marg 0) ] ] in
  Alcotest.check b "loop-assigned is spontaneous" true
    (classify_in body (Ast.Sp_local "v")
    = Param_class.Spontaneous Param_class.Assigned_in_loop)

(* ----------------------------- Loops ------------------------------- *)

let test_loop_fixed_kind () =
  let open Builder in
  let body = [ assign "m" (marg 0) ] in
  let loop_body = [ sync (local "m") [ state_incr "st" 1 ] ] in
  let prof = Param_class.profile (body @ [ for_ 3 loop_body ]) in
  Alcotest.check b "fixed" true
    (Loops.classify_loop prof ~body:loop_body = Loops.Fixed_mutexes)

let test_loop_changing_kind () =
  let open Builder in
  let loop_body = [ sync (field "f") [ state_incr "st" 1 ] ] in
  let prof = Param_class.profile [ for_ 3 loop_body ] in
  Alcotest.check b "changing" true
    (Loops.classify_loop prof ~body:loop_body = Loops.Changing)

let test_loop_no_sync () =
  let open Builder in
  Alcotest.check b "no sync params" true
    (Loops.sync_params_in [ compute 1.0; nested ~service:0 1.0 ] = []);
  Alcotest.check b "contains_sync false" false
    (Loops.contains_sync [ compute 1.0 ])

(* ----------------------------- Paths ------------------------------- *)

let test_paths_if_doubles () =
  let open Builder in
  let body =
    [ if_ (arg_bool 0) [ compute 1.0 ] [ compute 2.0 ];
      if_ (arg_bool 1) [ compute 3.0 ] [] ]
  in
  Alcotest.(check int) "2 * 2 paths" 4 (List.length (Paths.enumerate body))

let test_paths_loop_two_variants () =
  let open Builder in
  let body = [ for_ 5 [ compute 1.0 ] ] in
  Alcotest.(check int) "zero or one iteration" 2
    (List.length (Paths.enumerate body))

let test_paths_budget () =
  let open Builder in
  let body =
    List.init 20 (fun i -> if_ (arg_bool i) [ compute 1.0 ] [])
  in
  Alcotest.check b "budget exceeded raises" true
    (try
       ignore (Paths.enumerate ~max_paths:100 body);
       false
     with Paths.Too_many_paths _ -> true)

let test_paths_resolve_inlines () =
  let open Builder in
  let cls =
    Builder.cls ~cname:"C" ~state_fields:[ "st" ]
      [ meth "m" [ call "h" ];
        helper "h" [ sync this [ state_incr "st" 1 ] ] ]
  in
  let resolve name =
    Option.map
      (fun (d : Class_def.method_def) -> d.body)
      (Class_def.find_method cls name)
  in
  let paths =
    Paths.enumerate ~resolve (Class_def.find_method_exn cls "m").body
  in
  Alcotest.check b "lock event visible through the call" true
    (List.exists
       (List.exists (function Paths.E_lock _ -> true | _ -> false))
       paths)

let test_paths_lock_sequences () =
  let open Builder in
  let body =
    [ sync (arg 0) [ state_incr "st" 1 ]; sync (arg 1) [ state_incr "st" 1 ] ]
  in
  let instrumented =
    Detmt_transform.Inject.basic_body ~ids:(Syncid.create ()) body
  in
  let paths = Paths.enumerate instrumented in
  Alcotest.(check int) "single path" 1 (List.length paths);
  Alcotest.(check (list int)) "lock order" [ 1; 2 ]
    (Paths.locks_of_path (List.hd paths));
  Alcotest.(check (list int)) "sids" [ 1; 2 ] (Paths.sids_of paths)

(* --------------------------- Last_lock ----------------------------- *)

let test_last_lock_tail () =
  let open Builder in
  let cls =
    Builder.cls ~cname:"C" ~state_fields:[ "st" ]
      [ meth "m" ~params:1
          [ sync (arg 0) [ state_incr "st" 1 ];
            compute 20.0;
          ];
      ]
  in
  let instrumented = Detmt_transform.Transform.basic cls in
  let report = Last_lock.analyse instrumented ~meth:"m" in
  Alcotest.(check (list int)) "all sids" [ 1 ] report.Last_lock.all_sids;
  Alcotest.(check (list int)) "final sids" [ 1 ] report.Last_lock.final_sids;
  Alcotest.(check (float 1e-9)) "tail computation" 20.0
    report.Last_lock.max_tail_compute_ms

let test_last_lock_branches () =
  let open Builder in
  let cls =
    Builder.cls ~cname:"C" ~state_fields:[ "st" ]
      [ meth "m" ~params:2
          [ sync (arg 0) [ state_incr "st" 1 ];
            if_ (arg_bool 1) [ sync (arg 0) [ state_incr "st" 1 ] ] [];
          ];
      ]
  in
  let instrumented = Detmt_transform.Transform.basic cls in
  let report = Last_lock.analyse instrumented ~meth:"m" in
  Alcotest.(check (list int)) "sids on any path" [ 1; 2 ]
    report.Last_lock.all_sids;
  (* sid 1 is last on the else path, sid 2 on the then path *)
  Alcotest.(check (list int)) "both can be final" [ 1; 2 ]
    report.Last_lock.final_sids

(* --------------------------- properties ---------------------------- *)

let prop_profile_counts_every_assign =
  QCheck.Test.make ~count:200 ~name:"profile counts assignments"
    QCheck.(int_range 0 20)
    (fun n ->
      let body =
        List.init n (fun _ -> Ast.Assign ("v", Ast.Mconst 0))
      in
      let c = Param_class.classify (Param_class.profile body) (Ast.Sp_local "v") in
      match (n, c) with
      | 0, Param_class.Spontaneous Param_class.Unassigned -> true
      | 1, Param_class.Announce_after_assign "v" -> true
      | _, Param_class.Spontaneous Param_class.Multi_assigned -> n > 1
      | _ -> false)

let suite =
  [ ("syncid counters", `Quick, test_syncid_counters);
    ("callgraph callees", `Quick, test_callees);
    ("callgraph reachable", `Quick, test_reachable);
    ("recursion detection", `Quick, test_recursion_detection);
    ("non-final call audit", `Quick, test_non_final_calls);
    ("classify this/arg", `Quick, test_classify_this_and_arg);
    ("classify spontaneous kinds", `Quick, test_classify_spontaneous_kinds);
    ("classify single-assign local", `Quick,
     test_classify_local_single_assign);
    ("classify multi-assign local", `Quick, test_classify_local_multi_assign);
    ("classify loop-assigned local", `Quick,
     test_classify_local_assigned_in_loop);
    ("loop fixed kind", `Quick, test_loop_fixed_kind);
    ("loop changing kind", `Quick, test_loop_changing_kind);
    ("loop without sync", `Quick, test_loop_no_sync);
    ("paths: if doubles", `Quick, test_paths_if_doubles);
    ("paths: loop variants", `Quick, test_paths_loop_two_variants);
    ("paths: budget", `Quick, test_paths_budget);
    ("paths: resolve inlines", `Quick, test_paths_resolve_inlines);
    ("paths: lock sequences", `Quick, test_paths_lock_sequences);
    ("last lock: tail computation", `Quick, test_last_lock_tail);
    ("last lock: branches", `Quick, test_last_lock_branches);
    QCheck_alcotest.to_alcotest prop_profile_counts_every_assign;
  ]

let () = Alcotest.run "analysis" [ ("analysis", suite) ]
