(* Smoke tests for the experiment runners: each produces a table of the
   right shape, and the headline qualitative claims hold on reduced
   parameters (the full sweeps live in the benchmark harness). *)

open Detmt_stats

let b = Alcotest.bool

let cell table ~row ~col =
  let cols = Table.columns table in
  let idx =
    match List.find_index (String.equal col) cols with
    | Some i -> i
    | None -> Alcotest.failf "no column %s" col
  in
  match List.find_opt (fun r -> List.nth r 0 = row) (Table.rows table) with
  | Some r -> float_of_string (List.nth r idx)
  | None -> Alcotest.failf "no row %s" row

let test_figure1_shape () =
  let table, series =
    Detmt.Experiment.figure1 ~clients_list:[ 1; 8 ] ~requests_per_client:3 ()
  in
  Alcotest.(check int) "two rows" 2 (List.length (Table.rows table));
  Alcotest.(check (list string)) "columns"
    [ "clients"; "seq"; "sat"; "lsa"; "pds"; "mat" ]
    (Table.columns table);
  Alcotest.(check int) "five series" 5 (List.length series);
  (* SEQ degrades fastest; LSA stays lowest. *)
  let seq8 = cell table ~row:"8" ~col:"seq" in
  let lsa8 = cell table ~row:"8" ~col:"lsa" in
  let mat8 = cell table ~row:"8" ~col:"mat" in
  Alcotest.check b "seq worst at 8 clients" true
    (seq8 > mat8 && seq8 > lsa8);
  Alcotest.check b "lsa best at 8 clients" true (lsa8 < mat8)

let test_figure1b_mat_beats_sat () =
  let table =
    Detmt.Experiment.figure1b ~clients_list:[ 8 ]
      ~schedulers:[ "sat"; "mat" ] ()
  in
  let sat = cell table ~row:"8" ~col:"sat" in
  let mat = cell table ~row:"8" ~col:"mat" in
  Alcotest.check b "front computation favours MAT" true
    (mat < 0.8 *. sat)

let test_figure2_last_lock_wins () =
  let table = Detmt.Experiment.figure2 ~clients_list:[ 8 ] () in
  let mat = cell table ~row:"8" ~col:"mat" in
  let ll = cell table ~row:"8" ~col:"mat-ll" in
  Alcotest.check b "last-lock hand-off is faster" true (ll < 0.6 *. mat)

let test_figure3_prediction_wins () =
  let table = Detmt.Experiment.figure3 ~clients_list:[ 8 ] () in
  let mat = cell table ~row:"8" ~col:"mat" in
  let seq = cell table ~row:"8" ~col:"seq" in
  let pmat = cell table ~row:"8" ~col:"pmat" in
  Alcotest.check b "MAT degenerates to SEQ on disjoint locks" true
    (abs_float (mat -. seq) < 0.05 *. seq);
  Alcotest.check b "PMAT approaches the ideal" true (pmat < 0.5 *. mat)

let test_figure4_text () =
  let text = Detmt.Experiment.figure4 () in
  List.iter
    (fun needle ->
      let has =
        let n = String.length needle and h = String.length text in
        let rec go i =
          i + n <= h && (String.sub text i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.check b (Printf.sprintf "contains %S" needle) true has)
    [ "synchronized"; "scheduler.lock(1"; "scheduler.ignore(2";
      "scheduler.lockInfo(1" ]

let test_wan_lsa_degrades_faster () =
  let table = Detmt.Experiment.wan ~latencies_ms:[ 0.5; 50.0 ] ~clients:4 () in
  let lsa_near = cell table ~row:"0.5" ~col:"lsa" in
  let lsa_far = cell table ~row:"50.0" ~col:"lsa" in
  let mat_near = cell table ~row:"0.5" ~col:"mat" in
  let mat_far = cell table ~row:"50.0" ~col:"mat" in
  Alcotest.check b "lsa slope steeper than mat" true
    (lsa_far -. lsa_near > mat_far -. mat_near)

let test_failover_lsa_pays () =
  let table = Detmt.Experiment.failover ~schedulers:[ "lsa"; "mat" ] () in
  let takeover name =
    match
      List.find_opt (fun r -> List.nth r 0 = name) (Table.rows table)
    with
    | Some r -> float_of_string (List.nth r 1)
    | None -> Alcotest.failf "no row %s" name
  in
  Alcotest.check b "lsa pays a take-over delay" true
    (takeover "lsa" > 10.0);
  Alcotest.check b "mat does not" true (takeover "mat" < 1.0)

let test_prodcons_all_consistent () =
  let table = Detmt.Experiment.prodcons ~clients:4 () in
  List.iter
    (fun row ->
      Alcotest.(check string)
        (List.nth row 0 ^ " consistent")
        "true"
        (List.nth row 4))
    (Table.rows table)

let test_determinism_matrix () =
  let table = Detmt.Experiment.determinism () in
  let row name =
    match
      List.find_opt (fun r -> List.nth r 0 = name) (Table.rows table)
    with
    | Some r -> r
    | None -> Alcotest.failf "no row %s" name
  in
  List.iter
    (fun s ->
      Alcotest.(check string) (s ^ " state") "agree" (List.nth (row s) 1);
      Alcotest.(check string)
        (s ^ " acquisitions")
        "agree"
        (List.nth (row s) 2))
    [ "seq"; "sat"; "lsa"; "pds"; "mat"; "mat-ll"; "pmat" ];
  Alcotest.(check string) "freefall diverges" "DIVERGE"
    (List.nth (row "freefall") 2)

let test_saturation_smoke () =
  let table =
    Detmt.Experiment.saturation ~rates:[ 20.0; 200.0 ]
      ~schedulers:[ "seq"; "lsa" ] ~requests:30 ()
  in
  Alcotest.(check int) "two rows" 2 (List.length (Table.rows table));
  (* At 10x the load, SEQ's backlog must dwarf LSA's ("-" marks a backlog
     still growing at the horizon — the strongest form of saturation). *)
  let value col =
    match
      List.find_opt (fun r -> List.nth r 0 = "200") (Table.rows table)
    with
    | Some r -> (
      let idx =
        match List.find_index (String.equal col) (Table.columns table) with
        | Some i -> i
        | None -> Alcotest.failf "no column %s" col
      in
      match List.nth r idx with "-" -> infinity | v -> float_of_string v)
    | None -> Alcotest.fail "no 200 req/s row"
  in
  Alcotest.check b "seq saturates before lsa" true
    (value "seq" > 3.0 *. value "lsa")

let test_interference_experiment () =
  let r = Detmt.Experiment.interference () in
  Alcotest.(check int) "three independent pairs" 3
    (List.length r.Detmt.Interference.independent_pairs)

let test_model_experiment_shape () =
  let table =
    Detmt.Experiment.model ~clients_list:[ 8 ] ~schedulers:[ "seq" ] ()
  in
  Alcotest.(check int) "one row" 1 (List.length (Table.rows table));
  Alcotest.(check int) "four columns" 4 (List.length (Table.columns table))

let test_run_workload_fields () =
  let wl = Detmt_workload.Disjoint.default in
  let r =
    Detmt.Experiment.run_workload ~scheduler:"mat" ~clients:2
      ~requests_per_client:3
      ~cls:(Detmt_workload.Disjoint.cls wl)
      ~gen:Detmt_workload.Disjoint.gen ()
  in
  Alcotest.(check int) "replies" 6 r.Detmt.Experiment.replies;
  Alcotest.check b "throughput positive" true
    (r.Detmt.Experiment.throughput_per_s > 0.0);
  Alcotest.check b "consistent" true r.Detmt.Experiment.consistent;
  Alcotest.check b "cpu was used" true (r.Detmt.Experiment.cpu_busy_ms > 0.0)

let suite =
  [ ("figure1 shape", `Quick, test_figure1_shape);
    ("figure1b mat beats sat", `Quick, test_figure1b_mat_beats_sat);
    ("figure2 last-lock wins", `Quick, test_figure2_last_lock_wins);
    ("figure3 prediction wins", `Quick, test_figure3_prediction_wins);
    ("figure4 text", `Quick, test_figure4_text);
    ("wan: lsa degrades faster", `Quick, test_wan_lsa_degrades_faster);
    ("failover: lsa pays, mat does not", `Quick, test_failover_lsa_pays);
    ("prodcons consistent", `Quick, test_prodcons_all_consistent);
    ("determinism matrix", `Quick, test_determinism_matrix);
    ("run_workload fields", `Quick, test_run_workload_fields);
    ("saturation smoke", `Quick, test_saturation_smoke);
    ("interference experiment", `Quick, test_interference_experiment);
    ("model experiment shape", `Quick, test_model_experiment_shape);
  ]

let () = Alcotest.run "experiment" [ ("experiment", suite) ]
