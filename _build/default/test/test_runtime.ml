(* Unit tests for the replica runtime: mutex table, condition variables, the
   interpreter's op stream and object state. *)

open Detmt_lang
open Detmt_runtime

let b = Alcotest.bool

(* --------------------------- Mutex_table --------------------------- *)

let test_mutex_basic () =
  let t = Mutex_table.create () in
  Alcotest.check b "initially free" true
    (Mutex_table.is_free_for t ~mutex:1 ~tid:7);
  Mutex_table.acquire t ~mutex:1 ~tid:7;
  Alcotest.check b "owner" true (Mutex_table.owner t ~mutex:1 = Some 7);
  Alcotest.check b "free for owner" true
    (Mutex_table.is_free_for t ~mutex:1 ~tid:7);
  Alcotest.check b "not free for other" false
    (Mutex_table.is_free_for t ~mutex:1 ~tid:8);
  Alcotest.check b "release frees" true (Mutex_table.release t ~mutex:1 ~tid:7)

let test_mutex_reentrant () =
  let t = Mutex_table.create () in
  Mutex_table.acquire t ~mutex:5 ~tid:1;
  Mutex_table.acquire t ~mutex:5 ~tid:1;
  Alcotest.(check int) "depth 2" 2 (Mutex_table.hold_count t ~mutex:5);
  Alcotest.check b "inner release keeps hold" false
    (Mutex_table.release t ~mutex:5 ~tid:1);
  Alcotest.check b "outer release frees" true
    (Mutex_table.release t ~mutex:5 ~tid:1)

let test_mutex_foreign_acquire_raises () =
  let t = Mutex_table.create () in
  Mutex_table.acquire t ~mutex:3 ~tid:1;
  Alcotest.check b "foreign acquire raises" true
    (try
       Mutex_table.acquire t ~mutex:3 ~tid:2;
       false
     with Invalid_argument _ -> true);
  Alcotest.check b "foreign release raises" true
    (try
       ignore (Mutex_table.release t ~mutex:3 ~tid:2);
       false
     with Invalid_argument _ -> true)

let test_mutex_release_all_restore () =
  let t = Mutex_table.create () in
  Mutex_table.acquire t ~mutex:9 ~tid:4;
  Mutex_table.acquire t ~mutex:9 ~tid:4;
  let count = Mutex_table.release_all t ~mutex:9 ~tid:4 in
  Alcotest.(check int) "saved depth" 2 count;
  Alcotest.check b "freed" true (Mutex_table.owner t ~mutex:9 = None);
  Mutex_table.restore t ~mutex:9 ~tid:4 ~count;
  Alcotest.(check int) "restored depth" 2 (Mutex_table.hold_count t ~mutex:9)

let test_mutex_held_by () =
  let t = Mutex_table.create () in
  Mutex_table.acquire t ~mutex:2 ~tid:1;
  Mutex_table.acquire t ~mutex:8 ~tid:1;
  Mutex_table.acquire t ~mutex:5 ~tid:2;
  Alcotest.(check (list int)) "held set sorted" [ 2; 8 ]
    (Mutex_table.held_by t ~tid:1);
  Alcotest.check b "holds_any" true (Mutex_table.holds_any t ~tid:2);
  Alcotest.check b "holds none" false (Mutex_table.holds_any t ~tid:3)

(* ----------------------------- Condvar ----------------------------- *)

let test_condvar_fifo () =
  let cv = Condvar.create () in
  Condvar.park cv ~mutex:1 ~tid:10;
  Condvar.park cv ~mutex:1 ~tid:11;
  Condvar.park cv ~mutex:1 ~tid:12;
  Alcotest.check b "notify_one pops oldest" true
    (Condvar.notify_one cv ~mutex:1 = Some 10);
  Alcotest.(check (list int)) "notify_all in fifo order" [ 11; 12 ]
    (Condvar.notify_all cv ~mutex:1);
  Alcotest.check b "empty now" true (Condvar.notify_one cv ~mutex:1 = None)

let test_condvar_per_mutex () =
  let cv = Condvar.create () in
  Condvar.park cv ~mutex:1 ~tid:10;
  Condvar.park cv ~mutex:2 ~tid:20;
  Alcotest.(check (list int)) "mutex 1 waiters" [ 10 ]
    (Condvar.waiting cv ~mutex:1);
  Alcotest.check b "notify on other mutex" true
    (Condvar.notify_one cv ~mutex:2 = Some 20)

let test_condvar_double_park_rejected () =
  let cv = Condvar.create () in
  Condvar.park cv ~mutex:1 ~tid:5;
  Alcotest.check b "double park raises" true
    (try
       Condvar.park cv ~mutex:1 ~tid:5;
       false
     with Invalid_argument _ -> true)

let test_condvar_remove () =
  let cv = Condvar.create () in
  Condvar.park cv ~mutex:1 ~tid:5;
  Alcotest.check b "removed" true (Condvar.remove cv ~mutex:1 ~tid:5);
  Alcotest.check b "absent" false (Condvar.remove cv ~mutex:1 ~tid:5)

(* ------------------------------ Interp ----------------------------- *)

(* Drive the interpreter by hand, collecting the op stream. *)
let ops_of ?(args = [||]) cls meth =
  let obj = Object_state.create cls in
  let req =
    Request.make ~uid:0 ~client:0 ~client_req:0 ~meth ~args ~sent_at:0.0
  in
  let rec collect acc = function
    | Interp.Done -> List.rev acc
    | Interp.Yield (op, k) -> collect (op :: acc) (k ())
  in
  collect [] (Interp.start ~cls ~obj ~req ())

let simple_cls body =
  Builder.cls ~cname:"C" ~state_fields:[ "st" ]
    ~mutex_fields:[ ("f", 42) ]
    [ Builder.meth "m" ~params:3 body ]

let instrumented body =
  Detmt_transform.Transform.basic (simple_cls body)

let test_interp_lock_stream () =
  let open Builder in
  let cls = instrumented [ sync (arg 0) [ state_incr "st" 1 ] ] in
  let ops = ops_of ~args:[| Ast.Vmutex 17 |] cls "m" in
  match ops with
  | [ Op.Lock { syncid = 1; mutex = 17 };
      Op.State_update { field = "st"; delta = 1 };
      Op.Unlock { syncid = 1; mutex = 17 } ] ->
    ()
  | _ ->
    Alcotest.failf "unexpected op stream: %s"
      (String.concat "; " (List.map Op.show ops))

let test_interp_branches_on_args () =
  let open Builder in
  let cls =
    instrumented
      [ if_ (arg_bool 0) [ compute 1.0 ] [ compute 2.0 ] ]
  in
  let dur args =
    match ops_of ~args cls "m" with
    | [ Op.Compute { duration } ] -> duration
    | _ -> Alcotest.fail "expected one compute"
  in
  Alcotest.(check (float 1e-9)) "then branch" 1.0
    (dur [| Ast.Vbool true |]);
  Alcotest.(check (float 1e-9)) "else branch" 2.0
    (dur [| Ast.Vbool false |])

let test_interp_loop_count_from_arg () =
  let open Builder in
  let cls = instrumented [ for_arg 0 [ compute 1.0 ] ] in
  let ops = ops_of ~args:[| Ast.Vint 4 |] cls "m" in
  Alcotest.(check int) "four iterations" 4 (List.length ops)

let test_interp_field_resolution () =
  let open Builder in
  let cls = instrumented [ sync (field "f") [ state_incr "st" 1 ] ] in
  match ops_of ~args:[||] cls "m" with
  | Op.Lock { mutex = 42; _ } :: _ -> ()
  | ops ->
    Alcotest.failf "field mutex not resolved: %s"
      (String.concat "; " (List.map Op.show ops))

let test_interp_local_assignment () =
  let open Builder in
  let cls =
    instrumented
      [ assign "v" (marg 1); sync (local "v") [ state_incr "st" 1 ] ]
  in
  match ops_of ~args:[| Ast.Vbool false; Ast.Vmutex 23 |] cls "m" with
  | Op.Lock { mutex = 23; _ } :: _ -> ()
  | _ -> Alcotest.fail "local not resolved"

let test_interp_dynamic_call_fresh_frame () =
  (* A helper's local must not leak into (or read from) the caller frame. *)
  let open Builder in
  let cls =
    Builder.cls ~cname:"C" ~state_fields:[ "st" ]
      [ Builder.meth "m" ~params:1
          [ assign "v" (mconst 1); call "h"; sync (local "v") [ state_incr "st" 1 ] ];
        Builder.helper ~final:false "h" ~params:1 [ assign "v" (mconst 9) ];
      ]
  in
  let cls = Detmt_transform.Transform.basic cls in
  match ops_of ~args:[| Ast.Vint 0 |] cls "m" with
  | [ Op.Lock { mutex = 1; _ }; Op.State_update _; Op.Unlock _ ] -> ()
  | ops ->
    Alcotest.failf "caller frame polluted: %s"
      (String.concat "; " (List.map Op.show ops))

let test_interp_virtual_dispatch () =
  let open Builder in
  let cls =
    Builder.cls ~cname:"C" ~state_fields:[ "st" ]
      [ Builder.meth "m" ~params:1 [ virtual_call ~selector:0 [ "a"; "b" ] ];
        Builder.helper ~final:false "a" ~params:1 [ compute 1.0 ];
        Builder.helper ~final:false "b" ~params:1 [ compute 2.0 ];
      ]
  in
  let cls = Detmt_transform.Transform.basic cls in
  let dur k =
    match ops_of ~args:[| Ast.Vint k |] cls "m" with
    | [ Op.Compute { duration } ] -> duration
    | _ -> Alcotest.fail "expected one compute"
  in
  Alcotest.(check (float 1e-9)) "candidate 0" 1.0 (dur 0);
  Alcotest.(check (float 1e-9)) "candidate 1" 2.0 (dur 1)

let test_interp_guarded_wait () =
  let open Builder in
  let cls =
    instrumented [ sync this [ wait_until this ~field:"st" ~min:1 ] ]
  in
  let obj = Object_state.create (simple_cls []) in
  ignore obj;
  (* With st = 0, the stream must be lock; wait; then after the state is
     bumped externally, the re-check proceeds to unlock. *)
  let cls_obj = Object_state.create cls in
  let req =
    Request.make ~uid:0 ~client:0 ~client_req:0 ~meth:"m" ~args:[||]
      ~sent_at:0.0
  in
  (match Interp.start ~cls ~obj:cls_obj ~req () with
  | Interp.Yield (Op.Lock _, k) -> (
    match k () with
    | Interp.Yield (Op.Wait _, k2) -> (
      (* simulate the producer *)
      Object_state.update_state cls_obj "st" 1;
      match k2 () with
      | Interp.Yield (Op.Unlock _, k3) -> (
        match k3 () with
        | Interp.Done -> ()
        | _ -> Alcotest.fail "expected done")
      | _ -> Alcotest.fail "expected unlock after condition holds")
    | _ -> Alcotest.fail "expected wait while condition is false")
  | _ -> Alcotest.fail "expected lock")

let test_interp_rejects_raw_sync () =
  let open Builder in
  let cls = simple_cls [ sync this [ state_incr "st" 1 ] ] in
  Alcotest.check b "raw sync raises" true
    (try
       ignore (ops_of cls "m");
       false
     with Interp.Runtime_error _ -> true)

let test_interp_rejects_bad_arg () =
  let open Builder in
  let cls = instrumented [ sync (arg 2) [ state_incr "st" 1 ] ] in
  Alcotest.check b "missing argument raises" true
    (try
       ignore (ops_of ~args:[| Ast.Vmutex 1 |] cls "m");
       false
     with Interp.Runtime_error _ -> true)

let test_interp_rejects_helper_request () =
  let cls =
    Builder.cls ~cname:"C" ~state_fields:[]
      [ Builder.helper "h" [ Builder.compute 1.0 ] ]
  in
  let cls = Detmt_transform.Transform.basic cls in
  Alcotest.check b "non-exported method rejected" true
    (try
       ignore (ops_of cls "h");
       false
     with Interp.Runtime_error _ -> true)

let test_interp_dummy_is_noop () =
  let cls = instrumented [ Builder.compute 5.0 ] in
  let obj = Object_state.create cls in
  let req = Request.dummy ~uid:0 ~sent_at:0.0 in
  (match Interp.start ~cls ~obj ~req () with
  | Interp.Done -> ()
  | Interp.Yield _ -> Alcotest.fail "dummy must not execute")

(* --------------------------- Object_state -------------------------- *)

let test_object_state_fingerprint () =
  let cls = simple_cls [] in
  let a = Object_state.create cls and b' = Object_state.create cls in
  Alcotest.check b "fresh states equal" true
    (Object_state.fingerprint a = Object_state.fingerprint b');
  Object_state.update_state a "st" 3;
  Alcotest.check b "update changes fingerprint" false
    (Object_state.fingerprint a = Object_state.fingerprint b');
  Object_state.update_state b' "st" 3;
  Alcotest.check b "same updates, same fingerprint" true
    (Object_state.fingerprint a = Object_state.fingerprint b')

let test_object_state_mutable_fields () =
  let cls = simple_cls [] in
  let o = Object_state.create cls in
  Alcotest.(check int) "initial mutex field" 42
    (Object_state.mutex_field o "f");
  Object_state.set_mutex_field o "f" 7;
  Alcotest.(check int) "updated" 7 (Object_state.mutex_field o "f");
  Alcotest.check b "unknown field raises" true
    (try
       ignore (Object_state.mutex_field o "zz");
       false
     with Invalid_argument _ -> true)

let suite =
  [ ("mutex basic", `Quick, test_mutex_basic);
    ("mutex reentrant", `Quick, test_mutex_reentrant);
    ("mutex foreign ops raise", `Quick, test_mutex_foreign_acquire_raises);
    ("mutex release_all/restore", `Quick, test_mutex_release_all_restore);
    ("mutex held_by", `Quick, test_mutex_held_by);
    ("condvar fifo", `Quick, test_condvar_fifo);
    ("condvar per mutex", `Quick, test_condvar_per_mutex);
    ("condvar double park", `Quick, test_condvar_double_park_rejected);
    ("condvar remove", `Quick, test_condvar_remove);
    ("interp lock stream", `Quick, test_interp_lock_stream);
    ("interp branches on args", `Quick, test_interp_branches_on_args);
    ("interp loop count from arg", `Quick, test_interp_loop_count_from_arg);
    ("interp field resolution", `Quick, test_interp_field_resolution);
    ("interp local assignment", `Quick, test_interp_local_assignment);
    ("interp call frames", `Quick, test_interp_dynamic_call_fresh_frame);
    ("interp virtual dispatch", `Quick, test_interp_virtual_dispatch);
    ("interp guarded wait", `Quick, test_interp_guarded_wait);
    ("interp rejects raw sync", `Quick, test_interp_rejects_raw_sync);
    ("interp rejects bad arg", `Quick, test_interp_rejects_bad_arg);
    ("interp rejects helper request", `Quick,
     test_interp_rejects_helper_request);
    ("interp dummy is noop", `Quick, test_interp_dummy_is_noop);
    ("object state fingerprint", `Quick, test_object_state_fingerprint);
    ("object state fields", `Quick, test_object_state_mutable_fields);
  ]

let () = Alcotest.run "runtime" [ ("runtime", suite) ]
