(* Tests for the static interference analysis (section 5). *)

open Detmt_lang
open Detmt_analysis

let b = Alcotest.bool

let mk methods =
  Class_def.make ~cname:"I"
    ~mutex_fields:[ ("f", 10); ("g", 11) ]
    ~globals:[ ("G", 50) ] ~state_fields:[ "st" ] methods

let set cls meth = Interference.method_mutexes cls ~meth

let known xs = Interference.Known (List.sort compare xs)

let test_constant_sets () =
  let open Builder in
  let cls =
    mk
      [ meth "on_f" [ sync (field "f") [ state_incr "st" 1 ] ];
        meth "on_g" [ sync (field "g") [ state_incr "st" 1 ] ];
        meth "on_this" [ sync this [ state_incr "st" 1 ] ];
        meth "on_global" [ sync (global "G") [ state_incr "st" 1 ] ];
      ]
  in
  Alcotest.check b "field f" true (set cls "on_f" = known [ 10 ]);
  Alcotest.check b "field g" true (set cls "on_g" = known [ 11 ]);
  Alcotest.check b "this" true
    (set cls "on_this" = known [ Interference.this_mutex ]);
  Alcotest.check b "global" true (set cls "on_global" = known [ 50 ])

let test_request_supplied_is_top () =
  let open Builder in
  let cls = mk [ meth "m" ~params:1 [ sync (arg 0) [ state_incr "st" 1 ] ] ] in
  Alcotest.check b "arg lock is Top" true (set cls "m" = Interference.Top)

let test_local_from_const_tracked () =
  let open Builder in
  let cls =
    mk
      [ meth "m"
          [ assign "v" (mfield "f"); sync (local "v") [ state_incr "st" 1 ] ];
      ]
  in
  Alcotest.check b "local fed from field" true (set cls "m" = known [ 10 ])

let test_local_from_arg_is_top () =
  let open Builder in
  let cls =
    mk
      [ meth "m" ~params:1
          [ assign "v" (marg 0); sync (local "v") [ state_incr "st" 1 ] ];
      ]
  in
  Alcotest.check b "local fed from arg" true (set cls "m" = Interference.Top)

let test_field_reassignment_poisons () =
  let open Builder in
  let cls =
    mk
      [ meth "m" [ sync (field "f") [ state_incr "st" 1 ] ];
        meth "poison" ~params:1 [ assign_field "f" (marg 0); compute 1.0 ];
      ]
  in
  Alcotest.check b "reassigned field is Top" true
    (set cls "m" = Interference.Top)

let test_calls_followed () =
  let open Builder in
  let cls =
    mk
      [ meth "m" [ call "h" ];
        helper "h" [ sync (field "g") [ state_incr "st" 1 ] ];
      ]
  in
  Alcotest.check b "callee set propagates" true (set cls "m" = known [ 11 ])

let test_recursion_fixpoint () =
  let open Builder in
  let cls =
    mk
      [ meth "m" [ sync (field "f") [ state_incr "st" 1 ]; call "m" ] ]
  in
  Alcotest.check b "recursive fixpoint terminates" true
    (set cls "m" = known [ 10 ])

let test_independent_pairs () =
  let open Builder in
  let cls =
    mk
      [ meth "a" [ sync (field "f") [ state_incr "st" 1 ] ];
        meth "b" [ sync (field "g") [ state_incr "st" 1 ] ];
        meth "c" ~params:1 [ sync (arg 0) [ state_incr "st" 1 ] ];
      ]
  in
  let r = Interference.analyse cls in
  Alcotest.check b "a and b independent" true
    (List.mem ("a", "b") r.Interference.independent_pairs);
  Alcotest.check b "c (Top) pairs with nothing" true
    (List.for_all
       (fun (x, y) -> x <> "c" && y <> "c")
       r.Interference.independent_pairs)

let test_may_interfere () =
  Alcotest.check b "overlap" true
    (Interference.may_interfere (known [ 1; 2 ]) (known [ 2; 3 ]));
  Alcotest.check b "disjoint" false
    (Interference.may_interfere (known [ 1 ]) (known [ 2 ]));
  Alcotest.check b "top vs anything" true
    (Interference.may_interfere Interference.Top (known []))

let test_explicit_locks_counted () =
  let open Builder in
  let cls =
    mk [ meth "m" [ lock_acquire (field "f"); lock_release (field "f") ] ]
  in
  Alcotest.check b "explicit lock contributes" true (set cls "m" = known [ 10 ])

let suite =
  [ ("constant sets", `Quick, test_constant_sets);
    ("request-supplied is Top", `Quick, test_request_supplied_is_top);
    ("local from constant tracked", `Quick, test_local_from_const_tracked);
    ("local from arg is Top", `Quick, test_local_from_arg_is_top);
    ("field reassignment poisons", `Quick, test_field_reassignment_poisons);
    ("calls followed", `Quick, test_calls_followed);
    ("recursion fixpoint", `Quick, test_recursion_fixpoint);
    ("independent pairs", `Quick, test_independent_pairs);
    ("may_interfere", `Quick, test_may_interfere);
    ("explicit locks counted", `Quick, test_explicit_locks_counted);
  ]

let () = Alcotest.run "interference" [ ("interference", suite) ]
