(* End-to-end tests of the replication layer: every scheduler processes the
   paper's workloads to completion, replicas agree, and the qualitative
   claims of section 3.5 hold. *)

open Detmt_sim
open Detmt_replication

let b = Alcotest.bool

let figure1_cls = Detmt_workload.Figure1.cls Detmt_workload.Figure1.default

let figure1_gen = Detmt_workload.Figure1.gen Detmt_workload.Figure1.default

let run ?(scheduler = "mat") ?(clients = 4) ?(requests = 5)
    ?(cls = figure1_cls) ?(gen = figure1_gen) ?(params = Active.default_params)
    () =
  let engine = Engine.create () in
  let params = { params with Active.scheduler } in
  let system = Active.create ~engine ~cls ~params () in
  Client.run_clients ~engine ~system ~clients ~requests_per_client:requests
    ~gen ();
  system

let deterministic_schedulers =
  [ "seq"; "sat"; "lsa"; "pds"; "mat"; "mat-ll"; "pmat" ]

(* LSA's leader schedules greedily while followers enforce its decisions:
   the observable state and the per-mutex acquisition order agree, but the
   event interleaving (traces) legitimately differs between leader and
   followers.  All other deterministic schedulers replay bit-identically. *)
let expect_consistent scheduler (r : Consistency.report) =
  if String.equal scheduler "lsa" then
    r.Consistency.states_agree && r.Consistency.acquisitions_agree
  else Consistency.consistent r

let test_completes scheduler () =
  let system = run ~scheduler () in
  Alcotest.(check int)
    "all requests answered" 20
    (Active.replies_received system)

let test_consistent scheduler () =
  let system = run ~scheduler ~clients:6 ~requests:4 () in
  let report = Consistency.check (Active.live_replicas system) in
  if not (expect_consistent scheduler report) then
    Alcotest.failf "replicas diverged under %s: %s" scheduler
      (Format.asprintf "%a" Consistency.pp report)

let test_state_counts scheduler () =
  (* Every request increments "state" once per iteration: final state must
     be clients * requests * iterations on every replica. *)
  let clients = 3 and requests = 4 in
  let system = run ~scheduler ~clients ~requests () in
  let expected =
    clients * requests * Detmt_workload.Figure1.default.iterations
  in
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d state" (Detmt_runtime.Replica.id r))
        expected
        (List.assoc "state" (Detmt_runtime.Replica.state_snapshot r)))
    (Active.replicas system)

let test_freefall_diverges () =
  (* The nondeterministic baseline must be caught by the checker.  Use the
     highly contended tail-compute workload (a single shared mutex) so that
     the randomised wake-ups actually have candidates to scramble. *)
  let wl = Detmt_workload.Tail_compute.default in
  let cls = Detmt_workload.Tail_compute.cls wl in
  let gen = Detmt_workload.Tail_compute.gen wl in
  let system = run ~scheduler:"freefall" ~clients:8 ~requests:6 ~cls ~gen () in
  let report = Consistency.check (Active.live_replicas system) in
  Alcotest.check b "acquisition orders diverge" false
    report.Consistency.acquisitions_agree

let test_identical_runs_identical () =
  (* Bit-level reproducibility of a whole run. *)
  let fp () =
    let system = run ~scheduler:"mat" ~clients:5 ~requests:5 () in
    List.map
      (fun r -> Trace.fingerprint (Detmt_runtime.Replica.trace r))
      (Active.replicas system)
  in
  Alcotest.check b "same seeds, same traces" true (fp () = fp ())

let test_seq_slower_than_mat () =
  let mean scheduler =
    let system = run ~scheduler ~clients:8 ~requests:5 () in
    Detmt_stats.Summary.mean (Active.response_times system)
  in
  let seq = mean "seq" and mat = mean "mat" in
  if not (seq > mat) then
    Alcotest.failf "expected SEQ (%.2fms) slower than MAT (%.2fms)" seq mat

let test_lsa_message_overhead () =
  let broadcasts scheduler =
    let system = run ~scheduler ~clients:6 ~requests:5 () in
    Active.broadcasts system
  in
  let lsa = broadcasts "lsa" and mat = broadcasts "mat" in
  if not (lsa > mat) then
    Alcotest.failf "expected LSA (%d msgs) chattier than MAT (%d msgs)" lsa
      mat

let test_prodcons scheduler () =
  let cls = Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default in
  let gen = Detmt_workload.Prodcons.gen in
  let system = run ~scheduler ~clients:4 ~requests:5 ~cls ~gen () in
  Alcotest.(check int) "all replies" 20 (Active.replies_received system);
  let report = Consistency.check (Active.live_replicas system) in
  Alcotest.check b "consistent" true (expect_consistent scheduler report);
  List.iter
    (fun r ->
      let snap = Detmt_runtime.Replica.state_snapshot r in
      Alcotest.(check int) "produced" 10 (List.assoc "produced" snap);
      Alcotest.(check int) "consumed" 10 (List.assoc "consumed" snap);
      Alcotest.(check int) "buffer drained" 0 (List.assoc "items" snap))
    (Active.replicas system)

let test_failover_mat () =
  (* Killing a non-essential replica must not stop progress under MAT. *)
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls:figure1_cls
      ~params:{ Active.default_params with scheduler = "mat" } ()
  in
  Failover.kill_and_measure ~system ~replica:2 ~at:50.0;
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:5
    ~gen:figure1_gen ~until_ms:30_000.0 ();
  Alcotest.(check int) "all replies despite the failure" 20
    (Active.replies_received system);
  let report = Consistency.check (Active.live_replicas system) in
  Alcotest.check b "survivors consistent" true (Consistency.consistent report)

let test_failover_lsa_leader () =
  (* Killing the LSA leader: survivors take over and stay consistent. *)
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls:figure1_cls
      ~params:{ Active.default_params with scheduler = "lsa" } ()
  in
  Failover.kill_and_measure ~system ~replica:0 ~at:100.0;
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:5
    ~gen:figure1_gen ~until_ms:60_000.0 ();
  Alcotest.(check int) "all replies despite leader failure" 20
    (Active.replies_received system);
  let a = Failover.analyze ~system ~kill_at:100.0 in
  Alcotest.check b "visible take-over gap" true (a.Failover.takeover_ms > 0.0)

let test_passive_replay () =
  let engine = Engine.create () in
  let passive =
    Passive.create ~engine ~cls:figure1_cls ~scheduler:"seq" ()
  in
  let rng = Rng.create 7L in
  for i = 0 to 9 do
    let meth, args = figure1_gen ~client:0 ~seq:i rng in
    Passive.submit passive ~client:0 ~client_req:i ~meth ~args
      ~on_reply:(fun ~response_ms:_ -> ())
  done;
  Engine.run engine;
  let primary = Passive.primary passive in
  let backup = Passive.replay passive () in
  Alcotest.check b "replayed state matches primary" true
    (Detmt_runtime.Replica.state_fingerprint primary
    = Detmt_runtime.Replica.state_fingerprint backup)

let test_passive_checkpoint_replay () =
  let engine = Engine.create () in
  let passive =
    Passive.create ~engine ~cls:figure1_cls ~scheduler:"mat" ()
  in
  let rng = Rng.create 8L in
  let send i =
    let meth, args = figure1_gen ~client:0 ~seq:i rng in
    Passive.submit passive ~client:0 ~client_req:i ~meth ~args
      ~on_reply:(fun ~response_ms:_ -> ())
  in
  for i = 0 to 4 do send i done;
  Engine.run engine;
  let cp = Passive.checkpoint passive in
  for i = 5 to 9 do send i done;
  Engine.run engine;
  let primary = Passive.primary passive in
  let backup = Passive.replay passive ~from:cp () in
  Alcotest.check b "checkpoint + suffix replay matches primary" true
    (Detmt_runtime.Replica.state_fingerprint primary
    = Detmt_runtime.Replica.state_fingerprint backup)

let per_scheduler name f =
  List.map
    (fun s -> (Printf.sprintf "%s (%s)" name s, `Quick, f s))
    deterministic_schedulers

let suite =
  per_scheduler "workload completes" test_completes
  @ per_scheduler "replicas consistent" test_consistent
  @ per_scheduler "state counts" test_state_counts
  @ [ ("freefall diverges", `Quick, test_freefall_diverges);
      ("identical runs identical", `Quick, test_identical_runs_identical);
      ("seq slower than mat", `Quick, test_seq_slower_than_mat);
      ("lsa chattier than mat", `Quick, test_lsa_message_overhead);
      ("failover: follower death harmless (mat)", `Quick, test_failover_mat);
      ("failover: lsa leader death", `Quick, test_failover_lsa_leader);
      ("passive replay (seq)", `Quick, test_passive_replay);
      ("passive checkpoint replay (mat)", `Quick,
       test_passive_checkpoint_replay);
    ]
  @ List.map
      (fun s ->
        (Printf.sprintf "producer/consumer (%s)" s, `Quick, test_prodcons s))
      [ "sat"; "lsa"; "pds"; "mat"; "mat-ll"; "pmat" ]

let () = Alcotest.run "replication" [ ("replication", suite) ]
