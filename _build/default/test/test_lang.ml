(* Unit tests for the mini object language: builder, well-formedness and the
   pretty printer. *)

open Detmt_lang

let b = Alcotest.bool

let one_method ?(params = 1) ?(mutex_fields = []) ?(state_fields = [ "st" ])
    ?(globals = []) body =
  Builder.cls ~cname:"C" ~mutex_fields ~state_fields ~globals
    [ Builder.meth "m" ~params body ]

let has_error fragment cls =
  List.exists
    (fun e ->
      let n = String.length fragment and h = String.length e in
      let rec go i = i + n <= h && (String.sub e i n = fragment || go (i + 1)) in
      go 0)
    (Wellformed.errors cls)

let test_wellformed_ok () =
  let open Builder in
  let cls =
    one_method
      [ compute 1.0;
        sync (arg 0) [ state_incr "st" 1; notify (arg 0) ];
        nested ~service:0 5.0;
      ]
  in
  Alcotest.(check (list string)) "no diagnostics" [] (Wellformed.errors cls)

let test_wait_outside_sync () =
  let open Builder in
  let cls = one_method [ wait (arg 0) ] in
  Alcotest.check b "flagged" true (has_error "outside its synchronized" cls)

let test_wait_under_wrong_monitor () =
  let open Builder in
  let cls = one_method [ sync this [ wait (arg 0) ] ] in
  Alcotest.check b "flagged" true (has_error "outside its synchronized" cls)

let test_state_update_outside_lock () =
  let open Builder in
  let cls = one_method [ state_incr "st" 1 ] in
  Alcotest.check b "flagged" true
    (has_error "outside any synchronized" cls)

let test_undeclared_field () =
  let open Builder in
  let cls = one_method [ sync (field "nope") [ state_incr "st" 1 ] ] in
  Alcotest.check b "flagged" true (has_error "undeclared mutex field" cls)

let test_undeclared_state_field () =
  let open Builder in
  let cls = one_method [ sync this [ state_incr "nope" 1 ] ] in
  Alcotest.check b "flagged" true (has_error "undeclared state field" cls)

let test_undeclared_global () =
  let open Builder in
  let cls = one_method [ sync (global "g") [ state_incr "st" 1 ] ] in
  Alcotest.check b "flagged" true (has_error "undeclared global" cls)

let test_arg_out_of_range () =
  let open Builder in
  let cls = one_method ~params:1 [ sync (arg 3) [ state_incr "st" 1 ] ] in
  Alcotest.check b "flagged" true (has_error "parameter(s)" cls)

let test_local_use_before_assign () =
  let open Builder in
  let cls = one_method [ sync (local "v") [ state_incr "st" 1 ] ] in
  Alcotest.check b "flagged" true (has_error "before any assignment" cls)

let test_local_assigned_in_one_branch_only () =
  let open Builder in
  let cls =
    one_method
      [ if_ (arg_bool 0) [ assign "v" (mconst 1) ] [];
        sync (local "v") [ state_incr "st" 1 ];
      ]
  in
  Alcotest.check b "one-branch assignment is not definite" true
    (has_error "before any assignment" cls)

let test_local_assigned_in_both_branches () =
  let open Builder in
  let cls =
    one_method
      [ if_ (arg_bool 0) [ assign "v" (mconst 1) ] [ assign "v" (mconst 2) ];
        sync (local "v") [ state_incr "st" 1 ];
      ]
  in
  Alcotest.(check (list string)) "accepted" [] (Wellformed.errors cls)

let test_instrumentation_rejected_in_source () =
  let cls =
    one_method [ Ast.Sched_lock (1, Ast.Sp_this) ]
  in
  Alcotest.check b "flagged" true
    (has_error "scheduler instrumentation in source" cls)

let test_call_undefined () =
  let open Builder in
  let cls = one_method [ call "nope" ] in
  Alcotest.check b "flagged" true (has_error "undefined method" cls)

let test_virtual_candidate_undefined () =
  let open Builder in
  let cls = one_method [ virtual_call ~selector:0 [ "nope" ] ] in
  Alcotest.check b "flagged" true (has_error "is undefined" cls)

let test_duplicate_methods () =
  let open Builder in
  let cls =
    Builder.cls ~cname:"C" ~state_fields:[ "st" ]
      [ meth "m" [ compute 1.0 ]; meth "m" [ compute 2.0 ] ]
  in
  Alcotest.check b "flagged" true (has_error "duplicate method" cls)

let test_negative_duration () =
  let open Builder in
  let cls = one_method [ compute (-5.0) ] in
  Alcotest.check b "flagged" true (has_error "negative duration" cls)

let test_check_exn_raises () =
  let open Builder in
  let cls = one_method [ wait (arg 0) ] in
  Alcotest.check b "check_exn raises" true
    (try
       Wellformed.check_exn cls;
       false
     with Invalid_argument _ -> true)

let test_class_def_lookup () =
  let open Builder in
  let cls =
    Builder.cls ~cname:"C" ~state_fields:[ "st" ]
      [ meth "pub" [ compute 1.0 ]; helper "priv" [ compute 1.0 ] ]
  in
  Alcotest.check b "find pub" true (Class_def.find_method cls "pub" <> None);
  Alcotest.check b "find missing" true
    (Class_def.find_method cls "nope" = None);
  Alcotest.(check (list string)) "start methods" [ "pub" ]
    (List.map
       (fun (m : Class_def.method_def) -> m.name)
       (Class_def.start_methods cls));
  Alcotest.check b "find_exn raises" true
    (try
       ignore (Class_def.find_method_exn cls "nope");
       false
     with Invalid_argument _ -> true)

let test_pretty_sync () =
  let open Builder in
  let text =
    Pretty.block_to_string [ sync (arg 0) [ state_incr "st" 2 ] ]
  in
  Alcotest.(check string) "java-like rendering"
    "synchronized (arg0) {\n  this.st += 2;\n}" text

let test_pretty_guarded_wait () =
  let open Builder in
  let text =
    Pretty.block_to_string [ wait_until this ~field:"items" ~min:1 ]
  in
  Alcotest.(check string) "guarded wait rendering"
    "while (this.items < 1) this.wait();" text

let test_pretty_roundtrip_stability () =
  (* Pretty-printing must be deterministic. *)
  let cls = Detmt_workload.Figure1.cls Detmt_workload.Figure1.default in
  let s1 = Format.asprintf "%a" Pretty.class_def cls in
  let s2 = Format.asprintf "%a" Pretty.class_def cls in
  Alcotest.(check string) "stable output" s1 s2

let suite =
  [ ("wellformed accepts valid class", `Quick, test_wellformed_ok);
    ("wait outside sync", `Quick, test_wait_outside_sync);
    ("wait under wrong monitor", `Quick, test_wait_under_wrong_monitor);
    ("state update outside lock", `Quick, test_state_update_outside_lock);
    ("undeclared field", `Quick, test_undeclared_field);
    ("undeclared state field", `Quick, test_undeclared_state_field);
    ("undeclared global", `Quick, test_undeclared_global);
    ("argument out of range", `Quick, test_arg_out_of_range);
    ("local use before assign", `Quick, test_local_use_before_assign);
    ("one-branch assignment rejected", `Quick,
     test_local_assigned_in_one_branch_only);
    ("both-branch assignment accepted", `Quick,
     test_local_assigned_in_both_branches);
    ("instrumentation rejected in source", `Quick,
     test_instrumentation_rejected_in_source);
    ("call to undefined method", `Quick, test_call_undefined);
    ("undefined virtual candidate", `Quick, test_virtual_candidate_undefined);
    ("duplicate methods", `Quick, test_duplicate_methods);
    ("negative duration", `Quick, test_negative_duration);
    ("check_exn raises", `Quick, test_check_exn_raises);
    ("class_def lookup", `Quick, test_class_def_lookup);
    ("pretty sync", `Quick, test_pretty_sync);
    ("pretty guarded wait", `Quick, test_pretty_guarded_wait);
    ("pretty stable", `Quick, test_pretty_roundtrip_stability);
  ]

let () = Alcotest.run "lang" [ ("lang", suite) ]
