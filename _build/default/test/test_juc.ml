(* Tests for the java.util.concurrent extension (section 5): explicit,
   non-lexically-scoped locks. *)

open Detmt_lang
open Detmt_replication

let b = Alcotest.bool

(* Hand-over-hand (lock-coupling) traversal over two locks: acquire A,
   acquire B, release A, work, release B — impossible to express with
   synchronized blocks. *)
let hoh_class =
  let open Builder in
  Builder.cls ~cname:"HandOverHand" ~state_fields:[ "st" ]
    [ meth "traverse" ~params:2
        [ lock_acquire (arg 0);
          compute 1.0;
          lock_acquire (arg 1);
          lock_release (arg 0);
          compute 1.0;
          state_incr "st" 1;
          lock_release (arg 1);
          compute 0.5;
        ];
    ]

let test_wellformed () =
  Alcotest.(check (list string)) "accepted" [] (Wellformed.errors hoh_class)

let test_transforms_and_verifies () =
  let instrumented, summary = Detmt_transform.Transform.predictive hoh_class in
  Alcotest.(check (list string)) "verifies" []
    (Detmt_transform.Verify.check_class ~summary instrumented);
  let ms =
    Option.get (Detmt_analysis.Predict.find_method summary "traverse")
  in
  Alcotest.(check int) "two acquisition sites, two sids" 2
    (List.length ms.Detmt_analysis.Predict.sids);
  Alcotest.(check (list int)) "both announceable" [ 1; 2 ]
    (Detmt_analysis.Predict.announceable_sids ms)

let test_verifier_rejects_leak () =
  (* A path that ends still holding the explicit lock must be flagged. *)
  let open Builder in
  let leaky =
    Builder.cls ~cname:"Leaky" ~state_fields:[ "st" ]
      [ meth "m" ~params:1 [ lock_acquire (arg 0); compute 1.0 ] ]
  in
  let instrumented, summary = Detmt_transform.Transform.predictive leaky in
  Alcotest.check b "leak detected" true
    (Detmt_transform.Verify.check_class ~summary instrumented <> [])

let test_verifier_rejects_unmatched_release () =
  let open Builder in
  let stray =
    Builder.cls ~cname:"Stray" ~state_fields:[ "st" ]
      [ meth "m" ~params:1 [ lock_release (arg 0) ] ]
  in
  let instrumented, summary = Detmt_transform.Transform.predictive stray in
  Alcotest.check b "stray release detected" true
    (Detmt_transform.Verify.check_class ~summary instrumented <> [])

let run ~scheduler ~clients =
  let engine = Detmt_sim.Engine.create () in
  let system =
    Active.create ~engine ~cls:hoh_class
      ~params:{ Active.default_params with scheduler }
      ()
  in
  let gen ~client ~seq:_ _rng =
    (* chained segments: client k couples locks (k, k+1) *)
    ("traverse", [| Ast.Vmutex client; Ast.Vmutex (client + 1) |])
  in
  Client.run_clients ~engine ~system ~clients ~requests_per_client:5 ~gen ();
  system

let test_runs_under_every_scheduler () =
  List.iter
    (fun scheduler ->
      let system = run ~scheduler ~clients:4 in
      Alcotest.(check int)
        (scheduler ^ " replies")
        20
        (Active.replies_received system);
      let r = Consistency.check (Active.live_replicas system) in
      Alcotest.check b (scheduler ^ " consistent") true
        (r.Consistency.states_agree && r.Consistency.acquisitions_agree))
    [ "seq"; "sat"; "mat"; "mat-ll"; "pmat"; "lsa"; "pds" ]

let test_no_deadlock_on_chained_locks () =
  (* Adjacent clients contend on the shared middle lock; the deterministic
     disciplines order the acquisitions and the run completes. *)
  let system = run ~scheduler:"pmat" ~clients:8 in
  Alcotest.(check int) "all replies" 40 (Active.replies_received system)

let test_bookkeeping_releases_on_acquire () =
  (* The acquisition (not the release) resolves the prediction entry, so a
     thread holding B with A released is already lock-free for prediction. *)
  let _, summary = Detmt_transform.Transform.predictive hoh_class in
  let bk = Detmt_sched.Bookkeeping.create ~summary:(Some summary) () in
  Detmt_sched.Bookkeeping.register bk ~tid:1 ~meth:"traverse";
  Detmt_sched.Bookkeeping.on_lockinfo bk ~tid:1 ~syncid:1 ~mutex:5;
  Detmt_sched.Bookkeeping.on_lockinfo bk ~tid:1 ~syncid:2 ~mutex:6;
  Alcotest.check b "predicted after announcements" true
    (Detmt_sched.Bookkeeping.predicted bk ~tid:1);
  Detmt_sched.Bookkeeping.on_acquired bk ~tid:1 ~syncid:1 ~mutex:5;
  Detmt_sched.Bookkeeping.on_acquired bk ~tid:1 ~syncid:2 ~mutex:6;
  Alcotest.check b "no future locks after both acquisitions" true
    (Detmt_sched.Bookkeeping.no_future_locks bk ~tid:1)

let suite =
  [ ("wellformed", `Quick, test_wellformed);
    ("transforms and verifies", `Quick, test_transforms_and_verifies);
    ("verifier rejects leak", `Quick, test_verifier_rejects_leak);
    ("verifier rejects stray release", `Quick,
     test_verifier_rejects_unmatched_release);
    ("runs under every scheduler", `Quick, test_runs_under_every_scheduler);
    ("no deadlock on chained locks", `Quick,
     test_no_deadlock_on_chained_locks);
    ("bookkeeping on explicit locks", `Quick,
     test_bookkeeping_releases_on_acquire);
  ]

let () = Alcotest.run "juc" [ ("juc", suite) ]
