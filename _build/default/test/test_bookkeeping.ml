(* Unit tests for the bookkeeping module (section 4.3): per-thread syncid
   tables, announcements, ignores, loop scopes and the predicted/future-lock
   queries the decision modules rely on. *)

open Detmt_lang
open Detmt_sched

let b = Alcotest.bool

let summary_of cls = snd (Detmt_transform.Transform.predictive cls)

(* One announceable lock (arg 0) and one branch-dependent pair. *)
let branchy =
  let open Builder in
  Builder.cls ~cname:"B" ~state_fields:[ "st" ] ~mutex_fields:[ ("f", 9) ]
    [ meth "go" ~params:2
        [ sync (arg 0) [ state_incr "st" 1 ];
          if_ (arg_bool 1)
            [ sync (arg 0) [ state_incr "st" 1 ] ]
            [ sync (field "f") [ state_incr "st" 1 ] ];
        ];
    ]

let fresh_bk cls =
  let bk = Bookkeeping.create ~summary:(Some (summary_of cls)) () in
  Bookkeeping.register bk ~tid:1 ~meth:"go";
  bk

let test_unregistered_is_pessimistic () =
  let bk = Bookkeeping.create ~summary:None () in
  Bookkeeping.register bk ~tid:1 ~meth:"go";
  Alcotest.check b "not predicted" false (Bookkeeping.predicted bk ~tid:1);
  Alcotest.check b "may lock anything" true
    (Bookkeeping.future_may_lock bk ~tid:1 ~mutex:77);
  Alcotest.check b "never lock-free" false
    (Bookkeeping.no_future_locks bk ~tid:1)

let test_unknown_thread_is_pessimistic () =
  let bk = fresh_bk branchy in
  Alcotest.check b "unknown tid not predicted" false
    (Bookkeeping.predicted bk ~tid:99)

let test_prediction_lifecycle () =
  let bk = fresh_bk branchy in
  (* entry lockinfo for sids 1 and 2 (both arg 0); sid 3 is spontaneous *)
  Bookkeeping.on_lockinfo bk ~tid:1 ~syncid:1 ~mutex:40;
  Bookkeeping.on_lockinfo bk ~tid:1 ~syncid:2 ~mutex:40;
  Alcotest.check b "sid 3 still pending: not predicted" false
    (Bookkeeping.predicted bk ~tid:1);
  (* then branch taken: sid 3 ignored *)
  Bookkeeping.on_ignore bk ~tid:1 ~syncid:3;
  Alcotest.check b "now predicted" true (Bookkeeping.predicted bk ~tid:1);
  Alcotest.check b "future includes announced mutex" true
    (Bookkeeping.future_may_lock bk ~tid:1 ~mutex:40);
  Alcotest.check b "future excludes others" false
    (Bookkeeping.future_may_lock bk ~tid:1 ~mutex:41);
  (* acquisitions mark entries passed *)
  Bookkeeping.on_acquired bk ~tid:1 ~syncid:1 ~mutex:40;
  Alcotest.check b "still future: sid 2 remains" true
    (Bookkeeping.future_may_lock bk ~tid:1 ~mutex:40);
  Bookkeeping.on_acquired bk ~tid:1 ~syncid:2 ~mutex:40;
  Alcotest.check b "no future locks left" true
    (Bookkeeping.no_future_locks bk ~tid:1);
  Alcotest.check b "future set empty" true
    (Bookkeeping.future_mutexes bk ~tid:1 = Some [])

let test_spontaneous_path () =
  let bk = fresh_bk branchy in
  Bookkeeping.on_lockinfo bk ~tid:1 ~syncid:1 ~mutex:40;
  Bookkeeping.on_lockinfo bk ~tid:1 ~syncid:2 ~mutex:40;
  (* else branch: sid 2 ignored, spontaneous sid 3 taken *)
  Bookkeeping.on_ignore bk ~tid:1 ~syncid:2;
  Alcotest.check b "spontaneous pending blocks prediction" false
    (Bookkeeping.predicted bk ~tid:1);
  (* locking a spontaneous parameter acts as lockinfo + lock *)
  Bookkeeping.on_acquired bk ~tid:1 ~syncid:3 ~mutex:9;
  Bookkeeping.on_acquired bk ~tid:1 ~syncid:1 ~mutex:40;
  Alcotest.check b "all passed: predicted and lock-free" true
    (Bookkeeping.no_future_locks bk ~tid:1)

let test_release_forgets () =
  let bk = fresh_bk branchy in
  Bookkeeping.release bk ~tid:1;
  Alcotest.check b "released thread pessimistic" false
    (Bookkeeping.predicted bk ~tid:1)

(* Fixed-mutex loop: announced before the loop; remains in the future set
   until loop exit even after an acquisition inside the loop. *)
let loop_fixed =
  let open Builder in
  Builder.cls ~cname:"L" ~state_fields:[ "st" ]
    [ meth "go" ~params:1
        [ assign "m" (marg 0);
          for_ 3 [ sync (local "m") [ state_incr "st" 1 ] ];
        ];
    ]

let test_fixed_loop_future () =
  let bk = fresh_bk loop_fixed in
  Bookkeeping.on_lockinfo bk ~tid:1 ~syncid:1 ~mutex:5;
  Alcotest.check b "announced: predicted (kind-A loop)" true
    (Bookkeeping.predicted bk ~tid:1);
  Bookkeeping.on_loop_enter bk ~tid:1 ~loopid:1;
  Alcotest.check b "kind-A loop keeps prediction" true
    (Bookkeeping.predicted bk ~tid:1);
  Bookkeeping.on_acquired bk ~tid:1 ~syncid:1 ~mutex:5;
  Alcotest.check b "in-loop acquisition keeps the mutex in the future" true
    (Bookkeeping.future_may_lock bk ~tid:1 ~mutex:5);
  Bookkeeping.on_loop_exit bk ~tid:1 ~loopid:1;
  Alcotest.check b "after loop exit the future is empty" true
    (Bookkeeping.no_future_locks bk ~tid:1)

let loop_changing =
  let open Builder in
  Builder.cls ~cname:"L" ~state_fields:[ "st" ] ~mutex_fields:[ ("f", 2) ]
    [ meth "go"
        [ for_ 3 [ sync (field "f") [ state_incr "st" 1 ] ] ];
    ]

let test_changing_loop_blocks_prediction () =
  let bk = fresh_bk loop_changing in
  Alcotest.check b "changing loop ahead: not predicted" false
    (Bookkeeping.predicted bk ~tid:1);
  Bookkeeping.on_loop_enter bk ~tid:1 ~loopid:1;
  Bookkeeping.on_acquired bk ~tid:1 ~syncid:1 ~mutex:2;
  Alcotest.check b "inside changing loop: not predicted" false
    (Bookkeeping.predicted bk ~tid:1);
  Bookkeeping.on_loop_exit bk ~tid:1 ~loopid:1;
  Alcotest.check b "after exit: predicted and lock-free" true
    (Bookkeeping.no_future_locks bk ~tid:1)

let test_zero_iteration_loop () =
  (* enter/exit with no lock in between must resolve the loop's sids. *)
  let bk = fresh_bk loop_changing in
  Bookkeeping.on_loop_enter bk ~tid:1 ~loopid:1;
  Bookkeeping.on_loop_exit bk ~tid:1 ~loopid:1;
  Alcotest.check b "zero-iteration loop resolves its sids" true
    (Bookkeeping.no_future_locks bk ~tid:1)

(* Opaque (non-analysable call) region. *)
let opaque_cls =
  let open Builder in
  Builder.cls ~cname:"O" ~state_fields:[ "st" ]
    [ helper ~final:false "h" [ sync this [ state_incr "st" 1 ] ];
      meth "go" [ call "h" ];
    ]

let test_opaque_region () =
  let bk = fresh_bk opaque_cls in
  Alcotest.check b "opaque call ahead: not predicted" false
    (Bookkeeping.predicted bk ~tid:1);
  Bookkeeping.on_loop_enter bk ~tid:1 ~loopid:1;
  (* an unknown (helper) sid arrives while inside the opaque scope *)
  Bookkeeping.on_acquired bk ~tid:1 ~syncid:999 ~mutex:123;
  Alcotest.check b "unknown sid tolerated" false
    (Bookkeeping.predicted bk ~tid:1);
  Bookkeeping.on_loop_exit bk ~tid:1 ~loopid:1;
  Alcotest.check b "after the opaque region: predicted" true
    (Bookkeeping.predicted bk ~tid:1)

let test_fallback_method_pessimistic () =
  let open Builder in
  let recursive =
    Builder.cls ~cname:"R" ~state_fields:[ "st" ]
      [ meth "go" [ call "go" ] ]
  in
  let bk = Bookkeeping.create ~summary:(Some (summary_of recursive)) () in
  Bookkeeping.register bk ~tid:1 ~meth:"go";
  Alcotest.check b "recursive start method is pessimistic" false
    (Bookkeeping.predicted bk ~tid:1)

let suite =
  [ ("no summary is pessimistic", `Quick, test_unregistered_is_pessimistic);
    ("unknown thread pessimistic", `Quick, test_unknown_thread_is_pessimistic);
    ("prediction lifecycle", `Quick, test_prediction_lifecycle);
    ("spontaneous path", `Quick, test_spontaneous_path);
    ("release forgets", `Quick, test_release_forgets);
    ("fixed loop future set", `Quick, test_fixed_loop_future);
    ("changing loop blocks prediction", `Quick,
     test_changing_loop_blocks_prediction);
    ("zero-iteration loop", `Quick, test_zero_iteration_loop);
    ("opaque region", `Quick, test_opaque_region);
    ("fallback method pessimistic", `Quick, test_fallback_method_pessimistic);
  ]

let () = Alcotest.run "bookkeeping" [ ("bookkeeping", suite) ]
