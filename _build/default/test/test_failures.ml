(* Failure-injection tests beyond the basic failover scenarios: failures
   during nested invocations, double failures, and duplicate-request
   suppression under client retry. *)

open Detmt_sim
open Detmt_replication

let b = Alcotest.bool

let figure1_cls = Detmt_workload.Figure1.cls Detmt_workload.Figure1.default

let figure1_gen = Detmt_workload.Figure1.gen Detmt_workload.Figure1.default

let build ?(scheduler = "mat") () =
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls:figure1_cls
      ~params:{ Active.default_params with scheduler }
      ()
  in
  (engine, system)

let survivors_consistent system =
  let r = Consistency.check (Active.live_replicas system) in
  r.Consistency.states_agree && r.Consistency.acquisitions_agree

let test_invoker_dies_mid_nested_call () =
  (* Replica 0 performs the nested invocations; killing it while calls are
     outstanding forces the new leader to re-issue them. *)
  let engine, system = build () in
  (* The very first nested call of the workload starts within a few ms;
     kill at t=5 to hit the in-flight window. *)
  Failover.kill_and_measure ~system ~replica:0 ~at:5.0;
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:5
    ~gen:figure1_gen ~until_ms:60_000.0 ();
  Alcotest.(check int) "all requests answered" 20
    (Active.replies_received system);
  Alcotest.check b "survivors consistent" true (survivors_consistent system)

let test_two_failures () =
  let engine, system = build () in
  Failover.kill_and_measure ~system ~replica:0 ~at:30.0;
  Failover.kill_and_measure ~system ~replica:1 ~at:90.0;
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:5
    ~gen:figure1_gen ~until_ms:60_000.0 ();
  Alcotest.(check int) "the last replica answers everything" 20
    (Active.replies_received system);
  Alcotest.(check int) "one survivor" 1
    (List.length (Active.live_replicas system))

let test_lsa_two_failures () =
  (* Two successive leader take-overs. *)
  let engine, system = build ~scheduler:"lsa" () in
  Failover.kill_and_measure ~system ~replica:0 ~at:40.0;
  Failover.kill_and_measure ~system ~replica:1 ~at:160.0;
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:5
    ~gen:figure1_gen ~until_ms:60_000.0 ();
  Alcotest.(check int) "all requests answered" 20
    (Active.replies_received system)

let test_duplicate_requests_suppressed () =
  (* A client that re-submits (retry after a suspected failure) must not
     make the object state advance twice. *)
  let engine, system = build ~scheduler:"seq" () in
  let cls = Detmt_workload.Disjoint.cls Detmt_workload.Disjoint.default in
  ignore cls;
  let meth, args = figure1_gen ~client:0 ~seq:0 (Rng.create 5L) in
  let replies = ref 0 in
  for _attempt = 1 to 3 do
    Active.submit system ~client:0 ~client_req:0 ~meth ~args
      ~on_reply:(fun ~response_ms:_ -> incr replies)
  done;
  Engine.run engine;
  Alcotest.(check int) "one reply for one logical request" 1 !replies;
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d executed it once" (Detmt_runtime.Replica.id r))
        Detmt_workload.Figure1.default.iterations
        (List.assoc "state" (Detmt_runtime.Replica.state_snapshot r)))
    (Active.replicas system)

let test_dead_replica_state_frozen () =
  let engine, system = build () in
  Failover.kill_and_measure ~system ~replica:2 ~at:40.0;
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:5
    ~gen:figure1_gen ~until_ms:60_000.0 ();
  let dead =
    List.find
      (fun r -> not (Detmt_runtime.Replica.alive r))
      (Active.replicas system)
  in
  let live = List.hd (Active.live_replicas system) in
  Alcotest.check b "dead replica stopped early" true
    (Detmt_runtime.Replica.completed_requests dead
    < Detmt_runtime.Replica.completed_requests live)

let test_failover_analysis_monotone () =
  (* Sanity of the take-over analysis: killing nothing yields no take-over. *)
  let engine, system = build () in
  Client.run_clients ~engine ~system ~clients:4 ~requests_per_client:5
    ~gen:figure1_gen ();
  let a = Failover.analyze ~system ~kill_at:50.0 in
  Alcotest.check b "gaps are finite" true (a.Failover.gap_after_ms >= 0.0)

let suite =
  [ ("invoker dies mid nested call", `Quick,
     test_invoker_dies_mid_nested_call);
    ("two failures", `Quick, test_two_failures);
    ("lsa two failures", `Quick, test_lsa_two_failures);
    ("duplicate requests suppressed", `Quick,
     test_duplicate_requests_suppressed);
    ("dead replica state frozen", `Quick, test_dead_replica_state_frozen);
    ("failover analysis sane", `Quick, test_failover_analysis_monotone);
  ]

let () = Alcotest.run "failures" [ ("failures", suite) ]
