(* Tests for the DML concrete syntax: parsing, printing, round-tripping and
   error reporting. *)

open Detmt_lang

let b = Alcotest.bool

let sample =
  {|
// a replicated counter with every construct exercised
class Counter {
  mutexfield lock = 7;
  statefield count;
  global G = 50;

  export final bump(3) {
    compute 5.0;
    v0 := arg 0;
    sync local v0 { count += 1; }
    if argbool 2 { nested 0 12.0; } else { count2 += -1; }
    for 3 { sync this { count += 1; } }
    while arg 1 { compute 1.0; }
    dowhile 2 { compute 0.5; }
    sync this {
      waituntil this count >= 1;
      notifyall this;
    }
    acquire arg 0;
    release arg 0;
    this.lock := mutex 9;
    call helper;
    virtual arg 1 [ a bb ];
    sync global G { count += 1; }
    sync callresult opaque { count += 1; }
    if arg 1 == 2 { } 
    if !(this.lock == arg 0) { }
  }

  helper final helper(0) { compute 1.0; }
  helper nonfinal a(3) { compute 1.0; }
  helper nonfinal bb(3) { compute 2.0; }
}
|}

let fixed_sample_cls () =
  match Dml.parse sample with
  | Ok c -> c
  | Error e -> Alcotest.failf "sample does not parse: %s" e


let test_parse_sample () =
  let c =
    Dml.parse_exn
      (String.concat ""
         [ "class C { statefield count; statefield count2; export final \
            m(3) { count += 1; } }" ])
  in
  ignore c;
  let cls = fixed_sample_cls () in
  Alcotest.(check string) "class name" "Counter" cls.Class_def.cname;
  Alcotest.(check int) "methods" 4 (List.length cls.methods);
  Alcotest.(check (list (pair string int))) "mutex fields" [ ("lock", 7) ]
    cls.mutex_fields;
  Alcotest.(check (list (pair string int))) "globals" [ ("G", 50) ]
    cls.globals;
  let bump = Class_def.find_method_exn cls "bump" in
  Alcotest.check b "bump exported" true bump.exported;
  Alcotest.(check int) "bump params" 3 bump.params;
  let a = Class_def.find_method_exn cls "a" in
  Alcotest.check b "a is nonfinal" false a.final

let test_roundtrip_sample () =
  let cls = fixed_sample_cls () in
  match Dml.parse (Dml.print cls) with
  | Ok c -> Alcotest.check b "round trip" true (Class_def.equal c cls)
  | Error e -> Alcotest.failf "printed class does not parse: %s" e

let test_roundtrip_workloads () =
  List.iter
    (fun cls ->
      match Dml.parse (Dml.print cls) with
      | Ok c ->
        Alcotest.check b
          (cls.Class_def.cname ^ " round trips")
          true (Class_def.equal c cls)
      | Error e -> Alcotest.failf "%s: %s" cls.Class_def.cname e)
    [ Detmt_workload.Figure1.cls Detmt_workload.Figure1.default;
      Detmt_workload.Disjoint.cls Detmt_workload.Disjoint.default;
      Detmt_workload.Tail_compute.cls Detmt_workload.Tail_compute.default;
      Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default;
    ]

let test_parsed_class_runs () =
  (* End-to-end: a class written in DML executes under a scheduler. *)
  let cls =
    Dml.parse_exn
      {|class FromText {
          statefield hits;
          export final poke(1) {
            sync arg 0 { hits += 1; }
            compute 1.0;
          }
        }|}
  in
  let engine = Detmt_sim.Engine.create () in
  let system =
    Detmt_replication.Active.create ~engine ~cls
      ~params:
        { Detmt_replication.Active.default_params with scheduler = "pmat" }
      ()
  in
  let gen ~client ~seq:_ _ = ("poke", [| Ast.Vmutex client |]) in
  Detmt_replication.Client.run_clients ~engine ~system ~clients:3
    ~requests_per_client:4 ~gen ();
  Alcotest.(check int) "replies" 12
    (Detmt_replication.Active.replies_received system)

let check_error fragment src =
  match Dml.parse src with
  | Ok _ -> Alcotest.failf "expected a parse error (%s)" fragment
  | Error msg ->
    let has =
      let n = String.length fragment and h = String.length msg in
      let rec go i =
        i + n <= h && (String.sub msg i n = fragment || go (i + 1))
      in
      go 0
    in
    if not has then Alcotest.failf "error %S does not mention %S" msg fragment

let test_error_messages () =
  check_error "expected 'class'" "klass C {}";
  check_error "line 3"
    "class C {\n  statefield s;\n  export final m(0) { compute }\n}";
  check_error "trailing input" "class C {} class D {}";
  check_error "unexpected character" "class C { # }";
  check_error "unterminated block" "class C { export final m(0) { "

let test_comments_and_negatives () =
  let cls =
    Dml.parse_exn
      "class C { statefield s; // trailing comment\n export final m(0) { \
       sync this { s += -5; } } }"
  in
  let m = Class_def.find_method_exn cls "m" in
  Alcotest.check b "negative increment survives" true
    (List.exists
       (function
         | Ast.Sync (_, body) ->
           List.mem (Ast.State_update ("s", -5)) body
         | _ -> false)
       m.body)

let prop_roundtrip_random =
  QCheck.Test.make ~count:300 ~name:"parse (print c) = c"
    Testgen.arbitrary_class
    (fun cls ->
      match Dml.parse (Dml.print cls) with
      | Ok c -> Class_def.equal c cls
      | Error _ -> false)

let suite =
  [ ("parse sample", `Quick, test_parse_sample);
    ("roundtrip sample", `Quick, test_roundtrip_sample);
    ("roundtrip workloads", `Quick, test_roundtrip_workloads);
    ("parsed class runs", `Quick, test_parsed_class_runs);
    ("error messages", `Quick, test_error_messages);
    ("comments and negatives", `Quick, test_comments_and_negatives);
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
  ]

let () = Alcotest.run "dml" [ ("dml", suite) ]
