(** Minimal JSON values: deterministic printer plus a validating parser.

    Used by the Chrome-trace and benchmark exporters; the parser exists so
    tests and CI can check that exported files are well-formed without an
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering; object fields keep the order given. *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result

val member : string -> t -> t option
(** [member key v] is the field [key] when [v] is an object. *)

val to_list : t -> t list option
