(* A minimal JSON value type with a printer and a parser.

   The flight recorder exports Chrome trace-event files and benchmark
   snapshots; depending on an external JSON library would drag a dependency
   into every layer that links the recorder, so the few hundred lines are
   kept here.  The printer emits deterministic output (object fields in the
   order given); the parser accepts standard JSON and exists so tests and
   the CI smoke run can validate that exported files round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------ printing --------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    (* NaN is not valid JSON; emit 0 rather than an unparsable file. *)
    Printf.sprintf "%.1f" (if Float.is_nan f then 0.0 else f)
  else
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------ parsing ---------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail c "short \\u escape";
        let hex = String.sub c.src c.pos 4 in
        c.pos <- c.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail c "bad \\u escape"
        in
        (* Encode as UTF-8; surrogate pairs are not reassembled (the
           exporter never emits them). *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
    advance c;
    String (parse_string_body c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List (List.rev (v :: acc))
        | _ -> fail c "expected ',' or ']'"
      in
      items []
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else
      let field () =
        skip_ws c;
        expect c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev (kv :: acc))
        | _ -> fail c "expected ',' or '}'"
      in
      fields []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------ access ----------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
