(* Log-linear bucketed histogram (the HdrHistogram layout).

   Values are assigned to buckets that grow geometrically octave by octave
   and linearly within an octave: each power of two is cut into [sub]
   equal-width slices, so the worst-case relative error of a bucket bound
   is 1/(2*sub) (~3.1% at sub=16).  Memory is O(occupied buckets) — a
   sparse int-keyed table — instead of O(samples), which is what lets the
   metrics registry survive 16k-client grids where the old exact
   [Summary]-backed histograms kept every response time ever observed.

   Count, sum, min and max are tracked exactly; only quantiles are
   bucket-approximate (reported as the bucket's upper bound, clamped to the
   exact observed range).  Everything is deterministic: bucket indices are
   a pure function of the value, and iteration sorts by index. *)

let sub = 16
let sub_f = float_of_int sub

type t = {
  buckets : (int, int ref) Hashtbl.t;
  mutable zero : int; (* samples <= 0.0 (virtual-ms metrics are >= 0) *)
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  { buckets = Hashtbl.create 16; zero = 0; count = 0; sum = 0.0;
    vmin = infinity; vmax = neg_infinity }

(* v > 0: frexp v = (m, e) with m in [0.5, 1); the sub-bucket is the linear
   slice of [0.5, 1) that m falls in. *)
let index_of v =
  let m, e = Float.frexp v in
  let s = int_of_float ((m -. 0.5) *. 2.0 *. sub_f) in
  let s = if s >= sub then sub - 1 else s in
  (e * sub) + s

(* Upper bound of bucket [i]: the start of the next linear slice. *)
let upper_bound i =
  let e = if i >= 0 then i / sub else ((i + 1) / sub) - 1 in
  let s = i - (e * sub) in
  Float.ldexp (0.5 +. (float_of_int (s + 1) /. (2.0 *. sub_f))) e

let add t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if v <= 0.0 || not (Float.is_finite v) then t.zero <- t.zero + 1
  else
    let i = index_of v in
    match Hashtbl.find_opt t.buckets i with
    | Some r -> incr r
    | None -> Hashtbl.add t.buckets i (ref 1)

let count t = t.count

let total t = t.sum

let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

let min t = if t.count = 0 then nan else t.vmin

let max t = if t.count = 0 then nan else t.vmax

let sorted_buckets t =
  Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile t q =
  if t.count = 0 then nan
  else begin
    if q < 0.0 || q > 1.0 then invalid_arg "Hdr.quantile";
    (* Same rank convention as [Detmt_stats.Summary.quantile]. *)
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = Stdlib.max 1 (Stdlib.min t.count rank) in
    if rank <= t.zero then t.vmin
    else begin
      let seen = ref t.zero in
      let answer = ref t.vmax in
      (try
         List.iter
           (fun (i, n) ->
             seen := !seen + n;
             if !seen >= rank then begin
               answer := upper_bound i;
               raise Exit
             end)
           (sorted_buckets t)
       with Exit -> ());
      Stdlib.min (Stdlib.max !answer t.vmin) t.vmax
    end
  end

let median t = quantile t 0.5

(* Cumulative (upper_bound, count_at_or_below) pairs over occupied buckets,
   for an OpenMetrics [_bucket{le=...}] exposition; the caller adds the
   final [+Inf] sample from [count]. *)
let cumulative t =
  let acc = ref t.zero in
  List.map
    (fun (i, n) ->
      acc := !acc + n;
      (upper_bound i, !acc))
    (sorted_buckets t)

let bucket_count t = Hashtbl.length t.buckets + if t.zero > 0 then 1 else 0

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f"
      t.count (mean t) (min t) (median t) (quantile t 0.95) (max t)
