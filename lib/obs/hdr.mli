(** Log-linear bucketed histogram (HdrHistogram layout).

    Replaces the exact sample lists behind high-volume metrics so memory
    stays O(occupied buckets) at 16k clients.  Each power of two is split
    into 16 linear sub-buckets, bounding the relative error of a quantile
    at ~3.1%.  Count, sum, min and max are exact; quantiles are reported
    as the containing bucket's upper bound clamped to the observed range.
    Fully deterministic: bucket placement is a pure function of the value
    and iteration sorts by bucket index. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float
(** Exact sum of all samples. *)

val mean : t -> float

val min : t -> float

val max : t -> float

val quantile : t -> float -> float
(** Bucket-approximate; [nan] when empty, raises on q outside [0;1]. *)

val median : t -> float

val cumulative : t -> (float * int) list
(** [(upper_bound, samples <= upper_bound)] per occupied bucket, ascending —
    the OpenMetrics [_bucket{le=...}] series minus the final [+Inf] entry. *)

val bucket_count : t -> int
(** Occupied buckets (the memory footprint), including the zero bucket. *)

val pp : Format.formatter -> t -> unit
