(* Critical-path analysis: which wait dominated each request's latency.

   Folds the span tracer's typed wait reasons (via the exact-sum
   [Recorder.breakdown] decomposition) into one dominant component per
   answered request, then aggregates — overall, per shard and per
   reconfiguration epoch.  Shards are derived from the winning replica's id
   (replica ids are [shard * replicas_per_group + offset] by construction
   of [Shard]/[Reconfig]); epochs come from the ["reconfig.epoch"] series
   the reconfigurator records at every barrier, so requests held across a
   barrier are attributed to the epoch in which they were delivered. *)

(* The latency components a request's time can be dominated by, in the
   exact-sum breakdown order (the deterministic tie-break: earliest wins). *)
let components =
  [ "client-queue"; "broadcast"; "sched-start"; "lock-contention";
    "lock-policy"; "reacquire"; "condvar"; "nested-idle"; "resume-hold";
    "exec"; "reply-net" ]

let component_values (b : Recorder.breakdown) =
  [ ("client-queue", b.client_queue); ("broadcast", b.broadcast);
    ("sched-start", b.sched_start); ("lock-contention", b.lock_wait);
    ("lock-policy", b.policy_wait); ("reacquire", b.reacquire_wait);
    ("condvar", b.condvar_wait); ("nested-idle", b.nested_idle);
    ("resume-hold", b.resume_hold); ("commit-hold", b.commit_hold);
    ("exec", b.exec);
    ("reply-net", b.reply_net) ]

type item = {
  cp_uid : int;
  cp_client : int;
  cp_meth : string;
  cp_replica : int;
  cp_shard : int;
  cp_epoch : int;
  cp_dominant : string;
  cp_dominant_ms : float;
  cp_total_ms : float;
}

type slice = {
  s_count : int;
  s_ms : float; (* dominant-component ms summed over the slice's requests *)
}

type report = {
  items : item list; (* sorted by uid *)
  by_component : (string * slice) list; (* component order, non-empty only *)
  by_shard : (int * (string * slice) list) list; (* ascending shard *)
  by_epoch : (int * (string * slice) list) list; (* ascending epoch *)
}

let dominant b =
  List.fold_left
    (fun (best_k, best_v) (k, v) ->
      if v > best_v then (k, v) else (best_k, best_v))
    ("client-queue", neg_infinity)
    (component_values b)

(* Epoch transition times, oldest first, from the recorded series. *)
let epoch_edges t =
  List.filter_map
    (fun (name, at, value) ->
      if String.equal name "reconfig.epoch" then Some (at, int_of_float value)
      else None)
    (Recorder.series_samples t)

let epoch_at edges time =
  List.fold_left
    (fun acc (at, epoch) -> if at <= time then epoch else acc)
    0 edges

let group_slices items key =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun it ->
      let k = key it in
      let count, ms =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl k)
      in
      Hashtbl.replace tbl k (count + 1, ms +. it.cp_dominant_ms))
    items;
  Hashtbl.fold (fun k (c, ms) acc -> (k, { s_count = c; s_ms = ms }) :: acc)
    tbl []

let by_component items =
  let slices = group_slices items (fun it -> it.cp_dominant) in
  List.filter_map
    (fun c -> Option.map (fun s -> (c, s)) (List.assoc_opt c slices))
    components

let grouped items key =
  let keys =
    List.sort_uniq compare (List.map key items)
  in
  List.map
    (fun k -> (k, by_component (List.filter (fun it -> key it = k) items)))
    keys

let analyse ?(replicas = 3) t =
  let edges = epoch_edges t in
  let delivered =
    (* delivery time per (replica, uid), for epoch attribution *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (v : Recorder.span_view) ->
        Hashtbl.replace tbl (v.v_replica, v.v_uid) v.v_delivered_at)
      (Recorder.spans t);
    tbl
  in
  let items =
    List.map
      (fun (b : Recorder.breakdown) ->
        let k, v = dominant b in
        let delivered_at =
          Option.value ~default:0.0
            (Hashtbl.find_opt delivered (b.replica, b.uid))
        in
        { cp_uid = b.uid; cp_client = b.client; cp_meth = b.meth;
          cp_replica = b.replica; cp_shard = b.replica / Stdlib.max 1 replicas;
          cp_epoch = epoch_at edges delivered_at; cp_dominant = k;
          cp_dominant_ms = v; cp_total_ms = b.total })
      (Recorder.breakdowns t)
  in
  { items; by_component = by_component items;
    by_shard = grouped items (fun it -> it.cp_shard);
    by_epoch = grouped items (fun it -> it.cp_epoch) }

let table ?(title = "critical path: dominant latency component") r =
  let t =
    Detmt_stats.Table.create ~title
      ~columns:[ "scope"; "component"; "requests"; "dominant_ms"; "share" ]
  in
  let total_n = List.length r.items in
  let row scope (c, s) =
    Detmt_stats.Table.add_row t
      [ scope; c; string_of_int s.s_count; Printf.sprintf "%.2f" s.s_ms;
        (if total_n = 0 then "-"
         else
           Printf.sprintf "%.0f%%"
             (100.0 *. float_of_int s.s_count /. float_of_int total_n)) ]
  in
  List.iter (row "all") r.by_component;
  List.iter
    (fun (shard, slices) ->
      List.iter (row (Printf.sprintf "shard %d" shard)) slices)
    r.by_shard;
  (match r.by_epoch with
  | [ (0, _) ] -> () (* a run that never reconfigured: epoch = all *)
  | epochs ->
    List.iter
      (fun (epoch, slices) ->
        List.iter (row (Printf.sprintf "epoch %d" epoch)) slices)
      epochs);
  t

let slice_json (c, s) =
  ( c,
    Json.Obj
      [ ("requests", Json.Int s.s_count); ("dominant_ms", Json.Float s.s_ms) ]
  )

let to_json r =
  Json.Obj
    [ ("requests", Json.Int (List.length r.items));
      ("by_component", Json.Obj (List.map slice_json r.by_component));
      ( "by_shard",
        Json.Obj
          (List.map
             (fun (shard, slices) ->
               (string_of_int shard, Json.Obj (List.map slice_json slices)))
             r.by_shard) );
      ( "by_epoch",
        Json.Obj
          (List.map
             (fun (epoch, slices) ->
               (string_of_int epoch, Json.Obj (List.map slice_json slices)))
             r.by_epoch) ) ]
