(** Metrics registry: named counters, gauges and histograms.

    Names are dotted paths such as ["sched.pds.rounds"].  Metrics are
    created on first use; using a name with the wrong operation (e.g.
    [observe] on a counter) raises [Invalid_argument].  Rendering sorts by
    name, so output never depends on insertion order. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit

val set_gauge : t -> string -> float -> unit
(** Records the last value and the peak. *)

val observe : t -> string -> float -> unit
(** Adds a sample to a histogram (a log-linear bucketed {!Hdr}). *)

val counter_value : t -> string -> int
(** Current value of a counter; [0] when absent. *)

(** Read-only view of one metric, for exporters. *)
type view =
  | Counter_view of int
  | Gauge_view of { last : float; peak : float }
  | Hist_view of Hdr.t

val view : t -> string -> view option

val names : t -> string list
(** All registered names, sorted. *)

val to_table : ?title:string -> t -> Detmt_stats.Table.t

val to_json : t -> Json.t
