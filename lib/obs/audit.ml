(* Scheduler decision audit log entries.

   Every grant or deferral a scheduler makes is explained by a [rule] — the
   clause of the algorithm that fired — together with the competing
   candidates it beat (or that beat it).  Rules are typed, not strings, so
   the audit is cheap to build and stable to render. *)

type action =
  | Start_thread
  | Grant_lock
  | Grant_reacquire
  | Resume_nested
  | Defer
  | Promote
  | Handoff
  | Commit_ws
  | Abort_ws

type rule =
  (* grants *)
  | Mutex_free
  | Fifo_head
  | Sequential_turn
  | Leader_greedy
  | Follower_enforced
  | Round_decided
  | Round_second
  | Primary_continue
  | Promote_ex_primary
  | Promote_oldest
  | Last_lock_handoff
  | Predicted_no_conflict
  | Speculative
  | Slot_barrier
  (* deferrals *)
  | Mutex_held
  | Not_primary
  | Batch_wait
  | Enforced_order_wait
  | Predecessor_unpredicted
  | Queue_wait
  | Stale_read
  | Unsafe_op

type entry = {
  at : float; (* virtual ms *)
  replica : int;
  scheduler : string;
  tid : int;
  action : action;
  mutex : int option;
  rule : rule;
  candidates : int list; (* competing tids at decision time *)
}

let action_name = function
  | Start_thread -> "start"
  | Grant_lock -> "grant-lock"
  | Grant_reacquire -> "grant-reacquire"
  | Resume_nested -> "resume-nested"
  | Defer -> "defer"
  | Promote -> "promote"
  | Handoff -> "handoff"
  | Commit_ws -> "commit-ws"
  | Abort_ws -> "abort-ws"

let rule_name = function
  | Mutex_free -> "mutex-free"
  | Fifo_head -> "fifo-head"
  | Sequential_turn -> "sequential-turn"
  | Leader_greedy -> "leader-greedy"
  | Follower_enforced -> "follower-enforced"
  | Round_decided -> "round-decided"
  | Round_second -> "round-second"
  | Primary_continue -> "primary-continue"
  | Promote_ex_primary -> "promote-ex-primary"
  | Promote_oldest -> "promote-oldest"
  | Last_lock_handoff -> "last-lock-handoff"
  | Predicted_no_conflict -> "predicted-no-conflict"
  | Speculative -> "speculative"
  | Slot_barrier -> "slot-barrier"
  | Mutex_held -> "mutex-held"
  | Not_primary -> "not-primary"
  | Batch_wait -> "batch-wait"
  | Enforced_order_wait -> "enforced-order-wait"
  | Predecessor_unpredicted -> "predecessor-unpredicted"
  | Queue_wait -> "queue-wait"
  | Stale_read -> "stale-read"
  | Unsafe_op -> "unsafe-op"

let pp_entry ppf e =
  Format.fprintf ppf "%8.2f r%d %-6s t%d %-16s %-22s%s%s" e.at e.replica
    e.scheduler e.tid (action_name e.action) (rule_name e.rule)
    (match e.mutex with Some m -> Printf.sprintf " m%d" m | None -> "")
    (match e.candidates with
    | [] -> ""
    | tids ->
      " vs [" ^ String.concat ";" (List.map string_of_int tids) ^ "]")
