(* Virtual-time-windowed time series (the "Obs.Series" store).

   Every counter increment and gauge/histogram sample that flows through an
   enabled recorder is additionally folded into fixed-width windows keyed to
   the *virtual* clock — wall time never appears, so recording is
   deterministic and bit-invisible to the simulation.  Each named track
   keeps a bounded ring of the most recent windows (oldest fall off), so
   retention is O(tracks * retain) regardless of run length.

   Two track kinds:
   - [Rate] tracks (from counters): the window value is the sum of
     increments that landed in the window — a per-window rate.
   - [Sample] tracks (from gauges and histogram observations): the window
     keeps n/sum/min/max/last of the samples that landed in it.

   A window-roll hook fires whenever the head window advances; the recorder
   uses it to snapshot passive gauges (engine queue depth) exactly once per
   window without scheduling any simulation event. *)

type kind =
  | Rate
  | Sample

type agg = {
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable last : float;
}

type window = {
  w_start : float; (* virtual ms of the window's left edge *)
  w_n : int;
  w_sum : float;
  w_min : float;
  w_max : float;
  w_last : float;
}

type track = {
  t_kind : kind;
  mutable wins : (int * agg) list; (* newest first *)
  mutable len : int;
}

type t = {
  width : float; (* window width, virtual ms *)
  retain : int; (* max windows kept per track *)
  tracks : (string, track) Hashtbl.t;
  mutable cur : int; (* highest window index seen, -1 before any *)
  mutable on_roll : (at:float -> unit) option;
  mutable rolling : bool; (* re-entrancy guard for the roll hook *)
}

let create ?(width_ms = 10.0) ?(retain = 256) () =
  if width_ms <= 0.0 then invalid_arg "Timeseries.create: width_ms <= 0";
  if retain < 1 then invalid_arg "Timeseries.create: retain < 1";
  { width = width_ms; retain; tracks = Hashtbl.create 32; cur = -1;
    on_roll = None; rolling = false }

let width_ms t = t.width

let retain t = t.retain

let set_on_roll t f = t.on_roll <- f

let index_of t at = int_of_float (Float.floor (at /. t.width))

let fresh_agg () = { n = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity;
                     last = 0.0 }

let fold_into a v =
  a.n <- a.n + 1;
  a.sum <- a.sum +. v;
  if v < a.vmin then a.vmin <- v;
  if v > a.vmax then a.vmax <- v;
  a.last <- v

let truncate track retain =
  if track.len > retain then begin
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | w :: rest -> w :: take (n - 1) rest
    in
    track.wins <- take retain track.wins;
    track.len <- retain
  end

(* The agg for window [idx] of [track], allocating a new head window when
   the clock moved past the current one.  Out-of-order samples (older than
   the head) fold into their window if still retained, else are dropped. *)
let agg_for t track idx =
  match track.wins with
  | (i, a) :: _ when i = idx -> Some a
  | (i, _) :: _ when idx < i ->
    List.assoc_opt idx track.wins
  | _ ->
    let a = fresh_agg () in
    track.wins <- (idx, a) :: track.wins;
    track.len <- track.len + 1;
    truncate track t.retain;
    Some a

let find_or_add t name kind =
  match Hashtbl.find_opt t.tracks name with
  | Some tr -> tr
  | None ->
    let tr = { t_kind = kind; wins = []; len = 0 } in
    Hashtbl.add t.tracks name tr;
    tr

let roll t ~at idx =
  if idx > t.cur then begin
    t.cur <- idx;
    match t.on_roll with
    | Some f when not t.rolling ->
      t.rolling <- true;
      f ~at;
      t.rolling <- false
    | _ -> ()
  end

let record t name kind ~at ~value =
  let idx = index_of t at in
  roll t ~at idx;
  let track = find_or_add t name kind in
  match agg_for t track idx with
  | Some a -> fold_into a value
  | None -> ()

let bump t ~name ~at ~by = record t name Rate ~at ~value:by

let sample t ~name ~at ~value = record t name Sample ~at ~value

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tracks []
  |> List.sort String.compare

let kind t name =
  Option.map (fun tr -> tr.t_kind) (Hashtbl.find_opt t.tracks name)

let windows t name =
  match Hashtbl.find_opt t.tracks name with
  | None -> []
  | Some tr ->
    List.rev_map
      (fun (i, a) ->
        { w_start = float_of_int i *. t.width; w_n = a.n; w_sum = a.sum;
          w_min = a.vmin; w_max = a.vmax; w_last = a.last })
      tr.wins

(* The headline value of one window: a Rate window is its sum (events per
   window), a Sample window its last value. *)
let window_value kind w = match kind with Rate -> w.w_sum | Sample -> w.w_last

let peak t name =
  match Hashtbl.find_opt t.tracks name with
  | None -> nan
  | Some tr ->
    List.fold_left
      (fun acc (_, a) ->
        let v = match tr.t_kind with Rate -> a.sum | Sample -> a.vmax in
        Stdlib.max acc v)
      neg_infinity tr.wins

let track_count t = Hashtbl.length t.tracks

let point_count t =
  Hashtbl.fold (fun _ tr acc -> acc + tr.len) t.tracks 0

let to_json t =
  let track name =
    match Hashtbl.find_opt t.tracks name with
    | None -> Json.Null
    | Some tr ->
      Json.Obj
        [ ("kind", Json.String (match tr.t_kind with
            | Rate -> "rate"
            | Sample -> "sample"));
          ( "windows",
            Json.List
              (List.map
                 (fun w ->
                   Json.Obj
                     [ ("start_ms", Json.Float w.w_start);
                       ("n", Json.Int w.w_n); ("sum", Json.Float w.w_sum);
                       ("min", Json.Float w.w_min);
                       ("max", Json.Float w.w_max);
                       ("last", Json.Float w.w_last) ])
                 (windows t name)) ) ]
  in
  Json.Obj
    ([ ("width_ms", Json.Float t.width); ("retain", Json.Int t.retain) ]
    @ List.map (fun name -> (name, track name)) (names t))
