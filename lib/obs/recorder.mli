(** The flight recorder: metrics registry + span tracer + decision audit.

    One recorder is threaded through the sim engine, the schedulers (via
    [Sched_iface.actions]), Totem and the replication layer.  It is strictly
    read-only: it never schedules simulation events, and all recording
    functions are no-ops on a disabled recorder.  Hot call sites must guard
    with {!enabled} before constructing arguments, so that recording off
    costs neither time nor allocation — the determinism contract (reply
    tables and trace fingerprints bit-identical with recording on or off)
    is enforced by [test/test_obs.ml]. *)

type t

val create : ?width_ms:float -> ?retain:int -> ?profile:Profile.t -> unit -> t
(** [width_ms]/[retain] size the {!Timeseries} windows (defaults 10 ms /
    256 windows per track); [profile] attaches a hot-path profiler. *)

val disabled : t
(** The no-op recorder; every layer defaults to it. *)

val profile_only : Profile.t -> t
(** A recorder whose metric/span/audit sites are no-ops ({!enabled} is
    [false]) but whose profiler taps are live — the low-overhead mode
    behind [detmt-cli profile] and the CI overhead bound. *)

val enabled : t -> bool

val profiler : t -> Profile.t option

val profiling : t -> bool

(** {1 Metrics} *)

val metrics : t -> Metrics.t

val timeseries : t -> Timeseries.t
(** The virtual-time-windowed series every metric update folds into. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the virtual-clock source used to window metrics (installed by
    the replication layer at system construction; read-only). *)

val set_depth_probe : t -> (unit -> int) option -> unit
(** Install a passive engine-queue-depth probe, sampled once per window
    roll into the ["engine.pending"] track — no events are scheduled. *)

val incr : ?by:int -> t -> string -> unit

val observe : t -> string -> float -> unit

val set_gauge : t -> string -> float -> unit

val series : t -> name:string -> at:float -> value:float -> unit
(** Time-stamped counter sample, exported as a Chrome counter track. *)

(** {1 Request spans}

    Spans are keyed by [(replica, uid)]; the uid is the request's total-order
    position and doubles as its thread id. *)

type wait_kind =
  | Lock_contention (** mutex actually held by another thread *)
  | Lock_policy (** mutex free, but the scheduler's policy defers the grant *)
  | Reacquire (** notified, waiting to reacquire the monitor *)
  | Condvar (** parked on a condition variable *)
  | Nested (** awaiting a nested invocation's reply *)
  | Resume_hold (** reply arrived, waiting to be resumed *)
  | Commit_hold
      (** speculation finished, holding its workspace until the slot-order
          commit barrier *)

val wait_kind_name : wait_kind -> string

val request_broadcast : t -> client:int -> client_req:int -> at:float -> unit
(** First broadcast of a client request into the total order (retries keep
    the original timestamp). *)

val request_delivered :
  t ->
  replica:int ->
  uid:int ->
  meth:string ->
  client:int ->
  client_req:int ->
  sent_at:float ->
  at:float ->
  unit

val request_started : t -> replica:int -> uid:int -> at:float -> unit

val request_ended : t -> replica:int -> uid:int -> at:float -> unit

val wait_begin :
  t -> replica:int -> uid:int -> kind:wait_kind -> at:float -> unit
(** Opens a wait interval; an interval already open is closed first. *)

val wait_end : t -> replica:int -> uid:int -> at:float -> unit
(** Closes the open wait interval, if any. *)

val reply_observed :
  t ->
  replica:int ->
  uid:int ->
  client:int ->
  client_req:int ->
  response_ms:float ->
  unit
(** The reply that actually reached the client first (one per request). *)

(** {1 Scheduler decision audit} *)

val decision :
  t ->
  at:float ->
  replica:int ->
  scheduler:string ->
  tid:int ->
  action:Audit.action ->
  ?mutex:int ->
  rule:Audit.rule ->
  ?candidates:int list ->
  unit ->
  unit

val audit_entries : t -> Audit.entry list
(** In recording order. *)

val audit_count : t -> int

val audit_window : t -> around:float -> margin:float -> Audit.entry list
(** Entries with [|at - around| <= margin], in recording order. *)

(** {1 Divergence checkpoints} *)

val checkpoint : t -> replica:int -> seq:int -> at:float -> unit

val checkpoint_time : t -> replica:int -> seq:int -> float option

(** {1 Per-request latency breakdowns} *)

type breakdown = {
  uid : int;
  client : int;
  client_req : int;
  meth : string;
  replica : int; (** the replica whose reply won *)
  client_queue : float;
  broadcast : float;
  sched_start : float;
  lock_wait : float;
  policy_wait : float;
  reacquire_wait : float;
  condvar_wait : float;
  nested_idle : float;
  resume_hold : float;
  commit_hold : float;
  exec : float;
  reply_net : float;
  total : float; (** client-measured response time; the other columns sum
                     to it exactly *)
}

val breakdowns : t -> breakdown list
(** One row per answered request, sorted by uid. *)

val breakdown_table : ?title:string -> t -> Detmt_stats.Table.t

(** {1 Export accessors (used by the Chrome exporter)} *)

type span_view = {
  v_replica : int;
  v_uid : int;
  v_meth : string;
  v_client : int;
  v_delivered_at : float;
  v_started_at : float option;
  v_ended_at : float option;
  v_waits : (wait_kind * float * float) list;
}

val spans : t -> span_view list
(** Sorted by (replica, uid). *)

val series_samples : t -> (string * float * float) list
(** In recording order. *)
