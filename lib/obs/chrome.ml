(* Chrome trace-event exporter (loadable in chrome://tracing and Perfetto).

   Mapping:
   - process  = replica  (pid = replica id, named via "M" metadata events)
   - thread   = request  (tid = request uid, named after the method)
   - "X" complete events: the request span from delivery to completion,
     with nested "X" events for each wait interval and the pre-start
     scheduler delay
   - "i" instant events: scheduler audit entries
   - "C" counter events: recorder time series (queue depths, occupancy)

   Timestamps are microseconds; the simulation's virtual milliseconds are
   multiplied by 1000.  Events are sorted by (ts, pid, tid, name) so the
   output is deterministic. *)

let us ms = int_of_float (Float.round (ms *. 1000.0))

let base_fields ~name ~cat ~ph ~ts ~pid ~tid =
  [ ("name", Json.String name);
    ("cat", Json.String cat);
    ("ph", Json.String ph);
    ("ts", Json.Int ts);
    ("pid", Json.Int pid);
    ("tid", Json.Int tid) ]

let complete ~name ~cat ~ts ~dur ~pid ~tid ~args =
  Json.Obj
    (base_fields ~name ~cat ~ph:"X" ~ts ~pid ~tid
    @ [ ("dur", Json.Int dur) ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let metadata ~name ~pid ~tid ~value =
  Json.Obj
    [ ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]) ]

let span_events (v : Recorder.span_view) =
  let pid = v.v_replica and tid = v.v_uid in
  let name_meta =
    metadata ~name:"thread_name" ~pid ~tid
      ~value:(Printf.sprintf "req %d %s" v.v_uid v.v_meth)
  in
  match v.v_ended_at with
  | None -> [ name_meta ] (* request still in flight at end of run *)
  | Some ended ->
    let top =
      complete ~name:v.v_meth ~cat:"request" ~ts:(us v.v_delivered_at)
        ~dur:(us (ended -. v.v_delivered_at)) ~pid ~tid
        ~args:
          [ ("uid", Json.Int v.v_uid); ("client", Json.Int v.v_client) ]
    in
    let sched_start =
      match v.v_started_at with
      | Some started when started > v.v_delivered_at ->
        [ complete ~name:"sched-start" ~cat:"wait" ~ts:(us v.v_delivered_at)
            ~dur:(us (started -. v.v_delivered_at)) ~pid ~tid ~args:[] ]
      | _ -> []
    in
    let waits =
      List.map
        (fun (kind, from, upto) ->
          complete
            ~name:(Recorder.wait_kind_name kind)
            ~cat:"wait" ~ts:(us from) ~dur:(us (upto -. from)) ~pid ~tid
            ~args:[])
        v.v_waits
    in
    (name_meta :: top :: sched_start) @ waits

let audit_event (e : Audit.entry) =
  let args =
    [ ("scheduler", Json.String e.scheduler);
      ("rule", Json.String (Audit.rule_name e.rule)) ]
    @ (match e.mutex with
      | Some m -> [ ("mutex", Json.Int m) ]
      | None -> [])
    @
    match e.candidates with
    | [] -> []
    | tids -> [ ("candidates", Json.List (List.map (fun t -> Json.Int t) tids)) ]
  in
  Json.Obj
    (base_fields
       ~name:(Audit.action_name e.action)
       ~cat:"audit" ~ph:"i" ~ts:(us e.at) ~pid:e.replica ~tid:e.tid
    @ [ ("s", Json.String "t"); ("args", Json.Obj args) ])

let counter_event (name, at, value) =
  Json.Obj
    [ ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Int (us at));
      ("pid", Json.Int 0);
      ("args", Json.Obj [ ("value", Json.Float value) ]) ]

let event_key ev =
  let get k d =
    match Json.member k ev with Some (Json.Int i) -> i | _ -> d
  in
  let name =
    match Json.member "name" ev with Some (Json.String s) -> s | _ -> ""
  in
  let ph =
    match Json.member "ph" ev with Some (Json.String s) -> s | _ -> ""
  in
  (* metadata first so viewers name processes before events reference them *)
  let rank = if ph = "M" then 0 else 1 in
  (rank, get "ts" 0, get "pid" 0, get "tid" 0, name)

let export recorder =
  let spans = Recorder.spans recorder in
  let process_meta =
    List.sort_uniq compare (List.map (fun v -> v.Recorder.v_replica) spans)
    |> List.map (fun pid ->
           metadata ~name:"process_name" ~pid ~tid:0
             ~value:(Printf.sprintf "replica %d" pid))
  in
  let events =
    process_meta
    @ List.concat_map span_events spans
    @ List.map audit_event (Recorder.audit_entries recorder)
    @ List.map counter_event (Recorder.series_samples recorder)
  in
  let events =
    List.stable_sort (fun a b -> compare (event_key a) (event_key b)) events
  in
  Json.Obj
    [ ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms") ]

let to_string recorder = Json.to_string (export recorder)
