(* Metrics registry: named counters, gauges and histograms.

   Metric names are dotted paths ("sched.pds.rounds", "totem.dedup_hits").
   The registry is a plain hashtable; rendering sorts by name so the output
   is independent of insertion order.  Histograms are log-linear bucketed
   [Hdr]s, so a high-volume path (every response time at 16k clients) costs
   O(buckets) memory instead of one float per request; count/sum/min/max
   stay exact and only quantiles are bucket-approximate. *)

module Table = Detmt_stats.Table

type metric =
  | Counter of int ref
  | Gauge of { mutable last : float; mutable peak : float; mutable set : bool }
  | Hist of Hdr.t

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 64 }

let find_or_add t name make =
  match Hashtbl.find_opt t.metrics name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add t.metrics name m;
    m

let incr ?(by = 1) t name =
  match find_or_add t name (fun () -> Counter (ref 0)) with
  | Counter r -> r := !r + by
  | Gauge _ | Hist _ -> invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")

let set_gauge t name v =
  match
    find_or_add t name (fun () -> Gauge { last = 0.; peak = 0.; set = false })
  with
  | Gauge g ->
    g.last <- v;
    if (not g.set) || v > g.peak then g.peak <- v;
    g.set <- true
  | Counter _ | Hist _ ->
    invalid_arg ("Metrics.set_gauge: " ^ name ^ " is not a gauge")

let observe t name v =
  match find_or_add t name (fun () -> Hist (Hdr.create ())) with
  | Hist s -> Hdr.add s v
  | Counter _ | Gauge _ ->
    invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")

let counter_value t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter r) -> !r
  | _ -> 0

(* Read-only view of one metric, for exporters (OpenMetrics). *)
type view =
  | Counter_view of int
  | Gauge_view of { last : float; peak : float }
  | Hist_view of Hdr.t

let view t name =
  match Hashtbl.find_opt t.metrics name with
  | None -> None
  | Some (Counter r) -> Some (Counter_view !r)
  | Some (Gauge g) -> Some (Gauge_view { last = g.last; peak = g.peak })
  | Some (Hist h) -> Some (Hist_view h)

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.metrics []
  |> List.sort String.compare

let fmt_num v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e12 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let to_table ?(title = "metrics") t =
  let table =
    Table.create ~title
      ~columns:[ "metric"; "kind"; "n"; "value"; "mean"; "p95"; "max" ]
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.metrics name with
      | None -> ()
      | Some (Counter r) ->
        Table.add_row table
          [ name; "counter"; "1"; string_of_int !r; "-"; "-"; "-" ]
      | Some (Gauge g) ->
        Table.add_row table
          [ name; "gauge"; "1"; fmt_num g.last; "-"; "-"; fmt_num g.peak ]
      | Some (Hist s) ->
        Table.add_row table
          [ name;
            "hist";
            string_of_int (Hdr.count s);
            fmt_num (Hdr.total s);
            fmt_num (Hdr.mean s);
            fmt_num (Hdr.quantile s 0.95);
            fmt_num (Hdr.max s) ])
    (names t);
  table

let to_json t =
  let field name =
    match Hashtbl.find_opt t.metrics name with
    | None -> Json.Null
    | Some (Counter r) -> Json.Int !r
    | Some (Gauge g) ->
      Json.Obj [ ("last", Json.Float g.last); ("peak", Json.Float g.peak) ]
    | Some (Hist s) ->
      let f v = if Float.is_nan v then Json.Null else Json.Float v in
      Json.Obj
        [ ("count", Json.Int (Hdr.count s));
          ("total", f (Hdr.total s));
          ("mean", f (Hdr.mean s));
          ("p95", f (Hdr.quantile s 0.95));
          ("max", f (Hdr.max s)) ]
  in
  Json.Obj (List.map (fun name -> (name, field name)) (names t))
