(* OpenMetrics text exposition of the metrics registry.

   One deterministic snapshot in the OpenMetrics text format: families are
   sorted by name, dotted metric names are sanitised to [a-zA-Z0-9_] with a
   "detmt_" prefix, counters gain the "_total" suffix, gauges expose their
   last value plus a companion "<name>_peak" family, and histograms emit
   the cumulative "_bucket{le=...}" series from the Hdr's occupied buckets
   plus "_sum"/"_count".  The exposition ends with "# EOF" as the spec
   requires.

   [parse] reads an exposition back into a [Json] document (family ->
   {type, samples}), which is what the golden-file round-trip test checks
   against: export -> parse -> Json print -> Json parse must be lossless. *)

let sanitize name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "detmt_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

(* Deterministic number rendering: integers without a fraction, everything
   else with enough digits to round-trip the interesting range. *)
let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let export m =
  let buf = Buffer.create 4096 in
  let family name ty = Buffer.add_string buf
      (Printf.sprintf "# TYPE %s %s\n" name ty)
  in
  let sample ?le name v =
    (match le with
    | None -> Buffer.add_string buf (Printf.sprintf "%s %s\n" name v)
    | Some bound ->
      Buffer.add_string buf
        (Printf.sprintf "%s{le=\"%s\"} %s\n" name bound v))
  in
  List.iter
    (fun name ->
      let n = sanitize name in
      match Metrics.view m name with
      | None -> ()
      | Some (Metrics.Counter_view c) ->
        family n "counter";
        sample (n ^ "_total") (string_of_int c)
      | Some (Metrics.Gauge_view g) ->
        family n "gauge";
        sample n (num g.last);
        family (n ^ "_peak") "gauge";
        sample (n ^ "_peak") (num g.peak)
      | Some (Metrics.Hist_view h) ->
        family n "histogram";
        List.iter
          (fun (bound, cum) ->
            sample ~le:(num bound) (n ^ "_bucket") (string_of_int cum))
          (Hdr.cumulative h);
        sample ~le:"+Inf" (n ^ "_bucket") (string_of_int (Hdr.count h));
        sample (n ^ "_sum") (num (Hdr.total h));
        sample (n ^ "_count") (string_of_int (Hdr.count h)))
    (Metrics.names m);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------- parser ------------------------------ *)

exception Bad of string

let parse_labels s =
  (* s is the text between '{' and '}': key="value",... *)
  let n = String.length s in
  let rec pairs i acc =
    if i >= n then List.rev acc
    else begin
      let eq =
        match String.index_from_opt s i '=' with
        | Some e -> e
        | None -> raise (Bad ("malformed label set: " ^ s))
      in
      let key = String.sub s i (eq - i) in
      if eq + 1 >= n || s.[eq + 1] <> '"' then
        raise (Bad ("unquoted label value: " ^ s));
      let buf = Buffer.create 16 in
      let rec scan j =
        if j >= n then raise (Bad ("unterminated label value: " ^ s))
        else
          match s.[j] with
          | '"' -> j + 1
          | '\\' when j + 1 < n ->
            Buffer.add_char buf s.[j + 1];
            scan (j + 2)
          | c ->
            Buffer.add_char buf c;
            scan (j + 1)
      in
      let after = scan (eq + 2) in
      let acc = (key, Buffer.contents buf) :: acc in
      if after < n && s.[after] = ',' then pairs (after + 1) acc
      else if after = n then List.rev acc
      else raise (Bad ("malformed label separator: " ^ s))
    end
  in
  pairs 0 []

let parse text =
  let lines = String.split_on_char '\n' text in
  let families = ref [] in (* (name, type, samples rev) newest first *)
  let saw_eof = ref false in
  let add_sample name labels value =
    match !families with
    | (fname, ty, samples) :: rest
      when String.length name >= String.length fname
           && String.sub name 0 (String.length fname) = fname ->
      let s =
        Json.Obj
          [ ("name", Json.String name);
          ( "labels",
            Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels) );
            ("value", Json.Float value) ]
      in
      families := (fname, ty, s :: samples) :: rest
    | _ -> raise (Bad ("sample outside its family: " ^ name))
  in
  (try
     List.iter
       (fun line ->
         if !saw_eof && line <> "" then raise (Bad "content after # EOF")
         else if line = "" then ()
         else if line = "# EOF" then saw_eof := true
         else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
           match String.split_on_char ' ' line with
           | [ _hash; _type; name; ty ] ->
             families := (name, ty, []) :: !families
           | _ -> raise (Bad ("malformed TYPE line: " ^ line))
         end
         else if line.[0] = '#' then ()
         else begin
           match String.rindex_opt line ' ' with
           | None -> raise (Bad ("malformed sample line: " ^ line))
           | Some sp ->
             let name_part = String.sub line 0 sp in
             let value_part =
               String.sub line (sp + 1) (String.length line - sp - 1)
             in
             let value =
               match float_of_string_opt value_part with
               | Some v -> v
               | None -> raise (Bad ("bad sample value: " ^ value_part))
             in
             let name, labels =
               match String.index_opt name_part '{' with
               | None -> (name_part, [])
               | Some b ->
                 if name_part.[String.length name_part - 1] <> '}' then
                   raise (Bad ("malformed labels: " ^ name_part));
                 ( String.sub name_part 0 b,
                   parse_labels
                     (String.sub name_part (b + 1)
                        (String.length name_part - b - 2)) )
             in
             add_sample name labels value
         end)
       lines;
     if not !saw_eof then raise (Bad "missing # EOF terminator");
     Ok
       (Json.Obj
          (List.rev_map
             (fun (name, ty, samples) ->
               ( name,
                 Json.Obj
                   [ ("type", Json.String ty);
                     ("samples", Json.List (List.rev samples)) ] ))
             !families))
   with Bad msg -> Error msg)
