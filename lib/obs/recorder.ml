(* The flight recorder: one mutable sink threaded through every layer.

   The recorder is strictly read-only with respect to the simulation — it
   never schedules events, never perturbs the virtual clock, and callers
   guard all calls behind [enabled] so a disabled recorder costs neither
   time nor allocation.  With recording on or off, reply tables and trace
   fingerprints are bit-identical (enforced by test_obs).

   Spans are keyed by [(replica, uid)]: the request uid is its position in
   the total order and doubles as the executing thread id, so the same key
   identifies the same logical work on every replica. *)

type wait_kind =
  | Lock_contention (* mutex actually held by another thread *)
  | Lock_policy (* mutex free, but the scheduler's policy defers the grant *)
  | Reacquire (* notified, waiting to reacquire the monitor *)
  | Condvar (* parked on a condition variable *)
  | Nested (* awaiting a nested invocation's reply *)
  | Resume_hold (* reply arrived, waiting for the scheduler to resume us *)
  | Commit_hold (* speculation finished, waiting for its slot-order commit *)

let wait_kind_name = function
  | Lock_contention -> "lock-contention"
  | Lock_policy -> "lock-policy"
  | Reacquire -> "reacquire"
  | Condvar -> "condvar"
  | Nested -> "nested-idle"
  | Resume_hold -> "resume-hold"
  | Commit_hold -> "commit-hold"

type span = {
  meth : string;
  client : int;
  client_req : int;
  sent_at : float;
  delivered_at : float;
  mutable started_at : float option;
  mutable ended_at : float option;
  mutable cur : (wait_kind * float) option;
  mutable waits : (wait_kind * float * float) list; (* newest first *)
}

type reply = {
  r_replica : int; (* replica whose reply reached the client first *)
  r_uid : int;
  r_client : int;
  r_client_req : int;
  r_response_ms : float;
}

type t = {
  on : bool;
  metrics : Metrics.t;
  timeseries : Timeseries.t; (* virtual-time windows over every metric *)
  mutable clock : (unit -> float) option; (* virtual now, for windowing *)
  mutable depth_probe : (unit -> int) option; (* engine queue depth *)
  profile : Profile.t option; (* hot-path profiler, independent of [on] *)
  spans : (int * int, span) Hashtbl.t; (* (replica, uid) *)
  bcast_times : (int * int, float) Hashtbl.t; (* (client, client_req) *)
  mutable audit : Audit.entry list; (* newest first *)
  mutable audit_count : int;
  mutable replies : reply list; (* newest first *)
  checkpoints : (int * int, float) Hashtbl.t; (* (replica, seq) -> time *)
  mutable series : (string * float * float) list; (* name, time, value *)
}

let create ?width_ms ?retain ?profile () =
  { on = true; metrics = Metrics.create ();
    timeseries = Timeseries.create ?width_ms ?retain (); clock = None;
    depth_probe = None; profile; spans = Hashtbl.create 256;
    bcast_times = Hashtbl.create 256; audit = []; audit_count = 0;
    replies = []; checkpoints = Hashtbl.create 64; series = [] }

let make_off profile =
  { on = false; metrics = Metrics.create ();
    timeseries = Timeseries.create ~retain:1 (); clock = None;
    depth_probe = None; profile; spans = Hashtbl.create 1;
    bcast_times = Hashtbl.create 1; audit = []; audit_count = 0; replies = [];
    checkpoints = Hashtbl.create 1; series = [] }

let disabled = make_off None

(* Profiling without recording: metric/span/audit sites stay no-ops (so the
   run costs almost nothing beyond the timers themselves), while the
   profiler taps — engine probes, grant/flush timing, decision wrappers —
   see the attached profiler.  This is what `detmt-cli profile` runs, and
   what the < 5% overhead bound in CI is measured against. *)
let profile_only p = make_off (Some p)

let enabled t = t.on

let metrics t = t.metrics

let timeseries t = t.timeseries

let profiler t = t.profile

let profiling t = Option.is_some t.profile

(* The virtual-clock source used to window metrics; installed by the
   replication layer at system construction.  Purely observational — the
   recorder only ever *reads* the clock. *)
let set_clock t f = if t.on then t.clock <- Some f

let rewire_roll t =
  match t.depth_probe with
  | None -> Timeseries.set_on_roll t.timeseries None
  | Some probe ->
    Timeseries.set_on_roll t.timeseries
      (Some
         (fun ~at ->
           Timeseries.sample t.timeseries ~name:"engine.pending" ~at
             ~value:(float_of_int (probe ()))))

let set_depth_probe t f =
  if t.on then begin
    t.depth_probe <- f;
    rewire_roll t
  end

(* ----------------------------- metrics ----------------------------- *)

(* Each metric update is additionally folded into the fixed-width
   virtual-time window containing "now" (when a clock is installed), so
   every counter and gauge doubles as a bounded-memory time series. *)
let window_bump t name by =
  match t.clock with
  | None -> ()
  | Some now ->
    Timeseries.bump t.timeseries ~name ~at:(now ()) ~by:(float_of_int by)

let window_sample t name v =
  match t.clock with
  | None -> ()
  | Some now -> Timeseries.sample t.timeseries ~name ~at:(now ()) ~value:v

let incr ?(by = 1) t name =
  if t.on then begin
    Metrics.incr ~by t.metrics name;
    window_bump t name by
  end

let observe t name v =
  if t.on then begin
    Metrics.observe t.metrics name v;
    window_sample t name v
  end

let set_gauge t name v =
  if t.on then begin
    Metrics.set_gauge t.metrics name v;
    window_sample t name v
  end

let series t ~name ~at ~value =
  if t.on then begin
    t.series <- (name, at, value) :: t.series;
    Timeseries.sample t.timeseries ~name ~at ~value
  end

(* ------------------------------ spans ------------------------------ *)

let request_broadcast t ~client ~client_req ~at =
  if t.on && not (Hashtbl.mem t.bcast_times (client, client_req)) then
    (* first broadcast wins; retries re-send the same request *)
    Hashtbl.add t.bcast_times (client, client_req) at

let request_delivered t ~replica ~uid ~meth ~client ~client_req ~sent_at ~at =
  if t.on && not (Hashtbl.mem t.spans (replica, uid)) then
    Hashtbl.add t.spans (replica, uid)
      { meth; client; client_req; sent_at; delivered_at = at;
        started_at = None; ended_at = None; cur = None; waits = [] }

let span t ~replica ~uid = Hashtbl.find_opt t.spans (replica, uid)

let request_started t ~replica ~uid ~at =
  if t.on then
    Option.iter (fun s -> s.started_at <- Some at) (span t ~replica ~uid)

let close_wait s ~at =
  match s.cur with
  | None -> ()
  | Some (kind, from) ->
    s.cur <- None;
    if at > from then s.waits <- (kind, from, at) :: s.waits

let request_ended t ~replica ~uid ~at =
  if t.on then
    Option.iter
      (fun s ->
        close_wait s ~at;
        s.ended_at <- Some at)
      (span t ~replica ~uid)

let wait_begin t ~replica ~uid ~kind ~at =
  if t.on then
    Option.iter
      (fun s ->
        close_wait s ~at;
        s.cur <- Some (kind, at))
      (span t ~replica ~uid)

let wait_end t ~replica ~uid ~at =
  if t.on then Option.iter (close_wait ~at) (span t ~replica ~uid)

let reply_observed t ~replica ~uid ~client ~client_req ~response_ms =
  if t.on then
    t.replies <-
      { r_replica = replica; r_uid = uid; r_client = client;
        r_client_req = client_req; r_response_ms = response_ms }
      :: t.replies

(* ------------------------------ audit ------------------------------ *)

let decision t ~at ~replica ~scheduler ~tid ~action ?mutex ~rule
    ?(candidates = []) () =
  if t.on then begin
    t.audit <-
      { Audit.at; replica; scheduler; tid; action; mutex; rule; candidates }
      :: t.audit;
    t.audit_count <- t.audit_count + 1
  end

let audit_entries t = List.rev t.audit

let audit_count t = t.audit_count

let audit_window t ~around ~margin =
  List.rev
    (List.filter
       (fun (e : Audit.entry) ->
         e.at >= around -. margin && e.at <= around +. margin)
       t.audit)

(* ---------------------------- checkpoints --------------------------- *)

let checkpoint t ~replica ~seq ~at =
  if t.on && not (Hashtbl.mem t.checkpoints (replica, seq)) then
    Hashtbl.add t.checkpoints (replica, seq) at

let checkpoint_time t ~replica ~seq =
  Hashtbl.find_opt t.checkpoints (replica, seq)

(* ---------------------------- breakdowns ---------------------------- *)

(* Decomposition of one answered request's response time, all in virtual
   ms.  [exec] and [reply_net] are derived as remainders, so the columns
   sum to [total] exactly:

     total = client_queue + broadcast + sched_start
           + (sum of the wait columns) + exec + reply_net

   where [total] is the client-measured response time of the replica whose
   reply arrived first. *)
type breakdown = {
  uid : int;
  client : int;
  client_req : int;
  meth : string;
  replica : int;
  client_queue : float; (* client send -> broadcast into the total order *)
  broadcast : float; (* broadcast -> delivery at the winning replica *)
  sched_start : float; (* delivery -> thread start *)
  lock_wait : float; (* blocked on a held mutex *)
  policy_wait : float; (* mutex free but grant deferred by policy *)
  reacquire_wait : float; (* notified, waiting to retake the monitor *)
  condvar_wait : float; (* parked on a condition variable *)
  nested_idle : float; (* awaiting a nested invocation reply *)
  resume_hold : float; (* reply arrived, resume deferred by policy *)
  commit_hold : float; (* speculation finished, waiting for its commit slot *)
  exec : float; (* remainder of the span: CPU + fixed overheads *)
  reply_net : float; (* reply propagation back to the client *)
  total : float;
}

let breakdown_of_reply t (r : reply) =
  match span t ~replica:r.r_replica ~uid:r.r_uid with
  | None -> None
  | Some s -> (
    match (s.started_at, s.ended_at) with
    | Some started, Some ended ->
      let broadcast_at =
        (* A request injected without a client (dummies never reply, so
           this is always found in practice). *)
        Option.value
          ~default:s.sent_at
          (Hashtbl.find_opt t.bcast_times (s.client, s.client_req))
      in
      let waited kind =
        List.fold_left
          (fun acc (k, from, upto) ->
            if k = kind then acc +. (upto -. from) else acc)
          0.0 s.waits
      in
      let lock_wait = waited Lock_contention in
      let policy_wait = waited Lock_policy in
      let reacquire_wait = waited Reacquire in
      let condvar_wait = waited Condvar in
      let nested_idle = waited Nested in
      let resume_hold = waited Resume_hold in
      let commit_hold = waited Commit_hold in
      let all_waits =
        lock_wait +. policy_wait +. reacquire_wait +. condvar_wait
        +. nested_idle +. resume_hold +. commit_hold
      in
      let client_queue = broadcast_at -. s.sent_at in
      let broadcast = s.delivered_at -. broadcast_at in
      let sched_start = started -. s.delivered_at in
      let exec = ended -. started -. all_waits in
      let total = r.r_response_ms in
      let reply_net = total -. (ended -. s.sent_at) in
      Some
        { uid = r.r_uid; client = s.client; client_req = s.client_req;
          meth = s.meth; replica = r.r_replica; client_queue; broadcast;
          sched_start; lock_wait; policy_wait; reacquire_wait; condvar_wait;
          nested_idle; resume_hold; commit_hold; exec; reply_net; total }
    | _ -> None)

let breakdowns t =
  List.rev t.replies
  |> List.filter_map (breakdown_of_reply t)
  |> List.sort (fun a b -> compare a.uid b.uid)

let breakdown_columns =
  [ "req"; "method"; "client"; "replica"; "client_q"; "bcast"; "sched_start";
    "lock"; "policy"; "reacq"; "condvar"; "nested"; "resume"; "commit";
    "exec"; "reply_net"; "total" ]

let breakdown_table ?(title = "per-request latency breakdown (virtual ms)") t =
  let table = Detmt_stats.Table.create ~title ~columns:breakdown_columns in
  let f = Printf.sprintf "%.2f" in
  List.iter
    (fun b ->
      Detmt_stats.Table.add_row table
        [ string_of_int b.uid; b.meth; string_of_int b.client;
          string_of_int b.replica; f b.client_queue; f b.broadcast;
          f b.sched_start; f b.lock_wait; f b.policy_wait; f b.reacquire_wait;
          f b.condvar_wait; f b.nested_idle; f b.resume_hold; f b.commit_hold;
          f b.exec; f b.reply_net; f b.total ])
    (breakdowns t);
  table

(* ------------------------- export accessors ------------------------- *)

type span_view = {
  v_replica : int;
  v_uid : int;
  v_meth : string;
  v_client : int;
  v_delivered_at : float;
  v_started_at : float option;
  v_ended_at : float option;
  v_waits : (wait_kind * float * float) list; (* oldest first *)
}

let spans t =
  Hashtbl.fold
    (fun (replica, uid) (s : span) acc ->
      { v_replica = replica; v_uid = uid; v_meth = s.meth;
        v_client = s.client; v_delivered_at = s.delivered_at;
        v_started_at = s.started_at; v_ended_at = s.ended_at;
        v_waits = List.rev s.waits }
      :: acc)
    t.spans []
  |> List.sort (fun a b ->
         compare (a.v_replica, a.v_uid) (b.v_replica, b.v_uid))

let series_samples t = List.rev t.series
