(* Hot-path profiler: wall-clock phase timers, per-decision-module cost
   counters and allocation accounting.

   The profiler measures where *real* time goes while the simulation runs —
   pop (priority-queue selection), dispatch (event callback execution),
   grant (a scheduler decision being performed against the replica) and
   flush (Totem batch transmission).  It reads [Unix.gettimeofday] and
   [Gc.quick_stat] only; it never touches the virtual clock, so runs with
   the profiler attached stay bit-identical to runs without (enforced by
   test_obs).  Phases nest (a grant happens inside a dispatch, and a grant
   can cascade into further grants); each phase times its outermost
   activation only, so a phase's seconds never double-count its own
   re-entries — but dispatch deliberately *includes* the grant and flush
   time spent inside event callbacks.

   Decision-module taps count every scheduler callback and time the
   outermost one, keyed by the module's registry name, giving a per-module
   decision-cost profile across a heterogeneous (hot-swapped) run. *)

type phase =
  | Pop
  | Dispatch
  | Grant
  | Flush

let phase_name = function
  | Pop -> "pop"
  | Dispatch -> "dispatch"
  | Grant -> "grant"
  | Flush -> "flush"

let phase_index = function Pop -> 0 | Dispatch -> 1 | Grant -> 2 | Flush -> 3

let phases = [ Pop; Dispatch; Grant; Flush ]

(* Timestamps are the profiler's whole cost: two [Unix.gettimeofday] per
   timed activation, across hundreds of thousands of pops/dispatches/
   decisions per run, is a ~25% slowdown.  So every call is *counted*
   exactly, but only one outermost activation in [1 lsl sample_shift] is
   *timed*; reported seconds scale the measured sample back up by the
   activation count.  Phase costs are homogeneous enough (the same code
   path over and over) that the estimate converges fast, and the stride is
   deterministic, so profiled runs stay reproducible. *)
let sample_shift = 10

let sample_mask = (1 lsl sample_shift) - 1

type cell = {
  mutable calls : int; (* every call, nested ones included *)
  mutable outer : int; (* outermost activations *)
  mutable sampled : int; (* outermost activations actually timed *)
  mutable seconds : float; (* measured over [sampled] activations *)
  mutable t0 : float;
  mutable depth : int;
  mutable timing : bool; (* this outermost activation is being timed *)
}

let fresh_cell () =
  { calls = 0; outer = 0; sampled = 0; seconds = 0.0; t0 = 0.0; depth = 0;
    timing = false }

type t = {
  cells : cell array; (* indexed by phase_index *)
  decisions : (string, cell) Hashtbl.t;
  mutable gc0 : Gc.stat;
  mutable minor0 : float;
  mutable wall0 : float;
}

(* [Gc.quick_stat] omits the words sitting in the current minor heap (it
   reads the counters, not the allocation pointer), so a short run that
   never triggers a minor collection would report zero; [Gc.minor_words]
   reads the pointer and is exact. *)
let create () =
  { cells = Array.init 4 (fun _ -> fresh_cell ());
    decisions = Hashtbl.create 8; gc0 = Gc.quick_stat ();
    minor0 = Gc.minor_words (); wall0 = Unix.gettimeofday () }

let reset t =
  Array.iter
    (fun c ->
      c.calls <- 0;
      c.outer <- 0;
      c.sampled <- 0;
      c.seconds <- 0.0;
      c.depth <- 0;
      c.timing <- false)
    t.cells;
  Hashtbl.reset t.decisions;
  t.gc0 <- Gc.quick_stat ();
  t.minor0 <- Gc.minor_words ();
  t.wall0 <- Unix.gettimeofday ()

let cell_begin c =
  c.calls <- c.calls + 1;
  c.depth <- c.depth + 1;
  if c.depth = 1 then begin
    c.outer <- c.outer + 1;
    if (c.outer - 1) land sample_mask = 0 then begin
      c.timing <- true;
      c.t0 <- Unix.gettimeofday ()
    end
  end

let cell_end c =
  if c.depth > 0 then begin
    c.depth <- c.depth - 1;
    if c.depth = 0 && c.timing then begin
      c.seconds <- c.seconds +. Unix.gettimeofday () -. c.t0;
      c.sampled <- c.sampled + 1;
      c.timing <- false
    end
  end

(* Measured seconds scaled from the timed sample to every activation. *)
let cell_seconds c =
  if c.sampled = 0 then 0.0
  else c.seconds *. float_of_int c.outer /. float_of_int c.sampled

let phase_begin t p = cell_begin t.cells.(phase_index p)

let phase_end t p = cell_end t.cells.(phase_index p)

let decision_cell t name =
  match Hashtbl.find_opt t.decisions name with
  | Some c -> c
  | None ->
    let c = fresh_cell () in
    Hashtbl.add t.decisions name c;
    c

let decision_begin t name = cell_begin (decision_cell t name)

let decision_end t name = cell_end (decision_cell t name)

(* A resolved decision cell: callers on the per-callback hot path hoist the
   string-keyed lookup to wrapper-construction time. *)
type handle = cell

let decision_handle t name = decision_cell t name

let handle_begin = cell_begin

let handle_end = cell_end

(* Install engine probes so pop/dispatch are timed without the engine ever
   depending on the observability layer. *)
let attach_engine t engine =
  let pop = t.cells.(phase_index Pop)
  and fire = t.cells.(phase_index Dispatch) in
  Detmt_sim.Engine.set_probe engine
    (Some
       { Detmt_sim.Engine.pop_begin = (fun () -> cell_begin pop);
         pop_end = (fun () -> cell_end pop);
         fire_begin = (fun () -> cell_begin fire);
         fire_end = (fun () -> cell_end fire) })

let detach_engine engine = Detmt_sim.Engine.set_probe engine None

(* -------------------------------- reports ---------------------------- *)

type phase_row = {
  p_phase : string;
  p_calls : int;
  p_seconds : float;
}

let phase_rows t =
  List.map
    (fun p ->
      let c = t.cells.(phase_index p) in
      { p_phase = phase_name p; p_calls = c.calls;
        p_seconds = cell_seconds c })
    phases

type decision_row = {
  d_module : string;
  d_calls : int;
  d_seconds : float;
}

let decision_rows t =
  Hashtbl.fold
    (fun name c acc ->
      { d_module = name; d_calls = c.calls; d_seconds = cell_seconds c }
      :: acc)
    t.decisions []
  |> List.sort (fun a b -> String.compare a.d_module b.d_module)

type alloc = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

let alloc t =
  let g = Gc.quick_stat () in
  { minor_words = Gc.minor_words () -. t.minor0;
    major_words = g.Gc.major_words -. t.gc0.Gc.major_words;
    promoted_words = g.Gc.promoted_words -. t.gc0.Gc.promoted_words }

let wall_seconds t = Unix.gettimeofday () -. t.wall0

let to_table ?(title = "hot-path profile") t =
  let table =
    Detmt_stats.Table.create ~title
      ~columns:[ "phase"; "calls"; "seconds"; "us/call" ]
  in
  let row name calls seconds =
    Detmt_stats.Table.add_row table
      [ name; string_of_int calls; Printf.sprintf "%.6f" seconds;
        (if calls = 0 then "-"
         else Printf.sprintf "%.3f" (seconds *. 1e6 /. float_of_int calls)) ]
  in
  List.iter (fun r -> row r.p_phase r.p_calls r.p_seconds) (phase_rows t);
  List.iter
    (fun r -> row ("decide:" ^ r.d_module) r.d_calls r.d_seconds)
    (decision_rows t);
  table

let to_json t =
  let a = alloc t in
  Json.Obj
    [ ( "phases",
        Json.Obj
          (List.map
             (fun r ->
               ( r.p_phase,
                 Json.Obj
                   [ ("calls", Json.Int r.p_calls);
                     ("seconds", Json.Float r.p_seconds) ] ))
             (phase_rows t)) );
      ( "decisions",
        Json.Obj
          (List.map
             (fun r ->
               ( r.d_module,
                 Json.Obj
                   [ ("calls", Json.Int r.d_calls);
                     ("seconds", Json.Float r.d_seconds) ] ))
             (decision_rows t)) );
      ( "alloc",
        Json.Obj
          [ ("minor_words", Json.Float a.minor_words);
            ("major_words", Json.Float a.major_words);
            ("promoted_words", Json.Float a.promoted_words) ] );
      ("wall_seconds", Json.Float (wall_seconds t)) ]
