(** Virtual-time-windowed time series with bounded ring retention.

    The continuous-telemetry store behind the recorder: counter increments
    and gauge/histogram samples are folded into fixed-width windows keyed
    to the simulation clock, and each named track keeps only the most
    recent [retain] windows.  Purely observational — windows are keyed to
    virtual time and never schedule events, so recording on/off leaves the
    simulation bit-identical. *)

type t

type kind =
  | Rate (** from counters: window value = sum of increments *)
  | Sample (** from gauges/histograms: window keeps n/sum/min/max/last *)

type window = {
  w_start : float; (** left edge, virtual ms *)
  w_n : int;
  w_sum : float;
  w_min : float;
  w_max : float;
  w_last : float;
}

val create : ?width_ms:float -> ?retain:int -> unit -> t
(** Defaults: 10 ms windows, 256 retained per track. *)

val width_ms : t -> float

val retain : t -> int

val bump : t -> name:string -> at:float -> by:float -> unit
(** Fold a counter increment into the window containing [at]. *)

val sample : t -> name:string -> at:float -> value:float -> unit
(** Fold a gauge/histogram sample into the window containing [at]. *)

val set_on_roll : t -> (at:float -> unit) option -> unit
(** Hook invoked once whenever the head window advances (re-entrancy safe);
    the recorder snapshots passive gauges such as engine queue depth here. *)

val names : t -> string list
(** All track names, sorted. *)

val kind : t -> string -> kind option

val windows : t -> string -> window list
(** Retained windows of a track, oldest first. *)

val window_value : kind -> window -> float
(** The headline value of one window: sum for [Rate], last for [Sample]. *)

val peak : t -> string -> float
(** Max headline window value of a track ([Rate]: max per-window sum;
    [Sample]: max sample); [nan] for unknown tracks. *)

val track_count : t -> int

val point_count : t -> int
(** Total retained windows across all tracks (the memory footprint). *)

val to_json : t -> Json.t
