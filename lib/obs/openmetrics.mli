(** OpenMetrics text exposition of the metrics registry.

    Deterministic: families sorted by name, dotted names sanitised with a
    ["detmt_"] prefix, counters suffixed [_total], gauges paired with a
    [<name>_peak] family, histograms exposed as cumulative
    [_bucket{le=...}] series from the {!Hdr} buckets plus [_sum]/[_count],
    terminated by [# EOF]. *)

val export : Metrics.t -> string

val parse : string -> (Json.t, string) result
(** Parse an exposition back into a Json document mapping each family name
    to [{"type": ..., "samples": [{"name"; "labels"; "value"}]}] — the
    parse-back half of the golden-file round-trip test. *)
