(** Critical-path analysis over the span tracer's typed wait reasons.

    Reduces each answered request's exact-sum latency breakdown to its
    dominant component, then aggregates overall, per shard (derived from
    the winning replica's id) and per reconfiguration epoch (from the
    ["reconfig.epoch"] series, so the attribution survives Reconfig
    barriers). *)

type item = {
  cp_uid : int;
  cp_client : int;
  cp_meth : string;
  cp_replica : int;
  cp_shard : int;
  cp_epoch : int;
  cp_dominant : string;
  cp_dominant_ms : float;
  cp_total_ms : float;
}

type slice = {
  s_count : int; (** requests this component dominated *)
  s_ms : float; (** their dominant-component milliseconds, summed *)
}

type report = {
  items : item list;
  by_component : (string * slice) list;
  by_shard : (int * (string * slice) list) list;
  by_epoch : (int * (string * slice) list) list;
}

val components : string list
(** All component names, in canonical (tie-break) order. *)

val analyse : ?replicas:int -> Recorder.t -> report
(** [replicas] is the per-group replica count used to derive shards from
    replica ids (default 3, the repo-wide default). *)

val table : ?title:string -> report -> Detmt_stats.Table.t

val to_json : report -> Json.t
