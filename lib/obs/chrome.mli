(** Chrome trace-event JSON exporter (object form, loadable in Perfetto).

    Processes are replicas, threads are requests; wait intervals nest under
    the request span, audit entries become instant events and recorder time
    series become counter tracks.  Output is deterministically sorted. *)

val export : Recorder.t -> Json.t

val to_string : Recorder.t -> string
