(** Hot-path profiler: per-engine-phase wall-clock timers, per-decision-
    module cost counters, and allocation accounting via [Gc.quick_stat] /
    [Gc.minor_words] deltas.

    Strictly read-only with respect to the simulation: only wall time and
    GC counters are read, never the virtual clock, so profiled runs stay
    bit-identical to unprofiled ones.  Phases nest; each phase times its
    outermost activation only.  [dispatch] includes the [grant] and
    [flush] time spent inside event callbacks.

    Calls are counted exactly; wall time is {e sampled} — one outermost
    activation in 1024 is timestamped and the reported seconds scale the
    sample back up — which keeps the profiler's own overhead to a few
    percent of the run instead of the ~25% exhaustive timestamping costs.
    The sampling stride is deterministic. *)

type t

type phase =
  | Pop (** priority-queue selection of the next event *)
  | Dispatch (** event callback execution *)
  | Grant (** a scheduler decision performed against the replica *)
  | Flush (** Totem batch transmission *)

val phase_name : phase -> string

val create : unit -> t

val reset : t -> unit
(** Zero all counters and re-baseline the GC and wall-clock deltas. *)

val phase_begin : t -> phase -> unit

val phase_end : t -> phase -> unit

val decision_begin : t -> string -> unit
(** Count + time a scheduler callback, keyed by decision-module name. *)

val decision_end : t -> string -> unit

type handle
(** A pre-resolved decision cell; hot-path wrappers look the name up once
    at construction instead of hashing it on every callback. *)

val decision_handle : t -> string -> handle

val handle_begin : handle -> unit

val handle_end : handle -> unit

val attach_engine : t -> Detmt_sim.Engine.t -> unit
(** Install engine probes timing [Pop] and [Dispatch]. *)

val detach_engine : Detmt_sim.Engine.t -> unit

(** {1 Reports} *)

type phase_row = {
  p_phase : string;
  p_calls : int;
  p_seconds : float;
}

val phase_rows : t -> phase_row list
(** In canonical phase order: pop, dispatch, grant, flush. *)

type decision_row = {
  d_module : string;
  d_calls : int;
  d_seconds : float;
}

val decision_rows : t -> decision_row list
(** Sorted by module name. *)

type alloc = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

val alloc : t -> alloc
(** Allocation since [create]/[reset]. *)

val wall_seconds : t -> float
(** Wall-clock seconds since [create]/[reset]. *)

val to_table : ?title:string -> t -> Detmt_stats.Table.t

val to_json : t -> Json.t
