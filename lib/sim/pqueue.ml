(* Hierarchical timing wheel with a far-future overflow heap.

   The engine's event queue orders (time, seq) keys lexicographically.  A
   binary heap pays O(log n) comparisons per operation on the full pending
   set; the wheel exploits the engine's access pattern — pops are monotone
   in time, pushes land at or after the last popped instant — to bucket
   events by a coarse virtual-time tick and only ever sort one bucket at a
   time.

   Geometry.  A tick is [floor (time * inv_g)] with granularity [g]
   (default 0.5 ms; the mapping is monotone, so bucket placement can never
   reorder keys).  Ticks are grouped 256 to a group:

   - level 0: 256 buckets, one per tick of the current group;
   - level 1: 64 buckets, one per group, covering the next 64 groups
     (a ~8 s horizon at the default granularity);
   - beyond the horizon: an overflow min-heap on the exact (time, seq) key.

   When the cursor reaches a tick, its bucket is drained into the "run" —
   an array sorted by the exact (time, seq) key.  Only bucket *placement*
   uses the coarse tick; ordering inside a tick is exact, so a drain of the
   whole queue is bit-identical to the reference heap's.  Same-instant
   cascades (pushes at the tick being executed) binary-search into the
   live run; pushes below the run's tick — possible after a peek advanced
   the cursor — insert the same way, which keeps the run the single staging
   area for everything at or before the cursor.  Entries live in a pooled
   struct-of-arrays arena with intrusive bucket chains, so the steady-state
   loop allocates nothing per event.

   Contract (the engine guarantees both; violations raise): times are
   non-negative, and a push never predates the last popped time.

   The [Reference] sub-module preserves the replaced binary heap verbatim
   in spirit; the differential fuzz in test_sim drives both through random
   interleavings and demands identical pop streams. *)

let n0 = 256 (* level-0 buckets: ticks per group *)

let l0_mask = n0 - 1

let g_shift = 8 (* log2 n0 *)

let n1 = 64 (* level-1 buckets: groups on the wheel horizon *)

let l1_mask = n1 - 1

type t = {
  inv_g : float; (* 1 / granularity_ms *)
  (* entry arena: key, payload and intrusive chain links *)
  mutable etime : float array;
  mutable eseq : int array;
  mutable evalue : int array;
  mutable enext : int array; (* bucket chain or freelist, -1 ends *)
  mutable efree : int;
  mutable ecap : int;
  mutable size : int;
  l0 : int array; (* chain heads for the current group's ticks *)
  l1 : int array; (* chain heads per group on the horizon *)
  mutable grp0 : int; (* current group number *)
  mutable heap : int array; (* overflow: entry indices, (time, seq)-keyed *)
  mutable hsize : int;
  mutable run : int array; (* current bucket, sorted by exact key *)
  mutable rpos : int;
  mutable rlen : int;
  mutable rtick : int; (* tick of the current run; -1 before the first *)
  mutable ptime : float; (* key of the last popped entry *)
  mutable pseq : int;
}

let create ?(granularity_ms = 0.5) () =
  if not (granularity_ms > 0.0) then
    invalid_arg "Pqueue.create: granularity_ms must be positive";
  { inv_g = 1.0 /. granularity_ms; etime = [||]; eseq = [||]; evalue = [||];
    enext = [||]; efree = -1; ecap = 0; size = 0;
    l0 = Array.make n0 (-1); l1 = Array.make n1 (-1); grp0 = 0;
    heap = [||]; hsize = 0; run = [||]; rpos = 0; rlen = 0; rtick = -1;
    ptime = neg_infinity; pseq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let tick q time = int_of_float (time *. q.inv_g)

(* ------------------------------ arena ------------------------------ *)

let grow_arena q =
  let cap = max 64 (2 * q.ecap) in
  let etime = Array.make cap 0.0
  and eseq = Array.make cap 0
  and evalue = Array.make cap 0
  and enext = Array.make cap (-1) in
  Array.blit q.etime 0 etime 0 q.ecap;
  Array.blit q.eseq 0 eseq 0 q.ecap;
  Array.blit q.evalue 0 evalue 0 q.ecap;
  Array.blit q.enext 0 enext 0 q.ecap;
  for i = q.ecap to cap - 2 do
    enext.(i) <- i + 1
  done;
  enext.(cap - 1) <- -1;
  q.efree <- q.ecap;
  q.etime <- etime;
  q.eseq <- eseq;
  q.evalue <- evalue;
  q.enext <- enext;
  q.ecap <- cap

let alloc q ~time ~seq value =
  if q.efree < 0 then grow_arena q;
  let e = q.efree in
  q.efree <- q.enext.(e);
  q.etime.(e) <- time;
  q.eseq.(e) <- seq;
  q.evalue.(e) <- value;
  e

let release q e =
  q.enext.(e) <- q.efree;
  q.efree <- e

let key_less q a b =
  q.etime.(a) < q.etime.(b)
  || (q.etime.(a) = q.etime.(b) && q.eseq.(a) < q.eseq.(b))

(* --------------------------- overflow heap -------------------------- *)

let hpush q e =
  if q.hsize = Array.length q.heap then begin
    let heap = Array.make (max 64 (2 * q.hsize)) 0 in
    Array.blit q.heap 0 heap 0 q.hsize;
    q.heap <- heap
  end;
  q.heap.(q.hsize) <- e;
  q.hsize <- q.hsize + 1;
  let i = ref (q.hsize - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    key_less q q.heap.(!i) q.heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = q.heap.(!i) in
    q.heap.(!i) <- q.heap.(p);
    q.heap.(p) <- tmp;
    i := p
  done

let hpop q =
  let top = q.heap.(0) in
  q.hsize <- q.hsize - 1;
  if q.hsize > 0 then begin
    q.heap.(0) <- q.heap.(q.hsize);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < q.hsize && key_less q q.heap.(l) q.heap.(!m) then m := l;
      if r < q.hsize && key_less q q.heap.(r) q.heap.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let tmp = q.heap.(!i) in
        q.heap.(!i) <- q.heap.(!m);
        q.heap.(!m) <- tmp;
        i := !m
      end
    done
  end;
  top

(* ------------------------------- run -------------------------------- *)

let ensure_run_cap q n =
  if n > Array.length q.run then begin
    let run = Array.make (max 64 (2 * n)) 0 in
    Array.blit q.run 0 run 0 q.rlen;
    q.run <- run
  end

(* In-place heapsort of run[0..rlen) by the exact (time, seq) key: no
   allocation, and the keys are unique (the engine's seq is), so stability
   is moot. *)
let sort_run q =
  let n = q.rlen in
  let swap i j =
    let tmp = q.run.(i) in
    q.run.(i) <- q.run.(j);
    q.run.(j) <- tmp
  in
  let rec sift i len =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < len && key_less q q.run.(!m) q.run.(l) then m := l;
    if r < len && key_less q q.run.(!m) q.run.(r) then m := r;
    if !m <> i then begin
      swap i !m;
      sift !m len
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift i n
  done;
  for last = n - 1 downto 1 do
    swap 0 last;
    sift 0 last
  done

let build_run q tk =
  let b = tk land l0_mask in
  q.rpos <- 0;
  q.rlen <- 0;
  let e = ref q.l0.(b) in
  while !e >= 0 do
    ensure_run_cap q (q.rlen + 1);
    q.run.(q.rlen) <- !e;
    q.rlen <- q.rlen + 1;
    e := q.enext.(!e)
  done;
  q.l0.(b) <- -1;
  sort_run q;
  q.rtick <- tk

(* Insert into the live (already sorted) suffix of the run: first position
   whose key exceeds the new entry's.  A same-instant cascade carries the
   globally largest seq, so it lands after every equal-time entry — exactly
   the canonical order; an explorer re-queue carries its original seq and
   lands back in its canonical slot. *)
let run_insert q e =
  ensure_run_cap q (q.rlen + 1);
  let lo = ref q.rpos and hi = ref q.rlen in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key_less q e q.run.(mid) then hi := mid else lo := mid + 1
  done;
  Array.blit q.run !lo q.run (!lo + 1) (q.rlen - !lo);
  q.run.(!lo) <- e;
  q.rlen <- q.rlen + 1

(* ------------------------------- push ------------------------------- *)

let push q ~time ~seq value =
  if value < 0 then invalid_arg "Pqueue.push: payload must be >= 0";
  if not (time >= 0.0) then
    invalid_arg "Pqueue.push: time must be non-negative";
  if time < q.ptime then
    invalid_arg
      (Printf.sprintf "Pqueue.push: time %g predates the last pop %g" time
         q.ptime);
  let e = alloc q ~time ~seq value in
  let tk = tick q time in
  if tk <= q.rtick then run_insert q e
  else begin
    let d = (tk lsr g_shift) - q.grp0 in
    if d = 0 then begin
      let b = tk land l0_mask in
      q.enext.(e) <- q.l0.(b);
      q.l0.(b) <- e
    end
    else if d <= n1 then begin
      let b = (tk lsr g_shift) land l1_mask in
      q.enext.(e) <- q.l1.(b);
      q.l1.(b) <- e
    end
    else hpush q e
  end;
  q.size <- q.size + 1

(* ----------------------------- advance ------------------------------ *)

(* Enter the next non-empty group: the nearer of the first occupied
   level-1 bucket on the horizon and the overflow heap's top.  The chosen
   group's level-1 chain is dealt onto level 0, and every overflow entry of
   that group is pulled up with it — the heap may hold keys below the
   level-1 horizon after the cursor has jumped far ahead, so it competes as
   a full candidate rather than backfilling eagerly. *)
let advance_group q =
  let gheap =
    if q.hsize > 0 then tick q q.etime.(q.heap.(0)) lsr g_shift else max_int
  in
  let g1 = ref max_int in
  let d = ref 1 in
  while !g1 = max_int && !d <= n1 do
    let grp = q.grp0 + !d in
    if q.l1.(grp land l1_mask) >= 0 then g1 := grp else incr d
  done;
  let gnext = min !g1 gheap in
  if gnext = max_int then invalid_arg "Pqueue: inconsistent occupancy";
  q.grp0 <- gnext;
  if gnext = !g1 then begin
    let b = gnext land l1_mask in
    let e = ref q.l1.(b) in
    q.l1.(b) <- -1;
    while !e >= 0 do
      let nx = q.enext.(!e) in
      let i = tick q q.etime.(!e) land l0_mask in
      q.enext.(!e) <- q.l0.(i);
      q.l0.(i) <- !e;
      e := nx
    done
  end;
  while q.hsize > 0 && tick q q.etime.(q.heap.(0)) lsr g_shift = gnext do
    let e = hpop q in
    let i = tick q q.etime.(e) land l0_mask in
    q.enext.(e) <- q.l0.(i);
    q.l0.(i) <- e
  done

(* Make the run hold the queue's minimum, advancing the cursor as needed.
   Returns false iff the queue is empty. *)
let rec ensure_run q =
  if q.rpos < q.rlen then true
  else if q.size = 0 then false
  else begin
    let lo =
      let r = q.rtick + 1 - (q.grp0 lsl g_shift) in
      if r < 0 then 0 else r
    in
    let found = ref (-1) in
    let i = ref lo in
    while !found < 0 && !i < n0 do
      if q.l0.(!i) >= 0 then found := !i else incr i
    done;
    match !found with
    | -1 ->
      advance_group q;
      ensure_run q
    | b ->
      build_run q ((q.grp0 lsl g_shift) lor b);
      true
  end

(* ---------------------------- pop / peek ---------------------------- *)

let pop_raw q =
  if not (ensure_run q) then -1
  else begin
    let e = q.run.(q.rpos) in
    q.rpos <- q.rpos + 1;
    q.size <- q.size - 1;
    q.ptime <- q.etime.(e);
    q.pseq <- q.eseq.(e);
    let v = q.evalue.(e) in
    release q e;
    v
  end

let popped_time q = q.ptime

let popped_seq q = q.pseq

let peek_time q =
  if ensure_run q then q.etime.(q.run.(q.rpos)) else infinity

let peek q =
  if ensure_run q then
    let e = q.run.(q.rpos) in
    Some (q.etime.(e), q.eseq.(e), q.evalue.(e))
  else None

let pop q =
  if ensure_run q then begin
    let e = q.run.(q.rpos) in
    let key = (q.etime.(e), q.eseq.(e), q.evalue.(e)) in
    ignore (pop_raw q);
    Some key
  end
  else None

let clear q =
  q.size <- 0;
  q.hsize <- 0;
  q.rpos <- 0;
  q.rlen <- 0;
  q.rtick <- -1;
  q.grp0 <- 0;
  q.ptime <- neg_infinity;
  q.pseq <- 0;
  Array.fill q.l0 0 n0 (-1);
  Array.fill q.l1 0 n1 (-1);
  for i = 0 to q.ecap - 2 do
    q.enext.(i) <- i + 1
  done;
  if q.ecap > 0 then begin
    q.enext.(q.ecap - 1) <- -1;
    q.efree <- 0
  end

(* ----------------------------- reference ----------------------------- *)

(* The replaced binary min-heap, kept as the differential-fuzz oracle and
   for callers that need a polymorphic payload or out-of-order pushes.
   Slots are [option]s so that [pop] and [clear] really drop their
   payloads: the old array-of-entries representation left the popped entry
   (and the closure it carried) reachable in [data.(size)] forever. *)
module Reference = struct
  type 'a entry = { time : float; seq : int; value : 'a }

  type 'a t = { mutable data : 'a entry option array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let is_empty q = q.size = 0

  let length q = q.size

  let entry q i =
    match q.data.(i) with
    | Some e -> e
    | None -> invalid_arg "Pqueue.Reference: vacant slot"

  let less q i j =
    let a = entry q i and b = entry q j in
    a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let grow q =
    let cap = max 16 (2 * Array.length q.data) in
    let data = Array.make cap None in
    Array.blit q.data 0 data 0 q.size;
    q.data <- data

  let rec sift_up q i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less q i parent then begin
        let tmp = q.data.(i) in
        q.data.(i) <- q.data.(parent);
        q.data.(parent) <- tmp;
        sift_up q parent
      end
    end

  let rec sift_down q i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < q.size && less q l !smallest then smallest := l;
    if r < q.size && less q r !smallest then smallest := r;
    if !smallest <> i then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(!smallest);
      q.data.(!smallest) <- tmp;
      sift_down q !smallest
    end

  let push q ~time ~seq value =
    if q.size = Array.length q.data then grow q;
    q.data.(q.size) <- Some { time; seq; value };
    q.size <- q.size + 1;
    sift_up q (q.size - 1)

  let pop q =
    if q.size = 0 then None
    else begin
      let top = entry q 0 in
      q.size <- q.size - 1;
      if q.size > 0 then begin
        q.data.(0) <- q.data.(q.size);
        (* The vacated slot must not pin the moved entry (or, before this
           fix, the popped one) against collection. *)
        q.data.(q.size) <- None;
        sift_down q 0
      end
      else q.data.(0) <- None;
      Some (top.time, top.seq, top.value)
    end

  let peek q =
    if q.size = 0 then None
    else
      let top = entry q 0 in
      Some (top.time, top.seq, top.value)

  let clear q =
    Array.fill q.data 0 q.size None;
    q.size <- 0
end
