(* Segments live in a pooled struct-of-arrays arena: duration, the typed
   continuation (engine handler id + immediate argument, or a thunk for the
   closure API), and an intrusive link doubling as freelist and FIFO chain.
   Completion is one registered engine handler whose argument is the
   segment slot, so a compute burst costs no allocation per segment. *)

let nop () = ()

let thunk_cont = -1 (* sh value meaning "the continuation is sk" *)

type t = {
  engine : Engine.t;
  cores : int;
  mutable busy : int;
  mutable busy_time : float;
  mutable finish_h : Engine.handler_id;
  mutable sd : float array; (* segment duration *)
  mutable sh : int array; (* continuation handler, or [thunk_cont] *)
  mutable sa : int array; (* continuation argument; freelist link *)
  mutable sk : (unit -> unit) array; (* continuation thunk *)
  mutable snext : int array; (* FIFO chain, -1 ends *)
  mutable sfree : int;
  mutable scap : int;
  mutable wait_head : int; (* FIFO of segments waiting for a core *)
  mutable wait_tail : int;
  mutable waiting : int;
}

let grow t =
  let cap = max 16 (2 * t.scap) in
  let sd = Array.make cap 0.0
  and sh = Array.make cap 0
  and sa = Array.make cap (-1)
  and sk = Array.make cap nop
  and snext = Array.make cap (-1) in
  Array.blit t.sd 0 sd 0 t.scap;
  Array.blit t.sh 0 sh 0 t.scap;
  Array.blit t.sa 0 sa 0 t.scap;
  Array.blit t.sk 0 sk 0 t.scap;
  Array.blit t.snext 0 snext 0 t.scap;
  for i = t.scap to cap - 2 do
    sa.(i) <- i + 1
  done;
  sa.(cap - 1) <- -1;
  t.sfree <- t.scap;
  t.sd <- sd;
  t.sh <- sh;
  t.sa <- sa;
  t.sk <- sk;
  t.snext <- snext;
  t.scap <- cap

let alloc t =
  if t.sfree < 0 then grow t;
  let s = t.sfree in
  t.sfree <- t.sa.(s);
  s

let release t s =
  t.sk.(s) <- nop;
  t.sa.(s) <- t.sfree;
  t.sfree <- s

let start t s =
  t.busy <- t.busy + 1;
  t.busy_time <- t.busy_time +. t.sd.(s);
  Engine.post t.engine ~delay:t.sd.(s) t.finish_h s

let finish t s =
  t.busy <- t.busy - 1;
  (* Hand the freed core to the oldest waiter before running the
     continuation, so FIFO order is independent of what it schedules. *)
  if t.wait_head >= 0 then begin
    let w = t.wait_head in
    t.wait_head <- t.snext.(w);
    if t.wait_head < 0 then t.wait_tail <- -1;
    t.snext.(w) <- -1;
    t.waiting <- t.waiting - 1;
    start t w
  end;
  let h = t.sh.(s) in
  if h = thunk_cont then begin
    let k = t.sk.(s) in
    release t s;
    k ()
  end
  else begin
    let x = t.sa.(s) in
    release t s;
    Engine.invoke t.engine h x
  end

let create engine ~cores =
  if cores < 1 then invalid_arg "Cpu.create: cores must be >= 1";
  let t =
    { engine; cores; busy = 0; busy_time = 0.0; finish_h = 0; sd = [||];
      sh = [||]; sa = [||]; sk = [||]; snext = [||]; sfree = -1; scap = 0;
      wait_head = -1; wait_tail = -1; waiting = 0 }
  in
  t.finish_h <- Engine.register_handler engine (fun s -> finish t s);
  t

let cores t = t.cores

let busy t = t.busy

let queued t = t.waiting

let submit t s =
  if t.busy < t.cores then start t s
  else begin
    t.snext.(s) <- -1;
    if t.wait_tail < 0 then begin
      t.wait_head <- s;
      t.wait_tail <- s
    end
    else begin
      t.snext.(t.wait_tail) <- s;
      t.wait_tail <- s
    end;
    t.waiting <- t.waiting + 1
  end

let exec t ~duration k =
  if duration < 0.0 then invalid_arg "Cpu.exec: negative duration";
  let s = alloc t in
  t.sd.(s) <- duration;
  t.sh.(s) <- thunk_cont;
  t.sk.(s) <- k;
  submit t s

let exec_h t ~duration h x =
  if duration < 0.0 then invalid_arg "Cpu.exec_h: negative duration";
  let s = alloc t in
  t.sd.(s) <- duration;
  t.sh.(s) <- h;
  t.sa.(s) <- x;
  submit t s

let busy_time t = t.busy_time
