(** A pool of simulated CPU cores belonging to one replica.

    A compute segment occupies one core for its whole virtual duration; when
    all cores are busy the segment waits in a FIFO queue.  SEQ and SAT never
    have more than one runnable thread, so they can at most keep one core busy
    — exactly the inefficiency the paper criticises — whereas MAT-style
    schedulers exploit all cores. *)

type t

val create : Engine.t -> cores:int -> t
(** [create engine ~cores] makes a pool of [cores] >= 1 cores. *)

val cores : t -> int

val busy : t -> int
(** Number of cores currently executing a segment. *)

val queued : t -> int
(** Number of segments waiting for a free core. *)

val exec : t -> duration:float -> (unit -> unit) -> unit
(** [exec t ~duration k] occupies a core for [duration] virtual ms (queueing
    FIFO if none is free) and then calls [k]. *)

val exec_h : t -> duration:float -> Engine.handler_id -> int -> unit
(** [exec_h t ~duration h x] is {!exec} with a typed continuation: when the
    segment completes, [h] is invoked with [x] (via {!Engine.invoke}).
    Segments are pooled, so this path allocates nothing per segment. *)

val busy_time : t -> float
(** Cumulative core-busy virtual time — used to report CPU utilisation. *)
