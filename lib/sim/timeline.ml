(* State reconstruction: every thread's trace events switch it between a
   small set of states; sampling the switch list renders the row. *)

type state =
  | Absent
  | Running
  | Holding (* at least one lock held *)
  | Blocked (* lock requested, not yet granted *)
  | Waiting (* in a condition-variable wait *)
  | Nested (* inside a nested invocation *)

let char_of_state = function
  | Absent -> ' '
  | Running -> '='
  | Holding -> '#'
  | Blocked -> '.'
  | Waiting -> 'w'
  | Nested -> 'n'

type thread_line = {
  tid : int;
  mutable switches : (float * state) list; (* reverse time order *)
  mutable hold_depth : int;
}

type t = { lines : (int, thread_line) Hashtbl.t; lo : float; hi : float }

let line t tid =
  match Hashtbl.find_opt t tid with
  | Some l -> l
  | None ->
    let l = { tid; switches = []; hold_depth = 0 } in
    Hashtbl.add t tid l;
    l

let push l time state = l.switches <- (time, state) :: l.switches

(* The state a thread returns to when an episode (blocking, waiting,
   nesting) ends. *)
let base_state l = if l.hold_depth > 0 then Holding else Running

let of_trace events =
  let lines = Hashtbl.create 16 in
  let lo = ref infinity and hi = ref neg_infinity in
  let see time =
    if time < !lo then lo := time;
    if time > !hi then hi := time
  in
  let on (time, event) =
    see time;
    match (event : Trace.event) with
    | Trace.Thread_start { tid; _ } -> push (line lines tid) time Running
    | Trace.Thread_end { tid } -> push (line lines tid) time Absent
    | Trace.Lock_requested { tid; _ } -> push (line lines tid) time Blocked
    | Trace.Lock_granted { tid; _ } ->
      let l = line lines tid in
      l.hold_depth <- l.hold_depth + 1;
      push l time Holding
    | Trace.Unlocked { tid; _ } ->
      let l = line lines tid in
      l.hold_depth <- max 0 (l.hold_depth - 1);
      push l time (base_state l)
    | Trace.Wait_begin { tid; _ } ->
      let l = line lines tid in
      (* the wait released the monitor *)
      l.hold_depth <- max 0 (l.hold_depth - 1);
      push l time Waiting
    | Trace.Wait_end { tid; _ } ->
      let l = line lines tid in
      l.hold_depth <- l.hold_depth + 1;
      push l time Holding
    | Trace.Nested_begin { tid; _ } -> push (line lines tid) time Nested
    | Trace.Nested_end { tid; _ } ->
      let l = line lines tid in
      push l time (base_state l)
    | Trace.Ws_commit { tid; _ } ->
      (* the merged speculation proceeds to its reply build *)
      push (line lines tid) time Running
    | Trace.Ws_abort { tid; _ } -> push (line lines tid) time Blocked
    | Trace.Notify _ | Trace.Control_delivered _ | Trace.View_change _ -> ()
  in
  List.iter on events;
  let lo = if !lo = infinity then 0.0 else !lo in
  let hi = if !hi = neg_infinity then 1.0 else !hi in
  { lines; lo; hi }

let threads t =
  Hashtbl.fold (fun tid _ acc -> tid :: acc) t.lines [] |> List.sort compare

let span t = (t.lo, t.hi)

let state_of_line l ~time =
  (* switches are in reverse time order: find the latest at or before. *)
  let rec find = function
    | [] -> Absent
    | (s_time, state) :: rest -> if s_time <= time then state else find rest
  in
  find l.switches

let state_at t ~tid ~time =
  match Hashtbl.find_opt t.lines tid with
  | None -> char_of_state Absent
  | Some l -> char_of_state (state_of_line l ~time)

let render ?(width = 72) ?threads:selection ppf t =
  let tids = match selection with Some l -> l | None -> threads t in
  let span = t.hi -. t.lo in
  let span = if span <= 0.0 then 1.0 else span in
  let sample tid col =
    let time = t.lo +. (span *. (float_of_int col +. 0.5)
                        /. float_of_int width) in
    state_at t ~tid ~time
  in
  List.iter
    (fun tid ->
      Format.fprintf ppf "t%-4d %s@." tid
        (String.init width (sample tid)))
    tids;
  Format.fprintf ppf "      %-8.1f%*.1f ms@." t.lo (width - 8) t.hi;
  Format.fprintf ppf
    "      = running   # holding lock   . blocked   w waiting   n nested@."
