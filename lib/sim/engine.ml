(* Observation-only hooks around the two halves of event processing: the
   queue operation that selects the next event (pop) and the execution of
   its callback (fire).  Installed by the hot-path profiler; [None] (the
   default) costs one option match per event.  Probes must not touch the
   engine — they exist so a profiler can attribute wall-clock time to
   phases without perturbing virtual time. *)
type probe = {
  pop_begin : unit -> unit;
  pop_end : unit -> unit;
  fire_begin : unit -> unit;
  fire_end : unit -> unit;
}

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable order_oracle : (count:int -> int) option;
  mutable journaling : bool;
  mutable journal : float list; (* executed event times, newest first *)
  mutable probe : probe option;
}

let create () =
  { queue = Pqueue.create (); clock = 0.0; next_seq = 0; executed = 0;
    order_oracle = None; journaling = false; journal = []; probe = None }

let set_probe t p = t.probe <- p

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  Pqueue.push t.queue ~time ~seq:t.next_seq f;
  t.next_seq <- t.next_seq + 1

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let set_order_oracle t oracle = t.order_oracle <- oracle

let set_journaling t on =
  t.journaling <- on;
  if not on then t.journal <- []

let journal t = Array.of_list (List.rev t.journal)

let fire t ~time f =
  t.clock <- time;
  t.executed <- t.executed + 1;
  if t.journaling then t.journal <- time :: t.journal;
  (match t.probe with
  | None -> f ()
  | Some p ->
    p.fire_begin ();
    f ();
    p.fire_end ());
  true

(* With an ordering oracle installed, all events eligible at the same instant
   are popped and the oracle picks which one runs; the rest are re-queued
   under their original sequence numbers, so a pick of 0 (or an absent
   oracle) is exactly the canonical lowest-seq order. *)
let pop t =
  match t.probe with
  | None -> Pqueue.pop t.queue
  | Some p ->
    p.pop_begin ();
    let r = Pqueue.pop t.queue in
    p.pop_end ();
    r

let step t =
  match t.order_oracle with
  | None -> (
    match pop t with
    | None -> false
    | Some (time, _seq, f) -> fire t ~time f)
  | Some pick -> (
    match pop t with
    | None -> false
    | Some (time, seq, f) ->
      let rec drain acc =
        match Pqueue.peek t.queue with
        | Some (time', _, _) when time' = time -> (
          match Pqueue.pop t.queue with
          | Some (_, seq', f') -> drain ((seq', f') :: acc)
          | None -> List.rev acc)
        | _ -> List.rev acc
      in
      let ties = (seq, f) :: drain [] in
      let count = List.length ties in
      if count = 1 then fire t ~time f
      else begin
        let i =
          let i = pick ~count in
          if i < 0 || i >= count then 0 else i
        in
        let chosen = List.nth ties i in
        List.iteri
          (fun j (seq', f') ->
            if j <> i then Pqueue.push t.queue ~time ~seq:seq' f')
          ties;
        fire t ~time (snd chosen)
      end)

let run ?until t =
  let continue () =
    match until with
    | None -> not (Pqueue.is_empty t.queue)
    | Some limit -> (
      match Pqueue.peek t.queue with
      | None -> false
      | Some (time, _, _) -> time <= limit)
  in
  while continue () do
    ignore (step t)
  done

let pending t = Pqueue.length t.queue

let events_executed t = t.executed
