type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
}

let create () =
  { queue = Pqueue.create (); clock = 0.0; next_seq = 0; executed = 0 }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  Pqueue.push t.queue ~time ~seq:t.next_seq f;
  t.next_seq <- t.next_seq + 1

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, _seq, f) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    true

let run ?until t =
  let continue () =
    match until with
    | None -> not (Pqueue.is_empty t.queue)
    | Some limit -> (
      match Pqueue.peek t.queue with
      | None -> false
      | Some (time, _, _) -> time <= limit)
  in
  while continue () do
    ignore (step t)
  done

let pending t = Pqueue.length t.queue

let events_executed t = t.executed
