(* Observation-only hooks around the two halves of event processing: the
   queue operation that selects the next event (pop) and the execution of
   its callback (fire).  Installed by the hot-path profiler; [None] (the
   default) costs one option match per event.  Probes must not touch the
   engine — they exist so a profiler can attribute wall-clock time to
   phases without perturbing virtual time. *)
type probe = {
  pop_begin : unit -> unit;
  pop_end : unit -> unit;
  fire_begin : unit -> unit;
  fire_end : unit -> unit;
}

type handler_id = int

(* Events live in a pooled struct-of-arrays arena: the queue carries slot
   ids, a slot carries a handler id and an immediate [int] argument.
   Handler 0 is the thunk path — the slot's closure cell is the payload —
   kept for cold producers (test setup, one-shot fault injections); every
   hot producer registers a handler once and posts (handler, arg) pairs,
   so the steady-state schedule/fire cycle allocates nothing. *)
let thunk_handler = 0

let nop () = ()

type t = {
  queue : Pqueue.t; (* slot ids keyed by (time, seq) *)
  mutable eh : int array; (* per-slot handler id *)
  mutable ea : int array; (* per-slot argument; freelist link when free *)
  mutable ek : (unit -> unit) array; (* per-slot thunk (handler 0 only) *)
  mutable efree : int;
  mutable ecap : int;
  mutable handlers : (int -> unit) array;
  mutable nhandlers : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable order_oracle : (count:int -> int) option;
  mutable journaling : bool;
  mutable journal : float list; (* executed event times, newest first *)
  mutable probe : probe option;
}

let unregistered (_ : int) =
  invalid_arg "Engine: dispatch through an unregistered handler"

let create () =
  { queue = Pqueue.create (); eh = [||]; ea = [||]; ek = [||]; efree = -1;
    ecap = 0; handlers = Array.make 8 unregistered; nhandlers = 1;
    clock = 0.0; next_seq = 0; executed = 0; order_oracle = None;
    journaling = false; journal = []; probe = None }

let set_probe t p = t.probe <- p

let now t = t.clock

let register_handler t f =
  if t.nhandlers = Array.length t.handlers then begin
    let handlers = Array.make (2 * t.nhandlers) unregistered in
    Array.blit t.handlers 0 handlers 0 t.nhandlers;
    t.handlers <- handlers
  end;
  let id = t.nhandlers in
  t.handlers.(id) <- f;
  t.nhandlers <- id + 1;
  id

let invoke t h x = t.handlers.(h) x

(* ------------------------------- arena ------------------------------ *)

let grow_arena t =
  let cap = max 64 (2 * t.ecap) in
  let eh = Array.make cap 0 and ea = Array.make cap (-1) in
  let ek = Array.make cap nop in
  Array.blit t.eh 0 eh 0 t.ecap;
  Array.blit t.ea 0 ea 0 t.ecap;
  Array.blit t.ek 0 ek 0 t.ecap;
  for i = t.ecap to cap - 2 do
    ea.(i) <- i + 1
  done;
  ea.(cap - 1) <- -1;
  t.efree <- t.ecap;
  t.eh <- eh;
  t.ea <- ea;
  t.ek <- ek;
  t.ecap <- cap

let alloc_slot t =
  if t.efree < 0 then grow_arena t;
  let s = t.efree in
  t.efree <- t.ea.(s);
  s

(* The thunk cell is cleared on release so a fired event's closure (and
   whatever it captured) is collectable immediately — the arena equivalent
   of the queue's vacated-slot rule. *)
let release_slot t s =
  t.ek.(s) <- nop;
  t.ea.(s) <- t.efree;
  t.efree <- s

let enqueue t ~time s =
  Pqueue.push t.queue ~time ~seq:t.next_seq s;
  t.next_seq <- t.next_seq + 1

(* ----------------------------- scheduling --------------------------- *)

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let s = alloc_slot t in
  t.eh.(s) <- thunk_handler;
  t.ek.(s) <- f;
  enqueue t ~time s

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let post_at t ~time h x =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.post_at: time %g is before now %g" time t.clock);
  if h <= 0 || h >= t.nhandlers then
    invalid_arg (Printf.sprintf "Engine.post_at: unknown handler %d" h);
  let s = alloc_slot t in
  t.eh.(s) <- h;
  t.ea.(s) <- x;
  enqueue t ~time s

let post t ~delay h x =
  if delay < 0.0 then invalid_arg "Engine.post: negative delay";
  post_at t ~time:(t.clock +. delay) h x

let set_order_oracle t oracle = t.order_oracle <- oracle

let set_journaling t on =
  t.journaling <- on;
  if not on then t.journal <- []

let journal t = Array.of_list (List.rev t.journal)

(* ------------------------------ stepping ----------------------------- *)

let fire t ~time s =
  t.clock <- time;
  t.executed <- t.executed + 1;
  if t.journaling then t.journal <- time :: t.journal;
  let h = t.eh.(s) in
  if h = thunk_handler then begin
    let f = t.ek.(s) in
    release_slot t s;
    match t.probe with
    | None -> f ()
    | Some p ->
      p.fire_begin ();
      f ();
      p.fire_end ()
  end
  else begin
    let x = t.ea.(s) in
    release_slot t s;
    let g = t.handlers.(h) in
    match t.probe with
    | None -> g x
    | Some p ->
      p.fire_begin ();
      g x;
      p.fire_end ()
  end;
  true

(* With an ordering oracle installed, all events eligible at the same instant
   are popped and the oracle picks which one runs; the rest are re-queued
   under their original sequence numbers, so a pick of 0 (or an absent
   oracle) is exactly the canonical lowest-seq order.  Re-queued slots keep
   their arena records: only the chosen one is fired and released. *)
let pop t =
  match t.probe with
  | None -> Pqueue.pop_raw t.queue
  | Some p ->
    p.pop_begin ();
    let s = Pqueue.pop_raw t.queue in
    p.pop_end ();
    s

let step t =
  match t.order_oracle with
  | None ->
    let s = pop t in
    if s < 0 then false else fire t ~time:(Pqueue.popped_time t.queue) s
  | Some pick ->
    let s = pop t in
    if s < 0 then false
    else begin
      let time = Pqueue.popped_time t.queue in
      let seq = Pqueue.popped_seq t.queue in
      let rec drain acc =
        if Pqueue.peek_time t.queue = time then begin
          let s' = Pqueue.pop_raw t.queue in
          drain ((Pqueue.popped_seq t.queue, s') :: acc)
        end
        else List.rev acc
      in
      let ties = (seq, s) :: drain [] in
      let count = List.length ties in
      if count = 1 then fire t ~time s
      else begin
        let i =
          let i = pick ~count in
          if i < 0 || i >= count then 0 else i
        in
        let chosen = List.nth ties i in
        List.iteri
          (fun j (seq', s') ->
            if j <> i then Pqueue.push t.queue ~time ~seq:seq' s')
          ties;
        fire t ~time (snd chosen)
      end
    end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    (* [peek_time] is [infinity] on an empty queue, so the emptiness check
       must come first: [~until:infinity] means "run to drain". *)
    while Pqueue.length t.queue > 0 && Pqueue.peek_time t.queue <= limit do
      ignore (step t)
    done

let pending t = Pqueue.length t.queue

let events_executed t = t.executed
