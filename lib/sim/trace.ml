type event =
  | Lock_requested of { tid : int; syncid : int; mutex : int }
  | Lock_granted of { tid : int; syncid : int; mutex : int }
  | Unlocked of { tid : int; syncid : int; mutex : int }
  | Wait_begin of { tid : int; mutex : int }
  | Wait_end of { tid : int; mutex : int }
  | Notify of { tid : int; mutex : int; all : bool }
  | Nested_begin of { tid : int; service : int }
  | Nested_end of { tid : int; service : int }
  | Thread_start of { tid : int; method_name : string }
  | Thread_end of { tid : int }
  | Control_delivered of { sender : int; grant_seq : int; mutex : int; tid : int }
  | View_change of { sender : int }
  | Ws_commit of { tid : int; writes : int }
  | Ws_abort of { tid : int; conflicts : int }
      (* [conflicts = 0]: aborted on an unsafe op (wait/notify/nested) before
         reaching the commit barrier; [> 0]: validation failure at commit *)

type t = {
  mutable events : (float * event) list; (* reverse order *)
  mutable length : int;
  mutable enabled : bool;
  mutable hash : int64;
}

let create () = { events = []; length = 0; enabled = true; hash = 0L }

let enabled t = t.enabled

let set_enabled t b = t.enabled <- b

(* FNV-1a style folding over a small integer encoding of the event. *)
let fnv_prime = 0x100000001B3L

let mix h x =
  Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let hash_string h s =
  let acc = ref h in
  String.iter (fun c -> acc := mix !acc (Char.code c)) s;
  !acc

let hash_event h = function
  | Lock_requested { tid; syncid; mutex } ->
    mix (mix (mix (mix h 11) tid) syncid) mutex
  | Lock_granted { tid; syncid; mutex } ->
    mix (mix (mix (mix h 1) tid) syncid) mutex
  | Unlocked { tid; syncid; mutex } ->
    mix (mix (mix (mix h 2) tid) syncid) mutex
  | Wait_begin { tid; mutex } -> mix (mix (mix h 3) tid) mutex
  | Wait_end { tid; mutex } -> mix (mix (mix h 4) tid) mutex
  | Notify { tid; mutex; all } ->
    mix (mix (mix (mix h 5) tid) mutex) (Bool.to_int all)
  | Nested_begin { tid; service } -> mix (mix (mix h 6) tid) service
  | Nested_end { tid; service } -> mix (mix (mix h 7) tid) service
  | Thread_start { tid; method_name } ->
    hash_string (mix (mix h 8) tid) method_name
  | Thread_end { tid } -> mix (mix h 9) tid
  | Control_delivered { sender; grant_seq; mutex; tid } ->
    mix (mix (mix (mix (mix h 10) sender) grant_seq) mutex) tid
  | View_change { sender } -> mix (mix h 12) sender
  | Ws_commit { tid; writes } -> mix (mix (mix h 13) tid) writes
  | Ws_abort { tid; conflicts } -> mix (mix (mix h 14) tid) conflicts

let record_at t ~time e =
  if t.enabled then begin
    t.events <- (time, e) :: t.events;
    t.length <- t.length + 1;
    t.hash <- hash_event t.hash e
  end

let record t e = record_at t ~time:0.0 e

let length t = t.length

let events t = List.rev_map snd t.events

let timed_events t = List.rev t.events

let fingerprint t = t.hash

let pp_event ppf = function
  | Lock_requested { tid; syncid; mutex } ->
    Format.fprintf ppf "want    t%d sync%d m%d" tid syncid mutex
  | Lock_granted { tid; syncid; mutex } ->
    Format.fprintf ppf "lock    t%d sync%d m%d" tid syncid mutex
  | Unlocked { tid; syncid; mutex } ->
    Format.fprintf ppf "unlock  t%d sync%d m%d" tid syncid mutex
  | Wait_begin { tid; mutex } -> Format.fprintf ppf "wait    t%d m%d" tid mutex
  | Wait_end { tid; mutex } -> Format.fprintf ppf "awake   t%d m%d" tid mutex
  | Notify { tid; mutex; all } ->
    Format.fprintf ppf "notify%s t%d m%d" (if all then "A" else " ") tid mutex
  | Nested_begin { tid; service } ->
    Format.fprintf ppf "nest>   t%d s%d" tid service
  | Nested_end { tid; service } ->
    Format.fprintf ppf "nest<   t%d s%d" tid service
  | Thread_start { tid; method_name } ->
    Format.fprintf ppf "start   t%d %s" tid method_name
  | Thread_end { tid } -> Format.fprintf ppf "end     t%d" tid
  | Control_delivered { sender; grant_seq; mutex; tid } ->
    Format.fprintf ppf "ctrl    t%d m%d grant#%d from r%d" tid mutex grant_seq
      sender
  | View_change { sender } -> Format.fprintf ppf "view    from r%d" sender
  | Ws_commit { tid; writes } ->
    Format.fprintf ppf "wscmt   t%d w%d" tid writes
  | Ws_abort { tid; conflicts } ->
    Format.fprintf ppf "wsabrt  t%d c%d" tid conflicts

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
