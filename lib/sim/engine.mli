(** Discrete-event simulation engine with a virtual clock.

    Time is a [float] in virtual milliseconds.  Simultaneous events run in
    scheduling order (stable tie-break on a global sequence number), which
    together with the seeded {!Rng} makes every run bit-reproducible.

    Events are typed: a producer {!register_handler}s an [int -> unit]
    dispatch function once and then {!post}s [(handler, arg)] pairs, which
    land in a pooled event arena — the steady-state schedule/fire cycle
    allocates nothing.  {!schedule} / {!schedule_at} remain as the thunk
    constructor for cold paths (test setup, one-shot fault injections);
    a thunk event is simply handler 0 with the closure in its slot. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time in milliseconds. *)

(** {1 Typed events} *)

type handler_id = int
(** Index into the engine's dispatch table.  Obtain one only from
    {!register_handler}; ids are positive (0 is the internal thunk
    handler) and never recycled. *)

val register_handler : t -> (int -> unit) -> handler_id
(** Register a dispatch function and return its id.  Producers register
    once (capturing their own state) and pass the id to {!post}; the
    argument is the event's immediate [int] payload. *)

val post : t -> delay:float -> handler_id -> int -> unit
(** [post t ~delay h x] runs [invoke t h x] at [now t +. delay] without
    allocating: the event is a pooled arena slot.  [delay] must be
    non-negative; a zero delay runs after all callbacks already queued for
    the current instant. *)

val post_at : t -> time:float -> handler_id -> int -> unit
(** [post_at t ~time h x] is {!post} at absolute virtual time [time],
    which must not lie in the past. *)

val invoke : t -> handler_id -> int -> unit
(** Call a registered handler synchronously (no event, no clock movement).
    Lets a producer that stored a [(handler, arg)] continuation run it
    inline on a zero-cost path. *)

(** {1 Thunk events (cold path)} *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay] must be
    non-negative; a zero delay runs [f] after all callbacks already queued for
    the current instant. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute virtual time [time], which
    must not lie in the past. *)

(** {1 Execution} *)

val run : ?until:float -> t -> unit
(** Execute events until the queue drains, or — when [until] is given — until
    the next queued event lies strictly after [until].  The boundary is
    inclusive: an event scheduled exactly at [until] runs, and so does
    anything it schedules at a time [<= until] (including same-instant
    cascades at the boundary itself).  Events strictly after [until] remain
    queued, and the clock is left at the last executed event's time — it is
    {e not} advanced to [until], so a later [run] continues seamlessly. *)

val step : t -> bool
(** Execute the single next event.  Returns [false] when the queue is empty. *)

val set_order_oracle : t -> (count:int -> int) option -> unit
(** Schedule-injection hook for the schedule-space explorer: when several
    events are eligible at the same instant, the oracle is consulted with
    their [count] and returns the index (in canonical scheduling order) of
    the one to run next; the others are re-queued unchanged.  Returning [0]
    — or any out-of-range index — reproduces the canonical lowest-seq order,
    so an installed oracle that always answers [0] is behaviourally
    invisible.  Every pick is still an {e admissible} execution: only the
    tie-break among simultaneous events changes, never event times.
    [None] (the default) removes the hook and its overhead. *)

val set_journaling : t -> bool -> unit
(** Record the virtual time of every executed event (off by default;
    switching off clears the journal).  The explorer's pruning rule reads
    the journal to find perturbation windows no event could observe. *)

val journal : t -> float array
(** Times of the events executed while journaling, in execution order. *)

(** {1 Observation probes} *)

type probe = {
  pop_begin : unit -> unit;
  pop_end : unit -> unit;
  fire_begin : unit -> unit;
  fire_end : unit -> unit;
}
(** Observation-only hooks around event selection ([pop_*], the priority
    queue operation) and event execution ([fire_*], the callback itself).
    Probes must not interact with the engine; they let a profiler attribute
    wall-clock time to phases without perturbing virtual time.  [None]
    (the default) costs one option match per event. *)

val set_probe : t -> probe option -> unit

val pending : t -> int
(** Number of events currently queued. *)

val events_executed : t -> int
(** Total number of events executed since creation (a determinism probe:
    identical runs execute identical event counts). *)
