(** Append-only trace of scheduling-relevant events.

    Each replica records the sequence of lock grants, releases, waits and
    notifications it performed.  Two replicas executed deterministically must
    produce byte-identical traces; {!fingerprint} folds a trace into a single
    64-bit hash used by the consistency checker. *)

type event =
  | Lock_requested of { tid : int; syncid : int; mutex : int }
  | Lock_granted of { tid : int; syncid : int; mutex : int }
  | Unlocked of { tid : int; syncid : int; mutex : int }
  | Wait_begin of { tid : int; mutex : int }
  | Wait_end of { tid : int; mutex : int }
  | Notify of { tid : int; mutex : int; all : bool }
  | Nested_begin of { tid : int; service : int }
  | Nested_end of { tid : int; service : int }
  | Thread_start of { tid : int; method_name : string }
  | Thread_end of { tid : int }
  | Control_delivered of { sender : int; grant_seq : int; mutex : int; tid : int }
      (** A scheduler control message (an LSA grant) arrived in total order.
          Typed, not a formatted string, so the fingerprint depends only on
          the decision itself. *)
  | View_change of { sender : int }
  | Ws_commit of { tid : int; writes : int }
      (** A speculative workspace merged into the committed object state at
          its slot-order barrier ([writes] = write-set size). *)
  | Ws_abort of { tid : int; conflicts : int }
      (** A speculation was discarded: [conflicts = 0] for an abort on an
          unsafe operation (wait/notify/nested), [> 0] for a validation
          failure at the commit barrier.  The thread re-executes directly. *)

type t

val create : unit -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val record : t -> event -> unit
(** Record with timestamp 0 (unit tests). *)

val record_at : t -> time:float -> event -> unit
(** Record with the current virtual time; the timestamp feeds the timeline
    renderer and is excluded from {!fingerprint}. *)

val length : t -> int

val events : t -> event list
(** Events in recording order. *)

val timed_events : t -> (float * event) list
(** Events with their virtual timestamps, in recording order. *)

val fingerprint : t -> int64
(** Order-sensitive hash of all recorded events. *)

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
