(** The engine's event queue: a hierarchical timing wheel with a far-future
    overflow heap.

    Keys are [(time, seq)] pairs compared lexicographically; the event engine
    allocates monotonically increasing sequence numbers, so two events
    scheduled for the same virtual time are delivered in scheduling order.
    That stability is what makes the whole simulation deterministic, and the
    wheel preserves it exactly: ticks only decide bucket {e placement}, each
    bucket is sorted on the exact key before it is drained, so the pop
    stream is bit-identical to a binary heap's ({!Reference}, the replaced
    implementation, is kept as the differential-fuzz oracle).

    Payloads are non-negative [int]s — the engine's pooled event-slot ids —
    so the steady-state push/pop cycle allocates nothing.

    Contract (both guaranteed by the engine, both checked): times are
    non-negative, and a push never predates the time of the last pop. *)

type t

val create : ?granularity_ms:float -> unit -> t
(** [granularity_ms] (default [0.5]) is the width of one wheel tick.  It
    trades bucket-sort width against cursor-scan length and never affects
    ordering — only placement. *)

val is_empty : t -> bool

val length : t -> int

val push : t -> time:float -> seq:int -> int -> unit
(** [push q ~time ~seq v] inserts payload [v >= 0] with key [(time, seq)].
    Raises [Invalid_argument] on a negative payload, a negative time, or a
    time before the last popped entry's. *)

val pop : t -> (float * int * int) option
(** Remove and return the minimum element, or [None] when empty.  Allocates
    the result; the engine's hot path uses {!pop_raw} instead. *)

val peek : t -> (float * int * int) option
(** Return the minimum element without removing it. *)

(** {1 Allocation-free hot path} *)

val pop_raw : t -> int
(** Remove the minimum element and return its payload, or [-1] when empty.
    The popped key is readable through {!popped_time} / {!popped_seq} until
    the next pop. *)

val popped_time : t -> float

val popped_seq : t -> int

val peek_time : t -> float
(** Time of the minimum element, or [infinity] when empty. *)

val clear : t -> unit

(** The binary min-heap this wheel replaced: polymorphic payloads, no push
    contract.  Tests fuzz it against the wheel; vacated slots are dropped
    (the old representation leaked the popped entry in [data.(size)]). *)
module Reference : sig
  type 'a t

  val create : unit -> 'a t

  val is_empty : 'a t -> bool

  val length : 'a t -> int

  val push : 'a t -> time:float -> seq:int -> 'a -> unit

  val pop : 'a t -> (float * int * 'a) option

  val peek : 'a t -> (float * int * 'a) option

  val clear : 'a t -> unit
end
