(* The replica <-> scheduler contract.

   The replica engine intercepts every synchronisation-relevant operation and
   reports it to the scheduler (a "decision module", section 4.3) through the
   [sched] callbacks; the scheduler answers asynchronously through [actions].
   A scheduler must eventually grant every blocked operation it was told
   about, choosing the moment (and hence the deterministic order).

   Contract, per operation:
   - [on_request tid]: a new thread was delivered in total order.  The
     scheduler starts it (now or later) with [actions.start_thread].
   - [on_lock tid ~syncid ~mutex]: the thread is blocked wanting [mutex].
     Grant with [actions.grant_lock] — only when the mutex is free for the
     thread ([actions.mutex_free_for]), otherwise the replica raises.
     Re-entrant acquisitions are short-circuited by the replica and surface
     only as [on_acquired].
   - [on_wakeup tid ~mutex]: a wait was notified; the thread needs to
     re-acquire the monitor.  Grant with [actions.grant_reacquire].
   - [on_nested_reply tid]: the nested-invocation reply arrived; resume the
     thread with [actions.resume_nested].

   Purely informational callbacks: [on_acquired], [on_unlock], [on_wait],
   [on_terminate], and the bookkeeping stream [on_lockinfo] / [on_ignore] /
   [on_loop_enter] / [on_loop_exit]. *)

(* Workspace (speculative-execution) events a replica reports to the
   scheduler for a thread it started under [ws_begin]:
   - [Ws_ready]: the speculation ran to completion and holds its result in a
     private workspace; the worker is free, the thread waits in
     [Commit_pending] until the scheduler calls [ws_commit] at the thread's
     slot-order barrier.
   - [Ws_unsafe]: the speculation hit an operation that cannot be virtualised
     (condvar wait/notify, nested invocation); the replica has already
     discarded the workspace and reset the thread to [Created] — the
     scheduler must re-run it directly (in slot order) via [start_thread]. *)
type ws_event = Ws_ready | Ws_unsafe

type control =
  | Lsa_grant of { grant_seq : int; mutex : int; tid : int }
      (* the LSA leader's lock-acquisition decision, enforced by followers *)
  | View_change
      (* membership changed; a promoted LSA leader drains the dead leader's
         published decisions before scheduling greedily *)

type actions = {
  replica_id : int;
  start_thread : int -> unit;
  grant_lock : int -> unit;
  grant_reacquire : int -> unit;
  resume_nested : int -> unit;
  mutex_owner : int -> int option;
  mutex_free_for : tid:int -> mutex:int -> bool;
  holds_any_mutex : int -> bool;
  request_method : int -> string;
      (* start method of a delivered request, for bookkeeping registration *)
  request_arg : tid:int -> int -> Detmt_lang.Ast.value option;
      (* argument [i] of a delivered request, for conflict-class resolution
         of [Sp_arg] sync parameters at delivery time; [None] out of range *)
  self_mutex : unit -> int;
      (* the replica object's monitor, resolving [Sp_this] sync parameters *)
  pool_dispatch : worker:int -> tid:int -> unit;
      (* a parallel scheduler handed the thread to a pool worker
         (observation only: per-worker occupancy series for the profiler) *)
  pool_complete : worker:int -> tid:int -> unit;
      (* the pool worker finished (or parked) the thread it was running *)
  ws_begin : tid:int -> record_acquisitions:bool -> unit;
      (* attach a fresh copy-on-write workspace to a [Created] thread; the
         next [start_thread] runs it speculatively (virtual locks, private
         reads/writes, no committed-state side effects) *)
  ws_commit : tid:int -> bool;
      (* commit barrier for a [Commit_pending] thread: validate the
         workspace's read set against the committed state.  [true] — merged;
         the thread proceeds to build its reply and terminate normally.
         [false] — stale; the workspace is discarded and the thread is reset
         to [Created] for direct re-execution (lowest-slot-wins).  Only call
         at the thread's slot-order barrier: every older request terminated
         and no direct execution in flight. *)
  broadcast_control : control -> unit;
      (* routed via the total-order broadcast to every replica's scheduler *)
  inject_dummy : unit -> unit; (* PDS: ask for a filler request *)
  schedule : delay:float -> (unit -> unit) -> unit; (* local timers *)
  now : unit -> float;
  is_leader : unit -> bool;
  obs : Detmt_obs.Recorder.t;
      (* flight recorder; [Recorder.disabled] unless observability is on.
         Schedulers must guard calls with [Recorder.enabled] so a disabled
         recorder costs nothing. *)
}

type sched = {
  name : string;
  on_request : int -> unit;
  on_lock : int -> syncid:int -> mutex:int -> unit;
  on_acquired : int -> syncid:int -> mutex:int -> unit;
  on_unlock : int -> syncid:int -> mutex:int -> freed:bool -> unit;
  on_wait : int -> mutex:int -> unit;
  on_wakeup : int -> mutex:int -> unit;
  on_reacquired : int -> mutex:int -> unit;
  on_nested_begin : int -> unit;
  on_nested_reply : int -> unit;
  on_terminate : int -> unit;
  on_lockinfo : int -> syncid:int -> mutex:int -> unit;
  on_ignore : int -> syncid:int -> unit;
  on_loop_enter : int -> loopid:int -> unit;
  on_loop_exit : int -> loopid:int -> unit;
  on_control : sender:int -> control -> unit;
  on_ws_event : int -> ws_event -> unit;
      (* speculative-execution lifecycle for threads started under
         [ws_begin]; never fires for directly executed threads *)
  snapshot : unit -> (string * int) list;
      (* scheduler bookkeeping that outlives quiescence (counters that must
         match across replicas), shipped in a state-transfer snapshot *)
  restore : (string * int) list -> unit;
      (* install a donor's [snapshot] into a freshly built scheduler *)
}

(* A scheduler skeleton whose informational callbacks do nothing — decision
   modules override what they need. *)
let no_op_sched ~name ~on_request ~on_lock ~on_wakeup ~on_nested_reply =
  { name; on_request; on_lock; on_wakeup; on_nested_reply;
    on_acquired = (fun _ ~syncid:_ ~mutex:_ -> ());
    on_unlock = (fun _ ~syncid:_ ~mutex:_ ~freed:_ -> ());
    on_wait = (fun _ ~mutex:_ -> ());
    on_reacquired = (fun _ ~mutex:_ -> ());
    on_nested_begin = (fun _ -> ());
    on_terminate = (fun _ -> ());
    on_lockinfo = (fun _ ~syncid:_ ~mutex:_ -> ());
    on_ignore = (fun _ ~syncid:_ -> ());
    on_loop_enter = (fun _ ~loopid:_ -> ());
    on_loop_exit = (fun _ ~loopid:_ -> ());
    on_control = (fun ~sender:_ _ -> ());
    on_ws_event = (fun _ _ -> ());
    (* Most decision modules keep no state across quiescence; the ones that
       do (LSA's grant counter, PDS's phantom slots) override these. *)
    snapshot = (fun () -> []);
    restore = (fun _ -> ()) }

(* Decision-cost instrumentation: wrap every scheduler callback so the
   profiler counts and wall-clock-times it, attributed to the decision
   module's registry name.  Applied by [Replica.create] only when a
   profiler is attached, so unprofiled runs pay nothing.  The wrapper is
   observation-only — it calls straight through, and re-entrant callbacks
   (a grant cascading into [on_acquired]) time the outermost frame only
   (handled inside [Profile]). *)
let profiled p (s : sched) : sched =
  let h = Detmt_obs.Profile.decision_handle p s.name in
  (* Callbacks run ~100k+ times per run; each wrapper calls straight
     through (no closure built per call) so the tap stays cheap enough to
     hold the documented <5% overhead bound. *)
  let b () = Detmt_obs.Profile.handle_begin h
  and e () = Detmt_obs.Profile.handle_end h in
  { s with
    on_request = (fun tid -> b (); s.on_request tid; e ());
    on_lock =
      (fun tid ~syncid ~mutex -> b (); s.on_lock tid ~syncid ~mutex; e ());
    on_acquired =
      (fun tid ~syncid ~mutex ->
        b (); s.on_acquired tid ~syncid ~mutex; e ());
    on_unlock =
      (fun tid ~syncid ~mutex ~freed ->
        b (); s.on_unlock tid ~syncid ~mutex ~freed; e ());
    on_wait = (fun tid ~mutex -> b (); s.on_wait tid ~mutex; e ());
    on_wakeup = (fun tid ~mutex -> b (); s.on_wakeup tid ~mutex; e ());
    on_reacquired =
      (fun tid ~mutex -> b (); s.on_reacquired tid ~mutex; e ());
    on_nested_begin = (fun tid -> b (); s.on_nested_begin tid; e ());
    on_nested_reply = (fun tid -> b (); s.on_nested_reply tid; e ());
    on_terminate = (fun tid -> b (); s.on_terminate tid; e ());
    on_lockinfo =
      (fun tid ~syncid ~mutex ->
        b (); s.on_lockinfo tid ~syncid ~mutex; e ());
    on_ignore = (fun tid ~syncid -> b (); s.on_ignore tid ~syncid; e ());
    on_loop_enter =
      (fun tid ~loopid -> b (); s.on_loop_enter tid ~loopid; e ());
    on_loop_exit =
      (fun tid ~loopid -> b (); s.on_loop_exit tid ~loopid; e ());
    on_control = (fun ~sender c -> b (); s.on_control ~sender c; e ());
    on_ws_event = (fun tid ev -> b (); s.on_ws_event tid ev; e ()) }
