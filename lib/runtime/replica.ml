open Detmt_sim
module Recorder = Detmt_obs.Recorder

type thread_status =
  | Created
  | Running
  | Lock_blocked of { syncid : int; mutex : int }
  | Wait_parked of { mutex : int; count : int }
  | Reacquire_blocked of { mutex : int; count : int }
  | Nested_blocked of { call_index : int }
  | Nested_ready of { call_index : int }
  | Commit_pending
  | Terminated

type callbacks = {
  send_reply : Request.t -> unit;
  do_nested :
    tid:int -> call_index:int -> service:int -> duration:float -> unit;
  broadcast_control : Sched_iface.control -> unit;
  inject_dummy : unit -> unit;
  is_leader : unit -> bool;
}

type thread = {
  tid : int;
  req : Request.t;
  mutable cont : (unit -> Interp.outcome) option;
  mutable status : thread_status;
  mutable nested_count : int; (* nested invocations issued so far *)
  mutable buffered_replies : int list; (* call indices answered early *)
  mutable ws : Workspace.t option;
      (* speculative execution: attached by [ws_begin], merged or discarded
         at [ws_commit]; [None] for direct execution *)
}

type t = {
  id : int;
  engine : Engine.t;
  cpu : Cpu.t;
  config : Config.t;
  cls : Detmt_lang.Class_def.t;
  obj : Object_state.t;
  mutexes : Mutex_table.t;
  condvars : Condvar.t;
  trace_rec : Trace.t;
  threads : (int, thread) Hashtbl.t;
  mutable sched : Sched_iface.sched option;
  obs : Recorder.t;
  callbacks : callbacks;
  oracle : Interp.oracle;
  mutable live : bool;
  mutable completed : int;
  mutable ws_commits : int; (* workspace merges at the slot-order barrier *)
  mutable ws_aborts : int; (* discarded speculations (stale or unsafe) *)
  mutable acquisitions : int;
  acq_hashes : (int, int64) Hashtbl.t; (* per-mutex acquisition-order hash *)
  mutable on_quiescent : (completed:int -> unit) option;
      (* fired whenever the last active thread terminates — the replication
         layer hangs divergence checkpoints off this *)
  mutable advance_h : Engine.handler_id;
      (* typed continuations for the op-interpreter hot path: cost charging
         posts (handler, tid) pairs instead of allocating a closure per
         interpreter step *)
  mutable finish_h : Engine.handler_id;
  mutable pool_busy : int;
      (* pool workers currently running a thread (parallel schedulers only;
         observation-only series behind [observing]) *)
}

let sched t =
  match t.sched with
  | Some s -> s
  | None -> invalid_arg "Replica: scheduler not attached"

let thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "Replica %d: unknown thread %d" t.id tid)

(* Call sites guard with [tracing] *before* constructing the event, so a
   disabled trace allocates nothing. *)
let tracing t = t.config.Config.trace

let record t ev = Trace.record_at t.trace_rec ~time:(Engine.now t.engine) ev

(* Observability (the flight recorder) is likewise guarded at every call
   site: [t.obs] defaults to [Recorder.disabled] and must never affect the
   simulation — it only ever reads the clock. *)
let observing t = Recorder.enabled t.obs

let rec_wait_begin t th kind =
  Recorder.wait_begin t.obs ~replica:t.id ~uid:th.tid ~kind
    ~at:(Engine.now t.engine)

let rec_wait_end t th =
  Recorder.wait_end t.obs ~replica:t.id ~uid:th.tid ~at:(Engine.now t.engine)

(* Per-mutex ordering is the determinism property the schedulers guarantee:
   LSA's leader/follower pair legitimately interleaves acquisitions of
   *different* mutexes differently, but the sequence of owners of each single
   mutex must match on every replica.  Owners are identified by the
   request's (client, per-client sequence) pair, not the thread id: tids
   are total-order slot numbers, and nested-invocation messages consume
   slots, so the tid a given request lands on shifts with scheduler timing
   even when the acquisition order is logically identical — the request
   identity is what cross-scheduler differential comparisons need. *)
let record_acquisition t ~mutex ~th =
  t.acquisitions <- t.acquisitions + 1;
  let mix h x =
    Int64.mul (Int64.logxor h (Int64.of_int x)) 0x100000001B3L
  in
  let prev =
    Option.value ~default:0xCBF29CE484222325L
      (Hashtbl.find_opt t.acq_hashes mutex)
  in
  Hashtbl.replace t.acq_hashes mutex
    (mix (mix prev th.req.Request.client) th.req.Request.client_req)

let count_active t =
  Hashtbl.fold
    (fun _ th n -> match th.status with Terminated -> n | _ -> n + 1)
    t.threads 0

let rec advance t th =
  if t.live then
    match th.cont with
    | None ->
      invalid_arg (Printf.sprintf "Replica %d: t%d has no continuation" t.id
                     th.tid)
    | Some k ->
      th.cont <- None;
      th.status <- Running;
      step t th (k ())

(* Charge CPU time and continue; zero-cost steps continue synchronously.
   The continuation is a typed (handler, tid) pair, so charging cost never
   allocates a closure — threads are looked up again at dispatch, which is
   safe because a replica never removes entries from [t.threads]. *)
and after_cost_advance t duration th =
  if duration <= 0.0 then advance t th
  else Cpu.exec_h t.cpu ~duration t.advance_h th.tid

and after_cost_finish t duration th =
  if duration <= 0.0 then finish t th
  else Cpu.exec_h t.cpu ~duration t.finish_h th.tid

and step t th outcome =
  match outcome with
  | Interp.Done -> (
    match th.ws with
    | Some _ ->
      (* Speculation complete: hold the workspace until the scheduler grants
         the slot-order commit barrier.  The reply is built (and the reply
         cost charged) only after a successful merge. *)
      th.status <- Commit_pending;
      if observing t then rec_wait_begin t th Recorder.Commit_hold;
      (sched t).on_ws_event th.tid Sched_iface.Ws_ready
    | None ->
      (* Final computation: build the reply message (section 4.1). *)
      let cost =
        if th.req.Request.dummy then 0.0 else t.config.reply_build_ms
      in
      after_cost_finish t cost th)
  | Interp.Yield (op, k) ->
    th.cont <- Some k;
    handle_op t th op

and finish t th =
  if t.live then begin
    th.status <- Terminated;
    if tracing t then record t (Trace.Thread_end { tid = th.tid });
    if observing t then begin
      Recorder.request_ended t.obs ~replica:t.id ~uid:th.tid
        ~at:(Engine.now t.engine);
      Recorder.incr t.obs "replica.requests_completed"
    end;
    t.completed <- t.completed + 1;
    (sched t).on_terminate th.tid;
    if not th.req.Request.dummy then t.callbacks.send_reply th.req;
    (* Local quiescence: every delivered request has run to completion.  The
       state is now a pure function of the delivered prefix of the total
       order, so it is the sound moment for a divergence checkpoint. *)
    match t.on_quiescent with
    | Some hook when count_active t = 0 -> hook ~completed:t.completed
    | _ -> ()
  end

and handle_op t th op =
  match th.ws with
  | Some w -> handle_spec_op t th w op
  | None -> handle_direct_op t th op

(* Speculative execution: no committed-state side effects and no grant
   traffic through the scheduler.  Locks are virtualised into the workspace
   (same time charge as a direct grant, so a one-worker speculative run
   costs what SEQ costs); operations that cannot be virtualised abort the
   speculation — the thread re-executes directly in slot order. *)
and handle_spec_op t th w op =
  match op with
  | Op.Compute { duration } -> Cpu.exec_h t.cpu ~duration t.advance_h th.tid
  | Op.Lock { syncid = _; mutex } ->
    Workspace.vlock w ~mutex;
    after_cost_advance t t.config.lock_overhead_ms th
  | Op.Unlock { syncid = _; mutex } ->
    Workspace.vunlock w ~mutex;
    after_cost_advance t t.config.lock_overhead_ms th
  | Op.State_update { field; delta } ->
    (* Same system-model check as direct execution, against the virtual
       hold set. *)
    if not (Workspace.holds_any w) then
      invalid_arg
        (Printf.sprintf
           "Replica %d: speculative t%d updates %S without holding a lock"
           t.id th.tid field);
    Workspace.update_state w field delta;
    advance t th
  | Op.Lockinfo _ | Op.Ignore _ | Op.Loop_enter _ | Op.Loop_exit _ ->
    (* Announcements are suppressed while speculating: an aborted request
       re-executes from the top and replays the whole stream, so the
       bookkeeping module must not consume a partial one.  The injected
       call still costs its time. *)
    after_cost_advance t t.config.bookkeeping_overhead_ms th
  | Op.Wait _ | Op.Notify _ | Op.Nested _ -> ws_unsafe_abort t th

(* An operation the workspace cannot virtualise: discard the speculation and
   hand the thread back to the scheduler for direct re-execution.  The
   scheduler re-runs it at its slot-order barrier, so the re-execution reads
   exactly the slot-serial prefix — the abort changes timing, never
   observables. *)
and ws_unsafe_abort t th =
  t.ws_aborts <- t.ws_aborts + 1;
  if tracing t then record t (Trace.Ws_abort { tid = th.tid; conflicts = 0 });
  if observing t then Recorder.incr t.obs "replica.ws.aborts_unsafe";
  th.ws <- None;
  th.cont <- None;
  th.status <- Created;
  (sched t).on_ws_event th.tid Sched_iface.Ws_unsafe

and handle_direct_op t th op =
  let s = sched t in
  match op with
  | Op.Compute { duration } -> Cpu.exec_h t.cpu ~duration t.advance_h th.tid
  | Op.Lock { syncid; mutex } ->
    if Mutex_table.owner t.mutexes ~mutex = Some th.tid then begin
      (* Re-entrant entry: no scheduling decision needed (section 2: binary,
         re-entrant mutexes). *)
      Mutex_table.acquire t.mutexes ~mutex ~tid:th.tid;
      if tracing t then
        record t (Trace.Lock_granted { tid = th.tid; syncid; mutex });
      record_acquisition t ~mutex ~th;
      s.on_acquired th.tid ~syncid ~mutex;
      after_cost_advance t t.config.lock_overhead_ms th
    end
    else begin
      th.status <- Lock_blocked { syncid; mutex };
      if tracing t then
        record t (Trace.Lock_requested { tid = th.tid; syncid; mutex });
      if observing t then
        (* The scheduler may defer the grant even when the mutex is free;
           attribute that stall to policy, not contention. *)
        rec_wait_begin t th
          (if Mutex_table.is_free_for t.mutexes ~mutex ~tid:th.tid then
             Recorder.Lock_policy
           else Recorder.Lock_contention);
      s.on_lock th.tid ~syncid ~mutex
    end
  | Op.Unlock { syncid; mutex } ->
    let freed = Mutex_table.release t.mutexes ~mutex ~tid:th.tid in
    if tracing t then record t (Trace.Unlocked { tid = th.tid; syncid; mutex });
    s.on_unlock th.tid ~syncid ~mutex ~freed;
    after_cost_advance t t.config.lock_overhead_ms th
  | Op.Wait { mutex } ->
    let count = Mutex_table.release_all t.mutexes ~mutex ~tid:th.tid in
    th.status <- Wait_parked { mutex; count };
    Condvar.park t.condvars ~mutex ~tid:th.tid;
    if tracing t then record t (Trace.Wait_begin { tid = th.tid; mutex });
    if observing t then rec_wait_begin t th Recorder.Condvar;
    s.on_wait th.tid ~mutex
  | Op.Notify { mutex; all } ->
    if tracing t then record t (Trace.Notify { tid = th.tid; mutex; all });
    let woken =
      if all then Condvar.notify_all t.condvars ~mutex
      else Option.to_list (Condvar.notify_one t.condvars ~mutex)
    in
    List.iter
      (fun wtid ->
        let w = thread t wtid in
        match w.status with
        | Wait_parked { mutex = m; count } when m = mutex ->
          w.status <- Reacquire_blocked { mutex; count };
          if observing t then begin
            rec_wait_end t w;
            rec_wait_begin t w Recorder.Reacquire
          end;
          s.on_wakeup wtid ~mutex
        | _ ->
          invalid_arg
            (Printf.sprintf "Replica %d: notified t%d is not waiting" t.id
               wtid))
      woken;
    after_cost_advance t t.config.lock_overhead_ms th
  | Op.Nested { service; duration } ->
    let call_index = th.nested_count in
    th.nested_count <- call_index + 1;
    if tracing t then record t (Trace.Nested_begin { tid = th.tid; service });
    if List.mem call_index th.buffered_replies then begin
      (* The reply (broadcast by the invoking replica) overtook us. *)
      th.buffered_replies <-
        List.filter (fun i -> i <> call_index) th.buffered_replies;
      th.status <- Nested_ready { call_index };
      if observing t then rec_wait_begin t th Recorder.Resume_hold;
      s.on_nested_begin th.tid;
      if tracing t then record t (Trace.Nested_end { tid = th.tid; service = 0 });
      s.on_nested_reply th.tid
    end
    else begin
      th.status <- Nested_blocked { call_index };
      if observing t then rec_wait_begin t th Recorder.Nested;
      s.on_nested_begin th.tid;
      t.callbacks.do_nested ~tid:th.tid ~call_index ~service ~duration
    end
  | Op.Lockinfo { syncid; mutex } ->
    s.on_lockinfo th.tid ~syncid ~mutex;
    after_cost_advance t t.config.bookkeeping_overhead_ms th
  | Op.Ignore { syncid } ->
    s.on_ignore th.tid ~syncid;
    after_cost_advance t t.config.bookkeeping_overhead_ms th
  | Op.Loop_enter { loopid } ->
    s.on_loop_enter th.tid ~loopid;
    after_cost_advance t t.config.bookkeeping_overhead_ms th
  | Op.Loop_exit { loopid } ->
    s.on_loop_exit th.tid ~loopid;
    after_cost_advance t t.config.bookkeeping_overhead_ms th
  | Op.State_update { field; delta } ->
    (* System model (section 2): shared state is accessed under a lock. *)
    if not (Mutex_table.holds_any t.mutexes ~tid:th.tid) then
      invalid_arg
        (Printf.sprintf "Replica %d: t%d updates %S without holding a lock"
           t.id th.tid field);
    Object_state.update_state t.obj field delta;
    advance t th

(* ------------------------------------------------------------------ *)
(* Actions offered to the scheduler.                                   *)

let do_start_thread t tid =
  let th = thread t tid in
  (match th.status with
  | Created -> ()
  | _ -> invalid_arg (Printf.sprintf "Replica %d: t%d started twice" t.id tid));
  if tracing t then
    record t (Trace.Thread_start { tid; method_name = th.req.Request.meth });
  if observing t then
    Recorder.request_started t.obs ~replica:t.id ~uid:tid
      ~at:(Engine.now t.engine);
  th.cont <-
    Some
      (Interp.start ~cls:t.cls ~obj:t.obj ?ws:th.ws ~oracle:t.oracle
         ~req:th.req);
  advance t th

(* --------------------------- workspace actions --------------------------- *)

let do_ws_begin t ~tid ~record_acquisitions =
  let th = thread t tid in
  (match th.status with
  | Created -> ()
  | _ ->
    invalid_arg
      (Printf.sprintf "Replica %d: ws_begin for t%d not in Created" t.id tid));
  th.ws <- Some (Workspace.create ~base:t.obj ~record_acquisitions)

(* The slot-order commit barrier.  The scheduler guarantees quiescence for
   this slot (every older request terminated, no direct execution in
   flight), so the committed state the read set is validated against is
   exactly the slot-serial prefix — the verdict, and on failure the direct
   re-execution, are functions of the total order alone. *)
let do_ws_commit t tid =
  let th = thread t tid in
  match (th.status, th.ws) with
  | Commit_pending, Some w -> (
    if observing t then rec_wait_end t th;
    match Workspace.conflicts w with
    | [] ->
      t.ws_commits <- t.ws_commits + 1;
      if tracing t then
        record t
          (Trace.Ws_commit { tid; writes = Workspace.write_set_size w });
      if observing t then begin
        Recorder.incr t.obs "replica.ws.commits";
        Recorder.observe t.obs "replica.ws.write_set"
          (float_of_int (Workspace.write_set_size w));
        Recorder.observe t.obs "replica.ws.read_set"
          (float_of_int (Workspace.read_set_size w))
      end;
      Workspace.commit w;
      (* Replay the virtual acquisitions into the per-mutex order hashes —
         commits happen in slot order, so the projection matches SEQ's. *)
      if Workspace.record_acquisitions w then
        List.iter
          (fun mutex -> record_acquisition t ~mutex ~th)
          (Workspace.acquisition_log w);
      th.ws <- None;
      th.status <- Running;
      after_cost_finish t
        (if th.req.Request.dummy then 0.0 else t.config.reply_build_ms)
        th;
      true
    | conflicts ->
      (* Stale reads: a lower slot committed first — lowest-slot-wins.  The
         [Precise_error] policy additionally surfaces each conflicting
         field through the flight recorder. *)
      t.ws_aborts <- t.ws_aborts + 1;
      if tracing t then
        record t
          (Trace.Ws_abort { tid; conflicts = List.length conflicts });
      if observing t then begin
        Recorder.incr t.obs "replica.ws.aborts_stale";
        if t.config.Config.ws_precise then
          List.iter
            (fun (c : Workspace.conflict) ->
              Recorder.incr t.obs
                (Printf.sprintf "replica.ws.conflict.%s" c.field);
              Logs.warn (fun m ->
                  m "replica %d: workspace conflict t%d %a" t.id tid
                    Workspace.pp_conflict c))
            conflicts
      end;
      th.ws <- None;
      th.cont <- None;
      th.status <- Created;
      false)
  | _ ->
    invalid_arg
      (Printf.sprintf "Replica %d: ws_commit for t%d not commit-pending" t.id
         tid)

let do_grant_lock t tid =
  let th = thread t tid in
  match th.status with
  | Lock_blocked { syncid; mutex } ->
    Mutex_table.acquire t.mutexes ~mutex ~tid;
    if tracing t then record t (Trace.Lock_granted { tid; syncid; mutex });
    if observing t then rec_wait_end t th;
    record_acquisition t ~mutex ~th;
    (sched t).on_acquired tid ~syncid ~mutex;
    after_cost_advance t t.config.lock_overhead_ms th
  | _ ->
    invalid_arg
      (Printf.sprintf "Replica %d: grant_lock for t%d not lock-blocked" t.id
         tid)

let do_grant_reacquire t tid =
  let th = thread t tid in
  match th.status with
  | Reacquire_blocked { mutex; count } ->
    Mutex_table.restore t.mutexes ~mutex ~tid ~count;
    if tracing t then record t (Trace.Wait_end { tid; mutex });
    if observing t then rec_wait_end t th;
    record_acquisition t ~mutex ~th;
    (sched t).on_reacquired tid ~mutex;
    after_cost_advance t t.config.lock_overhead_ms th
  | _ ->
    invalid_arg
      (Printf.sprintf "Replica %d: grant_reacquire for t%d not waiting" t.id
         tid)

let do_resume_nested t tid =
  let th = thread t tid in
  match th.status with
  | Nested_ready _ ->
    if observing t then rec_wait_end t th;
    advance t th
  | _ ->
    invalid_arg
      (Printf.sprintf "Replica %d: resume_nested for t%d with no reply" t.id
         tid)

(* ------------------------------------------------------------------ *)

let create ~engine ~id ~cls ~config ?(oracle = Interp.default_oracle)
    ?(obs = Recorder.disabled) ~callbacks ~make_sched () =
  Config.validate config;
  let t =
    { id; engine; cpu = Cpu.create engine ~cores:config.Config.cores; config;
      cls; obj = Object_state.create cls; mutexes = Mutex_table.create ();
      condvars = Condvar.create (); trace_rec = Trace.create ();
      threads = Hashtbl.create 64; sched = None; obs; callbacks; oracle;
      live = true; completed = 0; ws_commits = 0; ws_aborts = 0;
      acquisitions = 0;
      acq_hashes = Hashtbl.create 64; on_quiescent = None; advance_h = 0;
      finish_h = 0; pool_busy = 0 }
  in
  t.advance_h <- Engine.register_handler engine (fun tid -> advance t (thread t tid));
  t.finish_h <- Engine.register_handler engine (fun tid -> finish t (thread t tid));
  let actions =
    { Sched_iface.replica_id = id;
      start_thread = (fun tid -> do_start_thread t tid);
      grant_lock = (fun tid -> do_grant_lock t tid);
      grant_reacquire = (fun tid -> do_grant_reacquire t tid);
      resume_nested = (fun tid -> do_resume_nested t tid);
      ws_begin =
        (fun ~tid ~record_acquisitions ->
          do_ws_begin t ~tid ~record_acquisitions);
      ws_commit = (fun ~tid -> do_ws_commit t tid);
      mutex_owner = (fun mutex -> Mutex_table.owner t.mutexes ~mutex);
      mutex_free_for =
        (fun ~tid ~mutex -> Mutex_table.is_free_for t.mutexes ~mutex ~tid);
      holds_any_mutex = (fun tid -> Mutex_table.holds_any t.mutexes ~tid);
      request_method = (fun tid -> (thread t tid).req.Request.meth);
      request_arg =
        (fun ~tid i ->
          let args = (thread t tid).req.Request.args in
          if i >= 0 && i < Array.length args then Some args.(i) else None);
      self_mutex = (fun () -> Object_state.self_mutex t.obj);
      pool_dispatch =
        (fun ~worker ~tid:_ ->
          if observing t then begin
            t.pool_busy <- t.pool_busy + 1;
            Recorder.incr t.obs "replica.pool.dispatches";
            Recorder.observe t.obs "replica.pool.busy"
              (float_of_int t.pool_busy);
            Recorder.observe t.obs
              (Printf.sprintf "replica.pool.worker%d" worker)
              1.0
          end);
      pool_complete =
        (fun ~worker ~tid:_ ->
          if observing t then begin
            t.pool_busy <- max 0 (t.pool_busy - 1);
            Recorder.observe t.obs "replica.pool.busy"
              (float_of_int t.pool_busy);
            Recorder.observe t.obs
              (Printf.sprintf "replica.pool.worker%d" worker)
              0.0
          end);
      broadcast_control = (fun c -> callbacks.broadcast_control c);
      inject_dummy = (fun () -> callbacks.inject_dummy ());
      schedule = (fun ~delay f -> Engine.schedule engine ~delay f);
      now = (fun () -> Engine.now engine);
      is_leader = (fun () -> callbacks.is_leader ());
      obs }
  in
  let sched = make_sched actions in
  (* With a profiler attached, wrap the decision module so every callback
     is counted and timed under its registry name (observation-only). *)
  let sched =
    match Recorder.profiler obs with
    | Some p -> Sched_iface.profiled p sched
    | None -> sched
  in
  t.sched <- Some sched;
  t

let id t = t.id

let deliver_request t req =
  if t.live then begin
    let tid = req.Request.uid in
    if Hashtbl.mem t.threads tid then
      invalid_arg (Printf.sprintf "Replica %d: duplicate request %d" t.id tid);
    Hashtbl.add t.threads tid
      { tid; req; cont = None; status = Created; nested_count = 0;
        buffered_replies = []; ws = None };
    if observing t then begin
      Recorder.request_delivered t.obs ~replica:t.id ~uid:tid
        ~meth:req.Request.meth ~client:req.Request.client
        ~client_req:req.Request.client_req ~sent_at:req.Request.sent_at
        ~at:(Engine.now t.engine);
      Recorder.incr t.obs "replica.requests_delivered"
    end;
    (sched t).on_request tid
  end

let nested_reply t ~tid ~call_index =
  if t.live then begin
    let th = thread t tid in
    match th.status with
    | Nested_blocked { call_index = pending } when pending = call_index ->
      th.status <- Nested_ready { call_index };
      if observing t then begin
        rec_wait_end t th;
        rec_wait_begin t th Recorder.Resume_hold
      end;
      if tracing t then record t (Trace.Nested_end { tid; service = 0 });
      (sched t).on_nested_reply tid
    | _ -> th.buffered_replies <- call_index :: th.buffered_replies
  end

let deliver_control t ~sender control =
  if t.live then begin
    if tracing t then
      record t
        (match control with
        | Sched_iface.Lsa_grant { grant_seq; mutex; tid } ->
          Trace.Control_delivered { sender; grant_seq; mutex; tid }
        | Sched_iface.View_change -> Trace.View_change { sender });
    (sched t).on_control ~sender control
  end

let set_alive t b = t.live <- b

let alive t = t.live

let scheduler_name t = (sched t).name

let state_fingerprint t = Object_state.fingerprint t.obj

let state_snapshot t = Object_state.state_snapshot t.obj

let trace t = t.trace_rec

let object_state t = t.obj

let completed_requests t = t.completed

let active_threads t = count_active t

let thread_status t tid =
  Option.map (fun th -> th.status) (Hashtbl.find_opt t.threads tid)

let threads_overview t =
  Hashtbl.fold
    (fun tid th acc ->
      match th.status with Terminated -> acc | s -> (tid, s) :: acc)
    t.threads []
  |> List.sort compare

let lock_holders t = Mutex_table.holders t.mutexes

let set_quiescent_hook t hook = t.on_quiescent <- Some hook

let sched_snapshot t = (sched t).snapshot ()

let sched_restore t kv = (sched t).restore kv

let cpu_busy_ms t = Cpu.busy_time t.cpu

let lock_acquisitions t = t.acquisitions

let ws_commits t = t.ws_commits

let ws_aborts t = t.ws_aborts

let mutex_acquisition_fingerprint t =
  let entries =
    Hashtbl.fold (fun m h acc -> (m, h) :: acc) t.acq_hashes []
    |> List.sort compare
  in
  let mix h x = Int64.mul (Int64.logxor h x) 0x100000001B3L in
  List.fold_left
    (fun acc (m, h) -> mix (mix acc (Int64.of_int m)) h)
    0xCBF29CE484222325L entries
