(** Replica runtime configuration.

    The overheads model the cost of the application-level scheduler itself:
    every intercepted lock/unlock pays [lock_overhead_ms]; every injected
    announcement pays [bookkeeping_overhead_ms] — the knob behind the
    section 5 question "at which point performance decreases again due to
    runtime overhead" (experiment E8). *)

type t = {
  cores : int;  (** simulated CPU cores per replica *)
  lock_overhead_ms : float;  (** cost of each scheduler.lock/unlock call *)
  bookkeeping_overhead_ms : float;
      (** cost of each lockInfo/ignore/loop-marker call *)
  reply_build_ms : float;
      (** the final computation: building the reply message (section 4.1) *)
  pds_batch : int;  (** PDS: worker slots per scheduling round *)
  pds_dummy_timeout_ms : float;
      (** PDS: delay before dummy messages fill an incomplete batch *)
  trace : bool;  (** record the scheduling trace *)
  ws_precise : bool;
      (** workspace merge policy ([Precise_error]): [false] resolves
          write-write overlaps lowest-slot-wins silently, [true] additionally
          reports each conflicting field through the flight recorder *)
}

val default : t

val validate : t -> unit
(** @raise Invalid_argument on nonsensical values. *)

val pp : Format.formatter -> t -> unit
