open Detmt_lang

type outcome = Done | Yield of Op.t * (unit -> outcome)

type oracle = string -> Request.t -> int

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let default_oracle name (req : Request.t) =
  (* Deterministic across replicas (depends only on the call name and the
     request), but opaque to static analysis.  Keyed by the request's
     (client, per-client sequence) identity, not its [uid]: the uid is the
     total-order slot, and nested-invocation messages consume slots, so the
     slot a given request lands on shifts with scheduler timing — the
     oracle's answer must survive cross-scheduler differential runs. *)
  let h = Hashtbl.hash (name, req.client, req.client_req) in
  h mod 97

type env = {
  cls : Class_def.t;
  obj : Object_state.t;
  ws : Workspace.t option;
      (* speculative execution: object-state reads and writes go through the
         thread's copy-on-write workspace instead of the committed state *)
  oracle : oracle;
  req : Request.t;
  locals : (string, int) Hashtbl.t; (* locals hold mutex ids *)
}

(* Object-state access, routed through the workspace when speculating.
   Globals and the self monitor are immutable, so they read through either
   way. *)

let obj_mutex_field env f =
  match env.ws with
  | Some w -> Workspace.mutex_field w f
  | None -> Object_state.mutex_field env.obj f

let obj_set_mutex_field env f v =
  match env.ws with
  | Some w -> Workspace.set_mutex_field w f v
  | None -> Object_state.set_mutex_field env.obj f v

let obj_state_field env f =
  match env.ws with
  | Some w -> Workspace.state_field w f
  | None -> Object_state.state_field env.obj f

let arg env i =
  let args = env.req.args in
  if i < 0 || i >= Array.length args then
    error "%s: argument %d out of range (request has %d)" env.req.meth i
      (Array.length args)
  else args.(i)

let arg_mutex env i =
  match arg env i with
  | Ast.Vmutex m -> m
  | Ast.Vint m -> m
  | Ast.Vbool _ -> error "%s: arg%d is a bool, mutex expected" env.req.meth i

let arg_int env i =
  match arg env i with
  | Ast.Vint n | Ast.Vmutex n -> n
  | Ast.Vbool _ -> error "%s: arg%d is a bool, int expected" env.req.meth i

let arg_bool env i =
  match arg env i with
  | Ast.Vbool b -> b
  | Ast.Vint _ | Ast.Vmutex _ ->
    error "%s: arg%d is not a bool" env.req.meth i

let local env v =
  match Hashtbl.find_opt env.locals v with
  | Some m -> m
  | None -> error "%s: local %S read before assignment" env.req.meth v

let eval_mexpr env = function
  | Ast.Mconst m -> m
  | Ast.Marg i -> arg_mutex env i
  | Ast.Mlocal v -> local env v
  | Ast.Mfield f -> obj_mutex_field env f
  | Ast.Mglobal g -> Object_state.global env.obj g
  | Ast.Mcall name -> env.oracle name env.req

let resolve_param env = function
  | Ast.Sp_this -> Object_state.self_mutex env.obj
  | Ast.Sp_arg i -> arg_mutex env i
  | Ast.Sp_local v -> local env v
  | Ast.Sp_field f -> obj_mutex_field env f
  | Ast.Sp_global g -> Object_state.global env.obj g
  | Ast.Sp_call name -> env.oracle name env.req

let rec eval_cond env = function
  | Ast.Cconst b -> b
  | Ast.Carg_bool i -> arg_bool env i
  | Ast.Carg_int_eq (i, k) -> arg_int env i = k
  | Ast.Cfield_eq_arg (f, i) -> obj_mutex_field env f = arg_mutex env i
  | Ast.Cnot c -> not (eval_cond env c)

let resolve_dur env = function
  | Ast.Fixed ms -> ms
  | Ast.Arg_dur i -> float_of_int (arg_int env i)

let resolve_count env = function
  | Ast.Cfixed n -> n
  | Ast.Carg i -> arg_int env i

(* CPS execution: [exec env body k] runs [body] then continues with [k]. *)
let rec exec env (body : Ast.block) (k : unit -> outcome) : outcome =
  match body with
  | [] -> k ()
  | stmt :: rest -> exec_stmt env stmt (fun () -> exec env rest k)

and exec_stmt env stmt k =
  match stmt with
  | Ast.Compute d -> Yield (Op.Compute { duration = resolve_dur env d }, k)
  | Ast.Assign (v, e) ->
    Hashtbl.replace env.locals v (eval_mexpr env e);
    k ()
  | Ast.Assign_field (f, e) ->
    obj_set_mutex_field env f (eval_mexpr env e);
    k ()
  | Ast.Sync (p, _) | Ast.Lock_acquire p | Ast.Lock_release p ->
    error "%s: raw synchronisation on %s — program was not transformed"
      env.req.meth
      (Format.asprintf "%a" Pretty.sync_param p)
  | Ast.Wait p -> Yield (Op.Wait { mutex = resolve_param env p }, k)
  | Ast.Wait_until { param; field; min } ->
    (* Java guarded-wait idiom: re-check the condition after every wake-up,
       waiting again while it does not hold. *)
    let mutex = resolve_param env param in
    let rec check () =
      if obj_state_field env field >= min then k ()
      else Yield (Op.Wait { mutex }, check)
    in
    check ()
  | Ast.Notify { param; all } ->
    Yield (Op.Notify { mutex = resolve_param env param; all }, k)
  | Ast.Nested { service; duration } ->
    Yield (Op.Nested { service; duration = resolve_dur env duration }, k)
  | Ast.State_update (field, delta) ->
    Yield (Op.State_update { field; delta }, k)
  | Ast.If (c, a, b) ->
    if eval_cond env c then exec env a k else exec env b k
  | Ast.Loop { kind; count; body } ->
    let n = resolve_count env count in
    let n = if kind = Ast.Do_while then max 1 n else n in
    let rec iter i () = if i >= n then k () else exec env body (iter (i + 1)) in
    iter 0 ()
  | Ast.Call name -> exec_method env name k
  | Ast.Virtual_call { candidates; selector } -> (
    let idx = arg_int env selector in
    match List.nth_opt candidates idx with
    | Some name -> exec_method env name k
    | None ->
      error "%s: virtual dispatch selector %d out of range (%d candidates)"
        env.req.meth idx (List.length candidates))
  | Ast.Sched_lock (syncid, p) ->
    Yield (Op.Lock { syncid; mutex = resolve_param env p }, k)
  | Ast.Sched_unlock (syncid, p) ->
    Yield (Op.Unlock { syncid; mutex = resolve_param env p }, k)
  | Ast.Lockinfo (syncid, p) ->
    Yield (Op.Lockinfo { syncid; mutex = resolve_param env p }, k)
  | Ast.Ignore_sync syncid -> Yield (Op.Ignore { syncid }, k)
  | Ast.Loop_enter loopid -> Yield (Op.Loop_enter { loopid }, k)
  | Ast.Loop_exit loopid -> Yield (Op.Loop_exit { loopid }, k)

and exec_method env name k =
  match Class_def.find_method env.cls name with
  | None -> error "%s: call to undefined method %S" env.req.meth name
  | Some def ->
    (* Each dynamic call gets a fresh local frame (Java semantics); request
       arguments are shared with the caller. *)
    let frame = { env with locals = Hashtbl.create 8 } in
    exec frame def.body k

let start ~cls ~obj ?ws ?(oracle = default_oracle) ~req () =
  if req.Request.dummy then Done
  else begin
    let env = { cls; obj; ws; oracle; req; locals = Hashtbl.create 8 } in
    match Class_def.find_method cls req.meth with
    | None -> error "request for undefined method %S" req.meth
    | Some def ->
      if not def.exported then
        error "request for non-exported method %S" req.meth
      else exec env def.body (fun () -> Done)
  end
