(* The state of one replica's copy of the replicated object: mutex-reference
   fields, integer state fields and globals.  [fingerprint] folds the state
   into a hash compared across replicas by the consistency checker. *)

type t = {
  self_mutex : int; (* the monitor of [this] *)
  mutex_fields : (string, int) Hashtbl.t;
  state_fields : (string, int) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
}

let default_self_mutex = 1_000_000

let create ?(self_mutex = default_self_mutex) (cls : Detmt_lang.Class_def.t) =
  let of_assoc l =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) l;
    tbl
  in
  { self_mutex;
    mutex_fields = of_assoc cls.mutex_fields;
    state_fields = of_assoc (List.map (fun f -> (f, 0)) cls.state_fields);
    globals = of_assoc cls.globals }

let self_mutex t = t.self_mutex

let get tbl what f =
  match Hashtbl.find_opt tbl f with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Object_state: no %s %S" what f)

let mutex_field t f = get t.mutex_fields "mutex field" f

let set_mutex_field t f v =
  ignore (mutex_field t f);
  Hashtbl.replace t.mutex_fields f v

let global t g = get t.globals "global" g

let state_field t f = get t.state_fields "state field" f

let update_state t f delta =
  Hashtbl.replace t.state_fields f (state_field t f + delta)

(* Install a checkpointed value (passive replication). *)
let set_state t f v =
  ignore (state_field t f);
  Hashtbl.replace t.state_fields f v

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let fingerprint t =
  let h = ref 0xCBF29CE484222325L in
  let mix x = h := Int64.mul (Int64.logxor !h (Int64.of_int x)) 0x100000001B3L in
  let mix_string s = String.iter (fun c -> mix (Char.code c)) s in
  let fold (k, v) =
    mix_string k;
    mix v
  in
  List.iter fold (sorted t.state_fields);
  List.iter fold (sorted t.mutex_fields);
  !h

let state_snapshot t = sorted t.state_fields

let mutex_field_snapshot t = sorted t.mutex_fields

let pp ppf t =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%s=%d " k v)
    (sorted t.state_fields)
