(** Copy-on-write object workspace for speculative request execution.

    A speculative thread reads and writes this view instead of the committed
    {!Object_state}: reads page fields in lazily (recording the observed
    value), writes go to a private overlay, and lock operations are
    virtualised.  At the deterministic slot-order commit barrier the replica
    validates the read set value-by-value against the committed state
    ({!conflicts}) and either merges the overlay ({!commit}) or discards the
    workspace so the thread re-executes directly — lowest-slot-wins.  See
    DESIGN.md "Deterministic workspaces". *)

type t

type conflict = {
  field : string;
  read_value : int;  (** the value this speculation observed *)
  committed_value : int;  (** the value at the commit barrier *)
}
(** One stale read detected at validation — the typed report surfaced
    through the flight recorder under the [Precise_error] merge policy
    ([Config.ws_precise]). *)

val pp_conflict : Format.formatter -> conflict -> unit

val create : base:Object_state.t -> record_acquisitions:bool -> t
(** [record_acquisitions] asks the replica to replay the virtual acquisition
    log into its per-mutex acquisition-order hashes at commit time (wss —
    fingerprints match SEQ); [false] keeps speculative executions out of the
    lock-machinery world entirely (cgs+ws). *)

val record_acquisitions : t -> bool

(** {2 Interpreter-facing state access} *)

val state_field : t -> string -> int

val update_state : t -> string -> int -> unit

val mutex_field : t -> string -> int

val set_mutex_field : t -> string -> int -> unit

val global : t -> string -> int

val self_mutex : t -> int

(** {2 Virtual locking} *)

val vlock : t -> mutex:int -> unit
(** Re-entrant; every call (re-entrant ones included) is appended to the
    acquisition log, matching what direct execution records. *)

val vunlock : t -> mutex:int -> unit
(** @raise Invalid_argument when the mutex is not virtually held. *)

val holds_any : t -> bool

val acquisition_log : t -> int list
(** Virtually acquired mutexes in acquisition order. *)

val acquisitions : t -> int

(** {2 Validation and merge} *)

val conflicts : t -> conflict list
(** Value-based read validation against the committed state, sorted by
    field.  Empty means the speculation is consistent with the slot-serial
    prefix and may merge. *)

val commit : t -> unit
(** Apply the write overlay to the committed state.  Only call after
    {!conflicts} returned []. *)

val read_set_size : t -> int

val write_set_size : t -> int
