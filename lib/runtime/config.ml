(* Replica runtime configuration.

   Overheads model the cost of the application-level scheduler itself: every
   intercepted lock/unlock pays [lock_overhead_ms]; every injected
   announcement call pays [bookkeeping_overhead_ms] — the knob behind the
   section 5 question "at which point performance decreases again due to
   runtime overhead". *)

type t = {
  cores : int; (* simulated CPU cores per replica *)
  lock_overhead_ms : float; (* cost of each scheduler.lock/unlock call *)
  bookkeeping_overhead_ms : float;
      (* cost of each lockInfo/ignore/loop-marker call *)
  reply_build_ms : float;
      (* final computation: building the reply message (section 4.1) *)
  pds_batch : int; (* PDS: threads per scheduling round *)
  pds_dummy_timeout_ms : float;
      (* PDS: delay before dummy messages fill an incomplete batch *)
  trace : bool; (* record the scheduling trace *)
  ws_precise : bool;
      (* workspace merge policy: [false] resolves write-write overlaps
         lowest-slot-wins silently (the losing speculation aborts and
         re-executes in slot order); [true] additionally surfaces each
         conflicting field as a typed report through the flight recorder *)
}

let default =
  { cores = 4; lock_overhead_ms = 0.02; bookkeeping_overhead_ms = 0.01;
    reply_build_ms = 0.1; pds_batch = 4; pds_dummy_timeout_ms = 5.0;
    trace = true; ws_precise = false }

let validate t =
  if t.cores < 1 then invalid_arg "Config: cores must be >= 1";
  if t.lock_overhead_ms < 0.0 then invalid_arg "Config: negative overhead";
  if t.bookkeeping_overhead_ms < 0.0 then
    invalid_arg "Config: negative bookkeeping overhead";
  if t.reply_build_ms < 0.0 then invalid_arg "Config: negative reply time";
  if t.pds_batch < 1 then invalid_arg "Config: pds_batch must be >= 1";
  if t.pds_dummy_timeout_ms <= 0.0 then
    invalid_arg "Config: pds_dummy_timeout_ms must be positive"

let pp ppf t =
  Format.fprintf ppf
    "cores=%d lock=%.3fms bk=%.3fms reply=%.3fms pds_batch=%d" t.cores
    t.lock_overhead_ms t.bookkeeping_overhead_ms t.reply_build_ms t.pds_batch
