(** Binary, reentrant mutexes (the Java monitor model of section 2).

    The table only tracks ownership; admission policy and queueing live in the
    scheduler.  Misuse (acquiring a held mutex, releasing a foreign one)
    raises — a scheduler granting an illegal acquisition is a bug and must
    fail loudly. *)

type t

val create : unit -> t

val owner : t -> mutex:int -> int option
(** Owning thread, if any. *)

val hold_count : t -> mutex:int -> int
(** Reentrancy depth; 0 when free. *)

val is_free_for : t -> mutex:int -> tid:int -> bool
(** Free, or already owned by [tid] (reentrant entry). *)

val acquire : t -> mutex:int -> tid:int -> unit
(** @raise Invalid_argument when the mutex is held by another thread. *)

val release : t -> mutex:int -> tid:int -> bool
(** Decrement the reentrancy count; returns [true] when the mutex became
    free.  @raise Invalid_argument when [tid] does not own the mutex. *)

val release_all : t -> mutex:int -> tid:int -> int
(** Full release for [wait]: drops the whole reentrancy count and returns it
    so it can be restored on re-acquisition.
    @raise Invalid_argument when [tid] does not own the mutex. *)

val restore : t -> mutex:int -> tid:int -> count:int -> unit
(** Re-acquisition after [wait]: restore the saved count.
    @raise Invalid_argument when the mutex is not free. *)

val holders : t -> (int * int) list
(** All currently held mutexes as [(mutex, owner)] pairs, sorted — deadlock
    diagnostics. *)

val held_by : t -> tid:int -> int list
(** Mutexes currently owned by the thread, sorted. *)

val holds_any : t -> tid:int -> bool
