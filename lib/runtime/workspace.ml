(* A copy-on-write view of one replica's object state, for speculative
   ("workspace") execution of a single request.

   A thread dispatched speculatively never touches the committed
   {!Object_state} or the real {!Mutex_table}: reads page the touched field
   lazily into a read set (recording the value observed), writes go to a
   private overlay, and lock/unlock operations are virtualised into a
   per-workspace hold-count table plus an acquisition log.  At the
   deterministic slot-order commit barrier the scheduler asks the replica to
   {!conflicts}-check the workspace — value-based validation of every read
   against the committed state — and either merges the overlay ({!commit})
   or discards the whole workspace so the thread re-executes directly.

   The merge rule is deterministic: commits are attempted in total-order
   slot order at quiescent points (all older requests terminated, no direct
   execution in flight), so non-overlapping write sets merge silently and a
   write-write or read-write overlap always resolves lowest-slot-wins — the
   lower slot's commit is already part of the committed state the higher
   slot validates against, and the loser re-executes at its own slot.  See
   DESIGN.md "Deterministic workspaces".

   Blind increments are special-cased: a [State_update] on a field the
   speculation has never read is a commutative delta — it yields no value,
   so nothing downstream can observe the counter — and is accumulated in a
   delta table instead of the read-validated overlay.  At the barrier the
   delta is added to the committed value, which is exactly what slot-serial
   re-execution would compute, so blind increments never abort a
   speculation.  The first read of such a field folds its pending delta
   into the value world (paging in a validated read first), after which the
   field is ordinary read-validated state again. *)

type conflict = {
  field : string;
  read_value : int; (* the value this speculation observed *)
  committed_value : int; (* the value at the commit barrier *)
}

let pp_conflict ppf c =
  Format.fprintf ppf "%s: read %d, committed %d" c.field c.read_value
    c.committed_value

type t = {
  base : Object_state.t;
  record_acquisitions : bool;
      (* replay the virtual acquisition log into the replica's per-mutex
         acquisition-order hashes at commit (wss: makes the fingerprints
         match SEQ); [false] keeps speculations out of the lock-machinery
         world entirely (cgs+ws) *)
  state_reads : (string, int) Hashtbl.t; (* state field -> paged-in value *)
  state_over : (string, int) Hashtbl.t; (* state field -> written value *)
  state_deltas : (string, int) Hashtbl.t;
      (* never-read fields -> accumulated blind increment (commutative) *)
  mutex_reads : (string, int) Hashtbl.t; (* mutex field -> paged-in value *)
  mutex_over : (string, int) Hashtbl.t;
  vlocks : (int, int) Hashtbl.t; (* mutex -> virtual hold count *)
  mutable acq_rev : int list; (* acquisition log, newest first *)
  mutable acq_count : int;
}

let create ~base ~record_acquisitions =
  { base; record_acquisitions; state_reads = Hashtbl.create 8;
    state_over = Hashtbl.create 8; state_deltas = Hashtbl.create 8;
    mutex_reads = Hashtbl.create 8; mutex_over = Hashtbl.create 8;
    vlocks = Hashtbl.create 8; acq_rev = []; acq_count = 0 }

let record_acquisitions t = t.record_acquisitions

(* ------------------------------- reads --------------------------------- *)

(* Overlay first, then the read cache, then lazy page-in from the committed
   state.  The page-in value is what validation later compares against. *)
let cow_read reads over committed f =
  match Hashtbl.find_opt over f with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt reads f with
    | Some v -> v
    | None ->
      let v = committed f in
      Hashtbl.replace reads f v;
      v)

let state_field t f =
  match Hashtbl.find_opt t.state_over f with
  | Some v -> v
  | None ->
    let committed =
      match Hashtbl.find_opt t.state_reads f with
      | Some v -> v
      | None ->
        let v = Object_state.state_field t.base f in
        Hashtbl.replace t.state_reads f v;
        v
    in
    (match Hashtbl.find_opt t.state_deltas f with
    | Some d ->
      (* First read of a blindly-incremented field: fold the pending delta
         into the value world.  The paged-in read above pins the committed
         value, so from here on the field is ordinary validated state. *)
      Hashtbl.remove t.state_deltas f;
      let v = committed + d in
      Hashtbl.replace t.state_over f v;
      v
    | None -> committed)

let mutex_field t f =
  cow_read t.mutex_reads t.mutex_over (Object_state.mutex_field t.base) f

(* Globals and the self monitor are immutable — read straight through. *)
let global t g = Object_state.global t.base g

let self_mutex t = Object_state.self_mutex t.base

(* ------------------------------- writes -------------------------------- *)

(* A blind increment of a never-read field stays a commutative delta (it
   yields no value, so the speculation cannot observe the counter); once
   the field is in the value world, increments go through it. *)
let update_state t f delta =
  if Hashtbl.mem t.state_over f || Hashtbl.mem t.state_reads f then
    Hashtbl.replace t.state_over f (state_field t f + delta)
  else
    Hashtbl.replace t.state_deltas f
      (delta + Option.value ~default:0 (Hashtbl.find_opt t.state_deltas f))

let set_mutex_field t f v =
  ignore (mutex_field t f) (* page in: validates existence, records a read *);
  Hashtbl.replace t.mutex_over f v

(* --------------------------- virtual locking --------------------------- *)

let vlock t ~mutex =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.vlocks mutex) in
  Hashtbl.replace t.vlocks mutex (n + 1);
  (* Log every acquisition, re-entrant ones included — direct execution
     records re-entrant entries too, and the replay must match it. *)
  t.acq_rev <- mutex :: t.acq_rev;
  t.acq_count <- t.acq_count + 1

let vunlock t ~mutex =
  match Hashtbl.find_opt t.vlocks mutex with
  | Some n when n > 0 -> Hashtbl.replace t.vlocks mutex (n - 1)
  | Some _ | None ->
    invalid_arg
      (Printf.sprintf "Workspace.vunlock: mutex %d not virtually held" mutex)

let holds_any t = Hashtbl.fold (fun _ n acc -> acc || n > 0) t.vlocks false

let acquisition_log t = List.rev t.acq_rev

let acquisitions t = t.acq_count

(* --------------------------- validate + merge -------------------------- *)

let read_set_size t = Hashtbl.length t.state_reads + Hashtbl.length t.mutex_reads

let write_set_size t =
  Hashtbl.length t.state_over + Hashtbl.length t.state_deltas
  + Hashtbl.length t.mutex_over

(* Value-based validation: every paged-in read must still match the
   committed state.  Called only at the quiescent slot-order barrier, where
   the committed state is exactly the slot-serial prefix — so the verdict
   (and on failure, the deterministic re-execution) is a function of the
   total order alone, never of when the speculation happened to read. *)
let conflicts t =
  let check committed tbl acc =
    Hashtbl.fold
      (fun field read_value acc ->
        let committed_value = committed field in
        if committed_value = read_value then acc
        else { field; read_value; committed_value } :: acc)
      tbl acc
  in
  []
  |> check (Object_state.state_field t.base) t.state_reads
  |> check (Object_state.mutex_field t.base) t.mutex_reads
  |> List.sort compare (* deterministic report order *)

let commit t =
  Hashtbl.iter (fun f v -> Object_state.set_state t.base f v) t.state_over;
  (* Blind increments merge additively: committed + delta is exactly the
     slot-serial re-execution value. *)
  Hashtbl.iter
    (fun f d -> Object_state.update_state t.base f d)
    t.state_deltas;
  Hashtbl.iter (fun f v -> Object_state.set_mutex_field t.base f v) t.mutex_over
