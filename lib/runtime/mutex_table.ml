type entry = { mutable owner : int; mutable count : int }

type t = (int, entry) Hashtbl.t

let create () : t = Hashtbl.create 64

let entry t mutex = Hashtbl.find_opt t mutex

let owner t ~mutex =
  match entry t mutex with
  | Some e when e.count > 0 -> Some e.owner
  | Some _ | None -> None

let hold_count t ~mutex =
  match entry t mutex with Some e -> e.count | None -> 0

let is_free_for t ~mutex ~tid =
  match owner t ~mutex with None -> true | Some o -> o = tid

let acquire t ~mutex ~tid =
  match entry t mutex with
  | Some e when e.count > 0 ->
    if e.owner = tid then e.count <- e.count + 1
    else
      invalid_arg
        (Printf.sprintf
           "Mutex_table.acquire: mutex %d granted to t%d but held by t%d"
           mutex tid e.owner)
  | Some e ->
    e.owner <- tid;
    e.count <- 1
  | None -> Hashtbl.add t mutex { owner = tid; count = 1 }

let owned_entry t ~mutex ~tid ~what =
  match entry t mutex with
  | Some e when e.count > 0 && e.owner = tid -> e
  | Some _ | None ->
    invalid_arg
      (Printf.sprintf "Mutex_table.%s: t%d does not own mutex %d" what tid
         mutex)

let release t ~mutex ~tid =
  let e = owned_entry t ~mutex ~tid ~what:"release" in
  e.count <- e.count - 1;
  e.count = 0

let release_all t ~mutex ~tid =
  let e = owned_entry t ~mutex ~tid ~what:"release_all" in
  let count = e.count in
  e.count <- 0;
  count

let restore t ~mutex ~tid ~count =
  if count <= 0 then invalid_arg "Mutex_table.restore: non-positive count";
  match entry t mutex with
  | Some e when e.count > 0 ->
    invalid_arg
      (Printf.sprintf "Mutex_table.restore: mutex %d is held by t%d" mutex
         e.owner)
  | Some e ->
    e.owner <- tid;
    e.count <- count
  | None -> Hashtbl.add t mutex { owner = tid; count }

let holders t =
  Hashtbl.fold
    (fun mutex e acc -> if e.count > 0 then (mutex, e.owner) :: acc else acc)
    t []
  |> List.sort compare

let held_by t ~tid =
  Hashtbl.fold
    (fun mutex e acc -> if e.count > 0 && e.owner = tid then mutex :: acc
      else acc)
    t []
  |> List.sort compare

let holds_any t ~tid = held_by t ~tid <> []
