(** Small-step interpreter for transformed method bodies.

    A thread is a continuation producing an {!outcome}: either the method has
    finished, or it yields a synchronisation-relevant {!Op.t} together with
    the continuation to run once the replica engine has completed that
    operation.  The interpreter itself is pure control flow — all policy
    (granting locks, charging time) lives in the replica and the scheduler.

    Programs must be instrumented ({!Detmt_transform.Transform}); a raw
    [Sync] statement is a hard error. *)

type outcome = Done | Yield of Op.t * (unit -> outcome)

type oracle = string -> Request.t -> int
(** Resolution of spontaneous [Sp_call] parameters: must be a deterministic
    function of the call name and the request. *)

val default_oracle : oracle
(** Hashes the call name and request uid into a small mutex-id range —
    deterministic across replicas but unpredictable to the analysis, exactly
    like a real opaque call. *)

exception Runtime_error of string

val start :
  cls:Detmt_lang.Class_def.t ->
  obj:Object_state.t ->
  ?ws:Workspace.t ->
  ?oracle:oracle ->
  req:Request.t ->
  unit ->
  outcome
(** [start ~cls ~obj ~req ()] begins interpreting the request's start method.
    Dummy requests complete immediately.  With [?ws], object-state reads and
    writes are routed through the copy-on-write workspace (speculative
    execution); [obj] is then only the page-in source behind it.
    @raise Runtime_error on ill-typed programs (bad argument index, raw
    [Sync], undefined method, ...). *)
