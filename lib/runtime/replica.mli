(** The per-replica execution engine.

    Owns the object state, the mutex table, the condition variables, the
    simulated CPU cores and one interpreter thread per delivered request.
    Every synchronisation-relevant operation is routed through the attached
    scheduler exactly as the FTflex source transformation routes every
    [synchronized] statement through the scheduling module. *)

type thread_status =
  | Created  (** delivered, not yet started by the scheduler *)
  | Running  (** executing (or computing on a CPU) *)
  | Lock_blocked of { syncid : int; mutex : int }
  | Wait_parked of { mutex : int; count : int }
  | Reacquire_blocked of { mutex : int; count : int }
  | Nested_blocked of { call_index : int }
  | Nested_ready of { call_index : int }
  | Commit_pending
      (** speculation finished, its workspace held until the scheduler
          grants the slot-order commit barrier ([ws_commit]); still counts
          as an active thread *)
  | Terminated

type callbacks = {
  send_reply : Request.t -> unit;
  do_nested :
    tid:int -> call_index:int -> service:int -> duration:float -> unit;
      (** perform the nested invocation; the replication layer answers every
          replica through {!nested_reply} *)
  broadcast_control : Sched_iface.control -> unit;
  inject_dummy : unit -> unit;
  is_leader : unit -> bool;
}

type t

val create :
  engine:Detmt_sim.Engine.t ->
  id:int ->
  cls:Detmt_lang.Class_def.t ->
  config:Config.t ->
  ?oracle:Interp.oracle ->
  ?obs:Detmt_obs.Recorder.t ->
  callbacks:callbacks ->
  make_sched:(Sched_iface.actions -> Sched_iface.sched) ->
  unit ->
  t
(** [cls] must be an instrumented class ({!Detmt_transform.Transform}).
    [obs] is the flight recorder (default {!Detmt_obs.Recorder.disabled});
    it is strictly read-only with respect to the execution. *)

val id : t -> int

val deliver_request : t -> Request.t -> unit
(** Called by the replication layer in total order. *)

val nested_reply : t -> tid:int -> call_index:int -> unit
(** Deliver a nested-invocation reply.  Replies arriving before the thread
    reaches the call are buffered. *)

val deliver_control : t -> sender:int -> Sched_iface.control -> unit

val set_alive : t -> bool -> unit
(** Failure injection: a dead replica silently drops everything. *)

val alive : t -> bool

val scheduler_name : t -> string

val state_fingerprint : t -> int64

val state_snapshot : t -> (string * int) list

val trace : t -> Detmt_sim.Trace.t

val object_state : t -> Object_state.t

val completed_requests : t -> int

val active_threads : t -> int
(** Threads delivered but not yet terminated. *)

val thread_status : t -> int -> thread_status option

val threads_overview : t -> (int * thread_status) list
(** All non-terminated threads with their status, sorted by tid — deadlock
    diagnostics. *)

val lock_holders : t -> (int * int) list
(** Currently held mutexes as [(mutex, owner)] pairs, sorted. *)

val set_quiescent_hook : t -> (completed:int -> unit) -> unit
(** Install a hook fired each time the last active thread terminates (local
    quiescence).  The replication layer uses it to emit divergence-detector
    checkpoints; [completed] is the number of completed requests. *)

val sched_snapshot : t -> (string * int) list
(** Scheduler bookkeeping that must survive a state transfer
    ({!Sched_iface.sched.snapshot}). *)

val sched_restore : t -> (string * int) list -> unit

val cpu_busy_ms : t -> float

val lock_acquisitions : t -> int

val ws_commits : t -> int
(** Speculative workspaces merged at their slot-order barrier. *)

val ws_aborts : t -> int
(** Discarded speculations — stale reads at the commit barrier or an
    unvirtualisable operation (wait/notify/nested).  Abort counts are a
    performance metric, not an observable: they may legitimately differ
    across replicas and perturbations while replies, states and acquisition
    fingerprints agree. *)

val mutex_acquisition_fingerprint : t -> int64
(** Hash of the per-mutex acquisition order (the sequence of owners of every
    mutex, combined across mutexes) — replicas running the same deterministic
    scheduler must agree.  Deliberately insensitive to the global interleaving
    of acquisitions of different mutexes, which LSA's leader/follower pair is
    allowed to differ on. *)
