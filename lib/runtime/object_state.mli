(** The state of one replica's copy of the replicated object: mutex-reference
    fields, integer state fields and globals.

    {!fingerprint} folds the state into a hash compared across replicas by
    the consistency checker; it must be identical on every replica after the
    same request sequence under a deterministic scheduler. *)

type t

val default_self_mutex : int

val create : ?self_mutex:int -> Detmt_lang.Class_def.t -> t

val self_mutex : t -> int
(** The mutex id of the object's own monitor ([this]). *)

val mutex_field : t -> string -> int
(** @raise Invalid_argument for undeclared fields. *)

val set_mutex_field : t -> string -> int -> unit

val global : t -> string -> int

val state_field : t -> string -> int

val update_state : t -> string -> int -> unit
(** [update_state t f d] performs [f += d]. *)

val set_state : t -> string -> int -> unit
(** Install a checkpointed value (passive replication). *)

val fingerprint : t -> int64

val state_snapshot : t -> (string * int) list
(** Sorted state-field values. *)

val mutex_field_snapshot : t -> (string * int) list
(** Sorted mutex-reference-field values — part of a state-transfer snapshot
    alongside {!state_snapshot}. *)

val pp : Format.formatter -> t -> unit
