open Detmt_lang
open Detmt_analysis

let basic cls =
  Wellformed.check_exn cls;
  let ids = Syncid.create () in
  let methods =
    List.map
      (fun (m : Class_def.method_def) ->
        { m with body = Inject.basic_body ~ids m.body })
      cls.Class_def.methods
  in
  { cls with methods }

let predictive ?(repository = false) cls =
  Wellformed.check_exn cls;
  let ids = Syncid.create () in
  let cg = Callgraph.build cls in
  let summaries = ref [] in
  let instrument_start (m : Class_def.method_def) =
    if Callgraph.in_recursion cg m.name then begin
      summaries :=
        Predict.fallback_summary ~mname:m.name ~reason:"recursive call graph"
        :: !summaries;
      { m with body = Inject.basic_body ~ids m.body }
    end
    else
      match Inline.inline_block ~repository cls m.body with
      | exception Inline.Recursive cycle ->
        summaries :=
          Predict.fallback_summary ~mname:m.name
            ~reason:("recursion through " ^ cycle)
          :: !summaries;
        { m with body = Inject.basic_body ~ids m.body }
      | inlined ->
        let { Inject.body; sids; loops } =
          Inject.instrument_method ~ids ~repository ~cls inlined
        in
        summaries :=
          { Predict.mname = m.name; fallback = false; fallback_reason = None;
            sids; loops;
            uses_condvars = Predict.block_uses_condvars inlined }
          :: !summaries;
        { m with body }
  in
  let methods =
    List.map
      (fun (m : Class_def.method_def) ->
        if m.exported then instrument_start m
        else { m with body = Inject.basic_body ~ids m.body })
      cls.Class_def.methods
  in
  ( { cls with methods },
    { Predict.class_name = cls.cname; methods = List.rev !summaries } )
