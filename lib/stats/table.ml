type t = {
  title : string;
  columns : string list;
  mutable rev_rows : string list list;
}

let create ~title ~columns = { title; columns; rev_rows = [] }

let add_row t cells = t.rev_rows <- cells :: t.rev_rows

let add_float_row t ~label values =
  add_row t (label :: List.map (Printf.sprintf "%.2f") values)

let rows t = List.rev t.rev_rows

let columns t = t.columns

let title t = t.title

let cell_width t =
  let widths = Array.of_list (List.map String.length t.columns) in
  let fit cells =
    List.iteri
      (fun i cell ->
        if i < Array.length widths then
          widths.(i) <- max widths.(i) (String.length cell))
      cells
  in
  List.iter fit (rows t);
  widths

let pad width s = Printf.sprintf "%*s" width s

let pp ppf t =
  let widths = cell_width t in
  let render cells =
    let padded =
      List.mapi
        (fun i cell ->
          if i < Array.length widths then pad widths.(i) cell else cell)
        cells
    in
    String.concat "  " padded
  in
  let header = render t.columns in
  Format.fprintf ppf "%s@." t.title;
  Format.fprintf ppf "%s@." header;
  Format.fprintf ppf "%s@." (String.make (String.length header) '-');
  List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) (rows t)

(* RFC 4180: a cell containing a separator, a quote or a line break (LF or
   CR — bare carriage returns split rows in most readers too) is wrapped in
   double quotes, with embedded quotes doubled. *)
let csv_escape cell =
  if
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  then "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line t.columns :: List.map line (rows t)) ^ "\n"
