open Detmt_runtime

type report = {
  replicas : int list;
  state_hashes : (int * int64) list;
  acquisition_hashes : (int * int64) list;
  trace_hashes : (int * int64) list;
  states_agree : bool;
  acquisitions_agree : bool;
  traces_agree : bool;
  completed : (int * int) list;
}

let all_equal = function
  | [] | [ _ ] -> true
  | (_, h) :: rest -> List.for_all (fun (_, h') -> Int64.equal h h') rest

let check rs =
  let state_hashes =
    List.map (fun r -> (Replica.id r, Replica.state_fingerprint r)) rs
  in
  let acquisition_hashes =
    List.map
      (fun r -> (Replica.id r, Replica.mutex_acquisition_fingerprint r))
      rs
  in
  let trace_hashes =
    List.map
      (fun r -> (Replica.id r, Detmt_sim.Trace.fingerprint (Replica.trace r)))
      rs
  in
  { replicas = List.map Replica.id rs;
    state_hashes; acquisition_hashes; trace_hashes;
    states_agree = all_equal state_hashes;
    acquisitions_agree = all_equal acquisition_hashes;
    traces_agree = all_equal trace_hashes;
    completed = List.map (fun r -> (Replica.id r, Replica.completed_requests r)) rs }

let consistent r = r.states_agree && r.acquisitions_agree && r.traces_agree

let pp ppf r =
  let verdict b = if b then "agree" else "DIVERGE" in
  Format.fprintf ppf "replicas %s: state %s, acquisitions %s, traces %s"
    (String.concat "," (List.map string_of_int r.replicas))
    (verdict r.states_agree)
    (verdict r.acquisitions_agree)
    (verdict r.traces_agree)

(* ------------------------------------------------------------------ *)
(* Runtime divergence detection.

   [check] compares replicas once, after the run; the monitor compares
   checkpoint streams *during* the run, so a divergence is pinned to the
   first checkpoint sequence where two replicas disagree — long before the
   damage is buried under later requests.  Replicas emit a checkpoint at
   every local quiescence point, keyed by a sequence number comparable
   across replicas (completed requests, offset by the recovery base). *)

type divergence = {
  seq : int;
  replica_a : int;
  hash_a : int64;
  replica_b : int;
  hash_b : int64;
  differing_fields : (string * int * int) list;
      (* field, value at [replica_a], value at [replica_b] *)
}

type checkpoint = { cp_replica : int; cp_hash : int64; cp_state : (string * int) list }

type monitor = {
  table : (int, checkpoint list) Hashtbl.t; (* seq -> observations *)
  mutable compared : int;
  mutable divergences : divergence list; (* newest first *)
  mutable on_divergence : (divergence -> unit) option;
}

let create_monitor () =
  { table = Hashtbl.create 256; compared = 0; divergences = [];
    on_divergence = None }

let set_on_divergence m f = m.on_divergence <- Some f

let diff_fields a b =
  (* Both snapshots come from the same class, so the sorted key sets match;
     pair defensively anyway. *)
  List.filter_map
    (fun (k, va) ->
      match List.assoc_opt k b with
      | Some vb when vb <> va -> Some (k, va, vb)
      | _ -> None)
    a

let observe m ~replica ~seq ~hash ~state =
  let prior = Option.value ~default:[] (Hashtbl.find_opt m.table seq) in
  List.iter
    (fun cp ->
      m.compared <- m.compared + 1;
      if not (Int64.equal cp.cp_hash hash) then begin
        let d =
          { seq; replica_a = cp.cp_replica; hash_a = cp.cp_hash;
            replica_b = replica; hash_b = hash;
            differing_fields = diff_fields cp.cp_state state }
        in
        m.divergences <- d :: m.divergences;
        Option.iter (fun f -> f d) m.on_divergence
      end)
    prior;
  Hashtbl.replace m.table seq
    ({ cp_replica = replica; cp_hash = hash; cp_state = state } :: prior)

let checkpoints_compared m = m.compared

let first_divergence m =
  match m.divergences with
  | [] -> None
  | ds ->
    Some
      (List.fold_left (fun best d -> if d.seq < best.seq then d else best)
         (List.hd ds) (List.tl ds))

let pp_divergence ppf d =
  Format.fprintf ppf
    "divergence at checkpoint %d: replica %d (%Lx) vs replica %d (%Lx)%s"
    d.seq d.replica_a d.hash_a d.replica_b d.hash_b
    (match d.differing_fields with
    | [] -> ""
    | fs ->
      "; fields "
      ^ String.concat ", "
          (List.map
             (fun (f, va, vb) -> Printf.sprintf "%s: %d vs %d" f va vb)
             fs))
