open Detmt_sim
open Detmt_gcs
module Recorder = Detmt_obs.Recorder

(* Elastic reconfiguration over the {!Shard} substrate: a dynamic set of
   {!Active} groups behind an epoch-versioned routing table, with three
   totally-ordered operations — shard split, shard merge, scheduler hot
   swap — and a deterministic autoscaling controller.

   The object (mutex) space is hashed onto a fixed set of SLOTS
   ({!Shard.route} over [slots], not over the group count), and an epoch is
   an assignment slot -> group.  Splits and merges move slots between
   groups, so the hash placement of an object never changes — only its
   slot's owner does.  Every transition runs the same protocol:

   1. a barrier is stamped into the coordinator group's total order
      ({!Active.order_barrier}), then spread to every other live group, so
      each replica observes the epoch change at a slot of its own order;
   2. admission freezes: new submissions (including client retries) queue;
   3. the in-flight window drains — every pending request (cross-group
      two-phase deliveries included) is answered and every live group
      reaches quiescence, the same invariant {!Active.recover_replica}'s
      donor sampling relies on;
   4. the command applies (groups created / retired / rebuilt, state moved
      via {!Active.bootstrap} / {!Active.absorb_state} /
      {!Active.merge_dedups}), the epoch increments, and every live group's
      membership is re-tagged ({!Detmt_gcs.Group.set_epoch});
   5. admission thaws and the held queue flushes in FIFO order, re-resolving
      every route under the new epoch.

   Every step is driven by seeded simulation events, so two runs of the same
   configuration transition at identical virtual times with identical
   barrier sequence numbers — which {!Active.barrier_fingerprints} and
   {!fingerprint} witness. *)

type command =
  | Split of int
  | Merge of { from_g : int; into : int }
  | Hot_swap of { group : int; scheduler : string }

let command_to_string = function
  | Split g -> Printf.sprintf "split(%d)" g
  | Merge { from_g; into } -> Printf.sprintf "merge(%d->%d)" from_g into
  | Hot_swap { group; scheduler } ->
    Printf.sprintf "hot-swap(%d:%s)" group scheduler

type transition = {
  tr_epoch : int;
  tr_at_ms : float;
  tr_barrier_seq : int;
  tr_command : command;
  tr_groups : int; (* live groups after the transition *)
}

type params = {
  initial_groups : int;
  slots : int;
  max_groups : int;
  base : Active.params;
  drain_poll_ms : float;
  drain_timeout_ms : float;
}

let default_params =
  { initial_groups = 1; slots = 64; max_groups = 16;
    base = Active.default_params; drain_poll_ms = 0.5;
    drain_timeout_ms = 2000.0 }

type policy = {
  interval_ms : float;
  split_above : int;
  merge_below : int;
  max_live : int;
  min_live : int;
  hot_swap : bool;
}

let default_policy =
  { interval_ms = 5.0; split_above = 24; merge_below = 2; max_live = 8;
    min_live = 1; hot_swap = false }

type group = {
  index : int; (* stable group id; never reused *)
  mutable sys : Active.t; (* current incarnation (hot swap replaces it) *)
  mutable live : bool;
  mutable inflight : int; (* requests latched on this group right now *)
}

(* A cross-group request waits for every involved group to answer; the
   latch fires the client callback exactly once (same protocol as
   {!Shard}).  [l_sent_at] is the original submission (or hold-queue entry)
   time, so response times honestly include reconfiguration stalls. *)
type latch = {
  mutable remaining : int;
  l_sent_at : float;
  l_on_reply : response_ms:float -> unit;
}

type held = {
  h_client : int;
  h_client_req : int;
  h_meth : string;
  h_args : Detmt_lang.Ast.value array;
  h_on_reply : response_ms:float -> unit;
  h_at : float; (* admission time: queue delay counts into the response *)
}

type t = {
  engine : Engine.t;
  params : params;
  obs : Recorder.t;
  cls : Detmt_lang.Class_def.t;
  plans : (string, Shard.plan) Hashtbl.t;
  owner : int array; (* slot -> live group index; the epoch's routing table *)
  mutable groups : group array; (* by index; retired entries stay in place *)
  mutable retired : Active.t list; (* merged-away + pre-swap incarnations *)
  mutable incarnations : int; (* disjoint replica-id windows, never reused *)
  mutable epoch : int;
  mutable transitions : transition list; (* newest first *)
  (* transition machinery *)
  mutable frozen : bool;
  mutable busy : bool;
  held : held Queue.t;
  commands : command Queue.t;
  mutable aborted : int; (* drains that timed out; command dropped *)
  (* client-side bookkeeping *)
  pending : (int * int, latch) Hashtbl.t;
  answered : (int * int, unit) Hashtbl.t;
  response_times : Detmt_stats.Summary.t;
  mutable replies : int;
  mutable reply_times : float list; (* newest first *)
  mutable fast_path : int;
  mutable cross_path : int;
  mutable held_total : int; (* submissions that queued behind a barrier *)
  (* autoscaling *)
  mutable policy : policy option;
  mutable armed : bool;
  mutable tick_h : Engine.handler_id;
      (* typed autoscale timer; reads [policy] at fire time *)
  adaptive_summary : Detmt_analysis.Predict.class_summary option Lazy.t;
  on_group : (index:int -> Active.t -> unit) option;
}

let live_groups t =
  Array.to_list t.groups |> List.filter (fun g -> g.live)

let live_count t = List.length (live_groups t)

let coordinator t =
  match live_groups t with
  | g :: _ -> g
  | [] -> assert false (* at least one group is always live *)

let slots_of t index =
  let acc = ref [] in
  for s = Array.length t.owner - 1 downto 0 do
    if t.owner.(s) = index then acc := s :: !acc
  done;
  !acc

(* Group [index]'s current incarnation gets a fresh disjoint replica-id
   window and its own fault seed; incarnation 0 (the initial group 0) keeps
   the base seed and ids untouched, so a 1-group epoch-0 system is
   byte-for-byte the unsharded {!Active} path. *)
let fresh_active t ~index ~scheduler =
  let inc = t.incarnations in
  t.incarnations <- inc + 1;
  (* The pool width belongs to the scheduler family, not the group: a swap
     onto a serial scheduler retires the pool (workers = 1), a swap back
     onto a parallel one restores the originally configured width.  Read
     the registry spec's [parallel] flag, not [parallel_decisions] — that
     list deliberately excludes the adaptive meta-scheduler, which would
     strand a swapped group on a clamped 1-worker pool. *)
  let workers =
    if (Detmt_sched.Registry.find_exn scheduler).Detmt_sched.Registry.parallel
    then t.params.base.Active.workers
    else 1
  in
  let base =
    { t.params.base with
      Active.shard = index; scheduler; workers;
      replica_base = inc * t.params.base.Active.replicas;
      faults = Option.map (Shard.salt_faults inc) t.params.base.Active.faults }
  in
  let sys = Active.create ~obs:t.obs ~engine:t.engine ~cls:t.cls ~params:base () in
  Group.set_epoch (Active.group sys) t.epoch;
  (match t.on_group with Some f -> f ~index sys | None -> ());
  sys

let create ?(obs = Recorder.disabled) ?on_group ~engine ~cls
    ~(params : params) () =
  if params.slots < 1 then invalid_arg "Reconfig.create: slots < 1";
  if params.initial_groups < 1 then
    invalid_arg "Reconfig.create: initial_groups < 1";
  if params.initial_groups > params.max_groups then
    invalid_arg "Reconfig.create: initial_groups > max_groups";
  if params.initial_groups > params.slots then
    invalid_arg "Reconfig.create: more initial groups than slots";
  if params.base.Active.replica_base <> 0 then
    invalid_arg "Reconfig.create: base.replica_base must be 0";
  let scheduler = params.base.Active.scheduler in
  let t =
    { engine; params; obs; cls; plans = Hashtbl.create 8;
      owner = Array.init params.slots (fun s -> s mod params.initial_groups);
      groups = [||]; retired = []; incarnations = 0; epoch = 0;
      transitions = []; frozen = false; busy = false; held = Queue.create ();
      commands = Queue.create (); aborted = 0;
      pending = Hashtbl.create 256; answered = Hashtbl.create 256;
      response_times = Detmt_stats.Summary.create (); replies = 0;
      reply_times = []; fast_path = 0; cross_path = 0; held_total = 0;
      policy = None; armed = false; tick_h = 0;
      adaptive_summary =
        lazy (Some (snd (Detmt_transform.Transform.predictive cls)));
      on_group }
  in
  t.groups <-
    Array.init params.initial_groups (fun index ->
        { index; sys = fresh_active t ~index ~scheduler; live = true;
          inflight = 0 });
  (* Deterministic transformation: every group computed the same summary;
     group 0's copy drives the routing plans (as in {!Shard}). *)
  let plan_src = Shard.plan_table ~summary:(Active.summary t.groups.(0).sys) cls in
  Hashtbl.iter (fun k v -> Hashtbl.replace t.plans k v) plan_src;
  t

(* ------------------------------- routing ----------------------------- *)

let find_group t index =
  if index < 0 || index >= Array.length t.groups then None
  else Some t.groups.(index)

let group_of t index =
  match find_group t index with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Reconfig: no group %d" index)

let route_of t m = t.owner.(Shard.route ~shards:t.params.slots m)

(* The live group indices a request involves under the current epoch —
   a pure function of (plan, arguments, owner table). *)
let group_set t ~meth ~args =
  match live_groups t with
  | [ g ] -> [ g.index ]
  | live -> (
    match Shard.plan_mutexes t.plans ~meth ~args with
    | None -> List.map (fun g -> g.index) live
    | Some [] -> [ (coordinator t).index ]
    | Some ms -> List.sort_uniq compare (List.map (route_of t) ms))

let client_arrival t =
  Engine.now t.engine +. t.params.base.Active.client_latency_ms

let note_reply t ~response_ms =
  t.replies <- t.replies + 1;
  Detmt_stats.Summary.add t.response_times response_ms;
  t.reply_times <- client_arrival t :: t.reply_times;
  if Recorder.enabled t.obs then begin
    Recorder.incr t.obs "reconfig.replies";
    Recorder.observe t.obs "reconfig.response_ms" response_ms
  end

(* ---------------------- submission & transitions --------------------- *)

let rec dispatch t ~sent_at ~client ~client_req ~meth ~args ~on_reply =
  let key = (client, client_req) in
  match group_set t ~meth ~args with
  | [] -> assert false
  | coordinator :: followers as involved ->
    (* The latch survives client retries: a resubmission reuses it (each
       group answers a key exactly once, so a second latch could never
       drain).  Pending latches never straddle an epoch — the drain step
       empties [pending] before any transition applies — so the involved
       set resolved here is stable for the latch's whole lifetime. *)
    let latch =
      match Hashtbl.find_opt t.pending key with
      | Some l -> l
      | None ->
        let l =
          { remaining = List.length involved; l_sent_at = sent_at;
            l_on_reply = on_reply }
        in
        Hashtbl.replace t.pending key l;
        List.iter
          (fun gi ->
            let g = group_of t gi in
            g.inflight <- g.inflight + 1;
            if Recorder.enabled t.obs then
              Recorder.incr t.obs (Printf.sprintf "reconfig.%d.requests" gi))
          involved;
        if followers = [] then t.fast_path <- t.fast_path + 1
        else t.cross_path <- t.cross_path + 1;
        l
    in
    let group_reply g ~response_ms:_ =
      g.inflight <- g.inflight - 1;
      latch.remaining <- latch.remaining - 1;
      if latch.remaining = 0 then begin
        Hashtbl.remove t.pending key;
        Hashtbl.replace t.answered key ();
        let response_ms = client_arrival t -. latch.l_sent_at in
        note_reply t ~response_ms;
        latch.l_on_reply ~response_ms
      end
    in
    (* Phase 1 orders the request on the coordinator (smallest involved
       group); phase 2 submits to the rest the moment it holds a slot in
       the coordinator's total order — {!Shard}'s two-phase protocol over
       the epoch's group set. *)
    let co = group_of t coordinator in
    Active.submit co.sys ~client ~client_req ~meth ~args
      ~on_reply:(group_reply co)
      ~on_ordered:(fun ~seq:_ ->
        List.iter
          (fun gi ->
            let g = group_of t gi in
            Active.submit g.sys ~client ~client_req ~meth ~args
              ~on_reply:(group_reply g))
          followers)

and submit t ~client ~client_req ~meth ~args ~on_reply =
  let key = (client, client_req) in
  if not (Hashtbl.mem t.answered key) then begin
    if t.frozen then begin
      (* Admission is frozen behind a reconfiguration barrier: hold the
         submission (retries included) and re-resolve its route under the
         new epoch at flush time. *)
      Queue.add
        { h_client = client; h_client_req = client_req; h_meth = meth;
          h_args = args; h_on_reply = on_reply;
          h_at = Engine.now t.engine }
        t.held;
      t.held_total <- t.held_total + 1;
      if Recorder.enabled t.obs then begin
        Recorder.incr t.obs "reconfig.held";
        Recorder.set_gauge t.obs "reconfig.held_backlog"
          (float_of_int (Queue.length t.held))
      end
    end
    else
      dispatch t ~sent_at:(Engine.now t.engine) ~client ~client_req ~meth
        ~args ~on_reply;
    maybe_arm t
  end

(* ----- the transition protocol: barrier, freeze, drain, apply, thaw ----- *)

and begin_transition t cmd =
  t.busy <- true;
  let epoch' = t.epoch + 1 in
  let label = command_to_string cmd in
  let co = coordinator t in
  Active.order_barrier co.sys ~epoch:epoch' ~label
    ~on_ordered:(fun ~seq ->
      (* Spread the barrier so every replica of every live group observes
         the transition at a slot of its own total order. *)
      List.iter
        (fun g ->
          if g.index <> co.index then
            Active.order_barrier g.sys ~epoch:epoch' ~label
              ~on_ordered:(fun ~seq:_ -> ()))
        (live_groups t);
      t.frozen <- true;
      let deadline = Engine.now t.engine +. t.params.drain_timeout_ms in
      drain t ~deadline ~cmd ~barrier_seq:seq)

and drain t ~deadline ~cmd ~barrier_seq =
  if
    Hashtbl.length t.pending = 0
    && List.for_all (fun g -> Active.quiescent g.sys) (live_groups t)
  then apply t ~cmd ~barrier_seq
  else if Engine.now t.engine >= deadline then begin
    (* The in-flight window would not drain (a stuck workload): drop the
       command rather than wedge the run.  Deterministic — the deadline is
       virtual time. *)
    t.aborted <- t.aborted + 1;
    Logs.warn (fun m ->
        m "reconfig: drain for %s timed out; command dropped"
          (command_to_string cmd));
    finish t
  end
  else
    Engine.schedule t.engine ~delay:t.params.drain_poll_ms (fun () ->
        drain t ~deadline ~cmd ~barrier_seq)

and apply t ~cmd ~barrier_seq =
  let applied =
    match cmd with
    | Split gi -> apply_split t gi
    | Merge { from_g; into } -> apply_merge t ~from_g ~into
    | Hot_swap { group; scheduler } -> apply_swap t ~gi:group ~scheduler
  in
  if applied then begin
    t.epoch <- t.epoch + 1;
    List.iter
      (fun g -> Group.set_epoch (Active.group g.sys) t.epoch)
      (live_groups t);
    t.transitions <-
      { tr_epoch = t.epoch; tr_at_ms = Engine.now t.engine;
        tr_barrier_seq = barrier_seq; tr_command = cmd;
        tr_groups = live_count t }
      :: t.transitions;
    if Recorder.enabled t.obs then begin
      Recorder.incr t.obs "reconfig.transitions";
      Recorder.set_gauge t.obs "reconfig.epoch" (float_of_int t.epoch);
      Recorder.set_gauge t.obs "reconfig.groups"
        (float_of_int (live_count t));
      Recorder.series t.obs ~name:"reconfig.epoch"
        ~at:(Engine.now t.engine) ~value:(float_of_int t.epoch);
      Recorder.series t.obs ~name:"reconfig.groups"
        ~at:(Engine.now t.engine) ~value:(float_of_int (live_count t))
    end
  end
  else t.aborted <- t.aborted + 1;
  finish t

(* Split: the donor keeps every even-positioned slot it owns, a brand-new
   group takes the odd ones.  The new group bootstraps from the donor's
   quiescent snapshot — dedup ledger, mutex fields, per-offset aliveness —
   and starts its own per-group counters at zero (folded back at merge). *)
and apply_split t gi =
  match find_group t gi with
  | None -> false
  | Some g ->
  let owned = slots_of t gi in
  if (not g.live) || List.length owned < 2 || live_count t >= t.params.max_groups
  then false
  else begin
    let index = Array.length t.groups in
    let sys =
      fresh_active t ~index ~scheduler:(Active.scheduler_name g.sys)
    in
    Active.bootstrap sys ~from:g.sys ~carry_state:false;
    t.groups <-
      Array.append t.groups [| { index; sys; live = true; inflight = 0 } |];
    List.iteri (fun k s -> if k mod 2 = 1 then t.owner.(s) <- index) owned;
    if Recorder.enabled t.obs then Recorder.incr t.obs "reconfig.splits";
    true
  end

(* Merge: the survivor absorbs the retiring group's state-field totals and
   its dedup ledger, then inherits its slots; the retired group stays in
   place, quiescent, for post-run consistency checks. *)
and apply_merge t ~from_g ~into =
  if from_g = into then false
  else
    match (find_group t from_g, find_group t into) with
    | None, _ | _, None -> false
    | Some d, Some s ->
    if (not d.live) || not s.live then false
    else begin
      Active.absorb_state s.sys ~delta:(Active.donor_state d.sys);
      Active.merge_dedups s.sys ~from:d.sys;
      Array.iteri
        (fun slot o -> if o = from_g then t.owner.(slot) <- into)
        t.owner;
      d.live <- false;
      t.retired <- d.sys :: t.retired;
      if Recorder.enabled t.obs then Recorder.incr t.obs "reconfig.merges";
      true
    end

(* Hot swap: rebuild the group's decision module by reincarnating the whole
   group under the new scheduler, transplanting the quiescent substrate
   state (object fields, mutex fields, dedup ledger, completed counts,
   aliveness).  At quiescence no scheduler bookkeeping is live, so a fresh
   decision module is the carried-over state — identically on every
   replica. *)
and apply_swap t ~gi ~scheduler =
  match (find_group t gi, Detmt_sched.Registry.find scheduler) with
  | None, _ | _, None -> false
  | Some g, Some _ ->
  if (not g.live) || Active.scheduler_name g.sys = scheduler then false
  else begin
    let sys = fresh_active t ~index:gi ~scheduler in
    Active.bootstrap sys ~from:g.sys ~carry_state:true;
    t.retired <- g.sys :: t.retired;
    g.sys <- sys;
    if Recorder.enabled t.obs then Recorder.incr t.obs "reconfig.swaps";
    true
  end

and finish t =
  t.frozen <- false;
  t.busy <- false;
  (* Thaw: flush the held queue in FIFO order; every entry re-resolves its
     route under the new epoch, and entries answered in the meantime (a
     retry whose original was in the drained window) are dropped by the
     answered check. *)
  let flush = Queue.create () in
  Queue.transfer t.held flush;
  Queue.iter
    (fun h ->
      if not (Hashtbl.mem t.answered (h.h_client, h.h_client_req)) then
        dispatch t ~sent_at:h.h_at ~client:h.h_client
          ~client_req:h.h_client_req ~meth:h.h_meth ~args:h.h_args
          ~on_reply:h.h_on_reply)
    flush;
  match Queue.take_opt t.commands with
  | Some cmd -> begin_transition t cmd
  | None -> ()

(* ------------------------------ commands ----------------------------- *)

and validate t = function
  | Split gi ->
    let g = group_of t gi in
    if not g.live then invalid_arg "Reconfig: split of a retired group";
    if live_count t >= t.params.max_groups then
      invalid_arg "Reconfig: split would exceed max_groups";
    if List.length (slots_of t gi) < 2 then
      invalid_arg "Reconfig: split of a single-slot group"
  | Merge { from_g; into } ->
    if from_g = into then invalid_arg "Reconfig: merge of a group into itself";
    if not (group_of t from_g).live then
      invalid_arg "Reconfig: merge from a retired group";
    if not (group_of t into).live then
      invalid_arg "Reconfig: merge into a retired group"
  | Hot_swap { group; scheduler } ->
    if not (group_of t group).live then
      invalid_arg "Reconfig: hot swap of a retired group";
    ignore (Detmt_sched.Registry.find_exn scheduler)

and request t cmd =
  (* Commands queued behind a running transition are validated only when
     they reach the front (inside [apply], which treats a command the world
     has outrun as an aborted no-op) — the requester cannot know what the
     group set will look like by then. *)
  if t.busy then Queue.add cmd t.commands
  else begin
    validate t cmd;
    begin_transition t cmd
  end

(* ---------------------------- autoscaling ---------------------------- *)

(* A deterministic controller over the per-group queue depths the router
   already maintains (and exports as detmt.obs gauges): split the hottest
   group above the high watermark, merge cold groups below the low one,
   and consult the {!Detmt_sched.Adaptive} recommendation table to hot-swap
   the hottest group's scheduler mid-run.  Ticks re-arm only while work is
   in flight, so the controller never keeps the simulation alive. *)

and decide t p =
  let live = live_groups t in
  let hottest =
    List.fold_left
      (fun best g ->
        match best with
        | Some b when b.inflight >= g.inflight -> best
        | _ -> Some g)
      None live
  in
  match hottest with
  | None -> None
  | Some hot ->
    if
      hot.inflight >= p.split_above
      && live_count t < min p.max_live t.params.max_groups
      && List.length (slots_of t hot.index) >= 2
    then Some (Split hot.index)
    else begin
      let cold = List.filter (fun g -> g.inflight <= p.merge_below) live in
      match (cold, live_count t > p.min_live) with
      | c0 :: _ :: _, true ->
        (* fold the highest-indexed cold group into the lowest-indexed one *)
        let from_g =
          List.fold_left (fun acc g -> max acc g.index) c0.index cold
        in
        if from_g <> c0.index then
          Some (Merge { from_g; into = c0.index })
        else None
      | _ ->
        if
          p.hot_swap && hot.inflight > p.merge_below
          && Lazy.force t.adaptive_summary <> None
        then begin
          (* Hot-swap targets stay serial: the group keeps its configured
             pool width of 1, and no contention window has been measured. *)
          let want =
            Detmt_sched.Adaptive.recommend ~workers:1 ~conflict_rate:1.0
              ~summary:(Lazy.force t.adaptive_summary)
              ~avg_concurrency:(float_of_int hot.inflight)
          in
          if want <> Active.scheduler_name hot.sys then
            Some (Hot_swap { group = hot.index; scheduler = want })
          else None
        end
        else None
    end

and tick t p =
  if Recorder.enabled t.obs then begin
    List.iter
      (fun g ->
        Recorder.set_gauge t.obs
          (Printf.sprintf "reconfig.%d.queue_depth" g.index)
          (float_of_int g.inflight))
      (live_groups t);
    Recorder.set_gauge t.obs "reconfig.groups" (float_of_int (live_count t))
  end;
  if (not t.busy) && not t.frozen then begin
    match decide t p with Some cmd -> request t cmd | None -> ()
  end;
  let inflight_total =
    List.fold_left (fun n g -> n + g.inflight) 0 (live_groups t)
  in
  if
    inflight_total > 0 || t.busy || t.frozen
    || Queue.length t.held > 0
    || Queue.length t.commands > 0
  then Engine.post t.engine ~delay:p.interval_ms t.tick_h 0
  else t.armed <- false

and maybe_arm t =
  match t.policy with
  | Some p when not t.armed ->
    t.armed <- true;
    Engine.post t.engine ~delay:p.interval_ms t.tick_h 0
  | _ -> ()

let request_at t ~at cmd =
  (* A time-scheduled command races every transition before it: by [at] the
     group it names may not exist yet (a split still draining) or may be
     gone.  Like a queued command, it aborts instead of raising. *)
  Engine.schedule_at t.engine ~time:at (fun () ->
      match request t cmd with
      | () -> ()
      | exception Invalid_argument reason ->
        t.aborted <- t.aborted + 1;
        Logs.warn (fun m ->
            m "reconfig: scheduled %s dropped: %s" (command_to_string cmd)
              reason))

let set_autoscale t p =
  if p.interval_ms <= 0.0 then invalid_arg "Reconfig: interval_ms <= 0";
  if t.tick_h = 0 then
    t.tick_h <-
      Engine.register_handler t.engine (fun _ ->
          match t.policy with Some p -> tick t p | None -> ());
  t.policy <- Some p

(* -------------------------- faults & recovery ------------------------ *)

(* Kills and recoveries address (group, offset) and resolve the group's
   {e current} incarnation at fire time, so a recovery scheduled before a
   hot swap lands on whichever incarnation serves the group when it fires —
   the swap-racing-recovery chaos scenario. *)

let kill_replica t ~group ~offset =
  let g = group_of t group in
  Active.kill_replica g.sys
    ((Active.params g.sys).Active.replica_base + offset)

let recover_replica t ~group ~offset ~at =
  Engine.schedule_at t.engine ~time:at (fun () ->
      let g = group_of t group in
      Active.recover_replica g.sys
        ((Active.params g.sys).Active.replica_base + offset))

(* ------------------------------ clients ------------------------------ *)

let diagnose t ~stuck =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Client.stuck_header ~stuck);
  Buffer.add_string buf
    (Printf.sprintf "\n epoch %d%s" t.epoch
       (if t.frozen then " (frozen behind a reconfiguration barrier)" else ""));
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "\n group %d (%s):" g.index
           (Active.scheduler_name g.sys));
      Buffer.add_string buf (Client.active_diagnostics g.sys))
    (live_groups t);
  Buffer.contents buf

let run_clients_stats t ~clients ~requests_per_client ~gen ?think_time_ms
    ?seed ?until_ms ?timeout_ms ?max_retries () =
  Client.run_clients_stats_on ~engine:t.engine
    ~submit:(fun ~client ~client_req ~meth ~args ~on_reply ->
      submit t ~client ~client_req ~meth ~args ~on_reply)
    ~diagnose:(fun ~stuck -> diagnose t ~stuck)
    ~clients ~requests_per_client ~gen ?think_time_ms ?seed ?until_ms
    ?timeout_ms ?max_retries ()

let run_clients t ~clients ~requests_per_client ~gen ?think_time_ms ?seed
    ?until_ms () =
  ignore
    (run_clients_stats t ~clients ~requests_per_client ~gen ?think_time_ms
       ?seed ?until_ms ())

(* ----------------------------- accessors ----------------------------- *)

let engine t = t.engine

let epoch t = t.epoch

let transitions t = List.rev t.transitions

let live_systems t = List.map (fun g -> g.sys) (live_groups t)

let group_count t = live_count t

let groups_ever t = live_systems t @ List.rev t.retired

let replies_received t = t.replies

let reply_times t = List.rev t.reply_times

let response_times t = t.response_times

let fast_path_requests t = t.fast_path

let cross_group_requests t = t.cross_path

let held_requests t = t.held_total

let aborted_transitions t = t.aborted

let splits t =
  List.length
    (List.filter (fun tr -> match tr.tr_command with Split _ -> true | _ -> false)
       t.transitions)

let merges t =
  List.length
    (List.filter (fun tr -> match tr.tr_command with Merge _ -> true | _ -> false)
       t.transitions)

let swaps t =
  List.length
    (List.filter
       (fun tr -> match tr.tr_command with Hot_swap _ -> true | _ -> false)
       t.transitions)

let recoveries t =
  List.fold_left (fun n g -> n + Active.recoveries g) 0 (groups_ever t)

let broadcasts t =
  List.fold_left (fun n g -> n + Active.broadcasts g) 0 (groups_ever t)

let duplicate_client_replies t =
  List.fold_left
    (fun n g -> n + Active.duplicate_client_replies g)
    0 (groups_ever t)

(* Aggregate state across live groups: with per-group commutative counters,
   the slot-preserving invariant — a split-then-merge cycle leaves the
   aggregate exactly where the static run put it. *)
let aggregate_state t =
  let acc = Hashtbl.create 8 in
  List.iter
    (fun sys ->
      List.iter
        (fun (f, v) ->
          Hashtbl.replace acc f
            (v + Option.value ~default:0 (Hashtbl.find_opt acc f)))
        (Active.donor_state sys))
    (live_systems t);
  Hashtbl.fold (fun f v l -> (f, v) :: l) acc [] |> List.sort compare

let consistent t =
  List.for_all
    (fun sys ->
      Consistency.consistent (Consistency.check (Active.live_replicas sys)))
    (groups_ever t)

(* The recovery-tolerant oracle: a recovered replica's trace covers only
   its post-recovery suffix, so after crash-recovery only state (and
   acquisition order going forward) is comparable — the same contract
   {!Chaos} checks. *)
let states_agree t =
  List.for_all
    (fun sys ->
      (Consistency.check (Active.live_replicas sys)).Consistency.states_agree)
    (groups_ever t)

(* Bit-identical epoch observation: within each group, every live replica
   folded the same barriers at the same total-order slots. *)
let epochs_agree t =
  List.for_all
    (fun sys ->
      match Active.barrier_fingerprints sys with
      | [] -> true
      | (_, fp0, n0) :: rest ->
        List.for_all (fun (_, fp, n) -> Int64.equal fp fp0 && n = n0) rest)
    (groups_ever t)

(* Whole-run hash: every group's live replica traces and states, the reply
   count, and the transition log (epoch, barrier slot, time, command). *)
let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  List.iter
    (fun sys ->
      List.iter
        (fun r ->
          mix (Int64.of_int (Detmt_runtime.Replica.id r));
          mix (Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r));
          mix (Detmt_runtime.Replica.state_fingerprint r))
        (Active.live_replicas sys))
    (groups_ever t);
  mix (Int64.of_int t.replies);
  List.iter
    (fun tr ->
      mix (Int64.of_int tr.tr_epoch);
      mix (Int64.of_int tr.tr_barrier_seq);
      mix (Int64.bits_of_float tr.tr_at_ms);
      mix (Int64.of_int (Hashtbl.hash tr.tr_command)))
    (List.rev t.transitions);
  !h
