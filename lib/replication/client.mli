(** Closed-loop clients, as in the Figure 1 benchmark: each client sends one
    request, waits for the (first) reply, optionally thinks, and repeats.
    All random decisions a request needs are pre-drawn from the client's own
    seeded stream and shipped in the request arguments, so replicas never
    draw randomness themselves.

    With [timeout_ms] set, an unanswered request is resubmitted after a
    deterministic exponential backoff (timeout, 2x, 4x, ...).  Resubmission
    is idempotent end to end: replicas suppress the duplicate and the
    replication layer never answers one request twice. *)

type request_gen =
  client:int -> seq:int -> Detmt_sim.Rng.t -> string * Detmt_lang.Ast.value array
(** Produce (start method, arguments) for a client's [seq]-th request. *)

type submit_fn =
  client:int ->
  client_req:int ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  on_reply:(response_ms:float -> unit) ->
  unit
(** What a client needs from a replicated system: submit one request, hear
    back once.  {!Active.submit} and [Shard.submit] both have this shape, so
    the {e same} client code (and hence the same per-client random streams,
    in the same draw order) drives the unsharded and the sharded paths. *)

type t

val create_on :
  engine:Detmt_sim.Engine.t ->
  submit:submit_fn ->
  id:int ->
  rng:Detmt_sim.Rng.t ->
  gen:request_gen ->
  ?think_time_ms:float ->
  ?max_requests:int ->
  ?timeout_ms:float ->
  ?max_retries:int ->
  unit ->
  t
(** [timeout_ms] arms the retry timer (off by default); [max_retries]
    (default 5) caps resubmissions per request. *)

val create :
  Active.t ->
  id:int ->
  rng:Detmt_sim.Rng.t ->
  gen:request_gen ->
  ?think_time_ms:float ->
  ?max_requests:int ->
  ?timeout_ms:float ->
  ?max_retries:int ->
  unit ->
  t
(** {!create_on} against one {!Active} group. *)

val start : t -> unit
(** Send the first request. *)

val completed : t -> int

val in_flight : t -> bool

val retries : t -> int
(** Requests resubmitted after a timeout. *)

type run_stats = {
  run_completed : int;  (** requests answered, across all clients *)
  run_retries : int;  (** timeout resubmissions, across all clients *)
  run_outstanding : int;  (** clients still waiting when the run stopped *)
}

val run_clients_stats_on :
  engine:Detmt_sim.Engine.t ->
  submit:submit_fn ->
  ?diagnose:(stuck:int list -> string) ->
  clients:int ->
  requests_per_client:int ->
  gen:request_gen ->
  ?think_time_ms:float ->
  ?seed:int64 ->
  ?until_ms:float ->
  ?timeout_ms:float ->
  ?max_retries:int ->
  unit ->
  run_stats
(** Create [clients] closed-loop clients against an arbitrary [submit]
    target, run the simulation until every client finished its quota (or
    [until_ms] virtual time elapsed).  Raises [Failure] if the simulation
    deadlocks with requests outstanding; [diagnose] (given the stuck client
    ids) produces the failure message. *)

val run_clients_stats :
  engine:Detmt_sim.Engine.t ->
  system:Active.t ->
  clients:int ->
  requests_per_client:int ->
  gen:request_gen ->
  ?think_time_ms:float ->
  ?seed:int64 ->
  ?until_ms:float ->
  ?timeout_ms:float ->
  ?max_retries:int ->
  unit ->
  run_stats
(** {!run_clients_stats_on} against one {!Active} group, with the full
    deadlock report: the message lists the unanswered requests, every live
    replica's blocked threads and the current lock holders. *)

val active_diagnostics : Active.t -> string
(** One group's deadlock forensics (unanswered requests, blocked threads,
    lock holders), newline-prefixed — {!Shard} stitches these into its
    per-group report. *)

val stuck_header : stuck:int list -> string
(** The first lines of a deadlock report: how many clients are still waiting
    and which — multi-group layers ({!Shard}, {!Reconfig}) prepend this to
    their stitched per-group forensics. *)

val run_clients :
  engine:Detmt_sim.Engine.t ->
  system:Active.t ->
  clients:int ->
  requests_per_client:int ->
  gen:request_gen ->
  ?think_time_ms:float ->
  ?seed:int64 ->
  ?until_ms:float ->
  unit ->
  unit
(** {!run_clients_stats} without the stats (and without retries). *)

val run_open_loop :
  engine:Detmt_sim.Engine.t ->
  system:Active.t ->
  rate_per_s:float ->
  requests:int ->
  gen:request_gen ->
  ?seed:int64 ->
  ?until_ms:float ->
  unit ->
  unit
(** Open-loop (Poisson) arrivals at [rate_per_s], [requests] in total, from a
    single logical client population — for throughput/saturation studies: an
    overloaded scheduler builds an unbounded backlog instead of throttling
    the clients.  Runs to completion (or [until_ms]). *)
