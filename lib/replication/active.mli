(** Active replication of one object group.

    Wires the whole system together: a total-order bus carrying client
    requests, nested-invocation replies and scheduler control messages; [n]
    replicas each running the same instrumented class under the same
    deterministic scheduler; simulated external services for nested
    invocations; and duplicate suppression.

    Nested invocations follow section 2: only one replica (the current
    leader) performs the external call, and the reply is spread to all
    replicas through the bus, so every replica resumes the thread at the same
    total-order position.

    The bus can run over a degraded transport ({!Detmt_gcs.Faults}), and a
    killed replica can rejoin through {!recover_replica}: a group view
    change plus a state transfer from a live donor sampled at quiescence,
    followed by an in-order replay of the missed message suffix. *)

type t

type params = {
  replicas : int;
  scheduler : string;  (** a {!Detmt_sched.Registry} name *)
  workers : int;
      (** simulated worker-pool width, threaded into
          [Sched_config.workers]; must be [1] unless the scheduler is in
          {!Detmt_sched.Registry.parallel_decisions} *)
  config : Detmt_runtime.Config.t;
  net_latency_ms : float;  (** replica <-> replica one-way latency *)
  client_latency_ms : float;  (** client <-> replica one-way latency *)
  detection_timeout_ms : float;  (** failure-detection delay *)
  faults : Detmt_gcs.Faults.spec option;
      (** degrade the transport under the bus; [None] = perfect network *)
  recovery_poll_ms : float;
      (** how often a recovery waiting for donor quiescence re-checks *)
  shard : int;
      (** which shard this group serialises, [0] when unsharded — a metrics /
          diagnostics namespace, never a behavioural input *)
  replica_base : int;
      (** first replica id of this group; ids are [base, base + replicas).
          {!Shard} gives each group a disjoint id window so flight-recorder
          spans and checkpoints never collide across groups. *)
  batching : Detmt_gcs.Totem.batching option;
      (** batched total-order delivery on the bus; [None] (the default)
          puts every broadcast on the wire immediately *)
}

val default_params : params

type checkpoint_sink =
  replica:int -> seq:int -> hash:int64 -> state:(string * int) list -> unit
(** A divergence-detector observer: replica [replica] reached checkpoint
    [seq] (monotone per replica, comparable across replicas) with state
    fingerprint [hash] and field values [state]. *)

val create :
  ?obs:Detmt_obs.Recorder.t ->
  engine:Detmt_sim.Engine.t ->
  cls:Detmt_lang.Class_def.t ->
  params:params ->
  unit ->
  t
(** [cls] is the {e source} class: the constructor applies the transformation
    the chosen scheduler needs (basic or predictive).  [obs] (default
    {!Detmt_obs.Recorder.disabled}) is threaded through the bus, every
    replica and every scheduler; recording is strictly read-only. *)

val submit :
  ?on_ordered:(seq:int -> unit) ->
  t ->
  client:int ->
  client_req:int ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  on_reply:(response_ms:float -> unit) ->
  unit
(** Broadcast one request; [on_reply] fires at the client when the first
    replica reply arrives, with the end-to-end response time.  Resubmitting
    an already-answered [(client, client_req)] is a no-op, so client-side
    retries keep exactly-once semantics.  [on_ordered] fires the moment the
    request is stamped into this group's total order (at broadcast, after
    the client->sequencer latency), with its sequence number — the anchor
    for the cross-shard two-phase protocol ({!Shard}); a retry that
    re-broadcasts fires it again. *)

val engine : t -> Detmt_sim.Engine.t

val replicas : t -> Detmt_runtime.Replica.t list

val live_replicas : t -> Detmt_runtime.Replica.t list

val group : t -> Detmt_gcs.Group.t

val kill_replica : t -> int -> unit
(** Fail a replica now: it stops executing and receiving. *)

val recover_replica : t -> ?at:float -> int -> unit
(** Bring a killed replica back (at [at], default now).  The recovery waits
    for a live donor to reach quiescence, transfers its snapshot (object
    state, mutex fields, scheduler bookkeeping, duplicate-suppression table)
    stamped with the donor's total-order watermark, rejoins the group (a
    [Join] view; seniority ordering means the rejoiner never becomes
    leader), and replays the missed message suffix in sequence order.
    No-op if the replica is already live.
    @raise Failure when no live donor exists. *)

val set_checkpoint_sink : t -> checkpoint_sink -> unit
(** Install the divergence-detector observer; each replica reports at every
    local quiescence point. *)

(** {2 Elastic reconfiguration support}

    The {!Reconfig} layer anchors every epoch transition on a totally-ordered
    barrier and moves state between groups with the same quiescent-donor
    invariant {!recover_replica} relies on: a group's state is a pure
    function of its delivered prefix only while no thread is running. *)

val order_barrier :
  t -> epoch:int -> label:string -> on_ordered:(seq:int -> unit) -> unit
(** Broadcast a reconfiguration barrier: a no-op for the interpreter, but it
    occupies a slot in this group's total order — the agreed point of an
    epoch transition.  [on_ordered] fires with the slot's sequence number.
    Every replica folds the delivered barrier into a per-replica fingerprint
    ({!barrier_fingerprints}). *)

val barrier_fingerprints : t -> (int * int64 * int) list
(** Per live replica: [(id, fold of every delivered (seq, epoch, label),
    barriers seen)].  Equal folds across replicas mean every epoch
    transition was observed at the same total-order slot — the
    bit-identical-transition oracle.  A recovered replica inherits its
    donor's fold with the snapshot. *)

val quiescent : t -> bool
(** No live replica is executing a thread (and at least one is live) — the
    drained-barrier condition under which snapshots and transplants are pure
    functions of the delivered prefix. *)

val donor_state : t -> (string * int) list
(** The state-field snapshot of the lowest-id live replica — the merge
    delta a retiring group hands to its survivor.  Only meaningful at
    {!quiescent}.
    @raise Failure when no replica is live. *)

val absorb_state : t -> delta:(string * int) list -> unit
(** Add [delta] to every live replica's state fields — the merge fold.
    Deterministic when run at a drained barrier (between any two delivered
    requests, identically on all replicas). *)

val merge_dedups : t -> from:t -> unit
(** Union [from]'s duplicate-suppression ledger into every replica of [t]:
    after a merge re-routes the retired group's objects, a retry of a
    request the retired group executed must stay suppressed. *)

val bootstrap : t -> from:t -> carry_state:bool -> unit
(** Bootstrap a freshly created, traffic-free group from a quiescent donor
    group — the split / hot-swap state transfer.  Always carried: the dedup
    ledger, the mutex-reference fields, and per-offset replica aliveness (a
    swap cannot resurrect a crashed replica).  [carry_state] additionally
    clones the object state fields and completed counts (hot swap: the same
    logical group continues under a new scheduler; split: the new group
    starts its own per-group counters at zero).
    @raise Invalid_argument if [t] already carried traffic.
    @raise Failure when [from] has no live replica. *)

val recoveries : t -> int
(** Completed recoveries. *)

val faults : t -> Detmt_gcs.Faults.t option
(** The fault plan attached to the bus, for its counters. *)

val suppressed_duplicates : t -> int
(** True transport duplicates the bus kept from the replicas (stale
    replay-covered copies excluded — see {!watermark_suppressed}). *)

val watermark_suppressed : t -> int
(** Stale in-flight copies suppressed as replay-covered after a recovery's
    state transfer advanced the bus watermark. *)

val set_delivery_oracle :
  t ->
  (seq:int -> sender:int -> dest:int -> planned_ms:float -> float) option ->
  unit
(** Forwarded to {!Detmt_gcs.Totem.set_delivery_oracle} on the group's bus:
    the schedule-space explorer's per-delivery latency perturbation hook. *)

val set_flush_oracle : t -> (seq:int -> pending:int -> bool) option -> unit
(** Forwarded to {!Detmt_gcs.Totem.set_flush_oracle}: the explorer's forced
    early batch-flush hook (no-op without batching). *)

val order_fingerprint : t -> int64
(** Order-sensitive hash of the broadcast log (seq, sender, payload identity
    in total order).  Equal fingerprints mean two runs saw the same total
    order, so reply/state differences between them indict the scheduler;
    unequal fingerprints mean the perturbation shifted the total order
    itself, and per-run internal replica agreement is the only meaningful
    check. *)

val response_times : t -> Detmt_stats.Summary.t

val replies_received : t -> int

val outstanding_requests : t -> (int * int) list
(** Requests submitted but not yet answered, as sorted
    [(client, client_req)] pairs — deadlock diagnostics. *)

val duplicate_client_replies : t -> int
(** Replies that would have fired a client callback twice, suppressed by the
    exactly-once guard.  Zero in a correct run. *)

val reply_times : t -> float list
(** Client-side reply arrival times, in order — input to the take-over-time
    analysis. *)

val message_stats : t -> (string * int) list
(** Broadcast counts by category (requests, nested replies, control,
    dummies). *)

val broadcasts : t -> int

val wire_batches : t -> int
(** Batches the bus flushed onto the wire; [0] when batching is disabled. *)

val shard : t -> int
(** The shard id this group was created with. *)

val params : t -> params

val summary : t -> Detmt_analysis.Predict.class_summary option
(** The prediction summary, when the scheduler required the predictive
    transformation. *)

val scheduler_name : t -> string
