(** Chaos harness: fault scenarios x deterministic schedulers.

    Each run wires a workload through {!Shard} (one {!Active} group per
    shard; the default single shard is byte-for-byte the unsharded path) on
    a degraded transport ({!Detmt_gcs.Faults}), optionally kills and
    recovers a replica in every group, and checks the robustness
    invariants:

    - every submitted request is answered exactly once (retries included),
    - the runtime divergence detector never fires,
    - survivors (and a recovered replica) agree on the final state,
    - the simulation drains without deadlock,
    - scheduled recoveries complete,
    - scheduled reconfigurations apply, with every replica of every
      incarnation observing every epoch transition at the same total-order
      slot.

    Scenarios carrying reconfiguration commands run through {!Reconfig}
    (elastic: live shard split/merge and scheduler hot swap under the same
    fault injection); the rest run through {!Shard} unchanged.  Everything
    is seeded — the same seed replays the same run bit for bit, which
    {!outcome.o_fingerprint} witnesses. *)

type scenario = {
  name : string;
  descr : string;
  faults : seed:int64 -> Detmt_gcs.Faults.spec option;
  kill : (float * int) option;
      (** [(time_ms, replica)] — the replica is an offset into each group's
          id window, so every shard loses its [k]-th replica. *)
  recover_at : float option;
  reconfig :
    (initial:int -> scheduler:string -> (float * Reconfig.command) list)
    option;
      (** elastic scenarios: timed reconfiguration commands, given the
          initial group count and the scheduler under test (so a hot-swap
          target can be chosen to differ from it) *)
}

val scenarios : scenario list
(** The built-in scenarios: [baseline], [jitter], [lossy], [dup-storm],
    [partition-heal], [crash-recover], [lossy-crash-recover], plus the
    elastic pair [reshard-partition-heal] (a shard split ordered inside a
    healing partition, merged back after) and [hotswap-crash] (a scheduler
    hot swap racing a crashed replica's scheduled recovery). *)

val find_scenario : string -> scenario option

val default_schedulers : string list
(** The deterministic schedulers swept by default —
    {!Detmt_sched.Registry.deterministic_decisions}.  The freefall baseline
    is excluded: it diverges by design. *)

type outcome = {
  o_scenario : string;
  o_scheduler : string;
  o_shards : int;
  o_expected : int;
  o_replies : int;
  o_duplicate_replies : int;
  o_retries : int;
  o_checkpoints : int;
  o_divergence : Consistency.divergence option;
  o_recoveries : int;
  o_recoveries_wanted : int;
  o_states_agree : bool;
  o_acquisitions_agree : bool;
  o_suppressed_duplicates : int;
      (** true transport duplicates suppressed by the bus watermark *)
  o_watermark_suppressed : int;
      (** stale replay-covered copies suppressed after a recovery's state
          transfer (previously miscounted as transport duplicates) *)
  o_losses : int;
  o_duplicates_injected : int;
  o_partition_holds : int;
  o_transitions : int;  (** reconfiguration epochs applied *)
  o_transitions_wanted : int;
  o_epochs_agree : bool;
      (** {!Reconfig.epochs_agree}; vacuously true for static runs *)
  o_duration_ms : float;
  o_fingerprint : int64;
}

val ok : outcome -> bool
(** All invariants hold. *)

val run :
  ?seed:int64 ->
  ?shards:int ->
  ?workers:int ->
  ?clients:int ->
  ?requests_per_client:int ->
  ?timeout_ms:float ->
  ?obs:Detmt_obs.Recorder.t ->
  scenario:scenario ->
  scheduler:string ->
  cls:Detmt_lang.Class_def.t ->
  gen:Client.request_gen ->
  unit ->
  outcome
(** One (scenario, scheduler) combination.  [workers] (default 1) is the
    simulated worker-pool width, legal only for parallel schedulers
    ({!Detmt_sched.Registry.parallel_decisions}).  [shards] (default 1)
    partitions
    the object space into that many independent Totem groups; each group
    gets its own fault stream (salted from [seed]), its own kill/recovery
    when the scenario schedules one, and its own consistency monitor.  The
    outcome aggregates across groups: counters sum, agreement flags AND,
    [o_recoveries_wanted] scales with the shard count, and
    {!outcome.o_fingerprint} folds every group's replica hashes in shard
    order — for [shards = 1] it is the same value the unsharded harness
    produced.  [timeout_ms] arms the clients'
    retry timers (default 60 virtual ms).  [obs] (default disabled) records
    the run; the transport's fault counters are folded into its metrics,
    and its checkpoint times and audit log support the forensics mode
    ([detmt-cli chaos --forensics]): {!outcome.o_divergence} names the first
    divergent checkpoint sequence, whose recording time keys the audit
    window.
    @raise Failure on deadlock (with full diagnostics). *)

val sweep :
  ?seed:int64 ->
  ?shards:int ->
  ?workers:int ->
  ?schedulers:string list ->
  ?scenario_names:string list ->
  ?clients:int ->
  ?requests_per_client:int ->
  cls:Detmt_lang.Class_def.t ->
  gen:Client.request_gen ->
  unit ->
  outcome list
(** The full cross product, scenario-major.  A sweep-wide [workers] width is
    applied to the parallel schedulers only; serial schedulers keep width
    1. *)

val table : outcome list -> Detmt_stats.Table.t
