(** Replica-consistency checking.

    The whole point of deterministic multithreading: after processing the
    same request sequence, all replicas must agree.  Three fingerprints of
    increasing strictness are compared across live replicas:

    - state: the object's field values (what clients observe),
    - acquisitions: the per-mutex lock-acquisition order,
    - trace: the full scheduling event sequence.

    A deterministic scheduler must pass all three; the freefall baseline is
    expected to fail. *)

type report = {
  replicas : int list;
  state_hashes : (int * int64) list;
  acquisition_hashes : (int * int64) list;
  trace_hashes : (int * int64) list;
  states_agree : bool;
  acquisitions_agree : bool;
  traces_agree : bool;
  completed : (int * int) list;  (** completed request counts per replica *)
}

val check : Detmt_runtime.Replica.t list -> report
(** Compare the given (live) replicas.  A singleton or empty list is trivially
    consistent. *)

val consistent : report -> bool
(** All three fingerprints agree. *)

val pp : Format.formatter -> report -> unit

(** {2 Runtime divergence detection}

    {!check} compares replicas once, after the run.  The monitor compares
    checkpoint streams {e during} the run: replicas report a state hash at
    every local quiescence point ({!Active.set_checkpoint_sink}), keyed by a
    sequence number comparable across replicas, and the first disagreement
    is pinned to its checkpoint with the differing state fields. *)

type divergence = {
  seq : int;  (** checkpoint sequence where the disagreement surfaced *)
  replica_a : int;
  hash_a : int64;
  replica_b : int;
  hash_b : int64;
  differing_fields : (string * int * int) list;
      (** field, value at [replica_a], value at [replica_b] *)
}

type monitor

val create_monitor : unit -> monitor

val observe :
  monitor ->
  replica:int ->
  seq:int ->
  hash:int64 ->
  state:(string * int) list ->
  unit
(** Record one checkpoint and compare it against every other replica's
    checkpoint at the same sequence. *)

val set_on_divergence : monitor -> (divergence -> unit) -> unit
(** Fail-fast hook, fired the moment a comparison disagrees. *)

val first_divergence : monitor -> divergence option
(** The divergence with the lowest checkpoint sequence, if any. *)

val checkpoints_compared : monitor -> int
(** Number of cross-replica checkpoint comparisons performed. *)

val pp_divergence : Format.formatter -> divergence -> unit
