(** Sharded multi-group replication.

    Partitions the replicated object space across [shards] independent
    {!Active} groups — one Totem bus, one replica set, one scheduler
    substrate instance each — and routes every client request by its
    {e predicted lock closure}:

    - a deterministic router places each object (mutex) id on a shard by a
      stable hash of the id alone ({!route});
    - requests whose closure lives on a single shard take the {e fast path}:
      they are ordered and executed by that group only, with no cross-group
      coordination — disjoint-closure requests on different shards proceed
      in parallel;
    - requests spanning several shards take a deterministic {e two-phase
      ordered delivery}: phase 1 orders the request on the coordinator (the
      smallest involved shard); the moment it holds a slot in the
      coordinator's total order, phase 2 submits it to the remaining shards
      in ascending shard order.  The client reply fires when every involved
      group has answered.

    Determinism is preserved because every routing input is a pure function
    of the request (method + arguments) and the configuration: the router
    hashes ids, the closure comes from the §4.3 summary (or a conservative
    syntactic scan when the scheduler runs untransformed code — opaque
    closures are ordered on {e every} shard), each group is internally a
    deterministic total order, and the two-phase hand-off is anchored on a
    total-order event.  A 1-shard system is byte-for-byte the unsharded
    {!Active} path: same bus, same fault seed, same replica ids, same event
    sequence.

    Each shard's group gets a disjoint replica-id window ([replica_base = s
    * replicas]) so flight-recorder spans and checkpoints never collide, and
    its own fault seed derived from the base spec (shard 0 keeps the base
    seed untouched). *)

type t

type params = {
  shards : int;
  base : Active.params;
      (** per-group template; [shard]/[replica_base]/[faults] are derived
          per shard from it, everything else is used as-is.
          [base.replica_base] must be 0. *)
}

val default_params : params
(** 2 shards over {!Active.default_params}. *)

val route : shards:int -> int -> int
(** [route ~shards m] places object (mutex) id [m]: a stable SplitMix64
    hash of [m] alone — no state, no seed — so every participant agrees on
    the placement without communicating. *)

(** {2 Routing plans (shared with {!Reconfig})}

    Per start method: either the lock closure is exactly the mutexes carried
    in the listed argument positions, or it is opaque and the request must be
    ordered on every shard. *)

type plan =
  | Args of int list  (** argument positions carrying the closure's mutexes *)
  | Everywhere  (** opaque closure: order on every shard *)

val plan_table :
  summary:Detmt_analysis.Predict.class_summary option ->
  Detmt_lang.Class_def.t ->
  (string, plan) Hashtbl.t
(** One plan per start method: from the §4.3 prediction summary when
    available, otherwise a conservative syntactic scan of the source body
    (through same-class calls). *)

val plan_mutexes :
  (string, plan) Hashtbl.t ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  int list option
(** The mutex ids a request's routing depends on: [None] when the closure is
    opaque or the arguments malformed (order everywhere), [Some []] when the
    request locks nothing. *)

val salt_faults : int -> Detmt_gcs.Faults.spec -> Detmt_gcs.Faults.spec
(** Derive group [i]'s fault seed from the base spec; [0] keeps the base
    seed untouched so a 1-group system is byte-for-byte the unsharded one. *)

val create :
  ?obs:Detmt_obs.Recorder.t ->
  engine:Detmt_sim.Engine.t ->
  cls:Detmt_lang.Class_def.t ->
  params:params ->
  unit ->
  t
(** Build [shards] independent groups over the same source class.  Routing
    plans are computed once per start method: from the prediction summary
    when the configured scheduler uses one, otherwise from a syntactic scan
    of the source body (through same-class calls); methods whose lock
    closure is not a pure function of request arguments are ordered on every
    shard.
    @raise Invalid_argument when [shards < 1] or [base.replica_base <> 0]. *)

val shard_set : t -> meth:string -> args:Detmt_lang.Ast.value array -> int list
(** The shards a request involves, ascending — a deterministic function of
    the method's routing plan and the arguments alone.  A request locking
    nothing runs on shard 0; exposed for tests. *)

val submit :
  t ->
  client:int ->
  client_req:int ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  on_reply:(response_ms:float -> unit) ->
  unit
(** Route and submit one request ({!Client.submit_fn} shape).  Exactly-once
    end to end: retries reuse the pending cross-shard latch and an answered
    request is never re-submitted or re-reported. *)

val run_clients_stats :
  t ->
  clients:int ->
  requests_per_client:int ->
  gen:Client.request_gen ->
  ?think_time_ms:float ->
  ?seed:int64 ->
  ?until_ms:float ->
  ?timeout_ms:float ->
  ?max_retries:int ->
  unit ->
  Client.run_stats
(** Closed-loop clients against the sharded system — the {e same} client
    code as the unsharded path, with a per-shard deadlock report. *)

val run_clients :
  t ->
  clients:int ->
  requests_per_client:int ->
  gen:Client.request_gen ->
  ?think_time_ms:float ->
  ?seed:int64 ->
  ?until_ms:float ->
  unit ->
  unit

val engine : t -> Detmt_sim.Engine.t

val shards : t -> int

val groups : t -> Active.t array
(** The per-shard groups, indexed by shard id. *)

val replies_received : t -> int

val reply_times : t -> float list
(** Client-side reply arrival times, in order. *)

val response_times : t -> Detmt_stats.Summary.t

val cross_set_sizes : t -> Detmt_stats.Summary.t
(** Involved-shard-set sizes of cross-shard requests. *)

val fast_path_requests : t -> int

val cross_shard_requests : t -> int

val broadcasts : t -> int
(** Total broadcasts across all groups. *)

val wire_batches : t -> int
(** Total wire batches across all groups; [0] when batching is disabled. *)

val consistent : t -> bool
(** Every group's live replicas agree on state, acquisition order and
    trace. *)

val fingerprint : t -> int64
(** FNV-1a fold of every group's live-replica trace/state fingerprints and
    the reply count — the seed-reproducibility oracle for N-shard runs. *)
