open Detmt_sim
open Detmt_gcs

(* Chaos harness: sweep fault scenarios x schedulers and assert the
   robustness invariants — every request answered exactly once, replicas
   checkpoint-consistent throughout, no deadlock, recovery converges.
   Everything is seeded, so a failing combination replays exactly. *)

type scenario = {
  name : string;
  descr : string;
  faults : seed:int64 -> Faults.spec option;
  kill : (float * int) option; (* (time_ms, replica) *)
  recover_at : float option;
  reconfig :
    (initial:int -> scheduler:string -> (float * Reconfig.command) list)
    option;
      (* elastic scenarios: timed reconfiguration commands, parameterised by
         the initial group count and the scheduler under test (a hot-swap
         target must differ from the current scheduler to apply) *)
}

let mk ?(faults = fun ~seed:_ -> None) ?kill ?recover_at ?reconfig name descr
    =
  { name; descr; faults; kill; recover_at; reconfig }

(* Faults are seeded from the sweep seed so two sweeps with the same seed
   see the same network weather, and different scenarios draw from
   different streams. *)
let fault_seed ~seed ~salt = Int64.logxor seed (Int64.of_int (salt * 0x9E3779B9))

let scenarios =
  [ mk "baseline" "perfect network, no failures";
    mk "jitter" "per-hop latency jitter"
      ~faults:(fun ~seed ->
        Some
          { Faults.none with seed = fault_seed ~seed ~salt:1;
            jitter_ms = 0.4 });
    mk "lossy" "15% loss repaired by retransmits, plus jitter"
      ~faults:(fun ~seed ->
        Some
          { Faults.none with seed = fault_seed ~seed ~salt:2;
            jitter_ms = 0.2; loss_prob = 0.15; rto_ms = 2.0;
            max_retransmits = 4 });
    mk "dup-storm" "half of all packets delivered twice"
      ~faults:(fun ~seed ->
        Some
          { Faults.none with seed = fault_seed ~seed ~salt:3;
            dup_prob = 0.5; dup_extra_ms = 1.5 });
    mk "partition-heal" "replica 2 cut off for 40ms, then healed"
      ~faults:(fun ~seed ->
        Some
          { Faults.none with seed = fault_seed ~seed ~salt:4;
            jitter_ms = 0.1;
            partitions =
              [ { Faults.src = None; dst = Some 2; from_ms = 40.0;
                  until_ms = 80.0 } ] });
    mk "crash-recover" "replica 2 killed at 60ms, rejoins at 160ms"
      ~kill:(60.0, 2) ~recover_at:160.0;
    mk "lossy-crash-recover"
      "10% loss and jitter, replica 2 killed at 60ms, rejoins at 180ms"
      ~faults:(fun ~seed ->
        Some
          { Faults.none with seed = fault_seed ~seed ~salt:5;
            jitter_ms = 0.2; loss_prob = 0.10; rto_ms = 2.0;
            max_retransmits = 4 })
      ~kill:(60.0, 2) ~recover_at:180.0;
    mk "reshard-partition-heal"
      "shard split at 45ms inside a 40-80ms partition of replica 2, merged \
       back at 110ms after the heal"
      ~faults:(fun ~seed ->
        Some
          { Faults.none with seed = fault_seed ~seed ~salt:6;
            jitter_ms = 0.1;
            partitions =
              [ { Faults.src = None; dst = Some 2; from_ms = 40.0;
                  until_ms = 80.0 } ] })
      ~reconfig:(fun ~initial ~scheduler:_ ->
        [ (45.0, Reconfig.Split 0);
          (110.0, Reconfig.Merge { from_g = initial; into = 0 }) ]);
    mk "hotswap-crash"
      "replica 2 killed at 30ms, scheduler hot-swapped at 50ms with the \
       replica still down, rejoin at 120ms into the new incarnation"
      ~kill:(30.0, 2) ~recover_at:120.0
      ~reconfig:(fun ~initial:_ ~scheduler ->
        let target = if scheduler = "pds" then "mat" else "pds" in
        [ (50.0, Reconfig.Hot_swap { group = 0; scheduler = target }) ]);
  ]

let find_scenario name = List.find_opt (fun s -> s.name = name) scenarios

(* The deterministic schedulers under test, straight from the registry.
   Freefall is excluded (it is the nondeterminism baseline and fails the
   divergence invariants by design), as is the adaptive meta-scheduler. *)
let default_schedulers = Detmt_sched.Registry.deterministic_decisions

type outcome = {
  o_scenario : string;
  o_scheduler : string;
  o_shards : int;
  o_expected : int; (* requests submitted *)
  o_replies : int;
  o_duplicate_replies : int;
  o_retries : int;
  o_checkpoints : int; (* cross-replica checkpoint comparisons *)
  o_divergence : Consistency.divergence option;
  o_recoveries : int;
  o_recoveries_wanted : int;
  o_states_agree : bool;
  o_acquisitions_agree : bool;
  o_suppressed_duplicates : int; (* true transport duplicates only *)
  o_watermark_suppressed : int;
      (* replay-covered stale copies after recovery state transfer —
         formerly folded into o_suppressed_duplicates, which made recovery
         flushes read as transport duplication *)
  o_losses : int;
  o_duplicates_injected : int;
  o_partition_holds : int;
  o_transitions : int; (* reconfiguration epochs applied *)
  o_transitions_wanted : int;
  o_epochs_agree : bool;
      (* every replica of every incarnation observed every epoch transition
         at the same total-order slot; vacuously true for static runs *)
  o_duration_ms : float;
  o_fingerprint : int64; (* whole-run hash: determinism witness *)
}

let ok o =
  o.o_replies = o.o_expected
  && o.o_duplicate_replies = 0
  && o.o_divergence = None
  && o.o_recoveries = o.o_recoveries_wanted
  && o.o_states_agree
  && o.o_transitions = o.o_transitions_wanted
  && o.o_epochs_agree
  (* A recovered replica's acquisition fingerprint only covers its second
     incarnation, so the cross-incarnation comparison is meaningful only in
     recovery-free runs. *)
  && (o.o_recoveries_wanted > 0 || o.o_acquisitions_agree)

let run ?(seed = 42L) ?(shards = 1) ?(workers = 1) ?(clients = 4)
    ?(requests_per_client = 5) ?(timeout_ms = 60.0)
    ?(obs = Detmt_obs.Recorder.disabled) ~scenario ~scheduler ~cls ~gen () =
  let module Recorder = Detmt_obs.Recorder in
  let engine = Engine.create () in
  let base =
    { Active.default_params with
      scheduler; workers; faults = scenario.faults ~seed;
      (* generous detection so a lossy transport is not mistaken for a
         failure while retransmits are still in flight *)
      detection_timeout_ms = 50.0 }
  in
  let monitors = ref [] in
  let attach g =
    let monitor = Consistency.create_monitor () in
    Active.set_checkpoint_sink g (fun ~replica ~seq ~hash ~state ->
        Consistency.observe monitor ~replica ~seq ~hash ~state);
    monitors := monitor :: !monitors
  in
  (* Static scenarios always run through {!Shard} (a 1-shard system is
     byte-for-byte the unsharded path); elastic scenarios run through
     {!Reconfig} with [shards] initial groups, with monitors attached to
     every incarnation the run ever creates. *)
  let groups, stats, replies, transitions, transitions_wanted, epochs_agree =
    match scenario.reconfig with
    | None ->
      let system =
        Shard.create ~obs ~engine ~cls ~params:{ Shard.shards; base } ()
      in
      let groups = Array.to_list (Shard.groups system) in
      List.iter attach groups;
      (* Scenario kills/recoveries name a replica offset; every group loses
         (and recovers) the replica at that offset into its own id
         window. *)
      Option.iter
        (fun (at, k) ->
          Engine.schedule_at engine ~time:at (fun () ->
              List.iter
                (fun g ->
                  Active.kill_replica g
                    ((Active.params g).Active.replica_base + k))
                groups))
        scenario.kill;
      (match (scenario.recover_at, scenario.kill) with
      | Some at, Some (_, k) ->
        List.iter
          (fun g ->
            Active.recover_replica g ~at
              ((Active.params g).Active.replica_base + k))
          groups
      | Some _, None ->
        invalid_arg "Chaos.run: recover_at without a kill makes no sense"
      | None, _ -> ());
      let stats =
        Shard.run_clients_stats system ~clients ~requests_per_client ~gen
          ~seed ~timeout_ms ()
      in
      (groups, stats, Shard.replies_received system, 0, 0, true)
    | Some commands ->
      let system =
        Reconfig.create ~obs ~engine ~cls
          ~on_group:(fun ~index:_ g -> attach g)
          ~params:
            { Reconfig.default_params with
              Reconfig.initial_groups = shards; base }
          ()
      in
      let cmds = commands ~initial:shards ~scheduler in
      List.iter (fun (at, cmd) -> Reconfig.request_at system ~at cmd) cmds;
      Option.iter
        (fun (at, k) ->
          Engine.schedule_at engine ~time:at (fun () ->
              for g = 0 to shards - 1 do
                Reconfig.kill_replica system ~group:g ~offset:k
              done))
        scenario.kill;
      (match (scenario.recover_at, scenario.kill) with
      | Some at, Some (_, k) ->
        for g = 0 to shards - 1 do
          Reconfig.recover_replica system ~group:g ~offset:k ~at
        done
      | Some _, None ->
        invalid_arg "Chaos.run: recover_at without a kill makes no sense"
      | None, _ -> ());
      let stats =
        Reconfig.run_clients_stats system ~clients ~requests_per_client ~gen
          ~seed ~timeout_ms ()
      in
      ( Reconfig.groups_ever system, stats,
        Reconfig.replies_received system, Reconfig.epoch system,
        List.length cmds, Reconfig.epochs_agree system )
  in
  let monitors = List.rev !monitors in
  let reports =
    List.map (fun g -> Consistency.check (Active.live_replicas g)) groups
  in
  let sum f = List.fold_left (fun n g -> n + f g) 0 groups in
  let losses, dups, holds =
    List.fold_left
      (fun (l, d, h) g ->
        match Active.faults g with
        | None -> (l, d, h)
        | Some f ->
          ( l + Faults.losses f,
            d + Faults.duplicates_injected f,
            h + Faults.partition_holds f ))
      (0, 0, 0) groups
  in
  (* Fold the transport's fault counters into the metrics registry so a
     post-mortem sees injected faults next to scheduler behaviour. *)
  if Recorder.enabled obs then begin
    List.iter
      (fun g ->
        Option.iter
          (fun f ->
            Recorder.incr obs ~by:(Faults.transmissions f)
              "faults.transmissions";
            Recorder.incr obs ~by:(Faults.losses f) "faults.losses";
            Recorder.incr obs ~by:(Faults.duplicates_injected f)
              "faults.duplicates_injected";
            Recorder.incr obs ~by:(Faults.partition_holds f)
              "faults.partition_holds")
          (Active.faults g))
      groups;
    Recorder.incr obs ~by:stats.Client.run_retries "chaos.client_retries"
  end;
  (* One number that must be bit-identical across two runs with the same
     seed: fold every replica fingerprint and the run shape together. *)
  let fingerprint =
    let mix h x = Int64.mul (Int64.logxor h x) 0x100000001B3L in
    let h = ref 0xCBF29CE484222325L in
    List.iter
      (fun (report : Consistency.report) ->
        List.iter
          (fun (_, x) -> h := mix !h x)
          (report.Consistency.state_hashes @ report.Consistency.trace_hashes))
      reports;
    h := mix !h (Int64.of_int replies);
    h := mix !h (Int64.bits_of_float (Engine.now engine));
    !h
  in
  let first_divergence =
    List.fold_left
      (fun acc m ->
        match acc with Some _ -> acc | None -> Consistency.first_divergence m)
      None monitors
  in
  { o_scenario = scenario.name; o_scheduler = scheduler; o_shards = shards;
    o_expected = clients * requests_per_client;
    o_replies = replies;
    o_duplicate_replies = sum Active.duplicate_client_replies;
    o_retries = stats.Client.run_retries;
    o_checkpoints =
      List.fold_left
        (fun n m -> n + Consistency.checkpoints_compared m)
        0 monitors;
    o_divergence = first_divergence;
    o_recoveries = sum Active.recoveries;
    o_recoveries_wanted =
      (match scenario.recover_at with Some _ -> shards | None -> 0);
    o_states_agree =
      List.for_all (fun (r : Consistency.report) -> r.states_agree) reports;
    o_acquisitions_agree =
      List.for_all
        (fun (r : Consistency.report) -> r.acquisitions_agree)
        reports;
    o_suppressed_duplicates = sum Active.suppressed_duplicates;
    o_watermark_suppressed = sum Active.watermark_suppressed;
    o_losses = losses; o_duplicates_injected = dups;
    o_partition_holds = holds;
    o_transitions = transitions; o_transitions_wanted = transitions_wanted;
    o_epochs_agree = epochs_agree;
    o_duration_ms = Engine.now engine;
    o_fingerprint = fingerprint }

let sweep ?(seed = 42L) ?shards ?workers ?(schedulers = default_schedulers)
    ?(scenario_names = List.map (fun s -> s.name) scenarios) ?clients
    ?requests_per_client ~cls ~gen () =
  List.concat_map
    (fun name ->
      match find_scenario name with
      | None -> invalid_arg (Printf.sprintf "Chaos.sweep: no scenario %S" name)
      | Some scenario ->
        List.map
          (fun scheduler ->
            (* a sweep-wide pool width only applies where it is legal *)
            let workers =
              match workers with
              | Some w
                when List.mem scheduler
                       Detmt_sched.Registry.parallel_decisions ->
                Some w
              | _ -> None
            in
            run ~seed ?shards ?workers ?clients ?requests_per_client
              ~scenario ~scheduler ~cls ~gen ())
          schedulers)
    scenario_names

let table outcomes =
  let t =
    Detmt_stats.Table.create
      ~title:
        "Chaos sweep: exactly-once replies, runtime divergence detection, \
         recovery convergence"
      ~columns:
        [ "scenario"; "scheduler"; "replies"; "retries"; "checkpoints";
          "recovered"; "epochs"; "faults (loss/dup/cut)"; "verdict" ]
  in
  List.iter
    (fun o ->
      Detmt_stats.Table.add_row t
        [ o.o_scenario; o.o_scheduler;
          Printf.sprintf "%d/%d" o.o_replies o.o_expected;
          string_of_int o.o_retries;
          string_of_int o.o_checkpoints;
          (if o.o_recoveries_wanted = 0 then "-"
           else Printf.sprintf "%d/%d" o.o_recoveries o.o_recoveries_wanted);
          (if o.o_transitions_wanted = 0 then "-"
           else
             Printf.sprintf "%d/%d" o.o_transitions o.o_transitions_wanted);
          Printf.sprintf "%d/%d/%d" o.o_losses o.o_duplicates_injected
            o.o_partition_holds;
          (if ok o then "ok"
           else
             match o.o_divergence with
             | Some d -> Format.asprintf "%a" Consistency.pp_divergence d
             | None ->
               if o.o_replies <> o.o_expected then "missing replies"
               else if o.o_duplicate_replies > 0 then "duplicate replies"
               else if not o.o_states_agree then "final states diverge"
               else if o.o_recoveries <> o.o_recoveries_wanted then
                 "recovery did not converge"
               else if o.o_transitions <> o.o_transitions_wanted then
                 "reconfiguration did not apply"
               else if not o.o_epochs_agree then
                 "epoch transitions diverge"
               else "acquisition orders diverge") ])
    outcomes;
  t
