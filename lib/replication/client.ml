open Detmt_sim
open Detmt_runtime

type request_gen =
  client:int -> seq:int -> Rng.t -> string * Detmt_lang.Ast.value array

type submit_fn =
  client:int ->
  client_req:int ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  on_reply:(response_ms:float -> unit) ->
  unit

(* A client drives any replicated system through a [submit_fn]; the closed
   loop below draws from the client's own stream in exactly the same order
   whatever stands behind the function, which is what makes a 1-shard
   sharded run bit-identical to the unsharded path. *)
type t = {
  engine : Engine.t;
  submit : submit_fn;
  id : int;
  rng : Rng.t;
  gen : request_gen;
  think_time_ms : float;
  max_requests : int;
  timeout_ms : float option;
  max_retries : int;
  mutable sent : int;
  mutable completed : int;
  mutable waiting : bool;
  mutable current : int; (* the request seq we are waiting on *)
  mutable retries : int;
  mutable cur_meth : string; (* request being waited on, kept for retries *)
  mutable cur_args : Detmt_lang.Ast.value array;
  mutable think_h : Engine.handler_id; (* typed think-time expiry *)
  mutable timeout_h : Engine.handler_id;
      (* typed retry timer; the argument packs (seq, attempt) as
         [seq * (max_retries + 1) + attempt] *)
}

let active_submit system ~client ~client_req ~meth ~args ~on_reply =
  Active.submit system ~client ~client_req ~meth ~args ~on_reply

(* Retry [attempt] of request [seq] after timeout * 2^attempt — deterministic
   exponential backoff, no randomness, so runs replay exactly.  The
   replication layer's duplicate suppression makes resubmission idempotent:
   replicas that already delivered the request drop the copy, and an
   already-answered request is not re-registered. *)
let rec arm_timeout t ~seq ~attempt =
  match t.timeout_ms with
  | None -> ()
  | Some timeout ->
    let delay = timeout *. Float.pow 2.0 (float_of_int attempt) in
    Engine.post t.engine ~delay t.timeout_h
      ((seq * (t.max_retries + 1)) + attempt)

and on_timeout t packed =
  let seq = packed / (t.max_retries + 1)
  and attempt = packed mod (t.max_retries + 1) in
  if t.waiting && t.current = seq && attempt < t.max_retries then begin
    t.retries <- t.retries + 1;
    t.submit ~client:t.id ~client_req:seq ~meth:t.cur_meth ~args:t.cur_args
      ~on_reply:(reply_handler t ~seq);
    arm_timeout t ~seq ~attempt:(attempt + 1)
  end

and reply_handler t ~seq ~response_ms:_ =
  (* Guarded: a reply for a request we already moved past (late duplicate)
     must not double-count or restart the send loop. *)
  if t.waiting && t.current = seq then begin
    t.waiting <- false;
    t.completed <- t.completed + 1;
    on_reply t
  end

and send_next t =
  if t.sent < t.max_requests then begin
    let seq = t.sent in
    t.sent <- seq + 1;
    t.waiting <- true;
    t.current <- seq;
    let meth, args = t.gen ~client:t.id ~seq t.rng in
    t.cur_meth <- meth;
    t.cur_args <- args;
    t.submit ~client:t.id ~client_req:seq ~meth ~args
      ~on_reply:(reply_handler t ~seq);
    arm_timeout t ~seq ~attempt:0
  end

and on_reply t =
  if t.sent < t.max_requests then
    if t.think_time_ms > 0.0 then
      (* Think times are drawn exponentially around the configured mean,
         from the client's own stream. *)
      let think = Rng.exponential t.rng t.think_time_ms in
      Engine.post t.engine ~delay:think t.think_h 0
    else send_next t

and start t = send_next t

let create_on ~engine ~submit ~id ~rng ~gen ?(think_time_ms = 0.0)
    ?(max_requests = 10) ?timeout_ms ?(max_retries = 5) () =
  (match timeout_ms with
  | Some ms when ms <= 0.0 -> invalid_arg "Client.create: timeout_ms <= 0"
  | _ -> ());
  if max_retries < 0 then invalid_arg "Client.create: max_retries < 0";
  let t =
    { engine; submit; id; rng; gen; think_time_ms; max_requests; timeout_ms;
      max_retries; sent = 0; completed = 0; waiting = false; current = -1;
      retries = 0; cur_meth = ""; cur_args = [||]; think_h = 0;
      timeout_h = 0 }
  in
  t.think_h <- Engine.register_handler engine (fun _ -> send_next t);
  t.timeout_h <- Engine.register_handler engine (fun packed -> on_timeout t packed);
  t

let create system ~id ~rng ~gen ?think_time_ms ?max_requests ?timeout_ms
    ?max_retries () =
  create_on ~engine:(Active.engine system) ~submit:(active_submit system) ~id
    ~rng ~gen ?think_time_ms ?max_requests ?timeout_ms ?max_retries ()

let completed t = t.completed

let in_flight t = t.waiting

let retries t = t.retries

let run_open_loop ~engine ~system ~rate_per_s ~requests ~gen ?(seed = 42L)
    ?until_ms () =
  if rate_per_s <= 0.0 then invalid_arg "Client.run_open_loop: rate <= 0";
  let rng = Rng.create seed in
  let mean_gap_ms = 1000.0 /. rate_per_s in
  let completed = ref 0 in
  (* Arrival times are drawn as each arrival fires, so the schedule is
     independent of service completions (open loop).  One typed handler
     carries the arrival chain; its argument is the request seq. *)
  let arrive_h = ref 0 in
  arrive_h :=
    Engine.register_handler engine (fun seq ->
        let meth, args = gen ~client:0 ~seq rng in
        Active.submit system ~client:0 ~client_req:seq ~meth ~args
          ~on_reply:(fun ~response_ms:_ -> incr completed);
        if seq + 1 < requests then
          Engine.post engine ~delay:(Rng.exponential rng mean_gap_ms)
            !arrive_h (seq + 1));
  if requests > 0 then
    Engine.post engine ~delay:(Rng.exponential rng mean_gap_ms) !arrive_h 0;
  Engine.run ?until:until_ms engine;
  if !completed < requests && until_ms = None then
    failwith
      (Printf.sprintf "open-loop run drained with %d of %d requests answered"
         !completed requests)

type run_stats = {
  run_completed : int;
  run_retries : int;
  run_outstanding : int;
}

let status_to_string = function
  | Replica.Created -> "created"
  | Running -> "running"
  | Lock_blocked { syncid; mutex } ->
    Printf.sprintf "lock-blocked(sync %d, mutex %d)" syncid mutex
  | Wait_parked { mutex; _ } -> Printf.sprintf "waiting(mutex %d)" mutex
  | Reacquire_blocked { mutex; _ } ->
    Printf.sprintf "reacquire-blocked(mutex %d)" mutex
  | Nested_blocked { call_index } ->
    Printf.sprintf "nested-blocked(call %d)" call_index
  | Nested_ready { call_index } ->
    Printf.sprintf "nested-ready(call %d)" call_index
  | Commit_pending -> "commit-pending"
  | Terminated -> "terminated"

(* One replicated group's contribution to a deadlock report: the requests
   nobody answered, where every replica's threads are stuck, and who holds
   the locks they want. *)
let active_diagnostics system =
  let buf = Buffer.create 256 in
  let outstanding = Active.outstanding_requests system in
  Buffer.add_string buf
    (Printf.sprintf "\n  unanswered requests: %s"
       (if outstanding = [] then "none registered"
        else
          String.concat ", "
            (List.map
               (fun (c, r) -> Printf.sprintf "client %d req %d" c r)
               outstanding)));
  List.iter
    (fun r ->
      let threads = Replica.threads_overview r in
      let locks = Replica.lock_holders r in
      Buffer.add_string buf
        (Printf.sprintf "\n  replica %d: %s" (Replica.id r)
           (if threads = [] then "quiescent"
            else
              String.concat ", "
                (List.map
                   (fun (tid, st) ->
                     Printf.sprintf "t%d %s" tid (status_to_string st))
                   threads)));
      if locks <> [] then
        Buffer.add_string buf
          (Printf.sprintf "; locks held: %s"
             (String.concat ", "
                (List.map
                   (fun (m, tid) -> Printf.sprintf "mutex %d by t%d" m tid)
                   locks))))
    (Active.live_replicas system);
  Buffer.contents buf

(* When the event queue drains with clients still waiting, a bare "deadlock?"
   helps nobody: name the stuck clients and append per-system forensics. *)
let stuck_header ~stuck =
  Printf.sprintf
    "simulation drained with %d client(s) still waiting (deadlock?)\n\
    \  stuck clients: %s"
    (List.length stuck)
    (String.concat ", "
       (List.map (fun id -> Printf.sprintf "client %d" id) stuck))

let run_clients_stats_on ~engine ~submit
    ?(diagnose = fun ~stuck -> stuck_header ~stuck) ~clients
    ~requests_per_client ~gen ?(think_time_ms = 0.0) ?(seed = 42L) ?until_ms
    ?timeout_ms ?max_retries () =
  let master = Rng.create seed in
  let all =
    List.init clients (fun id ->
        create_on ~engine ~submit ~id ~rng:(Rng.split master) ~gen
          ~think_time_ms ~max_requests:requests_per_client ?timeout_ms
          ?max_retries ())
  in
  List.iter start all;
  Engine.run ?until:until_ms engine;
  let stuck = List.filter in_flight all in
  if stuck <> [] && until_ms = None then
    failwith (diagnose ~stuck:(List.map (fun c -> c.id) stuck));
  { run_completed = List.fold_left (fun n c -> n + completed c) 0 all;
    run_retries = List.fold_left (fun n c -> n + retries c) 0 all;
    run_outstanding = List.length stuck }

let run_clients_stats ~engine ~system ~clients ~requests_per_client ~gen
    ?(think_time_ms = 0.0) ?(seed = 42L) ?until_ms ?timeout_ms ?max_retries
    () =
  run_clients_stats_on ~engine ~submit:(active_submit system)
    ~diagnose:(fun ~stuck ->
      stuck_header ~stuck ^ active_diagnostics system)
    ~clients ~requests_per_client ~gen ~think_time_ms ~seed ?until_ms
    ?timeout_ms ?max_retries ()

let run_clients ~engine ~system ~clients ~requests_per_client ~gen
    ?(think_time_ms = 0.0) ?(seed = 42L) ?until_ms () =
  ignore
    (run_clients_stats ~engine ~system ~clients ~requests_per_client ~gen
       ~think_time_ms ~seed ?until_ms ())
