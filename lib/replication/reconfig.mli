(** Deterministic elastic reconfiguration: live shard split / merge and
    scheduler hot swap over the {!Shard} substrate.

    A {!t} is a dynamic set of {!Active} groups behind an epoch-versioned
    routing table.  Object (mutex) ids hash onto a {e fixed} slot space
    ({!Shard.route} over [params.slots]); an epoch assigns each slot to a
    live group, so elasticity moves slots between groups without ever moving
    an object's hash placement.  Requests route exactly as in {!Shard}:
    single-group closures take the fast path, multi-group closures run the
    two-phase ordered delivery over the epoch's group set.

    Every elastic operation — {!command} — runs the same totally-ordered
    transition protocol:

    + a barrier is stamped into the coordinator group's total order
      ({!Active.order_barrier}) and spread to every live group, so each
      replica observes the epoch change at a slot of its own order;
    + admission freezes: new submissions and client retries queue;
    + the in-flight window drains deterministically — every pending request
      (cross-group two-phase deliveries included) is answered and every live
      group reaches quiescence, the invariant {!Active.recover_replica}'s
      donor sampling relies on (a drain that exceeds
      [params.drain_timeout_ms] of virtual time aborts the command instead
      of wedging the run);
    + the command applies: split bootstraps a fresh group from the donor's
      quiescent snapshot ({!Active.bootstrap}) and hands it half the donor's
      slots; merge folds the retiring group's state counters and dedup
      ledger into the survivor ({!Active.absorb_state},
      {!Active.merge_dedups}) and reassigns its slots; hot swap reincarnates
      a group under a new scheduler with the full substrate state carried
      over.  The epoch increments and every live group's membership view is
      re-tagged ({!Detmt_gcs.Group.set_epoch});
    + admission thaws and the held queue flushes in FIFO order, with every
      entry re-resolving its route under the new epoch.

    All of it is driven by seeded simulation events, so equal-seed runs
    transition at identical virtual times with identical barrier sequence
    numbers — {!fingerprint} and {!epochs_agree} are the oracles.  A 1-group
    epoch-0 system is byte-for-byte the unsharded {!Active} path. *)

type t

type command =
  | Split of int
      (** [Split g]: a fresh group takes every second slot [g] owns. *)
  | Merge of { from_g : int; into : int }
      (** [from_g] retires; [into] absorbs its slots, state and ledger. *)
  | Hot_swap of { group : int; scheduler : string }
      (** Rebuild [group]'s decision module under [scheduler] (a
          {!Detmt_sched.Registry} name) at a drained barrier. *)

val command_to_string : command -> string

type transition = {
  tr_epoch : int;  (** the epoch this transition established *)
  tr_at_ms : float;  (** virtual time the command applied *)
  tr_barrier_seq : int;  (** the barrier's coordinator total-order slot *)
  tr_command : command;
  tr_groups : int;  (** live groups after the transition *)
}

type params = {
  initial_groups : int;
  slots : int;
      (** size of the fixed routing-slot space; slot [s] starts on group
          [s mod initial_groups] *)
  max_groups : int;  (** hard cap on concurrently live groups *)
  base : Active.params;
      (** per-group template, as in {!Shard.params}: [shard] /
          [replica_base] / [faults] are derived per incarnation,
          [base.replica_base] must be 0 *)
  drain_poll_ms : float;  (** how often a draining barrier re-checks *)
  drain_timeout_ms : float;
      (** virtual-time budget for a drain; exceeding it aborts the command *)
}

val default_params : params
(** 1 initial group, 64 slots, cap 16, over {!Active.default_params}. *)

(** {2 Autoscaling}

    A deterministic controller over the per-group queue depths the router
    maintains (exported as [reconfig.<g>.queue_depth] detmt.obs gauges):
    split the hottest group above the high watermark, merge cold groups
    below the low one, and — when [hot_swap] — consult
    {!Detmt_sched.Adaptive.recommend} to rebuild the hottest group's
    scheduler mid-run.  At most one command per tick; ticks re-arm only
    while work is in flight, so the controller never keeps the simulation
    alive. *)

type policy = {
  interval_ms : float;  (** tick period (virtual time) *)
  split_above : int;  (** split the hottest group at this queue depth *)
  merge_below : int;  (** groups at or below this depth are mergeable *)
  max_live : int;  (** controller's own live-group ceiling *)
  min_live : int;  (** never merge below this many groups *)
  hot_swap : bool;  (** allow mid-run scheduler swaps *)
}

val default_policy : policy

val create :
  ?obs:Detmt_obs.Recorder.t ->
  ?on_group:(index:int -> Active.t -> unit) ->
  engine:Detmt_sim.Engine.t ->
  cls:Detmt_lang.Class_def.t ->
  params:params ->
  unit ->
  t
(** [on_group] fires for every group the system ever creates — the initial
    ones and every split / hot-swap incarnation — before it carries any
    traffic; chaos monitors and explorer oracles hook in here.
    @raise Invalid_argument on inconsistent [params]. *)

val request : t -> command -> unit
(** Start (or, while a transition is in progress, queue) an elastic command.
    Queued commands are validated only when they reach the front; one the
    world has outrun (e.g. a merge of a since-retired group) aborts instead
    of applying.
    @raise Invalid_argument when no transition is in progress and the
    command is invalid right now. *)

val request_at : t -> at:float -> command -> unit
(** Schedule [request] at virtual time [at].  A command the world has
    outrun by then (its group missing or retired) is dropped and counted in
    {!aborted_transitions} instead of raising — it races every transition
    scheduled before it. *)

val set_autoscale : t -> policy -> unit
(** Install the autoscaling controller (arm it before the clients run). *)

val submit :
  t ->
  client:int ->
  client_req:int ->
  meth:string ->
  args:Detmt_lang.Ast.value array ->
  on_reply:(response_ms:float -> unit) ->
  unit
(** Route and submit one request ({!Client.submit_fn} shape).  Exactly-once
    end to end across epochs: a submission or retry arriving while a
    transition is draining is held and re-routed under the new epoch, a
    retry of an already-answered request is dropped, and a retry landing on
    a freshly split group is suppressed by the dedup ledger the group
    inherited from its donor.  Response times are measured from first
    admission, so reconfiguration stalls are paid honestly. *)

val kill_replica : t -> group:int -> offset:int -> unit
(** Fail replica [offset] (0-based within the group) of group [group] now. *)

val recover_replica : t -> group:int -> offset:int -> at:float -> unit
(** Schedule the recovery of [offset] in group [group] at time [at].  The
    group's {e current} incarnation is resolved at fire time, so a recovery
    racing a hot swap lands on whichever incarnation serves the group when
    it fires. *)

val run_clients_stats :
  t ->
  clients:int ->
  requests_per_client:int ->
  gen:Client.request_gen ->
  ?think_time_ms:float ->
  ?seed:int64 ->
  ?until_ms:float ->
  ?timeout_ms:float ->
  ?max_retries:int ->
  unit ->
  Client.run_stats
(** Closed-loop clients against the elastic system — the same client code as
    the unsharded path, with an epoch-aware deadlock report. *)

val run_clients :
  t ->
  clients:int ->
  requests_per_client:int ->
  gen:Client.request_gen ->
  ?think_time_ms:float ->
  ?seed:int64 ->
  ?until_ms:float ->
  unit ->
  unit

(** {2 Introspection} *)

val engine : t -> Detmt_sim.Engine.t

val epoch : t -> int
(** Transitions applied so far. *)

val transitions : t -> transition list
(** In application order. *)

val group_count : t -> int
(** Live groups right now. *)

val live_systems : t -> Active.t list
(** The live groups' current incarnations, by ascending group index. *)

val groups_ever : t -> Active.t list
(** Every incarnation the system ever ran — live ones first, then retired
    (merged-away groups and pre-swap incarnations) — for whole-history
    consistency checks and counter totals. *)

val group_set :
  t -> meth:string -> args:Detmt_lang.Ast.value array -> int list
(** The live group indices a request involves under the current epoch,
    ascending — exposed for tests. *)

val route_of : t -> int -> int
(** Current owning group of object (mutex) id — exposed for tests. *)

val replies_received : t -> int

val reply_times : t -> float list
(** Client-side reply arrival times, in order. *)

val response_times : t -> Detmt_stats.Summary.t

val fast_path_requests : t -> int

val cross_group_requests : t -> int

val held_requests : t -> int
(** Submissions that queued behind a reconfiguration barrier. *)

val aborted_transitions : t -> int

val splits : t -> int

val merges : t -> int

val swaps : t -> int

val recoveries : t -> int
(** Completed recoveries across every incarnation. *)

val broadcasts : t -> int
(** Total broadcasts across every incarnation. *)

val duplicate_client_replies : t -> int
(** Across every incarnation; zero in a correct run. *)

val aggregate_state : t -> (string * int) list
(** State-field totals summed across live groups, sorted by field.  With
    commutative per-group counters this is the split/merge-invariant
    aggregate: a split-then-merge cycle leaves it exactly where the static
    run put it. *)

val consistent : t -> bool
(** Every incarnation's live replicas agree on state, acquisition order and
    trace — including retired incarnations, frozen at their last barrier. *)

val states_agree : t -> bool
(** Every incarnation's live replicas agree on observable state — the
    recovery-tolerant oracle ({!consistent} minus trace/acquisition
    comparison, which a recovered replica's suffix-only history cannot
    satisfy); the contract {!Chaos} checks after crash-recovery runs. *)

val epochs_agree : t -> bool
(** Within every incarnation, all live replicas hold identical barrier
    fingerprints ({!Active.barrier_fingerprints}): every epoch transition
    was observed bit-identically at the same total-order slot. *)

val fingerprint : t -> int64
(** FNV-1a fold of every incarnation's live-replica trace/state
    fingerprints, the reply count and the transition log (epoch, barrier
    slot, virtual time, command) — the seed-reproducibility oracle for
    elastic runs. *)
