open Detmt_sim
open Detmt_gcs
open Detmt_lang
module Recorder = Detmt_obs.Recorder

type params = {
  shards : int;
  base : Active.params;
}

let default_params = { shards = 2; base = Active.default_params }

(* ----------------------------- the router --------------------------- *)

(* Stable hash of an object (mutex) id — a SplitMix64 finalizer, a pure
   function of the id alone: no run state, no seed, no shard contents.
   Every client, every replica and every retry therefore agrees on the
   placement without communicating. *)
let route ~shards m =
  if shards <= 1 then 0
  else begin
    let z = Int64.add (Int64.of_int m) 0x9E3779B97F4A7C15L in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.unsigned_rem z (Int64.of_int shards))
  end

(* ------------------------- predicted lock closure -------------------- *)

(* Per start method: either the lock closure is exactly the mutexes carried
   in the listed argument positions (so the request's shard set is a pure
   function of its arguments), or it is opaque and the request must be
   ordered on every shard. *)
type plan =
  | Args of int list
  | Everywhere

exception Opaque

let arg_of_param = function Ast.Sp_arg i -> i | _ -> raise Opaque

(* Syntactic closure for schedulers without a §4.3 summary: walk the source
   body (through same-class calls) and collect every synchronisation
   parameter; anything that is not a plain request argument — [this],
   fields, globals, locals, unresolvable calls — makes the method opaque. *)
let rec scan_block cls visited acc body =
  List.fold_left (scan_stmt cls visited) acc body

and scan_stmt cls visited acc = function
  | Ast.Sync (p, body) -> scan_block cls visited (arg_of_param p :: acc) body
  | Ast.Lock_acquire p | Ast.Lock_release p | Ast.Wait p ->
    arg_of_param p :: acc
  | Ast.Wait_until { param = p; _ } -> arg_of_param p :: acc
  | Ast.Notify { param = p; _ } -> arg_of_param p :: acc
  | Ast.If (_, a, b) -> scan_block cls visited (scan_block cls visited acc a) b
  | Ast.Loop { body; _ } -> scan_block cls visited acc body
  | Ast.Call name -> scan_call cls visited acc name
  | Ast.Virtual_call { candidates; _ } ->
    List.fold_left (scan_call cls visited) acc candidates
  | Ast.Compute _ | Ast.Assign _ | Ast.Assign_field _ | Ast.Nested _
  | Ast.State_update _ | Ast.Sched_lock _ | Ast.Sched_unlock _
  | Ast.Lockinfo _ | Ast.Ignore_sync _ | Ast.Loop_enter _ | Ast.Loop_exit _
    ->
    acc

and scan_call cls visited acc name =
  if List.mem name !visited then acc
  else begin
    visited := name :: !visited;
    match Class_def.find_method cls name with
    | None -> raise Opaque
    | Some m -> scan_block cls visited acc m.body
  end

let static_plan cls (m : Class_def.method_def) =
  match scan_block cls (ref [ m.name ]) [] m.body with
  | acc -> Args (List.sort_uniq compare acc)
  | exception Opaque -> Everywhere

(* With a prediction summary the closure is already computed (inlining,
   loop scopes, classification); a method is argument-routable exactly when
   every syncid's parameter is a request argument. *)
let summary_plan (m : Detmt_analysis.Predict.method_summary) =
  if m.fallback then Everywhere
  else
    match
      List.map
        (fun (si : Detmt_analysis.Predict.sid_info) -> arg_of_param si.param)
        m.sids
    with
    | ps -> Args (List.sort_uniq compare ps)
    | exception Opaque -> Everywhere

(* The mutex ids a request's routing depends on, straight from the plan:
   [None] when the closure is opaque or the arguments malformed (order
   everywhere), [Some []] when the request locks nothing. *)
let plan_mutexes plans ~meth ~args =
  match Hashtbl.find_opt plans meth with
  | None | Some Everywhere -> None
  | Some (Args positions) ->
    List.fold_left
      (fun acc i ->
        match acc with
        | None -> None
        | Some ms ->
          if i < Array.length args then
            match args.(i) with
            | Ast.Vmutex m -> Some (m :: ms)
            | _ -> None
          else None)
      (Some []) positions

let plan_table ~summary cls =
  let plans = Hashtbl.create 8 in
  List.iter
    (fun (m : Class_def.method_def) ->
      let plan =
        match summary with
        | Some cs -> (
          match Detmt_analysis.Predict.find_method cs m.name with
          | Some ms -> summary_plan ms
          | None -> Everywhere)
        | None -> static_plan cls m
      in
      Hashtbl.replace plans m.name plan)
    (Class_def.start_methods cls);
  plans

(* ------------------------------ the system --------------------------- *)

(* A cross-shard request waits for every involved group to answer; the
   latch fires the client callback exactly once, when the slowest group's
   first replica reply lands. *)
type latch = {
  mutable remaining : int;
  sent_at : float;
  on_reply : response_ms:float -> unit;
}

type t = {
  engine : Engine.t;
  params : params;
  obs : Recorder.t;
  groups : Active.t array;
  plans : (string, plan) Hashtbl.t;
  pending : (int * int, latch) Hashtbl.t;
  answered : (int * int, unit) Hashtbl.t;
  response_times : Detmt_stats.Summary.t;
  cross_set_sizes : Detmt_stats.Summary.t;
  mutable replies : int;
  mutable reply_times : float list; (* newest first *)
  mutable fast_path : int;
  mutable cross_path : int;
}

(* Each shard gets its own deterministic network weather, derived from the
   base seed; shard 0 keeps the base seed untouched so a 1-shard system is
   byte-for-byte the unsharded one. *)
let salt_faults shard (spec : Faults.spec) =
  if shard = 0 then spec
  else
    { spec with
      Faults.seed =
        Int64.logxor spec.Faults.seed
          (Int64.mul (Int64.of_int shard) 0x9E3779B97F4A7C15L) }

let create ?(obs = Recorder.disabled) ~engine ~cls ~(params : params) () =
  if params.shards < 1 then invalid_arg "Shard.create: shards < 1";
  if params.base.Active.replica_base <> 0 then
    invalid_arg "Shard.create: base.replica_base must be 0";
  let groups =
    Array.init params.shards (fun s ->
        let base =
          { params.base with
            Active.shard = s;
            replica_base = s * params.base.Active.replicas;
            faults = Option.map (salt_faults s) params.base.Active.faults }
        in
        Active.create ~obs ~engine ~cls ~params:base ())
  in
  (* The transformation is deterministic, so every group computed the same
     summary; group 0's copy drives the routing plans. *)
  let plans = plan_table ~summary:(Active.summary groups.(0)) cls in
  { engine; params; obs; groups; plans; pending = Hashtbl.create 256;
    answered = Hashtbl.create 256;
    response_times = Detmt_stats.Summary.create ();
    cross_set_sizes = Detmt_stats.Summary.create (); replies = 0;
    reply_times = []; fast_path = 0; cross_path = 0 }

let all_shards t = List.init t.params.shards (fun s -> s)

(* The shard set of one request: a deterministic function of the method's
   routing plan and the request arguments — nothing else.  Requests whose
   closure is opaque (or whose mutex arguments are malformed) are ordered
   everywhere; requests that lock nothing run on shard 0. *)
let shard_set t ~meth ~args =
  if t.params.shards = 1 then [ 0 ]
  else
    match plan_mutexes t.plans ~meth ~args with
    | None -> all_shards t
    | Some [] -> [ 0 ]
    | Some ms ->
      List.sort_uniq compare
        (List.map (fun m -> route ~shards:t.params.shards m) ms)

(* Arrival at the client is one client hop after the group's reply event —
   the same convention as [Active.reply_times], so a 1-shard run records
   the identical series. *)
let client_arrival t =
  Engine.now t.engine +. t.params.base.Active.client_latency_ms

let note_reply t ~response_ms =
  t.replies <- t.replies + 1;
  Detmt_stats.Summary.add t.response_times response_ms;
  t.reply_times <- client_arrival t :: t.reply_times;
  if Recorder.enabled t.obs then begin
    Recorder.incr t.obs "shard.replies";
    Recorder.observe t.obs "shard.response_ms" response_ms;
    Recorder.set_gauge t.obs "shard.cross_inflight"
      (float_of_int (Hashtbl.length t.pending))
  end

let submit t ~client ~client_req ~meth ~args ~on_reply =
  let key = (client, client_req) in
  if not (Hashtbl.mem t.answered key) then
    match shard_set t ~meth ~args with
    | [ s ] ->
      (* Fast path: the whole lock closure lives on one shard — no
         coordination, just that group's total order. *)
      if not (Hashtbl.mem t.pending key) then begin
        Hashtbl.replace t.pending key
          { remaining = 1; sent_at = Engine.now t.engine;
            on_reply = (fun ~response_ms:_ -> ()) };
        t.fast_path <- t.fast_path + 1;
        if Recorder.enabled t.obs then begin
          Recorder.incr t.obs "shard.fast_path";
          Recorder.incr t.obs (Printf.sprintf "shard.%d.requests" s)
        end
      end;
      Active.submit t.groups.(s) ~client ~client_req ~meth ~args
        ~on_reply:(fun ~response_ms ->
          Hashtbl.remove t.pending key;
          Hashtbl.replace t.answered key ();
          note_reply t ~response_ms;
          on_reply ~response_ms)
    | [] -> assert false
    | coordinator :: followers as involved ->
      (* Cross-shard two-phase ordered delivery.  Phase 1 orders the request
         on the coordinator (the smallest involved shard); the moment it is
         stamped into the coordinator's total order, phase 2 submits it to
         the remaining shards in ascending order.  Both phases run through
         the groups' ordinary total-order paths, so the outcome is a pure
         function of the seed.  The latch survives client retries: a
         resubmission reuses it (each group answers a key exactly once, so a
         second latch could never drain). *)
      let latch =
        match Hashtbl.find_opt t.pending key with
        | Some l -> l
        | None ->
          let l =
            { remaining = List.length involved;
              sent_at = Engine.now t.engine; on_reply }
          in
          Hashtbl.replace t.pending key l;
          t.cross_path <- t.cross_path + 1;
          Detmt_stats.Summary.add t.cross_set_sizes
            (float_of_int (List.length involved));
          if Recorder.enabled t.obs then begin
            Recorder.incr t.obs "shard.cross_path";
            Recorder.observe t.obs "shard.cross_set_size"
              (float_of_int (List.length involved));
            Recorder.set_gauge t.obs "shard.cross_inflight"
              (float_of_int (Hashtbl.length t.pending));
            List.iter
              (fun s ->
                Recorder.incr t.obs (Printf.sprintf "shard.%d.requests" s))
              involved
          end;
          l
      in
      let group_reply ~response_ms:_ =
        latch.remaining <- latch.remaining - 1;
        if latch.remaining = 0 then begin
          Hashtbl.remove t.pending key;
          Hashtbl.replace t.answered key ();
          let response_ms = client_arrival t -. latch.sent_at in
          note_reply t ~response_ms;
          latch.on_reply ~response_ms
        end
      in
      Active.submit t.groups.(coordinator) ~client ~client_req ~meth ~args
        ~on_reply:group_reply
        ~on_ordered:(fun ~seq:_ ->
          List.iter
            (fun s ->
              Active.submit t.groups.(s) ~client ~client_req ~meth ~args
                ~on_reply:group_reply)
            followers)

(* ------------------------------ clients ------------------------------ *)

let diagnose t ~stuck =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "simulation drained with %d client(s) still waiting (deadlock?)\n\
       \  stuck clients: %s"
       (List.length stuck)
       (String.concat ", "
          (List.map (fun id -> Printf.sprintf "client %d" id) stuck)));
  Array.iteri
    (fun s g ->
      Buffer.add_string buf (Printf.sprintf "\n shard %d:" s);
      Buffer.add_string buf (Client.active_diagnostics g))
    t.groups;
  Buffer.contents buf

let run_clients_stats t ~clients ~requests_per_client ~gen ?think_time_ms
    ?seed ?until_ms ?timeout_ms ?max_retries () =
  Client.run_clients_stats_on ~engine:t.engine
    ~submit:(fun ~client ~client_req ~meth ~args ~on_reply ->
      submit t ~client ~client_req ~meth ~args ~on_reply)
    ~diagnose:(fun ~stuck -> diagnose t ~stuck)
    ~clients ~requests_per_client ~gen ?think_time_ms ?seed ?until_ms
    ?timeout_ms ?max_retries ()

let run_clients t ~clients ~requests_per_client ~gen ?think_time_ms ?seed
    ?until_ms () =
  ignore
    (run_clients_stats t ~clients ~requests_per_client ~gen ?think_time_ms
       ?seed ?until_ms ())

(* ----------------------------- accessors ----------------------------- *)

let engine t = t.engine

let shards t = t.params.shards

let groups t = t.groups

let replies_received t = t.replies

let reply_times t = List.rev t.reply_times

let response_times t = t.response_times

let cross_set_sizes t = t.cross_set_sizes

let fast_path_requests t = t.fast_path

let cross_shard_requests t = t.cross_path

let broadcasts t =
  Array.fold_left (fun n g -> n + Active.broadcasts g) 0 t.groups

let wire_batches t =
  Array.fold_left (fun n g -> n + Active.wire_batches g) 0 t.groups

let consistent t =
  Array.for_all
    (fun g ->
      Consistency.consistent (Consistency.check (Active.live_replicas g)))
    t.groups

(* One number summarising the whole run — every group's replica traces and
   states plus the reply count, FNV-1a folded.  Two runs of the same seeded
   configuration must produce the same fingerprint. *)
let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  Array.iter
    (fun g ->
      List.iter
        (fun r ->
          mix (Int64.of_int (Detmt_runtime.Replica.id r));
          mix
            (Detmt_sim.Trace.fingerprint (Detmt_runtime.Replica.trace r));
          mix (Detmt_runtime.Replica.state_fingerprint r))
        (Active.live_replicas g))
    t.groups;
  mix (Int64.of_int t.replies);
  !h
