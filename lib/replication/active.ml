open Detmt_sim
open Detmt_gcs
open Detmt_runtime
module Recorder = Detmt_obs.Recorder

type payload =
  | P_request of {
      client : int;
      client_req : int;
      meth : string;
      args : Detmt_lang.Ast.value array;
      sent_at : float;
      dummy : bool;
    }
  | P_nested_reply of { tid : int; call_index : int }
  | P_control of Sched_iface.control
  | P_barrier of { epoch : int; label : string }
      (* an elastic reconfiguration barrier: totally ordered like any
         request, a no-op for the interpreter — its slot is the agreed point
         every replica transitions the routing epoch at *)

type params = {
  replicas : int;
  scheduler : string;
  workers : int; (* simulated worker-pool width for parallel schedulers *)
  config : Config.t;
  net_latency_ms : float;
  client_latency_ms : float;
  detection_timeout_ms : float;
  faults : Faults.spec option;
  recovery_poll_ms : float;
  shard : int; (* which shard this group serialises; 0 when unsharded *)
  replica_base : int; (* replica ids are [base, base + replicas) *)
  batching : Totem.batching option;
}

let default_params =
  { replicas = 3; scheduler = "mat"; workers = 1; config = Config.default;
    net_latency_ms = 0.5; client_latency_ms = 0.5;
    detection_timeout_ms = 50.0; faults = None; recovery_poll_ms = 1.0;
    shard = 0; replica_base = 0; batching = None }

type checkpoint_sink =
  replica:int -> seq:int -> hash:int64 -> state:(string * int) list -> unit

type t = {
  engine : Engine.t;
  params : params;
  obs : Recorder.t;
  bus : payload Totem.t;
  grp : Group.t;
  cls_instr : Detmt_lang.Class_def.t; (* instrumented class, for recovery *)
  mutable members : Replica.t list;
  mutable dedups : Dedup.t array;
  summary : Detmt_analysis.Predict.class_summary option;
  scheduler : Detmt_sched.Registry.spec;
  (* client-side bookkeeping *)
  reply_waiters : (int * int, float * (response_ms:float -> unit)) Hashtbl.t;
      (* (client, client_req) -> (sent_at, callback) *)
  answered : (int * int, unit) Hashtbl.t;
      (* requests already answered at the client: with retries in play a
         late replica reply must never fire the callback a second time *)
  response_times : Detmt_stats.Summary.t;
  mutable replies : int;
  mutable duplicate_client_replies : int;
  mutable reply_times : float list; (* arrival times at clients, reversed *)
  (* nested invocations outstanding: (tid, call_index) -> (service, dur) *)
  outstanding_nested : (int * int, int * float) Hashtbl.t;
  mutable dummy_seq : int;
  (* recovery bookkeeping *)
  mutable log : payload Message.t list; (* every broadcast, newest first *)
  last_delivered : int array; (* per-replica total-order watermark *)
  completed_base : int array;
      (* completed requests folded into each replica's checkpoint sequence
         before its current incarnation started (a recovered replica's own
         counter restarts at zero) *)
  mutable checkpoint_sink : checkpoint_sink option;
  mutable recoveries : int;
  (* elastic reconfiguration: per-replica fold of every delivered barrier
     (seq, epoch, label) — bit-identical across replicas iff every replica
     saw every epoch transition at the same total-order slot *)
  barrier_fp : int64 array;
  barrier_seen : int array;
  (* pooled reply-delivery events: a replica's send_reply posts one typed
     event whose argument is a pool slot holding (from_replica, request),
     so the per-reply client-latency hop allocates nothing *)
  mutable rp_from : int array; (* sender replica; freelist link when free *)
  mutable rp_req : Request.t array;
  mutable rp_free : int;
  mutable rp_cap : int;
  mutable reply_h : Engine.handler_id;
}

let blank_request = Request.dummy ~uid:(-1) ~sent_at:0.0

let rp_grow t =
  let cap = max 16 (2 * t.rp_cap) in
  let from = Array.make cap (-1) and req = Array.make cap blank_request in
  Array.blit t.rp_from 0 from 0 t.rp_cap;
  Array.blit t.rp_req 0 req 0 t.rp_cap;
  for i = t.rp_cap to cap - 2 do
    from.(i) <- i + 1
  done;
  from.(cap - 1) <- -1;
  t.rp_free <- t.rp_cap;
  t.rp_from <- from;
  t.rp_req <- req;
  t.rp_cap <- cap

let rp_alloc t =
  if t.rp_free < 0 then rp_grow t;
  let s = t.rp_free in
  t.rp_free <- t.rp_from.(s);
  s

let leader_id t = Group.leader t.grp

let is_leader t id = leader_id t = id

(* Replica ids live in [base, base + replicas); per-replica arrays are
   indexed by the id's offset into that window. *)
let slot t id = id - t.params.replica_base

(* Every broadcast goes through here so recovery can replay the suffix a
   rejoining replica missed. *)
let bcast t ~sender ~kind payload =
  Totem.count_kind t.bus kind;
  let seq = Totem.broadcast t.bus ~sender payload in
  t.log <-
    { Message.seq; sender; sent_at = Engine.now t.engine; payload } :: t.log;
  seq

(* Every replica registers the outstanding call (so a view change can
   re-issue calls the dead invoker never completed); only the invoker
   schedules the external service. *)
let register_nested t ~tid ~call_index ~service ~duration =
  if not (Hashtbl.mem t.outstanding_nested (tid, call_index)) then
    Hashtbl.replace t.outstanding_nested (tid, call_index) (service, duration)

let perform_nested t ~by ~tid ~call_index ~service ~duration =
  register_nested t ~tid ~call_index ~service ~duration;
  Engine.schedule t.engine ~delay:duration (fun () ->
      (* Do not answer twice, and a replica that died while the external call
         was in flight cannot spread the reply (the new leader re-issues). *)
      if
        Hashtbl.mem t.outstanding_nested (tid, call_index)
        && Group.alive t.grp by
      then
        ignore
          (bcast t ~sender:(-2) ~kind:"nested-reply"
             (P_nested_reply { tid; call_index })))

let inject_dummy t ~from_replica =
  (* Every replica's PDS timer fires; only the leader broadcasts so the
     group sees each filler exactly once. *)
  if is_leader t from_replica then begin
    t.dummy_seq <- t.dummy_seq + 1;
    ignore
      (bcast t ~sender:(-1) ~kind:"pds-dummy"
         (P_request
            { client = -1; client_req = t.dummy_seq; meth = "__dummy";
              args = [||]; sent_at = Engine.now t.engine; dummy = true }))
  end

let on_first_reply t ~from_replica (req : Request.t) =
  let key = (req.client, req.client_req) in
  match Hashtbl.find_opt t.reply_waiters key with
  | None -> () (* later replicas' replies for an already-answered request *)
  | Some (sent_at, callback) ->
    Hashtbl.remove t.reply_waiters key;
    if Hashtbl.mem t.answered key then
      (* A retry re-registered the waiter after the answer was delivered;
         firing the callback again would violate exactly-once. *)
      t.duplicate_client_replies <- t.duplicate_client_replies + 1
    else begin
      Hashtbl.add t.answered key ();
      let response_ms =
        Engine.now t.engine +. t.params.client_latency_ms -. sent_at
      in
      Detmt_stats.Summary.add t.response_times response_ms;
      t.replies <- t.replies + 1;
      t.reply_times <-
        (Engine.now t.engine +. t.params.client_latency_ms) :: t.reply_times;
      if Recorder.enabled t.obs then begin
        Recorder.reply_observed t.obs ~replica:from_replica
          ~uid:req.Request.uid ~client:req.client ~client_req:req.client_req
          ~response_ms;
        Recorder.incr t.obs "active.replies";
        Recorder.observe t.obs "active.response_ms" response_ms;
        Recorder.set_gauge t.obs "active.inflight"
          (float_of_int (Hashtbl.length t.reply_waiters))
      end;
      callback ~response_ms
    end

let make_replica t ~engine ~cls ~id =
  let callbacks =
    { Replica.send_reply =
        (fun req ->
          let s = rp_alloc t in
          t.rp_from.(s) <- id;
          t.rp_req.(s) <- req;
          Engine.post engine ~delay:t.params.client_latency_ms t.reply_h s);
      do_nested =
        (fun ~tid ~call_index ~service ~duration ->
          register_nested t ~tid ~call_index ~service ~duration;
          if is_leader t id then
            perform_nested t ~by:id ~tid ~call_index ~service ~duration);
      broadcast_control =
        (fun control ->
          ignore (bcast t ~sender:id ~kind:"control" (P_control control)));
      inject_dummy = (fun () -> inject_dummy t ~from_replica:id);
      is_leader = (fun () -> is_leader t id) }
  in
  let make_sched actions =
    Detmt_sched.Registry.instantiate
      (Detmt_sched.Sched_config.make ~runtime:t.params.config
         ?summary:t.summary ~obs:t.obs ~shard:t.params.shard
         ~workers:t.params.workers t.scheduler.name)
      actions
  in
  let r =
    Replica.create ~engine ~id ~cls ~config:t.params.config ~callbacks
      ~make_sched ~obs:t.obs ()
  in
  (* Divergence checkpoints at local quiescence: the state is then a pure
     function of the delivered request prefix, and the checkpoint sequence
     (base + locally completed) lines up across replicas — including a
     recovered one, whose base absorbs the donor's completed count. *)
  Replica.set_quiescent_hook r (fun ~completed ->
      if Replica.alive r then begin
        let seq = t.completed_base.(slot t id) + completed in
        if Recorder.enabled t.obs then
          Recorder.checkpoint t.obs ~replica:id ~seq
            ~at:(Engine.now t.engine);
        match t.checkpoint_sink with
        | Some sink ->
          sink ~replica:id ~seq
            ~hash:(Replica.state_fingerprint r)
            ~state:(Replica.state_snapshot r)
        | None -> ()
      end);
  r

let deliver t replica (msg : payload Message.t) =
  let id = Replica.id replica in
  t.last_delivered.(slot t id) <- msg.seq;
  match msg.payload with
  | P_request { client; client_req; meth; args; sent_at; dummy } ->
    if not (Dedup.mark t.dedups.(slot t id) ~client ~request:client_req)
    then begin
      let req =
        { Request.uid = msg.seq; client; client_req; meth; args; sent_at;
          dummy }
      in
      Replica.deliver_request replica req
    end
  | P_nested_reply { tid; call_index } ->
    Hashtbl.remove t.outstanding_nested (tid, call_index);
    Replica.nested_reply replica ~tid ~call_index
  | P_control control -> Replica.deliver_control replica ~sender:msg.sender control
  | P_barrier { epoch; label } ->
    let s = slot t id in
    t.barrier_seen.(s) <- t.barrier_seen.(s) + 1;
    let mix h v = Int64.add (Int64.mul h 1000003L) (Int64.of_int v) in
    t.barrier_fp.(s) <-
      mix (mix (mix t.barrier_fp.(s) msg.seq) epoch) (Hashtbl.hash label)

let create ?(obs = Recorder.disabled) ~engine ~cls ~(params : params) () =
  (* Continuous telemetry: window metrics by the virtual clock, snapshot
     the event-queue depth once per window, and (with a profiler attached)
     time the engine's pop/dispatch phases.  All observation-only. *)
  if Recorder.enabled obs then begin
    Recorder.set_clock obs (fun () -> Engine.now engine);
    Recorder.set_depth_probe obs (Some (fun () -> Engine.pending engine))
  end;
  (match Recorder.profiler obs with
  | Some p -> Detmt_obs.Profile.attach_engine p engine
  | None -> ());
  let scheduler = Detmt_sched.Registry.find_exn params.scheduler in
  let cls', summary =
    if scheduler.needs_prediction then
      let c, s = Detmt_transform.Transform.predictive cls in
      (c, Some s)
    else (Detmt_transform.Transform.basic cls, None)
  in
  if params.replica_base < 0 then
    invalid_arg "Active.create: replica_base < 0";
  let latency ~sender:_ ~dest:_ = params.net_latency_ms in
  let faults = Option.map Faults.create params.faults in
  let bus =
    Totem.create ~latency ?faults ~obs ?batching:params.batching engine
  in
  let members =
    List.init params.replicas (fun i -> params.replica_base + i)
  in
  let grp =
    Group.create engine ~members
      ~detection_timeout_ms:params.detection_timeout_ms
  in
  let t =
    { engine; params; obs; bus; grp; cls_instr = cls'; members = []; summary;
      scheduler;
      dedups = Array.init params.replicas (fun _ -> Dedup.create ());
      reply_waiters = Hashtbl.create 256; answered = Hashtbl.create 256;
      response_times = Detmt_stats.Summary.create (); replies = 0;
      duplicate_client_replies = 0; reply_times = [];
      outstanding_nested = Hashtbl.create 64; dummy_seq = 0;
      log = []; last_delivered = Array.make params.replicas (-1);
      completed_base = Array.make params.replicas 0;
      checkpoint_sink = None; recoveries = 0;
      barrier_fp = Array.make params.replicas 0x9E3779B97F4A7C15L;
      barrier_seen = Array.make params.replicas 0;
      rp_from = [||]; rp_req = [||]; rp_free = -1; rp_cap = 0; reply_h = 0 }
  in
  t.reply_h <-
    Engine.register_handler engine (fun s ->
        let from = t.rp_from.(s) and req = t.rp_req.(s) in
        (* clear the slot before dispatch so the request is collectable *)
        t.rp_req.(s) <- blank_request;
        t.rp_from.(s) <- t.rp_free;
        t.rp_free <- s;
        on_first_reply t ~from_replica:from req);
  let replicas =
    List.map (fun id -> make_replica t ~engine ~cls:cls' ~id) members
  in
  t.members <- replicas;
  List.iter
    (fun r ->
      Totem.subscribe bus ~id:(Replica.id r) (fun msg -> deliver t r msg))
    replicas;
  (* On a failure view the new leader re-issues outstanding nested calls the
     dead leader may never have completed.  Join views change nothing for
     the survivors: leadership is seniority-ordered, so a rejoining replica
     never takes over, and re-issuing nested calls would duplicate external
     side effects. *)
  Group.on_view_change grp (fun view ->
      match view.Group.cause with
      | Group.Initial | Group.Join _ -> ()
      | Group.Failure _ ->
        (* Tell every surviving scheduler about the new view (a promoted LSA
           leader must drain the old leader's published decisions and take
           over); then re-issue nested calls the dead invoker left behind. *)
        List.iter
          (fun r ->
            if Replica.alive r then
              Replica.deliver_control r ~sender:(-1)
                Detmt_runtime.Sched_iface.View_change)
          t.members;
        let pending =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.outstanding_nested []
          |> List.sort compare
        in
        List.iter
          (fun ((tid, call_index), (service, duration)) ->
            perform_nested t ~by:view.Group.leader ~tid ~call_index ~service
              ~duration)
          pending);
  t

let submit ?on_ordered t ~client ~client_req ~meth ~args ~on_reply =
  let key = (client, client_req) in
  (* A retry that raced with its own answer must not re-register a waiter:
     the next replica reply would fire the callback a second time. *)
  if not (Hashtbl.mem t.answered key) then begin
    let sent_at = Engine.now t.engine in
    Hashtbl.replace t.reply_waiters key (sent_at, on_reply);
    if Recorder.enabled t.obs then
      Recorder.set_gauge t.obs "active.inflight"
        (float_of_int (Hashtbl.length t.reply_waiters));
    (* client -> sequencer latency before the totally-ordered broadcast *)
    Engine.schedule t.engine ~delay:t.params.client_latency_ms (fun () ->
        if Recorder.enabled t.obs then
          Recorder.request_broadcast t.obs ~client ~client_req
            ~at:(Engine.now t.engine);
        let seq =
          bcast t ~sender:(1000 + client) ~kind:"request"
            (P_request { client; client_req; meth; args; sent_at;
                         dummy = false })
        in
        (* Fires once the request holds a slot in this group's total order —
           the hook cross-shard coordination hangs its second phase on. *)
        match on_ordered with Some f -> f ~seq | None -> ())
  end

let engine t = t.engine

let replicas t = t.members

let live_replicas t = List.filter Replica.alive t.members

let group t = t.grp

let kill_replica t id =
  List.iter
    (fun r -> if Replica.id r = id then Replica.set_alive r false)
    t.members;
  Totem.set_alive t.bus id false;
  Group.kill t.grp id

(* ------------------------------------------------------------------ *)
(* Crash recovery: rejoin through a group view change with a state
   transfer from a live donor.

   The donor is sampled at local quiescence, when its whole state — object
   fields, mutex-reference fields, scheduler bookkeeping — is a pure
   function of the delivered prefix of the total order (every request up to
   its watermark has fully executed, including nested calls and, under LSA,
   every grant at or below the watermark: per-subscriber FIFO delivery
   makes the watermark a prefix).  The suffix (logged messages past the
   watermark) is replayed to the new incarnation in sequence order before
   any post-join bus delivery can arrive, so the recovered replica observes
   exactly the donor's total order. *)

let recover_replica t ?at id =
  if not (List.exists (fun r -> Replica.id r = id) t.members) then
    invalid_arg (Printf.sprintf "Active.recover_replica: unknown replica %d" id);
  let begin_at = Option.value ~default:(Engine.now t.engine) at in
  let perform donor =
    let donor_id = Replica.id donor in
    let watermark = t.last_delivered.(slot t donor_id) in
    let state = Replica.state_snapshot donor in
    let mutex_fields =
      Object_state.mutex_field_snapshot (Replica.object_state donor)
    in
    let sched_state = Replica.sched_snapshot donor in
    let completed =
      t.completed_base.(slot t donor_id) + Replica.completed_requests donor
    in
    (* Fresh incarnation; the old Replica.t stays dead and inert. *)
    let r' = make_replica t ~engine:t.engine ~cls:t.cls_instr ~id in
    let obj = Replica.object_state r' in
    List.iter (fun (f, v) -> Object_state.set_state obj f v) state;
    List.iter (fun (f, v) -> Object_state.set_mutex_field obj f v) mutex_fields;
    Replica.sched_restore r' sched_state;
    t.members <-
      List.map (fun r -> if Replica.id r = id then r' else r) t.members;
    t.dedups.(slot t id) <- Dedup.copy t.dedups.(slot t donor_id);
    t.completed_base.(slot t id) <- completed;
    t.last_delivered.(slot t id) <- watermark;
    (* the donor's delivered prefix includes its barriers; the suffix replay
       below redelivers any past the watermark *)
    t.barrier_fp.(slot t id) <- t.barrier_fp.(slot t donor_id);
    t.barrier_seen.(slot t id) <- t.barrier_seen.(slot t donor_id);
    Totem.resubscribe t.bus ~id (fun msg -> deliver t r' msg);
    (* Everything broadcast so far is covered by snapshot + replay; stale
       in-flight copies addressed to the old incarnation must not leak in. *)
    (match t.log with
    | [] -> ()
    | newest :: _ -> Totem.advance_watermark t.bus ~id ~seq:newest.Message.seq);
    Group.join t.grp id;
    let suffix =
      List.filter
        (fun (m : payload Message.t) -> m.seq > watermark)
        (List.rev t.log)
    in
    (* One network hop later, before any same-or-later bus arrival: events
       scheduled for the same instant run in scheduling order. *)
    Engine.schedule t.engine ~delay:t.params.net_latency_ms (fun () ->
        List.iter (fun m -> deliver t r' m) suffix);
    t.recoveries <- t.recoveries + 1;
    if Recorder.enabled t.obs then begin
      Recorder.incr t.obs "active.recoveries";
      Recorder.observe t.obs "active.recovery.donor_wait_ms"
        (Engine.now t.engine -. begin_at);
      Recorder.observe t.obs "active.recovery.replayed_msgs"
        (float_of_int (List.length suffix))
    end
  in
  let rec attempt () =
    if List.exists (fun r -> Replica.id r = id && Replica.alive r) t.members
    then () (* already live *)
    else
      match
        List.find_opt
          (fun r -> Replica.alive r && Replica.id r <> id)
          t.members
      with
      | None ->
        failwith
          (Printf.sprintf
             "Active.recover_replica: no live donor for replica %d" id)
      | Some donor ->
        if Replica.active_threads donor > 0 then
          (* Wait for donor quiescence — the only moment the snapshot is a
             pure function of the delivered prefix. *)
          Engine.schedule t.engine ~delay:t.params.recovery_poll_ms attempt
        else perform donor
  in
  Engine.schedule_at t.engine ~time:begin_at attempt

let set_checkpoint_sink t sink = t.checkpoint_sink <- Some sink

let recoveries t = t.recoveries

(* ------------------------------------------------------------------ *)
(* Elastic reconfiguration support ({!Reconfig}).

   A barrier is a totally-ordered no-op: its slot is the agreed point of an
   epoch transition, and every replica folds (seq, epoch, label) into a
   per-replica fingerprint so tests can assert the transition was observed
   bit-identically.  The state-transfer helpers below reuse the recovery
   invariant: they may only run when the donor group is quiescent, i.e. its
   whole state is a pure function of the delivered prefix. *)

let order_barrier t ~epoch ~label ~on_ordered =
  let seq =
    bcast t ~sender:(-3) ~kind:"barrier" (P_barrier { epoch; label })
  in
  if Recorder.enabled t.obs then Recorder.incr t.obs "active.barriers";
  on_ordered ~seq

let barrier_fingerprints t =
  List.filter_map
    (fun r ->
      if Replica.alive r then
        Some (Replica.id r, t.barrier_fp.(slot t (Replica.id r)),
              t.barrier_seen.(slot t (Replica.id r)))
      else None)
    t.members

let quiescent t =
  List.for_all
    (fun r -> (not (Replica.alive r)) || Replica.active_threads r = 0)
    t.members
  && List.exists Replica.alive t.members

let lowest_live_donor t =
  match List.find_opt Replica.alive t.members with
  | Some r -> r
  | None -> failwith "Active: no live replica to donate state"

let donor_state t = Replica.state_snapshot (lowest_live_donor t)

(* Fold a retiring group's final state fields into every live replica —
   deterministic because it runs at a drained barrier, between any two
   delivered requests, identically on all replicas. *)
let absorb_state t ~delta =
  List.iter
    (fun r ->
      if Replica.alive r then
        let obj = Replica.object_state r in
        List.iter (fun (f, v) -> Object_state.update_state obj f v) delta)
    t.members

let merge_dedups t ~from =
  let donor = from.dedups.(slot from (Replica.id (lowest_live_donor from))) in
  Array.iter (fun d -> Dedup.merge ~into:d donor) t.dedups;
  (* The ledger now covers the retiree's dummy fillers (client -1); the
     survivor's own counter must clear them or its future fillers would be
     suppressed as duplicates and PDS rounds could never refill. *)
  t.dummy_seq <- max t.dummy_seq from.dummy_seq

(* Bootstrap a freshly created, traffic-free group from a quiescent donor
   group — the split / hot-swap state transfer.  Always carried: the
   duplicate-suppression ledger (a re-routed retry of an executed request
   must stay suppressed) and the mutex-reference fields.  [carry_state]
   additionally clones the object state fields and the donor's completed
   count (a hot swap continues the same logical group; a split starts its
   own per-group counters at zero and folds them back at merge).  Replica
   aliveness is mirrored so a swap cannot resurrect a crashed replica. *)
let bootstrap t ~from ~carry_state =
  if t.log <> [] || t.replies > 0 then
    invalid_arg "Active.bootstrap: target group already carried traffic";
  let donor = lowest_live_donor from in
  let donor_slot = slot from (Replica.id donor) in
  let state = Replica.state_snapshot donor in
  let mutex_fields =
    Object_state.mutex_field_snapshot (Replica.object_state donor)
  in
  let completed =
    from.completed_base.(donor_slot) + Replica.completed_requests donor
  in
  List.iter
    (fun r ->
      let obj = Replica.object_state r in
      List.iter (fun (f, v) -> Object_state.set_mutex_field obj f v)
        mutex_fields;
      if carry_state then begin
        List.iter (fun (f, v) -> Object_state.set_state obj f v) state;
        t.completed_base.(slot t (Replica.id r)) <- completed
      end)
    t.members;
  Array.iteri
    (fun i _ -> t.dedups.(i) <- Dedup.copy from.dedups.(donor_slot))
    t.dedups;
  (* The inherited ledger covers the donor's dummy fillers (client -1), so
     the filler counter must continue past them — restarting at zero would
     get every new filler dropped as a duplicate, wedging PDS rounds. *)
  t.dummy_seq <- from.dummy_seq;
  (* mirror crashes offset-for-offset so the group views line up *)
  List.iteri
    (fun i r ->
      match List.nth_opt from.members i with
      | Some old when not (Replica.alive old) -> kill_replica t (Replica.id r)
      | _ -> ())
    t.members

let faults t = Totem.faults t.bus

let suppressed_duplicates t = Totem.suppressed_duplicates t.bus

let watermark_suppressed t = Totem.watermark_suppressed t.bus

let set_delivery_oracle t oracle = Totem.set_delivery_oracle t.bus oracle

let set_flush_oracle t oracle = Totem.set_flush_oracle t.bus oracle

(* Order-sensitive hash of the broadcast log: seq, sender and payload
   identity of every message, in total order.  Two runs with equal order
   fingerprints delivered the same messages in the same order, so any reply
   or state difference between them is a scheduler-determinism bug rather
   than a shifted total order. *)
let order_fingerprint t =
  let mix h v = Int64.add (Int64.mul h 1000003L) (Int64.of_int v) in
  let payload_id = function
    | P_request r -> Hashtbl.hash (0, r.client, r.client_req, r.meth, r.dummy)
    | P_nested_reply r -> Hashtbl.hash (1, r.tid, r.call_index)
    | P_control c -> Hashtbl.hash (2, c)
    | P_barrier b -> Hashtbl.hash (3, b.epoch, b.label)
  in
  List.fold_left
    (fun h (m : payload Message.t) ->
      mix
        (mix (mix h m.Message.seq) m.Message.sender)
        (payload_id m.Message.payload))
    0x2545F4914F6CDD1DL (List.rev t.log)

let response_times t = t.response_times

let replies_received t = t.replies

let outstanding_requests t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.reply_waiters []
  |> List.filter (fun k -> not (Hashtbl.mem t.answered k))
  |> List.sort compare

let duplicate_client_replies t = t.duplicate_client_replies

let reply_times t = List.rev t.reply_times

let message_stats t = Totem.kind_counts t.bus

let broadcasts t = Totem.broadcasts t.bus

let wire_batches t = Totem.wire_batches t.bus

let shard t = t.params.shard

let params t = t.params

let summary t = t.summary

let scheduler_name t = t.scheduler.name
