type sid_info = {
  sid : int;
  param : Detmt_lang.Ast.sync_param;
  classification : Param_class.t;
  in_loops : int list;
}
[@@deriving show { with_path = false }, eq]

type loop_info = {
  lid : int;
  sids : int list;
  changing : bool;
  opaque : bool;
  bound : int option; (* statically known iteration upper bound, section 5 *)
}
[@@deriving show { with_path = false }, eq]

type method_summary = {
  mname : string;
  fallback : bool;
  fallback_reason : string option;
  sids : sid_info list;
  loops : loop_info list;
  uses_condvars : bool;
      (* the method body may execute a condvar wait/notify; conservative
         [true] for fallback and non-inlinable methods *)
}
[@@deriving show { with_path = false }, eq]

type class_summary = {
  class_name : string;
  methods : method_summary list;
}
[@@deriving show { with_path = false }, eq]

let find_method cs name =
  List.find_opt (fun m -> String.equal m.mname name) cs.methods

let sid_info ms sid = List.find_opt (fun i -> i.sid = sid) ms.sids

let loop_info ms lid = List.find_opt (fun l -> l.lid = lid) ms.loops

let spontaneous_sids ms =
  List.filter_map
    (fun i ->
      if Param_class.is_spontaneous i.classification then Some i.sid else None)
    ms.sids

let announceable_sids ms =
  List.filter_map
    (fun i ->
      if Param_class.is_spontaneous i.classification then None else Some i.sid)
    ms.sids

let fallback_summary ~mname ~reason =
  { mname; fallback = true; fallback_reason = Some reason; sids = [];
    loops = []; uses_condvars = true }

(* Syntactic scan for condition-variable use, run on the inlined body.  A
   remaining call (repository method, opaque region) is conservatively
   assumed to wait/notify. *)
let rec block_uses_condvars (b : Detmt_lang.Ast.block) =
  List.exists stmt_uses_condvars b

and stmt_uses_condvars (s : Detmt_lang.Ast.stmt) =
  match s with
  | Wait _ | Wait_until _ | Notify _ -> true
  | Sync (_, body) -> block_uses_condvars body
  | If (_, a, b) -> block_uses_condvars a || block_uses_condvars b
  | Loop { body; _ } -> block_uses_condvars body
  | Call _ | Virtual_call _ -> true
  | Compute _ | Assign _ | Assign_field _ | Lock_acquire _ | Lock_release _
  | Nested _ | State_update _ | Sched_lock _ | Sched_unlock _ | Lockinfo _
  | Ignore_sync _ | Loop_enter _ | Loop_exit _ ->
    false
