(** Static prediction summaries.

    This is the "static information that is used to initialise the scheduler"
    (section 4): for every start method, the list of syncids the programme
    flow can pass, the classification of each lock parameter, and the loop
    scopes.  The scheduler's bookkeeping module keeps a per-thread copy of
    this table and updates it from the injected [lockInfo] / [ignore] /
    loop-marker calls. *)

type sid_info = {
  sid : int;
  param : Detmt_lang.Ast.sync_param;
  classification : Param_class.t;
  in_loops : int list;  (** enclosing loop scopes, outermost first *)
}
[@@deriving show, eq]

type loop_info = {
  lid : int;
  sids : int list;  (** syncids transitively inside the scope *)
  changing : bool;
      (** kind-B loop or opaque-call region: mutexes unknown until exit *)
  opaque : bool;  (** scope wraps a non-analysable call, not a real loop *)
  bound : int option;
      (** statically known iteration upper bound (section 5: "determine
          upper bounds for loops"); [None] for request-dependent counts and
          opaque regions *)
}
[@@deriving show, eq]

type method_summary = {
  mname : string;
  fallback : bool;
      (** prediction disabled for this start method (e.g. recursion) *)
  fallback_reason : string option;
  sids : sid_info list;
  loops : loop_info list;
  uses_condvars : bool;
      (** the method body may execute a condvar wait/notify; conservatively
          [true] for fallback and non-inlinable methods *)
}
[@@deriving show, eq]

type class_summary = {
  class_name : string;
  methods : method_summary list;  (** one summary per start method *)
}
[@@deriving show, eq]

val find_method : class_summary -> string -> method_summary option

val sid_info : method_summary -> int -> sid_info option

val loop_info : method_summary -> int -> loop_info option

val spontaneous_sids : method_summary -> int list

val announceable_sids : method_summary -> int list

val fallback_summary : mname:string -> reason:string -> method_summary

val block_uses_condvars : Detmt_lang.Ast.block -> bool
(** Syntactic scan for condition-variable use ([Wait]/[Wait_until]/[Notify]),
    run on an inlined body; remaining opaque calls count as using them. *)
