(** CGS — conflict-graph scheduling ("early scheduling" for parallel
    state-machine replication).  Requests are assigned conflict classes at
    delivery time, resolved from the §4.3 prediction summary against their
    own arguments; class-disjoint requests run concurrently on the simulated
    worker pool while conflicting requests commit in total-order slot order,
    so replies, states and per-mutex acquisition fingerprints are
    independent of the worker count.  Construct via
    {!Registry.instantiate} with [Sched_config.workers]. *)

module Base : Decision.Parallel
(** ["cgs"]: static classes — a running request blocks its whole class until
    it terminates. *)

module Predicted : Decision.Parallel
(** ["pcgs"]: prediction-shrunk blocksets — once bookkeeping proves the
    prediction exact, a running request blocks only [held ∪ future] mutexes
    (early release), letting class successors start before it terminates.
    Condvar-using methods keep the static class. *)

module Workspace : Decision.Parallel
(** ["wss"]: workspace speculation — every condvar-free request executes
    immediately against a copy-on-write workspace
    ({!Detmt_runtime.Workspace}) and merges at its slot-order commit
    barrier, where stale reads abort and re-execute directly.  Virtual
    acquisitions are replayed into the acquisition fingerprints at commit,
    so observables (replies, states, per-mutex order) match SEQ exactly at
    any worker count. *)

module Safety_net : Decision.Parallel
(** ["cgs+ws"]: CGS dispatch for requests whose conflict class resolves,
    workspace speculation for the opaque ([Top]-class) ones plain CGS would
    serialise behind everything — the safety net that keeps mispredicted
    requests off the critical path.  Observables match ["cgs"] whenever
    predictions resolve every class. *)
