(** CGS — conflict-graph scheduling ("early scheduling" for parallel
    state-machine replication).  Requests are assigned conflict classes at
    delivery time, resolved from the §4.3 prediction summary against their
    own arguments; class-disjoint requests run concurrently on the simulated
    worker pool while conflicting requests commit in total-order slot order,
    so replies, states and per-mutex acquisition fingerprints are
    independent of the worker count.  Construct via
    {!Registry.instantiate} with [Sched_config.workers]. *)

module Base : Decision.Parallel
(** ["cgs"]: static classes — a running request blocks its whole class until
    it terminates. *)

module Predicted : Decision.Parallel
(** ["pcgs"]: prediction-shrunk blocksets — once bookkeeping proves the
    prediction exact, a running request blocks only [held ∪ future] mutexes
    (early release), letting class successors start before it terminates.
    Condvar-using methods keep the static class. *)
