(** PDS — preemptive deterministic scheduling (Basile et al. [1]).

    A pool of [Config.pds_batch] worker slots; threads run to their next
    lock request and locks are only granted in rounds, once every busy slot
    has arrived at a deterministic stop.  Includes the paper's optimised
    variant (up to two lock requests per round, which keeps nested
    synchronized blocks and lock coupling live) and the FTflex dummy-message
    mechanism that unblocks incomplete batches at the price of extra
    group-communication traffic (section 3.3).

    {!Predicted} (pPDS) shrinks round membership with the bookkeeping
    module: a member whose exact lock set is known, condvar-free and
    provably disjoint from every other live member leaves the round
    discipline entirely — its locks are granted on demand and the round does
    not wait for it.  It keeps its batch slot until termination, which
    delays the next round decision past its lifetime and keeps every
    decision input deterministic. *)

module Base : Decision.S
(** ["pds"], no prediction. *)

module Predicted : Decision.S
(** ["ppds"]: PDS with prediction-shrunk rounds. *)
