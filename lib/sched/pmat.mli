(** PMAT — predicted MAT (section 4.3): a queue of equal active threads; a
    lock is granted when every queue predecessor is predicted and provably
    does not conflict.  Requires the predictive transformation's summary
    (the substrate's bookkeeping module answers the conflict queries). *)

module Base : Decision.S
(** ["pmat"], needs prediction. *)
