(* SEQ — strictly sequential request execution in total order.

   The baseline most object replication systems use: one request runs from
   start to finish (nested invocations included) before the next starts.
   Trivially deterministic; never uses more than one CPU; does not use the
   idle time during nested invocations; deadlocks on re-entrant nested
   invocation chains and on any condition-variable wait. *)

open Detmt_runtime
module Audit = Detmt_obs.Audit

type t = {
  sub : Substrate.t;
  pending : int Queue.t; (* delivered, not yet started *)
  mutable active : int option;
}

let activate_next t =
  match Queue.take_opt t.pending with
  | None -> t.active <- None
  | Some tid ->
    t.active <- Some tid;
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "starts";
      Substrate.audit t.sub ~tid ~action:Audit.Start_thread
        ~rule:Audit.Sequential_turn
        ~candidates:(List.of_seq (Queue.to_seq t.pending))
        ()
    end;
    (Substrate.actions t.sub).start_thread tid

let on_request t tid =
  ignore (Substrate.admit t.sub ~tid);
  Queue.add tid t.pending;
  if t.active = None then activate_next t
  else if Substrate.observing t.sub then begin
    Substrate.incr t.sub "deferrals";
    Substrate.observe t.sub "queue_depth"
      (float_of_int (Queue.length t.pending));
    Substrate.audit t.sub ~tid ~action:Audit.Defer ~rule:Audit.Queue_wait
      ~candidates:(Option.to_list t.active)
      ()
  end

let on_lock t tid ~syncid:_ ~mutex =
  (* Only one thread ever runs, so every mutex is free (re-entrant entries
     are short-circuited by the replica). *)
  assert (t.active = Some tid);
  assert ((Substrate.actions t.sub).mutex_free_for ~tid ~mutex);
  if Substrate.observing t.sub then begin
    Substrate.incr t.sub "grants";
    Substrate.audit t.sub ~tid ~action:Audit.Grant_lock ~mutex
      ~rule:Audit.Mutex_free ()
  end;
  (Substrate.actions t.sub).grant_lock tid

let on_wakeup t tid ~mutex:_ =
  (* A wait under SEQ can only be woken by the same request chain; resume
     immediately.  (In practice waits deadlock under SEQ — see the paper's
     argument for multithreading.) *)
  (Substrate.actions t.sub).grant_reacquire tid

let on_nested_reply t tid =
  (* SEQ does not use the idle time: the active thread simply continues. *)
  (Substrate.actions t.sub).resume_nested tid

let policy sub : Sched_iface.sched =
  let t = { sub; pending = Queue.create (); active = None } in
  let base =
    Sched_iface.no_op_sched ~name:(Substrate.name sub)
      ~on_request:(on_request t) ~on_lock:(on_lock t) ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_terminate =
      (fun tid ->
        Substrate.retire t.sub ~tid;
        if t.active = Some tid then activate_next t) }

module Base : Decision.S = struct
  let name = "seq"

  let needs_prediction = false

  let policy = policy
end
