(* SEQ — strictly sequential request execution in total order.

   The baseline most object replication systems use: one request runs from
   start to finish (nested invocations included) before the next starts.
   Trivially deterministic; never uses more than one CPU; does not use the
   idle time during nested invocations; deadlocks on re-entrant nested
   invocation chains and on any condition-variable wait. *)

open Detmt_runtime
module Recorder = Detmt_obs.Recorder
module Audit = Detmt_obs.Audit

type t = {
  actions : Sched_iface.actions;
  pending : int Queue.t; (* delivered, not yet started *)
  mutable active : int option;
}

let audit t ~tid ~action ?mutex ~rule ?candidates () =
  Recorder.decision t.actions.obs ~at:(t.actions.now ())
    ~replica:t.actions.replica_id ~scheduler:"seq" ~tid ~action ?mutex ~rule
    ?candidates ()

let observing t = Recorder.enabled t.actions.obs

let activate_next t =
  match Queue.take_opt t.pending with
  | None -> t.active <- None
  | Some tid ->
    t.active <- Some tid;
    if observing t then begin
      Recorder.incr t.actions.obs "sched.seq.starts";
      audit t ~tid ~action:Audit.Start_thread ~rule:Audit.Sequential_turn
        ~candidates:(List.of_seq (Queue.to_seq t.pending))
        ()
    end;
    t.actions.start_thread tid

let on_request t tid =
  Queue.add tid t.pending;
  if t.active = None then activate_next t
  else if observing t then begin
    Recorder.incr t.actions.obs "sched.seq.deferrals";
    Recorder.observe t.actions.obs "sched.seq.queue_depth"
      (float_of_int (Queue.length t.pending));
    audit t ~tid ~action:Audit.Defer ~rule:Audit.Queue_wait
      ~candidates:(Option.to_list t.active)
      ()
  end

let on_lock t tid ~syncid:_ ~mutex =
  (* Only one thread ever runs, so every mutex is free (re-entrant entries
     are short-circuited by the replica). *)
  assert (t.active = Some tid);
  assert (t.actions.mutex_free_for ~tid ~mutex);
  if observing t then begin
    Recorder.incr t.actions.obs "sched.seq.grants";
    audit t ~tid ~action:Audit.Grant_lock ~mutex ~rule:Audit.Mutex_free ()
  end;
  t.actions.grant_lock tid

let on_wakeup t tid ~mutex:_ =
  (* A wait under SEQ can only be woken by the same request chain; resume
     immediately.  (In practice waits deadlock under SEQ — see the paper's
     argument for multithreading.) *)
  t.actions.grant_reacquire tid

let on_nested_reply t tid =
  (* SEQ does not use the idle time: the active thread simply continues. *)
  t.actions.resume_nested tid

let make (actions : Sched_iface.actions) : Sched_iface.sched =
  let t = { actions; pending = Queue.create (); active = None } in
  let base =
    Sched_iface.no_op_sched ~name:"seq"
      ~on_request:(on_request t)
      ~on_lock:(on_lock t)
      ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_terminate =
      (fun tid ->
        if t.active = Some tid then activate_next t) }
