open Detmt_runtime

type spec = {
  name : string;
  needs_prediction : bool;
  deterministic : bool;
  description : string;
  make :
    config:Config.t ->
    summary:Detmt_analysis.Predict.class_summary option ->
    Sched_iface.actions ->
    Sched_iface.sched;
}

(* Every entry except the adaptive meta-scheduler is a thin decision module
   behind {!Decision.S}; [Decision.instantiate] attaches the shared
   bookkeeping substrate (and the prediction table when the module asks for
   one). *)
let all =
  [ { name = "seq"; needs_prediction = false; deterministic = true;
      description = "sequential request execution in total order";
      make = Decision.instantiate (module Seq_sched.Base) };
    { name = "sat"; needs_prediction = false; deterministic = true;
      description = "single active thread [Jimenez-Peris et al.]";
      make = Decision.instantiate (module Sat.Base) };
    { name = "psat"; needs_prediction = true; deterministic = true;
      description = "predicted SAT: early token release by lock prediction";
      make = Decision.instantiate (module Sat.Predicted) };
    { name = "lsa"; needs_prediction = false; deterministic = true;
      description = "loose synchronisation, leader/follower [Basile et al.]";
      make = Decision.instantiate (module Lsa.Base) };
    { name = "pds"; needs_prediction = false; deterministic = true;
      description = "preemptive deterministic scheduling [Basile et al.]";
      make = Decision.instantiate (module Pds.Base) };
    { name = "ppds"; needs_prediction = true; deterministic = true;
      description = "predicted PDS: prediction-shrunk rounds";
      make = Decision.instantiate (module Pds.Predicted) };
    { name = "mat"; needs_prediction = false; deterministic = true;
      description = "multiple active threads [Reiser et al.]";
      make = Decision.instantiate (module Mat.Base) };
    { name = "mat-ll"; needs_prediction = true; deterministic = true;
      description = "MAT + last-lock analysis (Figure 2)";
      make = Decision.instantiate (module Mat.Last_lock) };
    { name = "pmat"; needs_prediction = true; deterministic = true;
      description = "predicted MAT: lock prediction by code analysis (4.3)";
      make = Decision.instantiate (module Pmat.Base) };
    { name = "adaptive"; needs_prediction = true; deterministic = true;
      description =
        "request analyser choosing the child scheduler at run time (5)";
      make =
        (fun ~config ~summary a ->
          Adaptive.of_config
            (Sched_config.make ?summary ~runtime:config "adaptive")
            a) };
    { name = "freefall"; needs_prediction = false; deterministic = false;
      description = "non-deterministic baseline (native JVM behaviour)";
      make = Decision.instantiate (module Freefall.Base) };
  ]

let paper_figure1 = [ "seq"; "sat"; "lsa"; "pds"; "mat" ]

let deterministic_decisions =
  List.filter_map
    (fun s ->
      if s.deterministic && s.name <> "adaptive" then Some s.name else None)
    all

let find name = List.find_opt (fun s -> String.equal s.name name) all

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scheduler %S (valid: %s)" name
         (String.concat ", " (List.map (fun s -> s.name) all)))

let instantiate (cfg : Sched_config.t) actions =
  let spec = find_exn cfg.Sched_config.scheduler in
  (match (spec.needs_prediction, cfg.Sched_config.summary) with
  | true, None ->
    invalid_arg
      (Printf.sprintf
         "Registry.instantiate: scheduler %S needs a prediction summary"
         spec.name)
  | _ -> ());
  spec.make ~config:cfg.Sched_config.runtime
    ~summary:cfg.Sched_config.summary actions
