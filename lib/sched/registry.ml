open Detmt_runtime

type spec = {
  name : string;
  needs_prediction : bool;
  deterministic : bool;
  parallel : bool;
  description : string;
  make : Sched_config.t -> Sched_iface.actions -> Sched_iface.sched;
}

(* Every entry except the adaptive meta-scheduler is a thin decision module
   behind {!Decision.Serial} or {!Decision.Parallel};
   [Decision.instantiate]/[instantiate_parallel] attach the shared
   bookkeeping substrate (and the prediction table when the module asks for
   one).  Parallel entries thread [Sched_config.workers] into the pool;
   serial entries ignore it (the registry rejects [workers > 1] for them
   before construction). *)

let serial m (cfg : Sched_config.t) actions =
  Decision.instantiate m ~config:cfg.Sched_config.runtime
    ~summary:cfg.Sched_config.summary actions

let parallel m (cfg : Sched_config.t) actions =
  Decision.instantiate_parallel m ~config:cfg.Sched_config.runtime
    ~summary:cfg.Sched_config.summary ~workers:cfg.Sched_config.workers
    actions

let all =
  [ { name = "seq"; needs_prediction = false; deterministic = true;
      parallel = false;
      description = "sequential request execution in total order";
      make = serial (module Seq_sched.Base) };
    { name = "sat"; needs_prediction = false; deterministic = true;
      parallel = false;
      description = "single active thread [Jimenez-Peris et al.]";
      make = serial (module Sat.Base) };
    { name = "psat"; needs_prediction = true; deterministic = true;
      parallel = false;
      description = "predicted SAT: early token release by lock prediction";
      make = serial (module Sat.Predicted) };
    { name = "lsa"; needs_prediction = false; deterministic = true;
      parallel = false;
      description = "loose synchronisation, leader/follower [Basile et al.]";
      make = serial (module Lsa.Base) };
    { name = "pds"; needs_prediction = false; deterministic = true;
      parallel = false;
      description = "preemptive deterministic scheduling [Basile et al.]";
      make = serial (module Pds.Base) };
    { name = "ppds"; needs_prediction = true; deterministic = true;
      parallel = false;
      description = "predicted PDS: prediction-shrunk rounds";
      make = serial (module Pds.Predicted) };
    { name = "mat"; needs_prediction = false; deterministic = true;
      parallel = false;
      description = "multiple active threads [Reiser et al.]";
      make = serial (module Mat.Base) };
    { name = "mat-ll"; needs_prediction = true; deterministic = true;
      parallel = false;
      description = "MAT + last-lock analysis (Figure 2)";
      make = serial (module Mat.Last_lock) };
    { name = "pmat"; needs_prediction = true; deterministic = true;
      parallel = false;
      description = "predicted MAT: lock prediction by code analysis (4.3)";
      make = serial (module Pmat.Base) };
    { name = "cgs"; needs_prediction = true; deterministic = true;
      parallel = true;
      description =
        "conflict-graph scheduling: delivery-time classes, worker pool";
      make = parallel (module Cgs.Base) };
    { name = "pcgs"; needs_prediction = true; deterministic = true;
      parallel = true;
      description = "predicted CGS: early release of prediction-exact classes";
      make = parallel (module Cgs.Predicted) };
    { name = "wss"; needs_prediction = true; deterministic = true;
      parallel = true;
      description =
        "workspace speculation: copy-on-write execution, slot-order merge";
      make = parallel (module Cgs.Workspace) };
    { name = "cgs+ws"; needs_prediction = true; deterministic = true;
      parallel = true;
      description =
        "CGS with a workspace safety net for opaque (Top-class) requests";
      make = parallel (module Cgs.Safety_net) };
    { name = "adaptive"; needs_prediction = true; deterministic = true;
      parallel = true (* may hand a worker pool to a conflict-graph child *);
      description =
        "request analyser choosing the child scheduler at run time (5)";
      make = (fun cfg a -> Adaptive.of_config cfg a) };
    { name = "freefall"; needs_prediction = false; deterministic = false;
      parallel = false;
      description = "non-deterministic baseline (native JVM behaviour)";
      make = serial (module Freefall.Base) };
  ]

let paper_figure1 = [ "seq"; "sat"; "lsa"; "pds"; "mat" ]

let deterministic_decisions =
  List.filter_map
    (fun s ->
      if s.deterministic && s.name <> "adaptive" then Some s.name else None)
    all

let parallel_decisions =
  List.filter_map
    (fun s ->
      if s.parallel && s.name <> "adaptive" then Some s.name else None)
    all

let find name = List.find_opt (fun s -> String.equal s.name name) all

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scheduler %S (valid: %s)" name
         (String.concat ", " (List.map (fun s -> s.name) all)))

let instantiate (cfg : Sched_config.t) actions =
  let spec = find_exn cfg.Sched_config.scheduler in
  (match (spec.needs_prediction, cfg.Sched_config.summary) with
  | true, None ->
    invalid_arg
      (Printf.sprintf
         "Registry.instantiate: scheduler %S needs a prediction summary"
         spec.name)
  | _ -> ());
  if cfg.Sched_config.workers > 1 && not spec.parallel then
    invalid_arg
      (Printf.sprintf
         "Registry.instantiate: scheduler %S is serial (workers=%d requested)"
         spec.name cfg.Sched_config.workers);
  spec.make cfg actions
