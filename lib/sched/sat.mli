(** SAT — single active thread (Jiménez-Peris et al. [6] for transactional
    replicas, adapted by Zhao et al. [13] for object replication; the FTflex
    variant [3] adds condition variables).

    Not concurrency: a new thread may start or resume only when the
    previously active thread suspends (wait, nested invocation, or a lock
    held by a suspended thread) or terminates.  Threads whose suspension
    reason has resolved queue FIFO and are activated one at a time.  Uses
    the idle time of nested invocations but never keeps more than one CPU
    busy (section 3.1).

    {!Predicted} (pSAT) adds the bookkeeping module: the activation token is
    released early once the active thread is past its last lock acquisition
    and holds no mutex, and such lock-free threads resume nested replies
    without queueing.  Per-mutex acquisition orders are untouched — a
    lock-free thread can no longer appear in one. *)

module Base : Decision.S
(** ["sat"], no prediction. *)

module Predicted : Decision.S
(** ["psat"]: SAT with early token release via lock prediction. *)
