(* MAT — multiple active threads (Reiser et al. [11]).

   One primary and any number of secondary active threads.  Only the primary
   may acquire locks; a secondary requesting a lock blocks until it becomes
   primary.  The oldest secondary becomes primary when the current primary
   suspends (wait or nested invocation) or terminates — unless a blocked
   ex-primary can continue, which takes priority.  Determinism follows
   because the lock-acquisition sequence is a function of program order and
   these deterministic promotion points only.

   The paper's criticism, reproduced here deliberately: a secondary blocks on
   its lock no matter whether it conflicts with the primary, and a primary
   that has released its last lock keeps delaying everybody until it
   terminates.

   The {!Last_lock} variant (MAT+LL, Figure 2) equips the substrate with the
   bookkeeping module: when it proves the primary will never lock again,
   primacy is handed over immediately, and lock-free threads are skipped
   during promotion.

   Decision-module state is only the primary designation; the thread records
   (role flags, pending operations, arrival order) live in the substrate. *)

open Detmt_runtime
module Audit = Detmt_obs.Audit

type t = {
  sub : Substrate.t;
  mutable primary : int option;
  mutable primary_wants : int option; (* mutex the primary waits on *)
}

let never_locks_again t tid = Substrate.no_future_locks t.sub ~tid

(* Execute the primary's pending operation, waiting for the mutex via
   [primary_wants] when it is still held (necessarily by a suspended
   thread or a running secondary that acquired it earlier as primary). *)
let rec run_primary t (th : Substrate.thread) =
  let actions = Substrate.actions t.sub in
  let try_grant ~mutex ~action =
    if actions.mutex_free_for ~tid:th.tid ~mutex then begin
      t.primary_wants <- None;
      if Substrate.observing t.sub then begin
        Substrate.incr t.sub "grants";
        Substrate.audit t.sub ~tid:th.tid ~action ~mutex
          ~rule:Audit.Primary_continue ()
      end;
      Substrate.perform t.sub th
    end
    else begin
      if Substrate.observing t.sub then begin
        Substrate.incr t.sub "deferrals";
        Substrate.audit t.sub ~tid:th.tid ~action:Audit.Defer ~mutex
          ~rule:Audit.Mutex_held
          ~candidates:(Option.to_list (actions.mutex_owner mutex))
          ()
      end;
      t.primary_wants <- Some mutex
    end
  in
  match th.pending with
  | None -> ()
  | Some Substrate.Resume -> Substrate.perform t.sub th
  | Some (Substrate.Lock mutex) -> try_grant ~mutex ~action:Audit.Grant_lock
  | Some (Substrate.Reacquire mutex) ->
    try_grant ~mutex ~action:Audit.Grant_reacquire

and promote t =
  if t.primary = None then begin
    (* 1. A blocked (ex-)primary that can continue takes priority. *)
    let ready_ex =
      Substrate.first t.sub ~f:(fun th -> th.ex_primary && not th.suspended)
    in
    let candidate =
      match ready_ex with
      | Some th -> Some th
      | None ->
        (* 2. The oldest secondary — skipping, in the bookkeeping variant,
           threads that provably never lock again. *)
        Substrate.first t.sub ~f:(fun th ->
            (not th.suspended) && (not th.ex_primary)
            && not (never_locks_again t th.tid))
    in
    match candidate with
    | None -> ()
    | Some th ->
      if Substrate.observing t.sub then begin
        Substrate.incr t.sub "promotions";
        Substrate.audit t.sub ~tid:th.tid ~action:Audit.Promote
          ~rule:
            (if th.ex_primary then Audit.Promote_ex_primary
             else Audit.Promote_oldest)
          ~candidates:
            (List.filter_map
               (fun (o : Substrate.thread) ->
                 if o.tid <> th.tid && not o.suspended then Some o.tid
                 else None)
               (Substrate.threads t.sub))
          ()
      end;
      th.is_primary <- true;
      th.ex_primary <- false;
      t.primary <- Some th.tid;
      run_primary t th
  end

let demote t (th : Substrate.thread) =
  if th.is_primary then begin
    th.is_primary <- false;
    t.primary <- None;
    t.primary_wants <- None;
    promote t
  end

(* MAT+LL (Figure 2(b)): hand primacy over as soon as the primary's last
   lock has been released.  The trigger is always an event of the primary
   itself (its unlock or one of its bookkeeping calls) — a deterministic
   point — never another thread's progress, whose interleaving with the
   primary would be timing-dependent on real hardware. *)
let check_last_lock t ~tid =
  match t.primary with
  | Some p
    when p = tid && never_locks_again t tid
         && not ((Substrate.actions t.sub).holds_any_mutex tid) ->
    let th = Substrate.thread t.sub tid in
    if th.pending = None then begin
      if Substrate.observing t.sub then begin
        Substrate.incr t.sub "handoffs";
        Substrate.audit t.sub ~tid ~action:Audit.Handoff
          ~rule:Audit.Last_lock_handoff ()
      end;
      demote t th
    end
  | Some _ | None -> ()

let on_request t tid =
  ignore (Substrate.admit t.sub ~tid);
  (Substrate.actions t.sub).start_thread tid;
  promote t

let on_lock t tid ~syncid:_ ~mutex =
  let th = Substrate.thread t.sub tid in
  th.pending <- Some (Substrate.Lock mutex);
  if th.is_primary then run_primary t th
  else begin
    (* A secondary blocks on its lock no matter whether it conflicts with
       the primary — the paper's criticism, visible in the audit log. *)
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "deferrals";
      Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
        ~rule:Audit.Not_primary
        ~candidates:(Option.to_list t.primary)
        ()
    end;
    promote t
  end

let retry_primary_want t ~mutex =
  match (t.primary, t.primary_wants) with
  | Some ptid, Some m when m = mutex -> run_primary t (Substrate.thread t.sub ptid)
  | _ -> ()

let on_unlock t tid ~syncid:_ ~mutex ~freed =
  if freed then begin
    retry_primary_want t ~mutex;
    check_last_lock t ~tid
  end

let on_wait t tid ~mutex =
  (* Suspension: the primary loses primacy.  The wait also released the
     monitor, which the primary-in-waiting may need. *)
  let th = Substrate.thread t.sub tid in
  th.suspended <- true;
  if th.is_primary then begin
    th.ex_primary <- true;
    demote t th
  end;
  retry_primary_want t ~mutex

let on_wakeup t tid ~mutex =
  let th = Substrate.thread t.sub tid in
  th.suspended <- false;
  th.pending <- Some (Substrate.Reacquire mutex);
  (* Every waiter once held the monitor, so it was primary when it locked and
     suspended as primary: resume with ex-primary priority. *)
  th.ex_primary <- true;
  promote t

let on_nested_begin t tid =
  let th = Substrate.thread t.sub tid in
  th.suspended <- true;
  if th.is_primary then begin
    th.ex_primary <- true;
    th.pending <- Some Substrate.Resume;
    demote t th
  end

let on_nested_reply t tid =
  let th = Substrate.thread t.sub tid in
  th.suspended <- false;
  if th.ex_primary then
    (* A blocked primary that can continue running: waits for promotion. *)
    promote t
  else
    (* A secondary may run without restrictions. *)
    (Substrate.actions t.sub).resume_nested tid

let on_terminate t tid =
  let th = Substrate.thread t.sub tid in
  Substrate.retire t.sub ~tid;
  if th.is_primary then begin
    t.primary <- None;
    t.primary_wants <- None
  end;
  promote t

let policy sub : Sched_iface.sched =
  let t = { sub; primary = None; primary_wants = None } in
  let base =
    Sched_iface.no_op_sched ~name:(Substrate.name sub)
      ~on_request:(on_request t) ~on_lock:(on_lock t) ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock =
      (fun tid ~syncid ~mutex ~freed -> on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_nested_begin = on_nested_begin t;
    on_terminate = on_terminate t;
    on_acquired =
      (fun tid ~syncid ~mutex -> Substrate.bk_acquired sub ~tid ~syncid ~mutex);
    on_lockinfo =
      (fun tid ~syncid ~mutex ->
        Substrate.bk_lockinfo sub ~tid ~syncid ~mutex;
        check_last_lock t ~tid);
    on_ignore =
      (fun tid ~syncid ->
        Substrate.bk_ignore sub ~tid ~syncid;
        check_last_lock t ~tid);
    on_loop_enter = (fun tid ~loopid -> Substrate.bk_loop_enter sub ~tid ~loopid);
    on_loop_exit =
      (fun tid ~loopid ->
        Substrate.bk_loop_exit sub ~tid ~loopid;
        check_last_lock t ~tid) }

module Base : Decision.S = struct
  let name = "mat"

  let needs_prediction = false

  let policy = policy
end

module Last_lock : Decision.S = struct
  let name = "mat-ll"

  let needs_prediction = true

  let policy = policy
end
