(* MAT — multiple active threads (Reiser et al. [11]).

   One primary and any number of secondary active threads.  Only the primary
   may acquire locks; a secondary requesting a lock blocks until it becomes
   primary.  The oldest secondary becomes primary when the current primary
   suspends (wait or nested invocation) or terminates — unless a blocked
   ex-primary can continue, which takes priority.  Determinism follows
   because the lock-acquisition sequence is a function of program order and
   these deterministic promotion points only.

   The paper's criticism, reproduced here deliberately: a secondary blocks on
   its lock no matter whether it conflicts with the primary, and a primary
   that has released its last lock keeps delaying everybody until it
   terminates.

   [~bookkeeping] turns this module into the Figure 2 variant (MAT+LL): when
   the bookkeeping proves the primary will never lock again, primacy is
   handed over immediately, and lock-free threads are skipped during
   promotion. *)

open Detmt_runtime
module Recorder = Detmt_obs.Recorder
module Audit = Detmt_obs.Audit

type thread = {
  tid : int;
  mutable is_primary : bool;
  mutable ex_primary : bool; (* suspended while primary; resumes as primary *)
  mutable suspended : bool;
  mutable pending : pending option;
}

and pending =
  | Plock of int (* mutex *)
  | Preacquire of int
  | Presume (* nested reply waiting for primacy (ex-primaries only) *)

type t = {
  actions : Sched_iface.actions;
  name : string; (* "mat" or "mat-ll", for metrics and the audit log *)
  bookkeeping : Bookkeeping.t option;
  mutable order : thread list; (* arrival order, non-terminated *)
  mutable primary : int option;
  mutable primary_wants : int option; (* mutex the primary waits on *)
}

let find t tid = List.find (fun th -> th.tid = tid) t.order

let audit t ~tid ~action ?mutex ~rule ?candidates () =
  Recorder.decision t.actions.obs ~at:(t.actions.now ())
    ~replica:t.actions.replica_id ~scheduler:t.name ~tid ~action ?mutex ~rule
    ?candidates ()

let observing t = Recorder.enabled t.actions.obs

let metric t suffix = "sched." ^ t.name ^ "." ^ suffix

let never_locks_again t tid =
  match t.bookkeeping with
  | None -> false
  | Some bk -> Bookkeeping.no_future_locks bk ~tid

(* Execute the primary's pending operation, waiting for the mutex via
   [primary_wants] when it is still held (necessarily by a suspended
   thread or a running secondary that acquired it earlier as primary). *)
let rec run_primary t th =
  match th.pending with
  | None -> ()
  | Some Presume ->
    th.pending <- None;
    t.actions.resume_nested th.tid
  | Some (Plock mutex) ->
    if t.actions.mutex_free_for ~tid:th.tid ~mutex then begin
      th.pending <- None;
      t.primary_wants <- None;
      if observing t then begin
        Recorder.incr t.actions.obs (metric t "grants");
        audit t ~tid:th.tid ~action:Audit.Grant_lock ~mutex
          ~rule:Audit.Primary_continue ()
      end;
      t.actions.grant_lock th.tid
    end
    else begin
      if observing t then begin
        Recorder.incr t.actions.obs (metric t "deferrals");
        audit t ~tid:th.tid ~action:Audit.Defer ~mutex ~rule:Audit.Mutex_held
          ~candidates:(Option.to_list (t.actions.mutex_owner mutex))
          ()
      end;
      t.primary_wants <- Some mutex
    end
  | Some (Preacquire mutex) ->
    if t.actions.mutex_free_for ~tid:th.tid ~mutex then begin
      th.pending <- None;
      t.primary_wants <- None;
      if observing t then begin
        Recorder.incr t.actions.obs (metric t "grants");
        audit t ~tid:th.tid ~action:Audit.Grant_reacquire ~mutex
          ~rule:Audit.Primary_continue ()
      end;
      t.actions.grant_reacquire th.tid
    end
    else begin
      if observing t then begin
        Recorder.incr t.actions.obs (metric t "deferrals");
        audit t ~tid:th.tid ~action:Audit.Defer ~mutex ~rule:Audit.Mutex_held
          ~candidates:(Option.to_list (t.actions.mutex_owner mutex))
          ()
      end;
      t.primary_wants <- Some mutex
    end

and promote t =
  if t.primary = None then begin
    (* 1. A blocked (ex-)primary that can continue takes priority. *)
    let ready_ex =
      List.find_opt
        (fun th -> th.ex_primary && not th.suspended)
        t.order
    in
    let candidate =
      match ready_ex with
      | Some th -> Some th
      | None ->
        (* 2. The oldest secondary — skipping, in the bookkeeping variant,
           threads that provably never lock again. *)
        List.find_opt
          (fun th ->
            (not th.suspended) && (not th.ex_primary)
            && not (never_locks_again t th.tid))
          t.order
    in
    match candidate with
    | None -> ()
    | Some th ->
      if observing t then begin
        Recorder.incr t.actions.obs (metric t "promotions");
        audit t ~tid:th.tid ~action:Audit.Promote
          ~rule:
            (if th.ex_primary then Audit.Promote_ex_primary
             else Audit.Promote_oldest)
          ~candidates:
            (List.filter_map
               (fun o ->
                 if o.tid <> th.tid && not o.suspended then Some o.tid
                 else None)
               t.order)
          ()
      end;
      th.is_primary <- true;
      th.ex_primary <- false;
      t.primary <- Some th.tid;
      run_primary t th
  end

let demote t th =
  if th.is_primary then begin
    th.is_primary <- false;
    t.primary <- None;
    t.primary_wants <- None;
    promote t
  end

(* MAT+LL (Figure 2(b)): hand primacy over as soon as the primary's last
   lock has been released.  The trigger is always an event of the primary
   itself (its unlock or one of its bookkeeping calls) — a deterministic
   point — never another thread's progress, whose interleaving with the
   primary would be timing-dependent on real hardware. *)
let check_last_lock t ~tid =
  match t.primary with
  | Some p
    when p = tid && never_locks_again t tid
         && not (t.actions.holds_any_mutex tid) ->
    let th = find t tid in
    if th.pending = None then begin
      if observing t then begin
        Recorder.incr t.actions.obs (metric t "handoffs");
        audit t ~tid ~action:Audit.Handoff ~rule:Audit.Last_lock_handoff ()
      end;
      demote t th
    end
  | Some _ | None -> ()

let register_bk t tid =
  Option.iter
    (fun bk ->
      Bookkeeping.register bk ~tid ~meth:(t.actions.request_method tid))
    t.bookkeeping

let on_request t tid =
  register_bk t tid;
  t.order <-
    t.order
    @ [ { tid; is_primary = false; ex_primary = false; suspended = false;
          pending = None } ];
  t.actions.start_thread tid;
  promote t

let on_lock t tid ~syncid:_ ~mutex =
  let th = find t tid in
  th.pending <- Some (Plock mutex);
  if th.is_primary then run_primary t th
  else begin
    (* A secondary blocks on its lock no matter whether it conflicts with
       the primary — the paper's criticism, visible in the audit log. *)
    if observing t then begin
      Recorder.incr t.actions.obs (metric t "deferrals");
      audit t ~tid ~action:Audit.Defer ~mutex ~rule:Audit.Not_primary
        ~candidates:(Option.to_list t.primary)
        ()
    end;
    promote t
  end

let on_unlock t tid ~syncid:_ ~mutex ~freed =
  if freed then begin
    (match (t.primary, t.primary_wants) with
    | Some ptid, Some m when m = mutex -> run_primary t (find t ptid)
    | _ -> ());
    check_last_lock t ~tid
  end

let on_wait t tid ~mutex =
  (* Suspension: the primary loses primacy.  The wait also released the
     monitor, which the primary-in-waiting may need. *)
  let th = find t tid in
  th.suspended <- true;
  if th.is_primary then begin
    th.ex_primary <- true;
    demote t th
  end;
  match (t.primary, t.primary_wants) with
  | Some ptid, Some m when m = mutex -> run_primary t (find t ptid)
  | _ -> ()

let on_wakeup t tid ~mutex =
  let th = find t tid in
  th.suspended <- false;
  th.pending <- Some (Preacquire mutex);
  (* Every waiter once held the monitor, so it was primary when it locked and
     suspended as primary: resume with ex-primary priority. *)
  th.ex_primary <- true;
  promote t

let on_nested_begin t tid =
  let th = find t tid in
  th.suspended <- true;
  if th.is_primary then begin
    th.ex_primary <- true;
    th.pending <- Some Presume;
    demote t th
  end

let on_nested_reply t tid =
  let th = find t tid in
  th.suspended <- false;
  if th.ex_primary then
    (* A blocked primary that can continue running: waits for promotion. *)
    promote t
  else
    (* A secondary may run without restrictions. *)
    t.actions.resume_nested tid

let on_terminate t tid =
  let th = find t tid in
  t.order <- List.filter (fun o -> o.tid <> tid) t.order;
  Option.iter (fun bk -> Bookkeeping.release bk ~tid) t.bookkeeping;
  if th.is_primary then begin
    t.primary <- None;
    t.primary_wants <- None
  end;
  promote t

let make_with ?bookkeeping ~name (actions : Sched_iface.actions) :
    Sched_iface.sched =
  let t =
    { actions; name; bookkeeping; order = []; primary = None;
      primary_wants = None }
  in
  let bk f = Option.iter f t.bookkeeping in
  let base =
    Sched_iface.no_op_sched ~name
      ~on_request:(on_request t)
      ~on_lock:(on_lock t)
      ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock =
      (fun tid ~syncid ~mutex ~freed ->
        on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_nested_begin = on_nested_begin t;
    on_terminate = on_terminate t;
    on_acquired =
      (fun tid ~syncid ~mutex ->
        bk (fun b -> Bookkeeping.on_acquired b ~tid ~syncid ~mutex));
    on_lockinfo =
      (fun tid ~syncid ~mutex ->
        bk (fun b -> Bookkeeping.on_lockinfo b ~tid ~syncid ~mutex);
        check_last_lock t ~tid);
    on_ignore =
      (fun tid ~syncid ->
        bk (fun b -> Bookkeeping.on_ignore b ~tid ~syncid);
        check_last_lock t ~tid);
    on_loop_enter =
      (fun tid ~loopid ->
        bk (fun b -> Bookkeeping.on_loop_enter b ~tid ~loopid));
    on_loop_exit =
      (fun tid ~loopid ->
        bk (fun b -> Bookkeeping.on_loop_exit b ~tid ~loopid);
        check_last_lock t ~tid) }

let make actions = make_with ~name:"mat" actions

let make_last_lock ~summary actions =
  let bookkeeping = Bookkeeping.create ~summary:(Some summary) () in
  make_with ~bookkeeping ~name:"mat-ll" actions
