open Detmt_runtime

let fully_predictable = function
  | None -> false
  | Some (cs : Detmt_analysis.Predict.class_summary) ->
    cs.methods <> []
    && List.for_all
         (fun (m : Detmt_analysis.Predict.method_summary) -> not m.fallback)
         cs.methods

let recommend ~workers ~conflict_rate ~summary ~avg_concurrency =
  if avg_concurrency <= 1.05 then "seq"
  else if fully_predictable summary then
    if workers > 1 && conflict_rate <= 0.05 && avg_concurrency >= 2.0 then
      "cgs"
      (* a worker pool is available and locks almost never contend: the
         conflict graph stays edge-free and class-disjoint requests run
         concurrently — the one regime where a serial token costs real
         throughput *)
    else if avg_concurrency < 2.0 then "psat"
      (* barely-overlapping clients: the single token almost never blocks
         anybody, and prediction releases it early when it would *)
    else if avg_concurrency <= 48.0 then "pmat"
    else "ppds"
      (* heavy fan-in: batched rounds amortise the decision cost that
         pMAT's per-event queue scan pays on every delivery *)
  else "mat"

(* The children the analyser can pick.  (Not routed through {!Registry} to
   keep the module dependency one-way.)  Prediction-based children degrade
   to their pessimistic base module when no summary is available; the
   conflict-graph children degrade to MAT (without a summary every class is
   opaque, so CGS would serialise). *)
let make_child name ~config ~summary ~workers actions =
  let inst (module D : Decision.S) =
    Decision.instantiate (module D) ~config ~summary actions
  in
  let pinst (module D : Decision.Parallel) =
    Decision.instantiate_parallel (module D) ~config ~summary ~workers
      actions
  in
  match (name, summary) with
  | "seq", _ -> inst (module Seq_sched.Base)
  | "sat", _ -> inst (module Sat.Base)
  | "psat", Some _ -> inst (module Sat.Predicted)
  | "psat", None -> inst (module Sat.Base)
  | "mat", _ -> inst (module Mat.Base)
  | "pmat", Some _ -> inst (module Pmat.Base)
  | "pmat", None -> inst (module Mat.Base)
  | "pds", _ -> inst (module Pds.Base)
  | "ppds", Some _ -> inst (module Pds.Predicted)
  | "ppds", None -> inst (module Pds.Base)
  | "cgs", Some _ -> pinst (module Cgs.Base)
  | "cgs", None -> inst (module Mat.Base)
  | "pcgs", Some _ -> pinst (module Cgs.Predicted)
  | "pcgs", None -> inst (module Mat.Base)
  | other, _ -> invalid_arg ("Adaptive: unknown child scheduler " ^ other)

type t = {
  actions : Sched_iface.actions;
  config : Config.t;
  summary : Detmt_analysis.Predict.class_summary option;
  workers : int;
  window : int;
  on_switch : string -> unit;
  mutable child : Sched_iface.sched;
  mutable child_name : string;
  mutable alive_threads : int;
  (* interaction-pattern statistics for the current window *)
  mutable window_requests : int;
  mutable concurrency_sum : int; (* alive threads observed at each delivery *)
  mutable window_locks : int;
  mutable window_contended : int; (* lock requests finding the mutex held *)
}

let switch t name =
  if not (String.equal name t.child_name) then begin
    (* Only legal at quiescence: the fresh child starts with no thread
       state, which is exactly the replica's situation. *)
    assert (t.alive_threads = 0);
    t.child <-
      make_child name ~config:t.config ~summary:t.summary ~workers:t.workers
        t.actions;
    t.child_name <- name;
    t.on_switch name
  end

(* Quiescent point: re-evaluate once enough of the stream has been seen. *)
let reconsider t =
  if t.alive_threads = 0 && t.window_requests >= t.window then begin
    let avg_concurrency =
      float_of_int t.concurrency_sum /. float_of_int t.window_requests
    in
    (* The lock-pattern half of the paper's analyser: how often a requested
       mutex was actually held.  Deterministic because the child's execution
       is — every replica observes the same contention sequence. *)
    let conflict_rate =
      if t.window_locks = 0 then 0.0
      else float_of_int t.window_contended /. float_of_int t.window_locks
    in
    t.window_requests <- 0;
    t.concurrency_sum <- 0;
    t.window_locks <- 0;
    t.window_contended <- 0;
    switch t
      (recommend ~workers:t.workers ~conflict_rate ~summary:t.summary
         ~avg_concurrency)
  end

let on_request t tid =
  t.window_requests <- t.window_requests + 1;
  t.alive_threads <- t.alive_threads + 1;
  t.concurrency_sum <- t.concurrency_sum + t.alive_threads;
  t.child.on_request tid

let on_terminate t tid =
  t.alive_threads <- t.alive_threads - 1;
  t.child.on_terminate tid;
  reconsider t

let on_lock t tid ~syncid ~mutex =
  t.window_locks <- t.window_locks + 1;
  if not (t.actions.Sched_iface.mutex_free_for ~tid ~mutex) then
    t.window_contended <- t.window_contended + 1;
  t.child.on_lock tid ~syncid ~mutex

let iface t =
  { Sched_iface.name = "adaptive";
    on_request = on_request t;
    on_lock = on_lock t;
    on_acquired =
      (fun tid ~syncid ~mutex -> t.child.on_acquired tid ~syncid ~mutex);
    on_unlock =
      (fun tid ~syncid ~mutex ~freed ->
        t.child.on_unlock tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> t.child.on_wait tid ~mutex);
    on_wakeup = (fun tid ~mutex -> t.child.on_wakeup tid ~mutex);
    on_reacquired = (fun tid ~mutex -> t.child.on_reacquired tid ~mutex);
    on_nested_begin = (fun tid -> t.child.on_nested_begin tid);
    on_nested_reply = (fun tid -> t.child.on_nested_reply tid);
    on_terminate = on_terminate t;
    on_lockinfo =
      (fun tid ~syncid ~mutex -> t.child.on_lockinfo tid ~syncid ~mutex);
    on_ignore = (fun tid ~syncid -> t.child.on_ignore tid ~syncid);
    on_loop_enter = (fun tid ~loopid -> t.child.on_loop_enter tid ~loopid);
    on_loop_exit = (fun tid ~loopid -> t.child.on_loop_exit tid ~loopid);
    on_control = (fun ~sender c -> t.child.on_control ~sender c);
    on_ws_event = (fun tid ev -> t.child.on_ws_event tid ev);
    snapshot = (fun () -> t.child.snapshot ());
    restore = (fun kv -> t.child.restore kv) }

let of_config ?(window = 20) ?(on_switch = fun _ -> ())
    (cfg : Sched_config.t) actions : Sched_iface.sched =
  let config = cfg.Sched_config.runtime
  and summary = cfg.Sched_config.summary
  and workers = cfg.Sched_config.workers in
  (* Prior before anything has been measured: assume moderate concurrency
     and full contention — the conflict-graph child is only picked once a
     window has demonstrated that locks do not contend. *)
  let initial =
    recommend ~workers ~conflict_rate:1.0 ~summary ~avg_concurrency:4.0
  in
  let t =
    { actions; config; summary; workers; window; on_switch;
      child = make_child initial ~config ~summary ~workers actions;
      child_name = initial; alive_threads = 0; window_requests = 0;
      concurrency_sum = 0; window_locks = 0; window_contended = 0 }
  in
  t.on_switch initial;
  iface t
