(** MAT — multiple active threads (Reiser et al. [11], section 3.4).

    One primary thread (the only one allowed to acquire locks) plus any
    number of secondary threads that may compute and issue nested
    invocations freely.  The oldest secondary becomes primary when the
    current primary suspends or terminates; resumable ex-primaries take
    priority.  {!Last_lock} is the Figure 2 variant: with the bookkeeping
    module attached, primacy is handed over as soon as the primary has
    provably released its last lock, and lock-free threads are skipped at
    promotion. *)

module Base : Decision.S
(** ["mat"], no prediction. *)

module Last_lock : Decision.S
(** ["mat-ll"]: MAT + last-lock analysis (Figure 2). *)
