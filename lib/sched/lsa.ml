(* LSA — loose synchronisation algorithm (Basile et al. [2]).

   Leader/follower scheme, the only algorithm needing frequent inter-replica
   communication.  The leader schedules without restrictions (greedy, fully
   concurrent) and broadcasts every lock-acquisition decision; followers
   enforce the leader's per-mutex grant order.  The client only waits for the
   leader's reply, which is why LSA scales best in Figure 1 — at the price of
   broadcast load (bad on WANs) and a take-over delay when the leader fails.

   Condition variables (added in the FTflex variant): a monitor
   re-acquisition after notify is just another acquisition decision, so the
   same grant messages cover it.

   Decision-module state: the grant counter, the follower's enforced order
   and its local-request index, and the promotion drain flag.  The leader's
   per-mutex wait queues and the pending-operation records live in the
   substrate. *)

open Detmt_runtime
module Audit = Detmt_obs.Audit

type t = {
  sub : Substrate.t;
  (* --- leader state (waiting threads queue in the substrate waitq) --- *)
  mutable grant_seq : int;
  (* --- follower state --- *)
  enforced : Waitq.t; (* per mutex: leader-ordered tids *)
  requested : int Candidate_index.t; (* tid -> mutex it locally requested *)
  mutable draining : bool;
      (* a promoted leader first drains already-received decisions *)
}

let is_leader t = (Substrate.actions t.sub).is_leader ()

(* The action a grant of [tid] will perform, for the audit log. *)
let pending_action t tid =
  match Substrate.find_thread t.sub tid with
  | Some { Substrate.pending = Some (Substrate.Reacquire _); _ } ->
    Audit.Grant_reacquire
  | Some _ | None -> Audit.Grant_lock

let perform t tid = Substrate.perform t.sub (Substrate.thread t.sub tid)

(* Leader: grant greedily, broadcasting each decision. *)
let leader_grant t tid ~mutex =
  t.grant_seq <- t.grant_seq + 1;
  if Substrate.observing t.sub then begin
    Substrate.incr t.sub "grant_broadcasts";
    Substrate.audit t.sub ~tid ~action:(pending_action t tid) ~mutex
      ~rule:Audit.Leader_greedy
      ~candidates:(Waitq.waiting (Substrate.waitq t.sub) ~mutex)
      ()
  end;
  (Substrate.actions t.sub).broadcast_control
    (Sched_iface.Lsa_grant { grant_seq = t.grant_seq; mutex; tid });
  perform t tid

let leader_request t tid ~mutex pending =
  let actions = Substrate.actions t.sub in
  let waitq = Substrate.waitq t.sub in
  (Substrate.thread t.sub tid).pending <- Some pending;
  if actions.mutex_free_for ~tid ~mutex && Waitq.is_empty waitq ~mutex then
    leader_grant t tid ~mutex
  else begin
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "deferrals";
      Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
        ~rule:
          (if actions.mutex_free_for ~tid ~mutex then Audit.Queue_wait
           else Audit.Mutex_held)
        ~candidates:(Waitq.waiting waitq ~mutex)
        ()
    end;
    Waitq.push waitq ~mutex tid
  end

let leader_on_unlock t ~mutex =
  let waitq = Substrate.waitq t.sub in
  match Waitq.head waitq ~mutex with
  | Some tid when (Substrate.actions t.sub).mutex_free_for ~tid ~mutex ->
    ignore (Waitq.pop waitq ~mutex);
    leader_grant t tid ~mutex
  | Some _ | None -> ()

(* Follower: grant only when the local request matches the head of the
   leader's enforced order and the mutex is free. *)
let follower_try t ~mutex =
  match Waitq.head t.enforced ~mutex with
  | Some tid
    when Candidate_index.find t.requested tid = Some mutex
         && (Substrate.actions t.sub).mutex_free_for ~tid ~mutex ->
    ignore (Waitq.pop t.enforced ~mutex);
    Candidate_index.remove t.requested tid;
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "follower_grants";
      Substrate.audit t.sub ~tid ~action:(pending_action t tid) ~mutex
        ~rule:Audit.Follower_enforced
        ~candidates:(Waitq.waiting t.enforced ~mutex)
        ()
    end;
    perform t tid
  | Some _ | None -> ()

let follower_request t tid ~mutex pending =
  (Substrate.thread t.sub tid).pending <- Some pending;
  Candidate_index.add t.requested ~key:tid mutex;
  (if Substrate.observing t.sub && Waitq.head t.enforced ~mutex <> Some tid
   then begin
     Substrate.incr t.sub "deferrals";
     Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
       ~rule:Audit.Enforced_order_wait
       ~candidates:(Waitq.waiting t.enforced ~mutex)
       ()
   end);
  follower_try t ~mutex

(* A follower promoted to leader finishes the dead leader's published
   decisions first (all survivors received the same prefix, in total order),
   then switches to greedy mode.  The drain order is ascending tid — the
   index iterates sorted by construction. *)
let drain_done t =
  List.iter
    (fun (tid, mutex) ->
      Candidate_index.remove t.requested tid;
      match Substrate.find_thread t.sub tid with
      | Some { Substrate.pending = Some p; _ } -> leader_request t tid ~mutex p
      | Some _ | None -> ())
    (Candidate_index.to_list t.requested)

let check_promotion t =
  if is_leader t && t.draining then begin
    (* Drained when no enforced decisions remain unconsumed. *)
    let remaining =
      Candidate_index.fold t.requested ~init:0 ~f:(fun tid mutex acc ->
          if Waitq.mem t.enforced ~mutex ~tid then acc + 1 else acc)
    in
    if remaining = 0 then begin
      t.draining <- false;
      drain_done t
    end
  end

let on_request t tid =
  ignore (Substrate.admit t.sub ~tid);
  (Substrate.actions t.sub).start_thread tid

let on_lock t tid ~syncid:_ ~mutex =
  if is_leader t && not t.draining then
    leader_request t tid ~mutex (Substrate.Lock mutex)
  else begin
    follower_request t tid ~mutex (Substrate.Lock mutex);
    check_promotion t
  end

let on_wakeup t tid ~mutex =
  if is_leader t && not t.draining then
    leader_request t tid ~mutex (Substrate.Reacquire mutex)
  else begin
    follower_request t tid ~mutex (Substrate.Reacquire mutex);
    check_promotion t
  end

let on_unlock t _tid ~syncid:_ ~mutex ~freed =
  if freed then
    if is_leader t && not t.draining then leader_on_unlock t ~mutex
    else follower_try t ~mutex

let on_wait t tid ~mutex =
  ignore tid;
  if is_leader t && not t.draining then leader_on_unlock t ~mutex
  else follower_try t ~mutex

let on_nested_reply t tid = (Substrate.actions t.sub).resume_nested tid

let on_terminate t tid = Substrate.retire t.sub ~tid

let on_control t ~sender:_ control =
  match control with
  | Sched_iface.Lsa_grant { grant_seq = _; mutex; tid } ->
    if (not (is_leader t)) || t.draining then begin
      (* Our own broadcasts also self-deliver on the leader; ignore them
         there — decisions were applied synchronously. *)
      Waitq.push t.enforced ~mutex tid;
      follower_try t ~mutex;
      check_promotion t
    end
  | Sched_iface.View_change ->
    (* View change: a freshly promoted leader drains the dead leader's
       published decisions and then schedules greedily. *)
    check_promotion t

let policy sub : Sched_iface.sched =
  let t =
    { sub; grant_seq = 0; enforced = Waitq.create ();
      requested = Candidate_index.create ();
      draining = not ((Substrate.actions sub).is_leader ()) }
  in
  let base =
    Sched_iface.no_op_sched ~name:(Substrate.name sub)
      ~on_request:(on_request t) ~on_lock:(on_lock t) ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock =
      (fun tid ~syncid ~mutex ~freed -> on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_terminate = on_terminate t;
    on_control = (fun ~sender c -> on_control t ~sender c);
    (* The grant counter orders every future leader grant; a recovered
       follower must resume it at the donor's value or it would enforce
       stale grant sequence numbers after a later promotion. *)
    snapshot = (fun () -> [ ("grant_seq", t.grant_seq) ]);
    restore =
      (fun kv ->
        List.iter (fun (k, v) -> if k = "grant_seq" then t.grant_seq <- v) kv)
  }

module Base : Decision.S = struct
  let name = "lsa"

  let needs_prediction = false

  let policy = policy
end
